// Quickstart: open a PMem graph database, create a small social graph in
// a transaction, build an index, and query it through the session API —
// prepared statements, streaming rows and context deadlines — in every
// execution mode.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"poseidon"
	"poseidon/internal/query"
)

func main() {
	// Open a database in PMem mode: primary data lives in simulated
	// persistent memory with Optane-like latencies and survives crashes.
	db, err := poseidon.Open(poseidon.Config{Mode: poseidon.PMem})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// All writes are MVTO transactions with snapshot isolation.
	tx := db.Begin()
	alice, _ := tx.CreateNode("Person", map[string]any{"name": "alice", "age": int64(30)})
	bob, _ := tx.CreateNode("Person", map[string]any{"name": "bob", "age": int64(25)})
	carol, _ := tx.CreateNode("Person", map[string]any{"name": "carol", "age": int64(35)})
	tx.CreateRel(alice, bob, "knows", map[string]any{"since": int64(2019)})
	tx.CreateRel(bob, carol, "knows", map[string]any{"since": int64(2021)})
	tx.CreateRel(alice, carol, "knows", nil)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d relationships\n", db.NodeCount(), db.RelCount())

	// A hybrid index: B+-tree leaves in PMem, inner nodes in DRAM.
	if err := db.CreateIndex("Person", "name", poseidon.HybridIndex); err != nil {
		log.Fatal(err)
	}

	// Who does alice know? Expressed in the graph algebra of §6.1:
	// IndexScan -> ForeachRelationship (Expand) -> GetNode -> Project.
	friends := &query.Plan{Root: &query.Project{
		Input: &query.GetNode{
			Input: &query.Expand{
				Input: &query.IndexScan{Label: "Person", Key: "name", Value: &query.Param{Name: "who"}},
				Col:   0, Dir: query.Out, RelLabel: "knows",
			},
			RelCol: 1, End: query.Dst,
		},
		Cols: []query.Expr{
			&query.Prop{Col: 2, Key: "name"},
			&query.Prop{Col: 2, Key: "age"},
		},
	}}

	// Prepare once: the plan is parsed/planned a single time and cached
	// in the DB, shared by every session (see db.CacheStats).
	stmt, err := db.PreparePlan(friends)
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		m    poseidon.ExecMode
	}{
		{"interpreted (AOT)", poseidon.Interpret},
		{"parallel (morsel-driven)", poseidon.Parallel},
		{"JIT-compiled", poseidon.JIT},
		{"adaptive", poseidon.Adaptive},
	} {
		// A session pins the execution mode and a default deadline; a
		// statement exceeding it is cancelled mid-scan and rolled back.
		sess := db.NewSession(poseidon.SessionConfig{Mode: mode.m, Timeout: 5 * time.Second})
		rows, err := sess.Query(context.Background(), stmt, query.Params{"who": "alice"})
		if err != nil {
			log.Fatal(err)
		}
		// Stream the result: rows arrive while the scan still runs, and
		// values decode on demand.
		var friends []string
		for rows.Next() {
			var name string
			var age int64
			if err := rows.Scan(&name, &age); err != nil {
				log.Fatal(err)
			}
			friends = append(friends, fmt.Sprintf("%s(%d)", name, age))
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		rows.Close()
		sess.Close()
		fmt.Printf("%-26s -> alice knows %v\n", mode.name, friends)
	}

	// Updates through the algebra too: bump bob's age. ExecCtx commits
	// atomically — a cancelled context would roll everything back.
	n, err := db.ExecCtx(context.Background(), &query.Plan{Root: &query.SetProps{
		Input: &query.IndexScan{Label: "Person", Key: "name", Value: &query.Param{Name: "who"}},
		Col:   0,
		Props: []query.PropSpec{{Key: "age", Val: &query.Param{Name: "age"}}},
	}}, query.Params{"who": "bob", "age": int64(26)})
	if err != nil {
		log.Fatal(err)
	}
	cs := db.CacheStats()
	fmt.Printf("updated %d node(s); stmt cache: %d cached / %d hits / %d misses\n",
		n, cs.Size, cs.Hits, cs.Misses)
}
