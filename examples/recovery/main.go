// Recovery: demonstrates the PMem durability guarantees end to end —
// committed transactions survive a power failure, in-flight transactions
// roll back via the undo log, uncommitted inserts are reclaimed, and the
// hybrid index rebuilds its DRAM inner levels in milliseconds while a
// volatile index would need a full rebuild (§7.4).
package main

import (
	"fmt"
	"log"
	"time"

	"poseidon"
	"poseidon/internal/query"
)

func main() {
	db, err := poseidon.Open(poseidon.Config{Mode: poseidon.PMem, PoolSize: 512 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Committed data: 10k indexed accounts.
	tx := db.Begin()
	for i := 0; i < 10000; i++ {
		if _, err := tx.CreateNode("Account", map[string]any{
			"num": int64(i), "balance": int64(1000 + i),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateIndex("Account", "num", poseidon.HybridIndex); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d accounts with a hybrid index\n", db.NodeCount())

	// An in-flight transaction that will be cut off by the crash: it
	// updates one account and inserts another, but never commits.
	doomed := db.Begin()
	if err := doomed.SetNodeProps(42, map[string]any{"balance": int64(-1)}); err != nil {
		log.Fatal(err)
	}
	if _, err := doomed.CreateNode("Account", map[string]any{"num": int64(99999)}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("left a transaction in flight (update + insert, uncommitted)")

	// Power failure: everything not flushed to the durable media is gone.
	fmt.Println("\n*** simulated power failure ***")
	dev := db.Crash()

	// Recovery: pmemobj undo log rolls back, stale locks clear, the
	// uncommitted insert's slot is reclaimed, the hybrid index rebuilds
	// its inner levels from the persistent leaf chain.
	start := time.Now()
	db2, err := poseidon.Reopen(dev, poseidon.Config{Mode: poseidon.PMem})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Printf("recovered in %v (includes hybrid index inner rebuild)\n",
		time.Since(start).Round(time.Microsecond))

	if got := db2.NodeCount(); got != 10000 {
		log.Fatalf("expected 10000 accounts after recovery, got %d", got)
	}
	fmt.Println("account count intact: 10000 (uncommitted insert reclaimed)")

	// The doomed update rolled back.
	balance := &query.Plan{Root: &query.Project{
		Input: &query.NodeByID{Param: "id"},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "balance"}},
	}}
	rows, err := db2.Query(balance, query.Params{"id": int64(42)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("account 42 balance after recovery: %v (uncommitted update rolled back)\n", rows[0][0])

	// The hybrid index works immediately after recovery.
	lookup := &query.Plan{Root: &query.Project{
		Input: &query.IndexScan{Label: "Account", Key: "num", Value: &query.Param{Name: "n"}},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "balance"}},
	}}
	start = time.Now()
	rows, err = db2.Query(lookup, query.Params{"n": int64(7777)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed lookup of account 7777 after recovery: balance=%v in %v\n",
		rows[0][0], time.Since(start).Round(time.Microsecond))

	// And the engine accepts new transactions (the clock resumed past the
	// highest committed timestamp).
	tx2 := db2.Begin()
	if err := tx2.SetNodeProps(42, map[string]any{"balance": int64(2000)}); err != nil {
		log.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-recovery update committed: the engine is fully writable")
}
