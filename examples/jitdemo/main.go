// JIT demo: shows the §6.2 machinery on one query — the generated IR
// before and after the optimization pass cascade, the compile time, the
// AOT-vs-JIT execution gap, the persistent code cache, and adaptive
// execution switching from interpreted to compiled morsels mid-query.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/cypher"
	"poseidon/internal/index"
	"poseidon/internal/jit"
	"poseidon/internal/ldbc"
	"poseidon/internal/query"
)

func main() {
	// A PMem engine loaded with the LDBC-SNB-like social network.
	e, err := core.Open(core.Config{Mode: core.PMem, PoolSize: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	ds := ldbc.Generate(ldbc.Config{Persons: 300})
	if err := ds.LoadCore(e, true, index.Hybrid); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d nodes, %d edges\n\n", len(ds.Nodes), len(ds.Edges))

	// SR5 (message creator), scan-based so there is a pipeline to fuse.
	plan, err := ldbc.SRPlan(ldbc.QueryID{Num: 5, Variant: "post"}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query signature (the code-cache key):")
	fmt.Printf("  %s\n\n", plan.Signature())

	// Show the IR the codegen visitor produces and what the pass cascade
	// does to it.
	mp, _ := query.SplitPipeline(plan)
	fn, err := jit.Compile(mp, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated IR: %d blocks, %d instructions\n", len(fn.Blocks), fn.NumInstrs())
	stats := jit.Optimize(fn)
	fmt.Printf("optimized IR: %d blocks, %d instructions\n", len(fn.Blocks), fn.NumInstrs())
	fmt.Printf("passes: %s\n\n", jit.DumpStats(stats))
	fmt.Println("optimized function:")
	fmt.Println(fn.String())

	// Compile through the engine (codegen + passes + lowering + caching).
	j, err := jit.New(e)
	if err != nil {
		log.Fatal(err)
	}
	c, err := j.Compile(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compile time: %v (cache hit: %v)\n", c.CompileTime, c.FromCache)

	// Relinking from the persistent code cache is much cheaper.
	j.InvalidateSession()
	c2, err := j.Compile(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relink from persistent cache: %v (cache hit: %v)\n\n", c2.CompileTime, c2.FromCache)

	// AOT vs JIT on the same transaction. Every run carries a context:
	// a 10s ceiling cancels mid-scan (and mid-compile) if something
	// degenerates, rolling the transaction back.
	ctx, cancelAll := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelAll()
	params := query.Params{"id": int64(10)}
	pr, _ := query.Prepare(e, plan)
	tx := e.Begin()
	defer tx.Abort()

	const runs = 30
	var aot, jitTime time.Duration
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := pr.RunCtx(ctx, tx, params, func(query.Row) bool { return true }); err != nil {
			log.Fatal(err)
		}
		aot += time.Since(start)

		start = time.Now()
		if _, err := j.RunCtx(ctx, tx, plan, params, func(query.Row) bool { return true }); err != nil {
			log.Fatal(err)
		}
		jitTime += time.Since(start)
	}
	fmt.Printf("AOT interpretation: %v/run\n", aot/runs)
	fmt.Printf("JIT-compiled code:  %v/run (%.2fx)\n\n",
		jitTime/runs, float64(aot)/float64(jitTime))

	// Adaptive execution: morsels start interpreted; once background
	// compilation finishes, the task function is swapped (§6.2 Fig 3).
	// Cancelling ctx would stop the workers between morsels and abandon
	// the background compilation at its next stage boundary.
	j2, _ := jit.New(e) // fresh engine: empty in-memory cache
	j2.InvalidateSession()
	st, err := j2.RunAdaptiveCtx(ctx, tx, plan, params, 4, func(query.Row) bool { return true })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive execution: %d morsels interpreted, %d compiled (compile ran in the background)\n",
		st.Adaptive.InterpretedMorsels, st.Adaptive.CompiledMorsels)

	// The same machinery serves the Cypher-like language (§1): statements
	// compile to the identical algebra and therefore the identical IR.
	cplan, err := cypher.Plan(e, `MATCH (p:Post {id: $id})-[:hasCreator]->(a) RETURN a.firstName, a.lastName`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncypher signature: %s\n", cplan.Signature())
	cc, err := j.Compile(cplan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cypher plan compiled in %v; running under the JIT:\n", cc.CompileTime)
	tx2 := e.Begin()
	defer tx2.Abort()
	if _, err := j.RunCtx(ctx, tx2, cplan, query.Params{"id": int64(10)}, func(r query.Row) bool {
		first, _ := e.Dict().Decode(r[0].Code())
		last, _ := e.Dict().Decode(r[1].Code())
		fmt.Printf("  post 10 author: %s %s\n", first, last)
		return true
	}); err != nil {
		log.Fatal(err)
	}
}
