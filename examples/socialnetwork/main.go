// Social network: runs an LDBC-SNB-style interactive session against the
// engine — the workload class the paper evaluates. It loads the generated
// social graph, then interleaves Interactive Short Reads with Interactive
// Updates under concurrent MVTO transactions, and prints throughput plus
// a consistency audit at the end.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/analytics"
	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/jit"
	"poseidon/internal/ldbc"
	"poseidon/internal/query"
)

func main() {
	e, err := core.Open(core.Config{Mode: core.PMem, PoolSize: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	start := time.Now()
	ds := ldbc.Generate(ldbc.Config{Persons: 400})
	if err := ds.LoadCore(e, true, index.Hybrid); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d nodes, %d edges in %v\n",
		len(ds.Nodes), len(ds.Edges), time.Since(start).Round(time.Millisecond))

	j, err := jit.New(e)
	if err != nil {
		log.Fatal(err)
	}

	// Prepare all SR plans (indexed) and IU plans.
	srPlans := map[string]*query.Prepared{}
	for _, q := range ldbc.SRQueries() {
		plan, err := ldbc.SRPlan(q, true)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := query.Prepare(e, plan)
		if err != nil {
			log.Fatal(err)
		}
		srPlans[q.Name()] = pr
	}
	iuPlans := map[int]*query.Plan{}
	for _, q := range ldbc.IUQueries() {
		plan, err := ldbc.IUPlan(q, true)
		if err != nil {
			log.Fatal(err)
		}
		iuPlans[q.Num] = plan
	}

	// Interactive session: 3 reader workers + 1 update worker, 10k ops.
	const readers = 3
	const totalReads = 6000
	const totalUpdates = 400
	var reads, updates, aborts atomic.Int64

	var wg sync.WaitGroup
	sessionStart := time.Now()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			pg := ldbc.NewParamGen(ds, seed)
			rng := rand.New(rand.NewSource(seed))
			qs := ldbc.SRQueries()
			for i := 0; i < totalReads/readers; i++ {
				q := qs[rng.Intn(len(qs))]
				// Per-statement deadline: a read stuck behind a pathological
				// scan cancels itself rather than stalling the session.
				rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				tx := e.Begin()
				err := srPlans[q.Name()].RunCtx(rctx, tx, pg.SRParams(q), func(query.Row) bool { return true })
				tx.Abort()
				cancel()
				if err != nil && (errors.Is(err, core.ErrAborted) || errors.Is(err, context.DeadlineExceeded)) {
					aborts.Add(1) // reader hit a write-locked record (§5.1) or its deadline
					continue
				}
				if err != nil {
					log.Fatal(err)
				}
				reads.Add(1)
			}
		}(int64(1000 + w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		pg := ldbc.NewParamGen(ds, 777)
		rng := rand.New(rand.NewSource(777))
		for i := 0; i < totalUpdates; i++ {
			q := ldbc.IUQueries()[rng.Intn(8)]
			params := pg.IUParams(q)
			uctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			tx := e.Begin()
			_, err := j.RunCtx(uctx, tx, iuPlans[q.Num], params, func(query.Row) bool { return true })
			cancel()
			if err != nil {
				tx.Abort()
				if errors.Is(err, core.ErrAborted) {
					aborts.Add(1)
					continue
				}
				log.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				if errors.Is(err, core.ErrAborted) {
					aborts.Add(1)
					continue
				}
				log.Fatal(err)
			}
			updates.Add(1)
		}
	}()
	wg.Wait()
	elapsed := time.Since(sessionStart)

	fmt.Printf("\ninteractive session: %d reads, %d updates, %d MVTO aborts in %v\n",
		reads.Load(), updates.Load(), aborts.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n",
		float64(reads.Load()+updates.Load())/elapsed.Seconds())

	// Consistency audit: every relationship's endpoints must exist and
	// every adjacency list must be loop-free and well-formed.
	tx := e.Begin()
	defer tx.Abort()
	var relCount, badEndpoints int
	err = tx.ScanRels(func(r core.RelSnap) bool {
		relCount++
		if _, err := tx.GetNode(r.Rec.Src); err != nil {
			badEndpoints++
		}
		if _, err := tx.GetNode(r.Rec.Dst); err != nil {
			badEndpoints++
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit: %d relationships, %d dangling endpoints\n", relCount, badEndpoints)
	if badEndpoints != 0 {
		log.Fatal("consistency violation detected")
	}
	st := e.Device().Stats.Snapshot()
	fmt.Printf("device: %.1fM reads, %.1fM writes, %.1fK line flushes, cache hit rate %.1f%%\n",
		float64(st.Reads)/1e6, float64(st.Writes)/1e6, float64(st.LineFlushes)/1e3,
		100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses+1))

	// HTAP epilogue: run analytics on a consistent snapshot of the graph
	// the interactive session just mutated (the paper's §8 outlook).
	atx := e.Begin()
	defer atx.Abort()
	deg, err := analytics.Degrees(atx, "Person", "knows")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytics: knows degree: avg %.1f, max out %d, p90 %d\n",
		deg.AvgOut, deg.MaxOut, deg.Percentile9)
	wcc, err := analytics.WeaklyConnectedComponents(atx, "knows")
	if err != nil {
		log.Fatal(err)
	}
	if len(wcc) > 0 {
		fmt.Printf("analytics: %d knows-components, largest %d persons\n", len(wcc), wcc[0])
	}
	pr, err := analytics.PageRank(atx, "Person", "knows", 0.85, 50, 1e-8)
	if err != nil {
		log.Fatal(err)
	}
	var top uint64
	for id, r := range pr.Rank {
		if r > pr.Rank[top] {
			top = id
		}
	}
	fmt.Printf("analytics: pagerank converged in %d iterations; top person node %d (rank %.5f)\n",
		pr.Iterations, top, pr.Rank[top])
}
