package lint

import (
	"go/ast"
	"go/types"
)

// telemetry handle types whose nil value is the "telemetry disabled"
// path. They must only ever travel as pointers and be used through
// their nil-safe methods.
var telemetryHandles = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "SlowQueryLog": true,
}

// trace handle types follow the same contract: a nil *trace.Tracer or
// *trace.Span is the "tracing disabled" path, and every method no-ops
// on nil.
var traceHandles = map[string]bool{
	"Tracer": true, "Span": true,
}

// telemetry-nil-safety: internal/telemetry and internal/trace handles
// are nil when the subsystem is disabled, and every method is nil-safe.
// Dereferencing a handle or holding one by value defeats that (panics
// on the disabled path, copies the atomics/mutex) — flag both outside
// the owning packages themselves.
var passTelemetryNilSafety = &Pass{
	Name:    "telemetry-nil-safety",
	Doc:     "telemetry and trace handles must stay pointers and be used via their nil-safe methods",
	Default: true,
	Run: func(c *Context) {
		if c.Pkg.Path == c.Kit.telePath || c.Pkg.Path == c.Kit.tracePath {
			return
		}
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["telemetry-nil-safety"] {
				continue
			}
			checkTelemetryUse(c, fi)
		}
		checkTelemetryDecls(c)
	},
}

// nilSafeHandle reports whether t is one of the nil-when-disabled
// handle types, returning its package-qualified name.
func (k *Kit) nilSafeHandle(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	switch n.Obj().Pkg().Path() {
	case k.telePath:
		if telemetryHandles[n.Obj().Name()] {
			return "telemetry." + n.Obj().Name(), true
		}
	case k.tracePath:
		if traceHandles[n.Obj().Name()] {
			return "trace." + n.Obj().Name(), true
		}
	}
	return "", false
}

func checkTelemetryUse(c *Context, fi FuncInfo) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			return false
		}
		switch n := n.(type) {
		case *ast.StarExpr:
			// `*h` on a handle pointer — a value deref. Type positions
			// (`*telemetry.Counter` in declarations) resolve to the
			// pointer type and are not flagged here.
			tv, ok := info.Types[n.X]
			if !ok || !tv.IsValue() {
				return true
			}
			if ptr, ok := tv.Type.(*types.Pointer); ok {
				if name, hit := c.Kit.nilSafeHandle(ptr.Elem()); hit {
					c.Reportf(n.Pos(), "dereferencing *%s panics when the subsystem is disabled (nil handle) and copies its internals; call the nil-safe methods instead", name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if name, hit := c.Kit.nilSafeHandle(tv.Type); hit {
					c.Reportf(n.Pos(), "%s composite literal bypasses its constructor and creates a by-value handle; use the package constructors", name)
				}
			}
		}
		return true
	})
}

// checkTelemetryDecls flags by-value handle types in declarations:
// struct fields, vars, params, and results typed telemetry.X or
// trace.X instead of the pointer form.
func checkTelemetryDecls(c *Context) {
	report := func(typeExpr ast.Expr) {
		if typeExpr == nil {
			return
		}
		// A pointer type (`*telemetry.Counter`) is the correct shape;
		// only a bare named handle type is a by-value copy.
		if _, isPtr := typeExpr.(*ast.StarExpr); isPtr {
			return
		}
		tv, ok := c.Pkg.Info.Types[typeExpr]
		if !ok {
			return
		}
		if name, hit := c.Kit.nilSafeHandle(tv.Type); hit {
			c.Reportf(typeExpr.Pos(), "%s held by value breaks the nil-when-disabled pattern and copies its internals; declare it *%s", name, name)
		}
	}
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				report(n.Type)
			case *ast.ValueSpec:
				report(n.Type)
			}
			return true
		})
	}
}
