package lint

import (
	"go/ast"
	"go/types"
)

// telemetry handle types whose nil value is the "telemetry disabled"
// path. They must only ever travel as pointers and be used through
// their nil-safe methods.
var telemetryHandles = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "SlowQueryLog": true,
}

// telemetry-nil-safety: internal/telemetry handles are nil when
// telemetry is disabled, and every method is nil-safe. Dereferencing a
// handle or holding one by value defeats that (panics on the disabled
// path, copies the atomics/mutex) — flag both outside the telemetry
// package itself.
var passTelemetryNilSafety = &Pass{
	Name:    "telemetry-nil-safety",
	Doc:     "telemetry handles must stay pointers and be used via their nil-safe methods",
	Default: true,
	Run: func(c *Context) {
		if c.Pkg.Path == c.Kit.telePath {
			return
		}
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["telemetry-nil-safety"] {
				continue
			}
			checkTelemetryUse(c, fi)
		}
		checkTelemetryDecls(c)
	},
}

func (k *Kit) teleHandle(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	if n.Obj().Pkg().Path() != k.telePath || !telemetryHandles[n.Obj().Name()] {
		return "", false
	}
	return n.Obj().Name(), true
}

func checkTelemetryUse(c *Context, fi FuncInfo) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			return false
		}
		switch n := n.(type) {
		case *ast.StarExpr:
			// `*h` on a handle pointer — a value deref. Type positions
			// (`*telemetry.Counter` in declarations) resolve to the
			// pointer type and are not flagged here.
			tv, ok := info.Types[n.X]
			if !ok || !tv.IsValue() {
				return true
			}
			if ptr, ok := tv.Type.(*types.Pointer); ok {
				if name, hit := c.Kit.teleHandle(ptr.Elem()); hit {
					c.Reportf(n.Pos(), "dereferencing *telemetry.%s panics when telemetry is disabled (nil handle) and copies its atomics; call the nil-safe methods instead", name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if name, hit := c.Kit.teleHandle(tv.Type); hit {
					c.Reportf(n.Pos(), "telemetry.%s composite literal bypasses the Registry and creates a by-value handle; use telemetry.Registry constructors", name)
				}
			}
		}
		return true
	})
}

// checkTelemetryDecls flags by-value handle types in declarations:
// struct fields, vars, params, and results typed telemetry.X instead
// of *telemetry.X.
func checkTelemetryDecls(c *Context) {
	report := func(typeExpr ast.Expr) {
		if typeExpr == nil {
			return
		}
		// A pointer type (`*telemetry.Counter`) is the correct shape;
		// only a bare named handle type is a by-value copy.
		if _, isPtr := typeExpr.(*ast.StarExpr); isPtr {
			return
		}
		tv, ok := c.Pkg.Info.Types[typeExpr]
		if !ok {
			return
		}
		if name, hit := c.Kit.teleHandle(tv.Type); hit {
			c.Reportf(typeExpr.Pos(), "telemetry.%s held by value breaks the nil-when-disabled pattern and copies atomics; declare it *telemetry.%s", name, name)
		}
	}
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				report(n.Type)
			case *ast.ValueSpec:
				report(n.Type)
			}
			return true
		})
	}
}
