package lint

import (
	"go/ast"
)

// legacyEntryPoints are the pre-session API surfaces kept as shims
// (see CHANGES.md "Migration: old entry points → session/statement
// API"). Library code must call the *Ctx variants so cancellation
// reaches the core transaction; only cmd/, examples (package main),
// and tests may use the legacy names.
var legacyEntryPoints = map[string]map[string]string{
	"poseidon.DB": {
		"Query": "QueryCtx", "QueryMode": "QueryModeCtx", "QueryTx": "QueryTxCtx",
		"Exec": "ExecCtx", "Cypher": "CypherCtx", "CypherMode": "CypherModeCtx",
	},
	"query.Prepared": {"Run": "RunCtx", "RunParallel": "RunParallelCtx"},
	"jit.Engine":     {"Run": "RunCtx", "RunAdaptive": "RunAdaptiveCtx", "Compile": "CompileCtx"},
}

// ctx-threading: library code (everything outside package main and
// _test.go files) must thread the caller's context — calling the legacy
// non-Ctx entry points or constructing context.Background()/TODO()
// severs cancellation from the session above. The legacy shims
// themselves carry //poseidonlint:ignore ctx-threading annotations.
var passCtxThreading = &Pass{
	Name:    "ctx-threading",
	Doc:     "library code must not call legacy non-Ctx entry points or construct context.Background()/TODO()",
	Default: true,
	Run: func(c *Context) {
		if c.Pkg.Name == "main" {
			return
		}
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["ctx-threading"] {
				continue
			}
			fi := fi
			forEachCall(fi, func(call *ast.CallExpr) {
				if name, ok := backgroundCtx(c.Kit, fi.Pkg, call); ok {
					c.Reportf(call.Pos(), "context.%s() in library code severs cancellation; thread the caller's ctx (legacy shims: annotate //poseidonlint:ignore ctx-threading)", name)
					return
				}
				path, typ, name, ok := c.Kit.Method(fi.Pkg, call)
				if !ok || typ == "" {
					return
				}
				short := shortPath(c.Kit.m.Path, path) + "." + typ
				if repl, hit := legacyEntryPoints[short][name]; hit {
					c.Reportf(call.Pos(), "legacy %s.%s call in library code; use %s and thread the caller's context", typ, name, repl)
				}
			})
		}
	},
}


// backgroundCtx matches context.Background()/context.TODO() via the
// file's import of the "context" package (works with stub imports).
func backgroundCtx(k *Kit, pkg *Package, call *ast.CallExpr) (string, bool) {
	path, name, ok := k.PkgCall(pkg, call)
	if !ok || path != "context" || (name != "Background" && name != "TODO") {
		return "", false
	}
	return name, true
}

// shortPath maps "poseidon" -> "poseidon" and
// "poseidon/internal/query" -> "query" for the legacy table keys.
func shortPath(modPath, pkgPath string) string {
	if pkgPath == modPath {
		return "poseidon"
	}
	for i := len(pkgPath) - 1; i >= 0; i-- {
		if pkgPath[i] == '/' {
			return pkgPath[i+1:]
		}
	}
	return pkgPath
}
