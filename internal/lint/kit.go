package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallKind classifies a call expression against the PMem primitive
// vocabulary the passes care about.
type CallKind int

const (
	KOther CallKind = iota
	KStore          // Device.WriteU64/WriteU32/WriteWords/WriteBytes/Zero, Pool.WritePPtr
	KFlush          // Device.Flush/Persist, Pool.SetRoot, Pool.RunTx, Tx.Commit
	KCAS            // Device.CompareAndSwapU64 (8-byte failure-atomic by design)
	KUndo           // Tx.Snapshot/NoteWrite/Alloc/Free — undo-log coverage events
)

// deviceStores maps pmem.Device store methods to whether a single call
// can span more than one 8-byte word (and therefore tear on crash).
var deviceStores = map[string]bool{
	"WriteU64":   false,
	"WriteU32":   false, // sub-word read-modify-write of one aligned word
	"WriteWords": true,
	"WriteBytes": true,
	"Zero":       true,
}

var deviceFlushes = map[string]bool{"Flush": true, "Persist": true}

var undoEvents = map[string]bool{"Snapshot": true, "NoteWrite": true, "Alloc": true, "Free": true}

// funcFacts are interprocedural summaries, computed to fixpoint over
// the whole module: does calling this function possibly flush, store,
// write an undo-log entry, or block (channel operation, select,
// WaitGroup.Wait, time.Sleep — directly or via a callee)?
type funcFacts struct {
	mayFlush  bool
	mayStore  bool
	mayUndo   bool
	mayBlock  bool
	mayCreate bool // constructs a lifecycle-tracked resource (Span/Rows/Session/Conn)
	callees   []*types.Func
}

// Kit holds per-run shared state: directive indexes and function
// summaries.
type Kit struct {
	m         *Module
	pmemPath  string
	pmobjPath string
	telePath  string
	tracePath string
	wirePath  string
	facts     map[*types.Func]*funcFacts
	lineIgn   map[string]map[int]map[string]bool
	// atomicFields maps struct fields that are passed by address to a
	// sync/atomic operation anywhere in the run to the position of one
	// such use; the atomicfield pass flags every plain access to them.
	atomicFields map[types.Object]token.Position
}

func newKit(m *Module) *Kit {
	k := &Kit{
		m:            m,
		pmemPath:     m.Path + "/internal/pmem",
		pmobjPath:    m.Path + "/internal/pmemobj",
		telePath:     m.Path + "/internal/telemetry",
		tracePath:    m.Path + "/internal/trace",
		wirePath:     m.Path + "/internal/wire",
		facts:        map[*types.Func]*funcFacts{},
		lineIgn:      map[string]map[int]map[string]bool{},
		atomicFields: map[types.Object]token.Position{},
	}
	for _, pkg := range m.Pkgs {
		k.addPackage(pkg)
	}
	return k
}

// addPackage indexes directives and seeds function summaries for pkg
// (module packages at construction; fixture packages via Run's extra).
func (k *Kit) addPackage(pkg *Package) {
	for file, lines := range lineDirectives(k.m, pkg) {
		if k.lineIgn[file] == nil {
			k.lineIgn[file] = lines
			continue
		}
		for line, passes := range lines {
			if k.lineIgn[file][line] == nil {
				k.lineIgn[file][line] = passes
				continue
			}
			for p := range passes {
				k.lineIgn[file][line][p] = true
			}
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			k.facts[obj] = k.directFacts(pkg, fd.Body)
		}
	}
	k.indexAtomicFields(pkg)
	k.solve()
}

// indexAtomicFields records every struct field whose address is passed
// to a sync/atomic operation in pkg. Index expressions (&s.words[i])
// are skipped: the atomic unit there is the element, which cannot be
// tracked statically.
func (k *Kit) indexAtomicFields(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, _, ok := k.PkgCall(pkg, call); !ok || path != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
					if obj := s.Obj(); obj != nil {
						if _, seen := k.atomicFields[obj]; !seen {
							k.atomicFields[obj] = k.m.Fset.Position(un.Pos())
						}
					}
				}
			}
			return true
		})
	}
}

func (k *Kit) directFacts(pkg *Package, body *ast.BlockStmt) *funcFacts {
	ff := &funcFacts{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			ff.mayBlock = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ff.mayBlock = true
			}
		case *ast.CompositeLit:
			if k.isResourceLit(pkg, n) {
				ff.mayCreate = true
			}
		case *ast.CallExpr:
			switch k.Classify(pkg, n) {
			case KStore:
				ff.mayStore = true
			case KFlush:
				ff.mayFlush = true
			case KUndo:
				ff.mayUndo = true
			}
			if k.directBlockingCall(pkg, n) {
				ff.mayBlock = true
			}
			if callee := k.Callee(pkg, n); callee != nil {
				ff.callees = append(ff.callees, callee)
			}
		}
		return true
	})
	return ff
}

// calleeName extracts the bare called-function name syntactically —
// for helper sets matched by name (the lockShards protocol functions),
// which must work inside fixtures and across receiver shapes alike.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// isResourceLit reports whether a composite literal constructs one of
// the lifecycle-tracked resource types. Functions containing one (or
// transitively calling one that does) are "creators": only their call
// sites bind a fresh resource, which separates real constructors from
// accessors like trace.FromContext that merely hand back an existing
// handle.
func (k *Kit) isResourceLit(pkg *Package, lit *ast.CompositeLit) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	switch {
	case path == k.tracePath && name == "Span":
		return true
	case path == k.m.Path && (name == "Rows" || name == "Session"):
		return true
	case path == k.m.Path+"/client" && name == "Conn":
		return true
	}
	return false
}

// directBlockingCall reports whether call is itself a known blocking
// primitive: sync.WaitGroup.Wait / sync.Cond.Wait (any method named
// Wait, conservatively) or time.Sleep. Channel operations are detected
// structurally in directFacts and by the lockorder pass.
func (k *Kit) directBlockingCall(pkg *Package, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
		return true
	}
	if path, name, ok := k.PkgCall(pkg, call); ok && path == "time" && name == "Sleep" {
		return true
	}
	return false
}

func (k *Kit) solve() {
	for changed := true; changed; {
		changed = false
		for _, ff := range k.facts {
			for _, callee := range ff.callees {
				cf := k.facts[callee]
				if cf == nil {
					continue
				}
				if cf.mayFlush && !ff.mayFlush {
					ff.mayFlush = true
					changed = true
				}
				if cf.mayStore && !ff.mayStore {
					ff.mayStore = true
					changed = true
				}
				if cf.mayUndo && !ff.mayUndo {
					ff.mayUndo = true
					changed = true
				}
				if cf.mayBlock && !ff.mayBlock {
					ff.mayBlock = true
					changed = true
				}
				if cf.mayCreate && !ff.mayCreate {
					ff.mayCreate = true
					changed = true
				}
			}
		}
	}
}

// MayFlush/MayStore/MayUndo/MayBlock report the summary for a resolved
// callee.
func (k *Kit) MayFlush(fn *types.Func) bool { f := k.facts[fn]; return f != nil && f.mayFlush }
func (k *Kit) MayStore(fn *types.Func) bool { f := k.facts[fn]; return f != nil && f.mayStore }
func (k *Kit) MayUndo(fn *types.Func) bool  { f := k.facts[fn]; return f != nil && f.mayUndo }
func (k *Kit) MayBlock(fn *types.Func) bool { f := k.facts[fn]; return f != nil && f.mayBlock }

// MayCreate reports whether fn (transitively) constructs a
// lifecycle-tracked resource.
func (k *Kit) MayCreate(fn *types.Func) bool { f := k.facts[fn]; return f != nil && f.mayCreate }

func (k *Kit) ignored(pass string, p token.Position) bool {
	lines := k.lineIgn[p.Filename]
	return lines != nil && lines[p.Line] != nil && lines[p.Line][pass]
}

// PkgCall resolves a package-qualified call (pkg.Func(...)) to the
// imported package path and function name. Unlike Callee, this works
// for stub-imported packages (stdlib) too: the package name identifier
// resolves to a *types.PkgName even when the member does not.
func (k *Kit) PkgCall(pkg *Package, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	x, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := pkg.Info.Uses[x].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isPanicLike treats panic(), os.Exit, and testing/log Fatal* calls as
// path terminators so error paths do not produce noise. Shared by the
// flush-discipline walker and the CFG builder.
func isPanicLike(pkg *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b != nil {
				return true
			}
		}
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Fatalln", "Exit", "Panic", "Panicf":
			return true
		}
	}
	return false
}

// Callee resolves a call to a declared module function (or method), or
// nil for builtins, stdlib stubs, and dynamic calls through values.
func (k *Kit) Callee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	return fn
}

// Method resolves a call to (package path, receiver type name, method
// name). For package-level functions the type name is "".
func (k *Kit) Method(pkg *Package, call *ast.CallExpr) (path, typ, name string, ok bool) {
	fn := k.Callee(pkg, call)
	if fn == nil {
		return "", "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", "", "", false
	}
	path, name = fn.Pkg().Path(), fn.Name()
	if recv := sig.Recv(); recv != nil {
		typ = namedName(recv.Type())
		if typ == "" {
			return "", "", "", false
		}
	}
	return path, typ, name, true
}

// Classify maps a call to its PMem call kind (KOther when unrelated).
func (k *Kit) Classify(pkg *Package, call *ast.CallExpr) CallKind {
	path, typ, name, ok := k.Method(pkg, call)
	if !ok {
		return KOther
	}
	switch {
	case path == k.pmemPath && typ == "Device":
		if _, isStore := deviceStores[name]; isStore {
			return KStore
		}
		switch {
		case deviceFlushes[name]:
			return KFlush
		case name == "CompareAndSwapU64":
			return KCAS
		}
	case path == k.pmobjPath && typ == "Pool":
		switch name {
		case "WritePPtr":
			return KStore
		case "SetRoot", "RunTx":
			return KFlush
		}
	case path == k.pmobjPath && typ == "Tx":
		switch {
		case undoEvents[name]:
			return KUndo
		case name == "Commit":
			return KFlush
		}
	}
	return KOther
}

// MultiWord reports whether a KStore call can span multiple 8-byte
// words in one logical store (tearable on crash, paper C4).
func (k *Kit) MultiWord(pkg *Package, call *ast.CallExpr) bool {
	path, typ, name, ok := k.Method(pkg, call)
	if !ok {
		return false
	}
	if path == k.pmemPath && typ == "Device" {
		return deviceStores[name]
	}
	return path == k.pmobjPath && typ == "Pool" && name == "WritePPtr"
}

func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// FuncInfo is one function-like body a pass analyzes: a declared
// function/method or a function literal.
type FuncInfo struct {
	Pkg      *Package
	Decl     *ast.FuncDecl // nil for literals
	Lit      *ast.FuncLit  // nil for declarations
	Body     *ast.BlockStmt
	Encl     *ast.BlockStmt // for literals: the enclosing declaration's body
	Obj      *types.Func    // nil for literals
	Deferred bool           // //pmem:deferred-flush on this func (or its enclosing decl)
	Ignored  map[string]bool
	Name     string
}

// Funcs returns every function-like body in pkg: each top-level
// FuncDecl, plus each FuncLit nested anywhere (literals inherit the
// enclosing declaration's directives, so annotating a function covers
// its closures).
func (k *Kit) Funcs(pkg *Package) []FuncInfo {
	var out []FuncInfo
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			deferred, ignored := funcDirectives(pkg, fd, fd.Doc)
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			out = append(out, FuncInfo{
				Pkg: pkg, Decl: fd, Body: fd.Body, Obj: obj,
				Deferred: deferred, Ignored: ignored, Name: fd.Name.Name,
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, FuncInfo{
						Pkg: pkg, Lit: lit, Body: lit.Body, Encl: fd.Body,
						Deferred: deferred, Ignored: ignored,
						Name: fd.Name.Name + " (func literal)",
					})
				}
				return true
			})
		}
	}
	return out
}

// DRAMLocals returns the objects in fi (and, for literals, the
// enclosing declaration) that are bound to pmem.NewDRAM(...) results.
// Stores through a known-volatile device need no flush and cannot tear
// in a crash-visible way, so the flush/torn passes skip them.
func (k *Kit) DRAMLocals(fi FuncInfo) map[types.Object]bool {
	out := map[types.Object]bool{}
	isNewDRAM := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := k.Callee(fi.Pkg, call)
		return fn != nil && fn.Pkg().Path() == k.pmemPath && fn.Name() == "NewDRAM"
	}
	scan := func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && isNewDRAM(rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := fi.Pkg.Info.Defs[id]; obj != nil {
								out[obj] = true
							} else if obj := fi.Pkg.Info.Uses[id]; obj != nil {
								out[obj] = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, rhs := range n.Values {
					if i < len(n.Names) && isNewDRAM(rhs) {
						if obj := fi.Pkg.Info.Defs[n.Names[i]]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	scan(fi.Encl)
	scan(fi.Body)
	return out
}

// StoreToDRAM reports whether a store call's receiver is a local
// variable known to hold a DRAM device.
func (k *Kit) StoreToDRAM(fi FuncInfo, dram map[types.Object]bool, call *ast.CallExpr) bool {
	if len(dram) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := fi.Pkg.Info.Uses[id]
	return obj != nil && dram[obj]
}

// forEachCall visits every call in fi's body in source order, without
// descending into nested function literals (each literal is analyzed
// as its own FuncInfo).
func forEachCall(fi FuncInfo, f func(*ast.CallExpr)) {
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			f(call)
		}
		return true
	})
}

// TxCovered reports whether fi runs under a pmemobj transaction: it
// has a *pmemobj.Tx receiver/parameter, or its body invokes Tx methods
// (covers types that hold the Tx in a field, like the bulk loader).
func (k *Kit) TxCovered(fi FuncInfo) bool {
	isTx := func(t types.Type) bool {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		return ok && n.Obj().Name() == "Tx" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == k.pmobjPath
	}
	if fi.Obj != nil {
		if sig, ok := fi.Obj.Type().(*types.Signature); ok {
			if r := sig.Recv(); r != nil && isTx(r.Type()) {
				return true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if isTx(sig.Params().At(i).Type()) {
					return true
				}
			}
		}
	}
	if fi.Lit != nil {
		if tv, ok := fi.Pkg.Info.Types[fi.Lit]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					if isTx(sig.Params().At(i).Type()) {
						return true
					}
				}
			}
		}
	}
	covered := false
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if covered {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			return false // literals are analyzed as their own FuncInfo
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if path, typ, _, ok := k.Method(fi.Pkg, call); ok && path == k.pmobjPath && typ == "Tx" {
				covered = true
			}
		}
		return true
	})
	return covered
}
