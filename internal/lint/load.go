// Package lint is a stdlib-only static analyzer for the poseidon tree.
//
// It loads every package in the module with go/parser, type-checks them
// with go/types, and runs pluggable passes that police disciplines the
// Go compiler cannot see: PMem flush ordering, undo-log coverage,
// torn multi-word stores (paper C4), context threading, and nil-safe
// telemetry handle use. cmd/poseidonlint is the CLI front end.
//
// The loader deliberately avoids golang.org/x/tools: module packages are
// parsed and type-checked in dependency order, imports of other module
// packages resolve to the already-checked *types.Package, and any other
// import (stdlib included) resolves to an empty stub package. Stubs make
// the checker report errors for stdlib member references, but those are
// collected and ignored — the module-internal type information the
// passes need (receiver types of Device/Pool/Tx/telemetry calls) is
// still fully populated, and loading stays fast and hermetic.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Dir     string // absolute directory
	Path    string // import path ("poseidon/internal/pmem")
	Name    string // package name
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	imports []string // module-internal imports, for topo sort
}

// Module is the loaded module: a shared FileSet plus every package in
// dependency order.
type Module struct {
	Root   string // module root (dir containing go.mod)
	Path   string // module path from go.mod
	Fset   *token.FileSet
	Pkgs   []*Package
	byPath map[string]*Package
	tags   map[string]bool // build tags considered satisfied
}

// ByPath returns the module package with the given import path, or nil.
func (m *Module) ByPath(path string) *Package { return m.byPath[path] }

// Load parses and type-checks every package under root (the directory
// containing go.mod). Test files (_test.go), testdata/ directories, and
// files excluded by a //go:build constraint are skipped, matching what
// `go build ./...` compiles with no extra tags.
func Load(root string) (*Module, error) { return LoadTags(root, nil) }

// LoadTags is Load with a set of build tags considered satisfied —
// files whose //go:build line requires one of them (e.g. the lintmutate
// mutants) are then included, exactly as `go build -tags` would.
func LoadTags(root string, tags map[string]bool) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		tags:   tags,
	}

	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		pkg, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Pkgs = append(m.Pkgs, pkg)
			m.byPath[pkg.Path] = pkg
		}
	}

	ordered, err := m.topoSort()
	if err != nil {
		return nil, err
	}
	m.Pkgs = ordered
	for _, pkg := range m.Pkgs {
		if err := m.check(pkg); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LoadDir parses and type-checks one extra directory (e.g. a lint test
// fixture under testdata/) against an already-loaded module. The
// package gets the synthetic import path asPath.
func (m *Module) LoadDir(dir, asPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := m.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Path = asPath
	if err := m.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

func (m *Module) parseDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !m.buildOK(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Dir: dir, Path: path, Name: files[0].Name.Name, Files: files}
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			ip, _ := strconv.Unquote(imp.Path.Value)
			if (ip == m.Path || strings.HasPrefix(ip, m.Path+"/")) && !seen[ip] {
				seen[ip] = true
				pkg.imports = append(pkg.imports, ip)
			}
		}
	}
	return pkg, nil
}

// buildOK evaluates a file's //go:build constraint (if any) against the
// module's tag set. Only tags are consulted — GOOS/GOARCH/go-version
// atoms evaluate false, which is right for this tree (no platform-split
// files; tagged files are opt-in test mutants).
func (m *Module) buildOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool { return m.tags[tag] })
		}
	}
	return true
}

func (m *Module) topoSort() ([]*Package, error) {
	var ordered []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		case 2:
			return nil
		}
		state[p.Path] = 1
		for _, ip := range p.imports {
			if dep := m.byPath[ip]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.Path] = 2
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

func (m *Module) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: &moduleImporter{m: m, stubs: map[string]*types.Package{}},
		Error:    func(error) {}, // stub imports make stdlib members unresolved; ignore
	}
	p, _ := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if p == nil {
		return fmt.Errorf("lint: type-checking %s produced no package", pkg.Path)
	}
	pkg.Pkg = p
	pkg.Info = info
	return nil
}

// moduleImporter resolves module-internal imports to already-checked
// packages and everything else to empty stubs ("unsafe" excepted).
type moduleImporter struct {
	m     *Module
	stubs map[string]*types.Package
}

func (i *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := i.m.byPath[path]; p != nil && p.Pkg != nil {
		return p.Pkg, nil
	}
	if s := i.stubs[path]; s != nil {
		return s, nil
	}
	name := path
	if idx := strings.LastIndex(path, "/"); idx >= 0 {
		name = path[idx+1:]
	}
	// go-ism: "gopkg.in/yaml.v2"-style names; not hit for stdlib but harmless.
	if idx := strings.Index(name, "."); idx > 0 {
		name = name[:idx]
	}
	s := types.NewPackage(path, name)
	s.MarkComplete()
	i.stubs[path] = s
	return s, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module ") {
			return strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "module")), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}
