package lint

import (
	"go/ast"
)

// shardlock: the sharded engine core deadlocks unless per-shard commit
// locks are always taken in ascending shard order, which only
// lockShards/lockAllShards guarantee. Flag any other function that
// could hold two commitMu locks at once: two (Try)Lock call sites, or
// one inside a loop whose body does not also release the lock (so the
// next iteration would stack a second acquisition on the first).
var passShardLock = &Pass{
	Name:    "shardlock",
	Doc:     "multiple shard commit locks must be acquired through lockShards (ascending order)",
	Default: true,
	Run: func(c *Context) {
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["shardlock"] {
				continue
			}
			// The blessed acquisition helper: its loop over the sorted
			// shard set is the one place multi-lock is allowed.
			if fi.Name == "lockShards" {
				continue
			}
			checkShardLocks(c, fi)
		}
	},
}

// commitMuCall reports whether call is <expr>.commitMu.<method>().
func commitMuCall(call *ast.CallExpr, methods ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok || recv.Sel.Name != "commitMu" {
		return false
	}
	for _, m := range methods {
		if sel.Sel.Name == m {
			return true
		}
	}
	return false
}

// loopReleasesLock reports whether the loop body contains a
// commitMu.Unlock() outside nested loops/literals — i.e. the lock taken
// in iteration i is provably released before iteration i+1 acquires.
func loopReleasesLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			if commitMuCall(n, "Unlock") {
				found = true
			}
		}
		return true
	})
	return found
}

func checkShardLocks(c *Context, fi FuncInfo) {
	var acquisitions []*ast.CallExpr
	flaggedLoop := false

	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if n != fi.Lit {
				return // analyzed as its own FuncInfo
			}
		case *ast.ForStmt:
			looped := !loopReleasesLock(n.Body)
			if n.Init != nil {
				walk(n.Init, inLoop)
			}
			walk(n.Body, inLoop || looped)
			return
		case *ast.RangeStmt:
			looped := !loopReleasesLock(n.Body)
			walk(n.Body, inLoop || looped)
			return
		case *ast.CallExpr:
			if commitMuCall(n, "Lock", "TryLock") {
				if inLoop && !flaggedLoop {
					flaggedLoop = true
					c.Reportf(n.Pos(), "shard commit lock acquired in a loop without an in-loop release can hold several commitMu at once in arbitrary order; acquire the set through lockShards")
				}
				acquisitions = append(acquisitions, n)
				if len(acquisitions) == 2 && !flaggedLoop {
					c.Reportf(n.Pos(), "function takes a second shard commit lock directly; two commitMu held at once must be acquired through lockShards (ascending shard order)")
				}
			}
		}
		// Recurse into children, preserving loop context.
		for _, child := range childNodes(n) {
			walk(child, inLoop)
		}
	}
	walk(fi.Body, false)
}

// childNodes returns n's immediate children via ast.Inspect's first
// level (Inspect visits n itself first, then children).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
