package lint

import (
	"go/ast"
	"go/types"
)

// lifecycle: resources with an explicit close protocol must be released
// on every path or handed to someone who will. The tracked types and
// their release methods:
//
//	*trace.Span     → End       (a span never Ended never exports; its
//	                             children mis-parent — the PR 8 hazard)
//	*poseidon.Rows  → Close / Collect  (an unclosed cursor pins a reader
//	                             transaction and its MVTO snapshot)
//	*poseidon.Session → Close   (leaks tracked transactions)
//	*client.Conn    → Close     (leaks the socket and a server slot)
//
// The analysis is a may-leak union over the CFG: a resource bound to a
// local that can reach a return point still open — with no deferred
// release — is flagged at its creation site. Values that escape (passed
// to a call, returned, stored into a struct/slice/map/channel, captured
// by a closure) transfer ownership and are not tracked; a creation whose
// result is discarded outright is flagged immediately.
var passLifecycle = &Pass{
	Name:    "lifecycle",
	Doc:     "spans must be Ended and Rows/Session/Conn Closed on every path, or escape to a new owner",
	Default: true,
	Run: func(c *Context) {
		if c.Pkg.Path == c.Kit.tracePath {
			return // the span machinery itself
		}
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["lifecycle"] {
				continue
			}
			checkLifecycle(c, fi)
		}
	},
}

// lifeResource describes one tracked resource type.
type lifeResource struct {
	kind    string // human name in reports
	release map[string]bool
}

// lifeResourceFor classifies a type as tracked (after stripping one
// pointer).
func (c *Context) lifeResourceFor(t types.Type) (lifeResource, bool) {
	p, ok := t.(*types.Pointer)
	if !ok {
		return lifeResource{}, false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return lifeResource{}, false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	k := c.Kit
	switch {
	case path == k.tracePath && name == "Span":
		return lifeResource{kind: "trace span", release: map[string]bool{"End": true}}, true
	case path == k.m.Path && name == "Rows":
		return lifeResource{kind: "Rows cursor", release: map[string]bool{"Close": true, "Collect": true}}, true
	case path == k.m.Path && name == "Session":
		return lifeResource{kind: "Session", release: map[string]bool{"Close": true}}, true
	case path == k.m.Path+"/client" && name == "Conn":
		return lifeResource{kind: "client connection", release: map[string]bool{"Close": true}}, true
	}
	return lifeResource{}, false
}

// creationIn finds tracked resources created by call: the indices of
// its result tuple whose types are tracked. Only calls to creators —
// functions that (transitively) contain a composite literal of a
// tracked type — count; accessors like trace.FromContext return an
// existing handle, not a fresh obligation. pending reports whether the
// call also returns an error: such results are nil until the error is
// checked, so they only become an obligation on first use.
func (c *Context) creationIn(pkg *Package, call *ast.CallExpr) (out map[int]lifeResource, pending bool) {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return nil, false
	}
	note := func(i int, t types.Type) {
		if r, tracked := c.lifeResourceFor(t); tracked {
			if out == nil {
				out = map[int]lifeResource{}
			}
			out[i] = r
		}
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			note(i, t.At(i).Type())
			if types.Identical(t.At(i).Type(), errType) {
				pending = true
			}
		}
	default:
		note(0, t)
	}
	if out == nil {
		return nil, false
	}
	fn := c.Kit.Callee(pkg, call)
	if fn == nil || !c.Kit.MayCreate(fn) {
		return nil, false
	}
	return out, pending
}

// lifeTracked is one resource bound to a local identifier.
type lifeTracked struct {
	obj     types.Object
	res     lifeResource
	call    *ast.CallExpr // creation site, for reporting
	pending bool          // from a (T, error) call: nil until err is checked
}

// lifeState maps a tracked local to its obligation strength. A pending
// resource came from a (T, error) call and is nil until the error is
// checked; it is promoted to open on first use through the identifier.
// Only open resources are reported at exit — so the common
//
//	rows, err := s.Query(...)
//	if err != nil { return err }   // rows is nil here, nothing to close
//
// idiom is clean, while leaking an actually-used handle is not.
const (
	lifePending = 1
	lifeOpen    = 2
)

type lifeState map[types.Object]int // may-live resources

func (s lifeState) clone() lifeState {
	out := make(lifeState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinLife(a, b lifeState) lifeState {
	out := a.clone()
	for k, v := range b {
		if v > out[k] {
			out[k] = v
		}
	}
	return out
}

func eqLife(a, b lifeState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func checkLifecycle(c *Context, fi FuncInfo) {
	pkg := fi.Pkg

	// Pass 1: find creations bound to local idents, and creations whose
	// results are discarded outright.
	tracked := map[types.Object]*lifeTracked{}
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			created, pending := c.creationIn(pkg, call)
			for i, res := range created {
				if i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					if !pending {
						c.Reportf(call.Pos(), "%s assigned to _ is never %s; bind it and release it", res.kind, releaseName(res))
					}
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj != nil {
					tracked[obj] = &lifeTracked{obj: obj, res: res, call: call, pending: pending}
				}
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			created, pending := c.creationIn(pkg, call)
			if pending {
				return true // (T, error) result can't appear as a bare ExprStmt
			}
			for _, res := range created {
				c.Reportf(call.Pos(), "%s discarded: the result is never %s; bind it and release it", res.kind, releaseName(res))
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 2: escape analysis. Any use of a tracked ident other than a
	// method call / field access through it, or a bare nil-check-style
	// comparison, transfers ownership — stop tracking it.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			// Captured by a closure: the closure owns it now. Returning
			// false skips the pop, so don't push the literal.
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						delete(tracked, obj)
					}
				}
				return true
			})
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || tracked[obj] == nil {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.SelectorExpr:
			if p.X == id {
				return true // sp.End(), rows.Next(), rows.err — a use, not a transfer
			}
		case *ast.BinaryExpr:
			return true // if sp != nil { ... }
		case *ast.AssignStmt:
			// Being the LHS target (re-binding) is handled by the
			// dataflow; being an RHS value transfers ownership.
			for _, l := range p.Lhs {
				if l == id {
					return true
				}
			}
		}
		delete(tracked, obj)
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 3: may-leak dataflow. Deferred releases apply at Exit.
	g := c.Kit.BuildCFG(fi)
	releasedBy := func(call *ast.CallExpr) types.Object {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return nil
		}
		if t := tracked[obj]; t != nil && t.res.release[sel.Sel.Name] {
			return obj
		}
		return nil
	}
	// promote upgrades pending resources to open on first use through the
	// identifier (rows.Next(), rows.Collect(), ...): past the error check
	// the handle is live and must be released.
	promote := func(st lifeState, n ast.Node) {
		switch n.(type) {
		case *ast.SelectStmt, *ast.ReturnStmt:
			return // marker nodes: children appear as their own CFG nodes
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil && st[obj] == lifePending {
					st[obj] = lifeOpen
				}
			}
			return true
		})
	}
	step := func(st lifeState, n ast.Node) lifeState {
		promote(st, n)
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				created, _ := c.creationIn(pkg, call)
				for i := range created {
					if i < len(as.Lhs) {
						if id, ok := as.Lhs[i].(*ast.Ident); ok {
							var obj types.Object = pkg.Info.Defs[id]
							if obj == nil {
								obj = pkg.Info.Uses[id]
							}
							if t := tracked[obj]; t != nil {
								if t.pending {
									st[obj] = lifePending
								} else {
									st[obj] = lifeOpen
								}
							}
						}
					}
				}
			}
		}
		nodeCalls(n, func(call *ast.CallExpr) {
			if obj := releasedBy(call); obj != nil {
				delete(st, obj)
			}
		})
		return st
	}
	in := runFlow(g, lifeState{}, lifeState.clone, joinLife, eqLife, step)
	exit, reachable := exitStates(g, in, lifeState.clone, joinLife, step)
	if !reachable {
		return // every path panics
	}
	for _, d := range g.Defers {
		if obj := releasedBy(d); obj != nil {
			delete(exit, obj)
		}
		if lit, ok := d.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := releasedBy(call); obj != nil {
						delete(exit, obj)
					}
				}
				return true
			})
		}
	}
	for obj, v := range exit {
		if v != lifeOpen {
			continue // pending at exit: an error path where the handle is nil
		}
		t := tracked[obj]
		c.Reportf(t.call.Pos(), "%s %q may still be open at return on some path in %s; %s it on every path (or defer it)", t.res.kind, obj.Name(), fi.Name, releaseName(t.res))
	}
}

func releaseName(r lifeResource) string {
	if r.release["End"] {
		return "End"
	}
	return "Close"
}
