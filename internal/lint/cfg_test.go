package lint

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadCFGShapes loads the cfgshapes fixture and returns its functions
// by name, plus the Kit to build CFGs with.
func loadCFGShapes(t *testing.T) (*Kit, map[string]FuncInfo) {
	t.Helper()
	m := loadModule(t)
	dir := filepath.Join(m.Root, "internal/lint/testdata/src/cfgshapes")
	pkg, err := m.LoadDir(dir, "poseidon/internal/lint/testdata/cfgshapes")
	if err != nil {
		t.Fatal(err)
	}
	k := newKit(m)
	k.addPackage(pkg)
	funcs := map[string]FuncInfo{}
	for _, fi := range k.Funcs(pkg) {
		funcs[fi.Name] = fi
	}
	return k, funcs
}

// markSets runs the mark()-label dataflow over fi's CFG and returns the
// may-reach (union join) and must-reach (intersection join) label sets
// at the exit, plus whether the exit is reachable at all.
func markSets(k *Kit, fi FuncInfo) (may, must []string, reachable bool) {
	g := k.BuildCFG(fi)
	type set = map[string]bool
	clone := func(s set) set {
		out := make(set, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}
	union := func(a, b set) set {
		out := clone(a)
		for k := range b {
			out[k] = true
		}
		return out
	}
	intersect := func(a, b set) set {
		out := set{}
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	}
	eq := func(a, b set) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	step := func(s set, n ast.Node) set {
		nodeCalls(n, func(call *ast.CallExpr) {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					s[strings.Trim(lit.Value, `"`)] = true
				}
			}
		})
		return s
	}
	names := func(join func(set, set) set) (sorted []string, ok bool) {
		in := runFlow(g, set{}, clone, join, eq, step)
		exit, reach := exitStates(g, in, clone, join, step)
		if !reach {
			return nil, false
		}
		for k := range exit {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		return sorted, true
	}
	may, reachable = names(union)
	if !reachable {
		return nil, nil, false
	}
	must, _ = names(intersect)
	return may, must, true
}

func TestCFGDataflow(t *testing.T) {
	k, funcs := loadCFGShapes(t)
	cases := []struct {
		fn   string
		may  string // comma-joined sorted label sets
		must string
	}{
		// Both arms feed the join; neither alone dominates the exit.
		{"shapeIfElse", "else,join,then", "join"},
		// The early return bypasses the tail on one path.
		{"shapeEarlyReturn", "tail", ""},
		// continue and break both leave the body reachable but optional;
		// only the code after the loop is on every path.
		{"shapeLoop", "after,body", "after"},
		// must including "def" proves the fallthrough edge: without it the
		// case-1 arm would jump straight to the join.
		{"shapeFallthrough", "def,one", "def"},
		// Select arms are alternative blocks joining after the statement.
		{"shapeSelect", "join,none,recv", "join"},
		// break outer must leave the *outer* loop: the code after it stays
		// on every path, which a break-to-exit mistake would violate.
		{"shapeLabeledBreak", "after,inner", "after"},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fi, ok := funcs[tc.fn]
			if !ok {
				t.Fatalf("fixture function %s not found", tc.fn)
			}
			may, must, reachable := markSets(k, fi)
			if !reachable {
				t.Fatalf("%s: exit unreachable", tc.fn)
			}
			if got := strings.Join(may, ","); got != tc.may {
				t.Errorf("%s may-reach = %q, want %q", tc.fn, got, tc.may)
			}
			if got := strings.Join(must, ","); got != tc.must {
				t.Errorf("%s must-reach = %q, want %q", tc.fn, got, tc.must)
			}
		})
	}
}

func TestCFGPanicEndsPath(t *testing.T) {
	k, funcs := loadCFGShapes(t)
	if _, _, reachable := markSets(k, funcs["shapeAllPanic"]); reachable {
		t.Error("shapeAllPanic: exit reported reachable; panic should end the path")
	}
}

func TestCFGDefers(t *testing.T) {
	k, funcs := loadCFGShapes(t)
	g := k.BuildCFG(funcs["shapeDefers"])
	var labels []string
	for _, d := range g.Defers {
		if lit, ok := d.Args[0].(*ast.BasicLit); ok {
			labels = append(labels, strings.Trim(lit.Value, `"`))
		}
	}
	if got := strings.Join(labels, ","); got != "d1,d2" {
		t.Errorf("Defers = %q, want %q (defer-statement order, conditional ones included)", got, "d1,d2")
	}
}

func TestCFGStructure(t *testing.T) {
	k, funcs := loadCFGShapes(t)
	for name, fi := range funcs {
		g := k.BuildCFG(fi)
		known := map[*Block]bool{}
		for _, blk := range g.Blocks {
			known[blk] = true
		}
		if !known[g.Entry] || !known[g.Exit] {
			t.Errorf("%s: Entry/Exit not in Blocks", name)
		}
		if len(g.Exit.Succs) != 0 {
			t.Errorf("%s: Exit has successors", name)
		}
		for _, blk := range g.Blocks {
			for _, s := range blk.Succs {
				if !known[s] {
					t.Errorf("%s: edge to a block outside Blocks", name)
				}
			}
		}
	}
}

// TestCFGNoDoubleCount guards the return-marker convention: a call in a
// return statement's results is emitted once as its own node, and the
// marker node is skipped by nodeCalls — so the call is seen exactly
// once across the whole graph.
func TestCFGNoDoubleCount(t *testing.T) {
	k, funcs := loadCFGShapes(t)
	g := k.BuildCFG(funcs["shapeReturnCall"])
	calls := 0
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			nodeCalls(n, func(call *ast.CallExpr) {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "count" {
					calls++
				}
			})
		}
	}
	if calls != 1 {
		t.Errorf("count() visited %d times across the CFG, want exactly 1", calls)
	}
}
