package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flush-discipline: a function that stores to a pmem.Device (or writes
// a PPtr through a Pool) must reach a Flush/Persist covering the store
// on every path to return, or be annotated //pmem:deferred-flush with a
// reason. Functions running under a pmemobj transaction are exempt —
// the commit protocol flushes every touched range (and pass tx-undo-log
// checks them instead). This is the static analogue of PMDK pmemcheck's
// "stored without flush" report.
var passFlushDiscipline = &Pass{
	Name:    "flush-discipline",
	Doc:     "pmem stores must be flushed on every path to return (//pmem:deferred-flush to defer to the caller)",
	Default: true,
	Run: func(c *Context) {
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Deferred || fi.Ignored["flush-discipline"] {
				continue
			}
			if c.Kit.TxCovered(fi) {
				continue
			}
			w := &flushWalker{c: c, fi: fi, found: map[token.Pos]string{}, dram: c.Kit.DRAMLocals(fi)}
			st := flushState{pending: map[token.Pos]string{}}
			st = w.stmt(fi.Body, st)
			if !st.terminated {
				w.flushPoint(st) // implicit return at end of body
			}
			for pos, what := range w.found {
				c.Reportf(pos, "%s store in %s is not flushed on every path to return; call Flush/Persist or annotate //pmem:deferred-flush <reason>", what, fi.Name)
			}
		}
	},
}

// flushState is the abstract state at one program point: which stores
// are not yet covered by a flush, whether a flush is deferred, and
// whether this path has terminated (return/panic).
type flushState struct {
	pending    map[token.Pos]string
	deferFlush bool
	terminated bool
}

func (s flushState) clone() flushState {
	p := make(map[token.Pos]string, len(s.pending))
	for k, v := range s.pending {
		p[k] = v
	}
	return flushState{pending: p, deferFlush: s.deferFlush, terminated: s.terminated}
}

func join(a, b flushState) flushState {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := a.clone()
	for k, v := range b.pending {
		out.pending[k] = v
	}
	out.deferFlush = a.deferFlush || b.deferFlush
	return out
}

type flushWalker struct {
	c     *Context
	fi    FuncInfo
	found map[token.Pos]string
	dram  map[types.Object]bool // locals bound to pmem.NewDRAM devices
}

// flushPoint records every pending store as unflushed at a return.
func (w *flushWalker) flushPoint(st flushState) {
	if st.deferFlush {
		return
	}
	for pos, what := range st.pending {
		w.found[pos] = what
	}
}

// scan applies call effects inside a non-statement node, in pre-order
// (close enough to evaluation order for this analysis). Function
// literals are skipped — they run later and are analyzed separately.
func (w *flushWalker) scan(n ast.Node, st flushState) flushState {
	if n == nil {
		return st
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case ast.Stmt:
			return true
		case *ast.CallExpr:
			st = w.call(x, st)
		}
		return true
	})
	return st
}

func (w *flushWalker) call(call *ast.CallExpr, st flushState) flushState {
	k := w.c.Kit
	switch k.Classify(w.fi.Pkg, call) {
	case KStore:
		if k.StoreToDRAM(w.fi, w.dram, call) {
			break
		}
		_, _, name, _ := k.Method(w.fi.Pkg, call)
		st.pending[call.Pos()] = name
	case KFlush:
		st.pending = map[token.Pos]string{}
	case KCAS, KUndo:
		// CaS is 8-byte failure-atomic control state (recovery revalidates
		// it); undo-log writes are the log's own protocol. Neither needs a
		// covering flush here.
	default:
		if isPanicLike(w.fi.Pkg, call) {
			st.terminated = true
			st.pending = map[token.Pos]string{}
			return st
		}
		if callee := k.Callee(w.fi.Pkg, call); callee != nil {
			switch {
			case k.MayFlush(callee):
				// Assume the callee (or the commit protocol it enters)
				// covers anything pending; a callee that both stores and
				// flushes is trusted to be internally disciplined.
				st.pending = map[token.Pos]string{}
			case k.MayStore(callee):
				st.pending[call.Pos()] = callee.Name()
			}
		}
	}
	return st
}

func (w *flushWalker) stmt(s ast.Stmt, st flushState) flushState {
	switch s := s.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		for _, sub := range s.List {
			st = w.stmt(sub, st)
		}
		return st
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.scan(r, st)
		}
		w.flushPoint(st)
		st.terminated = true
		st.pending = map[token.Pos]string{}
		return st
	case *ast.IfStmt:
		st = w.scan(s.Init, st)
		st = w.scan(s.Cond, st)
		then := w.stmt(s.Body, st.clone())
		els := st
		if s.Else != nil {
			els = w.stmt(s.Else, st.clone())
		}
		return join(then, els)
	case *ast.ForStmt:
		st = w.scan(s.Init, st)
		st = w.scan(s.Cond, st)
		body := w.stmt(s.Body, st.clone())
		body = w.scan(s.Post, body)
		body.terminated = false
		return join(st, body)
	case *ast.RangeStmt:
		st = w.scan(s.X, st)
		body := w.stmt(s.Body, st.clone())
		body.terminated = false
		return join(st, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, st)
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			st = w.scan(a, st)
		}
		k := w.c.Kit
		if k.Classify(w.fi.Pkg, s.Call) == KFlush {
			st.deferFlush = true
		} else if callee := k.Callee(w.fi.Pkg, s.Call); callee != nil && k.MayFlush(callee) {
			st.deferFlush = true
		} else if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && litMayFlush(w.c.Kit, w.fi.Pkg, lit) {
			st.deferFlush = true
		}
		return st
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			st = w.scan(a, st)
		}
		return st
	default:
		return w.scan(s, st)
	}
}

// branches joins the arms of a switch/type-switch/select; the pre-state
// joins in too unless there is a default clause.
func (w *flushWalker) branches(s ast.Stmt, st flushState) flushState {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		st = w.scan(s.Init, st)
		st = w.scan(s.Tag, st)
		body = s.Body
	case *ast.TypeSwitchStmt:
		st = w.scan(s.Init, st)
		st = w.scan(s.Assign, st)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := flushState{terminated: true, pending: map[token.Pos]string{}}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			arm := st.clone()
			for _, e := range c.List {
				arm = w.scan(e, arm)
			}
			for _, sub := range c.Body {
				arm = w.stmt(sub, arm)
			}
			out = join(out, arm)
			continue
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			arm := st.clone()
			arm = w.stmt(c.Comm, arm)
			stmts = c.Body
			for _, sub := range stmts {
				arm = w.stmt(sub, arm)
			}
			out = join(out, arm)
		}
	}
	if !hasDefault {
		out = join(out, st)
	}
	return out
}

// litMayFlush reports whether a deferred func literal directly flushes.
func litMayFlush(k *Kit, pkg *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if k.Classify(pkg, call) == KFlush {
				found = true
			}
			if callee := k.Callee(pkg, call); callee != nil && k.MayFlush(callee) {
				found = true
			}
		}
		return !found
	})
	return found
}

