package lint

import (
	"go/ast"
	"go/token"
)

// tx-undo-log: inside a pmemobj transaction, a direct device write must
// be preceded (in this function) by undo-log coverage — Tx.Snapshot of
// the range, Tx.NoteWrite for freshly-allocated memory, or Tx.Alloc
// (which notes the new block itself). A write with no prior coverage
// event cannot be rolled back if the transaction aborts or the process
// crashes mid-commit. internal/pmemobj itself is exempt: it implements
// the log.
var passTxUndoLog = &Pass{
	Name:    "tx-undo-log",
	Doc:     "device writes inside a pmemobj transaction need prior undo-log coverage (Snapshot/NoteWrite/Alloc)",
	Default: true,
	Run: func(c *Context) {
		if c.Pkg.Path == c.Kit.pmobjPath || c.Pkg.Path == c.Kit.pmemPath {
			return
		}
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["tx-undo-log"] || !c.Kit.TxCovered(fi) {
				continue
			}
			checkUndoOrder(c, fi)
		}
	},
}

func checkUndoOrder(c *Context, fi FuncInfo) {
	k := c.Kit
	var stores []*ast.CallExpr
	var covers []token.Pos // positions of undo-coverage events
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			return false // analyzed as its own FuncInfo
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch k.Classify(fi.Pkg, call) {
		case KStore:
			stores = append(stores, call)
		case KUndo:
			covers = append(covers, call.Pos())
		default:
			// A helper that takes the tx and snapshots inside (e.g.
			// Table.InsertTx) covers what it writes and typically what
			// the caller writes next to it.
			if callee := k.Callee(fi.Pkg, call); callee != nil && k.MayUndo(callee) {
				covers = append(covers, call.Pos())
			}
		}
		return true
	})
	for _, store := range stores {
		covered := false
		for _, p := range covers {
			if p < store.Pos() {
				covered = true
				break
			}
		}
		if !covered {
			_, _, name, _ := k.Method(fi.Pkg, store)
			c.Reportf(store.Pos(), "%s in transactional %s has no preceding undo-log coverage (Tx.Snapshot/NoteWrite/Alloc); the write cannot be rolled back", name, fi.Name)
		}
	}
}
