package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// sarif.go: minimal SARIF 2.1.0 output so CI can upload findings to
// code scanning. Only the fields GitHub's ingester needs are emitted:
// one run, one rule per registered pass, one result per finding with a
// physical location relative to the module root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. Baselined findings
// should be filtered out by the caller; everything written here shows
// up as an alert.
func WriteSARIF(w io.Writer, root string, findings []Finding) error {
	var rules []sarifRule
	for _, p := range Passes() {
		rules = append(rules, sarifRule{ID: p.Name, ShortDescription: sarifText{Text: p.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = filepath.ToSlash(rel)
		}
		line := f.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Pass,
			Level:   "warning",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "poseidonlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
