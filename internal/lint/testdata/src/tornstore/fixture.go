// Golden fixture for the torn-store pass: multi-word persistent stores
// outside a transaction are flagged (paper C4) even when flushed;
// transactional and annotated ones are not.
package fixture

import (
	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
)

func bad(dev *pmem.Device, off uint64, words []uint64) {
	dev.WriteWords(off, words) // want torn-store
	dev.Persist(off, uint64(len(words))*8)
}

func badPPtr(p *pmemobj.Pool, off uint64, pp pmemobj.PPtr) {
	p.WritePPtr(off, pp) // want torn-store
	p.Device().Persist(off, 16)
}

func goodSingleWord(dev *pmem.Device, off uint64) {
	dev.WriteU64(off, 1) // 8-byte stores are failure-atomic
	dev.Persist(off, 8)
}

func goodTx(p *pmemobj.Pool, off uint64, words []uint64) error {
	return p.RunTx(func(tx *pmemobj.Tx) error {
		if err := tx.Snapshot(off, uint64(len(words))*8); err != nil {
			return err
		}
		p.Device().WriteWords(off, words) // undo log makes this failure-atomic
		return nil
	})
}

func annotated(dev *pmem.Device, off uint64, words []uint64) {
	//poseidonlint:ignore torn-store staging area is unreachable until an 8-byte commit word flips after Persist
	dev.WriteWords(off, words)
	dev.Persist(off, uint64(len(words))*8)
}
