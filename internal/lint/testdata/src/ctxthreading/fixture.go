// Golden fixture for the ctx-threading pass: library code must thread
// the caller's context instead of constructing one or calling the
// legacy non-Ctx entry points.
package fixture

import (
	"context"

	"poseidon/internal/core"
	"poseidon/internal/query"
)

func badBackground(pr *query.Prepared, tx *core.Tx) error {
	ctx := context.Background() // want ctx-threading
	return pr.RunCtx(ctx, tx, nil, nil)
}

func badTODO(pr *query.Prepared, tx *core.Tx) error {
	return pr.RunCtx(context.TODO(), tx, nil, nil) // want ctx-threading
}

func badLegacy(pr *query.Prepared, tx *core.Tx) error {
	return pr.Run(tx, nil, func(query.Row) bool { return true }) // want ctx-threading
}

func good(ctx context.Context, pr *query.Prepared, tx *core.Tx) error {
	return pr.RunCtx(ctx, tx, nil, nil)
}

//poseidonlint:ignore ctx-threading fixture stand-in for a documented legacy shim
func annotatedShim(pr *query.Prepared, tx *core.Tx) error {
	return pr.Run(tx, nil, func(query.Row) bool { return true })
}
