// Golden fixture for the telemetry-nil-safety pass: telemetry and
// trace handles are nil when their subsystem is disabled, so they must
// stay pointers and be used through their nil-safe methods.
package fixture

import (
	"poseidon/internal/telemetry"
	"poseidon/internal/trace"
)

type badHolder struct {
	c telemetry.Counter // want telemetry-nil-safety
}

func badDeref(c *telemetry.Counter) telemetry.Counter { // want telemetry-nil-safety
	return *c // want telemetry-nil-safety
}

func badLiteral() {
	c := telemetry.Counter{} // want telemetry-nil-safety
	_ = c
}

type goodHolder struct {
	c *telemetry.Counter
	h *telemetry.Histogram
}

func goodUse(g goodHolder) {
	g.c.Inc() // nil-safe even when telemetry is disabled
	g.h.Observe(1)
}

//poseidonlint:ignore telemetry-nil-safety fixture for the annotated-exception path
func annotatedDeref(c *telemetry.Counter) {
	_ = *c
}

type badTraceHolder struct {
	sp trace.Span   // want telemetry-nil-safety
	tr trace.Tracer // want telemetry-nil-safety
}

func badTracerDeref(t *trace.Tracer) {
	_ = *t // want telemetry-nil-safety
}

func badSpanLiteral() {
	sp := trace.Span{} // want telemetry-nil-safety
	_ = sp
}

func goodTraceUse(t *trace.Tracer, sp *trace.Span) {
	child := sp.Child("stage", trace.KindExec) // nil-safe when tracing is off
	child.SetAttr("rows", int64(1))
	child.End()
	_ = t.Trace(0)
}
