// Golden fixture for the telemetry-nil-safety pass: handles are nil
// when telemetry is disabled, so they must stay pointers and be used
// through their nil-safe methods.
package fixture

import "poseidon/internal/telemetry"

type badHolder struct {
	c telemetry.Counter // want telemetry-nil-safety
}

func badDeref(c *telemetry.Counter) telemetry.Counter { // want telemetry-nil-safety
	return *c // want telemetry-nil-safety
}

func badLiteral() {
	c := telemetry.Counter{} // want telemetry-nil-safety
	_ = c
}

type goodHolder struct {
	c *telemetry.Counter
	h *telemetry.Histogram
}

func goodUse(g goodHolder) {
	g.c.Inc() // nil-safe even when telemetry is disabled
	g.h.Observe(1)
}

//poseidonlint:ignore telemetry-nil-safety fixture for the annotated-exception path
func annotatedDeref(c *telemetry.Counter) {
	_ = *c
}
