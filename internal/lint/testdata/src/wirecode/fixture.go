// Golden fixture for the wirecode pass: wire.Error needs a stable
// Code* constant, and switches over Msg* tags must be exhaustive or
// carry a default.
package fixture

import "poseidon/internal/wire"

func badNoCode(msg string) wire.Error {
	return wire.Error{Message: msg} // want wirecode
}

func badStringCode(msg string) *wire.Error {
	return &wire.Error{Code: "oops-ad-hoc", Message: msg} // want wirecode
}

func badPartialSwitch(tag byte) string {
	switch tag { // want wirecode
	case wire.MsgHello:
		return "hello"
	case wire.MsgRun:
		return "run"
	}
	return ""
}

func goodConstCode(msg string) wire.Error {
	return wire.Error{Code: wire.CodeInternal, Message: msg}
}

func goodCodeVariable(code, msg string) wire.Error {
	return wire.Error{Code: code, Message: msg}
}

func goodDefaultSwitch(tag byte) string {
	switch tag {
	case wire.MsgHello:
		return "hello"
	default:
		return "other"
	}
}

func goodUnrelatedSwitch(n int) string {
	switch n {
	case 1:
		return "one"
	case 2:
		return "two"
	}
	return ""
}

//poseidonlint:ignore wirecode fixture stand-in for a deliberately partial dispatcher
func annotatedPartial(tag byte) bool {
	switch tag {
	case wire.MsgHello, wire.MsgGoodbye:
		return true
	}
	return false
}
