// Golden fixture for the lockorder pass: the commitMu/idxMu/beginMu
// lock hierarchy must be acquired singly (multi-shard sets only through
// lockShards), released on every path, and never held across a
// blocking operation.
package fixture

import "sync"

type shardT struct {
	commitMu sync.Mutex
	idxMu    sync.RWMutex
}

type engineT struct {
	shards []*shardT
}

// lockShards is the blessed ascending multi-acquire helper; exempt by
// name, like its counterpart in internal/core.
func (e *engineT) lockShards(order []int) {
	for _, i := range order {
		e.shards[i].commitMu.Lock()
	}
}

func (e *engineT) unlockShards(order []int) {
	for i := len(order) - 1; i >= 0; i-- {
		e.shards[order[i]].commitMu.Unlock()
	}
}

func badTwoLocks(a, b *shardT) {
	a.commitMu.Lock()
	b.commitMu.Lock() // want lockorder
	b.commitMu.Unlock()
	a.commitMu.Unlock()
}

func badDoubleLock(s *shardT) {
	s.idxMu.Lock()
	s.idxMu.Lock() // want lockorder
	s.idxMu.Unlock()
	s.idxMu.Unlock()
}

func badLoopLock(shards []*shardT) { // want lockorder
	for _, sh := range shards {
		sh.commitMu.Lock() // want lockorder
	}
}

func badRangeTryLock(shards []*shardT) {
	for _, sh := range shards {
		sh.commitMu.TryLock() // want lockorder
	}
}

func badMissedUnlock(s *shardT, fail bool) bool { // want lockorder
	s.idxMu.Lock()
	if fail {
		return false // error path forgets the unlock
	}
	s.idxMu.Unlock()
	return true
}

func badDoubleSet(e *engineT, order []int) {
	e.lockShards(order)
	e.lockShards(order) // want lockorder
	e.unlockShards(order)
	e.unlockShards(order)
}

func badBlockUnderLock(s *shardT, ch chan int) {
	s.commitMu.Lock()
	ch <- 1 // want lockorder
	s.commitMu.Unlock()
}

func goodSingleLock(s *shardT) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
}

func goodLoopLockUnlock(shards []*shardT) {
	for _, sh := range shards {
		sh.commitMu.Lock()
		sh.commitMu.Unlock()
	}
}

func goodViaHelper(e *engineT, order []int) {
	e.lockShards(order)
	defer e.unlockShards(order)
}

func goodEarlyReturnDefer(s *shardT, fail bool) bool {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	if fail {
		return false
	}
	return true
}

func goodBlockAfterUnlock(s *shardT, ch chan int) {
	s.commitMu.Lock()
	s.commitMu.Unlock()
	ch <- 1
}

//poseidonlint:ignore lockorder fixture stand-in for a documented nested acquisition
func annotatedMultiLock(a, b *shardT) {
	a.commitMu.Lock()
	b.commitMu.Lock()
	b.commitMu.Unlock()
	a.commitMu.Unlock()
}
