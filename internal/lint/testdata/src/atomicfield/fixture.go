// Golden fixture for the atomicfield pass: a field updated through
// sync/atomic anywhere must be accessed atomically everywhere.
package fixture

import "sync/atomic"

type counterT struct {
	hits  uint64 // atomic: see bump
	total uint64 // plain, guarded elsewhere
}

func bump(c *counterT) {
	atomic.AddUint64(&c.hits, 1)
}

func badPlainRead(c *counterT) uint64 {
	return c.hits // want atomicfield
}

func badPlainWrite(c *counterT) {
	c.hits = 0 // want atomicfield
}

func goodAtomicRead(c *counterT) uint64 {
	return atomic.LoadUint64(&c.hits)
}

func goodAtomicStore(c *counterT) {
	atomic.StoreUint64(&c.hits, 0)
}

func goodOtherField(c *counterT) uint64 {
	c.total++
	return c.total
}

func annotatedInit() *counterT {
	c := &counterT{}
	//poseidonlint:ignore atomicfield pre-publication initialization, not yet shared
	c.hits = 1
	return c
}
