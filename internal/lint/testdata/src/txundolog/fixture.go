// Golden fixture for the tx-undo-log pass: direct device writes inside
// a pmemobj transaction must be preceded by undo-log coverage.
package fixture

import (
	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
)

func bad(tx *pmemobj.Tx, dev *pmem.Device, off uint64) {
	dev.WriteU64(off, 1) // want tx-undo-log
}

func badCallback(p *pmemobj.Pool, off uint64) error {
	return p.RunTx(func(tx *pmemobj.Tx) error {
		p.Device().WriteU64(off, 1) // want tx-undo-log
		return nil
	})
}

func good(tx *pmemobj.Tx, dev *pmem.Device, off uint64) error {
	if err := tx.Snapshot(off, 8); err != nil {
		return err
	}
	dev.WriteU64(off, 1)
	return nil
}

func goodFresh(tx *pmemobj.Tx, dev *pmem.Device) error {
	off, err := tx.Alloc(64)
	if err != nil {
		return err
	}
	dev.WriteU64(off, 1) // fresh block: Alloc noted the range
	return nil
}

//poseidonlint:ignore tx-undo-log scratch word outside the pool's reachable object graph; rollback cannot observe it
func annotated(tx *pmemobj.Tx, dev *pmem.Device, off uint64) {
	dev.WriteU64(off, 1)
}
