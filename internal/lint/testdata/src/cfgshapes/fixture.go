// Control-flow shapes exercised by the CFG builder unit tests. Each
// function is one graph shape; the tests run tiny call-set dataflows
// over them (union join for may-reach, intersection join for
// must-reach) and assert against the mark() labels.
package fixture

func mark(string) {}

func count() int { return 0 }

func shapeIfElse(c bool) {
	if c {
		mark("then")
	} else {
		mark("else")
	}
	mark("join")
}

func shapeEarlyReturn(c bool) {
	if c {
		return
	}
	mark("tail")
}

func shapeLoop(n int) {
	for i := 0; i < n; i++ {
		if i == 1 {
			continue
		}
		if i == 2 {
			break
		}
		mark("body")
	}
	mark("after")
}

func shapeFallthrough(n int) {
	switch n {
	case 1:
		mark("one")
		fallthrough
	default:
		mark("def")
	}
}

func shapeSelect(ch chan int) {
	select {
	case <-ch:
		mark("recv")
	default:
		mark("none")
	}
	mark("join")
}

func shapeDefers(c bool) {
	defer mark("d1")
	if c {
		defer mark("d2")
	}
	mark("body")
}

func shapeAllPanic() {
	mark("pre")
	panic("always")
}

func shapeLabeledBreak(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				break outer
			}
			mark("inner")
		}
	}
	mark("after")
}

func shapeReturnCall() int {
	return count()
}
