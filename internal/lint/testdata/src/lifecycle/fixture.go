// Golden fixture for the lifecycle pass: spans must be Ended, and
// Rows/Session/client.Conn closed, on every path — or handed off to a
// new owner (returned, stored, captured).
package fixture

import (
	"context"

	"poseidon/internal/trace"
)

func badSpanLeakOnError(ctx context.Context, fail bool) error {
	_, sp := trace.StartSpan(ctx, "fixture.op", trace.KindExec) // want lifecycle
	if fail {
		return errFixture // early return skips sp.End
	}
	sp.End()
	return nil
}

func badSpanNeverEnded(ctx context.Context) {
	_, sp := trace.StartSpan(ctx, "fixture.forgotten", trace.KindExec) // want lifecycle
	sp.SetAttr("k", "v")
}

func badChildDiscarded(sp *trace.Span) {
	sp.Child("fixture.child", trace.KindExec) // want lifecycle
}

func goodDeferEnd(ctx context.Context, fail bool) error {
	_, sp := trace.StartSpan(ctx, "fixture.op", trace.KindExec)
	defer sp.End()
	if fail {
		return errFixture
	}
	return nil
}

func goodEndOnEveryPath(ctx context.Context, fail bool) error {
	_, sp := trace.StartSpan(ctx, "fixture.op", trace.KindExec)
	if fail {
		sp.End()
		return errFixture
	}
	sp.End()
	return nil
}

func goodEscapesByReturn(ctx context.Context) (context.Context, *trace.Span) {
	ctx, sp := trace.StartSpan(ctx, "fixture.handoff", trace.KindExec)
	return ctx, sp
}

func goodEscapesToCallee(ctx context.Context) {
	_, sp := trace.StartSpan(ctx, "fixture.handoff", trace.KindExec)
	adopt(sp)
}

func goodEscapesToField(ctx context.Context, h *holder) {
	_, sp := trace.StartSpan(ctx, "fixture.handoff", trace.KindExec)
	h.sp = sp
}

//poseidonlint:ignore lifecycle fixture stand-in for a span intentionally left open for the connection lifetime
func annotatedLongLived(ctx context.Context) {
	_, sp := trace.StartSpan(ctx, "fixture.conn", trace.KindExec)
	sp.SetAttr("k", "v")
}

type holder struct{ sp *trace.Span }

func adopt(sp *trace.Span) { defer sp.End() }

type fixtureErr string

func (e fixtureErr) Error() string { return string(e) }

const errFixture = fixtureErr("fixture error")
