// Golden fixture for the shardlock pass: per-shard commit locks must be
// acquired through lockShards (ascending shard order) whenever more than
// one may be held at once.
package fixture

import "sync"

type shard struct {
	commitMu sync.Mutex
}

type engine struct {
	shards []shard
}

// lockShards is the blessed multi-lock helper: exempt by name.
func (e *engine) lockShards(order []int) {
	for _, s := range order {
		e.shards[s].commitMu.Lock()
	}
}

// badTwoLocks holds two shard commit locks without going through
// lockShards: nothing enforces ascending order.
func (e *engine) badTwoLocks(a, b int) {
	e.shards[a].commitMu.Lock()
	e.shards[b].commitMu.Lock() // want shardlock
	e.shards[b].commitMu.Unlock()
	e.shards[a].commitMu.Unlock()
}

// badLoopLock accumulates locks across iterations in caller-chosen
// order.
func (e *engine) badLoopLock(order []int) {
	for _, s := range order {
		e.shards[s].commitMu.Lock() // want shardlock
	}
	for i := len(order) - 1; i >= 0; i-- {
		e.shards[order[i]].commitMu.Unlock()
	}
}

// badRangeTryLock: TryLock acquisitions stack the same way.
func (e *engine) badRangeTryLock() {
	for i := range e.shards {
		if !e.shards[i].commitMu.TryLock() { // want shardlock
			e.shards[i].commitMu.Lock()
		}
	}
}

// goodSingleLock takes one shard's lock only.
func (e *engine) goodSingleLock(s int) {
	e.shards[s].commitMu.Lock()
	defer e.shards[s].commitMu.Unlock()
}

// goodLoopLockUnlock releases within each iteration, so at most one
// lock is ever held.
func (e *engine) goodLoopLockUnlock() {
	for i := range e.shards {
		e.shards[i].commitMu.Lock()
		e.shards[i].commitMu.Unlock()
	}
}

//poseidonlint:ignore shardlock fixture for the annotated-exception path
func (e *engine) annotatedMultiLock(a, b int) {
	e.shards[a].commitMu.Lock()
	e.shards[b].commitMu.Lock()
	e.shards[b].commitMu.Unlock()
	e.shards[a].commitMu.Unlock()
}
