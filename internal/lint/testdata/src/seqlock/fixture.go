// Golden fixture for the seqlock pass: record memory may only be read
// inside a Bts/Ets snapshot + TxnID re-check bracket, under a TxnID CAS
// pin, or while holding the shard commitMu.
package fixture

import (
	"sync"

	"poseidon/internal/pmem"
	"poseidon/internal/storage"
)

type shardS struct {
	commitMu sync.Mutex
	dev      *pmem.Device
}

func badUnbracketed(dev *pmem.Device, off uint64) storage.NodeRec {
	return storage.ReadNodeRec(dev, off) // want seqlock
}

func badHalfBracket(dev *pmem.Device, off uint64) storage.NodeRec {
	var rec storage.NodeRec
	for {
		bts := dev.ReadU64(off + storage.NBts)
		rec = storage.ReadNodeRec(dev, off) // want seqlock
		if bts == dev.ReadU64(off+storage.NBts) {
			break
		}
	}
	return rec
}

func badUnboundedChain(dev *pmem.Device, tbl *storage.Table, off, head uint64) []storage.Prop {
	for {
		bts1 := dev.ReadU64(off + storage.NBts)
		ets1 := dev.ReadU64(off + storage.NEts)
		props := storage.ReadPropChain(tbl, head) // want seqlock
		if dev.ReadU64(off+storage.NTxnID) != 0 {
			continue
		}
		if bts1 == dev.ReadU64(off+storage.NBts) && ets1 == dev.ReadU64(off+storage.NEts) {
			return props
		}
	}
}

func goodBracketed(dev *pmem.Device, off uint64) storage.NodeRec {
	for {
		bts1 := dev.ReadU64(off + storage.NBts)
		ets1 := dev.ReadU64(off + storage.NEts)
		rec := storage.ReadNodeRec(dev, off)
		if dev.ReadU64(off+storage.NTxnID) != 0 {
			continue
		}
		if bts1 == dev.ReadU64(off+storage.NBts) && ets1 == dev.ReadU64(off+storage.NEts) {
			return rec
		}
	}
}

func goodBoundedChain(dev *pmem.Device, tbl *storage.Table, off, head uint64) []storage.Prop {
	for {
		bts1 := dev.ReadU64(off + storage.NBts)
		ets1 := dev.ReadU64(off + storage.NEts)
		props, ok := storage.ReadPropChainN(tbl, head, 64)
		if !ok || dev.ReadU64(off+storage.NTxnID) != 0 {
			continue
		}
		if bts1 == dev.ReadU64(off+storage.NBts) && ets1 == dev.ReadU64(off+storage.NEts) {
			return props
		}
	}
}

func goodCASPinned(dev *pmem.Device, off, id uint64) (storage.NodeRec, bool) {
	if !dev.CompareAndSwapU64(off+storage.NTxnID, 0, id) {
		return storage.NodeRec{}, false
	}
	rec := storage.ReadNodeRec(dev, off)
	return rec, true
}

func goodUnderCommitLock(sh *shardS, off uint64) storage.RelRec {
	sh.commitMu.Lock()
	defer sh.commitMu.Unlock()
	return storage.ReadRelRec(sh.dev, off)
}

//poseidonlint:ignore seqlock fixture stand-in for an offline verifier with no concurrent writers
func annotatedOffline(dev *pmem.Device, off uint64) storage.NodeRec {
	return storage.ReadNodeRec(dev, off)
}
