// Golden fixture for the flush-discipline pass: stores that never reach
// a Flush/Persist on some path are flagged; flushed, deferred, annotated
// and transactional stores are not.
package fixture

import (
	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
)

func leak(dev *pmem.Device, off uint64) {
	dev.WriteU64(off, 1) // want flush-discipline
}

func branchLeak(dev *pmem.Device, off uint64, cond bool) {
	dev.WriteU64(off, 1) // want flush-discipline
	if cond {
		dev.Persist(off, 8)
		return
	}
	// The else path returns with the store unflushed.
}

func flushed(dev *pmem.Device, off uint64) {
	dev.WriteU64(off, 1)
	dev.Persist(off, 8)
}

func flushedBothArms(dev *pmem.Device, off uint64, cond bool) {
	dev.WriteU64(off, 1)
	if cond {
		dev.Persist(off, 8)
	} else {
		dev.Flush(off, 8)
		dev.Drain()
	}
}

func deferredFlush(dev *pmem.Device, off uint64) {
	defer dev.Persist(off, 8)
	dev.WriteU64(off, 1)
}

//pmem:deferred-flush the caller persists the whole block after linking it
func annotated(dev *pmem.Device, off uint64) {
	dev.WriteU64(off, 1)
}

func txCovered(p *pmemobj.Pool, off uint64) error {
	return p.RunTx(func(tx *pmemobj.Tx) error {
		if err := tx.Snapshot(off, 8); err != nil {
			return err
		}
		p.Device().WriteU64(off, 1) // commit flushes every touched range
		return nil
	})
}

func volatileStore(off uint64) {
	ddev := pmem.NewDRAM(1 << 20)
	ddev.WriteU64(off, 1) // DRAM device: no flush needed
}
