package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// A Finding is one analyzer diagnostic, formatted as
// "file:line:col: [pass] message".
type Finding struct {
	Pos  token.Position
	Pass string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Pass, f.Msg)
}

// Key is the position-independent identity used for baseline matching:
// "file: [pass] message" with the file path relative to the module root.
// Omitting line/col keeps grandfathered findings stable across edits
// elsewhere in the file.
func (f Finding) Key(root string) string {
	file := f.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s: [%s] %s", file, f.Pass, f.Msg)
}

// A Pass inspects one package at a time and reports findings through
// the Reporter. Passes must tolerate partially-broken type info (stdlib
// imports are stubs — see the package comment in load.go).
type Pass struct {
	Name    string
	Doc     string
	Run     func(c *Context)
	Default bool // enabled unless -disable'd
}

// Context is what a pass sees for one package.
type Context struct {
	Module *Module
	Pkg    *Package
	Kit    *Kit // shared type/call classification helpers
	pass   *Pass
	out    *[]Finding
}

// Reportf records a finding at pos unless an ignore directive covers it.
func (c *Context) Reportf(pos token.Pos, format string, args ...interface{}) {
	p := c.Module.Fset.Position(pos)
	if c.Kit.ignored(c.pass.Name, p) {
		return
	}
	*c.out = append(*c.out, Finding{Pos: p, Pass: c.pass.Name, Msg: fmt.Sprintf(format, args...)})
}

// Passes returns every registered pass in a stable order.
func Passes() []*Pass {
	return []*Pass{
		passFlushDiscipline,
		passTxUndoLog,
		passTornStore,
		passCtxThreading,
		passTelemetryNilSafety,
		passLockOrder,
		passSeqlock,
		passAtomicField,
		passLifecycle,
		passWireCode,
	}
}

// Options select which passes run and over which packages.
type Options struct {
	Enable  []string // if non-empty, only these passes run
	Disable []string // these passes are skipped
}

func selected(opts Options) ([]*Pass, error) {
	known := map[string]*Pass{}
	for _, p := range Passes() {
		known[p.Name] = p
	}
	for _, n := range append(append([]string{}, opts.Enable...), opts.Disable...) {
		if known[n] == nil {
			return nil, fmt.Errorf("lint: unknown pass %q", n)
		}
	}
	var out []*Pass
	for _, p := range Passes() {
		if len(opts.Enable) > 0 {
			for _, n := range opts.Enable {
				if n == p.Name {
					out = append(out, p)
				}
			}
			continue
		}
		skip := false
		for _, n := range opts.Disable {
			if n == p.Name {
				skip = true
			}
		}
		if !skip && p.Default {
			out = append(out, p)
		}
	}
	return out, nil
}

// PassTiming is the wall-clock cost of one pass across all packages.
type PassTiming struct {
	Pass    string
	Elapsed time.Duration
}

// Run executes the selected passes over every package in the module
// (plus any extra packages, e.g. test fixtures) and returns the
// findings sorted by position.
func Run(m *Module, opts Options, extra ...*Package) ([]Finding, error) {
	findings, _, err := RunTimed(m, opts, extra...)
	return findings, err
}

// RunTimed is Run, also reporting per-pass wall-clock timings (in
// registration order) for the CI lint-budget gate.
func RunTimed(m *Module, opts Options, extra ...*Package) ([]Finding, []PassTiming, error) {
	passes, err := selected(opts)
	if err != nil {
		return nil, nil, err
	}
	kit := newKit(m)
	pkgs := append(append([]*Package{}, m.Pkgs...), extra...)
	for _, p := range extra {
		kit.addPackage(p)
	}
	var findings []Finding
	var timings []PassTiming
	for _, pass := range passes {
		start := time.Now()
		for _, pkg := range pkgs {
			pass.Run(&Context{Module: m, Pkg: pkg, Kit: kit, pass: pass, out: &findings})
		}
		timings = append(timings, PassTiming{Pass: pass.Name, Elapsed: time.Since(start)})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Pass < findings[j].Pass
	})
	return findings, timings, nil
}

// ---- annotations -------------------------------------------------------

// Two directive forms are honoured:
//
//	//pmem:deferred-flush <reason>
//	    on a function's doc comment (or any line inside it): the
//	    flush-discipline and torn-store passes skip the function — the
//	    caller owns flushing, and the reason says why that is safe.
//
//	//poseidonlint:ignore <pass> [reason]
//	    on a function's doc comment or on/above the offending line:
//	    the named pass skips that function or line.
const (
	dirDeferredFlush = "//pmem:deferred-flush"
	dirIgnore        = "//poseidonlint:ignore"
)

// funcDirectives returns the deferred-flush flag and the set of passes
// ignored for the whole function, scanning the doc comment and any
// comment inside the function body.
func funcDirectives(pkg *Package, fn ast.Node, doc *ast.CommentGroup) (deferred bool, ignored map[string]bool) {
	ignored = map[string]bool{}
	scan := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, dirDeferredFlush) {
				deferred = true
			}
			if strings.HasPrefix(text, dirIgnore) {
				rest := strings.Fields(strings.TrimPrefix(text, dirIgnore))
				if len(rest) > 0 {
					ignored[rest[0]] = true
				}
			}
		}
	}
	scan(doc)
	return deferred, ignored
}

// lineDirectives maps file -> line -> set of ignored passes, from
// //poseidonlint:ignore comments anywhere in the package. A directive
// suppresses findings on its own line and on the line below (so it can
// sit on the preceding line).
func lineDirectives(m *Module, pkg *Package) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	add := func(file string, line int, pass string) {
		if out[file] == nil {
			out[file] = map[int]map[string]bool{}
		}
		if out[file][line] == nil {
			out[file][line] = map[string]bool{}
		}
		out[file][line][pass] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, dirIgnore) {
					continue
				}
				rest := strings.Fields(strings.TrimPrefix(text, dirIgnore))
				if len(rest) == 0 {
					continue
				}
				p := m.Fset.Position(c.Pos())
				add(p.Filename, p.Line, rest[0])
				add(p.Filename, p.Line+1, rest[0])
			}
		}
	}
	return out
}

// ---- baseline ----------------------------------------------------------

// ReadBaseline loads a baseline file of grandfathered findings: one
// Finding.Key per line, '#' comments and blank lines skipped. Keys
// written for the retired shardlock pass are migrated to its successor
// lockorder, so old baselines keep suppressing the same sites.
func ReadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
		if strings.Contains(line, "[shardlock]") {
			out[strings.Replace(line, "[shardlock]", "[lockorder]", 1)] = true
		}
	}
	return out, nil
}

// ApplyBaseline splits findings into new ones and baselined ones.
func ApplyBaseline(root string, findings []Finding, baseline map[string]bool) (fresh, old []Finding) {
	for _, f := range findings {
		if baseline[f.Key(root)] {
			old = append(old, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, old
}

// WriteBaseline writes all findings as a baseline file.
func WriteBaseline(path, root string, findings []Finding) error {
	var b strings.Builder
	b.WriteString("# poseidonlint baseline — grandfathered findings, one per line.\n")
	b.WriteString("# Format: path: [pass] message (line numbers omitted so edits elsewhere\n")
	b.WriteString("# in a file do not invalidate entries). Regenerate with -write-baseline.\n")
	seen := map[string]bool{}
	for _, f := range findings {
		k := f.Key(root)
		if !seen[k] {
			seen[k] = true
			b.WriteString(k + "\n")
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
