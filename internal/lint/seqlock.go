package lint

import (
	"go/ast"
)

// seqlock: multi-word record memory (NodeRec/RelRec and property
// chains) is read optimistically under the Bts/Ets seqlock protocol —
// the PR 6 race fix. Every storage.ReadNodeRec / ReadRelRec /
// ReadPropChain* call must be justified by one of:
//
//   - a seqlock bracket: an enclosing retry loop that snapshots the
//     record's Bts and Ets words before the read, re-reads both after,
//     and re-checks the TxnID lock word (the readNode/readRel shape);
//   - a TxnID pin: a CompareAndSwapU64 on the record's TxnID word
//     executed on every path to the read (the lockNode/lockRel shape —
//     the record is locked, so it cannot change under the read);
//   - holding a shard commitMu (directly or via lockShards), which
//     excludes all writers.
//
// Unbounded ReadPropChain inside an optimistic bracket is additionally
// flagged: a torn chain head can send it chasing arbitrary garbage —
// use ReadPropChainN, whose bound makes a torn read terminate and fail
// the bracket re-check instead.
var passSeqlock = &Pass{
	Name:    "seqlock",
	Doc:     "record reads need a Bts/Ets seqlock bracket, a TxnID CAS pin, or the shard commitMu",
	Default: true,
	Run: func(c *Context) {
		if c.Pkg.Path == c.Kit.m.Path+"/internal/storage" {
			return // the record accessors themselves
		}
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["seqlock"] {
				continue
			}
			if lockAPIFuncs[fi.Name] {
				continue
			}
			checkSeqlock(c, fi)
		}
	},
}

var recordReads = map[string]bool{
	"ReadNodeRec": true, "ReadRelRec": true,
	"ReadPropChain": true, "ReadPropChainN": true,
}

// seqState is the must-state on a path: has a TxnID CAS been executed
// on every path here, and which locks may/must be held.
type seqState struct {
	cas   bool // must: CompareAndSwapU64 on a TxnID word seen on all paths
	locks lockState
}

func (s seqState) clone() seqState {
	return seqState{cas: s.cas, locks: s.locks.clone()}
}

func joinSeq(a, b seqState) seqState {
	return seqState{cas: a.cas && b.cas, locks: joinLocks(a.locks, b.locks)}
}

func eqSeq(a, b seqState) bool {
	return a.cas == b.cas && eqLocks(a.locks, b.locks)
}

// mentionsIdent reports whether any of exprs contains an identifier
// with one of the given names (matches both storage.NBts and plain
// NBts spellings).
func mentionsIdent(exprs []ast.Expr, names ...string) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				for _, want := range names {
					if id.Name == want {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}

// isTxnIDCAS reports a Device.CompareAndSwapU64 whose offset mentions a
// TxnID layout constant.
func isTxnIDCAS(k *Kit, pkg *Package, call *ast.CallExpr) bool {
	if k.Classify(pkg, call) != KCAS {
		return false
	}
	return mentionsIdent(call.Args, "NTxnID", "RTxnID")
}

// isRecordRead resolves a call to one of the storage record accessors.
func isRecordRead(k *Kit, pkg *Package, call *ast.CallExpr) (name string, ok bool) {
	path, _, name, resolved := k.Method(pkg, call)
	if !resolved || path != k.m.Path+"/internal/storage" || !recordReads[name] {
		return "", false
	}
	return name, true
}

// commitMuHeld reports whether some shard commit lock is must-held
// (directly or as a lockShards set).
func commitMuHeld(st lockState) bool {
	for k, v := range st {
		if k.name == "commitMu" && v.min >= 1 {
			return true
		}
	}
	return false
}

// inBracket reports whether call sits inside a seqlock bracket: some
// enclosing for-loop in body whose body re-reads the Bts word before
// and after the call, the Ets word before and after, and the TxnID
// lock word after.
func inBracket(k *Kit, pkg *Package, body *ast.BlockStmt, call *ast.CallExpr) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		f, isFor := n.(*ast.ForStmt)
		if !isFor || f.Pos() > call.Pos() || call.End() > f.End() {
			return true
		}
		var btsBefore, btsAfter, etsBefore, etsAfter, txnAfter bool
		ast.Inspect(f.Body, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				return false
			}
			c, isCall := x.(*ast.CallExpr)
			if !isCall || c == call {
				return true
			}
			path, typ, name, resolved := k.Method(pkg, c)
			if !resolved || path != k.pmemPath || typ != "Device" || name != "ReadU64" {
				return true
			}
			before := c.Pos() < call.Pos()
			if mentionsIdent(c.Args, "NBts", "RBts") {
				if before {
					btsBefore = true
				} else {
					btsAfter = true
				}
			}
			if mentionsIdent(c.Args, "NEts", "REts") {
				if before {
					etsBefore = true
				} else {
					etsAfter = true
				}
			}
			if !before && mentionsIdent(c.Args, "NTxnID", "RTxnID") {
				txnAfter = true
			}
			return true
		})
		if btsBefore && btsAfter && etsBefore && etsAfter && txnAfter {
			ok = true
		}
		return true
	})
	return ok
}

func checkSeqlock(c *Context, fi FuncInfo) {
	// Cheap pre-scan: skip the dataflow when the body has no record
	// reads at all (the common case module-wide).
	any := false
	forEachCall(fi, func(call *ast.CallExpr) {
		if _, ok := isRecordRead(c.Kit, fi.Pkg, call); ok {
			any = true
		}
	})
	if !any {
		return
	}

	g := c.Kit.BuildCFG(fi)
	step := func(st seqState, n ast.Node, report bool) seqState {
		nodeCalls(n, func(call *ast.CallExpr) {
			if report {
				if name, ok := isRecordRead(c.Kit, fi.Pkg, call); ok {
					pinned := st.cas || commitMuHeld(st.locks)
					bracket := inBracket(c.Kit, fi.Pkg, fi.Body, call)
					switch {
					case pinned:
						// Writers are excluded; any accessor is safe.
					case !bracket:
						c.Reportf(call.Pos(), "%s outside a seqlock bracket: wrap it in a Bts/Ets snapshot + TxnID re-check retry loop (see core.readNode), pin the record with a TxnID CAS, or hold the shard commitMu", name)
					case name == "ReadPropChain":
						c.Reportf(call.Pos(), "unbounded ReadPropChain inside an optimistic seqlock bracket can chase a torn chain; use ReadPropChainN so a torn read terminates and fails the re-check")
					}
				}
			}
			if isTxnIDCAS(c.Kit, fi.Pkg, call) {
				st.cas = true
			}
		})
		st.locks = lockStep(c, fi, st.locks, n, nil)
		return st
	}
	silent := func(st seqState, n ast.Node) seqState { return step(st, n, false) }
	in := runFlow(g, seqState{locks: lockState{}}, seqState.clone, joinSeq, eqSeq, silent)
	walkFinal(g, in, seqState.clone, func(st seqState, n ast.Node) seqState {
		return step(st, n, true)
	})
}
