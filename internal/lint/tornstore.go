package lint

import "go/ast"

// torn-store: persistent stores wider than 8 bytes are not
// failure-atomic (paper characteristic C4 — only aligned 8-byte stores
// reach PMem atomically). A multi-word write (WriteWords, WriteBytes,
// Pool.WritePPtr) is only crash-safe when the range is covered by the
// undo log (a transaction), driven by the MWCAS helper, or made
// unreachable until a single 8-byte commit word flips — so any such
// call outside a transaction is flagged unless annotated with the
// ordering argument that makes it safe. internal/pmem and
// internal/pmemobj are exempt: they implement the atomicity protocols.
var passTornStore = &Pass{
	Name:    "torn-store",
	Doc:     "multi-word persistent stores outside a transaction/MWCAS can tear on crash (C4)",
	Default: true,
	Run: func(c *Context) {
		if c.Pkg.Path == c.Kit.pmobjPath || c.Pkg.Path == c.Kit.pmemPath {
			return
		}
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["torn-store"] || c.Kit.TxCovered(fi) {
				continue
			}
			fi := fi
			dram := c.Kit.DRAMLocals(fi)
			forEachCall(fi, func(call *ast.CallExpr) {
				if c.Kit.MultiWord(fi.Pkg, call) && !c.Kit.StoreToDRAM(fi, dram, call) {
					_, _, name, _ := c.Kit.Method(fi.Pkg, call)
					c.Reportf(call.Pos(), "multi-word %s in %s is not failure-atomic (C4) and runs outside any transaction; cover it with the undo log, MWCAS, or annotate //poseidonlint:ignore torn-store <why the ordering is safe>", name, fi.Name)
				}
			})
		}
	},
}
