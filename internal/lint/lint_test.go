package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var fixtureCases = []struct {
	dir  string
	pass string
}{
	{"flushdiscipline", "flush-discipline"},
	{"txundolog", "tx-undo-log"},
	{"tornstore", "torn-store"},
	{"ctxthreading", "ctx-threading"},
	{"telemetrysafety", "telemetry-nil-safety"},
	{"lockorder", "lockorder"},
	{"seqlock", "seqlock"},
	{"atomicfield", "atomicfield"},
	{"lifecycle", "lifecycle"},
	{"wirecode", "wirecode"},
}

func loadModule(t *testing.T) *Module {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	return m
}

// wantLines parses "// want <pass>" markers from a fixture directory:
// each marked line must produce at least one finding of that pass, and
// no unmarked line may produce any.
func wantLines(t *testing.T, dir, pass string) map[int]bool {
	t.Helper()
	re := regexp.MustCompile(`// want (\S+)`)
	out := map[int]bool{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := re.FindStringSubmatch(line); m != nil {
				if m[1] != pass {
					t.Fatalf("%s line %d wants pass %q, fixture is for %q", e.Name(), i+1, m[1], pass)
				}
				out[i+1] = true
			}
		}
	}
	return out
}

func TestFixtures(t *testing.T) {
	m := loadModule(t)
	for _, tc := range fixtureCases {
		t.Run(tc.pass, func(t *testing.T) {
			dir := filepath.Join(m.Root, "internal/lint/testdata/src", tc.dir)
			pkg, err := m.LoadDir(dir, "poseidon/internal/lint/testdata/"+tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			findings, err := Run(m, Options{Enable: []string{tc.pass}}, pkg)
			if err != nil {
				t.Fatal(err)
			}
			// The module itself must be clean, so every finding lands in
			// the fixture.
			got := map[int]bool{}
			for _, f := range findings {
				if filepath.Dir(f.Pos.Filename) != dir {
					t.Errorf("finding outside fixture: %s", f)
					continue
				}
				if f.Pass != tc.pass {
					t.Errorf("finding from unexpected pass: %s", f)
					continue
				}
				got[f.Pos.Line] = true
			}
			want := wantLines(t, dir, tc.pass)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no want markers", tc.dir)
			}
			for line := range want {
				if !got[line] {
					t.Errorf("expected a %s finding at %s line %d, got none", tc.pass, tc.dir, line)
				}
			}
			for line := range got {
				if !want[line] {
					t.Errorf("unexpected %s finding at %s line %d", tc.pass, tc.dir, line)
				}
			}
		})
	}
}

// TestModuleClean is the acceptance gate the CI lint job enforces: the
// tree itself carries zero unbaselined findings.
func TestModuleClean(t *testing.T) {
	m := loadModule(t)
	findings, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("module not lint-clean: %s", f)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	m := loadModule(t)
	dir := filepath.Join(m.Root, "internal/lint/testdata/src/flushdiscipline")
	pkg, err := m.LoadDir(dir, "poseidon/internal/lint/testdata/flushdiscipline")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(m, Options{Enable: []string{"flush-discipline"}}, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings to baseline")
	}
	path := filepath.Join(t.TempDir(), "baseline")
	if err := WriteBaseline(path, m.Root, findings); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, old := ApplyBaseline(m.Root, findings, base)
	if len(fresh) != 0 {
		t.Errorf("baselined findings still fresh: %v", fresh)
	}
	if len(old) != len(findings) {
		t.Errorf("baselined %d of %d findings", len(old), len(findings))
	}
	// A finding not in the baseline stays fresh.
	fresh, _ = ApplyBaseline(m.Root, append(findings, Finding{Pass: "flush-discipline", Msg: "new"}), base)
	if len(fresh) != 1 {
		t.Errorf("new finding suppressed by unrelated baseline (fresh=%d)", len(fresh))
	}
}

func TestPassSelection(t *testing.T) {
	m := loadModule(t)
	if _, err := Run(m, Options{Enable: []string{"no-such-pass"}}); err == nil {
		t.Error("unknown -enable pass not rejected")
	}
	if _, err := Run(m, Options{Disable: []string{"no-such-pass"}}); err == nil {
		t.Error("unknown -disable pass not rejected")
	}
	dir := filepath.Join(m.Root, "internal/lint/testdata/src/tornstore")
	pkg, err := m.LoadDir(dir, "poseidon/internal/lint/testdata/tornstore")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(m, Options{Disable: []string{"torn-store"}}, pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Pass == "torn-store" {
			t.Errorf("disabled pass still reported: %s", f)
		}
	}
}

func TestPassesAreRegistered(t *testing.T) {
	var names []string
	for _, p := range Passes() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	want := []string{
		"atomicfield", "ctx-threading", "flush-discipline", "lifecycle",
		"lockorder", "seqlock", "telemetry-nil-safety", "torn-store",
		"tx-undo-log", "wirecode",
	}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("registered passes = %v, want %v", names, want)
	}
}
