package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockorder: CFG-based discipline for the engine's hand-rolled lock
// hierarchy (commitMu, idxMu, beginMu, mediaMu — the locks the PR 6
// race matrix was built around). Superseding the shallow AST-only
// shardlock pass, it runs a forward lock-set dataflow over each
// function's CFG and reports:
//
//   - a second shard commit lock acquired directly (two distinct
//     commitMu instances, or one instance re-acquired — the loop-carried
//     case the old pass special-cased falls out of the back edge): only
//     lockShards/lockAllShards may hold several, in ascending order;
//   - any modeled mutex write-locked twice on a path (self-deadlock);
//   - a lock still (possibly) held at a return point with no deferred
//     release — the "missed unlock on the error path" class;
//   - a blocking operation (channel send/receive, select, Wait, Sleep,
//     or a callee that may block per the interprocedural summaries)
//     reached while a modeled write lock is held.
var passLockOrder = &Pass{
	Name:    "lockorder",
	Doc:     "commitMu/idxMu/beginMu/mediaMu: ascending shard-lock order via lockShards, release on every path, no blocking calls under a lock",
	Default: true,
	Run: func(c *Context) {
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["lockorder"] {
				continue
			}
			// The blessed acquisition/release helpers are the lock API
			// itself: lockShards' ascending loop is the one place
			// multi-lock is allowed, and all four return holding (or
			// having released) locks by design.
			if lockAPIFuncs[fi.Name] {
				continue
			}
			checkLockOrder(c, fi)
		}
	},
}

// modeledLocks are the mutex fields the pass tracks, by field name.
var modeledLocks = map[string]bool{
	"commitMu": true, "idxMu": true, "beginMu": true, "mediaMu": true,
}

var lockAPIFuncs = map[string]bool{
	"lockShards": true, "lockAllShards": true,
	"unlockShards": true, "unlockAllShards": true,
}

// lockKey identifies one lock instance: the field name plus the
// receiver expression as written ("sh", "e.shards[a]", ...). Two
// different receiver spellings are treated as two different locks —
// exactly the approximation that makes `e.shards[a]` vs `e.shards[b]`
// two commitMu instances. mode is "w" for Lock/TryLock, "r" for
// RLock/TryRLock.
type lockKey struct {
	name  string
	owner string
	mode  string
}

// lockShardsKey is the pseudo-instance acquired by lockShards /
// lockAllShards calls: "some set of shard commit locks".
var lockShardsKey = lockKey{name: "commitMu", owner: "(lockShards set)", mode: "w"}

// lockRange tracks how many times one lock instance may/must be held:
// min is the must-held count, max the may-held count (capped — the
// lattice must have finite height for loop fixpoints). try counts how
// much of max came from TryLock acquisitions, whose failure branch the
// path-insensitive analysis cannot see; the exit-leak rule discounts
// them so `if mu.TryLock() { ... mu.Unlock() }` does not flag.
type lockRange struct{ min, max, try int }

const lockMaxCap = 3

type lockState map[lockKey]lockRange

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinLocks(a, b lockState) lockState {
	out := make(lockState, len(a)+len(b))
	for k, av := range a {
		bv := b[k] // zero if absent
		out[k] = lockRange{min: minInt(av.min, bv.min), max: maxInt(av.max, bv.max), try: maxInt(av.try, bv.try)}
	}
	for k, bv := range b {
		if _, seen := a[k]; !seen {
			out[k] = lockRange{min: 0, max: bv.max, try: bv.try}
		}
	}
	return out
}

func eqLocks(a, b lockState) bool {
	if len(a) != len(b) {
		// Keys are never removed once seen (ranges go to {0,0}), so a
		// length difference means a genuinely new key.
		norm := func(s lockState) int {
			n := 0
			for _, v := range s {
				if v.min != 0 || v.max != 0 {
					n++
				}
			}
			return n
		}
		if norm(a) != norm(b) {
			return false
		}
	}
	for k, av := range a {
		if b[k] != av {
			return false
		}
	}
	for k, bv := range b {
		if _, seen := a[k]; !seen && (bv.min != 0 || bv.max != 0) {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// lockCallOf classifies a call as a lock operation on a modeled mutex
// field: <owner>.<lockField>.<op>(). op is one of Lock/TryLock/RLock/
// TryRLock/Unlock/RUnlock.
func lockCallOf(call *ast.CallExpr) (key lockKey, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "TryLock", "RLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	recv, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel || !modeledLocks[recv.Sel.Name] {
		return lockKey{}, "", false
	}
	mode := "w"
	switch sel.Sel.Name {
	case "RLock", "TryRLock", "RUnlock":
		mode = "r"
	}
	key = lockKey{name: recv.Sel.Name, owner: types.ExprString(recv.X), mode: mode}
	return key, sel.Sel.Name, true
}

// lockStep applies one CFG node's lock effects to st. It is shared
// with the seqlock pass (which needs "is a commit lock held here"
// facts). report, when non-nil, is invoked for rule violations — only
// the final walk passes it.
func lockStep(c *Context, fi FuncInfo, st lockState, n ast.Node, report func(pos ast.Node, format string, args ...interface{})) lockState {
	blockedBy := func() (lockKey, bool) {
		for k, v := range st {
			if v.max >= 1 && k.mode == "w" {
				return k, true
			}
		}
		return lockKey{}, false
	}
	// Structural blocking points: channel send/receive and select.
	if report != nil {
		if op := channelOpIn(n); op != nil {
			if k, held := blockedBy(); held {
				report(op, "channel operation while %s.%s may be held blocks all contenders of the lock; release it first", k.owner, k.name)
			}
		}
	}
	nodeCalls(n, func(call *ast.CallExpr) {
		if key, op, ok := lockCallOf(call); ok {
			switch op {
			case "Lock", "TryLock", "RLock", "TryRLock":
				if report != nil && key.mode == "w" {
					if cur := st[key]; cur.max >= 1 {
						if key.name == "commitMu" {
							report(call, "shard commit lock %s.commitMu may already be held here (loop-carried or duplicate acquisition); acquire multi-shard sets through lockShards", key.owner)
						} else {
							report(call, "%s.%s may already be held here; a second Lock self-deadlocks", key.owner, key.name)
						}
					} else if key.name == "commitMu" {
						for other, v := range st {
							if other.name == "commitMu" && other != key && v.max >= 1 {
								report(call, "second shard commit lock taken directly while %s.commitMu is held; multi-shard acquisition must go through lockShards (ascending shard order)", other.owner)
								break
							}
						}
					}
				}
				cur := st[key]
				if op == "TryLock" || op == "TryRLock" {
					// May fail: max (and try) rise, must-count does not.
					st[key] = lockRange{min: cur.min, max: minInt(cur.max+1, lockMaxCap), try: minInt(cur.try+1, lockMaxCap)}
				} else {
					st[key] = lockRange{min: cur.min + 1, max: minInt(cur.max+1, lockMaxCap), try: cur.try}
				}
			case "Unlock", "RUnlock":
				cur := st[key]
				st[key] = lockRange{min: maxInt(cur.min-1, 0), max: maxInt(cur.max-1, 0), try: cur.try}
			}
			return
		}
		// lockShards/unlockShards helper calls (methods or plain).
		if name, ok := calleeName(call); ok && lockAPIFuncs[name] {
			cur := st[lockShardsKey]
			switch name {
			case "lockShards", "lockAllShards":
				if report != nil {
					for other, v := range st {
						if other.name == "commitMu" && other != lockShardsKey && v.max >= 1 {
							report(call, "%s called while %s.commitMu is already held; the combined acquisition order is no longer ascending", name, other.owner)
							break
						}
					}
					if cur.max >= 1 {
						report(call, "%s called while a lockShards set is already held; release the first set before acquiring another", name)
					}
				}
				st[lockShardsKey] = lockRange{min: cur.min + 1, max: minInt(cur.max+1, lockMaxCap), try: cur.try}
			case "unlockShards", "unlockAllShards":
				st[lockShardsKey] = lockRange{min: maxInt(cur.min-1, 0), max: maxInt(cur.max-1, 0), try: cur.try}
			}
			return
		}
		// A callee that may block, reached under a write lock.
		if report != nil {
			if callee := c.Kit.Callee(fi.Pkg, call); callee != nil && c.Kit.MayBlock(callee) {
				if k, held := blockedBy(); held {
					report(call, "call to %s (may block on channels/Wait/Sleep) while %s.%s is held; release the lock before blocking", callee.Name(), k.owner, k.name)
				}
			} else if callee == nil && c.Kit.directBlockingCall(fi.Pkg, call) {
				if k, held := blockedBy(); held {
					report(call, "blocking call while %s.%s is held; release the lock before blocking", k.owner, k.name)
				}
			}
		}
	})
	return st
}

// channelOpIn finds a channel send or receive inside one CFG node (a
// select marker counts as itself; function literals are skipped — they
// run later).
func channelOpIn(n ast.Node) ast.Node {
	if _, ok := n.(*ast.SelectStmt); ok {
		return n
	}
	var found ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found = x
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = x
			}
		}
		return true
	})
	return found
}

// deferredLockReleases collects the lock keys released by deferred
// calls (directly, or inside a deferred func literal).
func deferredLockReleases(g *CFG) map[lockKey]int {
	out := map[lockKey]int{}
	note := func(call *ast.CallExpr) {
		if key, op, ok := lockCallOf(call); ok && (op == "Unlock" || op == "RUnlock") {
			out[key]++
			return
		}
		if name, ok := calleeName(call); ok && (name == "unlockShards" || name == "unlockAllShards") {
			out[lockShardsKey]++
		}
	}
	for _, d := range g.Defers {
		note(d)
		if lit, ok := d.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					note(call)
				}
				return true
			})
		}
	}
	return out
}

func checkLockOrder(c *Context, fi FuncInfo) {
	g := c.Kit.BuildCFG(fi)
	silent := func(st lockState, n ast.Node) lockState {
		return lockStep(c, fi, st, n, nil)
	}
	in := runFlow(g, lockState{}, lockState.clone, joinLocks, eqLocks, silent)

	reported := map[ast.Node]bool{}
	report := func(n ast.Node, format string, args ...interface{}) {
		if !reported[n] { // the final walk may traverse shared states; one report per site
			reported[n] = true
			c.Reportf(n.Pos(), format, args...)
		}
	}
	walkFinal(g, in, lockState.clone, func(st lockState, n ast.Node) lockState {
		return lockStep(c, fi, st, n, report)
	})

	// Locks possibly still held at a return point, net of deferred
	// releases, were not released on every path.
	exit, ok := exitStates(g, in, lockState.clone, joinLocks, silent)
	if !ok {
		return // every path panics
	}
	deferred := deferredLockReleases(g)
	for key, v := range exit {
		if v.max-v.try-deferred[key] >= 1 {
			owner := key.owner
			if key == lockShardsKey {
				owner = "lockShards"
			}
			c.Reportf(fi.Body.Pos(), "%s acquired via %s.%s may still be held at return on some path in %s; release it on every path (or defer the unlock)", key.name, owner, key.name, fi.Name)
		}
	}
}
