package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wirecode: the wire protocol's failure surface must stay stable and
// exhaustive.
//
//  1. Every wire.Error constructed anywhere in the module must carry a
//     Code from the Code* vocabulary (a named constant or a variable
//     holding one) — a missing Code decodes as "" and an inline string
//     literal invents an ad-hoc code no client can match on.
//  2. Every expression switch over the Msg* message tags must either
//     carry a default arm (unknown tag → protocol error) or cover every
//     tag, so adding a message type cannot silently fall through a
//     dispatch path.
var passWireCode = &Pass{
	Name:    "wirecode",
	Doc:     "wire.Error needs a stable Code* constant; Msg* tag switches must be exhaustive or have a default",
	Default: true,
	Run: func(c *Context) {
		allMsgs := wireMsgTags(c.Kit)
		for _, fi := range c.Kit.Funcs(c.Pkg) {
			if fi.Ignored["wirecode"] {
				continue
			}
			checkWireCode(c, fi, allMsgs)
		}
	},
}

// wireMsgTags enumerates the Msg* constants declared by internal/wire.
func wireMsgTags(k *Kit) map[string]bool {
	out := map[string]bool{}
	for _, pkg := range k.m.Pkgs {
		if pkg.Path != k.wirePath {
			continue
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			if _, isConst := scope.Lookup(name).(*types.Const); isConst && strings.HasPrefix(name, "Msg") {
				out[name] = true
			}
		}
	}
	return out
}

// wireMsgConst resolves an expression to a wire Msg* constant name.
func wireMsgConst(k *Kit, pkg *Package, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj := pkg.Info.Uses[id]
	cst, ok := obj.(*types.Const)
	if !ok || cst.Pkg() == nil || cst.Pkg().Path() != k.wirePath || !strings.HasPrefix(cst.Name(), "Msg") {
		return "", false
	}
	return cst.Name(), true
}

// isWireError reports whether a composite literal builds a wire.Error
// (directly or via &wire.Error{...}).
func isWireError(k *Kit, pkg *Package, lit *ast.CompositeLit) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == k.wirePath && n.Obj().Name() == "Error"
}

func checkWireCode(c *Context, fi FuncInfo, allMsgs map[string]bool) {
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !isWireError(c.Kit, fi.Pkg, n) {
				return true
			}
			if c.Pkg.Path == c.Kit.wirePath {
				// The codec itself builds empty Error{} shells and fills
				// Code from decoded bytes; the vocabulary rule is for
				// producers, not the decoder.
				return true
			}
			var code ast.Expr
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
					code = kv.Value
				}
			}
			switch v := code.(type) {
			case nil:
				c.Reportf(n.Pos(), "wire.Error constructed without a Code; clients cannot classify it — set one of the wire.Code* constants")
			case *ast.BasicLit:
				if v.Kind == token.STRING {
					c.Reportf(v.Pos(), "wire.Error Code is an inline string literal; use a wire.Code* constant so the code stays stable across releases")
				}
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			covered := map[string]bool{}
			hasDefault := false
			tagged := false
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
				}
				for _, e := range cc.List {
					if name, ok := wireMsgConst(c.Kit, fi.Pkg, e); ok {
						tagged = true
						covered[name] = true
					}
				}
			}
			if !tagged || hasDefault || len(allMsgs) == 0 {
				return true
			}
			if len(covered) < len(allMsgs) {
				var missing []string
				for name := range allMsgs {
					if !covered[name] {
						missing = append(missing, name)
					}
				}
				c.Reportf(n.Pos(), "switch on wire message tags covers %d of %d Msg* tags and has no default arm; unhandled tags (e.g. %s) fall through silently — add a default (unknown tag → CodeProtocol) or cover every tag", len(covered), len(allMsgs), firstSorted(missing))
			}
		}
		return true
	})
}

func firstSorted(names []string) string {
	best := names[0]
	for _, n := range names[1:] {
		if n < best {
			best = n
		}
	}
	return best
}
