package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestMutationCaught is the analyzer's own regression harness: the
// module is re-loaded with the lintmutate build tag, which pulls in
// internal/core/lintmutate.go — one seeded bug per race class. Each
// mutant must be reported by its pass, in that file, and the rest of
// the tree must stay clean (the tag adds bugs, it must not add noise).
func TestMutationCaught(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadTags(root, map[string]bool{"lintmutate": true})
	if err != nil {
		t.Fatalf("LoadTags(lintmutate): %v", err)
	}
	findings, err := Run(m, Options{Enable: []string{"lockorder", "seqlock", "lifecycle"}})
	if err != nil {
		t.Fatal(err)
	}
	const mutFile = "internal/core/lintmutate.go"
	caught := map[string]bool{}
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil || filepath.ToSlash(rel) != mutFile {
			t.Errorf("finding outside the mutant file: %s", f)
			continue
		}
		caught[f.Pass] = true
	}
	for _, pass := range []string{"lockorder", "seqlock", "lifecycle"} {
		if !caught[pass] {
			t.Errorf("seeded %s mutant in %s went unreported", pass, mutFile)
		}
	}
	// The untagged load must not see the mutants at all.
	plain, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range plain.Pkgs {
		for _, f := range pkg.Files {
			if name := plain.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "lintmutate.go") {
				t.Errorf("untagged load included %s", name)
			}
		}
	}
}
