package lint

// cfg.go: a lightweight intra-procedural control-flow graph plus a
// generic forward-dataflow runner. The per-statement AST walks of the
// original passes (flush-discipline's hand-rolled state machine) could
// not see facts that depend on *where* on a path a call sits — which
// locks are held at a blocking call, whether a record read is inside
// its seqlock bracket, whether a span is still open at an early return.
// The CFG makes those path facts explicit: blocks hold statements and
// expressions in evaluation order, edges model branches, loops,
// switches, selects, and labeled break/continue, and deferred calls are
// collected separately so exit-time effects (defer mu.Unlock, defer
// sp.End) can be applied at the Exit block.
//
// The builder is deliberately approximate where precision does not pay
// for itself: short-circuit evaluation inside expressions is treated as
// linear, goto conservatively terminates its path, and panic-like calls
// (panic, log.Fatal, os.Exit) end a path without reaching Exit so that
// error-exit paths do not produce unlock/End noise.

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line sequence of CFG nodes. Nodes are leaf
// statements (assignments, expression statements, send statements) or
// bare expressions (conditions, return results) in evaluation order;
// control statements never appear as nodes — they become edges. The
// only exception is *ast.SelectStmt, which is kept as a marker node so
// passes can treat reaching a select as a blocking point; passes must
// not recurse into it (its arms are real blocks of their own).
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the graph for one function body. Every return statement (and
// the implicit return at the end of the body) has an edge to Exit;
// panic-like paths simply end.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.CallExpr // deferred calls, in defer-statement order
}

type cfgBuilder struct {
	pkg     *Package
	cfg     *CFG
	cur     *Block
	brk     []*Block // innermost-last break targets
	cont    []*Block // innermost-last continue targets
	lblBrk  map[string]*Block
	lblCont map[string]*Block
}

// BuildCFG constructs the CFG for one function-like body. Function
// literals nested in the body are not descended into — each literal is
// analyzed as its own FuncInfo with its own CFG.
func (k *Kit) BuildCFG(fi FuncInfo) *CFG {
	b := &cfgBuilder{
		pkg:     fi.Pkg,
		cfg:     &CFG{},
		lblBrk:  map[string]*Block{},
		lblCont: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmt(fi.Body, "")
	b.link(b.cur, b.cfg.Exit) // implicit return at end of body
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) emit(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			b.stmt(sub, "")
		}
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		b.stmt(s.Init, "")
		b.emit(s.Cond)
		pre := b.cur
		thenB := b.newBlock()
		b.link(pre, thenB)
		b.cur = thenB
		b.stmt(s.Body, "")
		thenEnd := b.cur
		join := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(pre, elseB)
			b.cur = elseB
			b.stmt(s.Else, "")
			b.link(b.cur, join)
		} else {
			b.link(pre, join)
		}
		b.link(thenEnd, join)
		b.cur = join
	case *ast.ForStmt:
		b.stmt(s.Init, "")
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		body, after, post := b.newBlock(), b.newBlock(), b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, after)
		}
		b.pushLoop(after, post, label)
		b.cur = body
		b.stmt(s.Body, "")
		b.link(b.cur, post)
		b.popLoop(label)
		b.cur = post
		b.stmt(s.Post, "")
		b.link(b.cur, head)
		b.cur = after
	case *ast.RangeStmt:
		b.emit(s.X)
		head := b.newBlock()
		b.link(b.cur, head)
		body, after := b.newBlock(), b.newBlock()
		b.link(head, body)
		b.link(head, after)
		b.pushLoop(after, head, label)
		b.cur = body
		b.stmt(s.Body, "")
		b.link(b.cur, head)
		b.popLoop(label)
		b.cur = after
	case *ast.SwitchStmt:
		b.stmt(s.Init, "")
		b.emit(s.Tag)
		b.switchClauses(s.Body, label)
	case *ast.TypeSwitchStmt:
		b.stmt(s.Init, "")
		b.stmt(s.Assign, "")
		b.switchClauses(s.Body, label)
	case *ast.SelectStmt:
		b.emit(s) // blocking-point marker; arms become real blocks below
		pre := b.cur
		join := b.newBlock()
		b.pushBreak(join, label)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			arm := b.newBlock()
			b.link(pre, arm)
			b.cur = arm
			b.stmt(cc.Comm, "")
			for _, sub := range cc.Body {
				b.stmt(sub, "")
			}
			b.link(b.cur, join)
		}
		b.popBreak(label)
		b.cur = join
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.emit(r)
		}
		b.emit(s) // marker so passes can anchor exit-point reports
		b.link(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			target := b.cfg.Exit
			if s.Label != nil {
				if t := b.lblBrk[s.Label.Name]; t != nil {
					target = t
				}
			} else if len(b.brk) > 0 {
				target = b.brk[len(b.brk)-1]
			}
			b.link(b.cur, target)
		case token.CONTINUE:
			target := b.cfg.Exit
			if s.Label != nil {
				if t := b.lblCont[s.Label.Name]; t != nil {
					target = t
				}
			} else if len(b.cont) > 0 {
				target = b.cont[len(b.cont)-1]
			}
			b.link(b.cur, target)
		case token.GOTO:
			// Rare in this tree; conservatively end the path.
			b.link(b.cur, b.cfg.Exit)
		}
		b.cur = b.newBlock()
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			b.emit(a)
		}
		b.cfg.Defers = append(b.cfg.Defers, s.Call)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			b.emit(a)
		}
	case *ast.ExprStmt:
		b.emit(s.X)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicLike(b.pkg, call) {
			b.cur = b.newBlock() // path ends without reaching Exit
		}
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, EmptyStmt, ...
		b.emit(s)
	}
}

// switchClauses builds the arms of a switch/type-switch, chaining
// fallthrough arms and joining everything (plus the no-default skip
// edge) at a fresh block.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, label string) {
	pre := b.cur
	join := b.newBlock()
	b.pushBreak(join, label)
	arms := make([]*Block, len(body.List))
	for i := range body.List {
		arms[i] = b.newBlock()
	}
	hasDefault := false
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.link(pre, arms[i])
		b.cur = arms[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		for _, sub := range stmts {
			b.stmt(sub, "")
		}
		if fallsThrough && i+1 < len(arms) {
			b.link(b.cur, arms[i+1])
		} else {
			b.link(b.cur, join)
		}
	}
	if !hasDefault {
		b.link(pre, join)
	}
	b.popBreak(label)
	b.cur = join
}

func (b *cfgBuilder) pushLoop(brkT, contT *Block, label string) {
	b.brk = append(b.brk, brkT)
	b.cont = append(b.cont, contT)
	if label != "" {
		b.lblBrk[label] = brkT
		b.lblCont[label] = contT
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	if label != "" {
		delete(b.lblBrk, label)
		delete(b.lblCont, label)
	}
}

func (b *cfgBuilder) pushBreak(brkT *Block, label string) {
	b.brk = append(b.brk, brkT)
	if label != "" {
		b.lblBrk[label] = brkT
	}
}

func (b *cfgBuilder) popBreak(label string) {
	b.brk = b.brk[:len(b.brk)-1]
	if label != "" {
		delete(b.lblBrk, label)
	}
}

// ---- dataflow ----------------------------------------------------------

// runFlow is a forward worklist fixpoint over g. States propagate from
// Entry (seeded with init) along edges; join merges states at
// confluence points, step applies one CFG node's effect, and eq decides
// convergence. Blocks never reached from Entry get no state and are
// skipped — passes should treat an absent in-state as dead code.
func runFlow[S any](g *CFG, init S, clone func(S) S, join func(S, S) S, eq func(S, S) bool, step func(S, ast.Node) S) map[*Block]S {
	in := map[*Block]S{g.Entry: init}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		st := clone(in[blk])
		for _, n := range blk.Nodes {
			st = step(st, n)
		}
		for _, succ := range blk.Succs {
			prev, seen := in[succ]
			var merged S
			if !seen {
				merged = clone(st)
			} else {
				merged = join(clone(prev), st)
			}
			if !seen || !eq(prev, merged) {
				in[succ] = merged
				if !queued[succ] {
					work = append(work, succ)
					queued[succ] = true
				}
			}
		}
	}
	return in
}

// walkFinal replays step over every reachable block with the converged
// in-states. Passes report from inside step on this second walk, where
// the state at each node is exact (up to the analysis' approximations).
func walkFinal[S any](g *CFG, in map[*Block]S, clone func(S) S, step func(S, ast.Node) S) {
	for _, blk := range g.Blocks {
		st, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		st = clone(st)
		for _, n := range blk.Nodes {
			st = step(st, n)
		}
	}
}

// exitStates returns the converged in-states of the Exit block's
// predecessors after applying their node effects — i.e. the states at
// every return point. The bool is false when Exit is unreachable
// (every path panics).
func exitStates[S any](g *CFG, in map[*Block]S, clone func(S) S, join func(S, S) S, step func(S, ast.Node) S) (S, bool) {
	var out S
	have := false
	for _, blk := range g.Blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		reaches := false
		for _, s := range blk.Succs {
			if s == g.Exit {
				reaches = true
			}
		}
		if !reaches {
			continue
		}
		st = clone(st)
		for _, n := range blk.Nodes {
			st = step(st, n)
		}
		if !have {
			out, have = st, true
		} else {
			out = join(out, st)
		}
	}
	if st, ok := in[g.Exit]; ok && !have {
		out, have = clone(st), true
	}
	return out, have
}

// nodeCalls visits every call expression inside one CFG node in source
// order, skipping nested function literals (each is analyzed as its own
// FuncInfo) and the select/return marker nodes (a select's arms are
// separate blocks, and a return's results were already emitted as their
// own nodes; visiting through either would double-count).
func nodeCalls(n ast.Node, f func(*ast.CallExpr)) {
	switch n.(type) {
	case *ast.SelectStmt, *ast.ReturnStmt:
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			f(x)
		}
		return true
	})
}
