package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicfield: a struct field whose address is passed to a sync/atomic
// operation anywhere in the module is part of the lock-free protocol —
// a plain (non-atomic) read or write of it anywhere else is a data race
// that the Go memory model makes undefined, and exactly the kind of
// "mostly-atomic" field mix the race detector only catches when both
// sides happen to run. The Kit indexes such fields module-wide
// (kit.go/indexAtomicFields); this pass flags every plain access to
// them. Migrating the field to an atomic.Uint64-style typed atomic
// removes the hazard (the plain spelling stops compiling).
var passAtomicField = &Pass{
	Name:    "atomicfield",
	Doc:     "a field used with sync/atomic must never be accessed plainly elsewhere",
	Default: true,
	Run: func(c *Context) {
		if len(c.Kit.atomicFields) == 0 {
			return
		}
		for _, f := range c.Pkg.Files {
			checkAtomicFieldFile(c, f)
		}
	},
}

func checkAtomicFieldFile(c *Context, f *ast.File) {
	// Selector expressions that are the &field argument of a sync/atomic
	// call are the sanctioned accesses.
	sanctioned := map[*ast.SelectorExpr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, _, ok := c.Kit.PkgCall(c.Pkg, call); !ok || path != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
				if sel, ok := un.X.(*ast.SelectorExpr); ok {
					sanctioned[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		s := c.Pkg.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		obj := s.Obj()
		if obj == nil {
			return true
		}
		first, atomicUse := c.Kit.atomicFields[obj]
		if !atomicUse {
			return true
		}
		c.Reportf(sel.Pos(), "plain access to field %s, which is written with sync/atomic (e.g. %s:%d); use atomic loads/stores everywhere or migrate it to a typed atomic", obj.Name(), first.Filename, first.Line)
		return true
	})
}
