// Package analytics implements snapshot-consistent graph analytics over
// the transactional engine — the paper's stated next step ("in our
// ongoing work, we plan to investigate the behavior of complex graph
// analytics", §8). Algorithms run inside one MVTO read transaction, so
// they observe a consistent snapshot while concurrent updates proceed —
// the HTAP setting the engine's architecture targets.
//
// The algorithms use the same AOT access methods as the query engine
// (adjacency iterators over offset-linked relationship lists), so their
// access patterns exercise exactly the storage design of §4.
package analytics

import (
	"fmt"
	"math"
	"sort"

	"poseidon/internal/core"
	"poseidon/internal/storage"
)

// idIndexer maps sparse record ids to dense [0,n) indexes for the
// algorithm working sets (which live in DRAM, per DG2: intermediate
// results stay volatile).
type idIndexer struct {
	idx map[uint64]int
	ids []uint64
}

func newIndexer() *idIndexer { return &idIndexer{idx: make(map[uint64]int)} }

func (x *idIndexer) add(id uint64) int {
	if i, ok := x.idx[id]; ok {
		return i
	}
	i := len(x.ids)
	x.idx[id] = i
	x.ids = append(x.ids, id)
	return i
}

// collectNodes gathers the visible nodes with the given label code (0 =
// all) and their dense index.
func collectNodes(tx *core.Tx, labelCode uint32) (*idIndexer, error) {
	x := newIndexer()
	err := tx.ScanNodes(func(n core.NodeSnap) bool {
		if labelCode == 0 || n.Rec.Label == labelCode {
			x.add(n.ID)
		}
		return true
	})
	return x, err
}

// BFSResult reports a breadth-first traversal.
type BFSResult struct {
	// Dist maps node id to hop distance from the source; unreachable
	// nodes are absent.
	Dist map[uint64]int
	// Reached is the number of reached nodes (including the source).
	Reached int
	// MaxDepth is the eccentricity observed.
	MaxDepth int
}

// BFS runs a breadth-first traversal from src over relationships with
// the given label (empty = all), following edges in both directions,
// within the transaction's snapshot.
func BFS(tx *core.Tx, src uint64, relLabel string) (*BFSResult, error) {
	labelCode, err := labelCodeOf(tx, relLabel)
	if err != nil {
		return &BFSResult{Dist: map[uint64]int{}}, nil // unknown label: nothing reachable
	}
	res := &BFSResult{Dist: map[uint64]int{}}
	srcSnap, err := tx.GetNode(src)
	if err != nil {
		return nil, fmt.Errorf("analytics: bfs source: %w", err)
	}
	res.Dist[src] = 0
	res.Reached = 1
	frontier := []core.NodeSnap{srcSnap}
	for depth := 1; len(frontier) > 0; depth++ {
		var next []core.NodeSnap
		for _, n := range frontier {
			if err := visitNeighbors(tx, n, labelCode, func(m core.NodeSnap) error {
				if _, seen := res.Dist[m.ID]; seen {
					return nil
				}
				res.Dist[m.ID] = depth
				res.Reached++
				res.MaxDepth = depth
				next = append(next, m)
				return nil
			}); err != nil {
				return nil, err
			}
		}
		frontier = next
	}
	return res, nil
}

func labelCodeOf(tx *core.Tx, relLabel string) (uint32, error) {
	if relLabel == "" {
		return 0, nil
	}
	code, ok := tx.EngineDict().Lookup(relLabel)
	if !ok {
		return 0, fmt.Errorf("analytics: unknown relationship label %q", relLabel)
	}
	return uint32(code), nil
}

// visitNeighbors calls fn for every neighbor of n over rels with
// labelCode (0 = all), both directions.
func visitNeighbors(tx *core.Tx, n core.NodeSnap, labelCode uint32, fn func(core.NodeSnap) error) error {
	visit := func(it *core.AdjIter, out bool) error {
		for {
			ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			r := it.Rel()
			other := r.Rec.Dst
			if !out {
				other = r.Rec.Src
			}
			m, err := tx.GetNode(other)
			if err == core.ErrNotFound {
				continue
			}
			if err != nil {
				return err
			}
			if err := fn(m); err != nil {
				return err
			}
		}
	}
	if err := visit(tx.NewOutRelIter(n, labelCode), true); err != nil {
		return err
	}
	return visit(tx.NewInRelIter(n, labelCode), false)
}

// PageRankResult holds ranks by node id.
type PageRankResult struct {
	Rank       map[uint64]float64
	Iterations int
	Delta      float64 // L1 change of the final iteration
}

// PageRank computes ranks over the nodes with nodeLabel (empty = all)
// and the directed relationships with relLabel (empty = all), within the
// transaction's snapshot. It iterates until the L1 delta drops below eps
// or maxIter is reached.
func PageRank(tx *core.Tx, nodeLabel, relLabel string, damping float64, maxIter int, eps float64) (*PageRankResult, error) {
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("analytics: damping must be in (0,1), got %v", damping)
	}
	var nodeCode uint32
	if nodeLabel != "" {
		code, ok := tx.EngineDict().Lookup(nodeLabel)
		if !ok {
			return &PageRankResult{Rank: map[uint64]float64{}}, nil
		}
		nodeCode = uint32(code)
	}
	relCode, err := labelCodeOf(tx, relLabel)
	if err != nil {
		return &PageRankResult{Rank: map[uint64]float64{}}, nil
	}

	x, err := collectNodes(tx, nodeCode)
	if err != nil {
		return nil, err
	}
	n := len(x.ids)
	if n == 0 {
		return &PageRankResult{Rank: map[uint64]float64{}}, nil
	}

	// Materialize the out-adjacency once (DRAM working set, DG2).
	adj := make([][]int32, n)
	for i, id := range x.ids {
		snap, err := tx.GetNode(id)
		if err != nil {
			continue
		}
		it := tx.NewOutRelIter(snap, relCode)
		for {
			ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if j, in := x.idx[it.Rel().Rec.Dst]; in {
				adj[i] = append(adj[i], int32(j))
			}
		}
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := (1 - damping) / float64(n)
	res := &PageRankResult{}
	for iter := 0; iter < maxIter; iter++ {
		var sink float64 // rank mass of dangling nodes, redistributed
		for i := range next {
			next[i] = base
		}
		for i, out := range adj {
			if len(out) == 0 {
				sink += rank[i]
				continue
			}
			share := damping * rank[i] / float64(len(out))
			for _, j := range out {
				next[j] += share
			}
		}
		if sink > 0 {
			spread := damping * sink / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		delta := 0.0
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		res.Iterations = iter + 1
		res.Delta = delta
		if delta < eps {
			break
		}
	}
	res.Rank = make(map[uint64]float64, n)
	for i, id := range x.ids {
		res.Rank[id] = rank[i]
	}
	return res, nil
}

// DegreeStats summarizes the degree distribution of a relationship label.
type DegreeStats struct {
	Nodes       int
	Edges       int
	MaxOut      int
	MaxIn       int
	AvgOut      float64
	Percentile9 int // 90th percentile out-degree
}

// Degrees computes out/in degree statistics over the snapshot.
func Degrees(tx *core.Tx, nodeLabel, relLabel string) (*DegreeStats, error) {
	var nodeCode uint32
	if nodeLabel != "" {
		code, ok := tx.EngineDict().Lookup(nodeLabel)
		if !ok {
			return &DegreeStats{}, nil
		}
		nodeCode = uint32(code)
	}
	relCode, err := labelCodeOf(tx, relLabel)
	if err != nil {
		return &DegreeStats{}, nil
	}
	st := &DegreeStats{}
	var outs []int
	err = tx.ScanNodes(func(n core.NodeSnap) bool {
		if nodeCode != 0 && n.Rec.Label != nodeCode {
			return true
		}
		st.Nodes++
		out, in := 0, 0
		itO := tx.NewOutRelIter(n, relCode)
		for {
			ok, err2 := itO.Next()
			if err2 != nil || !ok {
				break
			}
			out++
		}
		itI := tx.NewInRelIter(n, relCode)
		for {
			ok, err2 := itI.Next()
			if err2 != nil || !ok {
				break
			}
			in++
		}
		st.Edges += out
		if out > st.MaxOut {
			st.MaxOut = out
		}
		if in > st.MaxIn {
			st.MaxIn = in
		}
		outs = append(outs, out)
		return true
	})
	if err != nil {
		return nil, err
	}
	if st.Nodes > 0 {
		st.AvgOut = float64(st.Edges) / float64(st.Nodes)
		sort.Ints(outs)
		idx := len(outs) * 9 / 10
		if idx >= len(outs) {
			idx = len(outs) - 1
		}
		st.Percentile9 = outs[idx] // nearest-rank 90th percentile
	}
	return st, nil
}

// WeaklyConnectedComponents counts the weakly connected components over
// relationships with relLabel (empty = all), returning component sizes in
// descending order.
func WeaklyConnectedComponents(tx *core.Tx, relLabel string) ([]int, error) {
	relCode, err := labelCodeOf(tx, relLabel)
	if err != nil {
		return nil, nil
	}
	seen := map[uint64]bool{}
	var sizes []int
	var scanErr error
	err = tx.ScanNodes(func(n core.NodeSnap) bool {
		if seen[n.ID] {
			return true
		}
		// BFS flood from this node.
		size := 0
		frontier := []core.NodeSnap{n}
		seen[n.ID] = true
		for len(frontier) > 0 {
			var next []core.NodeSnap
			for _, cur := range frontier {
				size++
				if err := visitNeighbors(tx, cur, relCode, func(m core.NodeSnap) error {
					if !seen[m.ID] {
						seen[m.ID] = true
						next = append(next, m)
					}
					return nil
				}); err != nil {
					scanErr = err
					return false
				}
			}
			frontier = next
		}
		sizes = append(sizes, size)
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes, nil
}

// Value re-exported for callers building thresholds.
type Value = storage.Value
