package analytics

import (
	"math"
	"testing"

	"poseidon/internal/core"
)

// chainGraph builds 0-1-2-...-9 (knows) plus an isolated island 10-11.
func chainGraph(t *testing.T) (*core.Engine, []uint64) {
	t.Helper()
	e, err := core.Open(core.Config{Mode: core.DRAM, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	bl := e.NewBulkLoader()
	ids := make([]uint64, 12)
	for i := range ids {
		ids[i], err = bl.AddNode("P", map[string]any{"i": int64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 9; i++ {
		bl.AddRel(ids[i], ids[i+1], "knows", nil)
	}
	bl.AddRel(ids[10], ids[11], "knows", nil)
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	return e, ids
}

func TestBFSDistancesAndReach(t *testing.T) {
	e, ids := chainGraph(t)
	tx := e.Begin()
	defer tx.Abort()
	res, err := BFS(tx, ids[0], "knows")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 10 {
		t.Errorf("reached = %d, want 10 (island excluded)", res.Reached)
	}
	if res.MaxDepth != 9 {
		t.Errorf("max depth = %d, want 9", res.MaxDepth)
	}
	for i := 0; i < 10; i++ {
		if res.Dist[ids[i]] != i {
			t.Errorf("dist[%d] = %d, want %d", i, res.Dist[ids[i]], i)
		}
	}
	if _, reached := res.Dist[ids[10]]; reached {
		t.Error("island node reached")
	}
	// From the middle, both directions are followed.
	res, _ = BFS(tx, ids[5], "knows")
	if res.Dist[ids[0]] != 5 || res.Dist[ids[9]] != 4 {
		t.Errorf("middle BFS dists: %d/%d", res.Dist[ids[0]], res.Dist[ids[9]])
	}
	// Unknown labels reach nothing beyond the source.
	res, err = BFS(tx, ids[0], "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 0 && res.Reached != 1 {
		t.Errorf("ghost label reached %d", res.Reached)
	}
}

func TestBFSMissingSource(t *testing.T) {
	e, _ := chainGraph(t)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := BFS(tx, 9999, "knows"); err == nil {
		t.Error("BFS from missing node succeeded")
	}
}

func TestPageRankPropertiesOnRing(t *testing.T) {
	e, err := core.Open(core.Config{Mode: core.DRAM, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bl := e.NewBulkLoader()
	const n = 20
	ids := make([]uint64, n)
	for i := range ids {
		ids[i], _ = bl.AddNode("P", nil)
	}
	for i := range ids {
		bl.AddRel(ids[i], ids[(i+1)%n], "next", nil)
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Abort()
	res, err := PageRank(tx, "P", "next", 0.85, 100, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric ring: every node has identical rank 1/n, and ranks sum to 1.
	sum := 0.0
	for _, r := range res.Rank {
		sum += r
		if math.Abs(r-1.0/n) > 1e-6 {
			t.Fatalf("ring rank %v, want %v", r, 1.0/n)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v, want 1", sum)
	}
	if res.Iterations == 0 || res.Delta > 1e-9 {
		t.Errorf("did not converge: iters=%d delta=%v", res.Iterations, res.Delta)
	}
}

func TestPageRankHubGetsHighestRank(t *testing.T) {
	e, err := core.Open(core.Config{Mode: core.DRAM, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bl := e.NewBulkLoader()
	hub, _ := bl.AddNode("P", nil)
	for i := 0; i < 10; i++ {
		spoke, _ := bl.AddNode("P", nil)
		bl.AddRel(spoke, hub, "next", nil) // all point at the hub
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Abort()
	res, err := PageRank(tx, "P", "next", 0.85, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range res.Rank {
		if id != hub && r >= res.Rank[hub] {
			t.Errorf("spoke %d rank %v >= hub %v", id, r, res.Rank[hub])
		}
	}
}

func TestPageRankValidation(t *testing.T) {
	e, _ := chainGraph(t)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := PageRank(tx, "P", "knows", 1.5, 10, 1e-6); err == nil {
		t.Error("invalid damping accepted")
	}
	res, err := PageRank(tx, "Ghost", "knows", 0.85, 10, 1e-6)
	if err != nil || len(res.Rank) != 0 {
		t.Errorf("unknown label: %v, %d ranks", err, len(res.Rank))
	}
}

func TestDegrees(t *testing.T) {
	e, _ := chainGraph(t)
	tx := e.Begin()
	defer tx.Abort()
	st, err := Degrees(tx, "P", "knows")
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 12 {
		t.Errorf("nodes = %d", st.Nodes)
	}
	if st.Edges != 10 {
		t.Errorf("edges = %d", st.Edges)
	}
	if st.MaxOut != 1 || st.MaxIn != 1 {
		t.Errorf("max degrees %d/%d, want 1/1", st.MaxOut, st.MaxIn)
	}
	if st.AvgOut <= 0 {
		t.Errorf("avg out %v", st.AvgOut)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	e, _ := chainGraph(t)
	tx := e.Begin()
	defer tx.Abort()
	sizes, err := WeaklyConnectedComponents(tx, "knows")
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[0] != 10 || sizes[1] != 2 {
		t.Errorf("components = %v, want [10 2]", sizes)
	}
}

func TestAnalyticsSeeSnapshotNotLaterCommits(t *testing.T) {
	// HTAP: a long-running analytical transaction must not observe
	// updates committed after it began.
	e, ids := chainGraph(t)
	analyticTx := e.Begin()
	defer analyticTx.Abort()

	// A concurrent transactional update adds an edge bridging the island.
	writer := e.Begin()
	if _, err := writer.CreateRel(ids[9], ids[10], "knows", nil); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	res, err := BFS(analyticTx, ids[0], "knows")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 10 {
		t.Errorf("snapshot BFS reached %d, want 10 (bridge invisible)", res.Reached)
	}

	// A fresh transaction sees the bridge.
	freshTx := e.Begin()
	defer freshTx.Abort()
	res, err = BFS(freshTx, ids[0], "knows")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 12 {
		t.Errorf("fresh BFS reached %d, want 12", res.Reached)
	}
}
