package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"time"

	"poseidon"
	"poseidon/internal/query"
	"poseidon/internal/wire"
)

// handshakeTimeout bounds how long a fresh connection may take to
// complete the handshake before the server gives up on it.
const handshakeTimeout = 10 * time.Second

// readAhead bounds how many pipelined requests the reader goroutine
// buffers ahead of the processor, so a fire-hose client cannot make
// the server queue unbounded frames in memory.
const readAhead = 16

// conn is one client connection: a reader goroutine that decodes
// frames (and whose EOF cancels the connection context, aborting any
// statement running on behalf of a vanished client), and a processor
// that drives the request state machine. Requests on one connection
// are processed strictly in order; pipelining is just write-ahead.
type conn struct {
	srv    *Server
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	ctx    context.Context
	cancel context.CancelFunc

	// sessions holds one Session per execution mode, created lazily:
	// the public Session pins its mode at creation, and RUN may
	// override the connection default per statement.
	sessions [4]*poseidon.Session
	defMode  poseidon.ExecMode

	// tx is the connection's explicit transaction, if BEGIN is open.
	tx *poseidon.Tx
	// rows is the currently streaming result; while non-nil the
	// connection holds one admission slot.
	rows *poseidon.Rows

	stmts    map[uint32]*poseidon.Stmt
	nextStmt uint32
	helloed  bool
}

func newConn(s *Server, nc net.Conn) *conn {
	base := s.cfg.BaseContext
	if base == nil {
		//poseidonlint:ignore ctx-threading connection root context; no caller exists to thread one from
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	return &conn{
		srv:     s,
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 16<<10),
		bw:      bufio.NewWriterSize(nc, 32<<10),
		ctx:     ctx,
		cancel:  cancel,
		defMode: s.cfg.Mode,
		stmts:   make(map[uint32]*poseidon.Stmt),
	}
}

// shutdown force-closes the connection from the drain path.
func (c *conn) shutdown() {
	c.cancel()
	c.nc.Close()
}

// serve runs the connection to completion and releases every resource
// it holds: the open result's admission slot, the explicit
// transaction, and the per-mode sessions.
func (c *conn) serve() {
	defer func() {
		c.cancel()
		c.closeRows()
		if c.tx != nil {
			c.tx.Abort()
			c.tx = nil
		}
		for _, sess := range c.sessions {
			if sess != nil {
				sess.Close()
			}
		}
		c.nc.Close()
	}()

	if err := c.handshake(); err != nil {
		c.srv.logf("handshake %s: %v", c.nc.RemoteAddr(), err)
		return
	}

	// The reader goroutine turns client disconnects into context
	// cancellation even while the processor is mid-statement.
	type incoming struct {
		msg wire.Message
		err error
	}
	msgs := make(chan incoming, readAhead)
	go func() {
		defer close(msgs)
		for {
			m, err := wire.ReadMessage(c.br)
			select {
			case msgs <- incoming{m, err}:
			case <-c.ctx.Done():
				return
			}
			if err != nil {
				c.cancel()
				return
			}
		}
	}()

	for in := range msgs {
		if in.err != nil {
			// Framing is unrecoverable after a decode error; tell the
			// client why if the error was structural, then hang up.
			if in.err != nil && c.ctx.Err() == nil {
				_ = wire.WriteMessage(c.bw, &wire.Error{
					Code: wire.CodeProtocol, Message: in.err.Error()})
				_ = c.bw.Flush()
			}
			return
		}
		start := time.Now()
		ok := c.handle(in.msg)
		c.srv.tel.Observe(wire.MsgName(in.msg.Type()), time.Since(start))
		// Flush before honoring a close decision: a terminal error frame
		// must still reach the client.
		if err := c.bw.Flush(); err != nil || !ok {
			return
		}
	}
}

// handshake negotiates the protocol version under a deadline.
func (c *conn) handshake() error {
	c.nc.SetDeadline(time.Now().Add(handshakeTimeout))
	defer c.nc.SetDeadline(time.Time{})
	versions, err := wire.ReadClientHandshake(c.br)
	if err != nil {
		return err
	}
	v := wire.ChooseVersion(versions)
	if err := wire.WriteServerHandshake(c.bw, v); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if v == 0 {
		return wire.ErrVersionMismatch
	}
	return nil
}

// handle dispatches one request; false means close the connection.
func (c *conn) handle(m wire.Message) bool {
	if !c.helloed {
		h, ok := m.(*wire.Hello)
		if !ok {
			return c.reply(&wire.Error{Code: wire.CodeProtocol,
				Message: fmt.Sprintf("expected HELLO, got %s", wire.MsgName(m.Type()))}) && false
		}
		return c.handleHello(h)
	}
	switch t := m.(type) {
	case *wire.Hello:
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "duplicate HELLO"})
	case *wire.Prepare:
		return c.handlePrepare(t)
	case *wire.Run:
		return c.handleRun(t)
	case *wire.Pull:
		return c.handlePull(t)
	case *wire.Discard:
		return c.handleDiscard()
	case *wire.Begin:
		return c.handleBegin()
	case *wire.Commit:
		return c.handleCommit()
	case *wire.Rollback:
		return c.handleRollback()
	case *wire.Reset:
		return c.handleReset()
	case *wire.Goodbye:
		return false
	default:
		return c.reply(&wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("unexpected %s", wire.MsgName(m.Type()))})
	}
}

// reply writes one response frame; false means the connection is dead.
func (c *conn) reply(m wire.Message) bool {
	return wire.WriteMessage(c.bw, m) == nil
}

// sessFor returns the connection's session pinned to mode, creating it
// on first use. Every session shares the statement deadline and the
// per-connection transaction bound.
func (c *conn) sessFor(mode poseidon.ExecMode) *poseidon.Session {
	if c.sessions[mode] == nil {
		c.sessions[mode] = c.srv.db.NewSession(poseidon.SessionConfig{
			Mode:    mode,
			Timeout: c.srv.cfg.StmtTimeout,
			MaxTxs:  c.srv.cfg.SessionMaxTxs,
		})
	}
	return c.sessions[mode]
}

func (c *conn) handleHello(h *wire.Hello) bool {
	if h.Mode != wire.ModeDefault && h.Mode <= uint8(poseidon.Adaptive) {
		c.defMode = poseidon.ExecMode(h.Mode)
	}
	c.helloed = true
	return c.reply(&wire.Success{Meta: map[string]any{
		"server":  "poseidond",
		"version": c.srv.cfg.Version,
		"mode":    c.defMode.String(),
	}})
}

func (c *conn) handlePrepare(p *wire.Prepare) bool {
	stmt, err := c.srv.prepare(p.Text)
	if err != nil {
		return c.reply(&wire.Error{Code: wire.CodeSyntax, Message: err.Error()})
	}
	c.nextStmt++
	id := c.nextStmt
	c.stmts[id] = stmt
	return c.reply(&wire.Success{Meta: map[string]any{
		"stmt_id":     int64(id),
		"has_updates": stmt.Plan().HasUpdates(),
	}})
}

// runMode resolves a RUN's effective execution mode.
func (c *conn) runMode(m uint8) (poseidon.ExecMode, error) {
	if m == wire.ModeDefault {
		return c.defMode, nil
	}
	if m > uint8(poseidon.Adaptive) {
		return 0, fmt.Errorf("unknown execution mode %d", m)
	}
	return poseidon.ExecMode(m), nil
}

func (c *conn) handleRun(r *wire.Run) bool {
	if c.srv.draining.Load() {
		return c.reply(errorFrame(errDraining))
	}
	if c.rows != nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol,
			Message: "a result is still streaming; PULL or DISCARD it first"})
	}
	var stmt *poseidon.Stmt
	if r.StmtID != 0 {
		stmt = c.stmts[r.StmtID]
		if stmt == nil {
			return c.reply(&wire.Error{Code: wire.CodeUnknownStmt,
				Message: fmt.Sprintf("statement %d was never prepared on this connection", r.StmtID)})
		}
	} else {
		var err error
		if stmt, err = c.srv.prepare(r.Text); err != nil {
			return c.reply(&wire.Error{Code: wire.CodeSyntax, Message: err.Error()})
		}
	}
	mode, err := c.runMode(r.Mode)
	if err != nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
	}
	if err := c.srv.admit(c.ctx); err != nil {
		return c.reply(errorFrame(err))
	}
	sess := c.sessFor(mode)
	params := query.Params(r.Params)

	// Inside an explicit transaction every statement — reads and
	// updates alike — joins it; committing stays with the client.
	if c.tx != nil {
		rows, err := sess.QueryTx(c.ctx, c.tx, stmt, params)
		if err != nil {
			c.srv.release()
			return c.reply(errorFrame(err))
		}
		c.rows = rows
		return c.reply(&wire.Success{Meta: map[string]any{"streaming": true}})
	}

	// Auto-commit: updates run to completion and commit before the
	// SUCCESS; reads open a streaming result the client PULLs.
	if stmt.Plan().HasUpdates() {
		n, err := sess.Exec(c.ctx, stmt, params)
		c.srv.release()
		if err != nil {
			return c.reply(errorFrame(err))
		}
		return c.reply(&wire.Success{Meta: map[string]any{
			"rows_affected": int64(n),
			"committed":     true,
		}})
	}
	rows, err := sess.Query(c.ctx, stmt, params)
	if err != nil {
		c.srv.release()
		return c.reply(errorFrame(err))
	}
	c.rows = rows
	return c.reply(&wire.Success{Meta: map[string]any{"streaming": true}})
}

// closeRows closes the open result, if any, and returns its admission
// slot.
func (c *conn) closeRows() error {
	if c.rows == nil {
		return nil
	}
	err := c.rows.Close()
	c.rows = nil
	c.srv.release()
	return err
}

func (c *conn) handlePull(p *wire.Pull) bool {
	if c.rows == nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "no open result to PULL"})
	}
	sent := int64(0)
	for p.N < 0 || sent < p.N {
		if !c.rows.Next() {
			err := c.rows.Err()
			if cerr := c.closeRows(); err == nil {
				err = cerr
			}
			if err != nil {
				return c.reply(errorFrame(err))
			}
			return c.reply(&wire.Success{Meta: map[string]any{"has_more": false}})
		}
		vals, err := c.rows.Values()
		if err != nil {
			c.closeRows()
			return c.reply(errorFrame(err))
		}
		if !c.reply(&wire.Record{Values: vals}) {
			return false
		}
		sent++
	}
	return c.reply(&wire.Success{Meta: map[string]any{"has_more": true}})
}

func (c *conn) handleDiscard() bool {
	if c.rows == nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "no open result to DISCARD"})
	}
	if err := c.closeRows(); err != nil {
		return c.reply(errorFrame(err))
	}
	return c.reply(&wire.Success{})
}

func (c *conn) handleBegin() bool {
	if c.srv.draining.Load() {
		return c.reply(errorFrame(errDraining))
	}
	if c.tx != nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "transaction already open"})
	}
	tx, err := c.sessFor(c.defMode).Begin()
	if err != nil {
		return c.reply(errorFrame(err))
	}
	c.tx = tx
	return c.reply(&wire.Success{})
}

func (c *conn) handleCommit() bool {
	if c.tx == nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "no open transaction"})
	}
	if c.rows != nil {
		// The producer goroutine shares the transaction; committing
		// under a live cursor would race it.
		return c.reply(&wire.Error{Code: wire.CodeProtocol,
			Message: "a result is still streaming; PULL or DISCARD it before COMMIT"})
	}
	tx := c.tx
	c.tx = nil
	if err := tx.Commit(); err != nil {
		return c.reply(errorFrame(err))
	}
	return c.reply(&wire.Success{Meta: map[string]any{"committed": true}})
}

func (c *conn) handleRollback() bool {
	if c.tx == nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "no open transaction"})
	}
	if c.rows != nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol,
			Message: "a result is still streaming; PULL or DISCARD it before ROLLBACK"})
	}
	c.tx.Abort()
	c.tx = nil
	return c.reply(&wire.Success{})
}

func (c *conn) handleReset() bool {
	c.closeRows()
	if c.tx != nil {
		c.tx.Abort()
		c.tx = nil
	}
	return c.reply(&wire.Success{})
}
