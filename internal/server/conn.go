package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"poseidon"
	"poseidon/internal/query"
	"poseidon/internal/trace"
	"poseidon/internal/wire"
)

// handshakeTimeout bounds how long a fresh connection may take to
// complete the handshake before the server gives up on it.
const handshakeTimeout = 10 * time.Second

// readAhead bounds how many pipelined requests the reader goroutine
// buffers ahead of the processor, so a fire-hose client cannot make
// the server queue unbounded frames in memory.
const readAhead = 16

// conn is one client connection: a reader goroutine that decodes
// frames (and whose EOF cancels the connection context, aborting any
// statement running on behalf of a vanished client), and a processor
// that drives the request state machine. Requests on one connection
// are processed strictly in order; pipelining is just write-ahead.
type conn struct {
	srv    *Server
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	ctx    context.Context
	cancel context.CancelFunc

	// sessions holds one Session per execution mode, created lazily:
	// the public Session pins its mode at creation, and RUN may
	// override the connection default per statement.
	sessions [4]*poseidon.Session
	defMode  poseidon.ExecMode

	// tx is the connection's explicit transaction, if BEGIN is open.
	tx *poseidon.Tx
	// rows is the currently streaming result; while non-nil the
	// connection holds one admission slot.
	rows *poseidon.Rows

	stmts    map[uint32]*poseidon.Stmt
	nextStmt uint32
	helloed  bool

	// version is the wire version the handshake negotiated.
	version uint32
	// wireSpan is the server.run root span of the currently streaming
	// result; it ends (sealing the trace) when the result closes.
	wireSpan *trace.Span
	// lastTrace is the most recent finished trace rooted by this
	// connection — the backing store for the sys:profile statement.
	lastTrace atomic.Pointer[trace.Trace]
}

func newConn(s *Server, nc net.Conn) *conn {
	base := s.cfg.BaseContext
	if base == nil {
		//poseidonlint:ignore ctx-threading connection root context; no caller exists to thread one from
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	return &conn{
		srv:     s,
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 16<<10),
		bw:      bufio.NewWriterSize(nc, 32<<10),
		ctx:     ctx,
		cancel:  cancel,
		defMode: s.cfg.Mode,
		stmts:   make(map[uint32]*poseidon.Stmt),
	}
}

// shutdown force-closes the connection from the drain path.
func (c *conn) shutdown() {
	c.cancel()
	c.nc.Close()
}

// serve runs the connection to completion and releases every resource
// it holds: the open result's admission slot, the explicit
// transaction, and the per-mode sessions.
func (c *conn) serve() {
	defer func() {
		c.cancel()
		c.closeRows()
		if c.tx != nil {
			c.tx.Abort()
			c.tx = nil
		}
		for _, sess := range c.sessions {
			if sess != nil {
				sess.Close()
			}
		}
		c.nc.Close()
	}()

	if err := c.handshake(); err != nil {
		c.srv.logf("handshake %s: %v", c.nc.RemoteAddr(), err)
		return
	}

	// The reader goroutine turns client disconnects into context
	// cancellation even while the processor is mid-statement.
	type incoming struct {
		msg wire.Message
		err error
	}
	msgs := make(chan incoming, readAhead)
	go func() {
		defer close(msgs)
		for {
			m, err := wire.ReadMessage(c.br)
			select {
			case msgs <- incoming{m, err}:
			case <-c.ctx.Done():
				return
			}
			if err != nil {
				c.cancel()
				return
			}
		}
	}()

	for in := range msgs {
		if in.err != nil {
			// Framing is unrecoverable after a decode error; tell the
			// client why if the error was structural, then hang up.
			if in.err != nil && c.ctx.Err() == nil {
				_ = wire.WriteMessage(c.bw, &wire.Error{
					Code: wire.CodeProtocol, Message: in.err.Error()})
				_ = c.bw.Flush()
			}
			return
		}
		start := time.Now()
		ok := c.handle(in.msg)
		c.srv.tel.Observe(wire.MsgName(in.msg.Type()), time.Since(start))
		// Flush before honoring a close decision: a terminal error frame
		// must still reach the client.
		if err := c.bw.Flush(); err != nil || !ok {
			return
		}
	}
}

// handshake negotiates the protocol version under a deadline.
func (c *conn) handshake() error {
	c.nc.SetDeadline(time.Now().Add(handshakeTimeout))
	defer c.nc.SetDeadline(time.Time{})
	versions, err := wire.ReadClientHandshake(c.br)
	if err != nil {
		return err
	}
	v := wire.ChooseVersion(versions)
	if err := wire.WriteServerHandshake(c.bw, v); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if v == 0 {
		return wire.ErrVersionMismatch
	}
	c.version = v
	return nil
}

// startRun roots the wire-level span for one RUN. A v2 client that
// propagated its trace context continues that trace (the client span
// becomes the remote parent); otherwise a fresh trace is rooted here.
// Returns ctx unchanged and a nil span when tracing is disabled.
func (c *conn) startRun(r *wire.Run) (context.Context, *trace.Span) {
	tracer := c.srv.db.Tracer()
	if tracer == nil {
		return c.ctx, nil
	}
	var sc trace.SpanContext
	if r.Trace != nil {
		sc = trace.SpanContext{TraceID: r.Trace.TraceID, SpanID: r.Trace.SpanID}
	}
	ctx := trace.WithFinishSink(c.ctx, func(tr *trace.Trace) { c.lastTrace.Store(tr) })
	ctx, sp := tracer.StartRemote(ctx, sc, "server.run", trace.KindWire)
	if sc.Valid() {
		sp.SetAttr("remote", true)
	}
	return ctx, sp
}

// handle dispatches one request; false means close the connection.
func (c *conn) handle(m wire.Message) bool {
	if !c.helloed {
		h, ok := m.(*wire.Hello)
		if !ok {
			return c.reply(&wire.Error{Code: wire.CodeProtocol,
				Message: fmt.Sprintf("expected HELLO, got %s", wire.MsgName(m.Type()))}) && false
		}
		return c.handleHello(h)
	}
	switch t := m.(type) {
	case *wire.Hello:
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "duplicate HELLO"})
	case *wire.Prepare:
		return c.handlePrepare(t)
	case *wire.Run:
		return c.handleRun(t)
	case *wire.Pull:
		return c.handlePull(t)
	case *wire.Discard:
		return c.handleDiscard()
	case *wire.Begin:
		return c.handleBegin()
	case *wire.Commit:
		return c.handleCommit()
	case *wire.Rollback:
		return c.handleRollback()
	case *wire.Reset:
		return c.handleReset()
	case *wire.Goodbye:
		return false
	default:
		return c.reply(&wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("unexpected %s", wire.MsgName(m.Type()))})
	}
}

// reply writes one response frame; false means the connection is dead.
func (c *conn) reply(m wire.Message) bool {
	return wire.WriteMessage(c.bw, m) == nil
}

// sessFor returns the connection's session pinned to mode, creating it
// on first use. Every session shares the statement deadline and the
// per-connection transaction bound.
func (c *conn) sessFor(mode poseidon.ExecMode) *poseidon.Session {
	if c.sessions[mode] == nil {
		c.sessions[mode] = c.srv.db.NewSession(poseidon.SessionConfig{
			Mode:    mode,
			Timeout: c.srv.cfg.StmtTimeout,
			MaxTxs:  c.srv.cfg.SessionMaxTxs,
		})
	}
	return c.sessions[mode]
}

func (c *conn) handleHello(h *wire.Hello) bool {
	if h.Mode != wire.ModeDefault && h.Mode <= uint8(poseidon.Adaptive) {
		c.defMode = poseidon.ExecMode(h.Mode)
	}
	c.helloed = true
	// A traced HELLO records the connection setup as a (tiny) trace of
	// its own — tail sampling keeps it only if it was slow or errored.
	if tracer := c.srv.db.Tracer(); tracer != nil && h.Trace != nil {
		_, sp := tracer.StartRemote(c.ctx,
			trace.SpanContext{TraceID: h.Trace.TraceID, SpanID: h.Trace.SpanID},
			"server.hello", trace.KindWire)
		sp.SetAttr("user_agent", h.UserAgent)
		sp.End()
	}
	return c.reply(&wire.Success{Meta: map[string]any{
		"server":   "poseidond",
		"version":  c.srv.cfg.Version,
		"mode":     c.defMode.String(),
		"protocol": int64(c.version),
	}})
}

func (c *conn) handlePrepare(p *wire.Prepare) bool {
	stmt, err := c.srv.prepare(p.Text)
	if err != nil {
		return c.reply(&wire.Error{Code: wire.CodeSyntax, Message: err.Error()})
	}
	c.nextStmt++
	id := c.nextStmt
	c.stmts[id] = stmt
	return c.reply(&wire.Success{Meta: map[string]any{
		"stmt_id":     int64(id),
		"has_updates": stmt.Plan().HasUpdates(),
	}})
}

// runMode resolves a RUN's effective execution mode.
func (c *conn) runMode(m uint8) (poseidon.ExecMode, error) {
	if m == wire.ModeDefault {
		return c.defMode, nil
	}
	if m > uint8(poseidon.Adaptive) {
		return 0, fmt.Errorf("unknown execution mode %d", m)
	}
	return poseidon.ExecMode(m), nil
}

func (c *conn) handleRun(r *wire.Run) bool {
	if c.srv.draining.Load() {
		return c.reply(errorFrame(errDraining))
	}
	if c.rows != nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol,
			Message: "a result is still streaming; PULL or DISCARD it first"})
	}
	// Introspection statements bypass prepare and admission: they read
	// volatile telemetry, not the graph.
	if r.StmtID == 0 && strings.HasPrefix(r.Text, "sys:") {
		return c.handleSys(r.Text)
	}
	var stmt *poseidon.Stmt
	if r.StmtID != 0 {
		stmt = c.stmts[r.StmtID]
		if stmt == nil {
			return c.reply(&wire.Error{Code: wire.CodeUnknownStmt,
				Message: fmt.Sprintf("statement %d was never prepared on this connection", r.StmtID)})
		}
	} else {
		var err error
		if stmt, err = c.srv.prepare(r.Text); err != nil {
			return c.reply(&wire.Error{Code: wire.CodeSyntax, Message: err.Error()})
		}
	}
	mode, err := c.runMode(r.Mode)
	if err != nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
	}
	ctx, rspan := c.startRun(r)
	rspan.SetAttr("mode", mode.String())
	if text := stmt.Text(); text != "" {
		rspan.SetAttr("text", text)
	} else if r.Text != "" {
		rspan.SetAttr("text", r.Text)
	}
	asp := rspan.Child("server.admit", trace.KindAdmission)
	aerr := c.srv.admit(c.ctx)
	asp.SetError(aerr)
	asp.End()
	if aerr != nil {
		rspan.SetError(aerr)
		rspan.End()
		return c.reply(errorFrame(aerr))
	}
	//poseidonlint:ignore lifecycle sessFor caches the session per connection; conn.Close releases both cached sessions
	sess := c.sessFor(mode)
	params := query.Params(r.Params)

	// Inside an explicit transaction every statement — reads and
	// updates alike — joins it; committing stays with the client.
	if c.tx != nil {
		rows, err := sess.QueryTx(ctx, c.tx, stmt, params)
		if err != nil {
			c.srv.release()
			rspan.SetError(err)
			rspan.End()
			return c.reply(errorFrame(err))
		}
		c.rows = rows
		c.wireSpan = rspan
		return c.reply(&wire.Success{Meta: map[string]any{"streaming": true}})
	}

	// Auto-commit: updates run to completion and commit before the
	// SUCCESS; reads open a streaming result the client PULLs.
	if stmt.Plan().HasUpdates() {
		n, err := sess.Exec(ctx, stmt, params)
		c.srv.release()
		rspan.SetError(err)
		rspan.End()
		if err != nil {
			return c.reply(errorFrame(err))
		}
		return c.reply(&wire.Success{Meta: map[string]any{
			"rows_affected": int64(n),
			"committed":     true,
		}})
	}
	rows, err := sess.Query(ctx, stmt, params)
	if err != nil {
		c.srv.release()
		rspan.SetError(err)
		rspan.End()
		return c.reply(errorFrame(err))
	}
	c.rows = rows
	// The wire span covers the full streaming lifetime; closeRows seals
	// the trace after the session span (owned by the Rows cleanup) ends.
	c.wireSpan = rspan
	return c.reply(&wire.Success{Meta: map[string]any{"streaming": true}})
}

// handleSys serves the sys:* introspection statements added alongside
// protocol v2 (plain RUN text, so they work over v1 framing too).
func (c *conn) handleSys(name string) bool {
	switch {
	case name == "sys:profile":
		// The per-connection equivalent of Session.LastProfile: the
		// profile of the most recent trace this connection rooted.
		return c.reply(&wire.Success{Meta: map[string]any{
			"profile": trace.BuildProfile(c.lastTrace.Load()).Format(),
		}})
	case name == "sys:traces":
		trs := c.srv.db.Traces()
		sums := make([]trace.Summary, 0, len(trs))
		for _, tr := range trs {
			sums = append(sums, trace.Summarize(tr))
		}
		b, err := json.Marshal(sums)
		if err != nil {
			return c.reply(&wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		}
		return c.reply(&wire.Success{Meta: map[string]any{"traces": string(b)}})
	case strings.HasPrefix(name, "sys:trace:"):
		tracer := c.srv.db.Tracer()
		if tracer == nil {
			return c.reply(&wire.Error{Code: wire.CodeInternal, Message: "tracing is disabled"})
		}
		id, err := trace.ParseID(strings.TrimPrefix(name, "sys:trace:"))
		if err != nil {
			return c.reply(&wire.Error{Code: wire.CodeSyntax, Message: err.Error()})
		}
		tr := tracer.Trace(id)
		if tr == nil {
			return c.reply(&wire.Error{Code: wire.CodeSyntax,
				Message: fmt.Sprintf("trace %s is not retained (evicted or sampled out)", trace.FormatID(id))})
		}
		b, err := trace.ChromeJSON([]*trace.Trace{tr})
		if err != nil {
			return c.reply(&wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		}
		return c.reply(&wire.Success{Meta: map[string]any{"trace": string(b)}})
	default:
		return c.reply(&wire.Error{Code: wire.CodeSyntax,
			Message: fmt.Sprintf("unknown sys statement %q (want sys:profile, sys:traces or sys:trace:<id>)", name)})
	}
}

// closeRows closes the open result, if any, and returns its admission
// slot.
func (c *conn) closeRows() error {
	if c.rows == nil {
		return nil
	}
	err := c.rows.Close()
	c.rows = nil
	// Close ran the Rows cleanup, which ended the session span; ending
	// the wire root now seals the trace and hands it to tail sampling.
	if c.wireSpan != nil {
		c.wireSpan.SetError(err)
		c.wireSpan.End()
		c.wireSpan = nil
	}
	c.srv.release()
	return err
}

func (c *conn) handlePull(p *wire.Pull) bool {
	if c.rows == nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "no open result to PULL"})
	}
	sent := int64(0)
	for p.N < 0 || sent < p.N {
		if !c.rows.Next() {
			err := c.rows.Err()
			if cerr := c.closeRows(); err == nil {
				err = cerr
			}
			if err != nil {
				return c.reply(errorFrame(err))
			}
			return c.reply(&wire.Success{Meta: map[string]any{"has_more": false}})
		}
		vals, err := c.rows.Values()
		if err != nil {
			c.closeRows()
			return c.reply(errorFrame(err))
		}
		if !c.reply(&wire.Record{Values: vals}) {
			return false
		}
		sent++
	}
	return c.reply(&wire.Success{Meta: map[string]any{"has_more": true}})
}

func (c *conn) handleDiscard() bool {
	if c.rows == nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "no open result to DISCARD"})
	}
	if err := c.closeRows(); err != nil {
		return c.reply(errorFrame(err))
	}
	return c.reply(&wire.Success{})
}

func (c *conn) handleBegin() bool {
	if c.srv.draining.Load() {
		return c.reply(errorFrame(errDraining))
	}
	if c.tx != nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "transaction already open"})
	}
	tx, err := c.sessFor(c.defMode).Begin()
	if err != nil {
		return c.reply(errorFrame(err))
	}
	c.tx = tx
	return c.reply(&wire.Success{})
}

func (c *conn) handleCommit() bool {
	if c.tx == nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "no open transaction"})
	}
	if c.rows != nil {
		// The producer goroutine shares the transaction; committing
		// under a live cursor would race it.
		return c.reply(&wire.Error{Code: wire.CodeProtocol,
			Message: "a result is still streaming; PULL or DISCARD it before COMMIT"})
	}
	tx := c.tx
	c.tx = nil
	// Root a trace for the explicit COMMIT and ride it on the
	// transaction's context so the core commit spans (lock wait, pmem
	// persist) attach under it.
	var sp *trace.Span
	if tracer := c.srv.db.Tracer(); tracer != nil {
		ctx := trace.WithFinishSink(c.ctx, func(tr *trace.Trace) { c.lastTrace.Store(tr) })
		ctx, sp = tracer.Start(ctx, "server.commit", trace.KindWire)
		tx.WithContext(ctx)
	}
	err := tx.Commit()
	sp.SetError(err)
	sp.End()
	if err != nil {
		return c.reply(errorFrame(err))
	}
	return c.reply(&wire.Success{Meta: map[string]any{"committed": true}})
}

func (c *conn) handleRollback() bool {
	if c.tx == nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol, Message: "no open transaction"})
	}
	if c.rows != nil {
		return c.reply(&wire.Error{Code: wire.CodeProtocol,
			Message: "a result is still streaming; PULL or DISCARD it before ROLLBACK"})
	}
	c.tx.Abort()
	c.tx = nil
	return c.reply(&wire.Success{})
}

func (c *conn) handleReset() bool {
	c.closeRows()
	if c.tx != nil {
		c.tx.Abort()
		c.tx = nil
	}
	return c.reply(&wire.Success{})
}
