package server

import (
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"poseidon"
	"poseidon/client"
	"poseidon/internal/trace"
	"poseidon/internal/wire"
)

// startTracedServer boots a server whose DB retains every trace
// (sample rate 1), so assertions do not race tail sampling.
func startTracedServer(t *testing.T, cfg Config) (*poseidon.DB, *Server, string) {
	t.Helper()
	db, err := poseidon.Open(poseidon.Config{
		Mode:     poseidon.DRAM,
		PoolSize: 128 << 20,
		Telemetry: poseidon.TelemetryConfig{
			Enabled: true,
			Trace:   poseidon.TraceConfig{Enabled: true, SampleRate: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	cfg.DB = db
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return db, srv, l.Addr().String()
}

// TestTracePropagationEndToEnd drives a traced client against a traced
// server and asserts the propagated trace reaches every layer: the
// server retains a trace under the client's ID whose spans run
// wire → admission → session → execution → commit → pmem.
func TestTracePropagationEndToEnd(t *testing.T) {
	db, _, addr := startTracedServer(t, Config{})

	ct := trace.New(trace.Config{SampleRate: 1})
	c, err := client.Dial(addr, client.Options{Tracer: ct})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v != wire.Version2 {
		t.Fatalf("negotiated version = %d, want %d", v, wire.Version2)
	}
	if p, _ := c.ServerInfo()["protocol"].(int64); p != int64(wire.Version2) {
		t.Fatalf("HELLO protocol meta = %v", c.ServerInfo()["protocol"])
	}

	// An auto-commit update exercises the deepest span chain: wire →
	// admission → session → stmt → interpreter → core commit → pmem.
	if _, err := c.ExecText(`CREATE (:Person {name: $n})`, map[string]any{"n": "alice"}); err != nil {
		t.Fatal(err)
	}
	idHex := c.LastTraceID()
	if idHex == "" {
		t.Fatal("client recorded no trace ID")
	}
	id, err := trace.ParseID(idHex)
	if err != nil {
		t.Fatal(err)
	}
	tr := db.Tracer().Trace(id)
	if tr == nil {
		t.Fatalf("server did not retain trace %s; retained: %d", idHex, len(db.Traces()))
	}
	if tr.RemoteParent == 0 {
		t.Error("propagated trace carries no remote parent span")
	}
	kinds := make(map[trace.Kind]bool)
	for _, k := range tr.Kinds() {
		kinds[k] = true
	}
	for _, want := range []trace.Kind{trace.KindWire, trace.KindAdmission, trace.KindSession, trace.KindCommit, trace.KindPMem} {
		if !kinds[want] {
			t.Errorf("trace %s missing a %q span; kinds = %v", idHex, want, tr.Kinds())
		}
	}
	// Per-shard lock wait, when contention occurred, hangs off the
	// commit span as lock_wait_shard<N>_ns; with a single client there
	// is none, but the commit span itself must carry the shard count.
	var commitSeen bool
	for _, sp := range tr.Spans {
		if sp.Name == "core.commit" {
			commitSeen = true
			var shards bool
			for _, a := range sp.Attrs {
				if a.Key == "shards" {
					shards = true
				}
			}
			if !shards {
				t.Errorf("core.commit span missing shards attr: %+v", sp.Attrs)
			}
		}
	}
	if !commitSeen {
		t.Error("no core.commit span in propagated trace")
	}

	// A streaming read seals its trace when the result is drained.
	if _, err := c.QueryText(`MATCH (p:Person) RETURN p.name`, nil); err != nil {
		t.Fatal(err)
	}
	qid, err := trace.ParseID(c.LastTraceID())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for db.Tracer().Trace(qid) == nil {
		if time.Now().After(deadline) {
			t.Fatalf("server never retained streaming-read trace %s", c.LastTraceID())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// sys:profile reflects the most recent request on this connection.
	meta, err := c.Sys("profile")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := meta["profile"].(string)
	if !strings.Contains(prof, "session.query") {
		t.Errorf("sys:profile missing session stage:\n%s", prof)
	}

	// sys:traces lists retained summaries; sys:trace:<id> exports one.
	meta, err = c.Sys("traces")
	if err != nil {
		t.Fatal(err)
	}
	var sums []trace.Summary
	if err := json.Unmarshal([]byte(meta["traces"].(string)), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("sys:traces returned no summaries")
	}
	meta, err = c.Sys("trace:" + idHex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(meta["trace"].(string), "traceEvents") {
		t.Errorf("sys:trace export is not Chrome trace-event JSON")
	}

	// Unknown sys statements are syntax errors, not hangups.
	if _, err := c.Sys("nonsense"); !client.IsCode(err, wire.CodeSyntax) {
		t.Errorf("sys:nonsense error = %v, want SYNTAX", err)
	}
	if c.Broken() {
		t.Fatal("connection broken after sys statements")
	}
}

// TestTraceExplicitCommit asserts an explicit BEGIN/.../COMMIT roots a
// server.commit trace carrying the core commit and persist spans.
func TestTraceExplicitCommit(t *testing.T) {
	db, _, addr := startTracedServer(t, Config{})
	ct := trace.New(trace.Config{SampleRate: 1})
	c, err := client.Dial(addr, client.Options{Tracer: ct})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecText(`CREATE (:Person {name: $n})`, map[string]any{"n": "bob"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	var found *trace.Trace
	for _, tr := range db.Traces() {
		if tr.Root().Name == "server.commit" {
			found = tr
		}
	}
	if found == nil {
		t.Fatal("no server.commit trace retained")
	}
	names := make(map[string]bool)
	for _, sp := range found.Spans {
		names[sp.Name] = true
	}
	if !names["core.commit"] || !names["pmem.persist"] {
		t.Errorf("server.commit trace spans = %v, want core.commit and pmem.persist", names)
	}
}

// TestUntracedServerIgnoresTraceMetadata: a traced client against an
// untraced server still works — the metadata is decoded and dropped.
func TestUntracedServerDropsTraceMetadata(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	ct := trace.New(trace.Config{SampleRate: 1})
	c, err := client.Dial(addr, client.Options{Tracer: ct})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ExecText(`CREATE (:Person {name: $n})`, map[string]any{"n": "carol"}); err != nil {
		t.Fatal(err)
	}
	// The client still traced locally.
	if c.LastTraceID() == "" {
		t.Fatal("client recorded no local trace ID")
	}
	// sys:profile reports the no-trace message instead of erroring.
	meta, err := c.Sys("profile")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := meta["profile"].(string); !ok {
		t.Fatalf("sys:profile meta = %v", meta)
	}
}
