// Package server implements poseidond: the network front door that
// maps wire-protocol connections onto the public Session/Stmt/Rows
// API. One Server owns the accept loop, the admission-control
// semaphore that bounds concurrently executing statements (shedding
// QUEUE_FULL beyond the bound and its wait queue), per-connection
// state machines with statement caches, and the graceful drain path:
// Shutdown stops accepting, lets in-flight statements finish, rejects
// new RUN/BEGIN requests with DRAINING, and finally closes whatever
// connections remain.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poseidon"
	"poseidon/internal/core"
	"poseidon/internal/ldbc"
	"poseidon/internal/query"
	"poseidon/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// DB is the engine the server fronts. Required.
	DB *poseidon.DB
	// Mode is the default execution mode for sessions whose HELLO does
	// not pin one.
	Mode poseidon.ExecMode
	// StmtTimeout is the per-statement deadline (default 30s).
	StmtTimeout time.Duration
	// MaxInflight bounds statements executing concurrently across all
	// connections — the admission-control semaphore (default 64).
	MaxInflight int
	// MaxQueue bounds how many RUNs may wait for an in-flight slot
	// before admission sheds with QUEUE_FULL (default == MaxInflight).
	MaxQueue int
	// QueueTimeout is the longest a queued RUN waits for a slot before
	// it too is shed (default 250ms).
	QueueTimeout time.Duration
	// SessionMaxTxs bounds live transactions per connection session
	// (default 8; see poseidon.SessionConfig.MaxTxs).
	SessionMaxTxs int
	// Version labels the poseidon_build_info gauge (default "dev").
	Version string
	// BaseContext, when set, parents every connection's context; its
	// cancellation aborts all running statements.
	BaseContext context.Context
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.StmtTimeout == 0 {
		c.StmtTimeout = 30 * time.Second
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = c.MaxInflight
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 250 * time.Millisecond
	}
	if c.SessionMaxTxs == 0 {
		c.SessionMaxTxs = 8
	}
	if c.Version == "" {
		c.Version = "dev"
	}
}

// Admission-control shed signals, mapped to their wire error codes by
// errorFrame.
var (
	errQueueFull = errors.New("server: admission queue full")
	errDraining  = errors.New("server: draining")
)

// Server is one poseidond instance.
type Server struct {
	cfg Config
	db  *poseidon.DB
	tel *poseidon.ServerTelemetry

	// slots is the bounded in-flight statement semaphore; waiters
	// bounds the queue of RUNs allowed to wait for a slot.
	slots   chan struct{}
	waiters chan struct{}

	draining atomic.Bool

	mu        sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}

	// inflight tracks admitted statements for the drain barrier;
	// connWG tracks connection goroutines for final teardown.
	inflight sync.WaitGroup
	connWG   sync.WaitGroup
}

// New builds a Server over cfg.DB. Metric series are registered on the
// DB's telemetry registry (no-ops when telemetry is disabled).
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	cfg.fill()
	return &Server{
		cfg:       cfg,
		db:        cfg.DB,
		tel:       cfg.DB.RegisterServer(cfg.Version, wire.RequestNames()),
		slots:     make(chan struct{}, cfg.MaxInflight),
		waiters:   make(chan struct{}, cfg.MaxQueue),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}, nil
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on l until the listener is closed (by
// Shutdown or externally). It returns nil on a drain-initiated close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.tel.ConnsOpen.Add(1)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			s.tel.ConnsOpen.Add(-1)
		}()
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server: stop accepting, reject new RUN/BEGIN
// requests with DRAINING, wait for every admitted statement to finish
// (or ctx to expire), then close the remaining connections. It returns
// ctx.Err() if the drain deadline cut statements short, nil otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// In-flight work is finished (or abandoned): close every remaining
	// connection; their sessions roll back whatever is still open.
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.shutdown()
	}
	s.connWG.Wait()
	return err
}

// Draining reports whether Shutdown has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit takes an in-flight slot, waiting up to QueueTimeout in the
// bounded queue; beyond either bound the request is shed with
// errQueueFull. A successful admit registers with the drain barrier.
func (s *Server) admit(ctx context.Context) error {
	acquired := false
	select {
	case s.slots <- struct{}{}:
		acquired = true
	default:
	}
	if !acquired {
		select {
		case s.waiters <- struct{}{}:
		default:
			s.tel.AdmissionRejects.Inc()
			return errQueueFull
		}
		t := time.NewTimer(s.cfg.QueueTimeout)
		select {
		case s.slots <- struct{}{}:
			acquired = true
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
		<-s.waiters
		if !acquired {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.tel.AdmissionRejects.Inc()
			return errQueueFull
		}
	}
	// A drain that raced the acquisition must not run new work behind
	// the barrier's back.
	if s.draining.Load() {
		<-s.slots
		return errDraining
	}
	s.inflight.Add(1)
	s.tel.InflightStmts.Add(1)
	return nil
}

// release returns an in-flight slot.
func (s *Server) release() {
	<-s.slots
	s.tel.InflightStmts.Add(-1)
	s.inflight.Done()
}

// prepare resolves statement text: Cypher, or an "ldbc:<name>"
// workload statement served from the built-in plan registry (the
// LDBC SR/IU queries are algebra plans, not Cypher — exposing them by
// name is what lets remote load harnesses drive the paper's workload).
func (s *Server) prepare(text string) (*poseidon.Stmt, error) {
	if name, ok := strings.CutPrefix(text, "ldbc:"); ok {
		plan, err := ldbcPlan(name)
		if err != nil {
			return nil, err
		}
		return s.db.PreparePlan(plan)
	}
	return s.db.Prepare(text)
}

// ldbcPlan parses "sr1", "sr2-post", "iu6" style workload names.
func ldbcPlan(name string) (*query.Plan, error) {
	kind, rest := "", ""
	switch {
	case strings.HasPrefix(name, "sr"):
		kind, rest = "sr", name[2:]
	case strings.HasPrefix(name, "iu"):
		kind, rest = "iu", name[2:]
	default:
		return nil, fmt.Errorf("unknown ldbc statement %q (want sr<N>[-post|-cmt] or iu<N>)", name)
	}
	num, variant := rest, ""
	if i := strings.IndexByte(rest, '-'); i >= 0 {
		num, variant = rest[:i], rest[i+1:]
	}
	if variant != "" && variant != "post" && variant != "cmt" {
		return nil, fmt.Errorf("unknown ldbc variant %q", variant)
	}
	n := 0
	for _, ch := range num {
		if ch < '0' || ch > '9' {
			return nil, fmt.Errorf("bad ldbc query number %q", num)
		}
		n = n*10 + int(ch-'0')
	}
	q := ldbc.QueryID{Num: n, Variant: variant}
	if kind == "sr" {
		return ldbc.SRPlan(q, true)
	}
	if variant != "" {
		return nil, fmt.Errorf("iu statements have no variant")
	}
	return ldbc.IUPlan(q, true)
}

// errorFrame maps an execution error to its wire ERROR frame.
func errorFrame(err error) *wire.Error {
	var code string
	switch {
	case errors.Is(err, errQueueFull):
		code = wire.CodeQueueFull
	case errors.Is(err, errDraining):
		code = wire.CodeDraining
	case errors.Is(err, poseidon.ErrSessionLimit):
		code = wire.CodeSessionLimit
	case errors.Is(err, core.ErrAborted), errors.Is(err, core.ErrTxDone):
		code = wire.CodeConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = wire.CodeCancelled
	case errors.Is(err, poseidon.ErrSessionClosed):
		code = wire.CodeCancelled
	default:
		code = wire.CodeInternal
	}
	return &wire.Error{Code: code, Message: err.Error()}
}
