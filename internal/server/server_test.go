package server

import (
	"context"
	"net"
	"testing"
	"time"

	"poseidon"
	"poseidon/client"
	"poseidon/internal/index"
	"poseidon/internal/ldbc"
	"poseidon/internal/wire"
)

// startServer boots a server over a fresh DRAM DB on a loopback
// listener and returns its address.
func startServer(t *testing.T, cfg Config) (*poseidon.DB, *Server, string) {
	t.Helper()
	db, err := poseidon.Open(poseidon.Config{
		Mode:      poseidon.DRAM,
		PoolSize:  128 << 20,
		Telemetry: poseidon.TelemetryConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	cfg.DB = db
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return db, srv, l.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestEndToEnd drives the full request surface over TCP: auto-commit
// writes and reads, prepared-statement reuse, and result streaming.
func TestEndToEnd(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dial(t, addr)

	if info := c.ServerInfo(); info["server"] != "poseidond" {
		t.Fatalf("HELLO meta = %v", info)
	}

	create, err := c.Prepare(`CREATE (:Person {name: $n, age: $a})`)
	if err != nil {
		t.Fatal(err)
	}
	if !create.HasUpdates {
		t.Fatal("CREATE statement not flagged has_updates")
	}
	for _, p := range []struct {
		n string
		a int64
	}{{"alice", 30}, {"bob", 25}, {"carol", 35}} {
		if _, err := c.Exec(create, map[string]any{"n": p.n, "a": p.a}); err != nil {
			t.Fatalf("exec %s: %v", p.n, err)
		}
	}

	match, err := c.Prepare(`MATCH (p:Person) WHERE p.age >= $min RETURN p.name`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(match, map[string]any{"min": int64(30)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2", rows)
	}

	// One-shot text path, no PREPARE.
	rows, err = c.QueryText(`MATCH (p:Person {name: $n}) RETURN p.age`, map[string]any{"n": "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(25) {
		t.Fatalf("one-shot rows = %v", rows)
	}
}

// TestExplicitTransaction checks BEGIN/COMMIT visibility and ROLLBACK
// isolation across two connections.
func TestExplicitTransaction(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	a, b := dial(t, addr), dial(t, addr)

	count := `MATCH (p:Person) RETURN p.name`

	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.QueryText(`CREATE (:Person {name: "tx"})`, nil); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: a sees it; b must not — MVTO either hides the locked
	// node or aborts b's snapshot with CONFLICT, but never dirty-reads.
	if rows, err := a.QueryText(count, nil); err != nil || len(rows) != 1 {
		t.Fatalf("in-tx rows = %v, %v", rows, err)
	}
	if rows, err := b.QueryText(count, nil); len(rows) != 0 ||
		(err != nil && !client.IsCode(err, wire.CodeConflict)) {
		t.Fatalf("other-conn rows = %v, %v (dirty read?)", rows, err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if rows, err := b.QueryText(count, nil); err != nil || len(rows) != 1 {
		t.Fatalf("post-commit rows = %v, %v", rows, err)
	}

	// ROLLBACK discards.
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.QueryText(`CREATE (:Person {name: "gone"})`, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Rollback(); err != nil {
		t.Fatal(err)
	}
	if rows, err := b.QueryText(count, nil); err != nil || len(rows) != 1 {
		t.Fatalf("post-rollback rows = %v, %v", rows, err)
	}
}

// TestLDBCStatements resolves the built-in workload statement names and
// runs one SR and one IU over a small generated dataset.
func TestLDBCStatements(t *testing.T) {
	db, _, addr := startServer(t, Config{})
	ds := ldbc.Generate(ldbc.Config{Persons: 50})
	if err := ds.LoadCore(db.Engine(), true, index.Hybrid); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)
	pg := ldbc.NewParamGen(ds, 7)

	sr, err := c.Prepare("ldbc:sr2-post")
	if err != nil {
		t.Fatal(err)
	}
	if sr.HasUpdates {
		t.Fatal("SR statement flagged has_updates")
	}
	if _, err := c.Query(sr, pg.SRParams(ldbc.QueryID{Num: 2, Variant: "post"})); err != nil {
		t.Fatal(err)
	}

	iu, err := c.Prepare("ldbc:iu2")
	if err != nil {
		t.Fatal(err)
	}
	if !iu.HasUpdates {
		t.Fatal("IU statement not flagged has_updates")
	}
	if _, err := c.Exec(iu, pg.IUParams(ldbc.QueryID{Num: 2})); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []string{"ldbc:sr99", "ldbc:zz1", "ldbc:iu2-post", "ldbc:sr2-x"} {
		if _, err := c.Prepare(bad); !client.IsCode(err, wire.CodeSyntax) {
			t.Errorf("Prepare(%q) = %v, want SYNTAX", bad, err)
		}
	}
}

// seedOne creates a single Person so read statements have work to do.
func seedOne(t *testing.T, db *poseidon.DB) {
	t.Helper()
	tx := db.Begin()
	if _, err := tx.CreateNode("Person", map[string]any{"name": "seed"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// holdSlot starts a streaming RUN without pulling it, so the
// connection sits on one admission slot until released().
func holdSlot(t *testing.T, c *client.Conn) {
	t.Helper()
	if err := c.Run(`MATCH (p:Person) RETURN p.name`, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionQueueFull saturates MaxInflight and the wait queue and
// expects the overflow RUN to be shed with QUEUE_FULL.
func TestAdmissionQueueFull(t *testing.T) {
	db, _, addr := startServer(t, Config{
		MaxInflight:  1,
		MaxQueue:     1,
		QueueTimeout: 30 * time.Millisecond,
	})
	seedOne(t, db)

	holder := dial(t, addr)
	holdSlot(t, holder)

	// The slot is held by the unfinished stream; the next RUN waits out
	// QueueTimeout and is shed.
	blocked := dial(t, addr)
	_, err := blocked.QueryText(`MATCH (p:Person) RETURN p.name`, nil)
	if !client.IsCode(err, wire.CodeQueueFull) {
		t.Fatalf("overflow RUN err = %v, want QUEUE_FULL", err)
	}

	m := db.Metrics()
	if m.Server == nil || m.Server.AdmissionRejects == 0 {
		t.Fatalf("admission_rejects not counted: %+v", m.Server)
	}

	// Releasing the slot un-wedges admission.
	if _, err := holder.PullAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := blocked.QueryText(`MATCH (p:Person) RETURN p.name`, nil); err != nil {
		t.Fatalf("post-release RUN: %v", err)
	}
}

// TestGracefulDrain checks the Shutdown contract: in-flight statements
// finish, new RUN/BEGIN are rejected with DRAINING, and Shutdown
// returns once the straggler completes.
func TestGracefulDrain(t *testing.T) {
	db, srv, addr := startServer(t, Config{MaxInflight: 4})
	seedOne(t, db)

	holder := dial(t, addr)
	holdSlot(t, holder)
	bystander := dial(t, addr)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is shed while the straggler keeps the drain barrier up.
	if _, err := bystander.QueryText(`MATCH (p:Person) RETURN p.name`, nil); !client.IsCode(err, wire.CodeDraining) {
		t.Fatalf("RUN during drain = %v, want DRAINING", err)
	}
	if err := bystander.Begin(); !client.IsCode(err, wire.CodeDraining) {
		t.Fatalf("BEGIN during drain = %v, want DRAINING", err)
	}
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v before in-flight statement finished", err)
	default:
	}

	// The in-flight stream still completes...
	rows, err := holder.PullAll()
	if err != nil {
		t.Fatalf("PULL during drain: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("drained rows = %v", rows)
	}
	// ...and its completion lets Shutdown through.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after last statement finished")
	}
}

// TestDisconnectReleasesResources kills a client mid-stream and checks
// the server returns the admission slot and connection slot.
func TestDisconnectReleasesResources(t *testing.T) {
	db, _, addr := startServer(t, Config{MaxInflight: 1})
	seedOne(t, db)

	c := dial(t, addr)
	holdSlot(t, c)
	c.Close() // vanish with the stream open and the slot held

	deadline := time.Now().Add(5 * time.Second)
	for {
		m := db.Metrics()
		if m.Server != nil && m.Server.InflightStmts == 0 && m.Server.ConnsOpen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot/conn not released after disconnect: %+v", m.Server)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The freed slot is usable by a new connection.
	c2 := dial(t, addr)
	if _, err := c2.QueryText(`MATCH (p:Person) RETURN p.name`, nil); err != nil {
		t.Fatalf("RUN after disconnect: %v", err)
	}
}

// TestProtocolViolations exercises the PROTOCOL error paths with raw
// wire messages: statements before HELLO, RUN with a stream open, and
// PULL with none.
func TestProtocolViolations(t *testing.T) {
	db, _, addr := startServer(t, Config{})
	seedOne(t, db)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteClientHandshake(nc, wire.Version1); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadServerHandshake(nc); err != nil {
		t.Fatal(err)
	}
	// RUN before HELLO is a protocol error and closes the connection.
	if err := wire.WriteMessage(nc, &wire.Run{Text: "RETURN 1", Mode: wire.ModeDefault}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := m.(*wire.Error); !ok || e.Code != wire.CodeProtocol {
		t.Fatalf("pre-HELLO RUN response = %#v", m)
	}

	// On a fresh connection: PULL with no open result.
	c := dial(t, addr)
	if _, err := c.PullAll(); !client.IsCode(err, wire.CodeProtocol) {
		t.Fatalf("orphan PULL = %v, want PROTOCOL", err)
	}
	// RUN while a result is streaming.
	holdSlot(t, c)
	if _, err := c.QueryText(`MATCH (p:Person) RETURN p.name`, nil); !client.IsCode(err, wire.CodeProtocol) {
		t.Fatalf("RUN-over-stream = %v, want PROTOCOL", err)
	}
	// RESET recovers the connection.
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryText(`MATCH (p:Person) RETURN p.name`, nil); err != nil {
		t.Fatalf("post-RESET RUN: %v", err)
	}
}

// TestConflictMapsToConflictCode provokes an MVTO write-write abort
// through the wire and expects the CONFLICT error code.
func TestConflictMapsToConflictCode(t *testing.T) {
	db, _, addr := startServer(t, Config{})
	tx := db.Begin()
	id, err := tx.CreateNode("Counter", map[string]any{"n": int64(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	a, b := dial(t, addr), dial(t, addr)
	upd := `MATCH (c:Counter) SET c.n = $v`
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.QueryText(upd, map[string]any{"v": int64(1)}); err != nil {
		t.Fatal(err)
	}
	_, errB := b.QueryText(upd, map[string]any{"v": int64(2)})
	errA := a.Commit()
	errBC := error(nil)
	if errB == nil {
		errBC = b.Commit()
	}
	conflicted := client.IsCode(errA, wire.CodeConflict) ||
		client.IsCode(errB, wire.CodeConflict) ||
		client.IsCode(errBC, wire.CodeConflict)
	if !conflicted {
		t.Fatalf("no CONFLICT surfaced: runA-commit=%v runB=%v commitB=%v (node %d)", errA, errB, errBC, id)
	}
}

// TestServerMetricsSurface checks the per-message latency histograms
// and gauges appear in DB.Metrics after traffic.
func TestServerMetricsSurface(t *testing.T) {
	db, _, addr := startServer(t, Config{})
	seedOne(t, db)
	c := dial(t, addr)
	if _, err := c.QueryText(`MATCH (p:Person) RETURN p.name`, nil); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Server == nil {
		t.Fatal("Metrics().Server missing")
	}
	for _, typ := range []string{"hello", "run", "pull"} {
		h, ok := m.Server.MsgLatency[typ]
		if !ok || h.Count == 0 {
			t.Errorf("no %s latency observations: %+v", typ, h)
		}
	}
}
