package cypher

import (
	"fmt"

	"poseidon/internal/core"
	"poseidon/internal/query"
)

// Compile translates a parsed statement into a graph-algebra plan. The
// planner picks an IndexScan for the first pattern node when a property
// equality matches an existing index (the paper's -i configurations),
// and falls back to a label scan plus filters otherwise.
func Compile(e *core.Engine, st *Stmt) (*query.Plan, error) {
	c := &compiler{e: e, env: map[string]int{}}
	return c.compile(st)
}

// Plan parses and compiles src in one step.
func Plan(e *core.Engine, src string) (*query.Plan, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(e, st)
}

type compiler struct {
	e    *core.Engine
	env  map[string]int // variable -> tuple column
	cols int            // current tuple width
}

func (c *compiler) bind(v string) {
	if v != "" {
		c.env[v] = c.cols
	}
}

func (c *compiler) col(v string) (int, error) {
	i, ok := c.env[v]
	if !ok {
		return 0, fmt.Errorf("cypher: unknown variable %q", v)
	}
	return i, nil
}

func litExpr(l Lit) query.Expr {
	switch l.Kind {
	case 'i':
		return &query.Const{Val: l.I}
	case 'f':
		return &query.Const{Val: l.F}
	case 's':
		return &query.Const{Val: l.S}
	case 'b':
		return &query.Const{Val: l.B}
	case 'p':
		return &query.Param{Name: l.S}
	default:
		return &query.Const{Val: nil}
	}
}

func (c *compiler) compile(st *Stmt) (*query.Plan, error) {
	var op query.Op

	if len(st.Match) > 0 {
		var err error
		op, err = c.compileMatch(st)
		if err != nil {
			return nil, err
		}
	}

	if st.Where != nil {
		pred, err := c.compileCond(st.Where)
		if err != nil {
			return nil, err
		}
		op = &query.Filter{Input: op, Pred: pred}
	}

	switch {
	case st.Return != nil:
		return c.compileReturn(op, st.Return)
	case st.Create != nil:
		return c.compileCreate(op, st.Create)
	case len(st.Set) > 0:
		return c.compileSet(op, st.Set)
	case len(st.Delete) > 0:
		return c.compileDelete(op, st.Delete)
	default:
		return nil, fmt.Errorf("cypher: statement has no action clause")
	}
}

// compileMatch builds the access path and traversal chain.
func (c *compiler) compileMatch(st *Stmt) (query.Op, error) {
	first := st.Match[0]
	op, err := c.accessPath(first)
	if err != nil {
		return nil, err
	}
	c.bind(first.Var)
	firstCol := c.cols
	c.cols++
	op = c.nodeResidualFilters(op, first, firstCol, true)

	prevCol := firstCol
	for i, rel := range st.Rels {
		// Expand from the previous node.
		var dir query.Dir
		var end query.End
		switch rel.Dir {
		case +1:
			dir, end = query.Out, query.Dst
		case -1:
			dir, end = query.In, query.Src
		default:
			dir, end = query.Both, query.Other
		}
		op = &query.Expand{Input: op, Col: prevCol, Dir: dir, RelLabel: rel.Label}
		relCol := c.cols
		c.cols++
		c.bind2(rel.Var, relCol)
		for _, pm := range rel.Props {
			op = &query.Filter{Input: op, Pred: &query.Cmp{
				Op: query.Eq, L: &query.Prop{Col: relCol, Key: pm.Key}, R: litExpr(pm.Val),
			}}
		}
		op = &query.GetNode{Input: op, RelCol: relCol, End: end, OtherCol: prevCol}
		node := st.Match[i+1]
		nodeCol := c.cols
		c.cols++
		c.bind2(node.Var, nodeCol)
		op = c.nodeResidualFilters(op, node, nodeCol, false)
		prevCol = nodeCol
	}

	// Extra comma-separated patterns: indexed lookups appended per tuple.
	for _, extra := range st.Extra {
		lookup, err := c.extraLookup(op, extra)
		if err != nil {
			return nil, err
		}
		op = lookup
		c.bind(extra.Var)
		extraCol := c.cols
		c.cols++
		op = c.nodeResidualFilters(op, extra, extraCol, true) // label/index handled inside
	}
	return op, nil
}

func (c *compiler) bind2(v string, col int) {
	if v != "" {
		c.env[v] = col
	}
}

// accessPath picks IndexScan or NodeScan for the first pattern node.
func (c *compiler) accessPath(n NodePattern) (query.Op, error) {
	if n.Label != "" {
		for _, pm := range n.Props {
			if _, ok := c.e.IndexFor(n.Label, pm.Key); ok {
				return &query.IndexScan{Label: n.Label, Key: pm.Key, Value: litExpr(pm.Val)}, nil
			}
		}
	}
	return &query.NodeScan{Label: n.Label}, nil
}

// nodeResidualFilters adds label and property-equality filters not
// already enforced by the access path.
func (c *compiler) nodeResidualFilters(op query.Op, n NodePattern, col int, viaAccess bool) query.Op {
	indexed := ""
	if viaAccess && n.Label != "" {
		for _, pm := range n.Props {
			if _, ok := c.e.IndexFor(n.Label, pm.Key); ok {
				indexed = pm.Key
				break
			}
		}
	}
	if !viaAccess && n.Label != "" {
		op = &query.Filter{Input: op, Pred: &query.HasLabel{Col: col, Label: n.Label}}
	}
	for _, pm := range n.Props {
		if pm.Key == indexed {
			continue // the access path already guarantees it
		}
		op = &query.Filter{Input: op, Pred: &query.Cmp{
			Op: query.Eq, L: &query.Prop{Col: col, Key: pm.Key}, R: litExpr(pm.Val),
		}}
	}
	return op
}

// extraLookup joins an additional single-node pattern via NodeLookup,
// which requires an index on one of its property equalities.
func (c *compiler) extraLookup(op query.Op, n NodePattern) (query.Op, error) {
	if n.Label == "" || len(n.Props) == 0 {
		return nil, fmt.Errorf("cypher: additional MATCH pattern (%s) needs a label and an indexed property (cartesian products are unsupported)", n.Var)
	}
	for _, pm := range n.Props {
		if _, ok := c.e.IndexFor(n.Label, pm.Key); ok {
			return &query.NodeLookup{Input: op, Label: n.Label, Key: pm.Key, Value: litExpr(pm.Val)}, nil
		}
	}
	return nil, fmt.Errorf("cypher: no index on (%s, %s); create one for multi-pattern MATCH", n.Label, n.Props[0].Key)
}

func (c *compiler) compileCond(cond Cond) (query.Expr, error) {
	switch x := cond.(type) {
	case *CmpCond:
		col, err := c.col(x.Var)
		if err != nil {
			return nil, err
		}
		var op query.CmpOp
		switch x.Op {
		case "=":
			op = query.Eq
		case "<>":
			op = query.Ne
		case "<":
			op = query.Lt
		case "<=":
			op = query.Le
		case ">":
			op = query.Gt
		case ">=":
			op = query.Ge
		}
		return &query.Cmp{Op: op, L: &query.Prop{Col: col, Key: x.Prop}, R: litExpr(x.Val)}, nil
	case *AndCond:
		l, err := c.compileCond(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileCond(x.R)
		if err != nil {
			return nil, err
		}
		return &query.And{L: l, R: r}, nil
	case *OrCond:
		l, err := c.compileCond(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileCond(x.R)
		if err != nil {
			return nil, err
		}
		return &query.Or{L: l, R: r}, nil
	case *NotCond:
		inner, err := c.compileCond(x.X)
		if err != nil {
			return nil, err
		}
		return &query.Not{X: inner}, nil
	default:
		return nil, fmt.Errorf("cypher: unsupported condition %T", cond)
	}
}

func (c *compiler) returnExpr(item ReturnItem) (query.Expr, error) {
	col, err := c.col(item.Var)
	if err != nil {
		return nil, err
	}
	if item.Prop == "" {
		return &query.IDOf{Col: col}, nil
	}
	return &query.Prop{Col: col, Key: item.Prop}, nil
}

func (c *compiler) compileReturn(op query.Op, r *ReturnClause) (*query.Plan, error) {
	if r.Count {
		return &query.Plan{Root: &query.CountAgg{Input: op}}, nil
	}
	if r.Distinct {
		if len(r.Items) != 1 {
			return nil, fmt.Errorf("cypher: DISTINCT supports exactly one return item")
		}
		key, err := c.returnExpr(r.Items[0])
		if err != nil {
			return nil, err
		}
		op = &query.Distinct{Input: op, Key: key}
	}
	if r.OrderBy != nil {
		key, err := c.returnExpr(*r.OrderBy)
		if err != nil {
			return nil, err
		}
		op = &query.OrderBy{Input: op, Key: key, Desc: r.Desc, Limit: r.Limit}
	} else if r.Limit > 0 {
		op = &query.Limit{Input: op, N: r.Limit}
	}
	cols := make([]query.Expr, len(r.Items))
	for i, item := range r.Items {
		ex, err := c.returnExpr(item)
		if err != nil {
			return nil, err
		}
		cols[i] = ex
	}
	return &query.Plan{Root: &query.Project{Input: op, Cols: cols}}, nil
}

func (c *compiler) compileCreate(op query.Op, cr *CreateClause) (*query.Plan, error) {
	for _, n := range cr.Nodes {
		specs := make([]query.PropSpec, len(n.Props))
		for i, pm := range n.Props {
			specs[i] = query.PropSpec{Key: pm.Key, Val: litExpr(pm.Val)}
		}
		op = &query.CreateNode{Input: op, Label: n.Label, Props: specs}
		c.bind(n.Var)
		c.cols++
	}
	for _, r := range cr.Rels {
		src, err := c.col(r.From)
		if err != nil {
			return nil, err
		}
		dst, err := c.col(r.To)
		if err != nil {
			return nil, err
		}
		specs := make([]query.PropSpec, len(r.Props))
		for i, pm := range r.Props {
			specs[i] = query.PropSpec{Key: pm.Key, Val: litExpr(pm.Val)}
		}
		op = &query.CreateRel{Input: op, SrcCol: src, DstCol: dst, Label: r.Label, Props: specs}
		c.cols++
	}
	return &query.Plan{Root: op}, nil
}

func (c *compiler) compileSet(op query.Op, items []SetItem) (*query.Plan, error) {
	// Group assignments by variable, preserving one SetProps per target.
	byVar := map[string][]query.PropSpec{}
	var order []string
	for _, it := range items {
		if _, seen := byVar[it.Var]; !seen {
			order = append(order, it.Var)
		}
		byVar[it.Var] = append(byVar[it.Var], query.PropSpec{Key: it.Prop, Val: litExpr(it.Val)})
	}
	for _, v := range order {
		col, err := c.col(v)
		if err != nil {
			return nil, err
		}
		op = &query.SetProps{Input: op, Col: col, Props: byVar[v]}
	}
	return &query.Plan{Root: op}, nil
}

func (c *compiler) compileDelete(op query.Op, vars []string) (*query.Plan, error) {
	for _, v := range vars {
		col, err := c.col(v)
		if err != nil {
			return nil, err
		}
		op = &query.Delete{Input: op, Col: col}
	}
	return &query.Plan{Root: op}, nil
}
