package cypher

import (
	"fmt"
	"strconv"
)

// AST for the supported Cypher subset.

// Stmt is a parsed statement.
type Stmt struct {
	Match  []NodePattern // node patterns connected by Rels
	Rels   []RelPattern  // Rels[i] connects Match[i] and Match[i+1]
	Extra  []NodePattern // additional comma-separated MATCH patterns (single nodes)
	Where  Cond
	Return *ReturnClause
	Create *CreateClause
	Set    []SetItem
	Delete []string // variables to DETACH DELETE
}

// NodePattern is (v:Label {k: value, ...}).
type NodePattern struct {
	Var   string
	Label string
	Props []PropMatch
}

// RelPattern is -[v:LABEL]-> / <-[...]- / -[...]-.
type RelPattern struct {
	Var   string
	Label string
	Dir   int // +1 right, -1 left, 0 undirected
	Props []PropMatch
}

// PropMatch is one {key: value} constraint.
type PropMatch struct {
	Key string
	Val Lit
}

// Lit is a literal or parameter value.
type Lit struct {
	Kind byte // 'i' int, 'f' float, 's' string, 'b' bool, 'p' param
	I    int64
	F    float64
	S    string // string value or param name
	B    bool
}

// Cond is a boolean condition tree.
type Cond interface{ cond() }

// CmpCond compares var.prop against a literal (or two props).
type CmpCond struct {
	Var  string
	Prop string
	Op   string // = <> < <= > >=
	Val  Lit
}

// AndCond is a conjunction of two conditions.
type AndCond struct{ L, R Cond }

// OrCond is a disjunction of two conditions.
type OrCond struct{ L, R Cond }

// NotCond negates a condition.
type NotCond struct{ X Cond }

func (*CmpCond) cond() {}
func (*AndCond) cond() {}
func (*OrCond) cond()  {}
func (*NotCond) cond() {}

// ReturnClause is RETURN items [ORDER BY item [DESC]] [LIMIT n].
type ReturnClause struct {
	Distinct bool
	Count    bool // RETURN COUNT(*)
	Items    []ReturnItem
	OrderBy  *ReturnItem
	Desc     bool
	Limit    int
}

// ReturnItem is var or var.prop.
type ReturnItem struct {
	Var  string
	Prop string // empty = the entity id
}

// CreateClause creates nodes and relationships; variables may reference
// matched nodes.
type CreateClause struct {
	Nodes []NodePattern // nodes to create (with fresh variables)
	Rels  []CreateRel
}

// CreateRel creates one relationship between two variables.
type CreateRel struct {
	From  string
	To    string
	Label string
	Props []PropMatch
}

// SetItem is SET var.prop = value.
type SetItem struct {
	Var  string
	Prop string
	Val  Lit
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atKeyword(k string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == k
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("cypher: position %d: expected %s, got %q", t.pos, what, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(k string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != k {
		return fmt.Errorf("cypher: position %d: expected %s, got %q", t.pos, k, t.text)
	}
	return nil
}

// Parse parses one statement.
func Parse(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st := &Stmt{}

	switch {
	case p.atKeyword("MATCH"):
		p.next()
		if err := p.parseMatch(st); err != nil {
			return nil, err
		}
	case p.atKeyword("CREATE"):
		// standalone CREATE
	default:
		return nil, fmt.Errorf("cypher: statement must start with MATCH or CREATE")
	}

	if p.atKeyword("WHERE") {
		p.next()
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		st.Where = c
	}

	switch {
	case p.atKeyword("RETURN"):
		p.next()
		r, err := p.parseReturn()
		if err != nil {
			return nil, err
		}
		st.Return = r
	case p.atKeyword("CREATE"):
		p.next()
		c, err := p.parseCreate(st)
		if err != nil {
			return nil, err
		}
		st.Create = c
	case p.atKeyword("SET"):
		p.next()
		if err := p.parseSet(st); err != nil {
			return nil, err
		}
	case p.atKeyword("DETACH"):
		p.next()
		if err := p.expectKeyword("DELETE"); err != nil {
			return nil, err
		}
		if err := p.parseDelete(st); err != nil {
			return nil, err
		}
	case p.atKeyword("DELETE"):
		p.next()
		if err := p.parseDelete(st); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cypher: position %d: expected RETURN, CREATE, SET or DELETE, got %q",
			p.peek().pos, p.peek().text)
	}

	if _, err := p.expect(tokEOF, "end of query"); err != nil {
		return nil, err
	}
	return st, nil
}

// parseMatch parses a pattern chain plus optional comma-separated single
// node patterns.
func (p *parser) parseMatch(st *Stmt) error {
	n, err := p.parseNodePattern()
	if err != nil {
		return err
	}
	st.Match = append(st.Match, n)
	for {
		switch p.peek().kind {
		case tokDash, tokArrowL:
			r, err := p.parseRelPattern()
			if err != nil {
				return err
			}
			n, err := p.parseNodePattern()
			if err != nil {
				return err
			}
			st.Rels = append(st.Rels, r)
			st.Match = append(st.Match, n)
		case tokComma:
			p.next()
			n, err := p.parseNodePattern()
			if err != nil {
				return err
			}
			st.Extra = append(st.Extra, n)
		default:
			return nil
		}
	}
}

func (p *parser) parseNodePattern() (NodePattern, error) {
	var n NodePattern
	if _, err := p.expect(tokLParen, "("); err != nil {
		return n, err
	}
	if p.peek().kind == tokIdent {
		n.Var = p.next().text
	}
	if p.peek().kind == tokColon {
		p.next()
		t, err := p.expect(tokIdent, "label")
		if err != nil {
			return n, err
		}
		n.Label = t.text
	}
	if p.peek().kind == tokLBrace {
		props, err := p.parseProps()
		if err != nil {
			return n, err
		}
		n.Props = props
	}
	_, err := p.expect(tokRParen, ")")
	return n, err
}

func (p *parser) parseRelPattern() (RelPattern, error) {
	var r RelPattern
	switch p.peek().kind {
	case tokArrowL: // <-[...]-
		p.next()
		r.Dir = -1
	case tokDash: // -[...]-> or -[...]-
		p.next()
		r.Dir = 0
	default:
		return r, fmt.Errorf("cypher: position %d: expected relationship pattern", p.peek().pos)
	}
	if p.peek().kind == tokLBrack {
		p.next()
		if p.peek().kind == tokIdent {
			r.Var = p.next().text
		}
		if p.peek().kind == tokColon {
			p.next()
			t, err := p.expect(tokIdent, "relationship label")
			if err != nil {
				return r, err
			}
			r.Label = t.text
		}
		if p.peek().kind == tokLBrace {
			props, err := p.parseProps()
			if err != nil {
				return r, err
			}
			r.Props = props
		}
		if _, err := p.expect(tokRBrack, "]"); err != nil {
			return r, err
		}
	}
	switch p.peek().kind {
	case tokArrowR:
		p.next()
		if r.Dir == -1 {
			return r, fmt.Errorf("cypher: relationship cannot point both ways")
		}
		r.Dir = +1
	case tokDash:
		p.next()
		// keep r.Dir: -1 for <-[..]- , 0 for -[..]-
	default:
		return r, fmt.Errorf("cypher: position %d: unterminated relationship pattern", p.peek().pos)
	}
	return r, nil
}

func (p *parser) parseProps() ([]PropMatch, error) {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	var props []PropMatch
	for {
		key, err := p.expect(tokIdent, "property key")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon, ":"); err != nil {
			return nil, err
		}
		lit, err := p.parseLit()
		if err != nil {
			return nil, err
		}
		props = append(props, PropMatch{Key: key.text, Val: lit})
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(tokRBrace, "}")
	return props, err
}

func (p *parser) parseLit() (Lit, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Lit{}, fmt.Errorf("cypher: position %d: bad integer %q", t.pos, t.text)
		}
		return Lit{Kind: 'i', I: v}, nil
	case tokFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Lit{}, fmt.Errorf("cypher: position %d: bad float %q", t.pos, t.text)
		}
		return Lit{Kind: 'f', F: v}, nil
	case tokString:
		return Lit{Kind: 's', S: t.text}, nil
	case tokParam:
		return Lit{Kind: 'p', S: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			return Lit{Kind: 'b', B: true}, nil
		case "FALSE":
			return Lit{Kind: 'b', B: false}, nil
		}
	}
	return Lit{}, fmt.Errorf("cypher: position %d: expected literal, got %q", t.pos, t.text)
}

// parseCond parses OR-separated AND-separated atoms.
func (p *parser) parseCond() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Cond, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		r, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		l = &AndCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAtom() (Cond, error) {
	if p.atKeyword("NOT") {
		p.next()
		x, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &NotCond{X: x}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return c, nil
	}
	v, err := p.expect(tokIdent, "variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot, "."); err != nil {
		return nil, err
	}
	prop, err := p.expect(tokIdent, "property")
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	var op string
	switch opTok.kind {
	case tokEq:
		op = "="
	case tokNe:
		op = "<>"
	case tokLt:
		op = "<"
	case tokLe:
		op = "<="
	case tokGt:
		op = ">"
	case tokGe:
		op = ">="
	default:
		return nil, fmt.Errorf("cypher: position %d: expected comparison, got %q", opTok.pos, opTok.text)
	}
	lit, err := p.parseLit()
	if err != nil {
		return nil, err
	}
	return &CmpCond{Var: v.text, Prop: prop.text, Op: op, Val: lit}, nil
}

func (p *parser) parseReturn() (*ReturnClause, error) {
	r := &ReturnClause{}
	if p.atKeyword("DISTINCT") {
		p.next()
		r.Distinct = true
	}
	if p.atKeyword("COUNT") {
		p.next()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokStar, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		r.Count = true
	} else {
		for {
			item, err := p.parseReturnItem()
			if err != nil {
				return nil, err
			}
			r.Items = append(r.Items, item)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		item, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		r.OrderBy = &item
		if p.atKeyword("DESC") {
			p.next()
			r.Desc = true
		} else if p.atKeyword("ASC") {
			p.next()
		}
	}
	if p.atKeyword("LIMIT") {
		p.next()
		t, err := p.expect(tokInt, "limit count")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("cypher: position %d: bad LIMIT %q", t.pos, t.text)
		}
		r.Limit = n
	}
	return r, nil
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	v, err := p.expect(tokIdent, "variable")
	if err != nil {
		return ReturnItem{}, err
	}
	item := ReturnItem{Var: v.text}
	if p.peek().kind == tokDot {
		p.next()
		prop, err := p.expect(tokIdent, "property")
		if err != nil {
			return ReturnItem{}, err
		}
		item.Prop = prop.text
	}
	return item, nil
}

// parseCreate parses CREATE patterns: nodes and/or relationships between
// (possibly matched) variables.
func (p *parser) parseCreate(st *Stmt) (*CreateClause, error) {
	c := &CreateClause{}
	for {
		n, err := p.parseNodePattern()
		if err != nil {
			return nil, err
		}
		created := false
		if n.Label != "" || len(n.Props) > 0 || !p.knownVar(st, c, n.Var) {
			c.Nodes = append(c.Nodes, n)
			created = true
		}
		_ = created
		// Optional relationship to a following node pattern.
		if p.peek().kind == tokDash || p.peek().kind == tokArrowL {
			r, err := p.parseRelPattern()
			if err != nil {
				return nil, err
			}
			if r.Dir == 0 {
				return nil, fmt.Errorf("cypher: CREATE relationships must be directed")
			}
			m, err := p.parseNodePattern()
			if err != nil {
				return nil, err
			}
			if m.Label != "" || len(m.Props) > 0 || !p.knownVar(st, c, m.Var) {
				c.Nodes = append(c.Nodes, m)
			}
			from, to := n.Var, m.Var
			if r.Dir == -1 {
				from, to = to, from
			}
			c.Rels = append(c.Rels, CreateRel{From: from, To: to, Label: r.Label, Props: r.Props})
		}
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	return c, nil
}

// knownVar reports whether v names a matched or already-created node.
func (p *parser) knownVar(st *Stmt, c *CreateClause, v string) bool {
	if v == "" {
		return false
	}
	for _, n := range st.Match {
		if n.Var == v {
			return true
		}
	}
	for _, n := range st.Extra {
		if n.Var == v {
			return true
		}
	}
	for _, n := range c.Nodes {
		if n.Var == v {
			return true
		}
	}
	return false
}

func (p *parser) parseSet(st *Stmt) error {
	for {
		v, err := p.expect(tokIdent, "variable")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot, "."); err != nil {
			return err
		}
		prop, err := p.expect(tokIdent, "property")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokEq, "="); err != nil {
			return err
		}
		lit, err := p.parseLit()
		if err != nil {
			return err
		}
		st.Set = append(st.Set, SetItem{Var: v.text, Prop: prop.text, Val: lit})
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseDelete(st *Stmt) error {
	for {
		v, err := p.expect(tokIdent, "variable")
		if err != nil {
			return err
		}
		st.Delete = append(st.Delete, v.text)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		return nil
	}
}
