package cypher

import (
	"sort"
	"strings"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/query"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{Mode: core.DRAM, PoolSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	bl := e.NewBulkLoader()
	people := map[string]uint64{}
	add := func(name string, age int64) {
		id, err := bl.AddNode("Person", map[string]any{"name": name, "age": age})
		if err != nil {
			t.Fatal(err)
		}
		people[name] = id
	}
	add("ada", 36)
	add("bob", 25)
	add("cleo", 41)
	add("dan", 29)
	bl.AddRel(people["ada"], people["bob"], "knows", map[string]any{"since": int64(2019)})
	bl.AddRel(people["ada"], people["cleo"], "knows", map[string]any{"since": int64(2021)})
	bl.AddRel(people["bob"], people["dan"], "knows", map[string]any{"since": int64(2020)})
	bl.AddRel(people["cleo"], people["ada"], "admires", nil)
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("Person", "name", index.Volatile); err != nil {
		t.Fatal(err)
	}
	return e
}

func run(t *testing.T, e *core.Engine, src string, params query.Params) [][]any {
	t.Helper()
	plan, err := Plan(e, src)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	pr, err := query.Prepare(e, plan)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	rows, err := pr.Collect(tx, params)
	if err != nil {
		tx.Abort()
		t.Fatalf("run %q: %v", src, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out := make([][]any, len(rows))
	for i, r := range rows {
		out[i] = make([]any, len(r))
		for k, v := range r {
			gv, err := e.DecodeValue(v)
			if err != nil {
				t.Fatal(err)
			}
			out[i][k] = gv
		}
	}
	return out
}

func names(rows [][]any) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r[0].(string))
	}
	sort.Strings(out)
	return out
}

func TestMatchReturnBasic(t *testing.T) {
	e := testEngine(t)
	rows := run(t, e, `MATCH (p:Person) RETURN p.name`, nil)
	if got := names(rows); strings.Join(got, ",") != "ada,bob,cleo,dan" {
		t.Errorf("names = %v", got)
	}
}

func TestMatchWithPropertyUsesIndex(t *testing.T) {
	e := testEngine(t)
	plan, err := Plan(e, `MATCH (p:Person {name: 'ada'}) RETURN p.age`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Signature(), "IndexScan") {
		t.Errorf("indexed property did not plan an IndexScan: %s", plan.Signature())
	}
	rows := run(t, e, `MATCH (p:Person {name: 'ada'}) RETURN p.age`, nil)
	if len(rows) != 1 || rows[0][0] != int64(36) {
		t.Errorf("rows = %v", rows)
	}
	// Non-indexed property: scan + filter, same answer.
	plan2, _ := Plan(e, `MATCH (p:Person {age: 36}) RETURN p.name`)
	if strings.Contains(plan2.Signature(), "IndexScan") {
		t.Errorf("non-indexed property planned an IndexScan")
	}
	rows = run(t, e, `MATCH (p:Person {age: 36}) RETURN p.name`, nil)
	if len(rows) != 1 || rows[0][0] != "ada" {
		t.Errorf("rows = %v", rows)
	}
}

func TestTraversalDirections(t *testing.T) {
	e := testEngine(t)
	out := run(t, e, `MATCH (p:Person {name: 'ada'})-[:knows]->(f) RETURN f.name`, nil)
	if got := names(out); strings.Join(got, ",") != "bob,cleo" {
		t.Errorf("out = %v", got)
	}
	in := run(t, e, `MATCH (p:Person {name: 'ada'})<-[:admires]-(f) RETURN f.name`, nil)
	if got := names(in); strings.Join(got, ",") != "cleo" {
		t.Errorf("in = %v", got)
	}
	both := run(t, e, `MATCH (p:Person {name: 'ada'})-[:knows]-(f) RETURN f.name`, nil)
	if got := names(both); strings.Join(got, ",") != "bob,cleo" {
		t.Errorf("both = %v", got)
	}
	twoHop := run(t, e, `MATCH (p:Person {name: 'ada'})-[:knows]->(f)-[:knows]->(ff) RETURN ff.name`, nil)
	if got := names(twoHop); strings.Join(got, ",") != "dan" {
		t.Errorf("two hop = %v", got)
	}
}

func TestWhereOrderLimitParams(t *testing.T) {
	e := testEngine(t)
	rows := run(t, e,
		`MATCH (p:Person) WHERE p.age > $min AND NOT p.name = 'cleo' RETURN p.name, p.age ORDER BY p.age DESC LIMIT 2`,
		query.Params{"min": int64(24)})
	if len(rows) != 2 || rows[0][0] != "ada" || rows[1][0] != "dan" {
		t.Errorf("rows = %v", rows)
	}
	// Relationship property in WHERE and RETURN.
	rows = run(t, e,
		`MATCH (p:Person {name: 'ada'})-[r:knows]->(f) WHERE r.since >= 2020 RETURN f.name, r.since`, nil)
	if len(rows) != 1 || rows[0][0] != "cleo" || rows[0][1] != int64(2021) {
		t.Errorf("rel filter rows = %v", rows)
	}
}

func TestCountAndDistinct(t *testing.T) {
	e := testEngine(t)
	rows := run(t, e, `MATCH (p:Person)-[:knows]->(f) RETURN COUNT(*)`, nil)
	if rows[0][0] != int64(3) {
		t.Errorf("count = %v", rows[0][0])
	}
	rows = run(t, e, `MATCH (p:Person)-[:knows]->(f) RETURN DISTINCT p.name`, nil)
	if len(rows) != 2 { // ada, bob have out-knows
		t.Errorf("distinct rows = %v", rows)
	}
}

func TestCreateStatements(t *testing.T) {
	e := testEngine(t)
	// Standalone node create.
	run(t, e, `CREATE (x:Person {name: 'eve', age: 33})`, nil)
	rows := run(t, e, `MATCH (p:Person {name: 'eve'}) RETURN p.age`, nil)
	if len(rows) != 1 || rows[0][0] != int64(33) {
		t.Errorf("created node = %v", rows)
	}
	// Create a relationship between matched nodes (the IU8 pattern).
	run(t, e, `MATCH (a:Person {name: 'eve'}), (b:Person {name: 'dan'}) CREATE (a)-[:knows {since: 2024}]->(b)`, nil)
	rows = run(t, e, `MATCH (a:Person {name: 'eve'})-[r:knows]->(b) RETURN b.name, r.since`, nil)
	if len(rows) != 1 || rows[0][0] != "dan" || rows[0][1] != int64(2024) {
		t.Errorf("created rel = %v", rows)
	}
	// Create two nodes and a relationship in one statement.
	run(t, e, `CREATE (m:Forum {title: 'general'})-[:hasModerator]->(n:Person {name: 'fay'})`, nil)
	rows = run(t, e, `MATCH (f:Forum)-[:hasModerator]->(m) RETURN m.name`, nil)
	if len(rows) != 1 || rows[0][0] != "fay" {
		t.Errorf("multi-create = %v", rows)
	}
}

func TestSetAndDelete(t *testing.T) {
	e := testEngine(t)
	run(t, e, `MATCH (p:Person {name: 'bob'}) SET p.age = $age, p.city = 'berlin'`, query.Params{"age": int64(26)})
	rows := run(t, e, `MATCH (p:Person {name: 'bob'}) RETURN p.age, p.city`, nil)
	if rows[0][0] != int64(26) || rows[0][1] != "berlin" {
		t.Errorf("set result = %v", rows)
	}
	before := e.NodeCount()
	run(t, e, `MATCH (p:Person {name: 'dan'}) DETACH DELETE p`, nil)
	if e.NodeCount() != before-1 {
		t.Errorf("node count after delete = %d", e.NodeCount())
	}
	rows = run(t, e, `MATCH (p:Person {name: 'dan'}) RETURN p`, nil)
	if len(rows) != 0 {
		t.Errorf("deleted person still matched: %v", rows)
	}
}

func TestCypherRunsUnderJITAndParallel(t *testing.T) {
	e := testEngine(t)
	// Compiled plans are ordinary algebra: they work on every mode.
	src := `MATCH (p:Person)-[r:knows]->(f) WHERE r.since > 2018 RETURN f.age ORDER BY f.age LIMIT 3`
	plan, err := Plan(e, src)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := query.Prepare(e, plan)
	tx := e.Begin()
	defer tx.Abort()
	want, err := pr.Collect(tx, nil)
	if err != nil {
		t.Fatal(err)
	}
	var par []query.Row
	if err := pr.RunParallel(tx, nil, 2, func(r query.Row) bool { par = append(par, r); return true }); err != nil {
		t.Fatal(err)
	}
	if len(par) != len(want) {
		t.Errorf("parallel rows = %d, want %d", len(par), len(want))
	}
}

func TestParseErrors(t *testing.T) {
	e := testEngine(t)
	cases := []string{
		``,
		`RETURN x`,
		`MATCH (p RETURN p`,
		`MATCH (p:Person) RETURN`,
		`MATCH (p:Person) WHERE p.age RETURN p`,
		`MATCH (p:Person) LIMIT 5`,
		`MATCH (a)-[r]->(b)<-[q]->(c) RETURN a`,
		`MATCH (p:Person) RETURN q.name`,
		`MATCH (p:Person {name: 'ada'}), (q:Person) RETURN q`, // cartesian
		`MATCH (p:Person) RETURN p.name LIMIT 0`,
		`CREATE (a)-[:x]-(b)`, // undirected create
		`MATCH (p:Person) SET q.age = 1`,
		`MATCH (p:Person) WHERE p.name = 'unterminated RETURN p`,
	}
	for _, src := range cases {
		if _, err := Plan(e, src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestLexerCoverage(t *testing.T) {
	toks, err := lex(`MATCH (a:L {k: 1.5, s: "x\"y", b: TRUE})-[r]->(b) WHERE a.x <= 2 AND a.y <> 3 OR a.z >= $p RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
	if _, err := lex(`MATCH (a) WHERE a.x = 'open`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex(`$`); err == nil {
		t.Error("empty parameter accepted")
	}
	if _, err := lex("a ~ b"); err == nil {
		t.Error("bad character accepted")
	}
}
