package cypher

import "testing"

// FuzzParse asserts the parser is total: any input either parses into a
// non-nil statement or returns an error — it must never panic and never
// return (nil, nil). The seed corpus covers the LDBC-style surface the
// engine's workloads exercise (match patterns, filters, aggregation,
// ordering, mutation clauses, parameters).
func FuzzParse(f *testing.F) {
	for _, src := range []string{
		``,
		`MATCH (p:Person) RETURN p.name`,
		`MATCH (p:Person {name: 'ada'}) RETURN p.age`,
		`MATCH (p:Person {id: $id}) RETURN p.firstName, p.lastName, p.birthday`,
		`MATCH (p:Person {name: 'ada'})-[:knows]->(f) RETURN f.name`,
		`MATCH (p:Person {name: 'ada'})<-[:hasCreator]-(m) RETURN m.id`,
		`MATCH (p:Person {name: 'ada'})-[:knows]-(f) RETURN f.name`,
		`MATCH (p:Person {name: 'ada'})-[:knows]->(f)-[:knows]->(ff) RETURN ff.name`,
		`MATCH (p:Person) WHERE p.age > $min AND NOT p.name = 'cleo' RETURN p.name, p.age ORDER BY p.age DESC LIMIT 2`,
		`MATCH (p:Person {name: 'ada'})-[r:knows]->(f) WHERE r.since >= 2020 RETURN f.name, r.since`,
		`MATCH (p:Person)-[:knows]->(f) RETURN COUNT(*)`,
		`MATCH (p:Person)-[:knows]->(f) RETURN DISTINCT p.name`,
		`CREATE (x:Person {name: 'eve', age: 33})`,
		`MATCH (a:Person {name: 'eve'}), (b:Person {name: 'dan'}) CREATE (a)-[:knows {since: 2024}]->(b)`,
		`CREATE (m:Forum {title: 'general'})-[:hasModerator]->(n:Person {name: 'fay'})`,
		`MATCH (p:Person {name: 'bob'}) SET p.age = $age, p.city = 'berlin'`,
		`MATCH (p:Person {name: 'dan'}) DETACH DELETE p`,
		`MATCH (p:Person) RETURN p`,
		// Near-miss inputs that must be rejected, not crash.
		`MATCH (p:Person RETURN p`,
		`MATCH (p)-[->(q) RETURN p`,
		`RETURN`,
		`MATCH (p:Person) WHERE RETURN p`,
		`CREATE (x:Person {name: })`,
		`MATCH (p:Person) RETURN p.name ORDER LIMIT`,
		"MATCH (p:`weird`) RETURN p",
		`match (p:Person) return p.name`,
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err == nil && st == nil {
			t.Fatalf("Parse(%q) = nil statement, nil error", src)
		}
	})
}
