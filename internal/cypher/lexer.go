// Package cypher implements the Cypher-like query language the paper's
// engine exposes (§1: "we support Cypher-like navigational queries").
// A practical subset is covered:
//
//	MATCH (a:Person {name: $n})-[r:knows]->(b)
//	WHERE b.age > 21 AND NOT b.name = 'x'
//	RETURN b.name, r.since ORDER BY r.since DESC LIMIT 10
//
//	CREATE (p:Person {name: 'ada', age: 30})
//	MATCH (a {id: $a}), (b {id: $b}) CREATE (a)-[:knows {since: 2024}]->(b)
//	MATCH (p:Person {id: $id}) SET p.age = $age
//	MATCH (p:Person {id: $id}) DETACH DELETE p
//
// Queries compile to the graph algebra of package query, so they run on
// every execution mode (interpreted, parallel, JIT, adaptive).
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokString
	tokInt
	tokFloat
	tokParam  // $name
	tokLParen // (
	tokRParen
	tokLBrace // {
	tokRBrace
	tokLBrack // [
	tokRBrack
	tokColon
	tokComma
	tokDot
	tokDash   // -
	tokArrowR // ->
	tokArrowL // <-
	tokEq     // =
	tokNe     // <>
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokStar   // *
)

var keywords = map[string]bool{
	"MATCH": true, "WHERE": true, "RETURN": true, "ORDER": true, "BY": true,
	"LIMIT": true, "DESC": true, "ASC": true, "AND": true, "OR": true,
	"NOT": true, "CREATE": true, "SET": true, "DELETE": true, "DETACH": true,
	"TRUE": true, "FALSE": true, "DISTINCT": true, "COUNT": true, "AS": true,
}

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexError reports a lexing problem with its byte position.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("cypher: position %d: %s", e.pos, e.msg)
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBrack, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBrack, "]", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '-':
			if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokArrowR, "->", i})
				i += 2
			} else {
				toks = append(toks, token{tokDash, "-", i})
				i++
			}
		case c == '<':
			switch {
			case i+1 < len(src) && src[i+1] == '-':
				toks = append(toks, token{tokArrowL, "<-", i})
				i += 2
			case i+1 < len(src) && src[i+1] == '=':
				toks = append(toks, token{tokLe, "<=", i})
				i += 2
			case i+1 < len(src) && src[i+1] == '>':
				toks = append(toks, token{tokNe, "<>", i})
				i += 2
			default:
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '$':
			start := i
			i++
			for i < len(src) && isIdentChar(rune(src[i])) {
				i++
			}
			if i == start+1 {
				return nil, &lexError{start, "empty parameter name after $"}
			}
			toks = append(toks, token{tokParam, src[start+1 : i], start})
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			for i < len(src) && src[i] != quote {
				if src[i] == '\\' && i+1 < len(src) {
					i++
				}
				sb.WriteByte(src[i])
				i++
			}
			if i >= len(src) {
				return nil, &lexError{start, "unterminated string literal"}
			}
			i++ // closing quote
			toks = append(toks, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				if src[i] == '.' {
					if i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
						isFloat = true
					} else {
						break
					}
				}
				i++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentChar(rune(src[i])) {
				i++
			}
			word := src[start:i]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(word), start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		default:
			return nil, &lexError{i, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
