package cypher

import (
	"fmt"
	"strings"
)

// Fingerprint returns a normalized cache key for a Cypher statement: the
// token stream re-joined with uniform whitespace and upper-cased
// keywords, so formatting and casing differences do not defeat the
// prepared-statement cache. Literals stay part of the key (they select
// different plans), while parameters contribute only their names, so one
// cached statement serves all bindings.
func Fingerprint(src string) (string, error) {
	toks, err := lex(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokString:
			// Quote strings so 'a b' cannot collide with two idents.
			fmt.Fprintf(&b, "%q", t.text)
		case tokParam:
			b.WriteByte('$')
			b.WriteString(t.text)
		default:
			b.WriteString(t.text)
		}
	}
	return b.String(), nil
}
