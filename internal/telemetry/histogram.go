package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram over non-negative integer
// observations (nanoseconds, walk lengths, row counts). Buckets are
// chosen at construction; observing is one bounded linear scan plus two
// atomic adds — no allocation, no lock. A nil *Histogram no-ops.
type Histogram struct {
	bounds []uint64        // inclusive upper bounds, ascending
	unit   float64         // exposition divisor (1e9: ns → s)
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Uint64   // sum of raw observations
}

func newHistogram(bounds []uint64, unit float64) *Histogram {
	sortedCheck(bounds)
	if unit == 0 {
		unit = 1
	}
	return &Histogram{
		bounds: bounds,
		unit:   unit,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value in raw units.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	// Linear scan: bucket counts are ~20 and the loop is branch-predictor
	// friendly; binary search costs more below ~64 buckets.
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration; the histogram's raw unit is
// nanoseconds by convention for latency metrics.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Nanoseconds()))
}

// Bucket is one cumulative histogram bucket in exposition units.
type Bucket struct {
	UpperBound float64 `json:"le"` // +Inf encoded as math.Inf(1)
	Count      uint64  `json:"count"`
}

// MarshalJSON encodes the +Inf bound as the string "+Inf" (JSON numbers
// cannot represent infinity; encoding/json would otherwise error out on
// every snapshot containing the overflow bucket).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		Le    any    `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON accepts both the numeric and the "+Inf" encodings.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    any    `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch le := raw.Le.(type) {
	case float64:
		b.UpperBound = le
	case string:
		if le != "+Inf" {
			return fmt.Errorf("telemetry: bucket bound %q", le)
		}
		b.UpperBound = math.Inf(1)
	default:
		return fmt.Errorf("telemetry: bucket bound %T", raw.Le)
	}
	b.Count = raw.Count
	return nil
}

// HistogramSnapshot is a plain-value copy of a histogram, in exposition
// units (seconds for latency histograms).
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the current state. Buckets are cumulative, matching
// the Prometheus exposition semantics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = float64(h.bounds[i]) / h.unit
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
	}
	s.Count = cum
	s.Sum = float64(h.sum.Load()) / h.unit
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the cumulative
// buckets with linear interpolation inside the target bucket — the same
// estimate Prometheus's histogram_quantile computes. Returns 0 for an
// empty histogram; the highest finite bound when the quantile lands in
// the +Inf bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			// Off the top: report the largest finite bound.
			if i > 0 {
				return s.Buckets[i-1].UpperBound
			}
			return 0
		}
		lower, prevCount := 0.0, uint64(0)
		if i > 0 {
			lower = s.Buckets[i-1].UpperBound
			prevCount = s.Buckets[i-1].Count
		}
		width := float64(b.Count - prevCount)
		if width == 0 {
			return b.UpperBound
		}
		return lower + (b.UpperBound-lower)*(rank-float64(prevCount))/width
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// writePrometheus renders the histogram's _bucket/_sum/_count series.
func (h *Histogram) writePrometheus(w *strings.Builder, name, labels string) {
	snap := h.Snapshot()
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	for _, b := range snap.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = fmt.Sprintf("%g", b.UpperBound)
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, le, b.Count)
	}
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, snap.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, snap.Count)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, snap.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
	}
}
