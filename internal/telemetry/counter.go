package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// counterShards spreads a hot counter over several cache lines so that
// morsel workers on different cores don't serialize on one word. Must be
// a power of two.
const counterShards = 16

// paddedUint64 occupies a full cache line, preventing false sharing
// between adjacent shards.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a sharded, monotonically increasing counter. The zero value
// is ready to use; a nil *Counter is the no-op handle a disabled engine
// holds (Add/Inc on nil return immediately: no allocation, no atomic).
type Counter struct {
	shards [counterShards]paddedUint64
}

// shardIndex picks a shard from the address of a stack variable. Stacks
// of concurrently running goroutines live at distinct addresses, so
// contending writers spread across shards, while a single goroutine in a
// loop keeps hitting the same (cached) shard. This is the classic
// "scalable statistics counter" trick without runtime internals.
func shardIndex() uint64 {
	var b byte
	return (uint64(uintptr(unsafe.Pointer(&b))) >> 9) & (counterShards - 1)
}

// Add increments the counter by n. Safe for concurrent use; no-op on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total. It sums the shards without
// a barrier: the result is "consistent enough" the way any concurrently
// updated statistic is.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a value that can move both ways (active sessions, in-flight
// queries). A nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
