// Package telemetry is the engine-wide measurement substrate: a
// low-overhead metrics core (sharded atomic counters, gauges and
// fixed-bucket histograms), per-query stage traces, a slow-query log and
// a Prometheus-text exposition endpoint.
//
// Every metric type has a true no-op path: the nil pointer. A disabled
// engine simply never constructs a Registry, every subsystem holds nil
// metric handles, and every operation on a nil handle is a single
// predictable branch — no allocation, no atomic write, no lock. This is
// what lets telemetry be compiled into every hot path (MVTO commit,
// morsel workers, the JIT) without a measurable cost when off.
//
// The package is deliberately dependency-free (stdlib only) and imported
// by the lowest layers (core, jit); it must never import them back.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metricKind is the Prometheus metric type of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// sample is one exposed time series: a metric name plus an optional
// label pair and a way to read its current value(s).
type sample struct {
	labels string // `reason="validation"` or "" — rendered inside {}
	value  func() float64
	hist   *Histogram // set for histogram samples instead of value
}

// family is one named metric family (HELP/TYPE emitted once, then every
// registered series of that name).
type family struct {
	name    string
	help    string
	kind    metricKind
	samples []sample
}

// Registry holds the engine's metric families in registration order and
// renders them in the Prometheus text exposition format. A nil *Registry
// is valid: every constructor returns a nil metric handle whose
// operations no-op.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Label is one constant key="value" pair attached to a series at
// registration time. Dynamic label values are deliberately unsupported:
// every series the engine exports is known at startup, which keeps the
// hot path allocation-free.
type Label struct {
	Key   string
	Value string
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return strings.Join(parts, ",")
}

// register appends a sample to the named family, creating the family on
// first use. Families are exposed in first-registration order.
func (r *Registry) register(name, help string, kind metricKind, s sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	f.samples = append(f.samples, s)
}

// Counter registers a sharded, monotonically increasing counter.
// Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, kindCounter, sample{
		labels: renderLabels(labels),
		value:  func() float64 { return float64(c.Value()) },
	})
	return c
}

// Gauge registers a gauge (a value that can go up and down).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, kindGauge, sample{
		labels: renderLabels(labels),
		value:  func() float64 { return float64(g.Value()) },
	})
	return g
}

// CounterFunc registers a counter series whose value is sampled from fn
// at scrape time. Used to re-export counters a subsystem already
// maintains (the pmem device stats, the statement cache) without double
// counting on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, sample{
		labels: renderLabels(labels),
		value:  func() float64 { return float64(fn()) },
	})
}

// GaugeFunc registers a gauge series sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, sample{labels: renderLabels(labels), value: fn})
}

// Histogram registers a fixed-bucket histogram. bounds are inclusive
// upper bounds in raw units (must be sorted ascending); unit divides raw
// values for exposition (1e9 turns nanoseconds into seconds).
func (r *Registry) Histogram(name, help string, bounds []uint64, unit float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(bounds, unit)
	r.register(name, help, kindHistogram, sample{labels: renderLabels(labels), hist: h})
	return h
}

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			if s.hist != nil {
				s.hist.writePrometheus(w, f.name, s.labels)
				continue
			}
			if s.labels != "" {
				fmt.Fprintf(w, "%s{%s} %s\n", f.name, s.labels, formatValue(s.value()))
			} else {
				fmt.Fprintf(w, "%s %s\n", f.name, formatValue(s.value()))
			}
		}
	}
}

// formatValue renders a float without the exponent noise %v produces for
// large integral counters.
func formatValue(v float64) string {
	if v == float64(uint64(v)) {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%g", v)
}

// LatencyBuckets returns exponential-ish latency bucket bounds in
// nanoseconds, from 10µs to 10s — wide enough for a point lookup on the
// simulated DRAM device and a cold multi-second analytical scan alike.
func LatencyBuckets() []uint64 {
	us := uint64(1_000)
	ms := 1_000 * us
	return []uint64{
		10 * us, 25 * us, 50 * us, 100 * us, 250 * us, 500 * us,
		1 * ms, 2*ms + 500*us, 5 * ms, 10 * ms, 25 * ms, 50 * ms, 100 * ms,
		250 * ms, 500 * ms, 1000 * ms, 2500 * ms, 5000 * ms, 10_000 * ms,
	}
}

// LengthBuckets returns power-of-two bucket bounds for small discrete
// quantities such as version-chain walk lengths.
func LengthBuckets(max uint64) []uint64 {
	var out []uint64
	for b := uint64(1); b <= max; b *= 2 {
		out = append(out, b)
	}
	return out
}

// sortedCheck verifies bounds are strictly ascending; it panics on a
// programming error rather than mis-bucketing silently.
func sortedCheck(bounds []uint64) {
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic("telemetry: histogram bounds must be sorted ascending")
	}
}
