package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format. Valid on a nil registry (serves an empty body),
// so callers don't need to special-case disabled telemetry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// DebugMux returns a mux with the metrics endpoint at /metrics and the
// standard pprof handlers under /debug/pprof/.
func (r *Registry) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	MountPprof(mux)
	return mux
}

// MountPprof wires the standard pprof handlers under /debug/pprof/ on
// mux. The routes are registered explicitly rather than via the
// net/http/pprof side-effect import so they land on this mux, not
// http.DefaultServeMux.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
