package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_len", "lengths", LengthBuckets(64), 1)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(uint64(w*perWorker+i) % 100)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", snap.Count, workers*perWorker)
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.Count != snap.Count {
		t.Fatalf("+Inf bucket %d != count %d", last.Count, snap.Count)
	}
	for i := 1; i < len(snap.Buckets); i++ {
		if snap.Buckets[i].Count < snap.Buckets[i-1].Count {
			t.Fatalf("buckets not cumulative at %d", i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]uint64{10, 100, 1000}, 1)
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in the first bucket
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("p50 = %v, want within (0,10]", q)
	}
	h.Observe(5000) // +Inf bucket
	snap = h.Snapshot()
	if q := snap.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 with +Inf tail = %v, want capped at 1000", q)
	}
}

func TestNilHandlesNoAllocs(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		l *SlowQueryLog
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(5)
		_ = c.Value()
		g.Add(1)
		g.Set(3)
		_ = g.Value()
		h.Observe(42)
		h.ObserveDuration(time.Millisecond)
		_ = l.MaybeRecord(QueryTrace{Total: time.Hour})
		_ = l.Entries()
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry handles allocated %v times per op", allocs)
	}
}

func TestNilRegistryConstructors(t *testing.T) {
	var r *Registry
	if c := r.Counter("x", "x"); c != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	if g := r.Gauge("x", "x"); g != nil {
		t.Fatal("nil registry must hand out nil gauges")
	}
	if h := r.Histogram("x", "x", LatencyBuckets(), 1e9); h != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	r.CounterFunc("x", "x", func() uint64 { return 1 })
	r.GaugeFunc("x", "x", func() float64 { return 1 })
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatal("nil registry must render nothing")
	}
}

func TestSlowQueryLogRing(t *testing.T) {
	l := NewSlowQueryLog(time.Millisecond, 3)
	if l.MaybeRecord(QueryTrace{Query: "fast", Total: time.Microsecond}) {
		t.Fatal("sub-threshold trace must not be recorded")
	}
	for i := 0; i < 5; i++ {
		rec := l.MaybeRecord(QueryTrace{Query: string(rune('a' + i)), Total: time.Second})
		if !rec {
			t.Fatalf("trace %d not recorded", i)
		}
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(got))
	}
	// Newest first: e, d, c.
	want := []string{"e", "d", "c"}
	for i, w := range want {
		if got[i].Query != w {
			t.Fatalf("entry %d = %q, want %q", i, got[i].Query, w)
		}
	}
	if l.Recorded() != 5 {
		t.Fatalf("recorded = %d, want 5", l.Recorded())
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_ops_total", "Total ops.")
	c.Add(7)
	byReason := r.Counter("app_fail_total", "Failures.", Label{"reason", "timeout"})
	byReason.Inc()
	r.Counter("app_fail_total", "Failures.", Label{"reason", "conflict"})
	g := r.Gauge("app_active", "Active things.")
	g.Set(3)
	h := r.Histogram("app_latency_seconds", "Latency.", []uint64{1000, 1_000_000}, 1e9)
	h.Observe(500)       // first bucket
	h.Observe(2_000_000) // +Inf

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP app_ops_total Total ops.\n",
		"# TYPE app_ops_total counter\n",
		"app_ops_total 7\n",
		`app_fail_total{reason="timeout"} 1`,
		`app_fail_total{reason="conflict"} 0`,
		"# TYPE app_active gauge\n",
		"app_active 3\n",
		"# TYPE app_latency_seconds histogram\n",
		`app_latency_seconds_bucket{le="1e-06"} 1`,
		`app_latency_seconds_bucket{le="+Inf"} 2`,
		"app_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per family even with two series.
	if strings.Count(out, "# TYPE app_fail_total counter") != 1 {
		t.Fatalf("TYPE emitted more than once per family:\n%s", out)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_ops_total", "ops").Add(2)
	srv := httptest.NewServer(r.DebugMux())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "h_ops_total 2") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}

	// pprof index must be mounted.
	resp2, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("pprof index status = %d", resp2.StatusCode)
	}
}
