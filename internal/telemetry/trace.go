package telemetry

import (
	"sync"
	"time"
)

// QueryTrace is the per-query stage breakdown the slow-query log stores:
// where the time went (parse/plan, compile, execute), how much data moved
// (rows, PMem accesses) and which execution mode served it.
type QueryTrace struct {
	Query      string        `json:"query,omitempty"`      // Cypher text or plan signature
	TraceID    string        `json:"trace_id,omitempty"`   // request-trace link (/debug/traces?id=...), "" when tracing is off
	Mode       string        `json:"mode"`                 // interpret | parallel | jit | adaptive
	Start      time.Time     `json:"start"`                // wall-clock start of execution
	Total      time.Duration `json:"total"`                // end-to-end latency
	Parse      time.Duration `json:"parse,omitempty"`      // parse + plan (0 when served from stmt cache)
	Compile    time.Duration `json:"compile,omitempty"`    // JIT compile time (0 on code-cache hit)
	Execute    time.Duration `json:"execute"`              // operator execution
	FromCache  bool          `json:"from_cache,omitempty"` // compiled task came from the code cache
	Rows       int64         `json:"rows"`                 // rows emitted to the client
	PMemReads  uint64        `json:"pmem_reads"`           // device reads attributed to this query
	PMemWrites uint64        `json:"pmem_writes"`          // device writes attributed to this query
	Err        string        `json:"err,omitempty"`        // non-nil execution error
}

// SlowQueryLog is a fixed-size ring of the most recent queries whose
// total latency crossed the threshold. A nil *SlowQueryLog no-ops, which
// is the disabled-telemetry path.
type SlowQueryLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []QueryTrace
	next      int
	filled    bool
	recorded  uint64
}

// NewSlowQueryLog creates a log keeping the last size entries over
// threshold. size <= 0 defaults to 64; threshold <= 0 records nothing.
func NewSlowQueryLog(threshold time.Duration, size int) *SlowQueryLog {
	if size <= 0 {
		size = 64
	}
	return &SlowQueryLog{threshold: threshold, ring: make([]QueryTrace, size)}
}

// Threshold returns the configured slow-query threshold.
func (l *SlowQueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// MaybeRecord stores the trace if it crosses the threshold. Returns true
// when the trace was recorded so the caller can bump its slow-query
// counter without re-checking the threshold.
func (l *SlowQueryLog) MaybeRecord(t QueryTrace) bool {
	if l == nil || l.threshold <= 0 || t.Total < l.threshold {
		return false
	}
	l.mu.Lock()
	l.ring[l.next] = t
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.filled = true
	}
	l.recorded++
	l.mu.Unlock()
	return true
}

// Recorded returns the total number of traces ever recorded (not capped
// by the ring size).
func (l *SlowQueryLog) Recorded() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recorded
}

// Entries returns the retained traces, newest first.
func (l *SlowQueryLog) Entries() []QueryTrace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.ring)
	}
	out := make([]QueryTrace, 0, n)
	// Walk backwards from the most recently written slot.
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}
