// Package trace is the request-tracing subsystem: spans that follow one
// statement from the client driver over the wire, through admission,
// session dispatch, interpreter/JIT execution, per-shard commit locks,
// and pmem flush batches. Like internal/telemetry it is stdlib-only and
// nil-safe: every method on a nil *Tracer or nil *Span is a no-op, so
// instrumented code never branches on "is tracing enabled" — it just
// calls through a possibly-nil handle. Completed traces land in a
// fixed-size tail-sampling ring (errored and slow traces are always
// kept, the rest are sampled probabilistically) from which they can be
// exported as Chrome trace-event JSON.
package trace

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a span by the layer that produced it. The set is the
// span taxonomy documented in DESIGN.md; CI's trace-smoke asserts a
// complete write path covers wire→commit→pmem.
type Kind string

const (
	KindClient    Kind = "client"    // poseidon/client request round trip
	KindWire      Kind = "wire"      // server-side request handling
	KindAdmission Kind = "admission" // bounded in-flight admission wait
	KindSession   Kind = "session"   // Session/Stmt dispatch
	KindExec      Kind = "exec"      // interpreter / parallel morsel execution
	KindJIT       Kind = "jit"       // compilation and adaptive tier switch
	KindCommit    Kind = "commit"    // core MVTO begin/commit
	KindPMem      Kind = "pmem"      // flush/fence batches during persist
)

// SpanContext is the propagated identity of a span: what travels over
// the wire as the optional HELLO/RUN trace metadata entry.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// Attr is one key/value annotation on a span. Values are kept as any
// but should be int64/uint64/float64/string/bool so they JSON-export
// cleanly.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanData is the immutable record of a finished span inside a Trace.
type SpanData struct {
	ID       uint64        `json:"id"`
	Parent   uint64        `json:"parent"`
	Name     string        `json:"name"`
	Kind     Kind          `json:"kind"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// Trace is one finished request: the root span plus every child that
// ended before the root, in end order (root last).
type Trace struct {
	ID           uint64        `json:"id"`
	RemoteParent uint64        `json:"remote_parent,omitempty"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration_ns"`
	Err          string        `json:"err,omitempty"`
	// Pinned means the trace was retained unconditionally by tail
	// sampling (it errored or crossed the slow threshold) and may not
	// be evicted by a merely-sampled trace.
	Pinned bool       `json:"pinned"`
	Spans  []SpanData `json:"spans"`
}

// Root returns the root span's data (the last span to end), or a zero
// SpanData for a malformed trace.
func (t *Trace) Root() SpanData {
	if t == nil || len(t.Spans) == 0 {
		return SpanData{}
	}
	return t.Spans[len(t.Spans)-1]
}

// Kinds returns the distinct span kinds present, in first-seen order.
func (t *Trace) Kinds() []Kind {
	if t == nil {
		return nil
	}
	var out []Kind
	seen := map[Kind]bool{}
	for i := range t.Spans {
		if k := t.Spans[i].Kind; !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Config sizes a Tracer. Zero values pick the documented defaults.
type Config struct {
	// RingSize caps the number of retained traces (default 256).
	RingSize int
	// SampleRate is the probability an unremarkable (no error, not
	// slow) trace is kept; default 0.1. Errored and slow traces are
	// always kept — sampling is applied at trace end ("tail"), when
	// the outcome is known.
	SampleRate float64
	// SlowThreshold pins traces at least this slow (default 25ms).
	SlowThreshold time.Duration
}

// Tracer creates spans and retains finished traces. A nil *Tracer is
// the disabled state: Start returns a nil span and every downstream
// call no-ops.
type Tracer struct {
	ring          *ring
	sampleRate    float64
	slowThreshold time.Duration
	rng           atomic.Uint64

	started atomic.Uint64 // traces started
	kept    atomic.Uint64 // traces retained in the ring
	sampled atomic.Uint64 // unremarkable traces dropped by sampling
	dropped atomic.Uint64 // traces dropped because the ring was all-pinned
}

// New builds an enabled Tracer. Pass the result around as *Tracer; a
// nil handle disables tracing with no other code change.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 0.1
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 25 * time.Millisecond
	}
	t := &Tracer{
		ring:          newRing(cfg.RingSize),
		sampleRate:    cfg.SampleRate,
		slowThreshold: cfg.SlowThreshold,
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// splitmix64 steps the tracer's ID/sampling stream. Statistical
// quality, not secrecy, is what trace IDs need.
func (t *Tracer) next() uint64 {
	for {
		old := t.rng.Load()
		z := old + 0x9e3779b97f4a7c15
		if !t.rng.CompareAndSwap(old, z) {
			continue
		}
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4b91f
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

func (t *Tracer) newID() uint64 {
	for {
		if id := t.next(); id != 0 {
			return id
		}
	}
}

// activeTrace accumulates the spans of one in-flight trace.
type activeTrace struct {
	tracer *Tracer
	id     uint64
	remote uint64 // client-side parent span id, 0 when the root is local
	root   *Span
	sink   func(*Trace)

	mu     sync.Mutex
	spans  []SpanData
	sealed bool
}

// Start begins a new local root span and returns a context carrying it.
// On a nil tracer it returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string, kind Kind) (context.Context, *Span) {
	return t.StartRemote(ctx, SpanContext{}, name, kind)
}

// StartRemote begins a root span that continues a trace started by a
// remote peer (the client driver): the trace keeps the propagated
// TraceID and the root span records the remote span as its parent.
// A zero SpanContext degrades to Start.
func (t *Tracer) StartRemote(ctx context.Context, sc SpanContext, name string, kind Kind) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	t.started.Add(1)
	id := sc.TraceID
	if id == 0 {
		id = t.newID()
	}
	at := &activeTrace{tracer: t, id: id, remote: sc.SpanID, sink: sinkFromContext(ctx)}
	s := &Span{
		at:     at,
		id:     t.newID(),
		parent: sc.SpanID,
		name:   name,
		kind:   kind,
		start:  time.Now(),
	}
	at.root = s
	return ContextWithSpan(ctx, s), s
}

// Span is one in-flight timed region. All methods are nil-safe; a span
// may be annotated from the goroutine that created it (spans are not
// internally shared across goroutines — create a Child per worker).
type Span struct {
	at     *activeTrace
	id     uint64
	parent uint64
	name   string
	kind   Kind
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	err   string
	ended bool
}

// Child starts a sub-span. Returns nil on a nil receiver, so deep
// layers can instrument unconditionally.
func (s *Span) Child(name string, kind Kind) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		at:     s.at,
		id:     s.at.tracer.newID(),
		parent: s.id,
		name:   name,
		kind:   kind,
		start:  time.Now(),
	}
}

// Context returns the span's wire identity (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.at.id, SpanID: s.id}
}

// TraceID returns the owning trace's ID, 0 on nil.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.at.id
}

// SetAttr attaches one key/value annotation.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetError marks the span (and therefore its trace) failed. A nil err
// is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// End finishes the span. Ending the root span seals the trace: the
// finish sink (if any) fires and tail sampling decides retention.
// Double-End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Kind:     s.kind,
		Start:    s.start,
		Duration: now.Sub(s.start),
		Attrs:    s.attrs,
		Err:      s.err,
	}
	s.mu.Unlock()

	at := s.at
	at.mu.Lock()
	if at.sealed {
		at.mu.Unlock()
		return
	}
	at.spans = append(at.spans, sd)
	if s != at.root {
		at.mu.Unlock()
		return
	}
	at.sealed = true
	spans := at.spans
	at.mu.Unlock()
	// A failure anywhere in the tree fails (and pins) the trace, even
	// when the root itself returned cleanly.
	errStr := sd.Err
	for i := 0; errStr == "" && i < len(spans); i++ {
		errStr = spans[i].Err
	}
	at.tracer.finish(&Trace{
		ID:           at.id,
		RemoteParent: at.remote,
		Start:        sd.Start,
		Duration:     sd.Duration,
		Err:          errStr,
		Spans:        spans,
	}, at.sink)
}

// finish applies tail sampling and offers the trace to the ring.
func (t *Tracer) finish(tr *Trace, sink func(*Trace)) {
	tr.Pinned = tr.Err != "" || tr.Duration >= t.slowThreshold
	if sink != nil {
		sink(tr)
	}
	if !tr.Pinned {
		// splitmix output is uniform over uint64; compare against the
		// rate scaled into that range.
		if float64(t.next()) >= t.sampleRate*float64(1<<63)*2 {
			t.sampled.Add(1)
			return
		}
	}
	if t.ring.insert(tr) {
		t.kept.Add(1)
	} else {
		t.dropped.Add(1)
	}
}

// Traces returns retained traces, most recent last.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Trace returns the retained trace with the given ID, or nil.
func (t *Tracer) Trace(id uint64) *Trace {
	if t == nil {
		return nil
	}
	for _, tr := range t.ring.snapshot() {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// Stats reports lifetime counters: traces started, kept in the ring,
// dropped by probabilistic sampling, and dropped because the ring was
// full of pinned traces.
func (t *Tracer) Stats() (started, kept, sampledOut, dropped uint64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.started.Load(), t.kept.Load(), t.sampled.Load(), t.dropped.Load()
}

// FormatID renders a trace/span ID the way tools print and accept it.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses FormatID output (with or without leading zeros).
func ParseID(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace id %q: %w", s, err)
	}
	return v, nil
}

type ctxKey struct{}
type sinkKey struct{}

// ContextWithSpan returns a context carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's span, or nil. This is the only
// cost tracing adds to a disabled hot path: one context lookup miss.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan begins a child of the context's span, returning a context
// carrying the child. With no span in ctx it returns (ctx, nil).
func StartSpan(ctx context.Context, name string, kind Kind) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name, kind)
	return ContextWithSpan(ctx, child), child
}

// WithFinishSink returns a context that makes any trace *rooted* under
// it deliver its finished *Trace to fn (before sampling, so the sink
// always sees the trace). Sessions use this to expose the last
// statement's profile.
func WithFinishSink(ctx context.Context, fn func(*Trace)) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, fn)
}

func sinkFromContext(ctx context.Context) func(*Trace) {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(sinkKey{}).(func(*Trace))
	return fn
}
