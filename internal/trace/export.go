package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// chromeEvent is one Chrome trace-event ("X" = complete event). Load
// the exported JSON in chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  uint64         `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	DisplayUnit string         `json:"displayTimeUnit"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// kindLane maps each span kind to a stable Chrome "thread" row so the
// layers stack top-to-bottom in request order.
var kindLane = map[Kind]int{
	KindClient:    0,
	KindWire:      1,
	KindAdmission: 2,
	KindSession:   3,
	KindExec:      4,
	KindJIT:       5,
	KindCommit:    6,
	KindPMem:      7,
}

// ChromeJSON renders traces in Chrome trace-event format. Each trace
// becomes one "process" (pid = low 32 bits of the trace ID) and each
// span kind one "thread" row within it.
func ChromeJSON(traces []*Trace) ([]byte, error) {
	var events []chromeEvent
	var base time.Time
	for _, tr := range traces {
		if base.IsZero() || tr.Start.Before(base) {
			base = tr.Start
		}
	}
	for _, tr := range traces {
		pid := tr.ID & 0xffffffff
		for i := range tr.Spans {
			sp := &tr.Spans[i]
			lane, ok := kindLane[sp.Kind]
			if !ok {
				lane = len(kindLane)
			}
			args := map[string]any{
				"trace_id": FormatID(tr.ID),
				"span_id":  FormatID(sp.ID),
				"parent":   FormatID(sp.Parent),
			}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			if sp.Err != "" {
				args["error"] = sp.Err
			}
			events = append(events, chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   float64(sp.Start.Sub(base)) / float64(time.Microsecond),
				Dur:  float64(sp.Duration) / float64(time.Microsecond),
				Pid:  pid,
				Tid:  lane,
				Cat:  string(sp.Kind),
				Args: args,
			})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	return json.Marshal(chromeFile{
		TraceEvents: events,
		DisplayUnit: "ms",
		Metadata:    map[string]any{"generator": "poseidon /debug/traces"},
	})
}

// Summary is the /debug/traces listing entry for one retained trace.
type Summary struct {
	ID         string   `json:"id"`
	Root       string   `json:"root"`
	Start      string   `json:"start"`
	DurationMS float64  `json:"duration_ms"`
	Spans      int      `json:"spans"`
	Kinds      []string `json:"kinds"`
	Err        string   `json:"err,omitempty"`
	Pinned     bool     `json:"pinned"`
}

// Summarize builds the listing entry for a trace.
func Summarize(tr *Trace) Summary {
	kinds := tr.Kinds()
	ks := make([]string, len(kinds))
	for i, k := range kinds {
		ks[i] = string(k)
	}
	return Summary{
		ID:         FormatID(tr.ID),
		Root:       tr.Root().Name,
		Start:      tr.Start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(tr.Duration) / float64(time.Millisecond),
		Spans:      len(tr.Spans),
		Kinds:      ks,
		Err:        tr.Err,
		Pinned:     tr.Pinned,
	}
}

// Handler serves the /debug/traces endpoint:
//
//	GET /debug/traces            → JSON summaries of retained traces
//	GET /debug/traces?id=<hex>   → that trace, Chrome trace-event JSON
//	GET /debug/traces?format=chrome → all retained traces, Chrome JSON
//
// With a nil tracer every request answers 503, mirroring the metrics
// endpoint's disabled behaviour.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusServiceUnavailable)
			return
		}
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := ParseID(idStr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			tr := t.Trace(id)
			if tr == nil {
				http.Error(w, "trace not retained (evicted or sampled out)", http.StatusNotFound)
				return
			}
			writeChrome(w, []*Trace{tr})
			return
		}
		traces := t.Traces()
		if req.URL.Query().Get("format") == "chrome" {
			writeChrome(w, traces)
			return
		}
		started, kept, sampledOut, dropped := t.Stats()
		sums := make([]Summary, len(traces))
		for i, tr := range traces {
			sums[i] = Summarize(tr)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"traces":      sums,
			"started":     started,
			"kept":        kept,
			"sampled_out": sampledOut,
			"dropped":     dropped,
		})
	})
}

func writeChrome(w http.ResponseWriter, traces []*Trace) {
	buf, err := ChromeJSON(traces)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="poseidon-trace.json"`)
	_, _ = w.Write(buf)
}
