package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// finishOne runs a tiny root+child trace through tr and returns it via
// a finish sink (which sees the trace even if sampling drops it).
func finishOne(t *testing.T, tr *Tracer, fail error) *Trace {
	t.Helper()
	var got *Trace
	ctx := WithFinishSink(context.Background(), func(x *Trace) { got = x })
	ctx, root := tr.Start(ctx, "root", KindSession)
	_, child := StartSpan(ctx, "child", KindExec)
	child.SetAttr("rows", int64(3))
	child.End()
	root.SetError(fail)
	root.End()
	if got == nil {
		t.Fatal("finish sink did not fire")
	}
	return got
}

func TestSpanTreeAndSink(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	got := finishOne(t, tr, nil)
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(got.Spans))
	}
	root := got.Root()
	if root.Name != "root" || root.Kind != KindSession {
		t.Fatalf("root = %+v", root)
	}
	child := got.Spans[0]
	if child.Parent != root.ID {
		t.Fatalf("child parent %x != root id %x", child.Parent, root.ID)
	}
	if child.Attrs[0].Key != "rows" || child.Attrs[0].Value.(int64) != 3 {
		t.Fatalf("child attrs = %v", child.Attrs)
	}
	if got.ID == 0 || got.Err != "" || got.Duration < 0 {
		t.Fatalf("trace = %+v", got)
	}
	if kinds := got.Kinds(); len(kinds) != 2 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestRemoteParentPropagation(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	sc := SpanContext{TraceID: 0xabc, SpanID: 0xdef}
	_, root := tr.StartRemote(context.Background(), sc, "server.run", KindWire)
	if got := root.TraceID(); got != 0xabc {
		t.Fatalf("trace id = %x, want abc", got)
	}
	root.End()
	rt := tr.Trace(0xabc)
	if rt == nil {
		t.Fatal("remote-parented trace not retained")
	}
	if rt.RemoteParent != 0xdef || rt.Root().Parent != 0xdef {
		t.Fatalf("remote parent not recorded: %+v", rt)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x", KindClient)
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	ctx2, s2 := tr.StartRemote(ctx, SpanContext{TraceID: 1}, "y", KindWire)
	if s2 != nil || ctx2 != ctx {
		t.Fatal("nil tracer StartRemote misbehaved")
	}
	// Every span method must no-op on nil.
	var sp *Span
	sp.SetAttr("k", 1)
	sp.SetError(errors.New("boom"))
	sp.End()
	if c := sp.Child("c", KindExec); c != nil {
		t.Fatal("nil span produced a child")
	}
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span has a valid context")
	}
	if tr.Traces() != nil || tr.Trace(1) != nil {
		t.Fatal("nil tracer returned traces")
	}
	if _, sp3 := StartSpan(context.Background(), "z", KindExec); sp3 != nil {
		t.Fatal("StartSpan on a bare context produced a span")
	}
}

func TestTailSamplingKeepsErroredAndSlow(t *testing.T) {
	tr := New(Config{SampleRate: 0.0001, SlowThreshold: time.Hour})
	// Errored: always kept, despite the ~0 sample rate.
	got := finishOne(t, tr, errors.New("conflict"))
	if !got.Pinned {
		t.Fatal("errored trace not pinned")
	}
	if tr.Trace(got.ID) == nil {
		t.Fatal("errored trace not retained")
	}
	// Slow: always kept.
	tr2 := New(Config{SampleRate: 0.0001, SlowThreshold: time.Nanosecond})
	got2 := finishOne(t, tr2, nil)
	if !got2.Pinned || tr2.Trace(got2.ID) == nil {
		t.Fatal("slow trace not pinned/retained")
	}
	// Unremarkable traces at rate ~0 are sampled out.
	tr3 := New(Config{SampleRate: 0.0001, SlowThreshold: time.Hour})
	for i := 0; i < 50; i++ {
		finishOne(t, tr3, nil)
	}
	_, kept, sampledOut, _ := tr3.Stats()
	if sampledOut < 45 {
		t.Fatalf("sampled_out = %d, want most of 50 (kept %d)", sampledOut, kept)
	}
}

func TestRingSampledNeverEvictsPinned(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 4; i++ {
		if !r.insert(&Trace{ID: uint64(i + 1), Pinned: true, Err: "x"}) {
			t.Fatal("pinned insert into non-full ring failed")
		}
	}
	// A sampled trace must be dropped, not evict a pinned one.
	if r.insert(&Trace{ID: 100}) {
		t.Fatal("sampled trace evicted a pinned one")
	}
	for _, e := range r.snapshot() {
		if !e.Pinned {
			t.Fatal("unpinned entry appeared in an all-pinned ring")
		}
	}
	// A newer pinned trace evicts the oldest pinned.
	if !r.insert(&Trace{ID: 200, Pinned: true}) {
		t.Fatal("pinned insert into all-pinned ring failed")
	}
	snap := r.snapshot()
	if snap[0].ID != 2 || snap[len(snap)-1].ID != 200 {
		t.Fatalf("unexpected eviction order: first=%d last=%d", snap[0].ID, snap[len(snap)-1].ID)
	}
}

func TestRingPinnedEvictsOldestSampledFirst(t *testing.T) {
	r := newRing(3)
	r.insert(&Trace{ID: 1})
	r.insert(&Trace{ID: 2, Pinned: true})
	r.insert(&Trace{ID: 3})
	r.insert(&Trace{ID: 4, Pinned: true}) // should evict ID 1 (oldest sampled)
	ids := map[uint64]bool{}
	for _, e := range r.snapshot() {
		ids[e.ID] = true
	}
	if ids[1] || !ids[2] || !ids[3] || !ids[4] {
		t.Fatalf("eviction picked wrong victim: %v", ids)
	}
	// Sampled insert evicts the remaining sampled entry (ID 3).
	r.insert(&Trace{ID: 5})
	ids = map[uint64]bool{}
	for _, e := range r.snapshot() {
		ids[e.ID] = true
	}
	if ids[3] || !ids[5] || !ids[2] || !ids[4] {
		t.Fatalf("sampled insert evicted wrong victim: %v", ids)
	}
}

func TestChromeExportAndHandler(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	got := finishOne(t, tr, nil)

	buf, err := ChromeJSON(tr.Traces())
	if err != nil {
		t.Fatal(err)
	}
	var cf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &cf); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	if len(cf.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(cf.TraceEvents))
	}
	for _, ev := range cf.TraceEvents {
		if ev.Ph != "X" || ev.Args["trace_id"] != FormatID(got.ID) {
			t.Fatalf("bad event %+v", ev)
		}
	}

	// Handler: summary list, then single-trace chrome export.
	h := Handler(tr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list struct {
		Traces []Summary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].ID != FormatID(got.ID) {
		t.Fatalf("listing = %+v", list)
	}
	// Spans land in end order, so the child's kind lists first.
	if want := []string{"exec", "session"}; fmt.Sprint(list.Traces[0].Kinds) != fmt.Sprint(want) {
		t.Fatalf("kinds = %v, want %v", list.Traces[0].Kinds, want)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+FormatID(got.ID), nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"traceEvents"`) {
		t.Fatalf("single-trace export: code %d body %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad id: code %d", rec.Code)
	}

	// Disabled handler answers 503 like the metrics endpoint.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 503 {
		t.Fatalf("nil-tracer handler: code %d, want 503", rec.Code)
	}
}

func TestBuildProfile(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	var got *Trace
	ctx := WithFinishSink(context.Background(), func(x *Trace) { got = x })
	ctx, root := tr.Start(ctx, "stmt", KindSession)
	root.SetAttr("query", "MATCH (n) RETURN n")
	for i := 0; i < 3; i++ {
		_, w := StartSpan(ctx, "query.worker", KindExec)
		w.SetAttr("morsels", int64(2))
		w.End()
	}
	_, c := StartSpan(ctx, "core.commit", KindCommit)
	c.End()
	root.End()

	p := BuildProfile(got)
	if p == nil || p.Root != "stmt" {
		t.Fatalf("profile = %+v", p)
	}
	if len(p.Stages) != 2 {
		t.Fatalf("stages = %+v", p.Stages)
	}
	w := p.Stages[0]
	if w.Name != "query.worker" || w.Count != 3 {
		t.Fatalf("worker stage = %+v", w)
	}
	if w.Attrs[0].Key != "morsels" || w.Attrs[0].Value.(int64) != 6 {
		t.Fatalf("morsels not summed: %+v", w.Attrs)
	}
	if p.Attrs[0].Key != "query" {
		t.Fatalf("root attrs missing: %+v", p.Attrs)
	}
	if s := p.Format(); !strings.Contains(s, "query.worker") || !strings.Contains(s, "morsels=6") {
		t.Fatalf("Format() = %q", s)
	}
	if BuildProfile(nil) != nil {
		t.Fatal("BuildProfile(nil) != nil")
	}
	var nilP *Profile
	if !strings.Contains(nilP.Format(), "no profile") {
		t.Fatal("nil profile Format")
	}
}

func TestIDRoundTrip(t *testing.T) {
	id := uint64(0xdeadbeefcafe)
	s := FormatID(id)
	if len(s) != 16 {
		t.Fatalf("FormatID = %q", s)
	}
	back, err := ParseID(s)
	if err != nil || back != id {
		t.Fatalf("ParseID(%q) = %x, %v", s, back, err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}
