package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile is a PROFILE-style per-query execution breakdown built from
// one finished trace: stage timings aggregated by span name, plus the
// counters the spans carried (morsels, rows, retries, abort causes).
type Profile struct {
	TraceID string        `json:"trace_id"`
	Root    string        `json:"root"`
	Total   time.Duration `json:"total_ns"`
	Err     string        `json:"err,omitempty"`
	Stages  []Stage       `json:"stages"`
	// Attrs are the root span's annotations (query text, mode, rows…).
	Attrs []Attr `json:"attrs,omitempty"`
}

// Stage aggregates all spans sharing a name: how many ran, their summed
// wall time, and merged annotations (numeric attrs are summed, the
// last value wins otherwise).
type Stage struct {
	Name  string        `json:"name"`
	Kind  Kind          `json:"kind"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
	Attrs []Attr        `json:"attrs,omitempty"`
	Errs  []string      `json:"errs,omitempty"`
}

// BuildProfile aggregates a trace into a Profile; nil in, nil out.
func BuildProfile(tr *Trace) *Profile {
	if tr == nil {
		return nil
	}
	root := tr.Root()
	p := &Profile{
		TraceID: FormatID(tr.ID),
		Root:    root.Name,
		Total:   tr.Duration,
		Err:     tr.Err,
		Attrs:   root.Attrs,
	}
	idx := map[string]int{}
	order := []string{}
	stages := map[string]*Stage{}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.ID == root.ID {
			continue
		}
		st, ok := stages[sp.Name]
		if !ok {
			st = &Stage{Name: sp.Name, Kind: sp.Kind}
			stages[sp.Name] = st
			idx[sp.Name] = len(order)
			order = append(order, sp.Name)
		}
		st.Count++
		st.Total += sp.Duration
		st.Attrs = mergeAttrs(st.Attrs, sp.Attrs)
		if sp.Err != "" {
			st.Errs = append(st.Errs, sp.Err)
		}
	}
	// First-start order reads as execution order; map order does not.
	sort.Slice(order, func(i, j int) bool {
		return firstStart(tr, order[i]).Before(firstStart(tr, order[j]))
	})
	for _, name := range order {
		p.Stages = append(p.Stages, *stages[name])
	}
	return p
}

func firstStart(tr *Trace, name string) time.Time {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return tr.Spans[i].Start
		}
	}
	return time.Time{}
}

// mergeAttrs folds src into dst: int-like values are summed per key,
// anything else is replaced.
func mergeAttrs(dst, src []Attr) []Attr {
	for _, a := range src {
		found := false
		for i := range dst {
			if dst[i].Key != a.Key {
				continue
			}
			found = true
			if x, ok := asInt64(dst[i].Value); ok {
				if y, ok2 := asInt64(a.Value); ok2 {
					dst[i].Value = x + y
					break
				}
			}
			dst[i].Value = a.Value
			break
		}
		if !found {
			dst = append(dst, a)
		}
	}
	return dst
}

func asInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case uint32:
		return int64(x), true
	case uint64:
		return int64(x), true
	}
	return 0, false
}

// Format pretty-prints the profile for the shell (:profile).
func (p *Profile) Format() string {
	if p == nil {
		return "no profile recorded (tracing disabled or no statement run yet)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  %s  total %s", p.TraceID, p.Root, p.Total.Round(time.Microsecond))
	if p.Err != "" {
		fmt.Fprintf(&b, "  ERROR: %s", p.Err)
	}
	b.WriteByte('\n')
	for _, a := range p.Attrs {
		fmt.Fprintf(&b, "  %-18s %v\n", a.Key+":", a.Value)
	}
	if len(p.Stages) > 0 {
		fmt.Fprintf(&b, "  %-28s %8s %14s  %s\n", "stage", "count", "total", "detail")
		for _, st := range p.Stages {
			detail := make([]string, 0, len(st.Attrs)+len(st.Errs))
			for _, a := range st.Attrs {
				detail = append(detail, fmt.Sprintf("%s=%v", a.Key, a.Value))
			}
			for _, e := range st.Errs {
				detail = append(detail, "err="+e)
			}
			fmt.Fprintf(&b, "  %-28s %8d %14s  %s\n",
				fmt.Sprintf("%s [%s]", st.Name, st.Kind), st.Count,
				st.Total.Round(time.Microsecond), strings.Join(detail, " "))
		}
	}
	return b.String()
}
