package trace

import "sync"

// ring retains finished traces with tail-sampling eviction semantics:
//
//   - pinned traces (errored or slow) may evict the oldest sampled
//     trace, or — when only pinned traces remain — the oldest pinned
//     one, so the ring always accepts fresh evidence of failure;
//   - sampled traces may only evict other sampled traces. A sampled
//     insert into a ring full of pinned traces is dropped: ordinary
//     traffic can never wash out retained errors.
type ring struct {
	mu      sync.Mutex
	cap     int
	entries []*Trace // insertion order, oldest first
}

func newRing(n int) *ring {
	return &ring{cap: n, entries: make([]*Trace, 0, n)}
}

// insert applies the eviction policy; reports whether tr was retained.
func (r *ring) insert(tr *Trace) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, tr)
		return true
	}
	// Full: find the oldest sampled entry.
	victim := -1
	for i, e := range r.entries {
		if !e.Pinned {
			victim = i
			break
		}
	}
	if victim < 0 {
		if !tr.Pinned {
			return false // sampled trace may not evict pinned ones
		}
		victim = 0 // oldest pinned yields to a newer pinned
	}
	copy(r.entries[victim:], r.entries[victim+1:])
	r.entries[len(r.entries)-1] = tr
	return true
}

func (r *ring) snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, len(r.entries))
	copy(out, r.entries)
	return out
}
