//go:build crashmutate

package crashx

import (
	"context"
	"testing"
)

// Validation of the validator: under the crashmutate build tag the commit
// path deliberately omits the flush of the last touched range
// (internal/pmemobj, mutateSkipFlush), so the commit record can claim
// durability for data that never reached the media. The explorer MUST
// catch this — if it cannot see a planted durability bug, its zero-violation
// runs on the real code mean nothing.

func TestMutationCaught(t *testing.T) {
	t.Setenv("POSEIDON_MUTATE", "skipflush") // pin the mutant: siblings select others
	res, err := Explore(context.Background(), Options{
		Persons: 8,
		Ops:     4,
		Seed:    7,
		// The first commit's events are enough to expose a missing flush;
		// no need to enumerate the whole run in CI.
		MaxPoints: 120,
		Progress: func(format string, args ...any) {
			t.Logf(format, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("planted missing-flush mutation not detected over %d crash points", res.Points)
	}
	first := res.Violations[0]
	t.Logf("mutation caught: %s", first)

	// The schedule ID must reproduce the violation from scratch.
	v, err := Replay(context.Background(), first.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatalf("schedule %s did not reproduce its violation", first.Schedule)
	}
}
