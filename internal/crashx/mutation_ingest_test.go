//go:build crashmutate

package crashx

import (
	"context"
	"testing"
)

// Mutation-validation of the group-commit fence: under the crashmutate
// tag with POSEIDON_MUTATE=groupfence, SnapshotAll publishes a batch's
// undo entries without the single count-word fence the epoch leader
// issues for the whole group (internal/pmemobj, mutateGroupFence). The
// count word then never durably validates the batched entries, so a
// crash inside the epoch's apply phase rolls back nothing and leaves a
// torn epoch behind. The ingest-mix explorer MUST catch this — it is the
// proof that its clean sweeps over the group-commit path mean something.

func TestMutationCaughtGroupFence(t *testing.T) {
	t.Setenv("POSEIDON_MUTATE", "groupfence")
	res, err := Explore(context.Background(), Options{
		Persons: 8,
		Ops:     8,
		Seed:    7,
		// The vulnerable windows sit inside each epoch's commit, which
		// starts only after ingestEpoch transactions' worth of execution
		// events — sample uniformly over the whole run rather than
		// enumerating a prefix that never reaches an epoch commit.
		Random: 250,
		Mix:    MixIngest,
		Progress: func(format string, args ...any) {
			t.Logf(format, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("planted skipped-group-fence mutation not detected over %d crash points", res.Points)
	}
	first := res.Violations[0]
	t.Logf("mutation caught: %s", first)

	// The schedule ID must reproduce the violation from scratch.
	v, err := Replay(context.Background(), first.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatalf("schedule %s did not reproduce its violation", first.Schedule)
	}
}
