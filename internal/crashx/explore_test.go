//go:build !crashmutate

package crashx

import (
	"context"
	"testing"

	"poseidon/internal/pmem"
)

// The central claim of the harness: for every crash point in the LDBC IU
// mix, recovery yields an image that passes every fsck invariant. A
// violation here is a durability bug (or an fsck bug), never flake — the
// whole schedule is deterministic.

func TestExploreLDBCSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is seconds-long; skipped in -short")
	}
	res, err := Explore(context.Background(), Options{
		Persons: 8,
		Ops:     5,
		Seed:    7,
		Random:  120,
		Progress: func(format string, args ...any) {
			t.Logf(format, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvents == 0 {
		t.Fatal("dry run counted no crashable events")
	}
	if res.Points == 0 {
		t.Fatal("no crash points explored")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestExploreShardedSmoke reruns the smoke sweep with a 4-way sharded
// core: the workload commits through per-shard undo-log lanes and every
// crash point must still recover to an fsck-clean image — including
// crashes landing inside a cross-shard commit's lane transaction.
func TestExploreShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is seconds-long; skipped in -short")
	}
	res, err := Explore(context.Background(), Options{
		Persons: 8,
		Ops:     5,
		Seed:    7,
		Random:  80,
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 {
		t.Fatal("no crash points explored")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

func TestExploreExhaustivePrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is seconds-long; skipped in -short")
	}
	// The first events of the first commit cover the pre-flush and
	// mid-undo-log crash classes; enumerate them densely.
	res, err := Explore(context.Background(), Options{
		Persons:   8,
		Ops:       3,
		Seed:      3,
		MaxPoints: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 80 {
		t.Fatalf("explored %d points, want 80", res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

func TestScheduleIDRoundTrip(t *testing.T) {
	in := ScheduleID{Persons: 16, Seed: -3, Ops: 30, Mask: pmem.EvFlush | pmem.EvDrain, K: 17}
	out, err := ParseScheduleID(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := ParseScheduleID("persons=1,bogus"); err == nil {
		t.Error("malformed schedule accepted")
	}
	if _, err := ParseScheduleID("persons=1,seed=2"); err == nil {
		t.Error("incomplete schedule accepted")
	}
}

func TestReplayCleanSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("replay opens a full engine; skipped in -short")
	}
	v, err := Replay(context.Background(), ScheduleID{
		Persons: 8, Seed: 7, Ops: 2, Mask: pmem.EvFlush | pmem.EvDrain, K: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("unexpected violation: %s", v)
	}
}
