// Package crashx systematically explores crash points of the engine's
// durability protocol. It runs an LDBC Interactive Update mix against a
// persistent engine under the pmem crash-schedule controller, crashes
// before every flush/fence event in turn, recovers the durable image and
// runs the internal/fsck invariant checks on the result. A single
// violating schedule is enough to disprove failure atomicity (C4); zero
// violations over every enumerated point is the strongest evidence the
// harness can produce that the protocol holds.
//
// Every explored schedule has a compact, replayable identity
// (ScheduleID): dataset scale, workload seed, op count, event mask and
// the crash ordinal k. Replay re-executes exactly that schedule.
package crashx

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"poseidon/internal/core"
	"poseidon/internal/fsck"
	"poseidon/internal/index"
	"poseidon/internal/ldbc"
	"poseidon/internal/pmem"
	"poseidon/internal/query"
)

// Options configures an exploration run.
type Options struct {
	// Persons scales the LDBC dataset (default 16).
	Persons int
	// Ops is the number of IU operations per run (default 20).
	Ops int
	// Seed drives both the op mix and the parameter generator (default 1).
	Seed int64
	// Mask selects which event classes are crash candidates (default
	// flush|drain: every durable-ordering point).
	Mask pmem.CrashEvents
	// Random, when > 0, samples that many crash points uniformly instead
	// of enumerating all of them (seeded by Seed, so still replayable).
	Random int
	// MaxPoints caps exhaustive enumeration (0 = no cap).
	MaxPoints int
	// PoolSize overrides the device size in bytes (default 16 MiB).
	PoolSize int
	// Shards sets the engine-core shard count for both the workload run
	// and every crash-recovery reopen (0 = the engine default). Sharded
	// runs exercise the per-shard undo-log lanes and the cross-shard
	// commit protocol under crash schedules.
	Shards int
	// Progress, when non-nil, receives progress lines.
	Progress func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Persons == 0 {
		o.Persons = 16
	}
	if o.Ops == 0 {
		o.Ops = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Mask == 0 {
		o.Mask = pmem.EvFlush | pmem.EvDrain
	}
	if o.PoolSize == 0 {
		o.PoolSize = 16 << 20
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// ScheduleID identifies one crash schedule completely: re-running the
// same workload (Persons, Seed, Ops) with a crash armed before event K of
// the masked classes reproduces the same durable image.
type ScheduleID struct {
	Persons int
	Seed    int64
	Ops     int
	Mask    pmem.CrashEvents
	K       uint64
}

func (s ScheduleID) String() string {
	return fmt.Sprintf("persons=%d,seed=%d,ops=%d,mask=%s,k=%d",
		s.Persons, s.Seed, s.Ops, s.Mask, s.K)
}

// ParseScheduleID parses the String form back into a schedule.
func ParseScheduleID(in string) (ScheduleID, error) {
	var s ScheduleID
	for _, part := range strings.Split(in, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("crashx: bad schedule field %q", part)
		}
		var err error
		switch key {
		case "persons":
			s.Persons, err = strconv.Atoi(val)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "ops":
			s.Ops, err = strconv.Atoi(val)
		case "mask":
			s.Mask, err = pmem.ParseCrashEvents(val)
		case "k":
			s.K, err = strconv.ParseUint(val, 10, 64)
		default:
			return s, fmt.Errorf("crashx: unknown schedule field %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("crashx: schedule field %q: %w", part, err)
		}
	}
	if s.Persons == 0 || s.Ops == 0 || s.Mask == 0 {
		return s, fmt.Errorf("crashx: incomplete schedule %q", in)
	}
	return s, nil
}

// Violation is one crash schedule whose recovered image failed
// verification (or failed to recover at all).
type Violation struct {
	Schedule ScheduleID
	// Report holds the fsck findings; nil when recovery itself failed.
	Report *fsck.Report
	// RecoverErr is set when Reopen failed after the crash.
	RecoverErr error
}

func (v Violation) String() string {
	if v.RecoverErr != nil {
		return fmt.Sprintf("schedule[%s]: recovery failed: %v", v.Schedule, v.RecoverErr)
	}
	return fmt.Sprintf("schedule[%s]: %s", v.Schedule, v.Report)
}

// Result summarizes an exploration.
type Result struct {
	// TotalEvents is the number of maskable events in a crash-free run.
	TotalEvents uint64
	// Points is the number of crash points explored.
	Points int
	// Violations holds every violating schedule, shrunk to the minimal op
	// count that still reproduces it.
	Violations []Violation
}

// harness owns one device and the immutable workload inputs; each
// iteration reloads the base image into the same device.
type harness struct {
	opts  Options
	cfg   core.Config
	dev   *pmem.Device
	image []byte
	ds    *ldbc.Dataset
	plans []*query.Plan
}

func newHarness(opts Options) (*harness, error) {
	cfg := core.Config{
		Mode:     core.PMem,
		PoolSize: opts.PoolSize,
		LogCap:   256 << 10,
		Shards:   opts.Shards,
		Profile:  &pmem.Profile{}, // latency model off: exploration is about ordering, not timing
	}
	e, err := core.Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("crashx: open: %w", err)
	}
	defer e.Close()
	ds := ldbc.Generate(ldbc.Config{Persons: opts.Persons, Seed: opts.Seed})
	if err := ds.LoadCore(e, true, index.Hybrid); err != nil {
		return nil, fmt.Errorf("crashx: load dataset: %w", err)
	}

	h := &harness{opts: opts, cfg: cfg, dev: e.Device(), ds: ds}
	// Checkpoint every line back to media (a clean shutdown) so the base
	// image is complete even when the commit path is deliberately broken
	// (crashmutate builds): the planted bug must surface through crash
	// schedules, not by corrupting the baseline itself.
	h.dev.Flush(0, uint64(h.dev.Size()))
	h.dev.Drain()
	var buf bytes.Buffer
	if err := h.dev.Save(&buf); err != nil {
		return nil, fmt.Errorf("crashx: save base image: %w", err)
	}
	h.image = buf.Bytes()

	for _, q := range ldbc.IUQueries() {
		plan, err := ldbc.IUPlan(q, true)
		if err != nil {
			return nil, fmt.Errorf("crashx: IU%d plan: %w", q.Num, err)
		}
		h.plans = append(h.plans, plan)
	}
	return h, nil
}

// outcome is the observation from one armed run.
type outcome struct {
	events     uint64 // maskable events counted (full run if no crash fired)
	fired      bool
	opsStarted int // ops begun before the crash (= ops needed to replay it)
	violation  *Violation
}

// verifyBase recovers the base image without running any ops and checks
// it, so every violation later is attributable to a crash schedule.
func (h *harness) verifyBase(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := h.dev.Load(bytes.NewReader(h.image)); err != nil {
		return fmt.Errorf("crashx: reload base image: %w", err)
	}
	e, err := core.Reopen(h.dev, h.cfg)
	if err != nil {
		return fmt.Errorf("crashx: reopen base image: %w", err)
	}
	rep := fsck.Check(e)
	e.Close()
	if !rep.OK() {
		return fmt.Errorf("crashx: base image is not clean: %s", rep)
	}
	return nil
}

// runOnce reloads the base image and replays the op mix with a crash
// armed before event k. With k == 0 it only counts maskable events (no
// crash fires and the final image is not power-cycled or checked).
func (h *harness) runOnce(ctx context.Context, k uint64) (*outcome, error) {
	if err := h.dev.Load(bytes.NewReader(h.image)); err != nil {
		return nil, fmt.Errorf("crashx: reload base image: %w", err)
	}
	e, err := core.Reopen(h.dev, h.cfg)
	if err != nil {
		return nil, fmt.Errorf("crashx: reopen base image: %w", err)
	}
	preps := make([]*query.Prepared, len(h.plans))
	for i, p := range h.plans {
		if preps[i], err = query.Prepare(e, p); err != nil {
			e.Close()
			return nil, fmt.Errorf("crashx: prepare IU%d: %w", i+1, err)
		}
	}

	h.dev.ArmCrash(h.opts.Mask, k)
	started, runErr := h.runOps(ctx, e, preps)
	// Close the live engine before reopening: the pool registry is keyed
	// by UUID and closing after Reopen would deregister the new pool.
	e.Close()
	events, fired := h.dev.DisarmCrash()
	if runErr != nil {
		return nil, runErr
	}

	out := &outcome{events: events, fired: fired, opsStarted: started}
	if k == 0 {
		return out, nil
	}
	// Power-cycle: the CPU view is discarded, only flushed lines survive.
	h.dev.Crash()
	sched := ScheduleID{Persons: h.opts.Persons, Seed: h.opts.Seed, Ops: h.opts.Ops, Mask: h.opts.Mask, K: k}
	e2, err := core.Reopen(h.dev, h.cfg)
	if err != nil {
		out.violation = &Violation{Schedule: sched, RecoverErr: err}
		return out, nil
	}
	rep := fsck.Check(e2)
	e2.Close()
	if !rep.OK() {
		out.violation = &Violation{Schedule: sched, Report: rep}
	}
	return out, nil
}

// runOps executes the deterministic IU mix, one transaction per op,
// stopping at an injected crash. It returns the number of ops started.
func (h *harness) runOps(ctx context.Context, e *core.Engine, preps []*query.Prepared) (started int, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*pmem.InjectedCrash); ok {
				return // the armed crash; everything after is recovery's problem
			}
			panic(r)
		}
	}()
	pg := ldbc.NewParamGen(h.ds, h.opts.Seed)
	mix := rand.New(rand.NewSource(h.opts.Seed))
	qs := ldbc.IUQueries()
	for i := 0; i < h.opts.Ops; i++ {
		if err := ctx.Err(); err != nil {
			return started, err
		}
		q := qs[mix.Intn(len(qs))]
		params := pg.IUParams(q)
		started++
		tx := e.Begin()
		if err := preps[q.Num-1].RunCtx(ctx, tx, params, func(query.Row) bool { return true }); err != nil {
			tx.Abort()
			return started, fmt.Errorf("crashx: IU%d: %w", q.Num, err)
		}
		if err := tx.Commit(); err != nil {
			return started, fmt.Errorf("crashx: IU%d commit: %w", q.Num, err)
		}
	}
	return started, nil
}

// Explore enumerates (or samples) crash points over the configured
// workload and fsck-checks the recovered image at each one.
func Explore(ctx context.Context, opts Options) (*Result, error) {
	opts.fill()
	h, err := newHarness(opts)
	if err != nil {
		return nil, err
	}

	// The base image must be clean before any crash is interesting.
	if err := h.verifyBase(ctx); err != nil {
		return nil, err
	}
	// Dry run: count the maskable events of a crash-free execution.
	dry, err := h.runOnce(ctx, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{TotalEvents: dry.events}
	opts.logf("workload generates %d %s events over %d ops", dry.events, opts.Mask, opts.Ops)

	var points []uint64
	switch {
	case opts.Random > 0:
		rng := rand.New(rand.NewSource(opts.Seed))
		n := opts.Random
		if uint64(n) > dry.events {
			n = int(dry.events)
		}
		for _, p := range rng.Perm(int(dry.events))[:n] {
			points = append(points, uint64(p)+1)
		}
	default:
		n := dry.events
		if opts.MaxPoints > 0 && uint64(opts.MaxPoints) < n {
			n = uint64(opts.MaxPoints)
		}
		for k := uint64(1); k <= n; k++ {
			points = append(points, k)
		}
	}

	for i, k := range points {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		out, err := h.runOnce(ctx, k)
		if err != nil {
			return res, err
		}
		res.Points++
		if out.violation != nil {
			v := h.shrink(ctx, *out.violation, out.opsStarted)
			res.Violations = append(res.Violations, v)
			opts.logf("VIOLATION %s", v)
		}
		if (i+1)%50 == 0 {
			opts.logf("explored %d/%d crash points, %d violations", i+1, len(points), len(res.Violations))
		}
	}
	return res, nil
}

// shrink reduces a violating schedule to the ops actually started before
// the crash (later ops never ran, so they cannot matter) and keeps the
// reduction only if it still reproduces a violation.
func (h *harness) shrink(ctx context.Context, v Violation, opsStarted int) Violation {
	if opsStarted <= 0 || opsStarted >= h.opts.Ops {
		return v
	}
	small := h.opts
	small.Ops = opsStarted
	hs := &harness{opts: small, cfg: h.cfg, dev: h.dev, image: h.image, ds: h.ds, plans: h.plans}
	out, err := hs.runOnce(ctx, v.Schedule.K)
	if err != nil || out.violation == nil {
		return v // shrinking is best-effort; keep the original evidence
	}
	return *out.violation
}

// Replay re-executes one schedule and returns its violation, or nil if
// the image checked out clean (i.e. the schedule no longer reproduces).
func Replay(ctx context.Context, sched ScheduleID) (*Violation, error) {
	opts := Options{Persons: sched.Persons, Ops: sched.Ops, Seed: sched.Seed, Mask: sched.Mask}
	opts.fill()
	h, err := newHarness(opts)
	if err != nil {
		return nil, err
	}
	out, err := h.runOnce(ctx, sched.K)
	if err != nil {
		return nil, err
	}
	return out.violation, nil
}
