// Package crashx systematically explores crash points of the engine's
// durability protocol. It runs an LDBC Interactive Update mix against a
// persistent engine under the pmem crash-schedule controller, crashes
// before every flush/fence event in turn, recovers the durable image and
// runs the internal/fsck invariant checks on the result. A single
// violating schedule is enough to disprove failure atomicity (C4); zero
// violations over every enumerated point is the strongest evidence the
// harness can produce that the protocol holds.
//
// Every explored schedule has a compact, replayable identity
// (ScheduleID): dataset scale, workload seed, op count, event mask, the
// workload mix and the crash ordinal k. Replay re-executes exactly that
// schedule.
//
// Two workload mixes are available. The default ("iu") commits one IU
// transaction at a time through the classic per-transaction path. The
// "ingest" mix exercises the write-optimized ingest stack: the base
// dataset is streamed in through the bulk loader, IU transactions commit
// in deterministic group-commit epochs through CommitBatch (so crash
// points land before and after the epoch leader's group fence), and the
// secondary indexes run in delta mode with explicit merges between
// epochs (so crash points also land mid delta-merge).
package crashx

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"poseidon/internal/core"
	"poseidon/internal/fsck"
	"poseidon/internal/index"
	"poseidon/internal/ldbc"
	"poseidon/internal/pmem"
	"poseidon/internal/query"
)

// Workload mixes. MixIU is the zero value: ScheduleIDs from before the
// ingest mix existed parse and replay unchanged.
const (
	MixIU     = ""       // one IU transaction per commit (classic path)
	MixIngest = "ingest" // bulk base load + group-commit epochs + delta merges
)

// Options configures an exploration run.
type Options struct {
	// Persons scales the LDBC dataset (default 16).
	Persons int
	// Ops is the number of IU operations per run (default 20).
	Ops int
	// Seed drives both the op mix and the parameter generator (default 1).
	Seed int64
	// Mask selects which event classes are crash candidates (default
	// flush|drain: every durable-ordering point).
	Mask pmem.CrashEvents
	// Random, when > 0, samples that many crash points uniformly instead
	// of enumerating all of them (seeded by Seed, so still replayable).
	Random int
	// MaxPoints caps exhaustive enumeration (0 = no cap).
	MaxPoints int
	// PoolSize overrides the device size in bytes (default 16 MiB).
	PoolSize int
	// Shards sets the engine-core shard count for both the workload run
	// and every crash-recovery reopen (0 = the engine default). Sharded
	// runs exercise the per-shard undo-log lanes and the cross-shard
	// commit protocol under crash schedules.
	Shards int
	// Mix selects the workload (MixIU or MixIngest).
	Mix string
	// Progress, when non-nil, receives progress lines.
	Progress func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Persons == 0 {
		o.Persons = 16
	}
	if o.Ops == 0 {
		o.Ops = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Mask == 0 {
		o.Mask = pmem.EvFlush | pmem.EvDrain
	}
	if o.PoolSize == 0 {
		o.PoolSize = 16 << 20
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// ScheduleID identifies one crash schedule completely: re-running the
// same workload (Persons, Seed, Ops) with a crash armed before event K of
// the masked classes reproduces the same durable image.
type ScheduleID struct {
	Persons int
	Seed    int64
	Ops     int
	Mask    pmem.CrashEvents
	K       uint64
	// Mix is the workload mix; empty means the classic IU mix, so
	// schedule IDs minted before the ingest mix existed stay valid.
	Mix string
}

func (s ScheduleID) String() string {
	id := fmt.Sprintf("persons=%d,seed=%d,ops=%d,mask=%s,k=%d",
		s.Persons, s.Seed, s.Ops, s.Mask, s.K)
	if s.Mix != MixIU {
		id += ",mix=" + s.Mix
	}
	return id
}

// ParseScheduleID parses the String form back into a schedule.
func ParseScheduleID(in string) (ScheduleID, error) {
	var s ScheduleID
	for _, part := range strings.Split(in, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("crashx: bad schedule field %q", part)
		}
		var err error
		switch key {
		case "persons":
			s.Persons, err = strconv.Atoi(val)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "ops":
			s.Ops, err = strconv.Atoi(val)
		case "mask":
			s.Mask, err = pmem.ParseCrashEvents(val)
		case "k":
			s.K, err = strconv.ParseUint(val, 10, 64)
		case "mix":
			if val != MixIngest {
				err = fmt.Errorf("unknown mix %q", val)
			}
			s.Mix = val
		default:
			return s, fmt.Errorf("crashx: unknown schedule field %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("crashx: schedule field %q: %w", part, err)
		}
	}
	if s.Persons == 0 || s.Ops == 0 || s.Mask == 0 {
		return s, fmt.Errorf("crashx: incomplete schedule %q", in)
	}
	return s, nil
}

// Violation is one crash schedule whose recovered image failed
// verification (or failed to recover at all).
type Violation struct {
	Schedule ScheduleID
	// Report holds the fsck findings; nil when recovery itself failed.
	Report *fsck.Report
	// RecoverErr is set when Reopen failed after the crash.
	RecoverErr error
}

func (v Violation) String() string {
	if v.RecoverErr != nil {
		return fmt.Sprintf("schedule[%s]: recovery failed: %v", v.Schedule, v.RecoverErr)
	}
	return fmt.Sprintf("schedule[%s]: %s", v.Schedule, v.Report)
}

// Result summarizes an exploration.
type Result struct {
	// TotalEvents is the number of maskable events in a crash-free run.
	TotalEvents uint64
	// Points is the number of crash points explored.
	Points int
	// Violations holds every violating schedule, shrunk to the minimal op
	// count that still reproduces it.
	Violations []Violation
}

// harness owns one device and the immutable workload inputs; each
// iteration reloads the base image into the same device.
type harness struct {
	opts  Options
	cfg   core.Config
	dev   *pmem.Device
	image []byte
	ds    *ldbc.Dataset
	plans []*query.Plan
}

func newHarness(opts Options) (*harness, error) {
	cfg := core.Config{
		Mode:     core.PMem,
		PoolSize: opts.PoolSize,
		LogCap:   256 << 10,
		Shards:   opts.Shards,
		Profile:  &pmem.Profile{}, // latency model off: exploration is about ordering, not timing
	}
	switch opts.Mix {
	case MixIU:
	case MixIngest:
		// The write-optimized ingest stack: group-commit epochs (driven
		// deterministically through CommitBatch) and delta-mode indexes.
		// MergeEvery stays zero — a background merger would make event
		// ordinals racy; the op loop merges explicitly instead.
		cfg.GroupCommit = core.GroupCommitConfig{Enabled: true, MaxBatch: ingestEpoch}
		cfg.IndexDelta = core.IndexDeltaConfig{Enabled: true}
	default:
		return nil, fmt.Errorf("crashx: unknown mix %q", opts.Mix)
	}
	e, err := core.Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("crashx: open: %w", err)
	}
	defer e.Close()
	ds := ldbc.Generate(ldbc.Config{Persons: opts.Persons, Seed: opts.Seed})
	load := ds.LoadCore
	if opts.Mix == MixIngest {
		load = ds.BulkLoadCore // base image arrives through the streamed path
	}
	if err := load(e, true, index.Hybrid); err != nil {
		return nil, fmt.Errorf("crashx: load dataset: %w", err)
	}

	h := &harness{opts: opts, cfg: cfg, dev: e.Device(), ds: ds}
	// Checkpoint every line back to media (a clean shutdown) so the base
	// image is complete even when the commit path is deliberately broken
	// (crashmutate builds): the planted bug must surface through crash
	// schedules, not by corrupting the baseline itself.
	h.dev.Flush(0, uint64(h.dev.Size()))
	h.dev.Drain()
	var buf bytes.Buffer
	if err := h.dev.Save(&buf); err != nil {
		return nil, fmt.Errorf("crashx: save base image: %w", err)
	}
	h.image = buf.Bytes()

	for _, q := range ldbc.IUQueries() {
		plan, err := ldbc.IUPlan(q, true)
		if err != nil {
			return nil, fmt.Errorf("crashx: IU%d plan: %w", q.Num, err)
		}
		h.plans = append(h.plans, plan)
	}
	return h, nil
}

// outcome is the observation from one armed run.
type outcome struct {
	events     uint64 // maskable events counted (full run if no crash fired)
	fired      bool
	opsStarted int // ops begun before the crash (= ops needed to replay it)
	violation  *Violation
}

// verifyBase recovers the base image without running any ops and checks
// it, so every violation later is attributable to a crash schedule.
func (h *harness) verifyBase(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := h.dev.Load(bytes.NewReader(h.image)); err != nil {
		return fmt.Errorf("crashx: reload base image: %w", err)
	}
	e, err := core.Reopen(h.dev, h.cfg)
	if err != nil {
		return fmt.Errorf("crashx: reopen base image: %w", err)
	}
	rep := fsck.Check(e)
	e.Close()
	if !rep.OK() {
		return fmt.Errorf("crashx: base image is not clean: %s", rep)
	}
	return nil
}

// runOnce reloads the base image and replays the op mix with a crash
// armed before event k. With k == 0 it only counts maskable events (no
// crash fires and the final image is not power-cycled or checked).
func (h *harness) runOnce(ctx context.Context, k uint64) (*outcome, error) {
	if err := h.dev.Load(bytes.NewReader(h.image)); err != nil {
		return nil, fmt.Errorf("crashx: reload base image: %w", err)
	}
	e, err := core.Reopen(h.dev, h.cfg)
	if err != nil {
		return nil, fmt.Errorf("crashx: reopen base image: %w", err)
	}
	preps := make([]*query.Prepared, len(h.plans))
	for i, p := range h.plans {
		if preps[i], err = query.Prepare(e, p); err != nil {
			e.Close()
			return nil, fmt.Errorf("crashx: prepare IU%d: %w", i+1, err)
		}
	}

	h.dev.ArmCrash(h.opts.Mask, k)
	run := h.runOps
	if h.opts.Mix == MixIngest {
		run = h.runIngestOps
	}
	started, runErr := run(ctx, e, preps)
	// Close the live engine before reopening: the pool registry is keyed
	// by UUID and closing after Reopen would deregister the new pool.
	e.Close()
	events, fired := h.dev.DisarmCrash()
	if runErr != nil {
		return nil, runErr
	}

	out := &outcome{events: events, fired: fired, opsStarted: started}
	if k == 0 {
		return out, nil
	}
	// Power-cycle: the CPU view is discarded, only flushed lines survive.
	h.dev.Crash()
	sched := ScheduleID{Persons: h.opts.Persons, Seed: h.opts.Seed, Ops: h.opts.Ops, Mask: h.opts.Mask, K: k, Mix: h.opts.Mix}
	e2, err := core.Reopen(h.dev, h.cfg)
	if err != nil {
		out.violation = &Violation{Schedule: sched, RecoverErr: err}
		return out, nil
	}
	rep := fsck.Check(e2)
	e2.Close()
	if !rep.OK() {
		out.violation = &Violation{Schedule: sched, Report: rep}
	}
	return out, nil
}

// runOps executes the deterministic IU mix, one transaction per op,
// stopping at an injected crash. It returns the number of ops started.
func (h *harness) runOps(ctx context.Context, e *core.Engine, preps []*query.Prepared) (started int, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*pmem.InjectedCrash); ok {
				return // the armed crash; everything after is recovery's problem
			}
			panic(r)
		}
	}()
	pg := ldbc.NewParamGen(h.ds, h.opts.Seed)
	mix := rand.New(rand.NewSource(h.opts.Seed))
	qs := ldbc.IUQueries()
	for i := 0; i < h.opts.Ops; i++ {
		if err := ctx.Err(); err != nil {
			return started, err
		}
		q := qs[mix.Intn(len(qs))]
		params := pg.IUParams(q)
		started++
		tx := e.Begin()
		if err := preps[q.Num-1].RunCtx(ctx, tx, params, func(query.Row) bool { return true }); err != nil {
			tx.Abort()
			return started, fmt.Errorf("crashx: IU%d: %w", q.Num, err)
		}
		if err := tx.Commit(); err != nil {
			return started, fmt.Errorf("crashx: IU%d commit: %w", q.Num, err)
		}
	}
	return started, nil
}

// ingestEpoch is the group-commit epoch size of the ingest mix: small
// enough that a short run spans several epochs (each epoch boundary is a
// leader group fence with crash points on both sides), large enough that
// epochs batch real work.
const ingestEpoch = 4

// ingestMergeEvery merges the index deltas after every Nth epoch, so the
// crash window also covers mid delta-merge states.
const ingestMergeEvery = 2

// runIngestOps executes the deterministic IU mix through the
// write-optimized ingest path: transactions accumulate into
// ingestEpoch-sized batches committed through CommitBatch (the
// deterministic group-commit entry — one leader, one group fence per
// epoch), and every ingestMergeEvery epochs the secondary-index deltas
// merge into their base trees. An injected crash can therefore land
// before the leader's group fence, after it (mid epoch apply), or in the
// middle of a delta merge. Returns the number of IU ops started.
//
// After every IU epoch, a churn epoch of property-less CreateRel (or,
// alternating, DeleteRel) transactions commits. Their apply phase writes
// only ranges the leader pre-covered with SnapshotAll — no fresh
// property records, so no individual undo appends re-persist the lane's
// count word after the group fence. Those epochs depend on the leader's
// single fence alone, which is exactly what the groupfence crashmutate
// build breaks: without them, IU epochs' own prop-chain snapshots mask
// the planted bug and the mutation test could not catch it.
func (h *harness) runIngestOps(ctx context.Context, e *core.Engine, preps []*query.Prepared) (started int, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*pmem.InjectedCrash); ok {
				return // the armed crash; everything after is recovery's problem
			}
			panic(r)
		}
	}()
	pg := ldbc.NewParamGen(h.ds, h.opts.Seed)
	mix := rand.New(rand.NewSource(h.opts.Seed))
	qs := ldbc.IUQueries()
	nNodes := uint64(len(h.ds.Nodes)) // base-load node ids are 0..nNodes-1

	epochs := 0
	endEpoch := func() {
		epochs++
		if epochs%ingestMergeEvery == 0 {
			h.mergeDeltas(e)
		}
	}

	batch := make([]*core.Tx, 0, ingestEpoch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// Member aborts (commit-time validation) are a legitimate part of
		// the workload and deterministic under the fixed seed; the sweep
		// judges the recovered image, not workload success.
		e.CommitBatch(batch)
		batch = batch[:0]
		endEpoch()
	}

	churnPair := 0
	var churnLive []uint64 // churn-created rel ids awaiting a delete epoch
	churnEpoch := func() error {
		txs := make([]*core.Tx, 0, ingestEpoch)
		var created []uint64
		if len(churnLive) >= ingestEpoch {
			// Delete epoch: each member tombstones one rel — a single
			// pre-covered record write per transaction.
			for _, id := range churnLive[:ingestEpoch] {
				tx := e.Begin()
				if err := tx.DeleteRel(id); err != nil {
					tx.Abort()
					return fmt.Errorf("crashx: churn delete rel %d: %w", id, err)
				}
				txs = append(txs, tx)
			}
			churnLive = churnLive[ingestEpoch:]
		} else {
			// Create epoch: property-less rels between disjoint base-node
			// pairs (no prop chain, so commit allocates nothing new; the
			// pairs are disjoint so members never contend for write locks).
			for j := 0; j < ingestEpoch; j++ {
				src := (uint64(churnPair) * 2) % nNodes
				dst := (uint64(churnPair)*2 + 1) % nNodes
				churnPair++
				tx := e.Begin()
				id, err := tx.CreateRel(src, dst, "knows", nil)
				if err != nil {
					tx.Abort()
					return fmt.Errorf("crashx: churn create rel %d->%d: %w", src, dst, err)
				}
				txs = append(txs, tx)
				created = append(created, id)
			}
		}
		for i, err := range e.CommitBatch(txs) {
			if err == nil && created != nil {
				churnLive = append(churnLive, created[i])
			}
		}
		endEpoch()
		return nil
	}

	for i := 0; i < h.opts.Ops; i++ {
		if err := ctx.Err(); err != nil {
			return started, err
		}
		q := qs[mix.Intn(len(qs))]
		params := pg.IUParams(q)
		started++
		tx := e.Begin()
		if err := preps[q.Num-1].RunCtx(ctx, tx, params, func(query.Row) bool { return true }); err != nil {
			// Two in-flight epoch members touched the same record (write
			// locks are taken at operation time): drain the epoch, then
			// retry once against committed state. Same seed, same
			// conflicts — the schedule stays replayable.
			tx.Abort()
			flush()
			tx = e.Begin()
			if err := preps[q.Num-1].RunCtx(ctx, tx, params, func(query.Row) bool { return true }); err != nil {
				tx.Abort()
				return started, fmt.Errorf("crashx: ingest IU%d: %w", q.Num, err)
			}
		}
		if batch = append(batch, tx); len(batch) == ingestEpoch {
			flush()
			if err := churnEpoch(); err != nil {
				return started, err
			}
		}
	}
	flush()
	h.mergeDeltas(e) // the tail of the run crosses merge code too
	return started, nil
}

// mergeDeltas merges every index tree's delta into its base, in a
// deterministic (shard, label, key) order so crash-event ordinals are
// reproducible.
func (h *harness) mergeDeltas(e *core.Engine) {
	infos := e.Indexes()
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Shard != infos[j].Shard {
			return infos[i].Shard < infos[j].Shard
		}
		if infos[i].Label != infos[j].Label {
			return infos[i].Label < infos[j].Label
		}
		return infos[i].Key < infos[j].Key
	})
	for _, info := range infos {
		_ = info.Tree.MergeDelta()
	}
}

// Explore enumerates (or samples) crash points over the configured
// workload and fsck-checks the recovered image at each one.
func Explore(ctx context.Context, opts Options) (*Result, error) {
	opts.fill()
	h, err := newHarness(opts)
	if err != nil {
		return nil, err
	}

	// The base image must be clean before any crash is interesting.
	if err := h.verifyBase(ctx); err != nil {
		return nil, err
	}
	// Dry run: count the maskable events of a crash-free execution.
	dry, err := h.runOnce(ctx, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{TotalEvents: dry.events}
	opts.logf("workload generates %d %s events over %d ops", dry.events, opts.Mask, opts.Ops)

	var points []uint64
	switch {
	case opts.Random > 0:
		rng := rand.New(rand.NewSource(opts.Seed))
		n := opts.Random
		if uint64(n) > dry.events {
			n = int(dry.events)
		}
		for _, p := range rng.Perm(int(dry.events))[:n] {
			points = append(points, uint64(p)+1)
		}
	default:
		n := dry.events
		if opts.MaxPoints > 0 && uint64(opts.MaxPoints) < n {
			n = uint64(opts.MaxPoints)
		}
		for k := uint64(1); k <= n; k++ {
			points = append(points, k)
		}
	}

	for i, k := range points {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		out, err := h.runOnce(ctx, k)
		if err != nil {
			return res, err
		}
		res.Points++
		if out.violation != nil {
			v := h.shrink(ctx, *out.violation, out.opsStarted)
			res.Violations = append(res.Violations, v)
			opts.logf("VIOLATION %s", v)
		}
		if (i+1)%50 == 0 {
			opts.logf("explored %d/%d crash points, %d violations", i+1, len(points), len(res.Violations))
		}
	}
	return res, nil
}

// shrink reduces a violating schedule to the ops actually started before
// the crash (later ops never ran, so they cannot matter) and keeps the
// reduction only if it still reproduces a violation.
func (h *harness) shrink(ctx context.Context, v Violation, opsStarted int) Violation {
	if opsStarted <= 0 || opsStarted >= h.opts.Ops {
		return v
	}
	small := h.opts
	small.Ops = opsStarted
	hs := &harness{opts: small, cfg: h.cfg, dev: h.dev, image: h.image, ds: h.ds, plans: h.plans}
	out, err := hs.runOnce(ctx, v.Schedule.K)
	if err != nil || out.violation == nil {
		return v // shrinking is best-effort; keep the original evidence
	}
	return *out.violation
}

// Replay re-executes one schedule and returns its violation, or nil if
// the image checked out clean (i.e. the schedule no longer reproduces).
func Replay(ctx context.Context, sched ScheduleID) (*Violation, error) {
	opts := Options{Persons: sched.Persons, Ops: sched.Ops, Seed: sched.Seed, Mask: sched.Mask, Mix: sched.Mix}
	opts.fill()
	h, err := newHarness(opts)
	if err != nil {
		return nil, err
	}
	out, err := h.runOnce(ctx, sched.K)
	if err != nil {
		return nil, err
	}
	return out.violation, nil
}
