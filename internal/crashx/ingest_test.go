//go:build !crashmutate

package crashx

import (
	"context"
	"testing"

	"poseidon/internal/pmem"
)

// The ingest mix drives the write-optimized commit stack — group-commit
// epochs through CommitBatch and delta-mode indexes with explicit merges
// — so its crash points land before and after the epoch leader's group
// fence and in the middle of delta merges. Every sampled point must
// still recover to an fsck-clean image.

func TestExploreIngestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is seconds-long; skipped in -short")
	}
	res, err := Explore(context.Background(), Options{
		Persons: 8,
		Ops:     8,
		Seed:    7,
		Random:  120,
		Mix:     MixIngest,
		Progress: func(format string, args ...any) {
			t.Logf(format, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvents == 0 {
		t.Fatal("dry run counted no crashable events")
	}
	if res.Points == 0 {
		t.Fatal("no crash points explored")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestExploreIngestShardedSmoke reruns the ingest sweep with a 4-way
// sharded core: epochs form per shard, so a crash can land between one
// shard's epoch commit and the next shard's.
func TestExploreIngestShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is seconds-long; skipped in -short")
	}
	res, err := Explore(context.Background(), Options{
		Persons: 8,
		Ops:     8,
		Seed:    7,
		Random:  80,
		Shards:  4,
		Mix:     MixIngest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 {
		t.Fatal("no crash points explored")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestExploreIngestEpochPrefix enumerates the first crash points densely:
// they cover the first group-commit epochs — the undo-lane batch append,
// the leader's single group fence, and the per-member applies after it.
func TestExploreIngestEpochPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is seconds-long; skipped in -short")
	}
	res, err := Explore(context.Background(), Options{
		Persons:   8,
		Ops:       6,
		Seed:      3,
		MaxPoints: 80,
		Mix:       MixIngest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 80 {
		t.Fatalf("explored %d points, want 80", res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

func TestScheduleIDRoundTripIngest(t *testing.T) {
	in := ScheduleID{Persons: 8, Seed: 7, Ops: 8, Mask: pmem.EvFlush | pmem.EvDrain, K: 17, Mix: MixIngest}
	out, err := ParseScheduleID(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	// Pre-ingest schedule IDs carry no mix field and stay parseable.
	legacy := ScheduleID{Persons: 16, Seed: 1, Ops: 20, Mask: pmem.EvFlush, K: 3}
	if out, err := ParseScheduleID(legacy.String()); err != nil || out != legacy {
		t.Fatalf("legacy round trip: %+v, %v", out, err)
	}
	if _, err := ParseScheduleID("persons=1,seed=2,ops=3,mask=flush,k=1,mix=bogus"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestExploreUnknownMix(t *testing.T) {
	if _, err := Explore(context.Background(), Options{Mix: "bogus"}); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
