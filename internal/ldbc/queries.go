package ldbc

import (
	"fmt"
	"math/rand"

	"poseidon/internal/query"
)

// QueryID names one workload query, e.g. SR 2-post or IU 6.
type QueryID struct {
	Num     int
	Variant string // "", "post" or "cmt"
}

// Name renders the paper's figure labels ("1", "2-post", ...).
func (q QueryID) Name() string {
	if q.Variant == "" {
		return fmt.Sprint(q.Num)
	}
	return fmt.Sprintf("%d-%s", q.Num, q.Variant)
}

// SRQueries lists the Interactive Short Read queries of Fig 5/7: message
// queries come in post and comment (cmt) subclasses.
func SRQueries() []QueryID {
	return []QueryID{
		{1, ""},
		{2, "post"}, {2, "cmt"},
		{3, ""},
		{4, "post"}, {4, "cmt"},
		{5, "post"}, {5, "cmt"},
		{6, "post"}, {6, "cmt"},
		{7, "post"}, {7, "cmt"},
	}
}

// IUQueries lists the Interactive Update queries of Fig 6/9.
func IUQueries() []QueryID {
	out := make([]QueryID, 8)
	for i := range out {
		out[i] = QueryID{Num: i + 1}
	}
	return out
}

// msgLabel maps a variant to its node label.
func msgLabel(variant string) string {
	if variant == "cmt" {
		return "Comment"
	}
	return "Post"
}

// personAccess builds the access path for a person by business id bound
// to param "id": an IndexScan when indexes are enabled, otherwise a
// label-scan plus filter (the paper's -s/-p configurations).
func access(label string, useIndex bool, param string) query.Op {
	if useIndex {
		return &query.IndexScan{Label: label, Key: "id", Value: &query.Param{Name: param}}
	}
	return &query.Filter{
		Input: &query.NodeScan{Label: label},
		Pred:  &query.Cmp{Op: query.Eq, L: &query.Prop{Col: 0, Key: "id"}, R: &query.Param{Name: param}},
	}
}

// SRPlan builds the graph-algebra plan for an SR query. Parameters: "id"
// binds the person id (SR1-3) or message id (SR4-7).
func SRPlan(q QueryID, useIndex bool) (*query.Plan, error) {
	L := msgLabel(q.Variant)
	switch q.Num {
	case 1:
		// Person profile + city: person -[isLocatedIn]-> city.
		return &query.Plan{Root: &query.Project{
			Input: &query.GetNode{
				Input:  &query.Expand{Input: access("Person", useIndex, "id"), Col: 0, Dir: query.Out, RelLabel: "isLocatedIn"},
				RelCol: 1, End: query.Dst,
			},
			Cols: []query.Expr{
				&query.Prop{Col: 0, Key: "firstName"},
				&query.Prop{Col: 0, Key: "lastName"},
				&query.Prop{Col: 0, Key: "birthday"},
				&query.Prop{Col: 0, Key: "locationIP"},
				&query.Prop{Col: 0, Key: "browserUsed"},
				&query.Prop{Col: 2, Key: "id"},
				&query.Prop{Col: 0, Key: "gender"},
				&query.Prop{Col: 0, Key: "creationDate"},
			},
		}}, nil

	case 2:
		// Last 10 messages of a person: person <-[hasCreator]- message.
		return &query.Plan{Root: &query.Project{
			Input: &query.OrderBy{
				Input: &query.Filter{
					Input: &query.GetNode{
						Input:  &query.Expand{Input: access("Person", useIndex, "id"), Col: 0, Dir: query.In, RelLabel: "hasCreator"},
						RelCol: 1, End: query.Src,
					},
					Pred: &query.HasLabel{Col: 2, Label: L},
				},
				Key: &query.Prop{Col: 2, Key: "creationDate"}, Desc: true, Limit: 10,
			},
			Cols: []query.Expr{
				&query.Prop{Col: 2, Key: "id"},
				&query.Prop{Col: 2, Key: "content"},
				&query.Prop{Col: 2, Key: "creationDate"},
			},
		}}, nil

	case 3:
		// Friends of a person with friendship date, newest first.
		return &query.Plan{Root: &query.Project{
			Input: &query.OrderBy{
				Input: &query.GetNode{
					Input:  &query.Expand{Input: access("Person", useIndex, "id"), Col: 0, Dir: query.Both, RelLabel: "knows"},
					RelCol: 1, End: query.Other, OtherCol: 0,
				},
				Key: &query.Prop{Col: 1, Key: "creationDate"}, Desc: true,
			},
			Cols: []query.Expr{
				&query.Prop{Col: 2, Key: "id"},
				&query.Prop{Col: 2, Key: "firstName"},
				&query.Prop{Col: 2, Key: "lastName"},
				&query.Prop{Col: 1, Key: "creationDate"},
			},
		}}, nil

	case 4:
		// Message content.
		return &query.Plan{Root: &query.Project{
			Input: access(L, useIndex, "id"),
			Cols: []query.Expr{
				&query.Prop{Col: 0, Key: "creationDate"},
				&query.Prop{Col: 0, Key: "content"},
			},
		}}, nil

	case 5:
		// Message creator.
		return &query.Plan{Root: &query.Project{
			Input: &query.GetNode{
				Input:  &query.Expand{Input: access(L, useIndex, "id"), Col: 0, Dir: query.Out, RelLabel: "hasCreator"},
				RelCol: 1, End: query.Dst,
			},
			Cols: []query.Expr{
				&query.Prop{Col: 2, Key: "id"},
				&query.Prop{Col: 2, Key: "firstName"},
				&query.Prop{Col: 2, Key: "lastName"},
			},
		}}, nil

	case 6:
		// Forum of a message + moderator. Posts are contained directly;
		// comments first resolve their post via replyOf.
		var msgToPost query.Op = access(L, useIndex, "id")
		post := 0
		if q.Variant == "cmt" {
			msgToPost = &query.GetNode{
				Input:  &query.Expand{Input: msgToPost, Col: 0, Dir: query.Out, RelLabel: "replyOf"},
				RelCol: 1, End: query.Dst,
			}
			post = 2
		}
		return &query.Plan{Root: &query.Project{
			Input: &query.GetNode{
				Input: &query.Expand{
					Input: &query.GetNode{
						Input:  &query.Expand{Input: msgToPost, Col: post, Dir: query.In, RelLabel: "containerOf"},
						RelCol: post + 1, End: query.Src,
					},
					Col: post + 2, Dir: query.Out, RelLabel: "hasModerator",
				},
				RelCol: post + 3, End: query.Dst,
			},
			Cols: []query.Expr{
				&query.Prop{Col: post + 2, Key: "id"},
				&query.Prop{Col: post + 2, Key: "title"},
				&query.Prop{Col: post + 4, Key: "id"},
				&query.Prop{Col: post + 4, Key: "firstName"},
				&query.Prop{Col: post + 4, Key: "lastName"},
			},
		}}, nil

	case 7:
		// Replies to a message with their authors and the author's city —
		// the longest SR pipeline (posts have direct replies; comments
		// have none under the depth-1 generator, matching their small
		// result in the paper).
		return &query.Plan{Root: &query.Project{
			Input: &query.OrderBy{
				Input: &query.GetNode{
					Input: &query.Expand{
						Input: &query.GetNode{
							Input:  &query.Expand{Input: access(L, useIndex, "id"), Col: 0, Dir: query.In, RelLabel: "replyOf"},
							RelCol: 1, End: query.Src,
						},
						Col: 2, Dir: query.Out, RelLabel: "hasCreator",
					},
					RelCol: 3, End: query.Dst,
				},
				Key: &query.Prop{Col: 2, Key: "creationDate"}, Desc: true,
			},
			Cols: []query.Expr{
				&query.Prop{Col: 2, Key: "id"},
				&query.Prop{Col: 2, Key: "content"},
				&query.Prop{Col: 2, Key: "creationDate"},
				&query.Prop{Col: 4, Key: "id"},
				&query.Prop{Col: 4, Key: "firstName"},
				&query.Prop{Col: 4, Key: "lastName"},
			},
		}}, nil

	default:
		return nil, fmt.Errorf("ldbc: unknown SR query %d", q.Num)
	}
}

// IUPlan builds the plan for an Interactive Update query. Fresh entities
// take their ids and payloads from parameters; existing entities are
// located by business id through NodeLookup (indexed) or the access path.
func IUPlan(q QueryID, useIndex bool) (*query.Plan, error) {
	if !useIndex {
		// Scan-based variants replace the leaf access path only; inner
		// NodeLookups require indexes (as in the paper, IU always ran
		// with index support).
		return nil, fmt.Errorf("ldbc: IU queries require index support")
	}
	switch q.Num {
	case 1:
		// Add person + isLocatedIn city + hasInterest tag.
		return &query.Plan{Root: &query.CreateRel{
			Input: &query.NodeLookup{
				Input: &query.CreateRel{
					Input: &query.NodeLookup{
						Input: &query.CreateNode{Label: "Person", Props: []query.PropSpec{
							{Key: "id", Val: &query.Param{Name: "personId"}},
							{Key: "firstName", Val: &query.Param{Name: "firstName"}},
							{Key: "lastName", Val: &query.Param{Name: "lastName"}},
							{Key: "gender", Val: &query.Param{Name: "gender"}},
							{Key: "birthday", Val: &query.Param{Name: "birthday"}},
							{Key: "creationDate", Val: &query.Param{Name: "creationDate"}},
							{Key: "locationIP", Val: &query.Param{Name: "locationIP"}},
							{Key: "browserUsed", Val: &query.Param{Name: "browserUsed"}},
						}},
						Label: "City", Key: "id", Value: &query.Param{Name: "cityId"},
					},
					SrcCol: 0, DstCol: 1, Label: "isLocatedIn",
				},
				Label: "Tag", Key: "id", Value: &query.Param{Name: "tagId"},
			},
			SrcCol: 0, DstCol: 3, Label: "hasInterest",
		}}, nil

	case 2:
		// Add like to post.
		return &query.Plan{Root: &query.CreateRel{
			Input: &query.NodeLookup{
				Input: access("Person", true, "personId"),
				Label: "Post", Key: "id", Value: &query.Param{Name: "postId"},
			},
			SrcCol: 0, DstCol: 1, Label: "likes",
			Props: []query.PropSpec{{Key: "creationDate", Val: &query.Param{Name: "creationDate"}}},
		}}, nil

	case 3:
		// Add like to comment.
		return &query.Plan{Root: &query.CreateRel{
			Input: &query.NodeLookup{
				Input: access("Person", true, "personId"),
				Label: "Comment", Key: "id", Value: &query.Param{Name: "commentId"},
			},
			SrcCol: 0, DstCol: 1, Label: "likes",
			Props: []query.PropSpec{{Key: "creationDate", Val: &query.Param{Name: "creationDate"}}},
		}}, nil

	case 4:
		// Add forum + moderator.
		return &query.Plan{Root: &query.CreateRel{
			Input: &query.NodeLookup{
				Input: &query.CreateNode{Label: "Forum", Props: []query.PropSpec{
					{Key: "id", Val: &query.Param{Name: "forumId"}},
					{Key: "title", Val: &query.Param{Name: "title"}},
					{Key: "creationDate", Val: &query.Param{Name: "creationDate"}},
				}},
				Label: "Person", Key: "id", Value: &query.Param{Name: "moderatorId"},
			},
			SrcCol: 0, DstCol: 1, Label: "hasModerator",
		}}, nil

	case 5:
		// Add forum membership.
		return &query.Plan{Root: &query.CreateRel{
			Input: &query.NodeLookup{
				Input: access("Forum", true, "forumId"),
				Label: "Person", Key: "id", Value: &query.Param{Name: "personId"},
			},
			SrcCol: 0, DstCol: 1, Label: "hasMember",
			Props: []query.PropSpec{{Key: "joinDate", Val: &query.Param{Name: "joinDate"}}},
		}}, nil

	case 6:
		// Add post + hasCreator + containerOf.
		return &query.Plan{Root: &query.CreateRel{
			Input: &query.NodeLookup{
				Input: &query.CreateRel{
					Input: &query.NodeLookup{
						Input: &query.CreateNode{Label: "Post", Props: []query.PropSpec{
							{Key: "id", Val: &query.Param{Name: "postId"}},
							{Key: "content", Val: &query.Param{Name: "content"}},
							{Key: "creationDate", Val: &query.Param{Name: "creationDate"}},
							{Key: "browserUsed", Val: &query.Param{Name: "browserUsed"}},
							{Key: "length", Val: &query.Param{Name: "length"}},
						}},
						Label: "Person", Key: "id", Value: &query.Param{Name: "authorId"},
					},
					SrcCol: 0, DstCol: 1, Label: "hasCreator",
				},
				Label: "Forum", Key: "id", Value: &query.Param{Name: "forumId"},
			},
			SrcCol: 3, DstCol: 0, Label: "containerOf",
		}}, nil

	case 7:
		// Add comment + hasCreator + replyOf.
		return &query.Plan{Root: &query.CreateRel{
			Input: &query.NodeLookup{
				Input: &query.CreateRel{
					Input: &query.NodeLookup{
						Input: &query.CreateNode{Label: "Comment", Props: []query.PropSpec{
							{Key: "id", Val: &query.Param{Name: "commentId"}},
							{Key: "content", Val: &query.Param{Name: "content"}},
							{Key: "creationDate", Val: &query.Param{Name: "creationDate"}},
							{Key: "browserUsed", Val: &query.Param{Name: "browserUsed"}},
							{Key: "length", Val: &query.Param{Name: "length"}},
						}},
						Label: "Person", Key: "id", Value: &query.Param{Name: "authorId"},
					},
					SrcCol: 0, DstCol: 1, Label: "hasCreator",
				},
				Label: "Post", Key: "id", Value: &query.Param{Name: "postId"},
			},
			SrcCol: 0, DstCol: 3, Label: "replyOf",
		}}, nil

	case 8:
		// Add friendship.
		return &query.Plan{Root: &query.CreateRel{
			Input: &query.NodeLookup{
				Input: access("Person", true, "person1Id"),
				Label: "Person", Key: "id", Value: &query.Param{Name: "person2Id"},
			},
			SrcCol: 0, DstCol: 1, Label: "knows",
			Props: []query.PropSpec{{Key: "creationDate", Val: &query.Param{Name: "creationDate"}}},
		}}, nil

	default:
		return nil, fmt.Errorf("ldbc: unknown IU query %d", q.Num)
	}
}

// ParamGen deterministically draws query parameters from the dataset's
// id pools (the "different input ID parameter" per run of §7.3).
type ParamGen struct {
	rng *rand.Rand
	ds  *Dataset

	nextPerson  int64
	nextForum   int64
	nextPost    int64
	nextComment int64
	nextDate    int64
}

// NewParamGen creates a parameter generator.
func NewParamGen(ds *Dataset, seed int64) *ParamGen {
	return &ParamGen{
		rng:         rand.New(rand.NewSource(seed)),
		ds:          ds,
		nextPerson:  int64(len(ds.PersonIDs)) + 1e6,
		nextForum:   int64(len(ds.ForumIDs)) + 1e6,
		nextPost:    int64(len(ds.PostIDs)) + 1e6,
		nextComment: int64(len(ds.CommentIDs)) + 1e6,
		nextDate:    20200000,
	}
}

func (pg *ParamGen) pick(ids []int64) int64 {
	return ids[pg.rng.Intn(len(ids))]
}

// Partition moves the generator's fresh-entity id counters into the
// i-th disjoint block, so any number of concurrent generators (one per
// simulated load client) insert non-colliding business ids. Call it
// once, right after NewParamGen.
func (pg *ParamGen) Partition(i int) {
	off := int64(i) << 32
	pg.nextPerson += off
	pg.nextForum += off
	pg.nextPost += off
	pg.nextComment += off
}

// SRParams draws the input parameter for an SR query.
func (pg *ParamGen) SRParams(q QueryID) query.Params {
	switch q.Num {
	case 1, 2, 3:
		return query.Params{"id": pg.pick(pg.ds.PersonIDs)}
	default:
		if q.Variant == "cmt" {
			return query.Params{"id": pg.pick(pg.ds.CommentIDs)}
		}
		return query.Params{"id": pg.pick(pg.ds.PostIDs)}
	}
}

// IUParams draws parameters for an IU query: fresh ids for inserted
// entities, existing ids for referenced ones.
func (pg *ParamGen) IUParams(q QueryID) query.Params {
	pg.nextDate++
	date := pg.nextDate
	switch q.Num {
	case 1:
		pg.nextPerson++
		return query.Params{
			"personId":  pg.nextPerson,
			"firstName": firstNames[pg.rng.Intn(len(firstNames))],
			"lastName":  lastNames[pg.rng.Intn(len(lastNames))],
			"gender":    "female", "birthday": int64(19800101),
			"creationDate": date,
			"locationIP":   "10.9.9.9", "browserUsed": "Firefox",
			"cityId": pg.pick(pg.ds.CityIDs), "tagId": pg.pick(pg.ds.TagIDs),
		}
	case 2:
		return query.Params{
			"personId": pg.pick(pg.ds.PersonIDs), "postId": pg.pick(pg.ds.PostIDs),
			"creationDate": date,
		}
	case 3:
		return query.Params{
			"personId": pg.pick(pg.ds.PersonIDs), "commentId": pg.pick(pg.ds.CommentIDs),
			"creationDate": date,
		}
	case 4:
		pg.nextForum++
		return query.Params{
			"forumId": pg.nextForum, "title": "new-forum",
			"creationDate": date, "moderatorId": pg.pick(pg.ds.PersonIDs),
		}
	case 5:
		return query.Params{
			"forumId": pg.pick(pg.ds.ForumIDs), "personId": pg.pick(pg.ds.PersonIDs),
			"joinDate": date,
		}
	case 6:
		pg.nextPost++
		return query.Params{
			"postId": pg.nextPost, "content": "fresh post content for iu6",
			"creationDate": date, "browserUsed": "Chrome", "length": int64(28),
			"authorId": pg.pick(pg.ds.PersonIDs), "forumId": pg.pick(pg.ds.ForumIDs),
		}
	case 7:
		pg.nextComment++
		return query.Params{
			"commentId": pg.nextComment, "content": "fresh comment for iu7",
			"creationDate": date, "browserUsed": "Safari", "length": int64(22),
			"authorId": pg.pick(pg.ds.PersonIDs), "postId": pg.pick(pg.ds.PostIDs),
		}
	case 8:
		p1 := pg.pick(pg.ds.PersonIDs)
		p2 := pg.pick(pg.ds.PersonIDs)
		return query.Params{"person1Id": p1, "person2Id": p2, "creationDate": date}
	default:
		return nil
	}
}
