package ldbc

import (
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/fsck"
	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// TestBulkLoadMatchesClassicLoad: the streamed bulk path (indexes
// created first, entries published per batch) must produce the same
// observable engine as the classic path (load, then index backfill).
func TestBulkLoadMatchesClassicLoad(t *testing.T) {
	ds := Generate(Config{Persons: 40, Seed: 9})

	classic, err := core.Open(core.Config{Mode: core.PMem, PoolSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(classic.Close)
	if err := ds.LoadCore(classic, true, index.Hybrid); err != nil {
		t.Fatal(err)
	}

	bulk, err := core.Open(core.Config{Mode: core.PMem, PoolSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bulk.Close)
	if err := ds.BulkLoadCore(bulk, true, index.Hybrid); err != nil {
		t.Fatal(err)
	}

	compareEngines(t, classic, bulk, ds)

	// The bulk image must satisfy every persistent invariant.
	rep := fsck.Check(bulk)
	if !rep.OK() {
		t.Fatalf("fsck after bulk load:\n%s", rep)
	}
	// And survive a clean close/reopen with indexes intact.
	dev := bulk.Device()
	bulk.Close()
	re, err := core.Reopen(dev, core.Config{Mode: core.PMem})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(re.Close)
	compareEngines(t, classic, re, ds)
}

// TestLoadCoreTxMatchesBulk: the per-transaction ingest baseline agrees
// with the bulk path on counts and index contents.
func TestLoadCoreTxMatchesBulk(t *testing.T) {
	ds := Generate(Config{Persons: 25, Seed: 17})

	bulk, err := core.Open(core.Config{Mode: core.DRAM, PoolSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bulk.Close)
	if err := ds.BulkLoadCore(bulk, true, index.Volatile); err != nil {
		t.Fatal(err)
	}

	for _, txOps := range []int{1, 64} {
		perTx, err := core.Open(core.Config{Mode: core.DRAM, PoolSize: 256 << 20,
			GroupCommit: core.GroupCommitConfig{Enabled: true}})
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.LoadCoreTx(perTx, true, index.Volatile, txOps); err != nil {
			t.Fatal(err)
		}
		compareEngines(t, bulk, perTx, ds)
		perTx.Close()
	}
}

func compareEngines(t *testing.T, a, b *core.Engine, ds *Dataset) {
	t.Helper()
	if an, bn := a.NodeCount(), b.NodeCount(); an != bn {
		t.Fatalf("node counts differ: %d vs %d", an, bn)
	}
	if ar, br := a.RelCount(), b.RelCount(); ar != br {
		t.Fatalf("rel counts differ: %d vs %d", ar, br)
	}
	// Every indexed business id resolves to the same number of nodes
	// with identical labels on both engines.
	for _, spec := range IndexSpecs() {
		ra, oka := a.IndexFor(spec[0], spec[1])
		rb, okb := b.IndexFor(spec[0], spec[1])
		if !oka || !okb {
			t.Fatalf("index %s.%s missing: a=%v b=%v", spec[0], spec[1], oka, okb)
		}
		for i := int64(0); i < 40; i++ {
			v := storage.IntValue(i)
			la, lb := ra.Lookup(v), rb.Lookup(v)
			if len(la) != len(lb) {
				t.Fatalf("index %s.%s id=%d: %d hits vs %d", spec[0], spec[1], i, len(la), len(lb))
			}
		}
	}
}
