// Package ldbc provides a deterministic LDBC-SNB-like social network
// generator and the Interactive Short Read (SR) and Interactive Update
// (IU) query workloads of the paper's evaluation (§7.2).
//
// The generator reproduces the SNB schema the paper's queries touch:
// persons connected by knows edges with a skewed degree distribution,
// forums containing posts moderated by persons, comments replying to
// posts, likes, tags, places and organisations. Scale is a parameter
// (Config.Persons); entity ratios follow the SNB's shape (messages are
// the bulk of the data). One simplification is documented in DESIGN.md:
// comments reply directly to posts (reply depth 1), which keeps every SR
// query a bounded-length traversal.
package ldbc

import (
	"fmt"
	"math/rand"

	"poseidon/internal/core"
	"poseidon/internal/diskstore"
	"poseidon/internal/index"
)

// Config parameterizes the generator.
type Config struct {
	// Persons scales the dataset (SNB-style ratios derive the rest).
	// Default 1000.
	Persons int
	// Seed makes generation deterministic. Default 42.
	Seed int64
}

func (c *Config) fill() {
	if c.Persons == 0 {
		c.Persons = 1000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// NodeSpec describes one node to load.
type NodeSpec struct {
	Label string
	Props map[string]any
}

// EdgeSpec describes one relationship between nodes by index.
type EdgeSpec struct {
	Src, Dst int
	Label    string
	Props    map[string]any
}

// Dataset is a generated social network plus the id pools the parameter
// generator draws from.
type Dataset struct {
	Nodes []NodeSpec
	Edges []EdgeSpec

	PersonIDs  []int64
	PostIDs    []int64
	CommentIDs []int64
	ForumIDs   []int64
	TagIDs     []int64
	CityIDs    []int64
}

var (
	firstNames = []string{"Jan", "Mia", "Ali", "Chen", "Ada", "Ken", "Eva", "Bob", "Ida", "Max", "Lea", "Tom"}
	lastNames  = []string{"Smith", "Garcia", "Mueller", "Tanaka", "Okafor", "Silva", "Nowak", "Khan", "Berg", "Rossi"}
	browsers   = []string{"Firefox", "Chrome", "Safari", "Opera"}
	tagWords   = []string{"music", "sports", "science", "art", "travel", "food", "films", "books", "games", "history", "nature", "tech"}
)

// Generate builds the dataset.
func Generate(cfg Config) *Dataset {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{}
	p := cfg.Persons

	nCities := maxi(10, p/20)
	nCountries := 10
	nTags := maxi(12, p/10)
	nForums := maxi(5, p/2)
	nPosts := 5 * p
	nComments := 10 * p

	addNode := func(label string, props map[string]any) int {
		ds.Nodes = append(ds.Nodes, NodeSpec{Label: label, Props: props})
		return len(ds.Nodes) - 1
	}
	addEdge := func(src, dst int, label string, props map[string]any) {
		ds.Edges = append(ds.Edges, EdgeSpec{Src: src, Dst: dst, Label: label, Props: props})
	}

	// Places and organisations.
	countries := make([]int, nCountries)
	for i := range countries {
		countries[i] = addNode("Country", map[string]any{
			"id": int64(i), "name": fmt.Sprintf("country-%d", i),
		})
	}
	cities := make([]int, nCities)
	for i := range cities {
		cities[i] = addNode("City", map[string]any{
			"id": int64(i), "name": fmt.Sprintf("city-%d", i),
		})
		ds.CityIDs = append(ds.CityIDs, int64(i))
		addEdge(cities[i], countries[i%nCountries], "isPartOf", nil)
	}
	universities := make([]int, nCities/2+1)
	for i := range universities {
		universities[i] = addNode("University", map[string]any{
			"id": int64(i), "name": fmt.Sprintf("university-%d", i),
		})
		addEdge(universities[i], cities[i%nCities], "isLocatedIn", nil)
	}
	companies := make([]int, nCities/2+1)
	for i := range companies {
		companies[i] = addNode("Company", map[string]any{
			"id": int64(i), "name": fmt.Sprintf("company-%d", i),
		})
		addEdge(companies[i], countries[i%nCountries], "isLocatedIn", nil)
	}

	// Tags.
	tags := make([]int, nTags)
	for i := range tags {
		tags[i] = addNode("Tag", map[string]any{
			"id": int64(i), "name": tagWords[i%len(tagWords)] + fmt.Sprint(i/len(tagWords)),
		})
		ds.TagIDs = append(ds.TagIDs, int64(i))
	}

	// Persons.
	persons := make([]int, p)
	for i := range persons {
		gender := "male"
		if rng.Intn(2) == 0 {
			gender = "female"
		}
		persons[i] = addNode("Person", map[string]any{
			"id":           int64(i),
			"firstName":    firstNames[rng.Intn(len(firstNames))],
			"lastName":     lastNames[rng.Intn(len(lastNames))],
			"gender":       gender,
			"birthday":     int64(19500101 + rng.Intn(550000)),
			"creationDate": int64(20100000 + i),
			"locationIP":   fmt.Sprintf("10.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256)),
			"browserUsed":  browsers[rng.Intn(len(browsers))],
		})
		ds.PersonIDs = append(ds.PersonIDs, int64(i))
		addEdge(persons[i], cities[rng.Intn(nCities)], "isLocatedIn", nil)
		addEdge(persons[i], universities[rng.Intn(len(universities))], "studyAt",
			map[string]any{"classYear": int64(1990 + rng.Intn(30))})
		if rng.Intn(2) == 0 {
			addEdge(persons[i], companies[rng.Intn(len(companies))], "workAt",
				map[string]any{"workFrom": int64(2000 + rng.Intn(20))})
		}
		for _, t := range pickDistinct(rng, nTags, 1+rng.Intn(4)) {
			addEdge(persons[i], tags[t], "hasInterest", nil)
		}
	}

	// knows: skewed degrees (a few hubs, many low-degree persons).
	for i := range persons {
		deg := 2 + powerlawDegree(rng, 16)
		for _, other := range pickDistinct(rng, p, deg) {
			if other == i {
				continue
			}
			addEdge(persons[i], persons[other], "knows",
				map[string]any{"creationDate": int64(20120000 + rng.Intn(80000))})
		}
	}

	// Forums.
	forums := make([]int, nForums)
	for i := range forums {
		forums[i] = addNode("Forum", map[string]any{
			"id":           int64(i),
			"title":        fmt.Sprintf("forum-%d-%s", i, tagWords[i%len(tagWords)]),
			"creationDate": int64(20110000 + i),
		})
		ds.ForumIDs = append(ds.ForumIDs, int64(i))
		addEdge(forums[i], persons[rng.Intn(p)], "hasModerator", nil)
		for _, m := range pickDistinct(rng, p, 3+rng.Intn(8)) {
			addEdge(forums[i], persons[m], "hasMember",
				map[string]any{"joinDate": int64(20110000 + rng.Intn(90000))})
		}
		addEdge(forums[i], tags[rng.Intn(nTags)], "hasTag", nil)
	}

	// Posts: the bulk of the data.
	posts := make([]int, nPosts)
	for i := range posts {
		posts[i] = addNode("Post", map[string]any{
			"id":           int64(i),
			"content":      content(rng, 40+rng.Intn(120)),
			"creationDate": int64(20120000 + i),
			"browserUsed":  browsers[rng.Intn(len(browsers))],
			"locationIP":   fmt.Sprintf("10.0.%d.%d", rng.Intn(256), rng.Intn(256)),
			"length":       int64(40 + rng.Intn(120)),
		})
		ds.PostIDs = append(ds.PostIDs, int64(i))
		addEdge(posts[i], persons[powerlawPick(rng, p)], "hasCreator", nil)
		addEdge(forums[rng.Intn(nForums)], posts[i], "containerOf", nil)
		addEdge(posts[i], countries[rng.Intn(nCountries)], "isLocatedIn", nil)
		if rng.Intn(3) == 0 {
			addEdge(posts[i], tags[rng.Intn(nTags)], "hasTag", nil)
		}
	}

	// Comments: reply directly to posts (documented depth-1 simplification).
	comments := make([]int, nComments)
	for i := range comments {
		comments[i] = addNode("Comment", map[string]any{
			"id":           int64(i),
			"content":      content(rng, 20+rng.Intn(80)),
			"creationDate": int64(20130000 + i),
			"browserUsed":  browsers[rng.Intn(len(browsers))],
			"locationIP":   fmt.Sprintf("10.1.%d.%d", rng.Intn(256), rng.Intn(256)),
			"length":       int64(20 + rng.Intn(80)),
		})
		ds.CommentIDs = append(ds.CommentIDs, int64(i))
		addEdge(comments[i], persons[powerlawPick(rng, p)], "hasCreator", nil)
		addEdge(comments[i], posts[powerlawPick(rng, nPosts)], "replyOf", nil)
		addEdge(comments[i], countries[rng.Intn(nCountries)], "isLocatedIn", nil)
	}

	// Likes.
	for i := 0; i < 2*p; i++ {
		addEdge(persons[rng.Intn(p)], posts[powerlawPick(rng, nPosts)], "likes",
			map[string]any{"creationDate": int64(20130000 + rng.Intn(60000))})
		addEdge(persons[rng.Intn(p)], comments[rng.Intn(nComments)], "likes",
			map[string]any{"creationDate": int64(20135000 + rng.Intn(60000))})
	}
	return ds
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// powerlawDegree draws a degree with a heavy tail capped at max.
func powerlawDegree(rng *rand.Rand, max int) int {
	d := 1
	for d < max && rng.Intn(3) != 0 {
		d++
	}
	return d
}

// powerlawPick prefers low indices, giving early entities (hub persons,
// popular posts) higher in-degrees.
func powerlawPick(rng *rand.Rand, n int) int {
	// Square of a uniform variable skews toward 0.
	f := rng.Float64()
	return int(f * f * float64(n))
}

func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func content(rng *rand.Rand, n int) string {
	buf := make([]byte, n)
	for i := range buf {
		if i%6 == 5 {
			buf[i] = ' '
		} else {
			buf[i] = byte('a' + rng.Intn(26))
		}
	}
	return string(buf)
}

// IndexSpecs lists the secondary indexes the indexed workload variants
// use (business-id lookups, as in the paper's -i configurations).
func IndexSpecs() [][2]string {
	return [][2]string{
		{"Person", "id"}, {"Post", "id"}, {"Comment", "id"},
		{"Forum", "id"}, {"Tag", "id"}, {"City", "id"},
	}
}

// LoadCore bulk-loads the dataset into a graph engine, optionally
// creating the workload indexes of the given kind.
func (ds *Dataset) LoadCore(e *core.Engine, withIndexes bool, kind index.Kind) error {
	bl := e.NewBulkLoader()
	ids := make([]uint64, len(ds.Nodes))
	for i, n := range ds.Nodes {
		id, err := bl.AddNode(n.Label, n.Props)
		if err != nil {
			return fmt.Errorf("ldbc: load node %d: %w", i, err)
		}
		ids[i] = id
	}
	for i, ed := range ds.Edges {
		if _, err := bl.AddRel(ids[ed.Src], ids[ed.Dst], ed.Label, ed.Props); err != nil {
			return fmt.Errorf("ldbc: load edge %d: %w", i, err)
		}
	}
	if err := bl.Finish(); err != nil {
		return err
	}
	if withIndexes {
		for _, spec := range IndexSpecs() {
			if err := e.CreateIndex(spec[0], spec[1], kind); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadDisk loads the dataset into the disk baseline, creating its DRAM
// indexes.
func (ds *Dataset) LoadDisk(s *diskstore.Store) []uint64 {
	tx := s.Begin()
	ids := make([]uint64, len(ds.Nodes))
	for i, n := range ds.Nodes {
		ids[i] = tx.AddNode(n.Label, n.Props)
	}
	for _, ed := range ds.Edges {
		tx.AddRel(ids[ed.Src], ids[ed.Dst], ed.Label, ed.Props)
	}
	tx.Commit()
	for _, spec := range IndexSpecs() {
		s.CreateIndex(spec[0], spec[1])
	}
	return ids
}
