package ldbc

import (
	"fmt"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/diskstore"
	"poseidon/internal/index"
	"poseidon/internal/jit"
	"poseidon/internal/query"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	return Generate(Config{Persons: 60, Seed: 7})
}

func loadedEngine(t *testing.T, ds *Dataset, mode core.Mode) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{Mode: mode, PoolSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	kind := index.Hybrid
	if mode == core.DRAM {
		kind = index.Volatile
	}
	if err := ds.LoadCore(e, true, kind); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Persons: 50, Seed: 3})
	b := Generate(Config{Persons: 50, Seed: 3})
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Label != b.Nodes[i].Label {
			t.Fatalf("node %d label differs", i)
		}
		for k, v := range a.Nodes[i].Props {
			if b.Nodes[i].Props[k] != v {
				t.Fatalf("node %d prop %s differs", i, k)
			}
		}
	}
	c := Generate(Config{Persons: 50, Seed: 4})
	if len(c.Edges) == len(a.Edges) {
		t.Log("different seeds produced same edge count (possible but unlikely)")
	}
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(Config{Persons: 100, Seed: 1})
	if len(ds.PersonIDs) != 100 {
		t.Errorf("persons = %d", len(ds.PersonIDs))
	}
	if len(ds.PostIDs) != 500 {
		t.Errorf("posts = %d, want 5x persons", len(ds.PostIDs))
	}
	if len(ds.CommentIDs) != 1000 {
		t.Errorf("comments = %d, want 10x persons", len(ds.CommentIDs))
	}
	// Messages must dominate the node count (SNB: "message activities
	// are the bulk of the data").
	msgs := len(ds.PostIDs) + len(ds.CommentIDs)
	if msgs*2 < len(ds.Nodes) {
		t.Errorf("messages (%d) are not the bulk of %d nodes", msgs, len(ds.Nodes))
	}
	// Every edge endpoint is in range.
	for _, e := range ds.Edges {
		if e.Src < 0 || e.Src >= len(ds.Nodes) || e.Dst < 0 || e.Dst >= len(ds.Nodes) {
			t.Fatalf("edge out of range: %+v", e)
		}
	}
}

func TestLoadCoreAndCounts(t *testing.T) {
	ds := smallDataset(t)
	e := loadedEngine(t, ds, core.DRAM)
	if got := e.NodeCount(); got != uint64(len(ds.Nodes)) {
		t.Errorf("nodes = %d, want %d", got, len(ds.Nodes))
	}
	if got := e.RelCount(); got != uint64(len(ds.Edges)) {
		t.Errorf("rels = %d, want %d", got, len(ds.Edges))
	}
}

func TestAllSRQueriesRunOnAllEngines(t *testing.T) {
	ds := smallDataset(t)
	e := loadedEngine(t, ds, core.DRAM)
	j, err := jit.New(e)
	if err != nil {
		t.Fatal(err)
	}
	pg := NewParamGen(ds, 99)

	for _, q := range SRQueries() {
		for _, useIndex := range []bool{false, true} {
			name := q.Name()
			if useIndex {
				name += "-i"
			}
			t.Run(name, func(t *testing.T) {
				plan, err := SRPlan(q, useIndex)
				if err != nil {
					t.Fatal(err)
				}
				pr, err := query.Prepare(e, plan)
				if err != nil {
					t.Fatal(err)
				}
				params := pg.SRParams(q)

				tx := e.Begin()
				defer tx.Abort()
				interp, err := pr.Collect(tx, params)
				if err != nil {
					t.Fatal(err)
				}

				// JIT must agree with the interpreter on the full result
				// multiset (order may differ only within OrderBy ties).
				var jitRows []query.Row
				if _, err := j.Run(tx, plan, params, func(r query.Row) bool {
					jitRows = append(jitRows, r)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if len(jitRows) != len(interp) {
					t.Fatalf("jit rows = %d, interp = %d", len(jitRows), len(interp))
				}
				if !sameRowMultiset(jitRows, interp) {
					t.Errorf("jit and interpreter row sets differ:\njit    %v\ninterp %v", jitRows, interp)
				}

				// Parallel interpretation must agree too.
				var parRows int
				if err := pr.RunParallel(tx, params, 4, func(query.Row) bool { parRows++; return true }); err != nil {
					t.Fatal(err)
				}
				if parRows != len(interp) {
					t.Errorf("parallel rows = %d, interp = %d", parRows, len(interp))
				}
			})
		}
	}
}

func TestSRPlansReturnPlausibleResults(t *testing.T) {
	ds := smallDataset(t)
	e := loadedEngine(t, ds, core.DRAM)
	pg := NewParamGen(ds, 5)

	// SR1 returns exactly one profile row for an existing person.
	plan, _ := SRPlan(QueryID{1, ""}, true)
	pr, _ := query.Prepare(e, plan)
	tx := e.Begin()
	defer tx.Abort()
	rows, err := pr.Collect(tx, pg.SRParams(QueryID{1, ""}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("SR1 returned %d rows, want 1", len(rows))
	}
	if len(rows[0]) != 8 {
		t.Errorf("SR1 row has %d columns, want 8", len(rows[0]))
	}

	// SR2 returns at most 10 rows ordered by creationDate desc.
	plan2, _ := SRPlan(QueryID{2, "post"}, true)
	pr2, _ := query.Prepare(e, plan2)
	// Pick a hub person (low id: power-law author assignment) to have posts.
	rows2, err := pr2.Collect(tx, query.Params{"id": int64(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) > 10 {
		t.Errorf("SR2 returned %d rows, limit is 10", len(rows2))
	}
	for i := 1; i < len(rows2); i++ {
		if rows2[i-1][2].Int() < rows2[i][2].Int() {
			t.Fatalf("SR2 not sorted desc: %v then %v", rows2[i-1][2].Int(), rows2[i][2].Int())
		}
	}

	// SR4 on a known post returns its content.
	plan4, _ := SRPlan(QueryID{4, "post"}, true)
	pr4, _ := query.Prepare(e, plan4)
	rows4, err := pr4.Collect(tx, query.Params{"id": int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows4) != 1 {
		t.Fatalf("SR4 rows = %d", len(rows4))
	}
}

func TestAllIUQueriesMutateEngine(t *testing.T) {
	ds := smallDataset(t)
	e := loadedEngine(t, ds, core.DRAM)
	j, _ := jit.New(e)
	pg := NewParamGen(ds, 11)

	for _, q := range IUQueries() {
		t.Run(q.Name(), func(t *testing.T) {
			plan, err := IUPlan(q, true)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := query.Prepare(e, plan)
			if err != nil {
				t.Fatal(err)
			}
			relsBefore := e.RelCount()

			// Interpreted execution.
			tx := e.Begin()
			if _, err := pr.Collect(tx, pg.IUParams(q)); err != nil {
				tx.Abort()
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if e.RelCount() <= relsBefore {
				t.Errorf("IU%d added no relationships", q.Num)
			}

			// JIT execution with fresh parameters.
			relsBefore = e.RelCount()
			tx2 := e.Begin()
			if _, err := j.Run(tx2, plan, pg.IUParams(q), func(query.Row) bool { return true }); err != nil {
				tx2.Abort()
				t.Fatal(err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			if e.RelCount() <= relsBefore {
				t.Errorf("IU%d (jit) added no relationships", q.Num)
			}
		})
	}
	if _, err := IUPlan(QueryID{Num: 2}, false); err == nil {
		t.Error("IU without indexes should be rejected")
	}
}

// sameRowMultiset compares two row sets ignoring order.
func sameRowMultiset(a, b []query.Row) bool {
	key := func(r query.Row) string {
		s := ""
		for _, v := range r {
			s += fmt.Sprintf("%d:%d|", v.Type, v.Raw)
		}
		return s
	}
	count := map[string]int{}
	for _, r := range a {
		count[key(r)]++
	}
	for _, r := range b {
		count[key(r)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestDiskWorkloadMirrorsEngine(t *testing.T) {
	ds := smallDataset(t)
	e := loadedEngine(t, ds, core.DRAM)
	s := diskstore.Open(diskstore.Config{Lat: &diskstore.Latencies{}})
	ds.LoadDisk(s)
	pg := NewParamGen(ds, 21)

	// Row counts of every SR query must match between the PMem engine and
	// the disk baseline (same data, same semantics).
	for _, q := range SRQueries() {
		plan, _ := SRPlan(q, true)
		pr, _ := query.Prepare(e, plan)
		for rep := 0; rep < 3; rep++ {
			params := pg.SRParams(q)
			tx := e.Begin()
			rows, err := pr.Collect(tx, params)
			if err != nil {
				t.Fatal(err)
			}
			tx.Abort()

			dtx := s.Begin()
			dn, err := RunSRDisk(dtx, q, params)
			dtx.Abort()
			if err != nil {
				t.Fatalf("%s: disk error: %v", q.Name(), err)
			}
			if dn != len(rows) {
				t.Errorf("%s: disk rows = %d, engine rows = %d (params %v)", q.Name(), dn, len(rows), params)
			}
		}
	}

	// IU queries run on the disk baseline too.
	for _, q := range IUQueries() {
		params := pg.IUParams(q)
		dtx := s.Begin()
		if err := RunIUDisk(dtx, q, params); err != nil {
			dtx.Abort()
			t.Fatalf("IU%d disk: %v", q.Num, err)
		}
		dtx.Commit()
	}
}
