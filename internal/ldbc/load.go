package ldbc

import (
	"fmt"

	"poseidon/internal/core"
	"poseidon/internal/index"
)

// BulkLoadCore streams the dataset into the engine through the
// write-optimized bulk path. When withIndexes is set the workload
// indexes are created up front, on the empty engine, so the bulk
// loader's deferred per-batch publication builds them as the data lands
// — no full backfill scan after the load. Records stream through the
// loader's per-shard appenders with one watermark advance per batch.
func (ds *Dataset) BulkLoadCore(e *core.Engine, withIndexes bool, kind index.Kind) error {
	if withIndexes {
		for _, spec := range IndexSpecs() {
			if err := e.CreateIndex(spec[0], spec[1], kind); err != nil {
				return err
			}
		}
	}
	bl := e.NewBulkLoader()
	ids := make([]uint64, len(ds.Nodes))
	for i, n := range ds.Nodes {
		id, err := bl.AddNode(n.Label, n.Props)
		if err != nil {
			return fmt.Errorf("ldbc: bulk load node %d: %w", i, err)
		}
		ids[i] = id
	}
	for i, ed := range ds.Edges {
		if _, err := bl.AddRel(ids[ed.Src], ids[ed.Dst], ed.Label, ed.Props); err != nil {
			return fmt.Errorf("ldbc: bulk load edge %d: %w", i, err)
		}
	}
	return bl.Finish()
}

// LoadCoreTx loads the dataset through the regular MVTO transaction
// path — the ingest baseline the bulk loader is measured against. Every
// transaction carries txOps entities (1 reproduces the one-commit-per-
// entity worst case); with group commit enabled the commits still pay
// the full per-transaction protocol, just batched into shared epochs.
func (ds *Dataset) LoadCoreTx(e *core.Engine, withIndexes bool, kind index.Kind, txOps int) error {
	if txOps < 1 {
		txOps = 1
	}
	if withIndexes {
		for _, spec := range IndexSpecs() {
			if err := e.CreateIndex(spec[0], spec[1], kind); err != nil {
				return err
			}
		}
	}
	ids := make([]uint64, len(ds.Nodes))
	var tx *core.Tx
	ops := 0
	commit := func() error {
		if tx == nil {
			return nil
		}
		err := tx.Commit()
		tx = nil
		ops = 0
		return err
	}
	for i, n := range ds.Nodes {
		if tx == nil {
			tx = e.Begin()
		}
		id, err := tx.CreateNode(n.Label, n.Props)
		if err != nil {
			tx.Abort()
			return fmt.Errorf("ldbc: tx load node %d: %w", i, err)
		}
		ids[i] = id
		if ops++; ops >= txOps {
			if err := commit(); err != nil {
				return fmt.Errorf("ldbc: tx load commit at node %d: %w", i, err)
			}
		}
	}
	if err := commit(); err != nil {
		return fmt.Errorf("ldbc: tx load commit after nodes: %w", err)
	}
	for i, ed := range ds.Edges {
		if tx == nil {
			tx = e.Begin()
		}
		if _, err := tx.CreateRel(ids[ed.Src], ids[ed.Dst], ed.Label, ed.Props); err != nil {
			tx.Abort()
			return fmt.Errorf("ldbc: tx load edge %d: %w", i, err)
		}
		if ops++; ops >= txOps {
			if err := commit(); err != nil {
				return fmt.Errorf("ldbc: tx load commit at edge %d: %w", i, err)
			}
		}
	}
	return commit()
}
