package ldbc

import (
	"fmt"
	"sort"

	"poseidon/internal/diskstore"
	"poseidon/internal/query"
)

// Hand-written implementations of the SR and IU queries against the disk
// baseline. The paper's DISK system is a separate native graph database;
// accordingly these use the diskstore's own API (DRAM index lookups plus
// page-based traversals) rather than the PMem engine's query machinery.

func pint(params query.Params, key string) int64 {
	v, _ := params[key].(int64)
	return v
}

func diskNodeByID(tx *diskstore.Tx, label string, id int64) (uint64, bool, error) {
	ids, err := tx.Lookup(label, "id", id)
	if err != nil {
		return 0, false, err
	}
	if len(ids) == 0 {
		return 0, false, nil
	}
	return ids[0], true, nil
}

// RunSRDisk executes one SR query against the disk store, returning the
// number of result rows.
func RunSRDisk(tx *diskstore.Tx, q QueryID, params query.Params) (int, error) {
	L := msgLabel(q.Variant)
	switch q.Num {
	case 1:
		p, ok, err := diskNodeByID(tx, "Person", pint(params, "id"))
		if err != nil || !ok {
			return 0, err
		}
		n, err := tx.Node(p)
		if err != nil {
			return 0, err
		}
		rows := 0
		tx.Out(p, "isLocatedIn", func(r diskstore.RelData) bool {
			city, err2 := tx.Node(r.Dst)
			if err2 == nil {
				_ = n.Props["firstName"]
				_ = city.Props["id"]
				rows++
			}
			return true
		})
		return rows, nil

	case 2:
		p, ok, err := diskNodeByID(tx, "Person", pint(params, "id"))
		if err != nil || !ok {
			return 0, err
		}
		type msg struct {
			date int64
			id   uint64
		}
		var msgs []msg
		tx.In(p, "hasCreator", func(r diskstore.RelData) bool {
			m, err2 := tx.Node(r.Src)
			if err2 != nil || m.Label != L {
				return true
			}
			d, _ := m.Props["creationDate"].(int64)
			msgs = append(msgs, msg{d, m.ID})
			return true
		})
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].date > msgs[j].date })
		if len(msgs) > 10 {
			msgs = msgs[:10]
		}
		for _, m := range msgs {
			if _, err := tx.Node(m.id); err != nil {
				return 0, err
			}
		}
		return len(msgs), nil

	case 3:
		p, ok, err := diskNodeByID(tx, "Person", pint(params, "id"))
		if err != nil || !ok {
			return 0, err
		}
		type friend struct {
			date int64
			id   uint64
		}
		var friends []friend
		visit := func(r diskstore.RelData) bool {
			other := r.Dst
			if other == p {
				other = r.Src
			}
			f, err2 := tx.Node(other)
			if err2 != nil {
				return true
			}
			d, _ := r.Props["creationDate"].(int64)
			_ = f.Props["firstName"]
			friends = append(friends, friend{d, other})
			return true
		}
		tx.Out(p, "knows", visit)
		tx.In(p, "knows", visit)
		sort.Slice(friends, func(i, j int) bool { return friends[i].date > friends[j].date })
		return len(friends), nil

	case 4:
		m, ok, err := diskNodeByID(tx, L, pint(params, "id"))
		if err != nil || !ok {
			return 0, err
		}
		n, err := tx.Node(m)
		if err != nil {
			return 0, err
		}
		_ = n.Props["content"]
		return 1, nil

	case 5:
		m, ok, err := diskNodeByID(tx, L, pint(params, "id"))
		if err != nil || !ok {
			return 0, err
		}
		rows := 0
		tx.Out(m, "hasCreator", func(r diskstore.RelData) bool {
			if p, err2 := tx.Node(r.Dst); err2 == nil {
				_ = p.Props["firstName"]
				rows++
			}
			return true
		})
		return rows, nil

	case 6:
		m, ok, err := diskNodeByID(tx, L, pint(params, "id"))
		if err != nil || !ok {
			return 0, err
		}
		post := m
		if q.Variant == "cmt" {
			found := false
			tx.Out(m, "replyOf", func(r diskstore.RelData) bool {
				post, found = r.Dst, true
				return false
			})
			if !found {
				return 0, nil
			}
		}
		rows := 0
		tx.In(post, "containerOf", func(r diskstore.RelData) bool {
			forum := r.Src
			tx.Out(forum, "hasModerator", func(r2 diskstore.RelData) bool {
				if mod, err2 := tx.Node(r2.Dst); err2 == nil {
					_ = mod.Props["firstName"]
					rows++
				}
				return true
			})
			return true
		})
		return rows, nil

	case 7:
		m, ok, err := diskNodeByID(tx, L, pint(params, "id"))
		if err != nil || !ok {
			return 0, err
		}
		type reply struct {
			date int64
			id   uint64
		}
		var replies []reply
		tx.In(m, "replyOf", func(r diskstore.RelData) bool {
			c, err2 := tx.Node(r.Src)
			if err2 != nil {
				return true
			}
			tx.Out(c.ID, "hasCreator", func(r2 diskstore.RelData) bool {
				if a, err3 := tx.Node(r2.Dst); err3 == nil {
					_ = a.Props["firstName"]
				}
				return true
			})
			d, _ := c.Props["creationDate"].(int64)
			replies = append(replies, reply{d, c.ID})
			return true
		})
		sort.Slice(replies, func(i, j int) bool { return replies[i].date > replies[j].date })
		return len(replies), nil

	default:
		return 0, fmt.Errorf("ldbc: unknown SR query %d", q.Num)
	}
}

// RunIUDisk executes one IU query against the disk store.
func RunIUDisk(tx *diskstore.Tx, q QueryID, params query.Params) error {
	get := func(label, param string) (uint64, error) {
		id, ok, err := diskNodeByID(tx, label, pint(params, param))
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("ldbc: %s %d not found", label, pint(params, param))
		}
		return id, nil
	}
	switch q.Num {
	case 1:
		p := tx.AddNode("Person", map[string]any{
			"id": params["personId"], "firstName": params["firstName"],
			"lastName": params["lastName"], "gender": params["gender"],
			"birthday": params["birthday"], "creationDate": params["creationDate"],
			"locationIP": params["locationIP"], "browserUsed": params["browserUsed"],
		})
		city, err := get("City", "cityId")
		if err != nil {
			return err
		}
		tx.AddRel(p, city, "isLocatedIn", nil)
		tag, err := get("Tag", "tagId")
		if err != nil {
			return err
		}
		tx.AddRel(p, tag, "hasInterest", nil)
		return nil
	case 2:
		p, err := get("Person", "personId")
		if err != nil {
			return err
		}
		post, err := get("Post", "postId")
		if err != nil {
			return err
		}
		tx.AddRel(p, post, "likes", map[string]any{"creationDate": params["creationDate"]})
		return nil
	case 3:
		p, err := get("Person", "personId")
		if err != nil {
			return err
		}
		c, err := get("Comment", "commentId")
		if err != nil {
			return err
		}
		tx.AddRel(p, c, "likes", map[string]any{"creationDate": params["creationDate"]})
		return nil
	case 4:
		f := tx.AddNode("Forum", map[string]any{
			"id": params["forumId"], "title": params["title"], "creationDate": params["creationDate"],
		})
		mod, err := get("Person", "moderatorId")
		if err != nil {
			return err
		}
		tx.AddRel(f, mod, "hasModerator", nil)
		return nil
	case 5:
		f, err := get("Forum", "forumId")
		if err != nil {
			return err
		}
		p, err := get("Person", "personId")
		if err != nil {
			return err
		}
		tx.AddRel(f, p, "hasMember", map[string]any{"joinDate": params["joinDate"]})
		return nil
	case 6:
		post := tx.AddNode("Post", map[string]any{
			"id": params["postId"], "content": params["content"],
			"creationDate": params["creationDate"], "browserUsed": params["browserUsed"],
			"length": params["length"],
		})
		author, err := get("Person", "authorId")
		if err != nil {
			return err
		}
		tx.AddRel(post, author, "hasCreator", nil)
		forum, err := get("Forum", "forumId")
		if err != nil {
			return err
		}
		tx.AddRel(forum, post, "containerOf", nil)
		return nil
	case 7:
		c := tx.AddNode("Comment", map[string]any{
			"id": params["commentId"], "content": params["content"],
			"creationDate": params["creationDate"], "browserUsed": params["browserUsed"],
			"length": params["length"],
		})
		author, err := get("Person", "authorId")
		if err != nil {
			return err
		}
		tx.AddRel(c, author, "hasCreator", nil)
		post, err := get("Post", "postId")
		if err != nil {
			return err
		}
		tx.AddRel(c, post, "replyOf", nil)
		return nil
	case 8:
		p1, err := get("Person", "person1Id")
		if err != nil {
			return err
		}
		p2, err := get("Person", "person2Id")
		if err != nil {
			return err
		}
		tx.AddRel(p1, p2, "knows", map[string]any{"creationDate": params["creationDate"]})
		return nil
	default:
		return fmt.Errorf("ldbc: unknown IU query %d", q.Num)
	}
}
