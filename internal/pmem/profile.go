package pmem

import "time"

// Profile describes the latency behaviour of a simulated memory device.
// Latencies are injected by busy-waiting so that they are visible to
// wall-clock benchmarks at nanosecond granularity (time.Sleep is far too
// coarse for memory-scale latencies).
//
// The defaults below are calibrated to the ratios reported for Intel Optane
// DCPMMs versus DRAM (paper characteristics C1-C3): roughly 3x random read
// latency, asymmetric and more expensive persistent writes, and 256-byte
// internal write blocks with a write-combining buffer.
type Profile struct {
	// ReadMiss is charged when a load touches a cache line that is not in
	// the simulated CPU cache.
	ReadMiss time.Duration
	// WriteBlock is charged once per 256-byte internal block per flush
	// epoch (between two Drain calls). Flushing four adjacent cache lines
	// therefore costs one block write, modelling the DCPMM write-combining
	// buffer (C3).
	WriteBlock time.Duration
	// FlushLine is the marginal cost of a clwb for a line whose 256-byte
	// block has already been charged in the current flush epoch.
	FlushLine time.Duration
	// Drain is the cost of an sfence barrier.
	Drain time.Duration
}

// DRAMProfile models plain DRAM: no injected latency anywhere. The
// simulated CPU cache is disabled, flush and drain are no-ops.
func DRAMProfile() Profile { return Profile{} }

// PMemProfile models Optane DCPMM in AppDirect mode. Reads pay ~3x DRAM
// latency on a cache miss (DRAM load ~85ns vs PMem ~300ns random read).
// Writes are posted: clwb pushes lines toward the write-pending queue at
// modest cost, and most of the persistence latency is paid at the sfence
// barrier — matching how ADR platforms behave and keeping the read/write
// asymmetry (C2) visible.
func PMemProfile() Profile {
	return Profile{
		ReadMiss:   220 * time.Nanosecond,
		WriteBlock: 150 * time.Nanosecond,
		FlushLine:  30 * time.Nanosecond,
		Drain:      400 * time.Nanosecond,
	}
}

// zero reports whether the profile injects no latency at all.
func (p Profile) zero() bool {
	return p.ReadMiss == 0 && p.WriteBlock == 0 && p.FlushLine == 0 && p.Drain == 0
}

// spinWait busy-loops for approximately d. It deliberately avoids
// time.Sleep, whose granularity (>=1us on Linux) would swamp memory-scale
// latencies.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}
