package pmem

import "sync"

// Simulated CPU cache. Loads from the device first probe this cache: a hit
// is free, a miss pays the device read latency (C1) and installs the line.
// The cache only tracks tags (which lines are resident), never data — the
// data always lives in the device's CPU view. This is sufficient to model
// hot-vs-cold behaviour, which drives the paper's "hot run" results where
// PMem latency is hidden by the CPU caches.

const (
	// LineSize is the CPU cache line size in bytes.
	LineSize = 64
	// BlockSize is the DCPMM internal write block size in bytes (C3).
	BlockSize = 256
	cacheWays = 8
)

type cacheSet struct {
	mu   sync.Mutex
	tags [cacheWays]uint64 // line number + 1; 0 means empty
	hand uint8             // round-robin eviction cursor
}

type cacheSim struct {
	sets []cacheSet
	mask uint64
}

// newCacheSim builds a cache covering capacityBytes with 64-byte lines and
// 8-way associativity. capacityBytes is rounded to a power-of-two set count.
func newCacheSim(capacityBytes int) *cacheSim {
	lines := capacityBytes / LineSize
	numSets := 1
	for numSets*cacheWays < lines {
		numSets <<= 1
	}
	return &cacheSim{sets: make([]cacheSet, numSets), mask: uint64(numSets - 1)}
}

// touch probes the cache for the given line number and installs it on a
// miss. It reports whether the probe hit.
func (c *cacheSim) touch(line uint64) bool {
	set := &c.sets[line&c.mask]
	tag := line + 1
	set.mu.Lock()
	for i := range set.tags {
		if set.tags[i] == tag {
			set.mu.Unlock()
			return true
		}
	}
	set.tags[set.hand] = tag
	set.hand = (set.hand + 1) % cacheWays
	set.mu.Unlock()
	return false
}

// invalidate drops the line if resident (used by crash simulation so that
// post-crash reads are cold again).
func (c *cacheSim) invalidate(line uint64) {
	set := &c.sets[line&c.mask]
	tag := line + 1
	set.mu.Lock()
	for i := range set.tags {
		if set.tags[i] == tag {
			set.tags[i] = 0
		}
	}
	set.mu.Unlock()
}

// invalidateAll empties the cache (full power-cycle).
func (c *cacheSim) invalidateAll() {
	for i := range c.sets {
		set := &c.sets[i]
		set.mu.Lock()
		set.tags = [cacheWays]uint64{}
		set.hand = 0
		set.mu.Unlock()
	}
}
