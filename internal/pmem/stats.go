package pmem

import "sync/atomic"

// Stats holds access counters for a Device. All counters are updated
// atomically; read a consistent-enough view with Snapshot.
type Stats struct {
	Reads       atomic.Uint64 // 8-byte loads
	Writes      atomic.Uint64 // 8-byte stores
	CacheHits   atomic.Uint64 // loads served by the simulated CPU cache
	CacheMisses atomic.Uint64 // loads that paid the device read latency
	LineFlushes atomic.Uint64 // clwb-equivalent cache line flushes
	BlockWrites atomic.Uint64 // 256-byte internal block writes (C3)
	Drains      atomic.Uint64 // sfence-equivalent barriers
	Crashes     atomic.Uint64 // simulated power failures
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Reads       uint64
	Writes      uint64
	CacheHits   uint64
	CacheMisses uint64
	LineFlushes uint64
	BlockWrites uint64
	Drains      uint64
	Crashes     uint64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Reads:       s.Reads.Load(),
		Writes:      s.Writes.Load(),
		CacheHits:   s.CacheHits.Load(),
		CacheMisses: s.CacheMisses.Load(),
		LineFlushes: s.LineFlushes.Load(),
		BlockWrites: s.BlockWrites.Load(),
		Drains:      s.Drains.Load(),
		Crashes:     s.Crashes.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Reads.Store(0)
	s.Writes.Store(0)
	s.CacheHits.Store(0)
	s.CacheMisses.Store(0)
	s.LineFlushes.Store(0)
	s.BlockWrites.Store(0)
	s.Drains.Store(0)
	s.Crashes.Store(0)
}

// Sub returns the delta s - o, counter-wise. Useful for per-experiment
// accounting.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Reads:       s.Reads - o.Reads,
		Writes:      s.Writes - o.Writes,
		CacheHits:   s.CacheHits - o.CacheHits,
		CacheMisses: s.CacheMisses - o.CacheMisses,
		LineFlushes: s.LineFlushes - o.LineFlushes,
		BlockWrites: s.BlockWrites - o.BlockWrites,
		Drains:      s.Drains - o.Drains,
		Crashes:     s.Crashes - o.Crashes,
	}
}
