package pmem

import (
	"bytes"
	"testing"
)

// runToCrash executes fn, recovering an injected crash. Any other panic is
// re-thrown.
func runToCrash(fn func()) (ic *InjectedCrash) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		c, ok := r.(*InjectedCrash)
		if !ok {
			panic(r)
		}
		ic = c
	}()
	fn()
	return nil
}

// fourLineWorkload writes and flushes four lines, then drains: 4 EvFlush
// events + 1 EvDrain.
func fourLineWorkload(dev *Device) {
	for i := 0; i < 4; i++ {
		off := uint64(i) * LineSize
		dev.WriteU64(off, uint64(i+1))
		dev.Flush(off, 8)
	}
	dev.Drain()
}

func TestCrashCountOnly(t *testing.T) {
	dev := New(Config{Name: "t", Size: 4096, Persistent: true})
	dev.ArmCrash(EvFlush|EvDrain, 0)
	fourLineWorkload(dev)
	n, fired := dev.DisarmCrash()
	if fired {
		t.Fatal("count-only mode fired a crash")
	}
	if n != 5 {
		t.Fatalf("event count = %d, want 5 (4 line flushes + 1 drain)", n)
	}
}

func TestCrashBeforeKthEvent(t *testing.T) {
	// Enumerate every flush/drain point of the workload: crash before
	// event k must leave exactly the first k-1 flushed lines durable.
	for k := uint64(1); k <= 5; k++ {
		dev := New(Config{Name: "t", Size: 4096, Persistent: true})
		dev.ArmCrash(EvFlush|EvDrain, k)
		ic := runToCrash(func() { fourLineWorkload(dev) })
		if ic == nil {
			t.Fatalf("k=%d: no crash fired", k)
		}
		if ic.Seq != k {
			t.Fatalf("k=%d: crash fired at seq %d", k, ic.Seq)
		}
		wantEv := EvFlush
		if k == 5 {
			wantEv = EvDrain
		}
		if ic.Event != wantEv {
			t.Fatalf("k=%d: crash event = %v, want %v", k, ic.Event, wantEv)
		}
		dev.DisarmCrash()
		dev.Crash()
		for i := uint64(0); i < 4; i++ {
			got := dev.ReadU64(i * LineSize)
			want := uint64(0)
			if i < k-1 {
				want = i + 1 // flush events 1..k-1 completed
			}
			if got != want {
				t.Errorf("k=%d: line %d after crash = %d, want %d", k, i, got, want)
			}
		}
	}
}

func TestCrashStoreEvents(t *testing.T) {
	dev := New(Config{Name: "t", Size: 4096, Persistent: true})
	// Crash before the 2nd store: the first store was persisted and
	// survives, the second never happened.
	dev.ArmCrash(EvStore, 2)
	ic := runToCrash(func() {
		dev.WriteU64(0, 7)
		dev.Persist(0, 8)
		dev.WriteU64(8, 9)
		dev.Persist(8, 8)
	})
	if ic == nil || ic.Event != EvStore || ic.Seq != 2 {
		t.Fatalf("crash = %+v, want seq 2 of EvStore", ic)
	}
	dev.Crash()
	if a, b := dev.ReadU64(0), dev.ReadU64(8); a != 7 || b != 0 {
		t.Fatalf("after crash before 2nd store: words = %d,%d, want 7,0", a, b)
	}
}

func TestMediaFrozenAfterFire(t *testing.T) {
	dev := New(Config{Name: "t", Size: 4096, Persistent: true})
	dev.ArmCrash(EvFlush, 1)
	ic := runToCrash(func() {
		dev.WriteU64(0, 1)
		dev.Flush(0, 8)
	})
	if ic == nil {
		t.Fatal("no crash fired")
	}
	if !dev.CrashFired() {
		t.Fatal("CrashFired = false after fire")
	}
	// Anything "persisted" while unwinding (the pmemobj rollback path)
	// must not reach media: the power is already off.
	dev.WriteU64(LineSize, 42)
	dev.Persist(LineSize, 8)
	if _, fired := dev.DisarmCrash(); !fired {
		t.Fatal("DisarmCrash reported fired=false")
	}
	dev.Crash()
	if v := dev.ReadU64(LineSize); v != 0 {
		t.Fatalf("post-fire flush reached media: %d", v)
	}
}

func TestArmCrashRandomDeterministic(t *testing.T) {
	dev := New(Config{Name: "t", Size: 4096, Persistent: true})
	k1 := dev.ArmCrashRandom(EvFlush, 12345, 100)
	dev.DisarmCrash()
	k2 := dev.ArmCrashRandom(EvFlush, 12345, 100)
	dev.DisarmCrash()
	if k1 != k2 {
		t.Fatalf("same seed chose different points: %d vs %d", k1, k2)
	}
	if k1 < 1 || k1 > 100 {
		t.Fatalf("chosen point %d outside [1,100]", k1)
	}
}

func TestCrashDisarmsController(t *testing.T) {
	dev := New(Config{Name: "t", Size: 4096, Persistent: true})
	dev.ArmCrash(EvFlush, 1)
	dev.Crash()
	if dev.crashctl.Load() != nil {
		t.Fatal("Crash left the controller armed")
	}
	dev.WriteU64(0, 1)
	dev.Flush(0, 8) // must not panic
}

func TestLoadZeroesTail(t *testing.T) {
	// Save a short image from one device, dirty a second device beyond
	// the image length, load — the tail must be zero in both views.
	src := New(Config{Name: "src", Size: 4096, Persistent: true})
	src.WriteU64(0, 11)
	src.Persist(0, 8)
	var img bytes.Buffer
	if err := src.Save(&img); err != nil {
		t.Fatal(err)
	}

	dst := New(Config{Name: "dst", Size: 4096, Persistent: true})
	dst.WriteU64(2048, 99)
	dst.Persist(2048, 8)
	if err := dst.Load(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	if v := dst.ReadU64(0); v != 11 {
		t.Fatalf("word 0 after load = %d, want 11", v)
	}
	if v := dst.ReadU64(2048); v != 0 {
		t.Fatalf("CPU view tail after load = %d, want 0", v)
	}
	dst.Crash() // restores from media: the media tail must be zero too
	if v := dst.ReadU64(2048); v != 0 {
		t.Fatalf("media tail after load+crash = %d, want 0", v)
	}
}
