package pmem

import (
	"fmt"
	"os"
	"sync"
)

// StrictEnv is the environment variable that force-enables strict flush
// checking for every persistent device, equivalent to Config.StrictFlush.
const StrictEnv = "POSEIDON_PMEM_STRICT"

// strictState implements the runtime counterpart of the poseidonlint
// flush-discipline pass (a pmemcheck-style dynamic checker). It tracks
// the flush state of every cache line of a persistent device:
//
//   - a store marks its lines dirty;
//   - Flush makes the lines durable and clears all tracking for them;
//   - Drain (the sfence point where code asserts "everything I flushed
//     is now persistent") promotes dirty lines that carry no exemption
//     to leaked: the program believes a persist point has passed, but
//     the line never reached media;
//   - a CPU-visible read of a leaked line panics, because the reader
//     may now act on data that a crash would silently roll back.
//
// Two exemptions keep the checker honest about deliberate volatility:
// lines covered by a transaction's undo log (NoteUndoCovered, called
// from pmemobj's Snapshot/NoteWrite paths) are recoverable even while
// unflushed, and lines touched by CompareAndSwapU64 are treated as
// volatile synchronization words (MVTO write locks, §5.1) whose loss on
// crash is part of the protocol. CAS exemptions are sticky until the
// line is flushed AND a crash/reload resets the device.
type strictState struct {
	mu     sync.Mutex
	dirty  map[uint64]struct{} // stored, not yet flushed
	leaked map[uint64]struct{} // dirty across a Drain with no exemption
	exempt map[uint64]struct{} // undo-covered; cleared by Flush
	volat  map[uint64]struct{} // CAS-touched sync words; cleared by reset only
}

func newStrictState() *strictState {
	return &strictState{
		dirty:  make(map[uint64]struct{}),
		leaked: make(map[uint64]struct{}),
		exempt: make(map[uint64]struct{}),
		volat:  make(map[uint64]struct{}),
	}
}

func strictEnvEnabled() bool { return os.Getenv(StrictEnv) == "1" }

// StrictFlush reports whether strict flush checking is active on this
// device.
func (d *Device) StrictFlush() bool { return d.strict != nil }

func (d *Device) strictStore(off, n uint64) {
	s := d.strict
	if s == nil || n == 0 {
		return
	}
	first, last := off/LineSize, (off+n-1)/LineSize
	s.mu.Lock()
	for line := first; line <= last; line++ {
		s.dirty[line] = struct{}{}
	}
	s.mu.Unlock()
}

func (d *Device) strictRead(off, n uint64) {
	s := d.strict
	if s == nil || n == 0 {
		return
	}
	first, last := off/LineSize, (off+n-1)/LineSize
	s.mu.Lock()
	for line := first; line <= last; line++ {
		if _, bad := s.leaked[line]; bad {
			s.mu.Unlock()
			panic(fmt.Sprintf(
				"pmem: %s: strict: read of offset %#x observes line %#x that was "+
					"stored but never flushed before a Drain barrier; a crash here "+
					"would silently revert it (missing Flush/Persist, or missing "+
					"undo-log coverage)", d.name, off, line))
		}
	}
	s.mu.Unlock()
}

// strictCAS marks the lines touched by CompareAndSwapU64 as volatile
// synchronization words: they are exempt from leak promotion until the
// device state is reset.
func (d *Device) strictCAS(off, n uint64) {
	s := d.strict
	if s == nil {
		return
	}
	first, last := off/LineSize, (off+n-1)/LineSize
	s.mu.Lock()
	for line := first; line <= last; line++ {
		s.volat[line] = struct{}{}
		delete(s.leaked, line)
	}
	s.mu.Unlock()
}

func (d *Device) strictFlush(off, n uint64) {
	s := d.strict
	if s == nil || n == 0 {
		return
	}
	first, last := off/LineSize, (off+n-1)/LineSize
	s.mu.Lock()
	for line := first; line <= last; line++ {
		delete(s.dirty, line)
		delete(s.leaked, line)
		delete(s.exempt, line)
	}
	s.mu.Unlock()
}

func (d *Device) strictDrain() {
	s := d.strict
	if s == nil {
		return
	}
	s.mu.Lock()
	for line := range s.dirty {
		if _, ok := s.exempt[line]; ok {
			continue
		}
		if _, ok := s.volat[line]; ok {
			continue
		}
		s.leaked[line] = struct{}{}
	}
	s.mu.Unlock()
}

// strictReset clears all tracking. Called on Crash and Load: both
// replace the CPU view with a consistent media image, so every line is
// clean by definition afterwards.
func (d *Device) strictReset() {
	s := d.strict
	if s == nil {
		return
	}
	s.mu.Lock()
	clear(s.dirty)
	clear(s.leaked)
	clear(s.exempt)
	clear(s.volat)
	s.mu.Unlock()
}

// NoteUndoCovered records that [off, off+n) is covered by a
// transaction's undo log: even if a crash hits before the lines are
// flushed, recovery rolls them back to a consistent state, so strict
// mode must not treat them as leaked. The exemption ends when the lines
// are flushed (the transaction's commit persists them). No-op unless
// strict checking is active.
func (d *Device) NoteUndoCovered(off, n uint64) {
	s := d.strict
	if s == nil || n == 0 {
		return
	}
	first, last := off/LineSize, (off+n-1)/LineSize
	s.mu.Lock()
	for line := first; line <= last; line++ {
		s.exempt[line] = struct{}{}
		delete(s.leaked, line)
	}
	s.mu.Unlock()
}
