// Package pmem simulates byte-addressable persistent memory (Intel Optane
// DCPMM style) and plain DRAM behind a single Device abstraction.
//
// A persistent Device maintains two views of its contents:
//
//   - the CPU view: what loads and stores observe immediately, and
//   - the media view: what survives a simulated power failure.
//
// A store reaches the media view only once the cache lines containing it
// have been flushed (Flush, the clwb equivalent). Crash discards the CPU
// view and reloads it from media, so crash consistency is an observable,
// testable property of code built on this package rather than an
// assumption.
//
// The device also injects latency according to a Profile and a simulated
// CPU cache, modelling the paper's PMem characteristics C1 (higher latency
// than DRAM), C2 (read/write asymmetry) and C3 (256-byte internal write
// blocks with write combining). Characteristic C4 (8-byte failure-atomic
// stores) is modelled by making the 8-byte word the unit of storage:
// WriteU64 is atomic, anything larger must be made failure-atomic in
// software (see package pmemobj).
package pmem

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

const wordsPerLine = LineSize / 8

// Config configures a simulated device.
type Config struct {
	// Name identifies the device in error messages.
	Name string
	// Size is the device capacity in bytes. It is rounded up to a
	// multiple of the cache line size.
	Size int
	// Profile is the latency model. A zero Profile injects no latency.
	Profile Profile
	// CacheBytes is the capacity of the simulated CPU cache. Zero
	// disables the cache, making every load a miss when the profile
	// injects read latency.
	CacheBytes int
	// Persistent selects whether the device tracks a durable media view.
	// A volatile (DRAM) device loses everything on Crash.
	Persistent bool
	// StrictFlush enables the runtime flush checker on a persistent
	// device: a CPU-visible read of a line that was stored but never
	// flushed before a Drain barrier panics (see strict.go). Also
	// enabled by setting POSEIDON_PMEM_STRICT=1 in the environment.
	StrictFlush bool
}

// Device is a simulated memory device. All 8-byte accesses are atomic and
// safe for concurrent use; accesses narrower than 8 bytes are not atomic
// and must be externally synchronized (exactly like real hardware under
// the C4 guarantee).
type Device struct {
	name       string
	words      []uint64 // CPU view
	media      []uint64 // durable view; nil for volatile devices
	prof       Profile
	hasLatency bool
	cache      *cacheSim
	persistent bool
	strict     *strictState // non-nil only in strict flush-checking mode

	// crashctl is the armed crash-schedule controller (crashctl.go);
	// nil when disarmed. mediaMu orders media-view writers: Flush holds
	// it shared per line, Crash and Load hold it exclusively so a crash
	// never observes a half-copied line from a concurrent flusher.
	crashctl atomic.Pointer[crashCtl]
	mediaMu  sync.RWMutex

	epochMu     sync.Mutex
	epochBlocks map[uint64]struct{} // 256B blocks charged since last Drain

	// Stats counts accesses; safe for concurrent use.
	Stats Stats
}

// New creates a device. It panics on a non-positive size, which is always
// a programming error.
func New(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("pmem: device size must be positive")
	}
	size := (cfg.Size + LineSize - 1) / LineSize * LineSize
	d := &Device{
		name:       cfg.Name,
		words:      make([]uint64, size/8),
		prof:       cfg.Profile,
		hasLatency: !cfg.Profile.zero(),
		persistent: cfg.Persistent,
	}
	if cfg.Persistent {
		d.media = make([]uint64, size/8)
		d.epochBlocks = make(map[uint64]struct{})
		if cfg.StrictFlush || strictEnvEnabled() {
			d.strict = newStrictState()
		}
	}
	if cfg.CacheBytes > 0 {
		d.cache = newCacheSim(cfg.CacheBytes)
	}
	return d
}

// NewDRAM is a convenience constructor for a volatile zero-latency device.
func NewDRAM(size int) *Device {
	return New(Config{Name: "dram", Size: size})
}

// NewPMem is a convenience constructor for a persistent device with the
// default Optane-like latency profile and a 4 MiB simulated CPU cache.
func NewPMem(size int) *Device {
	return New(Config{
		Name:       "pmem",
		Size:       size,
		Profile:    PMemProfile(),
		CacheBytes: 4 << 20,
		Persistent: true,
	})
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return len(d.words) * 8 }

// Persistent reports whether the device survives Crash.
func (d *Device) Persistent() bool { return d.persistent }

// Name returns the configured device name.
func (d *Device) Name() string { return d.name }

func (d *Device) checkRange(off, n uint64) {
	if off+n > uint64(len(d.words))*8 || off+n < off {
		panic(fmt.Sprintf("pmem: %s: access [%d,%d) out of range (size %d)",
			d.name, off, off+n, len(d.words)*8))
	}
}

// chargeRead applies read latency for the line containing off.
func (d *Device) chargeRead(off uint64) {
	if !d.hasLatency {
		return
	}
	line := off / LineSize
	if d.cache != nil && d.cache.touch(line) {
		d.Stats.CacheHits.Add(1)
		return
	}
	d.Stats.CacheMisses.Add(1)
	spinWait(d.prof.ReadMiss)
}

// ReadU64 atomically loads the 8-byte word at off, which must be 8-byte
// aligned.
func (d *Device) ReadU64(off uint64) uint64 {
	d.checkRange(off, 8)
	d.Stats.Reads.Add(1)
	d.chargeRead(off)
	d.strictRead(off, 8)
	return atomic.LoadUint64(&d.words[off/8])
}

// WriteU64 atomically stores v at off (8-byte aligned). The store is
// volatile until the containing line is flushed.
func (d *Device) WriteU64(off uint64, v uint64) {
	d.checkRange(off, 8)
	d.Stats.Writes.Add(1)
	d.crashPoint(EvStore)
	if d.cache != nil {
		d.cache.touch(off / LineSize) // write-allocate
	}
	d.strictStore(off, 8)
	atomic.StoreUint64(&d.words[off/8], v)
}

// CompareAndSwapU64 performs an atomic CaS on the word at off. This is the
// primitive the MVTO protocol uses for write-locking records (§5.1).
func (d *Device) CompareAndSwapU64(off, old, new uint64) bool {
	d.checkRange(off, 8)
	d.Stats.Reads.Add(1)
	d.Stats.Writes.Add(1)
	d.crashPoint(EvStore)
	d.chargeRead(off)
	d.strictCAS(off, 8)
	return atomic.CompareAndSwapUint64(&d.words[off/8], old, new)
}

// ReadU32 loads the 4-byte value at off (4-byte aligned). Not atomic with
// respect to writers of the other half of the containing word.
func (d *Device) ReadU32(off uint64) uint32 {
	d.checkRange(off, 4)
	d.Stats.Reads.Add(1)
	d.chargeRead(off)
	d.strictRead(off, 4)
	w := atomic.LoadUint64(&d.words[off/8])
	if off%8 == 0 {
		return uint32(w)
	}
	return uint32(w >> 32)
}

// WriteU32 stores a 4-byte value at off (4-byte aligned). The containing
// word is updated with a read-modify-write; callers must hold the record's
// write lock, mirroring the hardware rule that only 8-byte stores are
// failure-atomic (C4).
func (d *Device) WriteU32(off uint64, v uint32) {
	d.checkRange(off, 4)
	d.Stats.Writes.Add(1)
	d.crashPoint(EvStore)
	if d.cache != nil {
		d.cache.touch(off / LineSize)
	}
	d.strictStore(off, 4)
	idx := off / 8
	w := atomic.LoadUint64(&d.words[idx])
	if off%8 == 0 {
		w = (w &^ 0xFFFFFFFF) | uint64(v)
	} else {
		w = (w & 0xFFFFFFFF) | uint64(v)<<32
	}
	atomic.StoreUint64(&d.words[idx], w)
}

// ReadWords bulk-loads len(dst) words starting at off (8-byte aligned).
func (d *Device) ReadWords(off uint64, dst []uint64) {
	d.checkRange(off, uint64(len(dst))*8)
	d.Stats.Reads.Add(uint64(len(dst)))
	d.strictRead(off, uint64(len(dst))*8)
	for i := range dst {
		if i%wordsPerLine == 0 || i == 0 {
			d.chargeRead(off + uint64(i)*8)
		}
		dst[i] = atomic.LoadUint64(&d.words[off/8+uint64(i)])
	}
}

// WriteWords bulk-stores src starting at off (8-byte aligned).
func (d *Device) WriteWords(off uint64, src []uint64) {
	d.checkRange(off, uint64(len(src))*8)
	d.Stats.Writes.Add(uint64(len(src)))
	d.crashPoint(EvStore)
	d.strictStore(off, uint64(len(src))*8)
	for i, v := range src {
		if d.cache != nil && (i%wordsPerLine == 0 || i == 0) {
			d.cache.touch((off + uint64(i)*8) / LineSize)
		}
		atomic.StoreUint64(&d.words[off/8+uint64(i)], v)
	}
}

// ReadBytes fills dst from the device starting at off, which must be
// 8-byte aligned. Partial trailing words are handled.
func (d *Device) ReadBytes(off uint64, dst []byte) {
	d.checkRange(off, uint64(len(dst)))
	if off%8 != 0 {
		panic("pmem: ReadBytes offset must be 8-byte aligned")
	}
	d.strictRead(off, uint64(len(dst)))
	var buf [8]byte
	for i := 0; i < len(dst); i += 8 {
		if uint64(i)%LineSize == 0 {
			d.chargeRead(off + uint64(i))
		}
		w := atomic.LoadUint64(&d.words[off/8+uint64(i/8)])
		binary.LittleEndian.PutUint64(buf[:], w)
		copy(dst[i:], buf[:])
	}
	d.Stats.Reads.Add(uint64((len(dst) + 7) / 8))
}

// WriteBytes stores src to the device starting at off (8-byte aligned). A
// partial trailing word preserves the bytes beyond src.
func (d *Device) WriteBytes(off uint64, src []byte) {
	d.checkRange(off, uint64(len(src)))
	if off%8 != 0 {
		panic("pmem: WriteBytes offset must be 8-byte aligned")
	}
	d.crashPoint(EvStore)
	d.strictStore(off, uint64(len(src)))
	var buf [8]byte
	for i := 0; i < len(src); i += 8 {
		idx := off/8 + uint64(i/8)
		if d.cache != nil && uint64(i)%LineSize == 0 {
			d.cache.touch((off + uint64(i)) / LineSize)
		}
		if len(src)-i >= 8 {
			atomic.StoreUint64(&d.words[idx], binary.LittleEndian.Uint64(src[i:]))
			continue
		}
		w := atomic.LoadUint64(&d.words[idx])
		binary.LittleEndian.PutUint64(buf[:], w)
		copy(buf[:], src[i:])
		atomic.StoreUint64(&d.words[idx], binary.LittleEndian.Uint64(buf[:]))
	}
	d.Stats.Writes.Add(uint64((len(src) + 7) / 8))
}

// Zero clears n bytes starting at off (both 8-byte aligned).
func (d *Device) Zero(off, n uint64) {
	d.checkRange(off, n)
	d.crashPoint(EvStore)
	d.strictStore(off, n)
	for i := uint64(0); i < n; i += 8 {
		atomic.StoreUint64(&d.words[(off+i)/8], 0)
	}
	d.Stats.Writes.Add(n / 8)
}

// Flush writes back (clwb) every cache line overlapping [off, off+n) to the
// durable media view. On a volatile device it only updates statistics. The
// cost model charges one 256-byte block write per block per flush epoch
// (write combining, C3) and a smaller marginal cost for further lines
// within an already-charged block.
func (d *Device) Flush(off, n uint64) {
	if n == 0 {
		return
	}
	d.checkRange(off, n)
	d.strictFlush(off, n)
	first := off / LineSize
	last := (off + n - 1) / LineSize
	d.Stats.LineFlushes.Add(last - first + 1)
	for line := first; line <= last; line++ {
		if d.media != nil {
			d.flushLine(line)
		}
		if d.hasLatency {
			d.chargeFlush(line)
		}
	}
}

// flushLine writes one cache line back to media. The crash hook runs
// before the lock is taken (an injected panic must not leak a held lock)
// and before any word of the line reaches media, so crash point k sees
// lines 1..k-1 durable and line k not at all — never a torn line.
func (d *Device) flushLine(line uint64) {
	d.crashPoint(EvFlush)
	d.mediaMu.RLock()
	defer d.mediaMu.RUnlock()
	if d.mediaFrozen() {
		return
	}
	base := line * wordsPerLine
	for w := uint64(0); w < wordsPerLine; w++ {
		atomic.StoreUint64(&d.media[base+w], atomic.LoadUint64(&d.words[base+w]))
	}
}

func (d *Device) chargeFlush(line uint64) {
	block := line * LineSize / BlockSize
	d.epochMu.Lock()
	_, charged := d.epochBlocks[block]
	if !charged {
		d.epochBlocks[block] = struct{}{}
	}
	d.epochMu.Unlock()
	if charged {
		spinWait(d.prof.FlushLine)
	} else {
		d.Stats.BlockWrites.Add(1)
		spinWait(d.prof.WriteBlock)
	}
}

// Drain is the sfence equivalent: it ends the current write-combining
// epoch and charges the barrier cost. In this simulation flushed lines are
// already durable, so Drain affects only the cost model; ordering-related
// bugs surface through the crash tests of package pmemobj instead.
func (d *Device) Drain() {
	d.crashPoint(EvDrain)
	d.Stats.Drains.Add(1)
	d.strictDrain()
	if d.hasLatency {
		d.epochMu.Lock()
		// Re-make instead of clear() once the map has grown: clearing a
		// map walks its full capacity, which would make barriers after a
		// large flush epoch (e.g. bulk load) absurdly expensive forever.
		if len(d.epochBlocks) > 1024 {
			d.epochBlocks = make(map[uint64]struct{})
		} else {
			clear(d.epochBlocks)
		}
		d.epochMu.Unlock()
		spinWait(d.prof.Drain)
	}
}

// Persist is the common flush-then-drain sequence.
func (d *Device) Persist(off, n uint64) {
	d.Flush(off, n)
	d.Drain()
}

// Crash simulates a power failure: the CPU view is replaced by the media
// view and the simulated CPU cache is invalidated. Unflushed stores are
// lost. On a volatile device the entire contents are zeroed. Crash holds
// the media lock exclusively for the whole discard, so it is safe against
// concurrent flushers: the restored image never mixes a half-copied line.
// Crash also disarms any crash controller; call DisarmCrash first if the
// event count is needed.
func (d *Device) Crash() {
	d.Stats.Crashes.Add(1)
	d.crashctl.Store(nil)
	d.strictReset()
	d.mediaMu.Lock()
	if d.media == nil {
		for i := range d.words {
			atomic.StoreUint64(&d.words[i], 0)
		}
	} else {
		for i := range d.words {
			atomic.StoreUint64(&d.words[i], atomic.LoadUint64(&d.media[i]))
		}
	}
	d.mediaMu.Unlock()
	if d.cache != nil {
		d.cache.invalidateAll()
	}
	if d.epochBlocks != nil {
		d.epochMu.Lock()
		clear(d.epochBlocks)
		d.epochMu.Unlock()
	}
}

// DropCache invalidates the simulated CPU cache without touching data,
// turning the next accesses into cold misses (used by cold-run
// benchmarks).
func (d *Device) DropCache() {
	if d.cache != nil {
		d.cache.invalidateAll()
	}
}

// deviceMagic guards Save/Load framing.
const deviceMagic = 0x504d454d44455631 // "PMEMDEV1"

// Save serializes the durable media view (or the CPU view of a volatile
// device) to w. Together with Load this lets examples persist a pool
// across process runs, standing in for a DAX-mounted file.
func (d *Device) Save(w io.Writer) error {
	src := d.media
	if src == nil {
		src = d.words
	}
	// Trim trailing zero words: pool images are typically sparse, and a
	// fresh device (and its media view) is zero anyway, so Load restores
	// the identical state from the truncated image.
	used := len(src)
	for used > 0 && atomic.LoadUint64(&src[used-1]) == 0 {
		used--
	}
	src = src[:used]
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], deviceMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(src)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pmem: save header: %w", err)
	}
	buf := make([]byte, 64*1024)
	for i := 0; i < len(src); {
		n := 0
		for n+8 <= len(buf) && i < len(src) {
			binary.LittleEndian.PutUint64(buf[n:], atomic.LoadUint64(&src[i]))
			n += 8
			i++
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return fmt.Errorf("pmem: save body: %w", err)
		}
	}
	return nil
}

// Load restores both views from a stream produced by Save. The stored size
// must not exceed the device capacity. Words beyond the stored image are
// zeroed in both views, so loading a (shorter) image into a used device
// yields the same state as loading it into a fresh one — crash-exploration
// drivers rely on this to reuse a single device across iterations. Like
// Crash, Load holds the media lock exclusively for the whole restore.
func (d *Device) Load(r io.Reader) error {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("pmem: load header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != deviceMagic {
		return fmt.Errorf("pmem: load: bad magic")
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > uint64(len(d.words)) {
		return fmt.Errorf("pmem: load: stored size %d words exceeds device capacity %d", n, len(d.words))
	}
	d.mediaMu.Lock()
	defer d.mediaMu.Unlock()
	buf := make([]byte, 64*1024)
	i := uint64(0)
	for i < n {
		want := uint64(len(buf))
		if rem := (n - i) * 8; rem < want {
			want = rem
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return fmt.Errorf("pmem: load body: %w", err)
		}
		for j := uint64(0); j < want; j += 8 {
			v := binary.LittleEndian.Uint64(buf[j:])
			atomic.StoreUint64(&d.words[i], v)
			if d.media != nil {
				atomic.StoreUint64(&d.media[i], v)
			}
			i++
		}
	}
	for ; i < uint64(len(d.words)); i++ {
		atomic.StoreUint64(&d.words[i], 0)
		if d.media != nil {
			atomic.StoreUint64(&d.media[i], 0)
		}
	}
	if d.cache != nil {
		d.cache.invalidateAll()
	}
	d.strictReset()
	return nil
}
