package pmem

import (
	"sync"
	"testing"
)

func TestCacheSimHitAfterInstall(t *testing.T) {
	c := newCacheSim(64 * 1024)
	if c.touch(5) {
		t.Error("first touch reported a hit")
	}
	if !c.touch(5) {
		t.Error("second touch reported a miss")
	}
}

func TestCacheSimEviction(t *testing.T) {
	c := newCacheSim(cacheWays * LineSize) // exactly one set
	if len(c.sets) != 1 {
		t.Fatalf("expected 1 set, got %d", len(c.sets))
	}
	for i := uint64(0); i < cacheWays; i++ {
		c.touch(i)
	}
	c.touch(100) // evicts one resident line
	hits := 0
	for i := uint64(0); i < cacheWays; i++ {
		// touch() installs on miss, which can evict lines we are about to
		// probe; count hits via direct tag inspection instead.
		set := &c.sets[0]
		set.mu.Lock()
		for _, tag := range set.tags {
			if tag == i+1 {
				hits++
			}
		}
		set.mu.Unlock()
	}
	if hits != cacheWays-1 {
		t.Errorf("%d original lines resident, want %d", hits, cacheWays-1)
	}
}

func TestCacheSimInvalidate(t *testing.T) {
	c := newCacheSim(64 * 1024)
	c.touch(7)
	c.invalidate(7)
	if c.touch(7) {
		t.Error("invalidated line still resident")
	}
	c.invalidateAll()
	if c.touch(7) {
		t.Error("line resident after invalidateAll")
	}
}

func TestCacheSimLinesMapToDistinctSets(t *testing.T) {
	c := newCacheSim(256 * 1024)
	n := uint64(len(c.sets))
	// Adjacent lines must spread across sets so sequential scans do not
	// thrash a single set.
	if (0&c.mask) == (1&c.mask) && n > 1 {
		t.Error("adjacent lines map to the same set")
	}
}

func TestCacheSimConcurrentTouch(t *testing.T) {
	c := newCacheSim(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < 10000; i++ {
				c.touch(seed*10000 + i)
				c.touch(seed * 10000) // repeated hot line
			}
		}(uint64(w))
	}
	wg.Wait() // success criterion: no race detector report, no panic
}
