package pmem

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadWriteU64(t *testing.T) {
	d := NewDRAM(1024)
	d.WriteU64(0, 42)
	d.WriteU64(1016, ^uint64(0))
	if got := d.ReadU64(0); got != 42 {
		t.Errorf("ReadU64(0) = %d, want 42", got)
	}
	if got := d.ReadU64(1016); got != ^uint64(0) {
		t.Errorf("ReadU64(1016) = %d, want max", got)
	}
	if got := d.ReadU64(8); got != 0 {
		t.Errorf("untouched word = %d, want 0", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := NewDRAM(64)
	cases := []func(){
		func() { d.ReadU64(64) },
		func() { d.WriteU64(64, 1) },
		func() { d.ReadU64(^uint64(0) - 3) }, // overflow wrap
		func() { d.Flush(0, 128) },
		func() { d.ReadBytes(0, make([]byte, 65)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestU32Halves(t *testing.T) {
	d := NewDRAM(64)
	d.WriteU32(0, 0x11223344)
	d.WriteU32(4, 0xAABBCCDD)
	if got := d.ReadU32(0); got != 0x11223344 {
		t.Errorf("low half = %#x", got)
	}
	if got := d.ReadU32(4); got != 0xAABBCCDD {
		t.Errorf("high half = %#x", got)
	}
	if got := d.ReadU64(0); got != 0xAABBCCDD11223344 {
		t.Errorf("whole word = %#x", got)
	}
	// Overwriting one half must not disturb the other.
	d.WriteU32(0, 7)
	if got := d.ReadU32(4); got != 0xAABBCCDD {
		t.Errorf("high half after low write = %#x", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	d := NewDRAM(256)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 100} {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i*7 + n)
		}
		d.WriteBytes(64, src)
		dst := make([]byte, n)
		d.ReadBytes(64, dst)
		if !bytes.Equal(src, dst) {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
}

func TestWriteBytesPreservesTail(t *testing.T) {
	d := NewDRAM(64)
	d.WriteU64(0, 0xFFFFFFFFFFFFFFFF)
	d.WriteBytes(0, []byte{1, 2, 3}) // partial word write
	got := make([]byte, 8)
	d.ReadBytes(0, got)
	want := []byte{1, 2, 3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestCrashLosesUnflushedStores(t *testing.T) {
	d := New(Config{Name: "p", Size: 1024, Persistent: true})
	d.WriteU64(0, 1)
	d.WriteU64(512, 2)
	d.Persist(0, 8) // only the first store is made durable
	d.Crash()
	if got := d.ReadU64(0); got != 1 {
		t.Errorf("flushed store lost: got %d", got)
	}
	if got := d.ReadU64(512); got != 0 {
		t.Errorf("unflushed store survived crash: got %d", got)
	}
}

func TestCrashVolatileDeviceLosesEverything(t *testing.T) {
	d := NewDRAM(128)
	d.WriteU64(0, 99)
	d.Flush(0, 8) // no-op persistence on DRAM
	d.Crash()
	if got := d.ReadU64(0); got != 0 {
		t.Errorf("volatile device retained %d after crash", got)
	}
}

func TestFlushGranularityIsCacheLine(t *testing.T) {
	d := New(Config{Name: "p", Size: 256, Persistent: true})
	d.WriteU64(0, 10)
	d.WriteU64(56, 11) // same line as offset 0
	d.WriteU64(64, 12) // next line
	d.Persist(8, 8)    // flushing any byte of line 0 persists the whole line
	d.Crash()
	if d.ReadU64(0) != 10 || d.ReadU64(56) != 11 {
		t.Error("stores within the flushed line were lost")
	}
	if d.ReadU64(64) != 0 {
		t.Error("store in unflushed line survived")
	}
}

func TestCompareAndSwap(t *testing.T) {
	d := NewDRAM(64)
	d.WriteU64(0, 5)
	if !d.CompareAndSwapU64(0, 5, 6) {
		t.Fatal("CaS with matching old value failed")
	}
	if d.CompareAndSwapU64(0, 5, 7) {
		t.Fatal("CaS with stale old value succeeded")
	}
	if got := d.ReadU64(0); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
}

func TestConcurrentCASLocking(t *testing.T) {
	// Many goroutines competing for a CaS-based lock; exactly one must win
	// each round. This mirrors the MVTO txn-id write lock.
	d := NewDRAM(64)
	const rounds, workers = 100, 8
	for r := 0; r < rounds; r++ {
		var winners int32
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id uint64) {
				defer wg.Done()
				if d.CompareAndSwapU64(0, 0, id+1) {
					mu.Lock()
					winners++
					mu.Unlock()
				}
			}(uint64(w))
		}
		wg.Wait()
		if winners != 1 {
			t.Fatalf("round %d: %d winners, want 1", r, winners)
		}
		d.WriteU64(0, 0) // unlock
	}
}

func TestStatsCounting(t *testing.T) {
	d := New(Config{Name: "p", Size: 1024, Persistent: true})
	before := d.Stats.Snapshot()
	d.WriteU64(0, 1)
	d.ReadU64(0)
	d.Flush(0, 8)
	d.Drain()
	delta := d.Stats.Snapshot().Sub(before)
	if delta.Writes != 1 || delta.Reads != 1 || delta.LineFlushes != 1 || delta.Drains != 1 {
		t.Errorf("unexpected stats delta: %+v", delta)
	}
}

func TestWriteCombiningChargesPerBlock(t *testing.T) {
	d := New(Config{
		Name:       "p",
		Size:       1024,
		Persistent: true,
		Profile:    Profile{WriteBlock: 1}, // nonzero to enable accounting
	})
	// Four lines in one 256-byte block: one block write.
	d.Flush(0, 256)
	if got := d.Stats.BlockWrites.Load(); got != 1 {
		t.Errorf("flushing one block charged %d block writes, want 1", got)
	}
	d.Drain()
	// Two lines in different blocks: two block writes.
	d.Flush(0, 8)
	d.Flush(256, 8)
	if got := d.Stats.BlockWrites.Load(); got != 3 {
		t.Errorf("total block writes = %d, want 3", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := New(Config{Name: "p", Size: 512, Persistent: true})
	for i := uint64(0); i < 64; i++ {
		d.WriteU64(i*8, i*i+1)
	}
	d.Persist(0, 512)
	d.WriteU64(0, 12345) // durable view keeps the old value

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := New(Config{Name: "p2", Size: 512, Persistent: true})
	if err := d2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		if got := d2.ReadU64(i * 8); got != i*i+1 {
			t.Fatalf("word %d = %d, want %d", i, got, i*i+1)
		}
	}
}

func TestLoadRejectsOversizedImage(t *testing.T) {
	d := New(Config{Name: "p", Size: 1024, Persistent: true})
	d.WriteU64(512, 7) // beyond the small device's capacity
	d.Persist(512, 8)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	small := New(Config{Name: "s", Size: 64, Persistent: true})
	if err := small.Load(&buf); err == nil {
		t.Fatal("expected error loading oversized image")
	}
}

func TestSaveTrimsZeroTail(t *testing.T) {
	d := New(Config{Name: "p", Size: 1 << 20, Persistent: true})
	d.WriteU64(128, 42)
	d.Persist(128, 8)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 1024 {
		t.Errorf("sparse image is %d bytes; trailing zeros not trimmed", buf.Len())
	}
	d2 := New(Config{Name: "p2", Size: 1 << 20, Persistent: true})
	if err := d2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.ReadU64(128) != 42 {
		t.Error("trimmed image lost data")
	}
	if d2.ReadU64(1<<19) != 0 {
		t.Error("beyond-image region not zero")
	}
}

func TestPersistedDataSurvivesAnyCrashProperty(t *testing.T) {
	// Property: any word that was written and persisted before a crash is
	// readable with the same value after the crash.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(Config{Name: "p", Size: 4096, Persistent: true})
		persisted := map[uint64]uint64{}
		for i := 0; i < 50; i++ {
			off := uint64(rng.Intn(512)) * 8
			val := rng.Uint64()
			d.WriteU64(off, val)
			if rng.Intn(2) == 0 {
				d.Persist(off, 8)
				persisted[off] = val
				// Persisting a line may also persist neighbours written
				// earlier; drop any stale expectations for that line.
				line := off / LineSize
				for o := range persisted {
					if o/LineSize == line && o != off {
						delete(persisted, o)
					}
				}
			}
		}
		d.Crash()
		for off, val := range persisted {
			if d.ReadU64(off) != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCacheHitsOnHotData(t *testing.T) {
	d := New(Config{
		Name:       "p",
		Size:       8192,
		Persistent: true,
		Profile:    Profile{ReadMiss: 1},
		CacheBytes: 64 * 1024,
	})
	d.ReadU64(0) // cold
	d.ReadU64(0) // hot
	d.ReadU64(8) // same line, hot
	s := d.Stats.Snapshot()
	if s.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1", s.CacheMisses)
	}
	if s.CacheHits != 2 {
		t.Errorf("hits = %d, want 2", s.CacheHits)
	}
}

func TestCrashInvalidatesCache(t *testing.T) {
	d := New(Config{
		Name:       "p",
		Size:       8192,
		Persistent: true,
		Profile:    Profile{ReadMiss: 1},
		CacheBytes: 64 * 1024,
	})
	d.ReadU64(0)
	d.Crash()
	d.ReadU64(0)
	if got := d.Stats.CacheMisses.Load(); got != 2 {
		t.Errorf("misses after crash = %d, want 2 (cache must be cold)", got)
	}
}
