package pmem

// Crash-schedule controller: deterministic fault injection at the k-th
// durability event (store / flush-line / drain) on a persistent device.
//
// The paper's failure-atomicity claim (C4) is only as strong as the set of
// crash points it was tested at. Hand-picked Crash() sites sample that set;
// the controller enumerates it. A driver arms the controller, runs a
// workload, and the device panics with *InjectedCrash immediately BEFORE
// the k-th matching event takes its durable effect. "Before event k" makes
// the enumeration exhaustive without double-counting: crashing before
// flush-line k+1 is the same durable state as crashing after flush-line k,
// and the state after the final event is the non-crashing run.
//
// Once the crash fires the media view is frozen: no later Flush reaches
// media. This matters because the panic unwinds through pmemobj.RunTx,
// whose recover handler rolls the undo log back (writes + flushes) before
// re-panicking — on real hardware those instructions never execute, so the
// simulated media must not see them either. The driver then calls Crash(),
// which discards the CPU view and restores exactly the at-crash-point
// image, and reopens the pool to exercise recovery.
//
// The controller follows the strict-checker idiom (strict.go): a nil
// pointer when disarmed, so the hot paths pay one atomic load.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
)

// CrashEvents is a bitmask selecting which durability events the crash
// controller counts.
type CrashEvents uint8

const (
	// EvStore counts each store call into a persistent device (WriteU64,
	// WriteU32, WriteWords, WriteBytes, Zero, CompareAndSwapU64) as one
	// event, before the store lands in the CPU view.
	EvStore CrashEvents = 1 << iota
	// EvFlush counts each cache-line write-back inside Flush as one
	// event, before the line reaches the media view. A multi-line Flush
	// is several events: a crash between its lines is a torn flush.
	EvFlush
	// EvDrain counts each Drain (sfence) barrier as one event.
	EvDrain
)

// EvAll selects every event class.
const EvAll = EvStore | EvFlush | EvDrain

// String renders the mask in the form accepted by ParseCrashEvents,
// e.g. "flush|drain".
func (m CrashEvents) String() string {
	var parts []string
	if m&EvStore != 0 {
		parts = append(parts, "store")
	}
	if m&EvFlush != 0 {
		parts = append(parts, "flush")
	}
	if m&EvDrain != 0 {
		parts = append(parts, "drain")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// ParseCrashEvents parses a mask of the form "flush|drain" (any order,
// "store", "flush", "drain", or "all").
func ParseCrashEvents(s string) (CrashEvents, error) {
	var m CrashEvents
	for _, part := range strings.Split(s, "|") {
		switch strings.TrimSpace(part) {
		case "store":
			m |= EvStore
		case "flush":
			m |= EvFlush
		case "drain":
			m |= EvDrain
		case "all":
			m |= EvAll
		case "":
		default:
			return 0, fmt.Errorf("pmem: unknown crash event %q", part)
		}
	}
	if m == 0 {
		return 0, fmt.Errorf("pmem: empty crash event mask %q", s)
	}
	return m, nil
}

// InjectedCrash is the panic value thrown when an armed crash fires.
// Drivers recover it, call Device.Crash() and re-open the pool; any other
// panic value must be re-thrown.
type InjectedCrash struct {
	Dev   *Device
	Seq   uint64      // 1-based index of the event that was about to happen
	Event CrashEvents // the single event class that triggered
}

func (c *InjectedCrash) Error() string {
	return fmt.Sprintf("pmem: injected crash before event %d (%s) on %s",
		c.Seq, c.Event, c.Dev.Name())
}

type crashCtl struct {
	mask  CrashEvents
	armK  uint64 // fire before the armK-th matching event; 0 = count only
	count atomic.Uint64
	fired atomic.Bool
}

// ArmCrash arms the controller: the device will panic with *InjectedCrash
// immediately before the k-th event matching mask takes durable effect.
// k == 0 arms in count-only mode — no crash fires, and DisarmCrash reports
// how many matching events the workload generated (the N a driver then
// enumerates k = 1..N over). Arming replaces any previous controller.
func (d *Device) ArmCrash(mask CrashEvents, k uint64) {
	d.crashctl.Store(&crashCtl{mask: mask, armK: k})
}

// ArmCrashRandom arms a crash at a pseudo-random point k in [1, maxEvents],
// drawn from seed, and returns the chosen k so the schedule can be
// replayed deterministically with ArmCrash(mask, k).
func (d *Device) ArmCrashRandom(mask CrashEvents, seed int64, maxEvents uint64) uint64 {
	if maxEvents == 0 {
		maxEvents = 1
	}
	rng := rand.New(rand.NewSource(seed))
	k := uint64(rng.Int63n(int64(maxEvents))) + 1
	d.ArmCrash(mask, k)
	return k
}

// DisarmCrash removes the controller and reports the number of matching
// events observed and whether the crash fired. Call it before Crash():
// Crash also disarms, discarding the counters.
func (d *Device) DisarmCrash() (events uint64, fired bool) {
	c := d.crashctl.Swap(nil)
	if c == nil {
		return 0, false
	}
	return c.count.Load(), c.fired.Load()
}

// CrashFired reports whether an armed crash has fired (and the media view
// is therefore frozen).
func (d *Device) CrashFired() bool {
	c := d.crashctl.Load()
	return c != nil && c.fired.Load()
}

// crashPoint is the per-event hook. It must be called before the event's
// durable effect, and never while holding the media lock (the panic must
// not leak a held lock).
func (d *Device) crashPoint(ev CrashEvents) {
	c := d.crashctl.Load()
	if c == nil || c.mask&ev == 0 {
		return
	}
	seq := c.count.Add(1)
	if c.armK != 0 && seq == c.armK && c.fired.CompareAndSwap(false, true) {
		panic(&InjectedCrash{Dev: d, Seq: seq, Event: ev})
	}
}

// mediaFrozen reports whether an injected crash already fired, in which
// case flushes must no longer reach the media view: the stores executed
// during panic unwinding (e.g. the pmemobj rollback) happen after the
// simulated power failure.
func (d *Device) mediaFrozen() bool {
	c := d.crashctl.Load()
	return c != nil && c.fired.Load()
}
