package pmem

import (
	"sync"
	"testing"
	"time"
)

// Crash used to discard the CPU view without any synchronization against
// in-flight flushers, silently assuming a quiesced device. These tests pin
// the fixed contract: Crash holds the media lock exclusively for the whole
// discard.

func TestCrashBlocksOnMediaLock(t *testing.T) {
	// White-box: while a flusher holds the media lock (shared), Crash
	// must block rather than interleave its restore with the line copy.
	dev := New(Config{Name: "t", Size: 4096, Persistent: true})
	dev.mediaMu.RLock()
	done := make(chan struct{})
	go func() {
		dev.Crash()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Crash completed while a flusher held the media lock")
	case <-time.After(20 * time.Millisecond):
	}
	dev.mediaMu.RUnlock()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Crash did not complete after the media lock was released")
	}
}

func TestCrashConcurrentFlushers(t *testing.T) {
	// Stress: flushers each own one line and repeatedly persist an
	// equal-valued pair into it while another goroutine crashes the
	// device. Run under -race this exercises the Flush/Crash/Load lock
	// discipline; afterwards every line must hold a pair from a single
	// flush generation — a torn restore would mix two.
	dev := New(Config{Name: "race", Size: 1 << 16, Persistent: true})
	const flushers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < flushers; g++ {
		base := uint64(g) * LineSize
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dev.WriteU64(base, i)
				dev.WriteU64(base+8, i)
				dev.Flush(base, 16)
			}
		}()
	}

	for i := 0; i < 500; i++ {
		dev.Crash()
	}
	close(stop)
	wg.Wait()

	// Quiesced: one final clean generation per line, then a crash — the
	// restored pairs must match.
	for g := 0; g < flushers; g++ {
		base := uint64(g) * LineSize
		dev.WriteU64(base, ^uint64(g))
		dev.WriteU64(base+8, ^uint64(g))
		dev.Persist(base, 16)
	}
	dev.Crash()
	for g := 0; g < flushers; g++ {
		base := uint64(g) * LineSize
		a, b := dev.ReadU64(base), dev.ReadU64(base+8)
		if a != b {
			t.Errorf("line %d restored torn pair: %d vs %d", g, a, b)
		}
	}
}
