package pmem

import (
	"strings"
	"testing"
)

func newStrictDev(t *testing.T) *Device {
	t.Helper()
	return New(Config{Name: "strict-test", Size: 1 << 16, Persistent: true, StrictFlush: true})
}

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic = %v, want substring %q", r, substr)
		}
	}()
	fn()
}

func TestStrictLeakedReadPanics(t *testing.T) {
	d := newStrictDev(t)
	d.WriteU64(0, 42)
	d.Drain() // store crossed a drain barrier without a flush
	mustPanic(t, "strict", func() { d.ReadU64(0) })
}

func TestStrictFlushedReadOK(t *testing.T) {
	d := newStrictDev(t)
	d.WriteU64(0, 42)
	d.Persist(0, 8)
	if got := d.ReadU64(0); got != 42 {
		t.Fatalf("ReadU64 = %d, want 42", got)
	}
}

func TestStrictDirtyReadOK(t *testing.T) {
	// Reading your own unflushed store is fine until a drain claims a
	// persist point has passed.
	d := newStrictDev(t)
	d.WriteU64(0, 42)
	if got := d.ReadU64(0); got != 42 {
		t.Fatalf("ReadU64 = %d, want 42", got)
	}
}

func TestStrictUnrelatedPersistLeaks(t *testing.T) {
	// The classic missing-flush bug: store A, persist only B, read A.
	d := newStrictDev(t)
	d.WriteU64(0, 1)
	d.WriteU64(4096, 2)
	d.Persist(4096, 8)
	mustPanic(t, "strict", func() { d.ReadU64(0) })
}

func TestStrictUndoCoveredReadOK(t *testing.T) {
	d := newStrictDev(t)
	d.NoteUndoCovered(0, 64)
	d.WriteWords(0, []uint64{1, 2, 3})
	d.Drain()
	var dst [3]uint64
	d.ReadWords(0, dst[:]) // recoverable via the undo log: no panic
	// Flushing ends the exemption; a fresh store leaks again.
	d.Persist(0, 64)
	d.WriteU64(0, 9)
	d.Drain()
	mustPanic(t, "strict", func() { d.ReadU64(0) })
}

func TestStrictCASExempt(t *testing.T) {
	// CAS words are volatile synchronization state (MVTO write locks);
	// their lines never leak, even for plain follow-up stores (unlock).
	d := newStrictDev(t)
	if !d.CompareAndSwapU64(0, 0, 7) {
		t.Fatal("CAS failed")
	}
	d.WriteU64(0, 0)
	d.Drain()
	if got := d.ReadU64(0); got != 0 {
		t.Fatalf("ReadU64 = %d, want 0", got)
	}
}

func TestStrictCrashResets(t *testing.T) {
	d := newStrictDev(t)
	d.WriteU64(0, 42)
	d.Drain()
	d.Crash() // CPU view reloaded from media: consistent by definition
	if got := d.ReadU64(0); got != 0 {
		t.Fatalf("ReadU64 after crash = %d, want 0", got)
	}
}

func TestStrictDisabledByDefault(t *testing.T) {
	t.Setenv(StrictEnv, "") // hermetic even under POSEIDON_PMEM_STRICT=1 runs
	d := New(Config{Name: "lax", Size: 1 << 16, Persistent: true})
	if d.StrictFlush() {
		t.Fatal("strict mode on without opt-in")
	}
	d.WriteU64(0, 42)
	d.Drain()
	if got := d.ReadU64(0); got != 42 {
		t.Fatalf("ReadU64 = %d, want 42", got)
	}
}

func TestStrictEnvEnable(t *testing.T) {
	t.Setenv(StrictEnv, "1")
	if d := NewPMem(1 << 16); !d.StrictFlush() {
		t.Fatalf("%s=1 did not enable strict mode", StrictEnv)
	}
	// Volatile devices never track flush state.
	if d := NewDRAM(1 << 16); d.StrictFlush() {
		t.Fatal("strict mode enabled on a volatile device")
	}
}
