package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"poseidon/internal/storage"
)

// Index-agreement battery for the delta layer: randomized
// insert/delete/merge/publish/reopen schedules must keep delta ∪ base
// reads — Lookup, LookupFirst, Contains, Range, Scan, Len — in exact
// agreement with a map-based oracle, and the base tree structurally
// sound (CheckIntegrity) at every point. After a final merge the leaf
// chain itself (WalkLeaves) must equal the oracle, entry for entry.

// deltaOracle is the reference model: key -> set of ids.
type deltaOracle map[int64]map[uint64]bool

func (o deltaOracle) insert(k int64, id uint64) {
	if o[k] == nil {
		o[k] = make(map[uint64]bool)
	}
	o[k][id] = true
}

func (o deltaOracle) delete(k int64, id uint64) bool {
	if !o[k][id] {
		return false
	}
	delete(o[k], id)
	if len(o[k]) == 0 {
		delete(o, k)
	}
	return true
}

func (o deltaOracle) ids(k int64) []uint64 {
	if len(o[k]) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(o[k]))
	for id := range o[k] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// pairs returns every (key, id) in (key, id) order, bounds inclusive.
func (o deltaOracle) pairs(lo, hi int64) (out [][2]int64) {
	for k, ids := range o {
		if k < lo || k > hi {
			continue
		}
		for id := range ids {
			out = append(out, [2]int64{k, int64(id)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func (o deltaOracle) total() uint64 {
	var n uint64
	for _, ids := range o {
		n += uint64(len(ids))
	}
	return n
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyDeltaAgreement checks every read path against the oracle over
// the key universe [0, keySpace).
func verifyDeltaAgreement(t *testing.T, tree *Tree, o deltaOracle, keySpace int64) {
	t.Helper()
	if tree.Len() != o.total() {
		t.Fatalf("Len = %d, oracle %d", tree.Len(), o.total())
	}
	for k := int64(0); k < keySpace; k++ {
		want := o.ids(k)
		if got := tree.Lookup(iv(k)); !equalIDs(got, want) {
			t.Fatalf("Lookup(%d) = %v, oracle %v", k, got, want)
		}
		if id, ok := tree.LookupFirst(iv(k)); ok != (len(want) > 0) || (ok && id != want[0]) {
			t.Fatalf("LookupFirst(%d) = %d,%v, oracle %v", k, id, ok, want)
		}
		for _, id := range want {
			if !tree.Contains(iv(k), id) {
				t.Fatalf("Contains(%d,%d) = false, oracle true", k, id)
			}
		}
		if tree.Contains(iv(k), 1<<40) {
			t.Fatalf("Contains(%d, absent) = true", k)
		}
	}
	// Full scan and a window range, both against the oracle's pair list.
	collect := func(run func(fn func(k storage.Value, id uint64) bool)) (out [][2]int64) {
		run(func(k storage.Value, id uint64) bool {
			out = append(out, [2]int64{k.Int(), int64(id)})
			return true
		})
		return
	}
	scan := collect(tree.Scan)
	if want := o.pairs(0, keySpace); fmt.Sprint(scan) != fmt.Sprint(want) {
		t.Fatalf("Scan = %v, oracle %v", scan, want)
	}
	lo, hi := keySpace/4, 3*keySpace/4
	got := collect(func(fn func(storage.Value, uint64) bool) { tree.Range(iv(lo), iv(hi), fn) })
	if want := o.pairs(lo, hi); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Range(%d,%d) = %v, oracle %v", lo, hi, got, want)
	}
	if probs := tree.CheckIntegrity(); len(probs) != 0 {
		t.Fatalf("CheckIntegrity: %v", probs)
	}
}

func runDeltaAgreement(t *testing.T, kind Kind, seed int64, steps int) {
	pool, _ := newPMemPool(t, 64<<20)
	tree, err := Create(kind, pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableDelta(); err != nil {
		t.Fatal(err)
	}
	o := deltaOracle{}
	rng := rand.New(rand.NewSource(seed))
	const keySpace, idSpace = 40, 6

	for i := 0; i < steps; i++ {
		k := rng.Int63n(keySpace)
		id := uint64(rng.Intn(idSpace))
		switch p := rng.Intn(100); {
		case p < 55:
			if err := tree.Insert(iv(k), id); err != nil {
				t.Fatal(err)
			}
			o.insert(k, id)
		case p < 82:
			want := o.delete(k, id)
			if got := tree.Delete(iv(k), id); got != want {
				t.Fatalf("step %d: Delete(%d,%d) = %v, oracle %v", i, k, id, got, want)
			}
		case p < 90:
			if err := tree.MergeDelta(); err != nil {
				t.Fatal(err)
			}
		case p < 96:
			tree.PublishDelta()
		default:
			// Reopen from the persistent header: Open replays the
			// published delta prefix into the base. Publishing first makes
			// the handoff lossless, so the oracle stays exact.
			tree.PublishDelta()
			nt, err := Open(kind, pool, tree.Offset(), Options{})
			if err != nil {
				t.Fatalf("step %d: reopen: %v", i, err)
			}
			if err := nt.EnableDelta(); err != nil {
				t.Fatal(err)
			}
			tree = nt
		}
		if (i+1)%150 == 0 {
			verifyDeltaAgreement(t, tree, o, keySpace)
		}
	}
	verifyDeltaAgreement(t, tree, o, keySpace)

	// Drain the overlay and compare the physical leaf chain to the
	// oracle: after a full merge the base IS the logical state.
	if err := tree.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	var leafPairs [][2]int64
	tree.WalkLeaves(func(_ uint64, entries []Entry, _ uint64) bool {
		for _, e := range entries {
			leafPairs = append(leafPairs, [2]int64{e.Key.Int(), int64(e.ID)})
		}
		return true
	})
	if want := o.pairs(0, keySpace); fmt.Sprint(leafPairs) != fmt.Sprint(want) {
		t.Fatalf("WalkLeaves after merge = %v, oracle %v", leafPairs, want)
	}
	verifyDeltaAgreement(t, tree, o, keySpace)
}

func TestDeltaAgreementRandomized(t *testing.T) {
	for _, kind := range []Kind{Hybrid, Persistent} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					runDeltaAgreement(t, kind, seed, 900)
				})
			}
		})
	}
}

// TestDeltaRegionOverflowMerges drives more pending ops than the region
// holds: deltaInsert must merge inline when the region fills, and reads
// must stay exact throughout.
func TestDeltaRegionOverflowMerges(t *testing.T) {
	pool, _ := newPMemPool(t, 64<<20)
	tree, err := Create(Hybrid, pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableDelta(); err != nil {
		t.Fatal(err)
	}
	o := deltaOracle{}
	n := int64(3*DefaultDeltaCap + 7)
	for i := int64(0); i < n; i++ {
		k := i % 64
		if err := tree.Insert(iv(k), uint64(i)); err != nil {
			t.Fatal(err)
		}
		o.insert(k, uint64(i))
	}
	if pending, _ := tree.DeltaStats(); pending > DefaultDeltaCap {
		t.Fatalf("pending %d exceeds region capacity %d", pending, DefaultDeltaCap)
	}
	verifyDeltaAgreement(t, tree, o, 64)
}

// FuzzDeltaMerge interprets the fuzz input as an op schedule
// (insert/delete/merge/publish over a small key universe) and asserts
// the delta-mode tree agrees with the oracle afterwards. Wired into the
// nightly fuzz job.
func FuzzDeltaMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 0, 1, 2, 2, 1, 1, 3, 0, 0})
	f.Add([]byte{0, 5, 1, 0, 5, 2, 4, 0, 0, 2, 5, 1, 3, 0, 0, 2, 5, 2})
	seed := make([]byte, 0, 3*DefaultDeltaCap*3)
	for i := 0; i < 3*DefaultDeltaCap; i++ {
		seed = append(seed, byte(i%5), byte(i%31), byte(i%7))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		pool, _ := newPMemPool(t, 64<<20)
		tree, err := Create(Hybrid, pool, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.EnableDelta(); err != nil {
			t.Fatal(err)
		}
		o := deltaOracle{}
		const keySpace = 31
		for i := 0; i+2 < len(data); i += 3 {
			op, k, id := data[i]%5, int64(data[i+1]%keySpace), uint64(data[i+2]%8)
			switch op {
			case 0, 1:
				if err := tree.Insert(iv(k), id); err != nil {
					t.Fatal(err)
				}
				o.insert(k, id)
			case 2:
				want := o.delete(k, id)
				if got := tree.Delete(iv(k), id); got != want {
					t.Fatalf("Delete(%d,%d) = %v, oracle %v", k, id, got, want)
				}
			case 3:
				if err := tree.MergeDelta(); err != nil {
					t.Fatal(err)
				}
			case 4:
				tree.PublishDelta()
			}
		}
		verifyDeltaAgreement(t, tree, o, keySpace)
	})
}
