package index

import (
	"errors"
	"sort"

	"poseidon/internal/storage"
)

// LSM-style delta layer. A small persistent append-only region absorbs
// index mutations so the write path stops paying one drain per touched
// leaf (persistLeaf): an op append is a plain store plus a flush, and the
// region's count word is published with a single Persist per commit epoch
// (PublishDelta). Reads see delta ∪ base through a sorted volatile
// overlay; the region is merged into the base B+-tree when it fills,
// when MergeDelta is called (the engine's background merger), and at
// Open, so recovery consumers keep seeing the leaf chain as the complete
// ground truth.
//
// Durability stays repair-based, as for the rest of the index (§4.2): a
// crash can lose ops appended after the last publication, and reconcile
// patches the tree against the primary tables. The published prefix is
// replayed at Open, which bounds repair work to the unpublished tail.

// Delta region layout: one count word (the publication point), ops from
// offset 64. Each op is [op u64][keyType u64][keyRaw u64][id u64].
const (
	drCount   = 0
	drOps     = 64
	deltaOpSz = 32

	opInsert = 1
	opDelete = 2

	// DefaultDeltaCap is the region's op capacity; the region then
	// occupies drOps + DefaultDeltaCap*deltaOpSz = 4 KiB.
	DefaultDeltaCap = 126
)

// deltaEnt is one pending op in the sorted volatile overlay. Per (key,
// id) the overlay keeps only the latest op: del=false means the entry is
// visible regardless of the base tree, del=true means it is not.
type deltaEnt struct {
	e   entry
	del bool
}

// EnableDelta switches the tree into delta mode, allocating the
// persistent region on first use (re-attaching it on later opens). Only
// trees with a persistent header can run a delta; volatile trees have no
// drains to save.
func (t *Tree) EnableDelta() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hdr == 0 {
		return errors.New("index: delta layer requires a persistent index")
	}
	if t.deltaOff != 0 {
		return nil
	}
	off := t.leafDev.ReadU64(t.hdr + ihDelta)
	if off == 0 {
		var err error
		off, err = t.leafPool.Alloc(drOps + DefaultDeltaCap*deltaOpSz)
		if err != nil {
			return err
		}
		d := t.leafDev
		d.WriteU64(off+drCount, 0)
		d.Persist(off, 8)
		// Linking the region into the header is the creation commit
		// point; a crash before it leaks the block, as leaf splits can.
		d.WriteU64(t.hdr+ihDelta, off)
		d.Persist(t.hdr+ihDelta, 8)
	}
	t.deltaOff = off
	t.deltaCap = DefaultDeltaCap
	return nil
}

// DeltaEnabled reports whether the tree runs in delta mode.
func (t *Tree) DeltaEnabled() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.deltaOff != 0
}

// DeltaStats returns the pending and published op counts, for tests and
// telemetry.
func (t *Tree) DeltaStats() (pending, published int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dcount, t.dpub
}

// replayDelta applies the published ops of the region at off to the base
// tree and resets the region — the Open-time drain. Ops appended after
// the last publication are garbage and ignored; reconcile re-derives
// them from the primary tables.
func (t *Tree) replayDelta(off uint64) error {
	d := t.leafDev
	n := d.ReadU64(off + drCount)
	if n > DefaultDeltaCap {
		return ErrCorrupt
	}
	for i := uint64(0); i < n; i++ {
		op := off + drOps + i*deltaOpSz
		e := entry{
			key: storage.Value{Type: storage.ValueType(d.ReadU64(op + 8)), Raw: d.ReadU64(op + 16)},
			id:  d.ReadU64(op + 24),
		}
		switch d.ReadU64(op) {
		case opInsert:
			if err := t.insertBase(e); err != nil {
				return err
			}
		case opDelete:
			t.deleteBase(e)
		default:
			return ErrCorrupt
		}
	}
	if n > 0 {
		d.WriteU64(off+drCount, 0)
		d.Persist(off+drCount, 8)
	}
	return nil
}

// appendDeltaRec appends one op to the persistent region. The op bytes
// are flushed but the count word is not advanced — the op becomes
// durable (recoverable) only at the next PublishDelta.
//
//pmem:deferred-flush durable trees flush the op bytes inline; DRAM-backed trees (t.durable false) skip flushes by design
func (t *Tree) appendDeltaRec(op uint64, e entry) {
	off := t.deltaOff + drOps + uint64(t.dcount)*deltaOpSz
	d := t.leafDev
	d.WriteU64(off, op)
	d.WriteU64(off+8, uint64(e.key.Type))
	d.WriteU64(off+16, e.key.Raw)
	d.WriteU64(off+24, e.id)
	if t.durable {
		d.Flush(off, deltaOpSz)
	}
	t.dcount++
}

// PublishDelta makes every op appended since the last publication
// recoverable with a single 8-byte Persist of the count word — the one
// index fence a commit epoch pays, amortized over all its members' ops.
//
//pmem:deferred-flush durable trees Persist the count word inline; DRAM-backed trees (t.durable false) skip flushes by design
func (t *Tree) PublishDelta() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deltaOff == 0 || t.dcount == t.dpub {
		return
	}
	t.leafDev.WriteU64(t.deltaOff+drCount, uint64(t.dcount))
	if t.durable {
		t.leafDev.Persist(t.deltaOff+drCount, 8)
	}
	t.dpub = t.dcount
}

// MergeDelta folds the pending ops into the base tree and empties the
// region. Safe to call at any time; the background merger calls it
// periodically so lookups keep the overlay short.
func (t *Tree) MergeDelta() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deltaOff == 0 {
		return nil
	}
	return t.mergeLocked()
}

// mergeLocked folds the overlay (the deduped final state the op log
// encodes) into the base tree through the base write paths, then resets
// the region with one Persist. Each applied op's base-count change is
// immediately removed from dnet, so the logical count is invariant at
// every step — a partial merge (allocator failure) just leaves the
// unapplied overlay suffix and the op log in place, and a later retry
// re-applies the logged prefix idempotently.
//
//pmem:deferred-flush durable trees Persist the count-word reset inline; DRAM-backed trees (t.durable false) skip flushes by design
func (t *Tree) mergeLocked() error {
	for len(t.dview) > 0 {
		dv := t.dview[0]
		before := t.count
		if dv.del {
			t.deleteBase(dv.e)
		} else if err := t.insertBase(dv.e); err != nil {
			return err
		}
		t.dnet -= int(int64(t.count) - int64(before))
		// The base paths bumped t.count, but the op's logical effect was
		// already counted when the delta absorbed it — restore, so Len is
		// invariant under merge.
		t.count = before
		t.dview = t.dview[1:]
	}
	if t.dcount == 0 {
		return nil
	}
	t.leafDev.WriteU64(t.deltaOff+drCount, 0)
	if t.durable {
		t.leafDev.Persist(t.deltaOff+drCount, 8)
	}
	t.dcount, t.dpub, t.dnet = 0, 0, 0
	t.dview = nil
	return nil
}

// deltaInsert absorbs an insert into the delta (called under t.mu).
func (t *Tree) deltaInsert(e entry) error {
	if t.dcount == t.deltaCap {
		if err := t.mergeLocked(); err != nil {
			return err
		}
	}
	if i, found := t.dviewFind(e); found {
		if !t.dview[i].del {
			return nil // pending insert already
		}
		t.appendDeltaRec(opInsert, e)
		t.dview[i].del = false
		t.count++
		t.dnet++
		return nil
	}
	if t.containsLocked(e) {
		return nil // already in the base, no pending op
	}
	t.appendDeltaRec(opInsert, e)
	t.dviewAdd(deltaEnt{e: e, del: false})
	t.count++
	t.dnet++
	return nil
}

// deltaDelete absorbs a delete into the delta (called under t.mu). If
// the region is full and cannot drain (allocator exhaustion mid-merge),
// the op is applied overlay-only: live reads stay exact, and a crash
// before the next successful merge loses the op — the same repair-based
// durability every unpublished op already has.
func (t *Tree) deltaDelete(e entry) bool {
	haveRoom := t.dcount < t.deltaCap
	if !haveRoom && t.mergeLocked() == nil {
		haveRoom = true
	}
	if i, found := t.dviewFind(e); found {
		if t.dview[i].del {
			return false // already deleted
		}
		if haveRoom {
			t.appendDeltaRec(opDelete, e)
		}
		t.dview[i].del = true
		t.count--
		t.dnet--
		return true
	}
	if !t.containsLocked(e) {
		return false
	}
	if haveRoom {
		t.appendDeltaRec(opDelete, e)
	}
	t.dviewAdd(deltaEnt{e: e, del: true})
	t.count--
	t.dnet--
	return true
}

// dviewFind binary-searches the overlay for e.
func (t *Tree) dviewFind(e entry) (int, bool) {
	i := sort.Search(len(t.dview), func(j int) bool { return !t.dview[j].e.less(e) })
	return i, i < len(t.dview) && t.dview[i].e == e
}

// dviewAdd inserts a new overlay element at its sorted position.
func (t *Tree) dviewAdd(d deltaEnt) {
	i, _ := t.dviewFind(d.e)
	t.dview = append(t.dview, deltaEnt{})
	copy(t.dview[i+1:], t.dview[i:])
	t.dview[i] = d
}

// overlayIDs applies the overlay's ops for key k to the base result ids
// (both in ascending id order).
func (t *Tree) overlayIDs(k storage.Value, ids []uint64) []uint64 {
	if len(t.dview) == 0 {
		return ids
	}
	lo := sort.Search(len(t.dview), func(j int) bool { return !t.dview[j].e.key.Less(k) })
	for i := lo; i < len(t.dview) && !k.Less(t.dview[i].e.key); i++ {
		dv := t.dview[i]
		j := sort.Search(len(ids), func(n int) bool { return ids[n] >= dv.e.id })
		present := j < len(ids) && ids[j] == dv.e.id
		if dv.del {
			if present {
				ids = append(ids[:j], ids[j+1:]...)
			}
		} else if !present {
			ids = append(ids, 0)
			copy(ids[j+1:], ids[j:])
			ids[j] = dv.e.id
		}
	}
	return ids
}

// rangeMerged iterates delta ∪ base in (key, id) order between the
// optional bounds (nil = unbounded), calling fn until it returns false.
// Caller holds t.mu.
func (t *Tree) rangeMerged(lo, hi *storage.Value, fn func(k storage.Value, id uint64) bool) {
	dv := t.dview
	i := 0
	if lo != nil {
		i = sort.Search(len(dv), func(j int) bool { return !dv[j].e.key.Less(*lo) })
	}
	// emitBefore yields pending overlay inserts ordered before e (or all
	// in-bounds ones when e is nil), returning false on early stop.
	emitBefore := func(e *entry) bool {
		for i < len(dv) {
			d := dv[i]
			if hi != nil && (*hi).Less(d.e.key) {
				i = len(dv)
				return true
			}
			if e != nil && !d.e.less(*e) {
				return true
			}
			i++
			if d.del {
				continue
			}
			if !fn(d.e.key, d.e.id) {
				return false
			}
		}
		return true
	}

	var leaf uint64
	if lo != nil {
		leaf = t.lowerBound(*lo)
	} else {
		leaf = t.leftmostLeaf()
	}
	for leaf != 0 {
		n := t.leafCount(leaf)
		for j := 0; j < n; j++ {
			e := t.leafEntry(leaf, j)
			if lo != nil && e.key.Less(*lo) {
				continue
			}
			if hi != nil && (*hi).Less(e.key) {
				emitBefore(nil)
				return
			}
			if !emitBefore(&e) {
				return
			}
			if i < len(dv) && dv[i].e == e {
				d := dv[i]
				i++
				if d.del {
					continue
				}
				if !fn(e.key, e.id) {
					return
				}
				continue
			}
			if !fn(e.key, e.id) {
				return
			}
		}
		leaf = t.leafNext(leaf)
	}
	emitBefore(nil)
}

// InsertMany bulk-inserts entries through the base path, persisting each
// touched leaf once at the end — one drain for the whole batch instead
// of one per insert. The bulk loader uses it to build indexes after the
// primary data lands.
func (t *Tree) InsertMany(ents []Entry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.durable {
		t.bulkLeaves = make(map[uint64]struct{})
		defer func() {
			offs := make([]uint64, 0, len(t.bulkLeaves))
			for off := range t.bulkLeaves {
				offs = append(offs, off)
			}
			t.bulkLeaves = nil
			sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
			for _, off := range offs {
				t.leafDev.Flush(off, nodeBytes)
			}
			t.leafDev.Drain()
		}()
	}
	for _, ent := range ents {
		if err := t.insertBase(entry{key: ent.Key, id: ent.ID}); err != nil {
			return err
		}
	}
	return nil
}
