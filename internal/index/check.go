package index

// Structural self-checks for the fsck harness (internal/fsck): the leaf
// chain is the durable ground truth of a persistent index (it is what
// Hybrid recovery rebuilds from, §7.4), so integrity is defined against it.

import (
	"fmt"

	"poseidon/internal/storage"
)

// Entry is an exported (key, id) pair as stored in a leaf.
type Entry struct {
	Key storage.Value
	ID  uint64
}

// WalkLeaves visits every leaf in chain order, handing fn the leaf offset,
// its entries and the next-leaf offset (0 at the end). It stops early when
// fn returns false. The walk reads the persistent chain head for
// non-volatile trees and descends from the root for volatile ones.
func (t *Tree) WalkLeaves(fn func(leafOff uint64, entries []Entry, next uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	maxLeaves := uint64(t.leafDev.Size())/nodeBytes + 1
	leaf := t.chainHead()
	for n := uint64(0); leaf != 0 && n < maxLeaves; n++ {
		cnt := t.leafCount(leaf)
		if cnt > leafCap {
			cnt = leafCap // corrupt count; clamp so the caller still sees the leaf
		}
		entries := make([]Entry, cnt)
		for i := 0; i < cnt; i++ {
			e := t.leafEntry(leaf, i)
			entries[i] = Entry{Key: e.key, ID: e.id}
		}
		next := t.leafNext(leaf)
		if !fn(leaf, entries, next) {
			return
		}
		leaf = next
	}
}

func (t *Tree) chainHead() uint64 {
	if t.hdr != 0 {
		return t.leafDev.ReadU64(t.hdr + ihLeafHead)
	}
	return t.leftmostLeaf()
}

// CheckIntegrity verifies the tree's structural invariants and returns a
// description of each violation found (nil means healthy):
//
//   - the leaf chain is acyclic, in-bounds and properly terminated,
//   - per-leaf counts fit the node geometry,
//   - entries are strictly increasing by (key, id) within and across
//     leaves (strictness doubles as a duplicate check),
//   - the cached entry count matches the chain,
//   - every chain entry is reachable through a root descent, so the inner
//     levels agree with the leaves.
func (t *Tree) CheckIntegrity() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var probs []string
	devSize := uint64(t.leafDev.Size())
	maxLeaves := devSize/nodeBytes + 1

	seen := make(map[uint64]bool)
	var prev entry
	havePrev := false
	var total uint64
	leaf := t.chainHead()
	var steps uint64
	for leaf != 0 {
		if steps++; steps > maxLeaves {
			probs = append(probs, "leaf chain longer than the device can hold (cycle?)")
			break
		}
		if leaf%8 != 0 || leaf+nodeBytes > devSize {
			probs = append(probs, fmt.Sprintf("leaf offset %#x out of bounds or misaligned", leaf))
			break
		}
		if seen[leaf] {
			probs = append(probs, fmt.Sprintf("leaf chain cycles back to %#x", leaf))
			break
		}
		seen[leaf] = true
		cnt := t.leafCount(leaf)
		if cnt < 0 || cnt > leafCap {
			probs = append(probs, fmt.Sprintf("leaf %#x count %d exceeds capacity %d", leaf, cnt, leafCap))
			leaf = t.leafNext(leaf)
			continue
		}
		for i := 0; i < cnt; i++ {
			e := t.leafEntry(leaf, i)
			if havePrev && !prev.less(e) {
				probs = append(probs, fmt.Sprintf("leaf %#x entry %d (key %v, id %d) not greater than its predecessor (key %v, id %d)",
					leaf, i, e.key, e.id, prev.key, prev.id))
			}
			if !t.containsLocked(e) {
				probs = append(probs, fmt.Sprintf("leaf %#x entry (key %v, id %d) unreachable from the root (inner levels disagree with leaf chain)",
					leaf, e.key, e.id))
			}
			prev, havePrev = e, true
			total++
		}
		leaf = t.leafNext(leaf)
	}
	if base := uint64(int64(t.count) - int64(t.dnet)); total != base {
		probs = append(probs, fmt.Sprintf("cached entry count %d (net pending delta %+d) != %d entries on the leaf chain", t.count, t.dnet, total))
	}
	// Delta-layer invariants: the published op count fits the region and
	// every published op has a valid opcode (replay would reject either).
	if t.deltaOff != 0 {
		pub := t.leafDev.ReadU64(t.deltaOff + drCount)
		if pub > uint64(t.deltaCap) {
			probs = append(probs, fmt.Sprintf("delta region count %d exceeds capacity %d", pub, t.deltaCap))
		} else {
			for i := uint64(0); i < pub; i++ {
				if op := t.leafDev.ReadU64(t.deltaOff + drOps + i*deltaOpSz); op != opInsert && op != opDelete {
					probs = append(probs, fmt.Sprintf("delta op %d has invalid opcode %d", i, op))
				}
			}
		}
		if pub > uint64(t.dcount) {
			probs = append(probs, fmt.Sprintf("delta region publishes %d ops but only %d were appended", pub, t.dcount))
		}
	}
	return probs
}

// containsLocked is Contains without re-acquiring the tree lock.
func (t *Tree) containsLocked(e entry) bool {
	leaf := t.leafFor(e, nil)
	n := t.leafCount(leaf)
	if n > leafCap {
		return false
	}
	for i := 0; i < n; i++ {
		if t.leafEntry(leaf, i) == e {
			return true
		}
	}
	return false
}
