// Package index implements the secondary B+-tree indexes of §4.2 in the
// three variants compared in the paper's Fig 8:
//
//   - Volatile: every node in DRAM; fastest lookups, full rebuild needed
//     after a failure.
//   - Persistent: every node in PMem; no rebuild, but every level of a
//     lookup pays PMem latency.
//   - Hybrid (selective persistence, as in the FPTree): leaf nodes in
//     PMem, inner nodes in DRAM — at most one PMem-resident node is read
//     per lookup, and recovery only rebuilds the inner levels from the
//     persistent leaf chain.
//
// All tree nodes are cache-line aligned and sized to land in a 512-byte
// allocation class, a multiple of the 256-byte DCPMM block (DG3). Keys are
// typed values (dictionary codes for strings), payloads are record ids.
// Duplicate keys are supported by ordering and separating on the composite
// (key, id), which makes every stored entry unique.
//
// Because the index is a secondary structure that can always be rebuilt
// from the primary tables (§4.2), leaf updates are made durable with
// ordered flushes rather than full undo logging: a crash can leak a leaf
// block mid-split but never corrupts the reachable chain.
package index

import (
	"errors"
	"fmt"
	"sync"

	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// Kind selects the storage placement of tree nodes.
type Kind int

// Index variants (Fig 8).
const (
	Volatile Kind = iota
	Hybrid
	Persistent
)

func (k Kind) String() string {
	switch k {
	case Volatile:
		return "volatile"
	case Hybrid:
		return "hybrid"
	case Persistent:
		return "persistent"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrCorrupt reports an index whose persistent part is unusable; callers
// should drop and rebuild the index from primary data.
var ErrCorrupt = errors.New("index: corrupt persistent index")

// Node geometry. Both node types occupy 448 user bytes, which lands in
// the 512-byte allocator class together with the 64-byte block header.
const (
	nodeBytes = 448

	// Leaf layout.
	lfNext    = 0  // next leaf offset (0 = end of chain)
	lfCount   = 8  // number of entries
	lfEntries = 16 // entries: [type u64][raw u64][id u64]
	entrySize = 24
	leafCap   = (nodeBytes - lfEntries) / entrySize // 18

	// Inner layout: separators are full (key, id) entries.
	inCount    = 0 // number of separators
	inSeps     = 8 // separators: [type u64][raw u64][id u64]
	sepSize    = 24
	innerCap   = 12                          // separators per inner node
	inChildren = inSeps + innerCap*sepSize   // child offsets: (innerCap+1) × 8
	innerEnd   = inChildren + (innerCap+1)*8 // = 400 <= nodeBytes
)

// Persistent index header (allocated in the leaf pool).
const (
	ihMagic    = 0
	ihKind     = 8
	ihLeafHead = 16
	ihRoot     = 24 // root node offset (persistent variant only)
	ihHeight   = 32 // 0 = root is a leaf (persistent variant only)
	ihDelta    = 40 // delta-region offset (0 = none; zero on pre-delta images)
	ihSize     = 64

	indexMagic = 0x49445831 // "IDX1"
)

// entry is a composite (key, id) element; the unit of ordering.
type entry struct {
	key storage.Value
	id  uint64
}

func (e entry) less(o entry) bool {
	if e.key.Less(o.key) {
		return true
	}
	if o.key.Less(e.key) {
		return false
	}
	return e.id < o.id
}

// Tree is a B+-tree index. All methods are safe for concurrent use; a
// single RWMutex serializes writers.
type Tree struct {
	kind Kind

	// Leaves live here: the graph's PMem pool for Hybrid/Persistent, a
	// private DRAM pool for Volatile.
	leafPool *pmemobj.Pool
	leafDev  *pmem.Device
	durable  bool // flush leaf writes

	// Inner nodes live here: same as leafPool for Persistent, a private
	// DRAM pool otherwise.
	innerPool *pmemobj.Pool
	innerDev  *pmem.Device

	hdr uint64 // persistent header offset in leafPool (0 for Volatile)

	mu     sync.RWMutex
	root   uint64
	height int // 0 = root is a leaf
	count  uint64 // logical entries: base tree plus net pending delta ops

	// LSM-style delta layer (see delta.go). deltaOff == 0 means the tree
	// runs in the classic persist-per-insert mode.
	deltaOff uint64     // persistent delta region (0 = disabled)
	deltaCap int        // entry capacity of the region
	dview    []deltaEnt // sorted overlay of pending ops, one per (key, id)
	dcount   int        // ops appended to the region (volatile)
	dpub     int        // ops covered by the last published count word
	dnet     int        // net logical-count change the pending ops carry

	// bulkLeaves, when non-nil, collects leaf offsets persistLeaf would
	// have flushed so InsertMany can persist each touched leaf once.
	bulkLeaves map[uint64]struct{}
}

// Options configures tree creation.
type Options struct {
	// InnerArenaBytes sizes the private DRAM pool for inner nodes (and
	// leaves, for the Volatile kind). Default 8 MiB for Hybrid (inner
	// nodes only), 64 MiB for Volatile (all nodes).
	InnerArenaBytes int
}

func newInnerPool(size int) (*pmemobj.Pool, error) {
	if size == 0 {
		size = 8 << 20
	}
	dev := pmem.New(pmem.Config{Name: "index-dram", Size: size})
	return pmemobj.Create(dev, pmemobj.Options{})
}

// Create builds an empty tree. For Hybrid and Persistent kinds, leaves
// (and the header) are allocated in pool; the Volatile kind ignores pool
// and keeps everything in a private DRAM arena.
func Create(kind Kind, pool *pmemobj.Pool, opts Options) (*Tree, error) {
	t := &Tree{kind: kind}
	switch kind {
	case Volatile:
		size := opts.InnerArenaBytes
		if size == 0 {
			size = 64 << 20
		}
		p, err := newInnerPool(size)
		if err != nil {
			return nil, err
		}
		t.leafPool, t.innerPool = p, p
	case Hybrid:
		p, err := newInnerPool(opts.InnerArenaBytes)
		if err != nil {
			return nil, err
		}
		t.leafPool, t.innerPool = pool, p
		t.durable = true
	case Persistent:
		t.leafPool, t.innerPool = pool, pool
		t.durable = true
	default:
		return nil, fmt.Errorf("index: unknown kind %d", kind)
	}
	t.leafDev = t.leafPool.Device()
	t.innerDev = t.innerPool.Device()

	leaf, err := t.leafPool.Alloc(nodeBytes)
	if err != nil {
		return nil, err
	}
	t.root = leaf
	t.height = 0

	if kind != Volatile {
		hdr, err := t.leafPool.Alloc(ihSize)
		if err != nil {
			return nil, err
		}
		d := t.leafDev
		d.WriteU64(hdr+ihKind, uint64(kind))
		d.WriteU64(hdr+ihLeafHead, leaf)
		d.WriteU64(hdr+ihRoot, leaf)
		d.WriteU64(hdr+ihHeight, 0)
		d.WriteU64(hdr+ihMagic, indexMagic)
		d.Persist(hdr, ihSize)
		t.hdr = hdr
	}
	return t, nil
}

// Open re-attaches to a persistent index created earlier in pool. For the
// Hybrid kind this rebuilds the DRAM inner levels from the persistent
// leaf chain — the fast recovery path measured in §7.4. A Volatile index
// cannot be opened; it must be recreated and refilled.
func Open(kind Kind, pool *pmemobj.Pool, hdr uint64, opts Options) (*Tree, error) {
	if kind == Volatile {
		return nil, errors.New("index: volatile index cannot be reopened; rebuild it")
	}
	d := pool.Device()
	if d.ReadU64(hdr+ihMagic) != indexMagic {
		return nil, ErrCorrupt
	}
	if got := Kind(d.ReadU64(hdr + ihKind)); got != kind {
		return nil, fmt.Errorf("%w: stored kind %v, requested %v", ErrCorrupt, got, kind)
	}
	t := &Tree{kind: kind, leafPool: pool, leafDev: d, durable: true, hdr: hdr}
	switch kind {
	case Persistent:
		t.innerPool, t.innerDev = pool, d
		t.root = d.ReadU64(hdr + ihRoot)
		t.height = int(d.ReadU64(hdr + ihHeight))
		t.count = t.countLeafChain()
	case Hybrid:
		p, err := newInnerPool(opts.InnerArenaBytes)
		if err != nil {
			return nil, err
		}
		t.innerPool, t.innerDev = p, p.Device()
		if err := t.rebuildInner(); err != nil {
			return nil, err
		}
	}
	// Drain any published delta ops into the base tree before the index
	// serves reads, so recovery consumers (fsck, reconcile, WalkLeaves)
	// keep seeing the leaf chain as the complete ground truth.
	if off := d.ReadU64(hdr + ihDelta); off != 0 {
		if err := t.replayDelta(off); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Offset returns the persistent header offset (0 for volatile trees).
func (t *Tree) Offset() uint64 { return t.hdr }

// Kind returns the tree variant.
func (t *Tree) Kind() Kind { return t.kind }

// Len returns the number of entries.
func (t *Tree) Len() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

func (t *Tree) persistLeaf(off uint64) {
	if !t.durable {
		return
	}
	if t.bulkLeaves != nil {
		t.bulkLeaves[off] = struct{}{} // InsertMany persists it once at the end
		return
	}
	t.leafDev.Persist(off, nodeBytes)
}

func (t *Tree) persistInner(node uint64) {
	if t.kind == Persistent {
		t.innerDev.Persist(node, nodeBytes)
	}
}

// --- node accessors ---

func (t *Tree) leafEntry(leaf uint64, i int) entry {
	base := leaf + lfEntries + uint64(i)*entrySize
	return entry{
		key: storage.Value{Type: storage.ValueType(t.leafDev.ReadU64(base)), Raw: t.leafDev.ReadU64(base + 8)},
		id:  t.leafDev.ReadU64(base + 16),
	}
}

//pmem:deferred-flush callers persist the whole node via persistLeaf before it becomes reachable/unlocked
func (t *Tree) setLeafEntry(leaf uint64, i int, e entry) {
	base := leaf + lfEntries + uint64(i)*entrySize
	t.leafDev.WriteU64(base, uint64(e.key.Type))
	t.leafDev.WriteU64(base+8, e.key.Raw)
	t.leafDev.WriteU64(base+16, e.id)
}

func (t *Tree) leafCount(leaf uint64) int { return int(t.leafDev.ReadU64(leaf + lfCount)) }
func (t *Tree) leafNext(leaf uint64) uint64 {
	return t.leafDev.ReadU64(leaf + lfNext)
}

func (t *Tree) sep(node uint64, i int) entry {
	base := node + inSeps + uint64(i)*sepSize
	return entry{
		key: storage.Value{Type: storage.ValueType(t.innerDev.ReadU64(base)), Raw: t.innerDev.ReadU64(base + 8)},
		id:  t.innerDev.ReadU64(base + 16),
	}
}

//pmem:deferred-flush callers persist the whole node via persistInner; for Hybrid trees innerDev is DRAM
func (t *Tree) setSep(node uint64, i int, e entry) {
	base := node + inSeps + uint64(i)*sepSize
	t.innerDev.WriteU64(base, uint64(e.key.Type))
	t.innerDev.WriteU64(base+8, e.key.Raw)
	t.innerDev.WriteU64(base+16, e.id)
}

func (t *Tree) innerCount(node uint64) int { return int(t.innerDev.ReadU64(node + inCount)) }

func (t *Tree) child(node uint64, i int) uint64 {
	return t.innerDev.ReadU64(node + inChildren + uint64(i)*8)
}

//pmem:deferred-flush callers persist the whole node via persistInner; for Hybrid trees innerDev is DRAM
func (t *Tree) setChild(node uint64, i int, off uint64) {
	t.innerDev.WriteU64(node+inChildren+uint64(i)*8, off)
}

// findChild returns the child slot for e: the number of separators <= e.
// Entries in child i satisfy sep[i-1] <= e < sep[i].
func (t *Tree) findChild(node uint64, e entry) int {
	lo, hi := 0, t.innerCount(node)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.sep(node, mid).less(e) || t.sep(node, mid) == e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

type pathEnt struct {
	node uint64
	slot int
}

// leafFor descends to the unique leaf where e belongs, remembering the
// path when path != nil.
func (t *Tree) leafFor(e entry, path *[]pathEnt) uint64 {
	node := t.root
	for lvl := t.height; lvl > 0; lvl-- {
		slot := t.findChild(node, e)
		if path != nil {
			*path = append(*path, pathEnt{node, slot})
		}
		node = t.child(node, slot)
	}
	return node
}

// lowerBound returns the leaf that may contain the first entry >= e.
func (t *Tree) lowerBound(k storage.Value) uint64 {
	return t.leafFor(entry{key: k, id: 0}, nil)
}

// Lookup returns every record id stored under key k, in id order.
func (t *Tree) Lookup(k storage.Value) []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.overlayIDs(k, t.lookupBase(k))
}

// lookupBase collects k's ids from the base tree only.
func (t *Tree) lookupBase(k storage.Value) []uint64 {
	var out []uint64
	leaf := t.lowerBound(k)
	for leaf != 0 {
		n := t.leafCount(leaf)
		for i := 0; i < n; i++ {
			e := t.leafEntry(leaf, i)
			if e.key.Less(k) {
				continue
			}
			if k.Less(e.key) {
				return out
			}
			out = append(out, e.id)
		}
		leaf = t.leafNext(leaf)
	}
	return out
}

// LookupFirst returns the smallest id under k, if any. It is the common
// point lookup of the SR queries.
func (t *Tree) LookupFirst(k storage.Value) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.dview) > 0 {
		ids := t.overlayIDs(k, t.lookupBase(k))
		if len(ids) == 0 {
			return 0, false
		}
		return ids[0], true
	}
	leaf := t.lowerBound(k)
	for leaf != 0 {
		n := t.leafCount(leaf)
		for i := 0; i < n; i++ {
			e := t.leafEntry(leaf, i)
			if e.key.Less(k) {
				continue
			}
			if k.Less(e.key) {
				return 0, false
			}
			return e.id, true
		}
		leaf = t.leafNext(leaf)
	}
	return 0, false
}

// Contains reports whether the exact (k, id) pair is present.
func (t *Tree) Contains(k storage.Value, id uint64) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e := entry{key: k, id: id}
	if i, found := t.dviewFind(e); found {
		return !t.dview[i].del
	}
	return t.containsLocked(e)
}

// Range calls fn for every entry with lo <= key <= hi in (key, id) order,
// stopping early if fn returns false.
func (t *Tree) Range(lo, hi storage.Value, fn func(k storage.Value, id uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.dview) > 0 {
		t.rangeMerged(&lo, &hi, fn)
		return
	}
	leaf := t.lowerBound(lo)
	for leaf != 0 {
		n := t.leafCount(leaf)
		for i := 0; i < n; i++ {
			e := t.leafEntry(leaf, i)
			if e.key.Less(lo) {
				continue
			}
			if hi.Less(e.key) {
				return
			}
			if !fn(e.key, e.id) {
				return
			}
		}
		leaf = t.leafNext(leaf)
	}
}

// Scan visits every entry in (key, id) order.
func (t *Tree) Scan(fn func(k storage.Value, id uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.dview) > 0 {
		t.rangeMerged(nil, nil, fn)
		return
	}
	leaf := t.leftmostLeaf()
	for leaf != 0 {
		n := t.leafCount(leaf)
		for i := 0; i < n; i++ {
			e := t.leafEntry(leaf, i)
			if !fn(e.key, e.id) {
				return
			}
		}
		leaf = t.leafNext(leaf)
	}
}

func (t *Tree) leftmostLeaf() uint64 {
	node := t.root
	for lvl := t.height; lvl > 0; lvl-- {
		node = t.child(node, 0)
	}
	return node
}

// Insert adds (k, id). Inserting an already-present pair is a no-op.
// With the delta layer enabled the op is absorbed into the delta region
// (no drain); otherwise it goes straight into the base tree.
func (t *Tree) Insert(k storage.Value, id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := entry{key: k, id: id}
	if t.deltaOff != 0 {
		return t.deltaInsert(e)
	}
	return t.insertBase(e)
}

// insertBase inserts into the base tree, persisting every touched leaf.
func (t *Tree) insertBase(e entry) error {
	var path []pathEnt
	leaf := t.leafFor(e, &path)
	n := t.leafCount(leaf)

	slot := n
	for i := 0; i < n; i++ {
		cur := t.leafEntry(leaf, i)
		if cur == e {
			return nil // already present
		}
		if e.less(cur) {
			slot = i
			break
		}
	}

	if n < leafCap {
		for i := n; i > slot; i-- {
			t.setLeafEntry(leaf, i, t.leafEntry(leaf, i-1))
		}
		t.setLeafEntry(leaf, slot, e)
		t.leafDev.WriteU64(leaf+lfCount, uint64(n+1))
		t.persistLeaf(leaf)
		t.count++
		return nil
	}

	// Split the leaf: move the upper half to a fresh right sibling. The
	// new leaf is fully persisted before the old leaf links to it, so a
	// crash can only leak the new block, never break the chain.
	right, err := t.leafPool.Alloc(nodeBytes)
	if err != nil {
		return err
	}
	mid := leafCap / 2
	for i := mid; i < n; i++ {
		t.setLeafEntry(right, i-mid, t.leafEntry(leaf, i))
	}
	t.leafDev.WriteU64(right+lfCount, uint64(n-mid))
	t.leafDev.WriteU64(right+lfNext, t.leafNext(leaf))
	t.persistLeaf(right)

	t.leafDev.WriteU64(leaf+lfCount, uint64(mid))
	t.leafDev.WriteU64(leaf+lfNext, right)
	t.persistLeaf(leaf)

	sep := t.leafEntry(right, 0)
	if e.less(sep) {
		t.insertIntoLeaf(leaf, e)
	} else {
		t.insertIntoLeaf(right, e)
	}
	t.count++

	return t.insertUpward(path, sep, right)
}

// insertIntoLeaf inserts into a leaf known to have room.
func (t *Tree) insertIntoLeaf(leaf uint64, e entry) {
	n := t.leafCount(leaf)
	slot := n
	for i := 0; i < n; i++ {
		if e.less(t.leafEntry(leaf, i)) {
			slot = i
			break
		}
	}
	for i := n; i > slot; i-- {
		t.setLeafEntry(leaf, i, t.leafEntry(leaf, i-1))
	}
	t.setLeafEntry(leaf, slot, e)
	t.leafDev.WriteU64(leaf+lfCount, uint64(n+1))
	t.persistLeaf(leaf)
}

// insertUpward threads a split (sep, right) up the remembered path.
func (t *Tree) insertUpward(path []pathEnt, sep entry, right uint64) error {
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		node, slot := path[lvl].node, path[lvl].slot
		n := t.innerCount(node)
		if n < innerCap {
			for i := n; i > slot; i-- {
				t.setSep(node, i, t.sep(node, i-1))
				t.setChild(node, i+1, t.child(node, i))
			}
			t.setSep(node, slot, sep)
			t.setChild(node, slot+1, right)
			t.innerDev.WriteU64(node+inCount, uint64(n+1))
			t.persistInner(node)
			return nil
		}
		// Split the inner node around its middle separator, which moves up.
		newRight, err := t.innerPool.Alloc(nodeBytes)
		if err != nil {
			return err
		}
		seps := make([]entry, 0, n+1)
		kids := make([]uint64, 0, n+2)
		kids = append(kids, t.child(node, 0))
		for i := 0; i < n; i++ {
			seps = append(seps, t.sep(node, i))
			kids = append(kids, t.child(node, i+1))
		}
		seps = append(seps[:slot], append([]entry{sep}, seps[slot:]...)...)
		kids = append(kids[:slot+1], append([]uint64{right}, kids[slot+1:]...)...)

		mid := len(seps) / 2
		up := seps[mid]

		t.innerDev.WriteU64(node+inCount, uint64(mid))
		t.setChild(node, 0, kids[0])
		for i := 0; i < mid; i++ {
			t.setSep(node, i, seps[i])
			t.setChild(node, i+1, kids[i+1])
		}

		rightSeps := seps[mid+1:]
		t.innerDev.WriteU64(newRight+inCount, uint64(len(rightSeps)))
		t.setChild(newRight, 0, kids[mid+1])
		for i, rs := range rightSeps {
			t.setSep(newRight, i, rs)
			t.setChild(newRight, i+1, kids[mid+2+i])
		}
		t.persistInner(newRight)
		t.persistInner(node)

		sep, right = up, newRight
	}

	// Root split: grow the tree by one level.
	newRoot, err := t.innerPool.Alloc(nodeBytes)
	if err != nil {
		return err
	}
	t.innerDev.WriteU64(newRoot+inCount, 1)
	t.setChild(newRoot, 0, t.root)
	t.setChild(newRoot, 1, right)
	t.setSep(newRoot, 0, sep)
	t.persistInner(newRoot)
	t.root = newRoot
	t.height++
	t.persistMeta()
	return nil
}

func (t *Tree) persistMeta() {
	if t.kind != Persistent {
		return
	}
	d := t.leafDev
	d.WriteU64(t.hdr+ihRoot, t.root)
	d.WriteU64(t.hdr+ihHeight, uint64(t.height))
	d.Persist(t.hdr, ihSize)
}

// Delete removes the exact (k, id) pair, reporting whether it was found.
// Leaves are allowed to underflow (no rebalancing): the index is a
// secondary structure and rebuilt from primary data if it degrades.
func (t *Tree) Delete(k storage.Value, id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := entry{key: k, id: id}
	if t.deltaOff != 0 {
		return t.deltaDelete(e)
	}
	return t.deleteBase(e)
}

// deleteBase removes from the base tree, persisting the touched leaf.
func (t *Tree) deleteBase(e entry) bool {
	leaf := t.leafFor(e, nil)
	n := t.leafCount(leaf)
	for i := 0; i < n; i++ {
		if t.leafEntry(leaf, i) == e {
			for j := i; j < n-1; j++ {
				t.setLeafEntry(leaf, j, t.leafEntry(leaf, j+1))
			}
			t.leafDev.WriteU64(leaf+lfCount, uint64(n-1))
			t.persistLeaf(leaf)
			t.count--
			return true
		}
	}
	return false
}

// countLeafChain counts entries by walking the persistent leaf chain.
func (t *Tree) countLeafChain() uint64 {
	var c uint64
	leaf := t.leafDev.ReadU64(t.hdr + ihLeafHead)
	for leaf != 0 {
		c += t.leafDev.ReadU64(leaf + lfCount)
		leaf = t.leafNext(leaf)
	}
	return c
}

// rebuildInner reconstructs the DRAM inner levels of a Hybrid tree from
// the persistent leaf chain — the §7.4 recovery path. Complexity is one
// sequential pass over the leaves plus O(#leaves) DRAM work.
//
//pmem:deferred-flush Hybrid-only recovery path: innerDev is the volatile DRAM pool, so flushing is meaningless
func (t *Tree) rebuildInner() error {
	type item struct {
		first entry
		off   uint64
	}
	var level []item
	leaf := t.leafDev.ReadU64(t.hdr + ihLeafHead)
	if leaf == 0 {
		return ErrCorrupt
	}
	first := leaf
	var c uint64
	for leaf != 0 {
		n := t.leafCount(leaf)
		c += uint64(n)
		if n > 0 {
			level = append(level, item{t.leafEntry(leaf, 0), leaf})
		}
		leaf = t.leafNext(leaf)
	}
	t.count = c
	if len(level) == 0 {
		// All leaves empty: point the root at the first leaf.
		t.root = first
		t.height = 0
		return nil
	}
	// Lookups descending for entries smaller than the first leaf's first
	// key must still reach the leftmost leaf of the chain.
	level[0].off = first
	t.height = 0
	for len(level) > 1 {
		var next []item
		for i := 0; i < len(level); i += innerCap + 1 {
			end := i + innerCap + 1
			if end > len(level) {
				end = len(level)
			}
			group := level[i:end]
			node, err := t.innerPool.Alloc(nodeBytes)
			if err != nil {
				return err
			}
			t.innerDev.WriteU64(node+inCount, uint64(len(group)-1))
			t.setChild(node, 0, group[0].off)
			for j := 1; j < len(group); j++ {
				t.setSep(node, j-1, group[j].first)
				t.setChild(node, j, group[j].off)
			}
			next = append(next, item{group[0].first, node})
		}
		level = next
		t.height++
	}
	t.root = level[0].off
	return nil
}
