package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

func newPMemPool(t *testing.T, size int) (*pmemobj.Pool, *pmem.Device) {
	t.Helper()
	dev := pmem.New(pmem.Config{Name: "idx", Size: size, Persistent: true})
	pool, err := pmemobj.Create(dev, pmemobj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool, dev
}

func allKinds(t *testing.T, f func(t *testing.T, tree *Tree)) {
	for _, kind := range []Kind{Volatile, Hybrid, Persistent} {
		t.Run(kind.String(), func(t *testing.T) {
			pool, _ := newPMemPool(t, 64<<20)
			tree, err := Create(kind, pool, Options{})
			if err != nil {
				t.Fatal(err)
			}
			f(t, tree)
		})
	}
}

func iv(v int64) storage.Value { return storage.IntValue(v) }

func TestInsertLookupAllKinds(t *testing.T) {
	allKinds(t, func(t *testing.T, tree *Tree) {
		const n = 2000
		for i := int64(0); i < n; i++ {
			if err := tree.Insert(iv(i*3), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if tree.Len() != n {
			t.Fatalf("Len = %d, want %d", tree.Len(), n)
		}
		for i := int64(0); i < n; i++ {
			ids := tree.Lookup(iv(i * 3))
			if len(ids) != 1 || ids[0] != uint64(i) {
				t.Fatalf("Lookup(%d) = %v, want [%d]", i*3, ids, i)
			}
			if id, ok := tree.LookupFirst(iv(i * 3)); !ok || id != uint64(i) {
				t.Fatalf("LookupFirst(%d) = %d,%v", i*3, id, ok)
			}
		}
		if ids := tree.Lookup(iv(1)); ids != nil {
			t.Errorf("Lookup(missing) = %v, want nil", ids)
		}
		if _, ok := tree.LookupFirst(iv(-5)); ok {
			t.Error("LookupFirst(missing) reported found")
		}
	})
}

func TestDuplicateKeys(t *testing.T) {
	allKinds(t, func(t *testing.T, tree *Tree) {
		// 100 ids under one key, enough to span several leaves, plus
		// neighbours on both sides.
		for id := uint64(0); id < 100; id++ {
			tree.Insert(iv(50), id)
		}
		tree.Insert(iv(49), 1000)
		tree.Insert(iv(51), 2000)
		ids := tree.Lookup(iv(50))
		if len(ids) != 100 {
			t.Fatalf("Lookup(dup) returned %d ids, want 100", len(ids))
		}
		for i, id := range ids {
			if id != uint64(i) {
				t.Fatalf("ids[%d] = %d, want %d (id order)", i, id, i)
			}
		}
		// Idempotent insert.
		tree.Insert(iv(50), 7)
		if got := len(tree.Lookup(iv(50))); got != 100 {
			t.Errorf("after duplicate insert: %d ids, want 100", got)
		}
	})
}

func TestInsertDescendingAndRandomOrder(t *testing.T) {
	allKinds(t, func(t *testing.T, tree *Tree) {
		rng := rand.New(rand.NewSource(42))
		perm := rng.Perm(3000)
		for _, v := range perm {
			tree.Insert(iv(int64(v)), uint64(v))
		}
		// Full scan must be sorted.
		var prev int64 = -1
		count := 0
		tree.Scan(func(k storage.Value, id uint64) bool {
			if k.Int() <= prev {
				t.Fatalf("scan out of order: %d after %d", k.Int(), prev)
			}
			if uint64(k.Int()) != id {
				t.Fatalf("wrong id %d for key %d", id, k.Int())
			}
			prev = k.Int()
			count++
			return true
		})
		if count != 3000 {
			t.Errorf("scan visited %d, want 3000", count)
		}
	})
}

func TestRangeQueries(t *testing.T) {
	allKinds(t, func(t *testing.T, tree *Tree) {
		for i := int64(0); i < 1000; i++ {
			tree.Insert(iv(i*2), uint64(i)) // even keys 0..1998
		}
		var got []int64
		tree.Range(iv(100), iv(120), func(k storage.Value, _ uint64) bool {
			got = append(got, k.Int())
			return true
		})
		want := []int64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
		if len(got) != len(want) {
			t.Fatalf("range returned %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		// Odd bounds (not present as keys).
		got = got[:0]
		tree.Range(iv(99), iv(103), func(k storage.Value, _ uint64) bool {
			got = append(got, k.Int())
			return true
		})
		if len(got) != 2 || got[0] != 100 || got[1] != 102 {
			t.Errorf("range with absent bounds = %v, want [100 102]", got)
		}
		// Early stop.
		n := 0
		tree.Range(iv(0), iv(1998), func(storage.Value, uint64) bool { n++; return n < 5 })
		if n != 5 {
			t.Errorf("early-stop range visited %d, want 5", n)
		}
	})
}

func TestDelete(t *testing.T) {
	allKinds(t, func(t *testing.T, tree *Tree) {
		for i := int64(0); i < 500; i++ {
			tree.Insert(iv(i), uint64(i))
		}
		for i := int64(0); i < 500; i += 2 {
			if !tree.Delete(iv(i), uint64(i)) {
				t.Fatalf("Delete(%d) not found", i)
			}
		}
		if tree.Delete(iv(0), 0) {
			t.Error("second delete of same pair succeeded")
		}
		if tree.Delete(iv(1), 999) {
			t.Error("delete with wrong id succeeded")
		}
		if tree.Len() != 250 {
			t.Errorf("Len = %d, want 250", tree.Len())
		}
		for i := int64(0); i < 500; i++ {
			_, ok := tree.LookupFirst(iv(i))
			if want := i%2 == 1; ok != want {
				t.Fatalf("LookupFirst(%d) found=%v, want %v", i, ok, want)
			}
		}
	})
}

func TestContains(t *testing.T) {
	allKinds(t, func(t *testing.T, tree *Tree) {
		tree.Insert(iv(5), 1)
		tree.Insert(iv(5), 2)
		if !tree.Contains(iv(5), 1) || !tree.Contains(iv(5), 2) {
			t.Error("Contains missed present pairs")
		}
		if tree.Contains(iv(5), 3) || tree.Contains(iv(6), 1) {
			t.Error("Contains found absent pairs")
		}
	})
}

func TestStringAndMixedTypeKeys(t *testing.T) {
	allKinds(t, func(t *testing.T, tree *Tree) {
		tree.Insert(storage.StringValue(7), 1)
		tree.Insert(storage.StringValue(9), 2)
		tree.Insert(iv(7), 3) // same raw, different type: distinct keys
		if ids := tree.Lookup(storage.StringValue(7)); len(ids) != 1 || ids[0] != 1 {
			t.Errorf("string key lookup = %v", ids)
		}
		if ids := tree.Lookup(iv(7)); len(ids) != 1 || ids[0] != 3 {
			t.Errorf("int key lookup = %v", ids)
		}
	})
}

func TestNegativeIntOrdering(t *testing.T) {
	allKinds(t, func(t *testing.T, tree *Tree) {
		for _, v := range []int64{5, -3, 0, -100, 42} {
			tree.Insert(iv(v), uint64(v+1000))
		}
		var got []int64
		tree.Scan(func(k storage.Value, _ uint64) bool {
			got = append(got, k.Int())
			return true
		})
		want := []int64{-100, -3, 0, 5, 42}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("scan order %v, want %v", got, want)
			}
		}
	})
}

func TestHybridRecoveryMatchesOriginal(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "idx", Size: 64 << 20, Persistent: true})
	pool, _ := pmemobj.Create(dev, pmemobj.Options{})
	tree, err := Create(Hybrid, pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hdr := tree.Offset()
	const n = 5000
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(n)
	for _, k := range keys {
		tree.Insert(iv(int64(k)), uint64(k))
	}
	for i := 0; i < 100; i++ { // some deletes too
		tree.Delete(iv(int64(i)), uint64(i))
	}
	pool.Close()
	dev.Crash() // inner nodes (DRAM) are gone; leaves survive

	pool2, err := pmemobj.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	tree2, err := Open(Hybrid, pool2, hdr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != n-100 {
		t.Fatalf("recovered Len = %d, want %d", tree2.Len(), n-100)
	}
	for k := 0; k < n; k++ {
		id, ok := tree2.LookupFirst(iv(int64(k)))
		want := k >= 100
		if ok != want {
			t.Fatalf("recovered LookupFirst(%d): found=%v, want %v", k, ok, want)
		}
		if ok && id != uint64(k) {
			t.Fatalf("recovered LookupFirst(%d) = %d", k, id)
		}
	}
	// The recovered tree must accept further inserts.
	if err := tree2.Insert(iv(999999), 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := tree2.LookupFirst(iv(999999)); !ok {
		t.Error("insert after recovery not visible")
	}
}

func TestPersistentRecovery(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "idx", Size: 64 << 20, Persistent: true})
	pool, _ := pmemobj.Create(dev, pmemobj.Options{})
	tree, _ := Create(Persistent, pool, Options{})
	hdr := tree.Offset()
	for i := int64(0); i < 3000; i++ {
		tree.Insert(iv(i), uint64(i))
	}
	pool.Close()
	dev.Crash()

	pool2, err := pmemobj.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	tree2, err := Open(Persistent, pool2, hdr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != 3000 {
		t.Fatalf("Len = %d, want 3000", tree2.Len())
	}
	for i := int64(0); i < 3000; i += 97 {
		if id, ok := tree2.LookupFirst(iv(i)); !ok || id != uint64(i) {
			t.Fatalf("LookupFirst(%d) = %d,%v", i, id, ok)
		}
	}
}

func TestOpenWrongKindRejected(t *testing.T) {
	pool, _ := newPMemPool(t, 32<<20)
	tree, _ := Create(Hybrid, pool, Options{})
	if _, err := Open(Persistent, pool, tree.Offset(), Options{}); err == nil {
		t.Error("opening hybrid index as persistent succeeded")
	}
	if _, err := Open(Hybrid, pool, 64, Options{}); err == nil {
		t.Error("opening garbage offset succeeded")
	}
	if _, err := Open(Volatile, pool, tree.Offset(), Options{}); err == nil {
		t.Error("opening volatile index succeeded")
	}
}

func TestTreeMatchesReferenceModelProperty(t *testing.T) {
	// Property: after any random sequence of inserts and deletes, the tree
	// agrees with a reference map on every lookup and on full-scan order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool, err := newModelPool()
		if err != nil {
			return false
		}
		defer pool.Close()
		tree, err := Create(Hybrid, pool, Options{})
		if err != nil {
			return false
		}
		ref := map[int64]map[uint64]bool{}
		for op := 0; op < 800; op++ {
			k := int64(rng.Intn(60)) // small domain: many duplicates
			id := uint64(rng.Intn(10))
			if rng.Intn(3) == 0 {
				tree.Delete(iv(k), id)
				if ref[k] != nil {
					delete(ref[k], id)
				}
			} else {
				tree.Insert(iv(k), id)
				if ref[k] == nil {
					ref[k] = map[uint64]bool{}
				}
				ref[k][id] = true
			}
		}
		var refTotal uint64
		for k, ids := range ref {
			var want []uint64
			for id := range ids {
				want = append(want, id)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := tree.Lookup(iv(k))
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			refTotal += uint64(len(want))
		}
		return tree.Len() == refTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func newModelPool() (*pmemobj.Pool, error) {
	dev := pmem.New(pmem.Config{Name: "idx", Size: 32 << 20, Persistent: true})
	return pmemobj.Create(dev, pmemobj.Options{})
}

func TestHybridLookupTouchesOnePMemNode(t *testing.T) {
	pool, dev := newPMemPool(t, 64<<20)
	tree, _ := Create(Hybrid, pool, Options{})
	for i := int64(0); i < 20000; i++ {
		tree.Insert(iv(i), uint64(i))
	}
	if tree.height < 2 {
		t.Fatalf("tree too shallow (height %d) for a meaningful test", tree.height)
	}
	before := dev.Stats.Snapshot()
	tree.LookupFirst(iv(12345))
	delta := dev.Stats.Snapshot().Sub(before)
	// A hybrid lookup reads only the one PMem-resident leaf: at most a
	// leaf's worth of words (56) plus slack; a persistent tree would also
	// read every inner level.
	if delta.Reads > 80 {
		t.Errorf("hybrid lookup did %d PMem reads, want only leaf accesses", delta.Reads)
	}
}
