package fsck_test

import (
	"strings"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/fsck"
	"poseidon/internal/index"
	"poseidon/internal/pmem"
	"poseidon/internal/storage"
)

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{
		Mode:     core.PMem,
		PoolSize: 8 << 20,
		LogCap:   256 << 10,
		Profile:  &pmem.Profile{}, // no simulated latency in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// seedGraph builds a small but representative image: labeled nodes with
// string and int properties, relationships between them, and an index.
func seedGraph(t *testing.T, e *core.Engine) []uint64 {
	t.Helper()
	tx := e.Begin()
	names := []string{"alice", "bob", "carol", "dave"}
	ids := make([]uint64, len(names))
	for i, n := range names {
		id, err := tx.CreateNode("Person", map[string]any{"name": n, "age": int64(20 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := range ids {
		if _, err := tx.CreateRel(ids[i], ids[(i+1)%len(ids)], "KNOWS", map[string]any{"since": int64(2000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("Person", "name", index.Hybrid); err != nil {
		t.Fatal(err)
	}
	return ids
}

func wantClean(t *testing.T, rep *fsck.Report) {
	t.Helper()
	if !rep.OK() {
		t.Fatalf("expected clean image:\n%s", rep)
	}
}

func wantViolation(t *testing.T, rep *fsck.Report, pass string) {
	t.Helper()
	for _, v := range rep.Violations {
		if v.Pass == pass {
			return
		}
	}
	t.Fatalf("expected a %q violation, got:\n%s", pass, rep)
}

func TestCheckCleanHealthyImage(t *testing.T) {
	e := newEngine(t)
	seedGraph(t, e)
	rep := fsck.Check(e)
	wantClean(t, rep)
	if rep.Nodes != 4 || rep.Rels != 4 {
		t.Errorf("coverage: nodes=%d rels=%d, want 4/4", rep.Nodes, rep.Rels)
	}
	if rep.PropRecords == 0 || rep.DictCodes == 0 || rep.IndexEntries != 4 {
		t.Errorf("coverage: props=%d dict=%d idx=%d", rep.PropRecords, rep.DictCodes, rep.IndexEntries)
	}
}

func TestCheckCleanAfterCrashRecovery(t *testing.T) {
	e := newEngine(t)
	seedGraph(t, e)

	// Simulate a power failure and recover, as the crash explorer does.
	dev := e.Device()
	e.Close()
	dev.Crash()
	e2, err := core.Reopen(dev, core.Config{Mode: core.PMem, Profile: &pmem.Profile{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	wantClean(t, fsck.Check(e2))
}

func TestCheckCleanWithTombstones(t *testing.T) {
	e := newEngine(t)
	ids := seedGraph(t, e)
	// Keep the engine non-quiescent so GC leaves the tombstones in place.
	holder := e.Begin()
	defer holder.Abort()
	// Delete one node and its incident rels (live rels to a tombstoned
	// endpoint would rightly be flagged). Collect the incident rel ids with
	// a reader first — MVTO aborts a writer older than a reader.
	rtx := e.Begin()
	snap, err := rtx.GetNode(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	var relIDs []uint64
	for _, it := range []*core.AdjIter{rtx.NewOutRelIter(snap, 0), rtx.NewInRelIter(snap, 0)} {
		for {
			ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			relIDs = append(relIDs, it.Rel().ID)
		}
	}
	rtx.Abort()
	tx := e.Begin()
	for _, rid := range relIDs {
		if err := tx.DeleteRel(rid); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.DeleteNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	wantClean(t, fsck.Check(e))
}

func TestCheckDetectsDanglingIndexEntry(t *testing.T) {
	e := newEngine(t)
	ids := seedGraph(t, e)
	tree, ok := e.IndexFor("Person", "name")
	if !ok {
		t.Fatal("index missing")
	}
	v, err := e.EncodeValue("zelda")
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(v, ids[len(ids)-1]+100); err != nil {
		t.Fatal(err)
	}
	wantViolation(t, fsck.Check(e), "indexes")
}

func TestCheckDetectsMissingIndexEntry(t *testing.T) {
	e := newEngine(t)
	ids := seedGraph(t, e)
	tree, _ := e.IndexFor("Person", "name")
	v, _ := e.EncodeValue("alice")
	if !tree.Delete(v, ids[0]) {
		t.Fatal("entry not found")
	}
	rep := fsck.Check(e)
	wantViolation(t, rep, "indexes")
	found := false
	for _, viol := range rep.Violations {
		if strings.Contains(viol.Detail, "missing from shard") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a missing-entry detail, got:\n%s", rep)
	}
}

func TestCheckDetectsBrokenAdjacency(t *testing.T) {
	e := newEngine(t)
	ids := seedGraph(t, e)
	off, ok := e.Nodes().RecordOffset(ids[0])
	if !ok {
		t.Fatal("node slot missing")
	}
	// Point the out-chain head at a relationship slot that was never
	// allocated.
	e.Device().WriteU64(off+storage.NOut, 9999)
	wantViolation(t, fsck.Check(e), "adjacency")
}

func TestCheckDetectsFutureTimestamp(t *testing.T) {
	e := newEngine(t)
	ids := seedGraph(t, e)
	off, _ := e.Nodes().RecordOffset(ids[1])
	e.Device().WriteU64(off+storage.NBts, e.Watermark()+100)
	wantViolation(t, fsck.Check(e), "records")
}

func TestCheckDetectsSharedPropChain(t *testing.T) {
	e := newEngine(t)
	ids := seedGraph(t, e)
	dev := e.Device()
	offA, _ := e.Nodes().RecordOffset(ids[0])
	offB, _ := e.Nodes().RecordOffset(ids[1])
	// Node B now aliases node A's property chain.
	dev.WriteU64(offB+storage.NProps, dev.ReadU64(offA+storage.NProps))
	wantViolation(t, fsck.Check(e), "props")
}
