// Package fsck verifies the structural invariants of a recovered durable
// graph image. It is the checking half of the crash-exploration harness
// (internal/crashx drives it at every enumerated crash point): recovery
// (core.Reopen) makes the image usable, fsck proves it is *consistent* —
// every invariant the paper's failure-atomicity claim (C4) promises to
// preserve across arbitrary crashes.
//
// The passes and what each defends:
//
//   - records: version validity — recovery left no transaction locks, no
//     version carries a timestamp beyond the persisted commit watermark,
//     begin/end timestamps are ordered, and the tombstone flag agrees with
//     the end timestamp.
//   - adjacency: referential integrity of the linked relationship lists —
//     endpoints exist, out/in chains are acyclic and only contain
//     relationships anchored at the right node, and every live
//     relationship is reachable exactly once from each endpoint.
//   - props: property chains are acyclic, unshared, owned by the record
//     that references them, and decodable through the dictionary.
//   - dict: the persistent code↔string mapping is a bijection.
//   - indexes: every tree is structurally sound (ordering, leaf chain,
//     inner-level agreement) and agrees with the primary tables — every
//     entry is justified by a stored property and every live node's
//     indexed property has an entry.
//   - undolog: no transaction is still pending after recovery.
package fsck

import (
	"fmt"
	"strings"

	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// Violation is one broken invariant.
type Violation struct {
	Pass   string // which pass found it
	Detail string
}

func (v Violation) String() string { return v.Pass + ": " + v.Detail }

// Report is the outcome of a full check.
type Report struct {
	Violations []Violation

	// Coverage counters: how much of the image each pass visited.
	Nodes        uint64
	Rels         uint64
	PropRecords  uint64
	DictCodes    uint64
	IndexEntries uint64
}

// OK reports whether the image passed every check.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsck: %d nodes, %d rels, %d prop records, %d dict codes, %d index entries",
		r.Nodes, r.Rels, r.PropRecords, r.DictCodes, r.IndexEntries)
	if r.OK() {
		b.WriteString(": clean")
		return b.String()
	}
	fmt.Fprintf(&b, ": %d violations", len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

func (r *Report) addf(pass, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Check runs every pass against the engine's current durable image. The
// engine must be quiescent (no in-flight transactions) — the intended
// callers check freshly recovered engines, where that holds by
// construction.
func Check(e *core.Engine) *Report {
	r := &Report{}
	r.checkRecords(e)
	r.checkAdjacency(e)
	r.checkProps(e)
	r.checkDict(e)
	r.checkIndexes(e)
	r.checkUndoLog(e)
	return r
}

// --- records ---

//poseidonlint:ignore seqlock fsck verifies a quiesced image offline; there are no concurrent writers to race the raw reads
func (r *Report) checkRecords(e *core.Engine) {
	const pass = "records"
	dev := e.Device()
	wm := e.Watermark()
	check := func(kind string, id uint64, txn, bts, ets uint64, flags uint32, label uint32) {
		if txn != 0 {
			r.addf(pass, "%s %d: transaction lock %d survived recovery", kind, id, txn)
		}
		if bts == 0 {
			r.addf(pass, "%s %d: occupied slot with begin timestamp 0", kind, id)
		}
		if bts > wm {
			r.addf(pass, "%s %d: begin timestamp %d beyond commit watermark %d", kind, id, bts, wm)
		}
		if ets != core.Infinity {
			if ets > wm {
				r.addf(pass, "%s %d: end timestamp %d beyond commit watermark %d", kind, id, ets, wm)
			}
			if ets < bts {
				r.addf(pass, "%s %d: end timestamp %d before begin timestamp %d", kind, id, ets, bts)
			}
			if flags&storage.FlagTombstone == 0 {
				r.addf(pass, "%s %d: closed validity window without tombstone flag", kind, id)
			}
		} else if flags&storage.FlagTombstone != 0 {
			r.addf(pass, "%s %d: tombstone flag on an open validity window", kind, id)
		}
		if _, err := e.Dict().Decode(uint64(label)); err != nil {
			r.addf(pass, "%s %d: label code %d not in dictionary: %v", kind, id, label, err)
		}
	}
	e.Nodes().Scan(func(id, off uint64) bool {
		r.Nodes++
		rec := storage.ReadNodeRec(dev, off)
		check("node", id, rec.TxnID, rec.Bts, rec.Ets, rec.Flags, rec.Label)
		return true
	})
	e.Rels().Scan(func(id, off uint64) bool {
		r.Rels++
		rec := storage.ReadRelRec(dev, off)
		check("rel", id, rec.TxnID, rec.Bts, rec.Ets, rec.Flags, rec.Label)
		return true
	})
}

// --- adjacency ---

//poseidonlint:ignore seqlock fsck verifies a quiesced image offline; there are no concurrent writers to race the raw reads
func (r *Report) checkAdjacency(e *core.Engine) {
	const pass = "adjacency"
	dev := e.Device()
	rels := e.Rels()
	nodes := e.Nodes()
	maxSteps := rels.MaxID() + 1

	// seenOut/seenIn count how many times each relationship id occurs on
	// any out/in chain; cross-checked against liveness afterwards.
	seenOut := make(map[uint64]int)
	seenIn := make(map[uint64]int)

	walk := func(nodeID, head uint64, out bool, seen map[uint64]int) {
		dir, nextField, anchorField := "out", uint64(storage.RNextSrc), uint64(storage.RSrc)
		if !out {
			dir, nextField, anchorField = "in", storage.RNextDst, storage.RDst
		}
		visited := make(map[uint64]bool)
		cur := head
		var steps uint64
		for cur != storage.NilID {
			if steps++; steps > maxSteps {
				r.addf(pass, "node %d: %s-chain longer than the relationship table (cycle?)", nodeID, dir)
				return
			}
			if visited[cur] {
				r.addf(pass, "node %d: %s-chain cycles at rel %d", nodeID, dir, cur)
				return
			}
			visited[cur] = true
			off, ok := rels.RecordOffset(cur)
			if !ok || !rels.Occupied(cur) {
				r.addf(pass, "node %d: %s-chain references missing rel %d", nodeID, dir, cur)
				return
			}
			if anchor := dev.ReadU64(off + anchorField); anchor != nodeID {
				r.addf(pass, "node %d: %s-chain contains rel %d anchored at node %d", nodeID, dir, cur, anchor)
			}
			seen[cur]++
			cur = dev.ReadU64(off + nextField)
		}
	}

	nodes.Scan(func(id, off uint64) bool {
		walk(id, dev.ReadU64(off+storage.NOut), true, seenOut)
		walk(id, dev.ReadU64(off+storage.NIn), false, seenIn)
		return true
	})

	rels.Scan(func(id, off uint64) bool {
		rec := storage.ReadRelRec(dev, off)
		for _, ep := range []struct {
			name string
			node uint64
			seen map[uint64]int
		}{{"src", rec.Src, seenOut}, {"dst", rec.Dst, seenIn}} {
			if _, ok := nodes.RecordOffset(ep.node); !ok || !nodes.Occupied(ep.node) {
				r.addf(pass, "rel %d: %s node %d missing", id, ep.name, ep.node)
				continue
			}
			n := ep.seen[id]
			live := rec.Ets == core.Infinity
			switch {
			case live && n != 1:
				r.addf(pass, "rel %d: live but linked %d times from its %s node %d (want 1)", id, n, ep.name, ep.node)
			case !live && n > 1:
				// Tombstoned rels may be mid-unlink (0 or 1 links is fine).
				r.addf(pass, "rel %d: tombstoned yet linked %d times from its %s node %d", id, n, ep.name, ep.node)
			}
		}
		return true
	})
}

// --- props ---

func (r *Report) checkProps(e *core.Engine) {
	const pass = "props"
	dev := e.Device()
	props := e.Props()
	maxSteps := props.MaxID() + 1

	// owner[propID] = first owner that reached it; chains must not share
	// records.
	owner := make(map[uint64]uint64)

	walk := func(kind string, ownerID, head uint64) {
		visited := make(map[uint64]bool)
		cur := head
		var steps uint64
		for cur != storage.NilID {
			if steps++; steps > maxSteps {
				r.addf(pass, "%s %d: property chain longer than the table (cycle?)", kind, ownerID)
				return
			}
			if visited[cur] {
				r.addf(pass, "%s %d: property chain cycles at record %d", kind, ownerID, cur)
				return
			}
			visited[cur] = true
			off, ok := props.RecordOffset(cur)
			if !ok || !props.Occupied(cur) {
				r.addf(pass, "%s %d: property chain references missing record %d", kind, ownerID, cur)
				return
			}
			if prev, shared := owner[cur]; shared {
				r.addf(pass, "%s %d: property record %d already owned by %d", kind, ownerID, cur, prev)
				return
			}
			owner[cur] = ownerID
			if po := dev.ReadU64(off + storage.POwner); po != ownerID {
				r.addf(pass, "%s %d: property record %d back-pointer names owner %d", kind, ownerID, cur, po)
			}
			cur = dev.ReadU64(off + storage.PNext)
		}
	}

	e.Nodes().Scan(func(id, off uint64) bool {
		walk("node", id, dev.ReadU64(off+storage.NProps))
		return true
	})
	e.Rels().Scan(func(id, off uint64) bool {
		walk("rel", id, dev.ReadU64(off+storage.RProps))
		return true
	})

	// Every occupied property record must be reachable from its owner, and
	// its items must decode.
	props.Scan(func(id, off uint64) bool {
		r.PropRecords++
		if _, reached := owner[id]; !reached {
			r.addf(pass, "property record %d occupied but unreachable from any owner", id)
		}
		// Decode just this record's items (not the chain: later records
		// are visited by their own scan step).
		for j := uint64(0); j < storage.PItemsMax; j++ {
			item := off + storage.PItems + j*storage.PItemSize
			kt := dev.ReadU64(item)
			key, typ := uint32(kt), storage.ValueType(kt>>32)
			if key == 0 && typ == storage.TypeNil {
				continue
			}
			if _, err := e.Dict().Decode(uint64(key)); err != nil {
				r.addf(pass, "property record %d: key code %d not in dictionary", id, key)
			}
			if typ == storage.TypeString {
				if _, err := e.Dict().Decode(dev.ReadU64(item + 8)); err != nil {
					r.addf(pass, "property record %d: string value code %d not in dictionary", id, dev.ReadU64(item+8))
				}
			}
		}
		return true
	})
}

// --- dict ---

func (r *Report) checkDict(e *core.Engine) {
	const pass = "dict"
	d := e.Dict()
	r.DictCodes = d.Count()
	for _, p := range d.CheckIntegrity() {
		r.addf(pass, "%s", p)
	}
}

// --- indexes ---

//poseidonlint:ignore seqlock fsck verifies a quiesced image offline; there are no concurrent writers to race the raw reads
func (r *Report) checkIndexes(e *core.Engine) {
	const pass = "indexes"
	dev := e.Device()
	nodes := e.Nodes()
	props := e.Props()
	infos := e.Indexes()
	// Indexes are sharded: tree s of index (label, key) holds entries only
	// for node ids owned by shard s. The forward pass checks shard
	// membership per tree; the backward pass looks the node up in its own
	// shard's tree.
	type famKey struct{ label, key uint32 }
	families := make(map[famKey][]*core.IndexInfo)
	for i := range infos {
		info := &infos[i]
		fk := famKey{info.Label, info.Key}
		families[fk] = append(families[fk], info)

		name := fmt.Sprintf("index(%d,%d) shard %d", info.Label, info.Key, info.Shard)
		for _, p := range info.Tree.CheckIntegrity() {
			r.addf(pass, "%s: %s", name, p)
		}
		// Forward: every entry must be justified by a stored property of a
		// node the tree's shard owns.
		info.Tree.WalkLeaves(func(_ uint64, entries []index.Entry, _ uint64) bool {
			for _, ent := range entries {
				r.IndexEntries++
				if s := nodes.ShardOf(ent.ID); s != info.Shard {
					r.addf(pass, "%s: entry (%v, %d) belongs to shard %d", name, ent.Key, ent.ID, s)
					continue
				}
				off, ok := nodes.RecordOffset(ent.ID)
				if !ok || !nodes.Occupied(ent.ID) {
					r.addf(pass, "%s: entry (%v, %d) references missing node", name, ent.Key, ent.ID)
					continue
				}
				rec := storage.ReadNodeRec(dev, off)
				if rec.Label != info.Label {
					r.addf(pass, "%s: entry (%v, %d) references node with label %d", name, ent.Key, ent.ID, rec.Label)
					continue
				}
				v, ok := storage.PropValue(props, rec.Props, info.Key)
				if !ok || v != ent.Key {
					r.addf(pass, "%s: entry (%v, %d) does not match stored property (%v, present=%v)", name, ent.Key, ent.ID, v, ok)
				}
			}
			return true
		})
	}
	for fk, fam := range families {
		name := fmt.Sprintf("index(%d,%d)", fk.label, fk.key)
		byShard := make(map[int]*core.IndexInfo, len(fam))
		for _, info := range fam {
			if dup := byShard[info.Shard]; dup != nil {
				r.addf(pass, "%s: duplicate tree for shard %d", name, info.Shard)
			}
			byShard[info.Shard] = info
		}
		// Backward: every live matching node must have its entry in its own
		// shard's tree.
		nodes.Scan(func(id, off uint64) bool {
			rec := storage.ReadNodeRec(dev, off)
			if rec.Label != fk.label || rec.Ets != core.Infinity {
				return true
			}
			if v, ok := storage.PropValue(props, rec.Props, fk.key); ok {
				info := byShard[nodes.ShardOf(id)]
				if info == nil {
					r.addf(pass, "%s: no tree for shard %d (live node %d)", name, nodes.ShardOf(id), id)
				} else if !info.Tree.Contains(v, id) {
					r.addf(pass, "%s: live node %d with value %v missing from shard %d", name, id, v, info.Shard)
				}
			}
			return true
		})
	}
}

// --- undo log ---

func (r *Report) checkUndoLog(e *core.Engine) {
	if n := e.Pool().LogPending(); n != 0 {
		r.addf("undolog", "%d undo-log entries still pending after recovery", n)
	}
}
