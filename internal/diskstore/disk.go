// Package diskstore implements the paper's disk baseline (§7.3): a
// traditional page-based graph store — 4 KiB slotted pages behind a
// buffer pool with CLOCK eviction, a write-ahead log whose commit fsync
// dominates update latency, and a DRAM hash index over node properties.
// It stands in for the "open-source native graph database storing primary
// data on SSD with an additional DRAM index" used as the DISK baseline.
//
// The store deliberately keeps the disk-era cost structure the paper
// contrasts against PMem: block-granular access (reading one 64-byte
// record drags in a whole page), buffer-pool bookkeeping on every access,
// and synchronous log flushes on commit.
package diskstore

import (
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the disk block size.
const PageSize = 4096

// Latencies models the simulated SSD (Intel DC P4501-class; values keep
// the paper's order-of-magnitude gap to PMem visible above scheduler
// noise).
type Latencies struct {
	Read  time.Duration // random 4 KiB read
	Write time.Duration // 4 KiB write (buffered)
	Fsync time.Duration // log flush barrier
	// Hit is the cost of a buffer-pool hit: latch acquisition, hash
	// probe, pin bookkeeping and record indirection. Traditional
	// disk-era engines pay this on every page access even when the
	// working set is fully cached — the reason the paper's DISK-i
	// baseline stays behind the PMem engine on hot runs.
	Hit time.Duration
}

// DefaultLatencies returns SSD-like defaults.
func DefaultLatencies() Latencies {
	return Latencies{
		Read:  60 * time.Microsecond,
		Write: 20 * time.Microsecond,
		Fsync: 120 * time.Microsecond,
		Hit:   2 * time.Microsecond,
	}
}

// DiskStats counts device-level operations.
type DiskStats struct {
	Reads  atomic.Uint64
	Writes atomic.Uint64
	Fsyncs atomic.Uint64
}

// disk is the simulated block device: an in-memory page array with
// injected latency.
type disk struct {
	mu    sync.Mutex
	pages map[uint64][]byte
	lat   Latencies
	stats *DiskStats
}

func newDisk(lat Latencies, stats *DiskStats) *disk {
	return &disk{pages: make(map[uint64][]byte), lat: lat, stats: stats}
}

func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}

// read copies page pid into buf, paying the random-read latency.
func (d *disk) read(pid uint64, buf []byte) {
	d.stats.Reads.Add(1)
	spin(d.lat.Read)
	d.mu.Lock()
	p := d.pages[pid]
	d.mu.Unlock()
	if p == nil {
		for i := range buf {
			buf[i] = 0
		}
		return
	}
	copy(buf, p)
}

// write stores buf as page pid.
func (d *disk) write(pid uint64, buf []byte) {
	d.stats.Writes.Add(1)
	spin(d.lat.Write)
	p := make([]byte, PageSize)
	copy(p, buf)
	d.mu.Lock()
	d.pages[pid] = p
	d.mu.Unlock()
}

// fsync is the commit barrier.
func (d *disk) fsync() {
	d.stats.Fsyncs.Add(1)
	spin(d.lat.Fsync)
}

// --- buffer pool ---

type frame struct {
	pid   uint64
	data  []byte
	dirty bool
	ref   bool
	valid bool
}

// bufferPool is a CLOCK-eviction page cache. All methods require the
// store's global lock.
type bufferPool struct {
	disk   *disk
	frames []frame
	index  map[uint64]int
	hand   int
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newBufferPool(d *disk, capacity int) *bufferPool {
	bp := &bufferPool{
		disk:   d,
		frames: make([]frame, capacity),
		index:  make(map[uint64]int, capacity),
	}
	for i := range bp.frames {
		bp.frames[i].data = make([]byte, PageSize)
	}
	return bp
}

// get pins nothing (single global lock): it returns the frame data for
// pid, reading it from disk on a miss.
func (bp *bufferPool) get(pid uint64) []byte {
	if fi, ok := bp.index[pid]; ok {
		bp.hits.Add(1)
		spin(bp.disk.lat.Hit)
		bp.frames[fi].ref = true
		return bp.frames[fi].data
	}
	bp.misses.Add(1)
	fi := bp.evict()
	f := &bp.frames[fi]
	if f.valid {
		if f.dirty {
			bp.disk.write(f.pid, f.data)
		}
		delete(bp.index, f.pid)
	}
	bp.disk.read(pid, f.data)
	f.pid, f.dirty, f.ref, f.valid = pid, false, true, true
	bp.index[pid] = fi
	return f.data
}

// markDirty flags the resident page as modified.
func (bp *bufferPool) markDirty(pid uint64) {
	if fi, ok := bp.index[pid]; ok {
		bp.frames[fi].dirty = true
	}
}

// evict runs the CLOCK hand to find a victim frame.
func (bp *bufferPool) evict() int {
	for {
		f := &bp.frames[bp.hand]
		i := bp.hand
		bp.hand = (bp.hand + 1) % len(bp.frames)
		if !f.valid {
			return i
		}
		if f.ref {
			f.ref = false
			continue
		}
		return i
	}
}

// flushAll writes back every dirty page (checkpoint).
func (bp *bufferPool) flushAll() {
	for i := range bp.frames {
		f := &bp.frames[i]
		if f.valid && f.dirty {
			bp.disk.write(f.pid, f.data)
			f.dirty = false
		}
	}
	bp.disk.fsync()
}

// HitRate returns the buffer pool hit ratio.
func (bp *bufferPool) hitRate() float64 {
	h, m := bp.hits.Load(), bp.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
