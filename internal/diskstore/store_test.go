package diskstore

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"
)

// fast returns zero-latency config for functional tests.
func fast() Config {
	return Config{Lat: &Latencies{}}
}

func TestAddAndReadNode(t *testing.T) {
	s := Open(fast())
	tx := s.Begin()
	id := tx.AddNode("Person", map[string]any{"name": "alice", "age": int64(30), "pi": 3.14, "ok": true})
	tx.Commit()

	tx2 := s.Begin()
	defer tx2.Abort()
	n, err := tx2.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "Person" {
		t.Errorf("label = %q", n.Label)
	}
	want := map[string]any{"name": "alice", "age": int64(30), "pi": 3.14, "ok": true}
	for k, v := range want {
		if n.Props[k] != v {
			t.Errorf("%s = %v (%T), want %v", k, n.Props[k], n.Props[k], v)
		}
	}
	if _, err := tx2.Node(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing node err = %v", err)
	}
}

func TestManyPropsChainAcrossCells(t *testing.T) {
	s := Open(fast())
	props := map[string]any{}
	for i := 0; i < 11; i++ { // 4 cells
		props[fmt.Sprintf("k%02d", i)] = int64(i)
	}
	tx := s.Begin()
	id := tx.AddNode("N", props)
	tx.Commit()
	tx2 := s.Begin()
	defer tx2.Abort()
	n, _ := tx2.Node(id)
	if len(n.Props) != 11 {
		t.Fatalf("got %d props, want 11", len(n.Props))
	}
	if v, ok := tx2.NodeProp(id, "k07"); !ok || v != int64(7) {
		t.Errorf("NodeProp(k07) = %v,%v", v, ok)
	}
	if _, ok := tx2.NodeProp(id, "nope"); ok {
		t.Error("NodeProp found missing key")
	}
}

func TestAdjacencyTraversal(t *testing.T) {
	s := Open(fast())
	tx := s.Begin()
	a := tx.AddNode("P", nil)
	b := tx.AddNode("P", nil)
	c := tx.AddNode("P", nil)
	r1 := tx.AddRel(a, b, "knows", map[string]any{"w": int64(1)})
	r2 := tx.AddRel(a, c, "likes", nil)
	r3 := tx.AddRel(b, a, "knows", nil)
	tx.Commit()

	tx2 := s.Begin()
	defer tx2.Abort()
	var out []uint64
	tx2.Out(a, "", func(r RelData) bool { out = append(out, r.ID); return true })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) != 2 || out[0] != r1 || out[1] != r2 {
		t.Errorf("out(a) = %v, want [%d %d]", out, r1, r2)
	}
	out = out[:0]
	tx2.Out(a, "knows", func(r RelData) bool {
		out = append(out, r.ID)
		if r.Src != a || r.Dst != b || r.Props["w"] != int64(1) {
			t.Errorf("rel data wrong: %+v", r)
		}
		return true
	})
	if len(out) != 1 || out[0] != r1 {
		t.Errorf("out(a,knows) = %v", out)
	}
	var in []uint64
	tx2.In(a, "", func(r RelData) bool { in = append(in, r.ID); return true })
	if len(in) != 1 || in[0] != r3 {
		t.Errorf("in(a) = %v", in)
	}
	// Unknown label matches nothing.
	n := 0
	tx2.Out(a, "ghost", func(RelData) bool { n++; return true })
	if n != 0 {
		t.Errorf("ghost label matched %d rels", n)
	}
}

func TestSetPropsAndIndex(t *testing.T) {
	s := Open(fast())
	tx := s.Begin()
	ids := make([]uint64, 10)
	for i := range ids {
		ids[i] = tx.AddNode("Person", map[string]any{"num": int64(i)})
	}
	tx.Commit()
	s.CreateIndex("Person", "num")

	tx2 := s.Begin()
	got, err := tx2.Lookup("Person", "num", int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != ids[7] {
		t.Errorf("lookup(7) = %v, want [%d]", got, ids[7])
	}
	// Update moves the index entry.
	if err := tx2.SetNodeProps(ids[7], map[string]any{"num": int64(70)}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	tx3 := s.Begin()
	defer tx3.Abort()
	if got, _ := tx3.Lookup("Person", "num", int64(7)); len(got) != 0 {
		t.Errorf("lookup(7) after update = %v", got)
	}
	if got, _ := tx3.Lookup("Person", "num", int64(70)); len(got) != 1 || got[0] != ids[7] {
		t.Errorf("lookup(70) = %v", got)
	}
	if n, _ := tx3.Node(ids[7]); n.Props["num"] != int64(70) {
		t.Errorf("num = %v", n.Props["num"])
	}
	// New inserts are indexed immediately.
	tx3.Abort()
	tx4 := s.Begin()
	nid := tx4.AddNode("Person", map[string]any{"num": int64(1000)})
	if got, _ := tx4.Lookup("Person", "num", int64(1000)); len(got) != 1 || got[0] != nid {
		t.Errorf("lookup(1000) = %v", got)
	}
	tx4.Commit()

	if _, err := (&Tx{s: s}).Lookup("Ghost", "num", int64(1)); !errors.Is(err, ErrNoIndex) {
		t.Errorf("lookup without index = %v", err)
	}
}

func TestBufferPoolEvictionCorrectness(t *testing.T) {
	// Tiny pool forces constant eviction; data must survive round trips
	// through the simulated disk.
	s := Open(Config{BufferPages: 8, Lat: &Latencies{}})
	tx := s.Begin()
	const n = 2000 // ~32 node pages + prop pages >> 8 frames
	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		ids[i] = tx.AddNode("N", map[string]any{"v": int64(i * 3)})
	}
	for i := 0; i < n-1; i++ {
		tx.AddRel(ids[i], ids[i+1], "next", nil)
	}
	tx.Commit()

	tx2 := s.Begin()
	defer tx2.Abort()
	for i := 0; i < n; i += 37 {
		nd, err := tx2.Node(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if nd.Props["v"] != int64(i*3) {
			t.Fatalf("node %d v = %v, want %d", i, nd.Props["v"], i*3)
		}
	}
	// Chain traversal through evicted pages.
	count := 0
	tx2.Out(ids[500], "next", func(r RelData) bool {
		if r.Dst != ids[501] {
			t.Errorf("rel dst = %d, want %d", r.Dst, ids[501])
		}
		count++
		return true
	})
	if count != 1 {
		t.Errorf("out count = %d", count)
	}
	if s.Stats().Reads.Load() == 0 {
		t.Error("tiny pool produced no disk reads")
	}
}

func TestWALReplayRebuildsStore(t *testing.T) {
	s := Open(fast())
	tx := s.Begin()
	a := tx.AddNode("P", map[string]any{"name": "a"})
	b := tx.AddNode("P", map[string]any{"name": "b"})
	tx.AddRel(a, b, "knows", map[string]any{"since": int64(2020)})
	tx.SetNodeProps(a, map[string]any{"age": int64(5)})
	tx.Commit()

	// Uncommitted tail must not replay.
	tx2 := s.Begin()
	tx2.AddNode("P", map[string]any{"name": "ghost"})
	tx2.Abort()

	r := Replay(s, fast())
	rtx := r.Begin()
	defer rtx.Abort()
	if r.NodeCount() != 2 {
		t.Fatalf("replayed %d nodes, want 2", r.NodeCount())
	}
	n, err := rtx.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Props["name"] != "a" || n.Props["age"] != int64(5) {
		t.Errorf("replayed node props = %v", n.Props)
	}
	found := 0
	rtx.Out(0, "knows", func(rd RelData) bool {
		if rd.Props["since"] != int64(2020) {
			t.Errorf("replayed rel props = %v", rd.Props)
		}
		found++
		return true
	})
	if found != 1 {
		t.Errorf("replayed %d rels", found)
	}
}

func TestCommitPaysFsync(t *testing.T) {
	s := Open(Config{Lat: &Latencies{Fsync: time.Microsecond}})
	tx := s.Begin()
	tx.AddNode("P", nil)
	before := s.Stats().Fsyncs.Load()
	tx.Commit()
	if got := s.Stats().Fsyncs.Load(); got != before+1 {
		t.Errorf("fsyncs = %d, want %d", got, before+1)
	}
	// Read-only transactions do not fsync.
	tx2 := s.Begin()
	tx2.Node(0)
	tx2.Commit()
	if got := s.Stats().Fsyncs.Load(); got != before+1 {
		t.Errorf("read-only commit fsynced")
	}
}

func TestHotColdLatencyGap(t *testing.T) {
	lat := Latencies{Read: 200 * time.Microsecond}
	s := Open(Config{BufferPages: 64, Lat: &lat})
	tx := s.Begin()
	id := tx.AddNode("P", map[string]any{"v": int64(1)})
	tx.Commit()
	s.Checkpoint()

	// Evict everything by touching many other pages.
	tx2 := s.Begin()
	for i := 0; i < 5000; i++ {
		tx2.AddNode("Filler", nil)
	}
	tx2.Commit()

	tx3 := s.Begin()
	defer tx3.Abort()
	cold := timeIt(func() { tx3.Node(id) })
	hot := timeIt(func() { tx3.Node(id) })
	if cold < lat.Read {
		t.Errorf("cold read %v did not pay disk latency %v", cold, lat.Read)
	}
	if hot > cold/2 {
		t.Errorf("hot read %v not much faster than cold %v", hot, cold)
	}
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
