package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Record layout: fixed 64-byte records, 63 per page (the first 64 bytes
// of every page are the page header). Node, relationship and property
// records live in disjoint page-id spaces.
const (
	recSize     = 64
	recsPerPage = PageSize/recSize - 1

	nodeSpace = uint64(0) << 40
	relSpace  = uint64(1) << 40
	propSpace = uint64(2) << 40
)

// NilID marks an empty reference.
const NilID = ^uint64(0)

// Errors.
var (
	ErrNotFound = errors.New("diskstore: not found")
	ErrNoIndex  = errors.New("diskstore: no such index")
)

// Value mirrors the property value types of the main engine.
type Value struct {
	Type uint32 // 0 nil, 1 int, 2 float, 3 bool, 4 string-code
	Raw  uint64
}

// record field offsets (within the 64-byte record).
const (
	fLabel = 0 // u32
	fInUse = 4 // u32 (1 = live)
	// node:
	fOut   = 8
	fIn    = 16
	fProps = 24
	// rel:
	fSrc     = 8
	fDst     = 16
	fNextSrc = 24
	fNextDst = 32
	fRProps  = 40
	// prop cell: next u64 at 8; 3 items × 16 bytes at 16
	fPNext  = 8
	fPItems = 16
)

// Store is the disk-based graph store.
type Store struct {
	mu    sync.Mutex
	disk  *disk
	pool  *bufferPool
	wal   *wal
	stats DiskStats

	nextNode, nextRel, nextProp uint64

	// DRAM dictionary for labels/keys/strings (rebuilt from the WAL on
	// recovery).
	dictFwd map[string]uint64
	dictRev []string

	// DRAM secondary indexes: (label, key) -> value -> ids.
	indexes map[[2]uint64]map[Value][]uint64
}

// Config configures the store.
type Config struct {
	// BufferPages sizes the buffer pool (default 4096 pages = 16 MiB).
	BufferPages int
	// Lat overrides the device latencies.
	Lat *Latencies
}

// Open creates an empty store.
func Open(cfg Config) *Store {
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 4096
	}
	lat := DefaultLatencies()
	if cfg.Lat != nil {
		lat = *cfg.Lat
	}
	s := &Store{
		dictFwd: make(map[string]uint64),
		dictRev: []string{""},
		indexes: make(map[[2]uint64]map[Value][]uint64),
	}
	s.disk = newDisk(lat, &s.stats)
	s.pool = newBufferPool(s.disk, cfg.BufferPages)
	s.wal = newWAL(s.disk)
	return s
}

// Stats returns device operation counters.
func (s *Store) Stats() *DiskStats { return &s.stats }

// HitRate returns the buffer-pool hit rate.
func (s *Store) HitRate() float64 { return s.pool.hitRate() }

func (s *Store) encode(str string) uint64 {
	if c, ok := s.dictFwd[str]; ok {
		return c
	}
	c := uint64(len(s.dictRev))
	s.dictFwd[str] = c
	s.dictRev = append(s.dictRev, str)
	return c
}

func (s *Store) decode(code uint64) string {
	if code < uint64(len(s.dictRev)) {
		return s.dictRev[code]
	}
	return ""
}

// pageOf locates a record: page id and in-page offset.
func pageOf(space, id uint64) (uint64, int) {
	return space + id/recsPerPage, 64 + int(id%recsPerPage)*recSize
}

func (s *Store) rec(space, id uint64) ([]byte, uint64) {
	pid, off := pageOf(space, id)
	page := s.pool.get(pid)
	return page[off : off+recSize], pid
}

func getU64(rec []byte, off int) uint64    { return binary.LittleEndian.Uint64(rec[off:]) }
func putU64(rec []byte, off int, v uint64) { binary.LittleEndian.PutUint64(rec[off:], v) }
func getU32(rec []byte, off int) uint32    { return binary.LittleEndian.Uint32(rec[off:]) }
func putU32(rec []byte, off int, v uint32) { binary.LittleEndian.PutUint32(rec[off:], v) }

// --- transactions (single-writer, WAL at commit) ---

// Tx is a disk-store transaction. The store is single-writer: Begin
// blocks until the previous transaction finishes.
type Tx struct {
	s    *Store
	done bool
	ops  int
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx {
	s.mu.Lock()
	return &Tx{s: s}
}

// Commit flushes the WAL (fsync latency) and releases the store.
func (tx *Tx) Commit() error {
	if tx.done {
		return errors.New("diskstore: transaction done")
	}
	tx.done = true
	if tx.ops > 0 {
		tx.s.wal.commit()
	}
	tx.s.mu.Unlock()
	return nil
}

// Abort releases the store. The WAL tail is discarded; dirty pages may
// hold uncommitted data, which this performance-baseline store tolerates
// (the paper's baseline is evaluated for speed, not recovery).
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.s.wal.discard()
	tx.s.mu.Unlock()
}

func (tx *Tx) encodeValue(v any) Value {
	switch x := v.(type) {
	case int:
		return Value{Type: 1, Raw: uint64(int64(x))}
	case int64:
		return Value{Type: 1, Raw: uint64(x)}
	case float64:
		return Value{Type: 2, Raw: floatBits(x)}
	case bool:
		if x {
			return Value{Type: 3, Raw: 1}
		}
		return Value{Type: 3, Raw: 0}
	case string:
		return Value{Type: 4, Raw: tx.s.encode(x)}
	default:
		return Value{}
	}
}

// AddNode inserts a node and returns its id.
func (tx *Tx) AddNode(label string, props map[string]any) uint64 {
	s := tx.s
	id := s.nextNode
	s.nextNode++
	// Write the property chain first: a buffer-pool fetch may evict any
	// previously returned frame, so record slices are never used across
	// pool operations.
	propHead := tx.writeProps(props)
	rec, pid := s.rec(nodeSpace, id)
	putU32(rec, fLabel, uint32(s.encode(label)))
	putU32(rec, fInUse, 1)
	putU64(rec, fOut, NilID)
	putU64(rec, fIn, NilID)
	putU64(rec, fProps, propHead)
	s.pool.markDirty(pid)
	s.wal.logOp(opAddNode, id, label, props)
	tx.ops++
	s.indexAdd(uint64(getU32(rec, fLabel)), id, props)
	return id
}

// AddRel inserts a relationship and links it into both adjacency lists.
func (tx *Tx) AddRel(src, dst uint64, label string, props map[string]any) uint64 {
	s := tx.s
	id := s.nextRel
	s.nextRel++
	propHead := tx.writeProps(props)

	srcRec, srcPid := s.rec(nodeSpace, src)
	oldOut := getU64(srcRec, fOut)
	putU64(srcRec, fOut, id)
	s.pool.markDirty(srcPid)

	dstRec, dstPid := s.rec(nodeSpace, dst)
	oldIn := getU64(dstRec, fIn)
	putU64(dstRec, fIn, id)
	s.pool.markDirty(dstPid)

	rec, pid := s.rec(relSpace, id)
	putU32(rec, fLabel, uint32(s.encode(label)))
	putU32(rec, fInUse, 1)
	putU64(rec, fSrc, src)
	putU64(rec, fDst, dst)
	putU64(rec, fNextSrc, oldOut)
	putU64(rec, fNextDst, oldIn)
	putU64(rec, fRProps, propHead)
	s.pool.markDirty(pid)
	s.wal.logRel(id, src, dst, label, props)
	tx.ops++
	return id
}

// SetNodeProps merges property updates into a node.
func (tx *Tx) SetNodeProps(id uint64, props map[string]any) error {
	s := tx.s
	rec, _ := s.rec(nodeSpace, id)
	if getU32(rec, fInUse) == 0 {
		return fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	old := s.readProps(getU64(rec, fProps))
	label := uint64(getU32(rec, fLabel))
	s.indexRemoveVals(label, id, old)
	for k, v := range props {
		if v == nil {
			delete(old, k)
		} else {
			old[k] = v
		}
	}
	head := tx.writeProps(old)
	rec, pid := s.rec(nodeSpace, id) // refetch: writeProps may have evicted
	putU64(rec, fProps, head)
	s.pool.markDirty(pid)
	s.wal.logOp(opSetProps, id, "", props)
	tx.ops++
	s.indexAdd(label, id, old)
	return nil
}

// writeProps stores a property map as a chain of 64-byte cells, returning
// the head id.
func (tx *Tx) writeProps(props map[string]any) uint64 {
	s := tx.s
	if len(props) == 0 {
		return NilID
	}
	type kv struct {
		k uint64
		v Value
	}
	items := make([]kv, 0, len(props))
	for k, v := range props {
		items = append(items, kv{s.encode(k), tx.encodeValue(v)})
	}
	// Allocate all cell ids up front so each cell's next pointer is known
	// when its page is resident (frames may be evicted between fetches).
	nCells := (len(items) + 2) / 3
	ids := make([]uint64, nCells)
	for i := range ids {
		ids[i] = s.nextProp
		s.nextProp++
	}
	for ci := 0; ci < nCells; ci++ {
		rec, pid := s.rec(propSpace, ids[ci])
		putU32(rec, fInUse, 1)
		next := NilID
		if ci+1 < nCells {
			next = ids[ci+1]
		}
		putU64(rec, fPNext, next)
		for j := 0; j < 3; j++ {
			base := fPItems + j*16
			if k := ci*3 + j; k < len(items) {
				it := items[k]
				putU32(rec, base, uint32(it.k))
				putU32(rec, base+4, it.v.Type)
				putU64(rec, base+8, it.v.Raw)
			} else {
				putU32(rec, base, 0)
				putU32(rec, base+4, 0)
				putU64(rec, base+8, 0)
			}
		}
		s.pool.markDirty(pid)
	}
	return ids[0]
}

func (s *Store) readProps(head uint64) map[string]any {
	out := map[string]any{}
	for id := head; id != NilID; {
		rec, _ := s.rec(propSpace, id)
		for j := 0; j < 3; j++ {
			base := fPItems + j*16
			key := getU32(rec, base)
			if key == 0 {
				continue
			}
			v := Value{Type: getU32(rec, base+4), Raw: getU64(rec, base+8)}
			out[s.decode(uint64(key))] = s.decodeValue(v)
		}
		id = getU64(rec, fPNext)
	}
	return out
}

func (s *Store) decodeValue(v Value) any {
	switch v.Type {
	case 1:
		return int64(v.Raw)
	case 2:
		return floatFromBits(v.Raw)
	case 3:
		return v.Raw != 0
	case 4:
		return s.decode(v.Raw)
	default:
		return nil
	}
}

// --- reads (must run inside a transaction for the single-writer lock) ---

// NodeData is a decoded node.
type NodeData struct {
	ID    uint64
	Label string
	Props map[string]any
}

// RelData is a decoded relationship.
type RelData struct {
	ID       uint64
	Label    string
	Src, Dst uint64
	Props    map[string]any
}

// Node reads a node.
func (tx *Tx) Node(id uint64) (NodeData, error) {
	s := tx.s
	if id >= s.nextNode {
		return NodeData{}, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	rec, _ := s.rec(nodeSpace, id)
	if getU32(rec, fInUse) == 0 {
		return NodeData{}, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	return NodeData{
		ID:    id,
		Label: s.decode(uint64(getU32(rec, fLabel))),
		Props: s.readProps(getU64(rec, fProps)),
	}, nil
}

// NodeProp reads one property of a node without decoding the full set.
func (tx *Tx) NodeProp(id uint64, key string) (any, bool) {
	s := tx.s
	kc, ok := s.dictFwd[key]
	if !ok {
		return nil, false
	}
	rec, _ := s.rec(nodeSpace, id)
	if getU32(rec, fInUse) == 0 {
		return nil, false
	}
	for pid := getU64(rec, fProps); pid != NilID; {
		prec, _ := s.rec(propSpace, pid)
		for j := 0; j < 3; j++ {
			base := fPItems + j*16
			if uint64(getU32(prec, base)) == kc {
				return s.decodeValue(Value{Type: getU32(prec, base+4), Raw: getU64(prec, base+8)}), true
			}
		}
		pid = getU64(prec, fPNext)
	}
	return nil, false
}

// Out visits the outgoing relationships of a node.
func (tx *Tx) Out(id uint64, label string, fn func(RelData) bool) {
	tx.adj(id, label, true, fn)
}

// In visits the incoming relationships of a node.
func (tx *Tx) In(id uint64, label string, fn func(RelData) bool) {
	tx.adj(id, label, false, fn)
}

func (tx *Tx) adj(id uint64, label string, out bool, fn func(RelData) bool) {
	s := tx.s
	var labelCode uint64
	if label != "" {
		c, ok := s.dictFwd[label]
		if !ok {
			return
		}
		labelCode = c
	}
	rec, _ := s.rec(nodeSpace, id)
	head, next := fOut, fNextSrc
	if !out {
		head, next = fIn, fNextDst
	}
	for rid := getU64(rec, head); rid != NilID; {
		rrec, _ := s.rec(relSpace, rid)
		cur := rid
		rid = getU64(rrec, next)
		if getU32(rrec, fInUse) == 0 {
			continue
		}
		if labelCode != 0 && uint64(getU32(rrec, fLabel)) != labelCode {
			continue
		}
		rd := RelData{
			ID:    cur,
			Label: s.decode(uint64(getU32(rrec, fLabel))),
			Src:   getU64(rrec, fSrc),
			Dst:   getU64(rrec, fDst),
			Props: s.readProps(getU64(rrec, fRProps)),
		}
		if !fn(rd) {
			return
		}
	}
}

// NodeCount returns the number of allocated node records.
func (s *Store) NodeCount() uint64 { return s.nextNode }

// --- DRAM index ---

// CreateIndex registers a DRAM hash index over (label, key) and backfills
// it.
func (s *Store) CreateIndex(label, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lc, kc := s.encode(label), s.encode(key)
	ik := [2]uint64{lc, kc}
	if _, dup := s.indexes[ik]; dup {
		return
	}
	idx := make(map[Value][]uint64)
	s.indexes[ik] = idx
	for id := uint64(0); id < s.nextNode; id++ {
		rec, _ := s.rec(nodeSpace, id)
		if getU32(rec, fInUse) == 0 || uint64(getU32(rec, fLabel)) != lc {
			continue
		}
		props := s.readProps(getU64(rec, fProps))
		s.indexAddLocked(idx, kc, id, props)
	}
}

func (s *Store) indexAdd(labelCode, id uint64, props map[string]any) {
	for ik, idx := range s.indexes {
		if ik[0] != labelCode {
			continue
		}
		s.indexAddLocked(idx, ik[1], id, props)
	}
}

func (s *Store) indexAddLocked(idx map[Value][]uint64, keyCode, id uint64, props map[string]any) {
	key := s.decode(keyCode)
	v, ok := props[key]
	if !ok {
		return
	}
	val := (&Tx{s: s}).encodeValue(v)
	idx[val] = append(idx[val], id)
}

func (s *Store) indexRemoveVals(labelCode, id uint64, props map[string]any) {
	for ik, idx := range s.indexes {
		if ik[0] != labelCode {
			continue
		}
		key := s.decode(ik[1])
		v, ok := props[key]
		if !ok {
			continue
		}
		val := (&Tx{s: s}).encodeValue(v)
		ids := idx[val]
		for i, x := range ids {
			if x == id {
				idx[val] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
	}
}

// Lookup finds node ids by indexed property value.
func (tx *Tx) Lookup(label, key string, v any) ([]uint64, error) {
	s := tx.s
	lc, ok1 := s.dictFwd[label]
	kc, ok2 := s.dictFwd[key]
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("%w: (%s,%s)", ErrNoIndex, label, key)
	}
	idx, ok := s.indexes[[2]uint64{lc, kc}]
	if !ok {
		return nil, fmt.Errorf("%w: (%s,%s)", ErrNoIndex, label, key)
	}
	return idx[tx.encodeValue(v)], nil
}

// DropCache flushes and empties the buffer pool, so subsequent reads hit
// the (simulated) disk — the cold-run state of the benchmarks.
func (s *Store) DropCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.flushAll()
	for i := range s.pool.frames {
		s.pool.frames[i].valid = false
	}
	s.pool.index = make(map[uint64]int, len(s.pool.frames))
}

// Checkpoint flushes all dirty pages and the log.
func (s *Store) Checkpoint() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.flushAll()
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
