package diskstore

import (
	"bytes"
	"encoding/gob"
)

// Write-ahead log. Logical operations are appended to an in-memory tail
// and flushed (with fsync latency) at commit. Replay rebuilds a store
// from the committed log — the baseline's recovery path, which is linear
// in the update history rather than near-instant like the PMem engine's.

type walOp uint8

const (
	opAddNode walOp = iota
	opAddRel
	opSetProps
)

type walRec struct {
	Op    walOp
	ID    uint64
	Src   uint64
	Dst   uint64
	Label string
	Props map[string]any
}

type wal struct {
	disk      *disk
	tail      []walRec // uncommitted
	committed []walRec
}

func newWAL(d *disk) *wal { return &wal{disk: d} }

func (w *wal) logOp(op walOp, id uint64, label string, props map[string]any) {
	w.tail = append(w.tail, walRec{Op: op, ID: id, Label: label, Props: props})
}

func (w *wal) logRel(id, src, dst uint64, label string, props map[string]any) {
	w.tail = append(w.tail, walRec{Op: opAddRel, ID: id, Src: src, Dst: dst, Label: label, Props: props})
}

// commit serializes the tail (cost proportional to its size) and pays the
// fsync barrier.
func (w *wal) commit() {
	if len(w.tail) == 0 {
		return
	}
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(w.tail)
	// One 4 KiB log write per filled page plus the barrier.
	for i := 0; i <= buf.Len()/PageSize; i++ {
		w.disk.stats.Writes.Add(1)
		spin(w.disk.lat.Write)
	}
	w.disk.fsync()
	w.committed = append(w.committed, w.tail...)
	w.tail = nil
}

func (w *wal) discard() { w.tail = nil }

// Replay rebuilds a fresh store from the committed log of src.
func Replay(src *Store, cfg Config) *Store {
	dst := Open(cfg)
	tx := dst.Begin()
	for _, r := range src.wal.committed {
		switch r.Op {
		case opAddNode:
			tx.AddNode(r.Label, r.Props)
		case opAddRel:
			tx.AddRel(r.Src, r.Dst, r.Label, r.Props)
		case opSetProps:
			tx.SetNodeProps(r.ID, r.Props)
		}
	}
	tx.Commit()
	return dst
}
