package storage

import "poseidon/internal/pmem"

// Typed record accessors. These are thin, explicit field readers/writers —
// the "AOT-compiled access methods" that both the interpreter and the JIT
// backend reuse (§6.2: reusing AOT-compiled code keeps generated code
// compliant with the design goals).

// ReadNodeRec loads a full node record into its volatile mirror.
func ReadNodeRec(dev *pmem.Device, off uint64) NodeRec {
	var words [NodeRecordSize / 8]uint64
	dev.ReadWords(off, words[:])
	return NodeRec{
		TxnID: words[0],
		Bts:   words[1],
		Ets:   words[2],
		Label: uint32(words[3]),
		Flags: uint32(words[3] >> 32),
		Out:   words[4],
		In:    words[5],
		Props: words[6],
	}
}

// WriteNodeRec stores a full node record. The caller is responsible for
// flushing (directly or through a transaction).
//
//pmem:deferred-flush callers flush via their transaction commit (or an explicit Persist) after linking the record
//poseidonlint:ignore torn-store the record range is undo-log covered (Snapshot/NoteWrite) by every caller, making the multi-word write failure-atomic
func WriteNodeRec(dev *pmem.Device, off uint64, r *NodeRec) {
	words := [NodeRecordSize / 8]uint64{
		r.TxnID,
		r.Bts,
		r.Ets,
		uint64(r.Label) | uint64(r.Flags)<<32,
		r.Out,
		r.In,
		r.Props,
	}
	dev.WriteWords(off, words[:])
}

// ReadRelRec loads a full relationship record into its volatile mirror.
func ReadRelRec(dev *pmem.Device, off uint64) RelRec {
	var words [RelRecordSize / 8]uint64
	dev.ReadWords(off, words[:])
	return RelRec{
		TxnID:   words[0],
		Bts:     words[1],
		Ets:     words[2],
		Label:   uint32(words[3]),
		Flags:   uint32(words[3] >> 32),
		Src:     words[4],
		Dst:     words[5],
		NextSrc: words[6],
		NextDst: words[7],
		Props:   words[8],
	}
}

// WriteRelRec stores a full relationship record. The caller is responsible
// for flushing.
//
//pmem:deferred-flush callers flush via their transaction commit (or an explicit Persist) after linking the record
//poseidonlint:ignore torn-store the record range is undo-log covered (Snapshot/NoteWrite) by every caller, making the multi-word write failure-atomic
func WriteRelRec(dev *pmem.Device, off uint64, r *RelRec) {
	words := [RelRecordSize / 8]uint64{
		r.TxnID,
		r.Bts,
		r.Ets,
		uint64(r.Label) | uint64(r.Flags)<<32,
		r.Src,
		r.Dst,
		r.NextSrc,
		r.NextDst,
		r.Props,
	}
	dev.WriteWords(off, words[:])
}
