package storage

import (
	"reflect"
	"testing"

	"poseidon/internal/pmemobj"
)

func writeProps(t *testing.T, pool *pmemobj.Pool, tbl *Table, owner uint64, props []Prop) uint64 {
	t.Helper()
	var head uint64
	err := pool.RunTx(func(tx *pmemobj.Tx) error {
		var err error
		head, err = WritePropChainTx(tx, tbl, owner, props)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return head
}

func TestPropChainRoundTrip(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, PropRecordSize, Options{})
	props := []Prop{
		{Key: 1, Val: IntValue(-42)},
		{Key: 2, Val: FloatValue(3.14)},
		{Key: 3, Val: BoolValue(true)},
		{Key: 4, Val: StringValue(99)},
		{Key: 5, Val: IntValue(0)},
		{Key: 6, Val: BoolValue(false)},
		{Key: 7, Val: FloatValue(-1e300)},
	}
	head := writeProps(t, pool, tbl, 123, props)
	got := ReadPropChain(tbl, head)
	if !reflect.DeepEqual(got, props) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, props)
	}
}

func TestPropChainEmpty(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, PropRecordSize, Options{})
	head := writeProps(t, pool, tbl, 1, nil)
	if head != NilID {
		t.Errorf("empty prop chain head = %d, want NilID", head)
	}
	if got := ReadPropChain(tbl, NilID); got != nil {
		t.Errorf("ReadPropChain(NilID) = %v, want nil", got)
	}
}

func TestPropChainBatching(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, PropRecordSize, Options{})
	// Exactly PItemsMax props: one record. One more: two records.
	three := []Prop{{Key: 1, Val: IntValue(1)}, {Key: 2, Val: IntValue(2)}, {Key: 3, Val: IntValue(3)}}
	writeProps(t, pool, tbl, 1, three)
	if c := tbl.Count(); c != 1 {
		t.Errorf("3 props used %d records, want 1", c)
	}
	four := append(three, Prop{Key: 4, Val: IntValue(4)})
	writeProps(t, pool, tbl, 2, four)
	if c := tbl.Count(); c != 3 {
		t.Errorf("3+4 props used %d records total, want 3", c)
	}
}

func TestPropValueLookup(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, PropRecordSize, Options{})
	var props []Prop
	for k := uint32(1); k <= 10; k++ {
		props = append(props, Prop{Key: k, Val: IntValue(int64(k) * 100)})
	}
	head := writeProps(t, pool, tbl, 7, props)
	for k := uint32(1); k <= 10; k++ {
		v, ok := PropValue(tbl, head, k)
		if !ok || v.Int() != int64(k)*100 {
			t.Errorf("PropValue(%d) = %v,%v", k, v, ok)
		}
	}
	if _, ok := PropValue(tbl, head, 999); ok {
		t.Error("PropValue found a missing key")
	}
	if _, ok := PropValue(tbl, NilID, 1); ok {
		t.Error("PropValue on empty chain found a key")
	}
}

func TestFreePropChainReleasesAllRecords(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, PropRecordSize, Options{})
	var props []Prop
	for k := uint32(1); k <= 8; k++ { // 3 records
		props = append(props, Prop{Key: k, Val: IntValue(int64(k))})
	}
	head := writeProps(t, pool, tbl, 7, props)
	if tbl.Count() != 3 {
		t.Fatalf("setup: %d records", tbl.Count())
	}
	err := pool.RunTx(func(tx *pmemobj.Tx) error {
		return FreePropChainTx(tx, tbl, head)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Count() != 0 {
		t.Errorf("records after free = %d, want 0", tbl.Count())
	}
}

func TestNodeRecRoundTrip(t *testing.T) {
	pool, dev := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	_, off, _ := tbl.Insert()
	want := NodeRec{
		TxnID: 9, Bts: 10, Ets: 11,
		Label: 12, Flags: FlagTombstone,
		Out: 13, In: NilID, Props: 15,
	}
	WriteNodeRec(dev, off, &want)
	if got := ReadNodeRec(dev, off); got != want {
		t.Errorf("node record round trip:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestRelRecRoundTrip(t *testing.T) {
	pool, dev := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, RelRecordSize, Options{})
	_, off, _ := tbl.Insert()
	want := RelRec{
		TxnID: 1, Bts: 2, Ets: 3,
		Label: 4, Flags: 0,
		Src: 5, Dst: 6, NextSrc: NilID, NextDst: 8, Props: NilID,
	}
	WriteRelRec(dev, off, &want)
	if got := ReadRelRec(dev, off); got != want {
		t.Errorf("rel record round trip:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestValueHelpers(t *testing.T) {
	if v := IntValue(-5); v.Int() != -5 || v.Type != TypeInt {
		t.Error("IntValue broken")
	}
	if v := FloatValue(2.5); v.Float() != 2.5 {
		t.Error("FloatValue broken")
	}
	if !BoolValue(true).Bool() || BoolValue(false).Bool() {
		t.Error("BoolValue broken")
	}
	if StringValue(7).Code() != 7 {
		t.Error("StringValue broken")
	}
	if !(Value{}).IsNil() || IntValue(1).IsNil() {
		t.Error("IsNil broken")
	}
	if !IntValue(1).Less(IntValue(2)) || IntValue(2).Less(IntValue(1)) {
		t.Error("Less(int) broken")
	}
	if !IntValue(-1).Less(IntValue(0)) {
		t.Error("Less must be signed for ints")
	}
	if !FloatValue(1.5).Less(FloatValue(2.5)) {
		t.Error("Less(float) broken")
	}
}
