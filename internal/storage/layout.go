// Package storage implements the paper's §4 storage model: node,
// relationship and property tables kept in persistent memory as linked
// lists of fixed-size chunks (DD1), with per-chunk occupancy bitmaps,
// a persistent chunk directory acting as the sparse index (DD2), records
// linked by 8-byte array offsets instead of 16-byte persistent pointers
// (DD2/DD4), and properties outsourced to a separate table in
// cache-line-sized batches (DD3).
package storage

import "math"

// NilID is the null record offset/identifier. Offset 0 is a valid record,
// so the all-ones pattern marks "no record" in offset fields.
const NilID = ^uint64(0)

// Record sizes in bytes, matching the paper's §4.2 ("a record size for
// nodes and relationships of 56 and 72 bytes respectively"; property
// batches are cache-line sized). The read timestamp rts of the MVTO
// protocol lives in a volatile sidecar (§5.1 discusses this alternative),
// which is what makes the 56/72-byte persistent layouts possible.
const (
	NodeRecordSize = 56
	RelRecordSize  = 72
	PropRecordSize = 64
)

// Node record field offsets.
const (
	NTxnID = 0  // write-lock / owner transaction id (8B, CaS target)
	NBts   = 8  // begin timestamp
	NEts   = 16 // end timestamp
	NLabel = 24 // label dictionary code (4B)
	NFlags = 28 // record flags (4B)
	NOut   = 32 // offset of first outgoing relationship
	NIn    = 40 // offset of first incoming relationship
	NProps = 48 // offset of first property record
)

// Relationship record field offsets.
const (
	RTxnID   = 0
	RBts     = 8
	REts     = 16
	RLabel   = 24 // label dictionary code (4B)
	RFlags   = 28 // record flags (4B)
	RSrc     = 32 // source node offset
	RDst     = 40 // destination node offset
	RNextSrc = 48 // next relationship of the source node (out-list)
	RNextDst = 56 // next relationship of the destination node (in-list)
	RProps   = 64 // offset of first property record
)

// Property record layout: a 64-byte batch of up to three key/value items
// belonging to one node or relationship, linked to the next batch.
const (
	PNext     = 0 // next property record of the same owner
	POwner    = 8 // owning node/relationship offset (for integrity checks)
	PItems    = 16
	PItemSize = 16
	PItemsMax = 3 // (64 - 16) / 16
)

// Property item field offsets relative to the item start.
const (
	piKey  = 0 // property key dictionary code (4B)
	piType = 4 // value type tag (4B)
	piVal  = 8 // raw 64-bit value
)

// Record flags.
const (
	// FlagTombstone marks a logically deleted record whose slot has not
	// been reused yet.
	FlagTombstone = 1 << 0
)

// ValueType tags property values.
type ValueType uint32

// Supported property value types.
const (
	TypeNil ValueType = iota
	TypeInt
	TypeFloat
	TypeBool
	TypeString // value is a dictionary code
)

// Value is a decoded property value: a type tag plus the raw 64-bit
// payload. String payloads are dictionary codes; translating them to Go
// strings is the caller's job (the engine layer owns the dictionary).
type Value struct {
	Type ValueType
	Raw  uint64
}

// IntValue builds an integer value.
func IntValue(v int64) Value { return Value{Type: TypeInt, Raw: uint64(v)} }

// FloatValue builds a float value.
func FloatValue(v float64) Value { return Value{Type: TypeFloat, Raw: math.Float64bits(v)} }

// BoolValue builds a boolean value.
func BoolValue(v bool) Value {
	var r uint64
	if v {
		r = 1
	}
	return Value{Type: TypeBool, Raw: r}
}

// StringValue builds a string value from a dictionary code.
func StringValue(code uint64) Value { return Value{Type: TypeString, Raw: code} }

// Int returns the integer payload.
func (v Value) Int() int64 { return int64(v.Raw) }

// Float returns the float payload.
func (v Value) Float() float64 { return math.Float64frombits(v.Raw) }

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.Raw != 0 }

// Code returns the dictionary code of a string payload.
func (v Value) Code() uint64 { return v.Raw }

// IsNil reports whether the value is the nil value.
func (v Value) IsNil() bool { return v.Type == TypeNil }

// Less orders two values of the same type (strings by code).
func (v Value) Less(o Value) bool {
	if v.Type != o.Type {
		return v.Type < o.Type
	}
	switch v.Type {
	case TypeInt:
		return v.Int() < o.Int()
	case TypeFloat:
		return v.Float() < o.Float()
	default:
		return v.Raw < o.Raw
	}
}

// Prop is a decoded key/value property pair (key is a dictionary code).
type Prop struct {
	Key uint32
	Val Value
}

// NodeRec is the volatile mirror of a node record, used for DRAM-resident
// dirty versions (§5.2) and for bulk record copies.
type NodeRec struct {
	TxnID uint64
	Bts   uint64
	Ets   uint64
	Label uint32
	Flags uint32
	Out   uint64
	In    uint64
	Props uint64
}

// RelRec is the volatile mirror of a relationship record.
type RelRec struct {
	TxnID   uint64
	Bts     uint64
	Ets     uint64
	Label   uint32
	Flags   uint32
	Src     uint64
	Dst     uint64
	NextSrc uint64
	NextDst uint64
	Props   uint64
}
