package storage

import (
	"errors"
	"fmt"
	mathbits "math/bits"
	"sync"
	"sync/atomic"

	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
)

// Table is a chunked record table (DD1/DD2): a linked list of fixed-size
// chunks, each holding an occupancy bitmap and an array of equally-sized
// records. Records are addressed by their table-wide offset
// id = chunkIndex*chunkCap + slot, an 8-byte integer that is cheaper and
// failure-atomically storable, unlike a 16-byte persistent pointer (DD2).
//
// A persistent chunk directory (the paper's "persistent lookup table",
// a sparse index from the first record id of a chunk to its location)
// allows O(1) id→chunk translation; a volatile mirror of it is built at
// open so steady-state accesses never dereference persistent pointers
// (DG6). Deleted record slots are reused via the bitmaps rather than
// deallocated (DG5).

// Errors returned by table operations.
var (
	ErrTableFull = errors.New("storage: chunk directory full")
	ErrBadRecord = errors.New("storage: record id out of range or slot free")
	// ErrShardFull reports that a shard-constrained insert found no free
	// slot in any chunk owned by the shard. Callers reserve capacity with
	// EnsureShardFree (outside the failing transaction) and retry.
	ErrShardFull = errors.New("storage: no free slot in shard")
)

// Table header layout (persistent).
const (
	tRecSize    = 0
	tChunkCap   = 8
	tChunkCount = 16
	tDirOff     = 24
	tDirCap     = 32
	tHeadChunk  = 40 // PPtr (16 bytes): first chunk, for pointer-based scans
	tTailChunk  = 56 // PPtr (16 bytes): last chunk
	tHeaderSize = 72
)

// Chunk layout: header, bitmap, then records starting at a 64-byte-aligned
// offset so records keep cache-line alignment relative to the chunk start
// (DG3; the chunk itself is 256-byte aligned by the allocator).
const (
	cNext    = 0  // PPtr to next chunk
	cFirstID = 16 // id of slot 0 in this chunk
	cBitmap  = 24
)

// TargetChunkBytes is the default chunk payload budget. With the 64-byte
// allocator header this lands chunks in the 64 KiB size class, a multiple
// of the 256-byte DCPMM block (DG3).
const TargetChunkBytes = 64<<10 - 64

// Options configures table creation.
type Options struct {
	// ChunkBytes caps the total chunk size (default TargetChunkBytes).
	ChunkBytes uint64
	// DirCap is the maximum number of chunks (default 16384, i.e. ~1 GiB
	// of 64 KiB chunks per table).
	DirCap uint64
}

// Table provides concurrent record-granular access. Insert/Release
// serialize on an internal mutex; reads are lock-free.
type Table struct {
	pool *pmemobj.Pool
	dev  *pmem.Device
	hdr  uint64

	recSize   uint64
	chunkCap  uint64
	dirOff    uint64
	dirCap    uint64
	bitmapLen uint64 // bitmap bytes (multiple of 8)
	dataStart uint64 // first record offset within a chunk

	mu      sync.Mutex
	dir     []uint64 // volatile chunk-offset mirror; len fixed to dirCap
	nChunks atomic.Uint64

	// Shard ownership is volatile and purely positional: chunk ci belongs
	// to shard ci % shards, so id → shard is re-derivable at open with any
	// shard count and the on-disk format is unchanged. free holds, per
	// shard, the chunk indexes that may have free slots.
	shards int
	free   [][]uint64
}

func chunkGeometry(recSize, chunkBytes uint64) (chunkCap, bitmapLen, dataStart uint64) {
	// Find the largest capacity whose bitmap+records fit in chunkBytes.
	chunkCap = (chunkBytes - cBitmap) / recSize
	for chunkCap > 0 {
		bitmapLen = (chunkCap + 63) / 64 * 8
		dataStart = (cBitmap + bitmapLen + 63) / 64 * 64
		if dataStart+chunkCap*recSize <= chunkBytes {
			return chunkCap, bitmapLen, dataStart
		}
		chunkCap--
	}
	panic("storage: chunk size too small for a single record")
}

// CreateTable allocates a new table for recSize-byte records.
func CreateTable(pool *pmemobj.Pool, recSize uint64, opts Options) (*Table, error) {
	if recSize == 0 || recSize%8 != 0 {
		return nil, fmt.Errorf("storage: record size %d must be a positive multiple of 8", recSize)
	}
	chunkBytes := opts.ChunkBytes
	if chunkBytes == 0 {
		chunkBytes = TargetChunkBytes
	}
	dirCap := opts.DirCap
	if dirCap == 0 {
		dirCap = 16384
	}
	chunkCap, bitmapLen, dataStart := chunkGeometry(recSize, chunkBytes)

	t := &Table{
		pool: pool, dev: pool.Device(),
		recSize: recSize, chunkCap: chunkCap,
		dirCap: dirCap, bitmapLen: bitmapLen, dataStart: dataStart,
		shards: 1, free: make([][]uint64, 1),
	}
	err := pool.RunTx(func(tx *pmemobj.Tx) error {
		hdr, err := tx.Alloc(tHeaderSize)
		if err != nil {
			return err
		}
		dir, err := tx.Alloc(dirCap * 8)
		if err != nil {
			return err
		}
		dev := pool.Device()
		dev.WriteU64(hdr+tRecSize, recSize)
		dev.WriteU64(hdr+tChunkCap, chunkCap)
		dev.WriteU64(hdr+tChunkCount, 0)
		dev.WriteU64(hdr+tDirOff, dir)
		dev.WriteU64(hdr+tDirCap, dirCap)
		t.hdr = hdr
		t.dirOff = dir
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: create table: %w", err)
	}
	t.dir = make([]uint64, dirCap)
	return t, nil
}

// OpenTable attaches to an existing table at header offset hdr, rebuilding
// the volatile directory mirror and free-chunk list from persistent state.
func OpenTable(pool *pmemobj.Pool, hdr uint64) (*Table, error) {
	dev := pool.Device()
	t := &Table{
		pool: pool, dev: dev, hdr: hdr,
		recSize:  dev.ReadU64(hdr + tRecSize),
		chunkCap: dev.ReadU64(hdr + tChunkCap),
		dirOff:   dev.ReadU64(hdr + tDirOff),
		dirCap:   dev.ReadU64(hdr + tDirCap),
	}
	if t.recSize == 0 || t.chunkCap == 0 {
		return nil, fmt.Errorf("storage: open table: corrupt header at %d", hdr)
	}
	t.bitmapLen = (t.chunkCap + 63) / 64 * 8
	t.dataStart = (cBitmap + t.bitmapLen + 63) / 64 * 64
	n := dev.ReadU64(hdr + tChunkCount)
	t.dir = make([]uint64, t.dirCap)
	for i := uint64(0); i < n; i++ {
		t.dir[i] = dev.ReadU64(t.dirOff + i*8)
	}
	t.nChunks.Store(n)
	// Rebuild the volatile free-chunk lists from the persistent bitmaps.
	t.shards = 1
	t.free = make([][]uint64, 1)
	t.rebucketLocked()
	return t, nil
}

// rebucketLocked rebuilds the per-shard free-chunk lists from the
// persistent bitmaps. Caller holds t.mu (or has exclusive access).
func (t *Table) rebucketLocked() {
	for s := range t.free {
		t.free[s] = t.free[s][:0]
	}
	n := t.nChunks.Load()
	for ci := uint64(0); ci < n; ci++ {
		if t.chunkFreeSlot(t.dir[ci]) >= 0 {
			s := int(ci) % t.shards
			t.free[s] = append(t.free[s], ci)
		}
	}
}

// SetShards repartitions chunk ownership over n shards (chunk ci belongs
// to shard ci % n). Ownership is volatile; any shard count is valid for
// any existing image. Must be called while the table is quiescent.
func (t *Table) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shards = n
	t.free = make([][]uint64, n)
	t.rebucketLocked()
}

// Shards returns the current shard count.
func (t *Table) Shards() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shards
}

// ShardOf returns the shard owning record id's chunk. The result is valid
// for any id addressable under the current chunk count or beyond: shard
// ownership is positional (chunk index mod shard count).
func (t *Table) ShardOf(id uint64) int {
	return int(id/t.chunkCap) % t.shards
}

// Offset returns the table header offset for persisting in a root object.
func (t *Table) Offset() uint64 { return t.hdr }

// RecordSize returns the fixed record size in bytes.
func (t *Table) RecordSize() uint64 { return t.recSize }

// ChunkCap returns the number of record slots per chunk.
func (t *Table) ChunkCap() uint64 { return t.chunkCap }

// Chunks returns the current chunk count.
func (t *Table) Chunks() uint64 { return t.nChunks.Load() }

// MaxID returns one past the largest possible record id.
func (t *Table) MaxID() uint64 { return t.nChunks.Load() * t.chunkCap }

// chunkFreeSlot returns the first free slot in the chunk, or -1.
func (t *Table) chunkFreeSlot(chunkOff uint64) int64 {
	for w := uint64(0); w < t.bitmapLen/8; w++ {
		bits := t.dev.ReadU64(chunkOff + cBitmap + w*8)
		if bits == ^uint64(0) {
			continue
		}
		for b := uint64(0); b < 64; b++ {
			slot := w*64 + b
			if slot >= t.chunkCap {
				return -1
			}
			if bits&(1<<b) == 0 {
				return int64(slot)
			}
		}
	}
	return -1
}

// RecordOffset translates a record id into its device offset without
// checking occupancy. It returns false for ids beyond the allocated
// chunks.
func (t *Table) RecordOffset(id uint64) (uint64, bool) {
	ci := id / t.chunkCap
	if ci >= t.nChunks.Load() {
		return 0, false
	}
	chunk := t.dir[ci]
	return chunk + t.dataStart + (id%t.chunkCap)*t.recSize, true
}

// BitmapWord returns the 64-slot occupancy word covering id (bit i set =
// slot id/64*64+i occupied). Used by pull iterators to amortize bitmap
// reads across 64 slots.
func (t *Table) BitmapWord(id uint64) uint64 {
	ci := id / t.chunkCap
	if ci >= t.nChunks.Load() {
		return 0
	}
	slot := id % t.chunkCap
	return t.dev.ReadU64(t.dir[ci] + cBitmap + slot/64*8)
}

// BitmapWordOff returns the device offset of the occupancy word covering
// id, for callers pre-declaring the exact ranges a release will touch
// (group-commit leaders batching undo snapshots). False for ids beyond
// the allocated chunks.
func (t *Table) BitmapWordOff(id uint64) (uint64, bool) {
	ci := id / t.chunkCap
	if ci >= t.nChunks.Load() {
		return 0, false
	}
	slot := id % t.chunkCap
	return t.dir[ci] + cBitmap + slot/64*8, true
}

// Occupied reports whether id names an allocated record slot.
func (t *Table) Occupied(id uint64) bool {
	ci := id / t.chunkCap
	if ci >= t.nChunks.Load() {
		return false
	}
	slot := id % t.chunkCap
	bits := t.dev.ReadU64(t.dir[ci] + cBitmap + slot/64*8)
	return bits&(1<<(slot%64)) != 0
}

// Insert allocates a record slot in its own transaction. See InsertTx.
func (t *Table) Insert() (uint64, uint64, error) {
	var id, off uint64
	err := t.pool.RunTx(func(tx *pmemobj.Tx) error {
		var err error
		id, off, err = t.InsertTx(tx)
		return err
	})
	return id, off, err
}

// InsertTx allocates a record slot within tx, marks it occupied and
// returns its id and device offset. The record bytes are zero. Lock
// ordering: callers acquire the pool transaction lock (RunTx) before the
// table mutex, never the reverse.
//
// If the enclosing transaction aborts, the persistent state rolls back but
// the table's volatile mirrors may be stale; call ResyncVolatile before
// reusing the table after an aborted structural transaction.
func (t *Table) InsertTx(tx *pmemobj.Tx) (uint64, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	for s := range t.free {
		id, off, ok, err := t.popFreeLocked(tx, s)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			return id, off, nil
		}
	}

	ci, err := t.appendChunkTx(tx)
	if err != nil {
		return 0, 0, err
	}
	chunk := t.dir[ci]
	if err := t.setBitmapTx(tx, chunk, 0, true); err != nil {
		return 0, 0, err
	}
	t.free[int(ci)%t.shards] = append(t.free[int(ci)%t.shards], ci)
	return ci * t.chunkCap, chunk + t.dataStart, nil
}

// popFreeLocked takes the first free slot from shard s's chunk list.
// Caller holds t.mu.
func (t *Table) popFreeLocked(tx *pmemobj.Tx, s int) (uint64, uint64, bool, error) {
	list := t.free[s]
	for len(list) > 0 {
		ci := list[len(list)-1]
		chunk := t.dir[ci]
		slot := t.chunkFreeSlot(chunk)
		if slot < 0 {
			list = list[:len(list)-1]
			continue
		}
		t.free[s] = list
		if err := t.setBitmapTx(tx, chunk, uint64(slot), true); err != nil {
			return 0, 0, false, err
		}
		id := ci*t.chunkCap + uint64(slot)
		return id, chunk + t.dataStart + uint64(slot)*t.recSize, true, nil
	}
	t.free[s] = list
	return 0, 0, false, nil
}

// InsertShardTx allocates a record slot from a chunk owned by shard s. It
// never appends chunks (lane transactions cannot allocate); when the
// shard's chunks are exhausted it fails with ErrShardFull and the caller
// must reserve capacity via EnsureShardFree outside the transaction and
// retry.
func (t *Table) InsertShardTx(tx *pmemobj.Tx, s int) (uint64, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s < 0 || s >= t.shards {
		return 0, 0, fmt.Errorf("storage: insert into unknown shard %d of %d", s, t.shards)
	}
	id, off, ok, err := t.popFreeLocked(tx, s)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, 0, fmt.Errorf("%w %d", ErrShardFull, s)
	}
	return id, off, nil
}

// EnsureShardFree guarantees shard s owns at least one free record slot,
// appending chunks in a pool transaction on the built-in log if needed.
// Appended chunks that land in other shards are registered in their
// owners' free lists, so capacity reservation is batched across shards
// (DG5: group allocation).
func (t *Table) EnsureShardFree(s int) error {
	return t.EnsureShardFreeN(s, 1)
}

// EnsureShardFreeN guarantees shard s owns at least n free record slots.
// Commit retries use it after ErrShardFull: a single commit may write
// several property records into one shard, so reserving one slot at a
// time could loop forever.
func (t *Table) EnsureShardFreeN(s, n int) error {
	t.mu.Lock()
	has := t.shardFreeSlotsLocked(s, n) >= n
	t.mu.Unlock()
	if has {
		return nil
	}
	return t.pool.RunTx(func(tx *pmemobj.Tx) error {
		t.mu.Lock()
		defer t.mu.Unlock()
		for t.shardFreeSlotsLocked(s, n) < n {
			ci, err := t.appendChunkTx(tx)
			if err != nil {
				return err
			}
			owner := int(ci) % t.shards
			t.free[owner] = append(t.free[owner], ci)
		}
		return nil
	})
}

// shardFreeSlotsLocked counts free slots across shard s's chunks, stopping
// once limit is reached. Caller holds t.mu. Unlike shardHasFreeLocked it
// rescans the shard's whole chunk set, so it also repairs a free list that
// lost entries to a rolled-back lane transaction.
func (t *Table) shardFreeSlotsLocked(s, limit int) int {
	if s < 0 || s >= t.shards {
		return 0
	}
	t.free[s] = t.free[s][:0]
	total := 0
	n := t.nChunks.Load()
	for ci := uint64(s); ci < n; ci += uint64(t.shards) {
		c := t.chunkFreeCount(t.dir[ci])
		if c > 0 {
			t.free[s] = append(t.free[s], ci)
			total += c
			if total >= limit {
				break
			}
		}
	}
	return total
}

// chunkFreeCount returns the number of free slots in the chunk.
func (t *Table) chunkFreeCount(chunkOff uint64) int {
	total := 0
	for w := uint64(0); w < t.bitmapLen/8; w++ {
		bits := t.dev.ReadU64(chunkOff + cBitmap + w*8)
		hi := (w + 1) * 64
		if hi > t.chunkCap {
			// Mask out the padding bits beyond the chunk's capacity.
			bits |= ^uint64(0) << (t.chunkCap - w*64)
		}
		total += 64 - mathbits.OnesCount64(bits)
	}
	return total
}

// shardHasFreeLocked reports whether shard s has a chunk with a free
// slot, pruning exhausted chunks from its list. Caller holds t.mu.
func (t *Table) shardHasFreeLocked(s int) bool {
	if s < 0 || s >= t.shards {
		return false
	}
	list := t.free[s]
	for len(list) > 0 {
		ci := list[len(list)-1]
		if t.chunkFreeSlot(t.dir[ci]) >= 0 {
			t.free[s] = list
			return true
		}
		list = list[:len(list)-1]
	}
	t.free[s] = list
	return false
}

// InsertAtTx marks a specific id occupied, for recovery and bulk-load
// paths. It fails if the slot is already occupied.
func (t *Table) InsertAtTx(tx *pmemobj.Tx, id uint64) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := id / t.chunkCap
	for ci >= t.nChunks.Load() {
		if _, err := t.appendChunkTx(tx); err != nil {
			return 0, err
		}
	}
	slot := id % t.chunkCap
	chunk := t.dir[ci]
	bits := t.dev.ReadU64(chunk + cBitmap + slot/64*8)
	if bits&(1<<(slot%64)) != 0 {
		return 0, fmt.Errorf("%w: id %d already occupied", ErrBadRecord, id)
	}
	if err := t.setBitmapTx(tx, chunk, slot, true); err != nil {
		return 0, err
	}
	return chunk + t.dataStart + slot*t.recSize, nil
}

// Release frees a record slot in its own transaction. See ReleaseTx.
func (t *Table) Release(id uint64) error {
	return t.pool.RunTx(func(tx *pmemobj.Tx) error { return t.ReleaseTx(tx, id) })
}

// ReleaseTx zeroes the record and clears its bitmap bit within tx, making
// the slot reusable (DG5: reuse instead of deallocating). Zeroing keeps
// the invariant that occupied slots always carry either committed or
// transaction-locked contents.
func (t *Table) ReleaseTx(tx *pmemobj.Tx, id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := id / t.chunkCap
	if ci >= t.nChunks.Load() {
		return fmt.Errorf("%w: id %d", ErrBadRecord, id)
	}
	slot := id % t.chunkCap
	chunk := t.dir[ci]
	bits := t.dev.ReadU64(chunk + cBitmap + slot/64*8)
	if bits&(1<<(slot%64)) == 0 {
		return fmt.Errorf("%w: id %d already free", ErrBadRecord, id)
	}
	off := chunk + t.dataStart + slot*t.recSize
	if err := tx.Snapshot(off, t.recSize); err != nil {
		return err
	}
	t.dev.Zero(off, t.recSize)
	if err := t.setBitmapTx(tx, chunk, slot, false); err != nil {
		return err
	}
	s := int(ci) % t.shards
	t.free[s] = append(t.free[s], ci)
	return nil
}

// setBitmapTx flips one occupancy bit under the transaction's undo log so
// an abort restores it. The store itself is a single 8-byte word (DG4).
func (t *Table) setBitmapTx(tx *pmemobj.Tx, chunk, slot uint64, occupied bool) error {
	wordOff := chunk + cBitmap + slot/64*8
	if err := tx.Snapshot(wordOff, 8); err != nil {
		return err
	}
	bits := t.dev.ReadU64(wordOff)
	if occupied {
		bits |= 1 << (slot % 64)
	} else {
		bits &^= 1 << (slot % 64)
	}
	t.dev.WriteU64(wordOff, bits)
	return nil
}

// appendChunkTx allocates and links a new chunk within tx; caller holds
// t.mu.
func (t *Table) appendChunkTx(tx *pmemobj.Tx) (uint64, error) {
	n := t.nChunks.Load()
	if n >= t.dirCap {
		return 0, ErrTableFull
	}
	chunkBytes := t.dataStart + t.chunkCap*t.recSize
	chunk, err := tx.Alloc(chunkBytes)
	if err != nil {
		return 0, err
	}
	dev := t.dev
	dev.WriteU64(chunk+cFirstID, n*t.chunkCap)
	t.pool.WritePPtr(chunk+cNext, pmemobj.PPtr{})
	// Link from the previous tail (or set as head).
	if err := tx.Snapshot(t.hdr+tHeadChunk, 32); err != nil {
		return 0, err
	}
	pp := pmemobj.PPtr{Pool: t.pool.UUID(), Off: chunk}
	if n == 0 {
		t.pool.WritePPtr(t.hdr+tHeadChunk, pp)
	} else {
		prev := t.dir[n-1]
		if err := tx.Snapshot(prev+cNext, 16); err != nil {
			return 0, err
		}
		t.pool.WritePPtr(prev+cNext, pp)
	}
	t.pool.WritePPtr(t.hdr+tTailChunk, pp)
	// Directory entry and count.
	if err := tx.Snapshot(t.dirOff+n*8, 8); err != nil {
		return 0, err
	}
	dev.WriteU64(t.dirOff+n*8, chunk)
	if err := tx.Snapshot(t.hdr+tChunkCount, 8); err != nil {
		return 0, err
	}
	dev.WriteU64(t.hdr+tChunkCount, n+1)
	t.dir[n] = chunk
	t.nChunks.Store(n + 1)
	return n, nil
}

// ResyncVolatile rebuilds the volatile directory mirror and free-chunk
// list from persistent state. Call after a structural transaction (one
// that inserted or released records) aborted.
func (t *Table) ResyncVolatile() {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.dev.ReadU64(t.hdr + tChunkCount)
	for i := uint64(0); i < n; i++ {
		t.dir[i] = t.dev.ReadU64(t.dirOff + i*8)
	}
	t.nChunks.Store(n)
	t.rebucketLocked()
}

// Scan visits every occupied record in id order, stopping early if fn
// returns false.
func (t *Table) Scan(fn func(id, off uint64) bool) {
	n := t.nChunks.Load()
	for ci := uint64(0); ci < n; ci++ {
		if !t.ScanChunk(ci, fn) {
			return
		}
	}
}

// ScanChunk visits the occupied records of one chunk (a morsel in the
// §6.1 sense). It reports whether scanning should continue.
func (t *Table) ScanChunk(ci uint64, fn func(id, off uint64) bool) bool {
	if ci >= t.nChunks.Load() {
		return true
	}
	chunk := t.dir[ci]
	for w := uint64(0); w*64 < t.chunkCap; w++ {
		bits := t.dev.ReadU64(chunk + cBitmap + w*8)
		for bits != 0 {
			b := uint64(mathbits.TrailingZeros64(bits))
			bits &= bits - 1
			slot := w*64 + b
			if slot >= t.chunkCap {
				break
			}
			id := ci*t.chunkCap + slot
			if !fn(id, chunk+t.dataStart+slot*t.recSize) {
				return false
			}
		}
	}
	return true
}

// Count scans the bitmaps and returns the number of occupied slots.
func (t *Table) Count() uint64 {
	var c uint64
	t.Scan(func(_, _ uint64) bool { c++; return true })
	return c
}
