package storage

import "poseidon/internal/pmemobj"

// Property batches (DD3): key/value pairs of a node or relationship are
// grouped into cache-line-sized records of up to three items; further
// items link to the next batch. All property mutations run inside the
// enclosing pmemobj transaction so that the property chain flips along
// with its owner's version fields.

// WritePropChainTx stores props as a chain of property records, returning
// the head record id (or NilID for an empty set). Slots are allocated
// within tx from any shard.
func WritePropChainTx(tx *pmemobj.Tx, tbl *Table, owner uint64, props []Prop) (uint64, error) {
	return writePropChainTx(tx, tbl, owner, props, -1)
}

// WritePropChainShardTx is WritePropChainTx constrained to slots owned by
// shard s, so the chain's records stay covered by s's commit lock (the
// lane-overlap safety invariant). Fails with ErrShardFull when the shard
// has no capacity; the caller reserves via EnsureShardFree and retries.
func WritePropChainShardTx(tx *pmemobj.Tx, tbl *Table, owner uint64, props []Prop, s int) (uint64, error) {
	return writePropChainTx(tx, tbl, owner, props, s)
}

func writePropChainTx(tx *pmemobj.Tx, tbl *Table, owner uint64, props []Prop, s int) (uint64, error) {
	if len(props) == 0 {
		return NilID, nil
	}
	dev := tbl.dev
	head := NilID
	var prevOff uint64
	for i := 0; i < len(props); i += PItemsMax {
		var id, off uint64
		var err error
		if s < 0 {
			id, off, err = tbl.InsertTx(tx)
		} else {
			id, off, err = tbl.InsertShardTx(tx, s)
		}
		if err != nil {
			return 0, err
		}
		dev.WriteU64(off+PNext, NilID)
		dev.WriteU64(off+POwner, owner)
		for j := 0; j < PItemsMax; j++ {
			item := off + PItems + uint64(j)*PItemSize
			if i+j < len(props) {
				p := props[i+j]
				dev.WriteU64(item+piKey, uint64(p.Key)|uint64(p.Val.Type)<<32)
				dev.WriteU64(item+piVal, p.Val.Raw)
			} else {
				dev.WriteU64(item+piKey, 0)
				dev.WriteU64(item+piVal, 0)
			}
		}
		tx.NoteWrite(off, PropRecordSize)
		if head == NilID {
			head = id
		} else {
			// Link from the previous batch; it was written in this tx and
			// is already covered by its NoteWrite.
			dev.WriteU64(prevOff+PNext, id)
		}
		prevOff = off
	}
	return head, nil
}

// ReadPropChain decodes the property chain starting at record id head.
func ReadPropChain(tbl *Table, head uint64) []Prop {
	props, _ := ReadPropChainN(tbl, head, 0)
	return props
}

// ReadPropChainN is ReadPropChain with a bound on the number of chain
// records walked (0 = unbounded). Concurrent readers pass a bound so
// that a torn walk over records being recycled underneath them cannot
// follow a pointer cycle forever; ok=false reports that the bound was
// hit, meaning the result must be discarded and the read revalidated.
func ReadPropChainN(tbl *Table, head uint64, maxRecs int) ([]Prop, bool) {
	if head == NilID {
		return nil, true
	}
	dev := tbl.dev
	var props []Prop
	walked := 0
	for id := head; id != NilID; {
		if maxRecs > 0 && walked >= maxRecs {
			return props, false
		}
		walked++
		off, ok := tbl.RecordOffset(id)
		if !ok {
			break
		}
		for j := 0; j < PItemsMax; j++ {
			item := off + PItems + uint64(j)*PItemSize
			kt := dev.ReadU64(item + piKey)
			key := uint32(kt)
			typ := ValueType(kt >> 32)
			if key == 0 && typ == TypeNil {
				continue
			}
			props = append(props, Prop{Key: key, Val: Value{Type: typ, Raw: dev.ReadU64(item + piVal)}})
		}
		id = dev.ReadU64(off + PNext)
	}
	return props, true
}

// PropValue looks up a single key in the chain without materializing the
// whole property set; the common case for filters.
func PropValue(tbl *Table, head uint64, key uint32) (Value, bool) {
	if head == NilID {
		return Value{}, false
	}
	dev := tbl.dev
	for id := head; id != NilID; {
		off, ok := tbl.RecordOffset(id)
		if !ok {
			return Value{}, false
		}
		for j := 0; j < PItemsMax; j++ {
			item := off + PItems + uint64(j)*PItemSize
			kt := dev.ReadU64(item + piKey)
			if uint32(kt) == key {
				return Value{Type: ValueType(kt >> 32), Raw: dev.ReadU64(item + piVal)}, true
			}
		}
		id = dev.ReadU64(off + PNext)
	}
	return Value{}, false
}

// FreePropChainTx releases every record of the chain starting at head.
func FreePropChainTx(tx *pmemobj.Tx, tbl *Table, head uint64) error {
	dev := tbl.dev
	for id := head; id != NilID; {
		off, ok := tbl.RecordOffset(id)
		if !ok {
			return nil
		}
		next := dev.ReadU64(off + PNext)
		if err := tbl.ReleaseTx(tx, id); err != nil {
			return err
		}
		id = next
	}
	return nil
}
