package storage

import (
	"errors"
	"testing"
	"testing/quick"

	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
)

func newTestPool(t *testing.T, size int) (*pmemobj.Pool, *pmem.Device) {
	t.Helper()
	dev := pmem.New(pmem.Config{Name: "storage", Size: size, Persistent: true})
	pool, err := pmemobj.Create(dev, pmemobj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool, dev
}

func TestChunkGeometry(t *testing.T) {
	for _, recSize := range []uint64{NodeRecordSize, RelRecordSize, PropRecordSize, 8, 1024} {
		cap_, bitmapLen, dataStart := chunkGeometry(recSize, TargetChunkBytes)
		if cap_ == 0 {
			t.Fatalf("recSize %d: zero capacity", recSize)
		}
		if dataStart%64 != 0 {
			t.Errorf("recSize %d: dataStart %d not cache-line aligned", recSize, dataStart)
		}
		if dataStart < cBitmap+bitmapLen {
			t.Errorf("recSize %d: records overlap bitmap", recSize)
		}
		if dataStart+cap_*recSize > TargetChunkBytes {
			t.Errorf("recSize %d: chunk overflows budget", recSize)
		}
		if bitmapLen*8 < cap_ {
			t.Errorf("recSize %d: bitmap too small for %d slots", recSize, cap_)
		}
	}
}

func TestInsertAssignsSequentialIDs(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, err := CreateTable(pool, NodeRecordSize, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(0); want < 100; want++ {
		id, off, err := tbl.Insert()
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("id = %d, want %d", id, want)
		}
		got, ok := tbl.RecordOffset(id)
		if !ok || got != off {
			t.Fatalf("RecordOffset(%d) = %d,%v want %d", id, got, ok, off)
		}
		if !tbl.Occupied(id) {
			t.Fatalf("id %d not occupied after insert", id)
		}
	}
	if tbl.Count() != 100 {
		t.Errorf("Count = %d, want 100", tbl.Count())
	}
}

func TestReleaseAndReuse(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, _, _ := tbl.Insert()
		ids = append(ids, id)
	}
	if err := tbl.Release(ids[3]); err != nil {
		t.Fatal(err)
	}
	if tbl.Occupied(ids[3]) {
		t.Error("released slot still occupied")
	}
	id, _, err := tbl.Insert()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[3] {
		t.Errorf("insert after release = id %d, want reused %d", id, ids[3])
	}
}

func TestReleaseErrors(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	if err := tbl.Release(0); !errors.Is(err, ErrBadRecord) {
		t.Errorf("release of never-allocated id = %v, want ErrBadRecord", err)
	}
	id, _, _ := tbl.Insert()
	if err := tbl.Release(id); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Release(id); !errors.Is(err, ErrBadRecord) {
		t.Errorf("double release = %v, want ErrBadRecord", err)
	}
}

func TestReleaseZeroesRecord(t *testing.T) {
	pool, dev := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	id, off, _ := tbl.Insert()
	dev.WriteU64(off+NBts, 777)
	if err := tbl.Release(id); err != nil {
		t.Fatal(err)
	}
	id2, off2, _ := tbl.Insert()
	if id2 != id {
		t.Fatalf("expected slot reuse")
	}
	if dev.ReadU64(off2+NBts) != 0 {
		t.Error("reused record not zeroed")
	}
}

func TestGrowthAcrossChunks(t *testing.T) {
	pool, _ := newTestPool(t, 64<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	n := tbl.ChunkCap()*2 + 5 // force three chunks
	for i := uint64(0); i < n; i++ {
		if _, _, err := tbl.Insert(); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Chunks() != 3 {
		t.Errorf("chunks = %d, want 3", tbl.Chunks())
	}
	if tbl.Count() != n {
		t.Errorf("count = %d, want %d", tbl.Count(), n)
	}
	// Scan must visit every id exactly once, in order.
	var prev int64 = -1
	var visited uint64
	tbl.Scan(func(id, _ uint64) bool {
		if int64(id) <= prev {
			t.Fatalf("scan out of order: %d after %d", id, prev)
		}
		prev = int64(id)
		visited++
		return true
	})
	if visited != n {
		t.Errorf("scan visited %d, want %d", visited, n)
	}
}

func TestScanSkipsReleased(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	for i := 0; i < 20; i++ {
		tbl.Insert()
	}
	for _, id := range []uint64{0, 5, 19} {
		tbl.Release(id)
	}
	seen := map[uint64]bool{}
	tbl.Scan(func(id, _ uint64) bool { seen[id] = true; return true })
	if len(seen) != 17 {
		t.Errorf("scan saw %d records, want 17", len(seen))
	}
	for _, id := range []uint64{0, 5, 19} {
		if seen[id] {
			t.Errorf("scan visited released id %d", id)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	for i := 0; i < 50; i++ {
		tbl.Insert()
	}
	count := 0
	tbl.Scan(func(_, _ uint64) bool { count++; return count < 7 })
	if count != 7 {
		t.Errorf("scan visited %d records after early stop, want 7", count)
	}
}

func TestOpenTableRebuildsState(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 32 << 20, Persistent: true})
	pool, _ := pmemobj.Create(dev, pmemobj.Options{})
	tbl, _ := CreateTable(pool, RelRecordSize, Options{})
	hdr := tbl.Offset()
	n := tbl.ChunkCap() + 10
	for i := uint64(0); i < n; i++ {
		tbl.Insert()
	}
	tbl.Release(2)
	tbl.Release(7)
	pool.Close()
	dev.Crash()

	pool2, err := pmemobj.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	tbl2, err := OpenTable(pool2, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Count() != n-2 {
		t.Errorf("count after reopen = %d, want %d", tbl2.Count(), n-2)
	}
	// Inserts after reopen must fill existing chunks, not allocate new
	// ones, and the explicitly freed slots must eventually be reused.
	free := tbl2.Chunks()*tbl2.ChunkCap() - tbl2.Count() // exactly fills both chunks
	reused := map[uint64]bool{}
	for i := uint64(0); i < free; i++ {
		id, _, err := tbl2.Insert()
		if err != nil {
			t.Fatal(err)
		}
		reused[id] = true
	}
	if tbl2.Chunks() != 2 {
		t.Errorf("chunks after refill = %d, want 2 (slot reuse, DG5)", tbl2.Chunks())
	}
	if !reused[2] || !reused[7] {
		t.Error("freed slots 2 and 7 were not reused")
	}
}

func TestInsertAtTx(t *testing.T) {
	pool, _ := newTestPool(t, 32<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	err := pool.RunTx(func(tx *pmemobj.Tx) error {
		// Bulk-load to a specific high id, forcing chunk creation.
		if _, err := tbl.InsertAtTx(tx, tbl.ChunkCap()+3); err != nil {
			return err
		}
		_, err := tbl.InsertAtTx(tx, tbl.ChunkCap()+3)
		if !errors.Is(err, ErrBadRecord) {
			t.Errorf("duplicate InsertAtTx = %v, want ErrBadRecord", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Occupied(tbl.ChunkCap() + 3) {
		t.Error("slot not occupied after InsertAtTx")
	}
	if tbl.Chunks() != 2 {
		t.Errorf("chunks = %d, want 2", tbl.Chunks())
	}
}

func TestAbortedInsertRollsBackThenResync(t *testing.T) {
	pool, _ := newTestPool(t, 16<<20)
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	tbl.Insert()
	sentinel := errors.New("abort")
	err := pool.RunTx(func(tx *pmemobj.Tx) error {
		if _, _, err := tbl.InsertTx(tx); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatal(err)
	}
	tbl.ResyncVolatile()
	if tbl.Count() != 1 {
		t.Errorf("count after aborted insert = %d, want 1", tbl.Count())
	}
	// Table must remain fully usable.
	id, _, err := tbl.Insert()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("id after aborted insert = %d, want 1", id)
	}
}

func TestCrashDuringInsertRecovers(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 16 << 20, Persistent: true})
	pool, _ := pmemobj.Create(dev, pmemobj.Options{})
	tbl, _ := CreateTable(pool, NodeRecordSize, Options{})
	hdr := tbl.Offset()
	tbl.Insert()
	tbl.Insert()

	// Start a transaction that inserts, then crash before commit.
	tx := pool.Begin()
	if _, _, err := tbl.InsertTx(tx); err != nil {
		t.Fatal(err)
	}
	tx.Abandon()
	pool.Close()
	dev.Crash()

	pool2, err := pmemobj.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	tbl2, err := OpenTable(pool2, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.Count(); got != 2 {
		t.Errorf("count after crashed insert = %d, want 2", got)
	}
}

func TestTableIDOffsetBijectionProperty(t *testing.T) {
	pool, _ := newTestPool(t, 64<<20)
	tbl, _ := CreateTable(pool, PropRecordSize, Options{})
	n := tbl.ChunkCap() * 3
	offsets := map[uint64]uint64{}
	for i := uint64(0); i < n; i++ {
		id, off, err := tbl.Insert()
		if err != nil {
			t.Fatal(err)
		}
		offsets[id] = off
	}
	f := func(raw uint64) bool {
		id := raw % n
		off, ok := tbl.RecordOffset(id)
		if !ok || off != offsets[id] {
			return false
		}
		// Offsets of distinct ids never collide and records don't overlap.
		if id+1 < n {
			next := offsets[id+1]
			if next > off && next-off < PropRecordSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
