package bench

import (
	"fmt"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/ldbc"
	"poseidon/internal/query"
)

// Ingest measures the write-optimized ingest trajectory (PR 10): the
// drain (fence) events each committed IU transaction pays with and
// without group commit, and bulk-load throughput against the
// one-transaction-per-entity baseline. Both comparisons run unsharded —
// group commit batches concurrent single-shard committers into epochs,
// and the 1-CPU acceptance host has one shard anyway — so the figure is
// deterministic and scheduling-independent.
func Ingest(opts Options) (*Table, error) {
	opts.fill()
	t := &Table{
		Name:    "Ingest: group commit fences and bulk-load throughput (unsharded PMem)",
		Columns: []string{"ktx/s", "drains/txn", "speedup"},
		Notes: []string{
			"iu-*: LDBC IU update transactions; grouped commits batch 8 through CommitBatch",
			"iu drains/txn counts commit-path sfence events per committed transaction",
			"(operation-time allocation fences are identical across the two variants)",
			"load-*: full dataset ingest, ktx/s counts entities (nodes+edges) per second",
			"speedup is relative to the section's per-transaction baseline",
		},
	}

	iuPerTxn, iuGroup, err := ingestIU(opts)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		iuPerTxn.row("iu-pertxn", iuPerTxn),
		iuGroup.row("iu-group", iuPerTxn),
	)

	loadPerTxn, loadBulk, err := ingestLoad(opts)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		loadPerTxn.row("load-pertxn", loadPerTxn),
		loadBulk.row("load-bulk", loadPerTxn),
	)
	return t, nil
}

// ingestStat is one measured ingest variant.
type ingestStat struct {
	txns    uint64
	drains  uint64
	elapsed time.Duration
}

func (s ingestStat) perTxn() float64 { return float64(s.drains) / float64(s.txns) }

func (s ingestStat) row(name string, base ingestStat) TableRow {
	ktps := float64(s.txns) / s.elapsed.Seconds() / 1e3
	baseKtps := float64(base.txns) / base.elapsed.Seconds() / 1e3
	return TableRow{
		Query: name,
		Cells: map[string]float64{
			"ktx/s":      ktps,
			"drains/txn": s.perTxn(),
			"speedup":    ktps / baseKtps,
		},
	}
}

// ingestIU loads a small dataset, then commits IU update transactions
// through the per-transaction path and through 8-member group-commit
// epochs, counting drains around the commit phase only.
func ingestIU(opts Options) (perTxn, grouped ingestStat, err error) {
	persons := opts.Persons
	if persons > 200 {
		persons = 200
	}
	ds := ldbc.Generate(ldbc.Config{Persons: persons, Seed: opts.Seed})
	iuTxns := opts.Runs * 8
	if iuTxns < 64 {
		iuTxns = 64
	}

	run := func(group bool) (ingestStat, error) {
		e, err := core.Open(core.Config{
			Mode: core.PMem, PoolSize: 512 << 20, Shards: 1,
			GroupCommit: core.GroupCommitConfig{Enabled: group, MaxBatch: 8},
		})
		if err != nil {
			return ingestStat{}, err
		}
		defer e.Close()
		if err := ds.BulkLoadCore(e, true, index.Hybrid); err != nil {
			return ingestStat{}, err
		}

		queries := ldbc.IUQueries()
		prepared := make([]*query.Prepared, len(queries))
		for i, q := range queries {
			plan, err := ldbc.IUPlan(q, true)
			if err != nil {
				return ingestStat{}, err
			}
			if prepared[i], err = query.Prepare(e, plan); err != nil {
				return ingestStat{}, err
			}
		}
		pg := ldbc.NewParamGen(ds, opts.Seed+4242)

		// drains/txn counts the commit path only: operation-time
		// allocation fences are identical across the two variants, so
		// the commit protocol is where group commit changes the fence
		// bill per transaction.
		var st ingestStat
		start := time.Now()
		const groupSize = 8
		batch := make([]*core.Tx, 0, groupSize)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			before := e.Device().Stats.Snapshot()
			for _, err := range e.CommitBatch(batch) {
				if err == nil {
					st.txns++
				}
			}
			st.drains += e.Device().Stats.Snapshot().Sub(before).Drains
			batch = batch[:0]
			return nil
		}
		for i := 0; i < iuTxns; i++ {
			q := queries[i%len(queries)]
			params := pg.IUParams(q)
			tx := e.Begin()
			if _, err := prepared[i%len(queries)].Collect(tx, params); err != nil {
				// Two in-flight batch members touched the same record:
				// drain the epoch, then retry against committed state.
				tx.Abort()
				if err := flush(); err != nil {
					return ingestStat{}, err
				}
				tx = e.Begin()
				if _, err := prepared[i%len(queries)].Collect(tx, params); err != nil {
					tx.Abort()
					return ingestStat{}, err
				}
			}
			if group {
				if batch = append(batch, tx); len(batch) == groupSize {
					if err := flush(); err != nil {
						return ingestStat{}, err
					}
				}
			} else {
				before := e.Device().Stats.Snapshot()
				if err := tx.Commit(); err == nil {
					st.txns++
				}
				st.drains += e.Device().Stats.Snapshot().Sub(before).Drains
			}
		}
		if err := flush(); err != nil {
			return ingestStat{}, err
		}
		st.elapsed = time.Since(start)
		if st.txns == 0 {
			return ingestStat{}, fmt.Errorf("bench: no IU transaction committed")
		}
		return st, nil
	}

	if perTxn, err = run(false); err != nil {
		return
	}
	grouped, err = run(true)
	return
}

// ingestLoad times the full dataset ingest through the one-transaction-
// per-entity baseline and through the streamed bulk loader, workload
// indexes included in both.
func ingestLoad(opts Options) (perTxn, bulk ingestStat, err error) {
	persons := opts.Persons
	if persons > 300 {
		persons = 300
	}
	ds := ldbc.Generate(ldbc.Config{Persons: persons, Seed: opts.Seed})
	entities := uint64(len(ds.Nodes) + len(ds.Edges))

	run := func(load func(*core.Engine) error) (ingestStat, error) {
		e, err := core.Open(core.Config{Mode: core.PMem, PoolSize: 1 << 30, Shards: 1})
		if err != nil {
			return ingestStat{}, err
		}
		defer e.Close()
		before := e.Device().Stats.Snapshot()
		start := time.Now()
		if err := load(e); err != nil {
			return ingestStat{}, err
		}
		return ingestStat{
			txns:    entities,
			elapsed: time.Since(start),
			drains:  e.Device().Stats.Snapshot().Sub(before).Drains,
		}, nil
	}

	perTxn, err = run(func(e *core.Engine) error {
		return ds.LoadCoreTx(e, true, index.Hybrid, 1)
	})
	if err != nil {
		return
	}
	bulk, err = run(func(e *core.Engine) error {
		return ds.BulkLoadCore(e, true, index.Hybrid)
	})
	return
}
