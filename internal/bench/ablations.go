package bench

import (
	"fmt"

	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// buildLinkedChain lays out a hops-long chain of 64-byte blocks linked
// both ways the DG6 ablation compares: an 8-byte next offset at +0 and a
// 16-byte persistent pointer at +8. Every block is persisted before the
// chain is returned, so readers (and crash recovery) see all hops.
func buildLinkedChain(dev *pmem.Device, pool *pmemobj.Pool, hops int) ([]uint64, error) {
	offs, err := pool.GroupAlloc(hops, 64)
	if err != nil {
		return nil, err
	}
	for i, off := range offs {
		next := uint64(0)
		if i+1 < hops {
			next = offs[i+1]
		}
		dev.WriteU64(off, next)                                           // 8B offset
		//poseidonlint:ignore torn-store benchmark chain setup, fully persisted below before any reader; discarded after the run
		pool.WritePPtr(off+8, pmemobj.PPtr{Pool: pool.UUID(), Off: next}) // 16B pptr
	}
	// Allocated blocks carry a header and line-alignment padding, so the
	// chain spans [offs[0], offs[last]+64), strictly more than 64*hops
	// bytes; persisting only 64*hops left the tail of the chain unflushed
	// (caught by the pmem strict-flush checker).
	dev.Persist(offs[0], offs[len(offs)-1]+64-offs[0])
	return offs, nil
}

// Ablations quantifies the design decisions DESIGN.md calls out, each as
// a pair of variants (the chosen design vs. the alternative the paper's
// design goals reject). All numbers are averages in microseconds.
func (s *Setup) Ablations() (*Table, error) {
	t := &Table{
		Name:    "Ablations: design decisions (us per operation batch)",
		Columns: []string{"chosen", "alternative", "factor"},
		Notes: []string{
			"dirty-versions:   DG1/DG2  version copies in DRAM vs persisted to PMem at write time",
			"offset-links:     DG6      8B-offset hops vs 16B persistent-pointer dereference per hop",
			"group-alloc:      DG5      one 64-block group allocation vs 64 single allocations",
			"atomic-commit:    DG4      undo-logged failure-atomic commit vs unlogged writes (unsafe)",
			"commit-mechanism: §5.1     PMDK-style undo-log tx vs PMwCAS for a 4-word atomic flip",
			"aligned-chunks:   DG3      256B-aligned record flushes vs block-straddling flushes",
		},
	}
	runs := s.Opts.Runs * 10

	add := func(name string, chosen, alt Dist) {
		row := TableRow{Query: name}
		row.set("chosen", chosen)
		row.set("alternative", alt)
		if chosen.Mean > 0 {
			row.Cells["factor"] = alt.Mean / chosen.Mean
		}
		t.Rows = append(t.Rows, row)
	}

	// --- DG1/DG2: dirty versions in DRAM vs in PMem ---
	// The §5.2 design keeps every uncommitted version in DRAM; the
	// rejected alternative persists each version copy at write time.
	{
		pdev := pmem.NewPMem(8 << 20)
		ddev := pmem.NewDRAM(8 << 20)
		const versions = 64
		words := make([]uint64, storage.NodeRecordSize/8)
		dram, err := measure(runs, func(int) error {
			for v := uint64(0); v < versions; v++ {
				ddev.WriteWords(v*64, words)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		pmemT, err := measure(runs, func(int) error {
			for v := uint64(0); v < versions; v++ {
				//poseidonlint:ignore torn-store ablation of the rejected persist-at-write-time design; scratch benchmark data, never read back
				pdev.WriteWords(v*64, words)
				pdev.Flush(v*64, storage.NodeRecordSize)
			}
			pdev.Drain()
			return nil
		})
		if err != nil {
			return nil, err
		}
		add("dirty-versions", dram, pmemT)
	}

	// --- DG6: offset links vs persistent-pointer dereference ---
	{
		dev := pmem.NewPMem(16 << 20)
		pool, err := pmemobj.Create(dev, pmemobj.Options{})
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		// A 256-hop chain stored both ways: 8-byte next offsets and
		// 16-byte persistent pointers.
		const hops = 256
		offs, err := buildLinkedChain(dev, pool, hops)
		if err != nil {
			return nil, err
		}

		offsets, err := measure(runs, func(int) error {
			cur := offs[0]
			for cur != 0 {
				cur = dev.ReadU64(cur)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		pptrs, err := measure(runs, func(int) error {
			cur := offs[0]
			for cur != 0 {
				pp := pool.ReadPPtr(cur + 8)
				if pp.Off == 0 {
					break
				}
				_, off, err := pmemobj.Resolve(pp)
				if err != nil {
					return err
				}
				cur = off
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		add("offset-links", offsets, pptrs)
	}

	// --- DG5: group allocation vs single allocations ---
	{
		mk := func() (*pmemobj.Pool, error) {
			dev := pmem.NewPMem(256 << 20)
			return pmemobj.Create(dev, pmemobj.Options{})
		}
		p1, err := mk()
		if err != nil {
			return nil, err
		}
		defer p1.Close()
		group, err := measure(runs, func(int) error {
			_, err := p1.GroupAlloc(64, 64)
			return err
		})
		if err != nil {
			return nil, err
		}
		p2, err := mk()
		if err != nil {
			return nil, err
		}
		defer p2.Close()
		single, err := measure(runs, func(int) error {
			for i := 0; i < 64; i++ {
				if _, err := p2.Alloc(64); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		add("group-alloc", group, single)
	}

	// --- DG4: undo-logged atomic commit vs raw writes ---
	// The "alternative" here is cheaper but NOT crash-safe; the row
	// quantifies what failure atomicity costs (the §5.1 "small overhead").
	{
		dev := pmem.NewPMem(16 << 20)
		pool, err := pmemobj.Create(dev, pmemobj.Options{})
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		off, err := pool.Alloc(4096)
		if err != nil {
			return nil, err
		}
		logged, err := measure(runs, func(i int) error {
			return pool.RunTx(func(tx *pmemobj.Tx) error {
				for r := uint64(0); r < 8; r++ {
					if err := tx.Snapshot(off+r*72, 72); err != nil {
						return err
					}
					dev.WriteU64(off+r*72, uint64(i))
				}
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		raw, err := measure(runs, func(i int) error {
			for r := uint64(0); r < 8; r++ {
				dev.WriteU64(off+r*72, uint64(i))
				dev.Flush(off+r*72, 72)
			}
			dev.Drain()
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Note the inversion: "chosen" costs MORE; the factor shows the
		// price of crash consistency.
		add("atomic-commit", logged, raw)
	}

	// --- §5.1 alternatives: PMDK-style undo-log tx vs PMwCAS ---
	// Both make a multi-word record-header flip failure-atomic; the paper
	// chose PMDK "for the sake of simplicity" and names PMwCAS as the
	// alternative. "chosen" = undo-log tx, "alternative" = MWCAS.
	{
		dev := pmem.NewPMem(16 << 20)
		pool, err := pmemobj.Create(dev, pmemobj.Options{})
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		off, err := pool.Alloc(256)
		if err != nil {
			return nil, err
		}
		val := uint64(0)
		undoLog, err := measure(runs, func(int) error {
			return pool.RunTx(func(tx *pmemobj.Tx) error {
				for w := uint64(0); w < 4; w++ {
					if err := tx.Snapshot(off+w*8, 8); err != nil {
						return err
					}
					dev.WriteU64(off+w*8, val+w+1)
				}
				val++
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		dev2 := pmem.NewPMem(16 << 20)
		pool2, err := pmemobj.Create(dev2, pmemobj.Options{})
		if err != nil {
			return nil, err
		}
		defer pool2.Close()
		off2, err := pool2.Alloc(256)
		if err != nil {
			return nil, err
		}
		val = 0
		mwcas, err := measure(runs, func(int) error {
			entries := make([]pmemobj.CASEntry, 4)
			for w := uint64(0); w < 4; w++ {
				cur := dev2.ReadU64(off2 + w*8)
				entries[w] = pmemobj.CASEntry{Off: off2 + w*8, Old: cur, New: val + w + 1}
			}
			val++
			ok, err := pool2.MWCAS(entries)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("bench: MWCAS unexpectedly failed")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		add("commit-mechanism", undoLog, mwcas)
	}

	// --- DG3: 256-byte-aligned access vs straddling blocks ---
	{
		dev := pmem.NewPMem(16 << 20)
		const recs = 64
		aligned, err := measure(runs, func(int) error {
			for r := uint64(0); r < recs; r++ {
				base := r * 256 // one 256B block per record
				dev.WriteU64(base, r)
				dev.Flush(base, 64)
			}
			dev.Drain()
			return nil
		})
		if err != nil {
			return nil, err
		}
		before := dev.Stats.Snapshot()
		straddle, err := measure(runs, func(int) error {
			for r := uint64(0); r < recs; r++ {
				base := 200 + r*256 // every flush straddles two blocks
				dev.WriteU64(base, r)
				dev.Flush(base, 128)
			}
			dev.Drain()
			return nil
		})
		if err != nil {
			return nil, err
		}
		delta := dev.Stats.Snapshot().Sub(before)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"aligned-chunks detail: straddling run issued %d block writes for %d record flushes",
			delta.BlockWrites, runs*recs))
		add("aligned-chunks", aligned, straddle)
	}

	return t, nil
}
