//go:build race

package bench

// raceEnabled reports that the race detector is active; timing-shape
// assertions are skipped because instrumentation slows the engines'
// Go code ~10x while simulated device latencies stay fixed.
const raceEnabled = true
