package bench

import (
	"fmt"
	"strings"
	"testing"
)

// tinySetup keeps functional tests fast; shape assertions run on cmd/
// and root-level benchmarks with realistic scales.
func tinySetup(t *testing.T) *Setup {
	t.Helper()
	s, err := NewSetup(Options{Persons: 40, Runs: 2, Workers: 2, PoolSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestAllFiguresProduceCompleteTables(t *testing.T) {
	s := tinySetup(t)
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("got %d tables, want 6", len(tables))
	}
	wantRows := []int{12, 8, 12, 3, 8, 12} // fig5..fig10
	for i, tbl := range tables {
		if len(tbl.Rows) != wantRows[i] {
			t.Errorf("%s: %d rows, want %d", tbl.Name, len(tbl.Rows), wantRows[i])
		}
		for _, r := range tbl.Rows {
			for _, c := range tbl.Columns {
				v, ok := r.Cells[c]
				// Fig 8 has one sparse column layout; others must be full.
				if !ok && !strings.Contains(tbl.Name, "Fig 8") {
					t.Errorf("%s: row %s missing column %s", tbl.Name, r.Query, c)
					continue
				}
				if ok && (v < 0 || v > 1e9) {
					t.Errorf("%s: row %s col %s implausible value %f", tbl.Name, r.Query, c, v)
				}
			}
		}
		out := tbl.Format()
		if !strings.Contains(out, tbl.Rows[0].Query) {
			t.Errorf("%s: Format output missing first row", tbl.Name)
		}
	}
}

func TestFig5ShapeDiskSlowest(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are meaningless under the race detector")
	}
	s := tinySetup(t)
	// The headline claim: the PMem engine with indexes beats the
	// disk-based system. Tiny scale + a shared CPU are noisy: accept the
	// shape if any of a few attempts shows it.
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		tbl, err := s.Fig5()
		if err != nil {
			t.Fatal(err)
		}
		faster := 0
		var pmemSum, diskSum float64
		for _, r := range tbl.Rows {
			pmemSum += r.Cells["pmem-i"]
			diskSum += r.Cells["disk-i"]
			if r.Cells["pmem-i"] < r.Cells["disk-i"] {
				faster++
			}
		}
		if pmemSum < diskSum && faster >= len(tbl.Rows)*3/4 {
			return
		}
		last = fmt.Sprintf("pmem-i total %.1fus vs disk-i total %.1fus, faster on %d/%d",
			pmemSum, diskSum, faster, len(tbl.Rows))
	}
	t.Errorf("Fig5 shape not observed in 3 attempts: %s", last)
}

func TestFig8ShapeHybridLookupAndRecovery(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are meaningless under the race detector")
	}
	s := tinySetup(t)
	// Wall-clock shapes on a shared CI box are noisy: accept the shape if
	// any of a few attempts shows it.
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		tbl, err := s.Fig8()
		if err != nil {
			t.Fatal(err)
		}
		cells := map[string]map[string]float64{}
		for _, r := range tbl.Rows {
			cells[r.Query] = r.Cells
		}
		okLookup := cells["hybrid"]["lookup-us"] < cells["persistent"]["lookup-us"]
		okRecovery := cells["hybrid"]["recovery-ms"]*2 < cells["volatile"]["recovery-ms"]
		if okLookup && okRecovery {
			return
		}
		last = fmt.Sprintf("lookup hybrid=%.2fus persistent=%.2fus; recovery hybrid=%.2fms volatile=%.2fms",
			cells["hybrid"]["lookup-us"], cells["persistent"]["lookup-us"],
			cells["hybrid"]["recovery-ms"], cells["volatile"]["recovery-ms"])
	}
	t.Errorf("Fig8 shape not observed in 3 attempts: %s", last)
}

func TestFig6ShapeDiskCommitSlowest(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are meaningless under the race detector")
	}
	s := tinySetup(t)
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		tbl, err := s.Fig6()
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, r := range tbl.Rows {
			if r.Cells["pmem-commit"] >= r.Cells["disk-commit"] {
				ok = false
				last = fmt.Sprintf("IU%s: pmem commit %.1fus vs disk commit %.1fus",
					r.Query, r.Cells["pmem-commit"], r.Cells["disk-commit"])
			}
		}
		if ok {
			return
		}
	}
	t.Errorf("Fig6 shape not observed in 3 attempts: %s", last)
}

func TestAblationsShapes(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are meaningless under the race detector")
	}
	s := tinySetup(t)
	tbl, err := s.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("ablation rows = %d, want 6", len(tbl.Rows))
	}
	factors := map[string]float64{}
	for _, r := range tbl.Rows {
		factors[r.Query] = r.Cells["factor"]
	}
	// Every chosen design must beat its alternative, except atomic-commit
	// which intentionally pays for crash consistency (factor < 1).
	for _, name := range []string{"dirty-versions", "offset-links", "group-alloc", "aligned-chunks"} {
		if factors[name] <= 1.0 {
			t.Errorf("%s: factor %.2f, want > 1 (chosen design should win)", name, factors[name])
		}
	}
	if factors["atomic-commit"] >= 1.0 {
		t.Errorf("atomic-commit: factor %.2f, want < 1 (crash safety costs something)", factors["atomic-commit"])
	}
}

func TestFig7ShapeJITBeatsAOTAggregate(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are meaningless under the race detector")
	}
	s := tinySetup(t)
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		tbl, err := s.Fig7()
		if err != nil {
			t.Fatal(err)
		}
		var aot, jit float64
		for _, r := range tbl.Rows {
			aot += r.Cells["pmem-aot"]
			jit += r.Cells["pmem-jit"]
		}
		if jit < aot {
			return
		}
		last = fmt.Sprintf("pmem jit total %.1fus not below aot total %.1fus", jit, aot)
	}
	t.Error(last)
}
