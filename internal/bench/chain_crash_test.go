package bench

import (
	"testing"

	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
)

// Regression test for a bug the pmem strict-flush checker caught in the
// DG6 ablation: the linked chain used to be persisted with
// Persist(offs[0], 64*hops), but allocated blocks carry a header and
// line-alignment padding, so consecutive blocks sit 128 bytes apart and
// the chain spans roughly twice that range — its tail never reached the
// media view, and a crash silently truncated the chain.
// buildLinkedChain now persists the true extent; this test crashes the
// device and re-walks the chain from the durable image.
func TestLinkedChainSurvivesCrash(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "chain", Size: 16 << 20, Persistent: true, StrictFlush: true})
	pool, err := pmemobj.Create(dev, pmemobj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const hops = 256
	offs, err := buildLinkedChain(dev, pool, hops)
	if err != nil {
		t.Fatal(err)
	}

	// Walking under StrictFlush also asserts that no hop reads a line
	// that was stored but not flushed before the setup's persist barrier
	// (the strict checker panics on such reads).
	walkOffsets := func() int {
		n := 0
		for cur := offs[0]; cur != 0; cur = dev.ReadU64(cur) {
			n++
		}
		return n
	}
	walkPPtrs := func() int {
		n := 0
		for cur := offs[0]; cur != 0; cur = pool.ReadPPtr(cur + 8).Off {
			n++
		}
		return n
	}
	if got := walkOffsets(); got != hops {
		t.Fatalf("offset chain has %d hops before crash, want %d", got, hops)
	}
	if got := walkPPtrs(); got != hops {
		t.Fatalf("pptr chain has %d hops before crash, want %d", got, hops)
	}

	dev.Crash()

	if got := walkOffsets(); got != hops {
		t.Errorf("offset chain truncated to %d hops after crash, want %d (tail not persisted)", got, hops)
	}
	if got := walkPPtrs(); got != hops {
		t.Errorf("pptr chain truncated to %d hops after crash, want %d (tail not persisted)", got, hops)
	}
}
