package bench

import (
	"encoding/json"
	"fmt"
	"math"
)

// ResultSchema versions the machine-readable output of poseidon-bench;
// bump on any incompatible change to Result/Table/TableRow.
const ResultSchema = "poseidon-bench/v1"

// Result is the machine-readable form of a bench run: the configuration,
// every regenerated figure with full timing distributions, and the final
// DB.Metrics() telemetry snapshot of the probe workload. Metrics stays a
// raw message here so this package does not import the root poseidon
// package (the repository-root benchmarks import bench in turn).
type Result struct {
	Schema      string          `json:"schema"`
	GeneratedAt string          `json:"generated_at"` // RFC 3339
	GoVersion   string          `json:"go_version"`
	Config      Options         `json:"config"`
	Figures     []*Table        `json:"figures"`
	Metrics     json.RawMessage `json:"metrics,omitempty"`
}

// requiredCounters are the metrics-snapshot fields a healthy bench run
// can never leave at zero: the telemetry probe commits transactions,
// forces an abort, JIT-compiles, misses the statement cache once and
// runs queries, so a zero here means the wiring regressed, not that the
// workload was small. Paths use the snapshot's JSON field names.
var requiredCounters = [][]string{
	{"pmem", "Reads"},
	{"pmem", "Writes"},
	{"tx", "begun"},
	{"tx", "commits"},
	{"jit", "compiles"},
	{"stmt_cache", "Misses"},
	{"query", "count"},
	{"query", "rows"},
	{"query", "latency", "count"},
}

// Validate checks structural sanity and, when a metrics snapshot is
// attached, that every required counter is nonzero.
func (r *Result) Validate() error {
	if r.Schema != ResultSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, ResultSchema)
	}
	if r.GeneratedAt == "" || r.GoVersion == "" {
		return fmt.Errorf("bench: missing generated_at/go_version")
	}
	if len(r.Figures) == 0 {
		return fmt.Errorf("bench: no figures")
	}
	for _, fig := range r.Figures {
		if fig == nil || fig.Name == "" {
			return fmt.Errorf("bench: unnamed figure")
		}
		if len(fig.Rows) == 0 {
			return fmt.Errorf("bench: figure %q has no rows", fig.Name)
		}
		for _, row := range fig.Rows {
			if len(row.Cells) == 0 {
				return fmt.Errorf("bench: figure %q row %q has no cells", fig.Name, row.Query)
			}
			for col, v := range row.Cells {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("bench: figure %q row %q cell %q = %v", fig.Name, row.Query, col, v)
				}
			}
		}
	}
	if len(r.Metrics) > 0 {
		if err := validateMetrics(r.Metrics); err != nil {
			return err
		}
	}
	return nil
}

// ValidateJSON parses a serialized Result and validates it, requiring
// the metrics snapshot to be present (the CI smoke contract).
func ValidateJSON(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: malformed result JSON: %w", err)
	}
	if len(r.Metrics) == 0 {
		return nil, fmt.Errorf("bench: result has no metrics snapshot")
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

func validateMetrics(raw json.RawMessage) error {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("bench: malformed metrics snapshot: %w", err)
	}
	if enabled, _ := m["enabled"].(bool); !enabled {
		return fmt.Errorf("bench: metrics snapshot taken with telemetry disabled")
	}
	for _, path := range requiredCounters {
		v, err := lookupNumber(m, path)
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("bench: required counter %v is zero", path)
		}
	}
	// At least one abort must have been recorded: the probe forces a
	// write-write conflict.
	tx, _ := m["tx"].(map[string]any)
	aborts, ok := tx["aborts"].(map[string]any)
	if !ok {
		return fmt.Errorf("bench: metrics snapshot missing tx.aborts")
	}
	var total float64
	for _, v := range aborts {
		if n, ok := v.(float64); ok {
			total += n
		}
	}
	if total <= 0 {
		return fmt.Errorf("bench: no aborts recorded despite forced conflict")
	}
	return nil
}

// lookupNumber walks nested JSON objects along path.
func lookupNumber(m map[string]any, path []string) (float64, error) {
	var cur any = m
	for _, key := range path {
		obj, ok := cur.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("bench: metrics path %v: not an object at %q", path, key)
		}
		if cur, ok = obj[key]; !ok {
			return 0, fmt.Errorf("bench: metrics path %v: missing %q", path, key)
		}
	}
	n, ok := cur.(float64)
	if !ok {
		return 0, fmt.Errorf("bench: metrics path %v: not a number", path)
	}
	return n, nil
}
