package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// goodMetrics is a minimal metrics snapshot satisfying every required
// counter, shaped like poseidon.Metrics' JSON encoding.
const goodMetrics = `{
  "enabled": true,
  "pmem": {"Reads": 100, "Writes": 50, "BlockWrites": 10},
  "tx": {"begun": 7, "commits": 5, "aborts": {"write_conflict": 1}, "active": 0},
  "query": {"count": 4, "rows": 12, "latency": {"count": 4, "sum": 0.1}},
  "jit": {"compiles": 2},
  "stmt_cache": {"Hits": 1, "Misses": 3}
}`

func goodResult() *Result {
	row := TableRow{Query: "sr1"}
	row.set("pmem-s", Dist{Mean: 10, P50: 9, P95: 14, Min: 8, Max: 15})
	return &Result{
		Schema:      ResultSchema,
		GeneratedAt: "2026-01-01T00:00:00Z",
		GoVersion:   "go1.22",
		Config:      Options{Persons: 60, Runs: 2, Seed: 42, PoolSize: 1 << 30},
		Figures:     []*Table{{Name: "Fig 5", Columns: []string{"pmem-s"}, Rows: []TableRow{row}}},
		Metrics:     json.RawMessage(goodMetrics),
	}
}

func TestResultValidateOK(t *testing.T) {
	if err := goodResult().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResultValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Result)
		want   string
	}{
		{"wrong schema", func(r *Result) { r.Schema = "v0" }, "schema"},
		{"no figures", func(r *Result) { r.Figures = nil }, "no figures"},
		{"empty row", func(r *Result) { r.Figures[0].Rows[0].Cells = nil }, "no cells"},
		{"negative cell", func(r *Result) { r.Figures[0].Rows[0].Cells["pmem-s"] = -1 }, "cell"},
		{"telemetry off", func(r *Result) {
			r.Metrics = json.RawMessage(strings.Replace(goodMetrics, `"enabled": true`, `"enabled": false`, 1))
		}, "disabled"},
		{"zero counter", func(r *Result) {
			r.Metrics = json.RawMessage(strings.Replace(goodMetrics, `"compiles": 2`, `"compiles": 0`, 1))
		}, "zero"},
		{"missing counter", func(r *Result) {
			r.Metrics = json.RawMessage(strings.Replace(goodMetrics, `"compiles"`, `"kompiles"`, 1))
		}, "missing"},
		{"no aborts", func(r *Result) {
			r.Metrics = json.RawMessage(strings.Replace(goodMetrics, `{"write_conflict": 1}`, `{}`, 1))
		}, "abort"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := goodResult()
			tc.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateJSONRoundTrip(t *testing.T) {
	data, err := json.Marshal(goodResult())
	if err != nil {
		t.Fatal(err)
	}
	r, err := ValidateJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Figures) != 1 || r.Figures[0].Rows[0].Dists["pmem-s"].P95 != 14 {
		t.Errorf("round trip lost data: %+v", r.Figures[0])
	}
}

func TestValidateJSONMalformed(t *testing.T) {
	if _, err := ValidateJSON([]byte(`{"schema": `)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Well-formed but missing metrics: the CI contract requires them.
	data, _ := json.Marshal(&Result{Schema: ResultSchema})
	if _, err := ValidateJSON(data); err == nil {
		t.Error("metrics-less result accepted")
	}
}

func TestDistOf(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Microsecond
	}
	d := distOf(samples)
	if d.Min != 1 || d.Max != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", d.Min, d.Max)
	}
	if d.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", d.Mean)
	}
	if d.P50 < 49 || d.P50 > 52 {
		t.Errorf("p50 = %v", d.P50)
	}
	if d.P95 < 94 || d.P95 > 97 {
		t.Errorf("p95 = %v", d.P95)
	}
	if (distOf(nil) != Dist{}) {
		t.Error("distOf(nil) not zero")
	}
}
