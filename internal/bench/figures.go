package bench

import (
	"fmt"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/jit"
	"poseidon/internal/ldbc"
	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
	"poseidon/internal/query"
	"poseidon/internal/storage"
)

// Fig5 reproduces the Interactive Short Read comparison: DISK-i versus
// DRAM-s/p/i versus PMem-s/p/i, average of hot runs with varying input
// parameters (§7.3, Fig 5).
func (s *Setup) Fig5() (*Table, error) {
	t := &Table{
		Name:    "Fig 5: SR query execution times (us, hot runs)",
		Columns: []string{"disk-i", "dram-s", "dram-p", "dram-i", "pmem-s", "pmem-p", "pmem-i"},
		Notes: []string{
			"expected shape: pmem-* ~ dram-* (marginal overhead), both beat disk-i;",
			"indexes (-i) help these lookup-heavy queries more than parallelism (-p)",
		},
	}
	runs := s.Opts.Runs
	for _, q := range ldbc.SRQueries() {
		params := s.srParams(q, runs)
		row := TableRow{Query: q.Name(), Cells: map[string]float64{}}

		scanPlan, err := ldbc.SRPlan(q, false)
		if err != nil {
			return nil, err
		}
		idxPlan, err := ldbc.SRPlan(q, true)
		if err != nil {
			return nil, err
		}

		// Disk baseline, indexed, hot (warmup first).
		warm := func(i int) error {
			tx := s.Disk.Begin()
			defer tx.Abort()
			_, err := ldbc.RunSRDisk(tx, q, params[i%runs])
			return err
		}
		for i := 0; i < 3; i++ {
			if err := warm(i); err != nil {
				return nil, err
			}
		}
		d, err := measure(runs, warm)
		if err != nil {
			return nil, err
		}
		row.set("disk-i", d)

		for _, sys := range []struct {
			name string
			e    *core.Engine
		}{{"dram", s.DRAM}, {"pmem", s.PMem}} {
			prScan, err := query.Prepare(sys.e, scanPlan)
			if err != nil {
				return nil, err
			}
			prIdx, err := query.Prepare(sys.e, idxPlan)
			if err != nil {
				return nil, err
			}
			// Warm the CPU cache simulation.
			if err := runSRInterp(s.Ctx, sys.e, prScan, params[0]); err != nil {
				return nil, err
			}
			d, err := measure(runs, func(i int) error { return runSRInterp(s.Ctx, sys.e, prScan, params[i]) })
			if err != nil {
				return nil, err
			}
			row.set(sys.name+"-s", d)
			d, err = measure(runs, func(i int) error {
				return runSRParallel(s.Ctx, sys.e, prScan, params[i], s.Opts.Workers)
			})
			if err != nil {
				return nil, err
			}
			row.set(sys.name+"-p", d)
			d, err = measure(runs, func(i int) error { return runSRInterp(s.Ctx, sys.e, prIdx, params[i]) })
			if err != nil {
				return nil, err
			}
			row.set(sys.name+"-i", d)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6 reproduces the Interactive Update comparison: execution and commit
// times on DISK / DRAM / PMem, hot and cold (§7.3, Fig 6).
func (s *Setup) Fig6() (*Table, error) {
	t := &Table{
		Name: "Fig 6: IU query times (us): execute and commit, hot and cold",
		Columns: []string{
			"disk-exec", "disk-commit",
			"dram-exec", "dram-commit",
			"pmem-exec", "pmem-commit",
			"pmem-exec-cold", "pmem-commit-cold",
		},
		Notes: []string{
			"expected shape: pmem commits near dram (marginal overhead), disk commits",
			"an order of magnitude slower (fsync); pmem cold ~ hot (no buffer pool to warm)",
		},
	}
	runs := s.Opts.Runs
	for _, q := range ldbc.IUQueries() {
		row := TableRow{Query: q.Name(), Cells: map[string]float64{}}
		plan, err := ldbc.IUPlan(q, true)
		if err != nil {
			return nil, err
		}

		// Disk baseline.
		pgDisk := ldbc.NewParamGen(s.DS, s.Opts.Seed+900+int64(q.Num))
		var dExec, dCommit time.Duration
		for i := 0; i < runs; i++ {
			params := pgDisk.IUParams(q)
			tx := s.Disk.Begin()
			start := time.Now()
			if err := ldbc.RunIUDisk(tx, q, params); err != nil {
				tx.Abort()
				return nil, err
			}
			mid := time.Now()
			if err := tx.Commit(); err != nil {
				return nil, err
			}
			dExec += mid.Sub(start)
			dCommit += time.Since(mid)
		}
		row.Cells["disk-exec"] = us(dExec / time.Duration(runs))
		row.Cells["disk-commit"] = us(dCommit / time.Duration(runs))

		for _, sys := range []struct {
			name string
			e    *core.Engine
			cold bool
		}{{"dram", s.DRAM, false}, {"pmem", s.PMem, false}, {"pmem", s.PMem, true}} {
			pr, err := query.Prepare(sys.e, plan)
			if err != nil {
				return nil, err
			}
			pg := ldbc.NewParamGen(s.DS, s.Opts.Seed+900+int64(q.Num))
			var exec, commit time.Duration
			for i := 0; i < runs; i++ {
				params := pg.IUParams(q)
				if sys.cold {
					sys.e.Device().DropCache()
				}
				tx := sys.e.Begin()
				start := time.Now()
				if _, err := pr.CollectCtx(s.Ctx, tx, params); err != nil {
					tx.Abort()
					return nil, err
				}
				mid := time.Now()
				if err := tx.Commit(); err != nil {
					return nil, err
				}
				exec += mid.Sub(start)
				commit += time.Since(mid)
			}
			suffix := ""
			if sys.cold {
				suffix = "-cold"
			}
			row.Cells[sys.name+"-exec"+suffix] = us(exec / time.Duration(runs))
			row.Cells[sys.name+"-commit"+suffix] = us(commit / time.Duration(runs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7 reproduces the SR comparison under the JIT engine: AOT
// interpretation versus JIT-compiled execution, single-threaded without
// indexes, plus the compilation time itself (§7.5, Fig 7).
func (s *Setup) Fig7() (*Table, error) {
	t := &Table{
		Name:    "Fig 7: SR with JIT engine (us, single-threaded, no indexes)",
		Columns: []string{"dram-aot", "dram-jit", "pmem-aot", "pmem-jit", "compile"},
		Notes: []string{
			"expected shape: jit < aot on both devices; compile time is a few hundred us",
			"and grows with operator count, so jit+compile wins once per repeated query",
		},
	}
	runs := s.Opts.Runs
	for _, q := range ldbc.SRQueries() {
		params := s.srParams(q, runs)
		row := TableRow{Query: q.Name(), Cells: map[string]float64{}}
		plan, err := ldbc.SRPlan(q, false)
		if err != nil {
			return nil, err
		}
		for _, sys := range []struct {
			name string
			e    *core.Engine
			j    *jit.Engine
		}{{"dram", s.DRAM, s.DRAMJIT}, {"pmem", s.PMem, s.PMemJIT}} {
			pr, err := query.Prepare(sys.e, plan)
			if err != nil {
				return nil, err
			}
			if err := runSRInterp(s.Ctx, sys.e, pr, params[0]); err != nil { // warm
				return nil, err
			}
			d, err := measure(runs, func(i int) error { return runSRInterp(s.Ctx, sys.e, pr, params[i]) })
			if err != nil {
				return nil, err
			}
			row.set(sys.name+"-aot", d)

			c, err := sys.j.CompileCtx(s.Ctx, plan)
			if err != nil {
				return nil, err
			}
			if sys.name == "pmem" {
				row.Cells["compile"] = us(c.CompileTime)
			}
			d, err = measure(runs, func(i int) error {
				tx := sys.e.Begin()
				defer tx.Abort()
				_, err := sys.j.RunCtx(s.Ctx, tx, plan, params[i], func(query.Row) bool { return true })
				return err
			})
			if err != nil {
				return nil, err
			}
			row.set(sys.name+"-jit", d)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8 reproduces the index comparison: average lookup latency of the
// volatile, hybrid and persistent B+-trees, plus recovery time of the
// hybrid tree versus the full rebuild a volatile index needs (§7.4,
// Fig 8).
func (s *Setup) Fig8() (*Table, error) {
	t := &Table{
		Name:    "Fig 8: B+-tree index lookups (us) and recovery (ms)",
		Columns: []string{"lookup-us", "recovery-ms"},
		Notes: []string{
			"expected shape: hybrid ~ dram lookup (~2x faster than pmem tree);",
			"hybrid recovery orders of magnitude below the volatile full rebuild",
		},
	}
	// A dedicated pool so tree sizes are comparable and isolated.
	dev := pmem.NewPMem(256 << 20)
	pool, err := pmemobj.Create(dev, pmemobj.Options{})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	n := len(s.DS.PersonIDs) * 40 // index scale: person lookups dominate SR
	if n < 20000 {
		n = 20000 // keep tree depth realistic even at tiny test scales
	}
	keys := make([]storage.Value, n)
	for i := range keys {
		keys[i] = storage.IntValue(int64(i))
	}
	lookupRuns := s.Opts.Runs * 200

	build := func(kind index.Kind) (*index.Tree, time.Duration, error) {
		start := time.Now()
		tree, err := index.Create(kind, pool, index.Options{})
		if err != nil {
			return nil, 0, err
		}
		for i, k := range keys {
			if err := tree.Insert(k, uint64(i)); err != nil {
				return nil, 0, err
			}
		}
		return tree, time.Since(start), nil
	}

	for _, kind := range []index.Kind{index.Persistent, index.Volatile, index.Hybrid} {
		tree, buildTime, err := build(kind)
		if err != nil {
			return nil, err
		}
		d, err := measure(lookupRuns, func(i int) error {
			k := keys[(i*2654435761)%n]
			if _, ok := tree.LookupFirst(k); !ok {
				return fmt.Errorf("bench: lost key %v", k)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		row := TableRow{Query: kind.String()}
		row.set("lookup-us", d)
		switch kind {
		case index.Hybrid:
			// Recovery: rebuild the DRAM inner levels from the leaf chain.
			start := time.Now()
			if _, err := index.Open(index.Hybrid, pool, tree.Offset(), index.Options{}); err != nil {
				return nil, err
			}
			row.Cells["recovery-ms"] = float64(time.Since(start).Microseconds()) / 1e3
		case index.Volatile:
			// A volatile index is gone after failure: recovery = rebuild.
			row.Cells["recovery-ms"] = float64(buildTime.Microseconds()) / 1e3
		case index.Persistent:
			start := time.Now()
			if _, err := index.Open(index.Persistent, pool, tree.Offset(), index.Options{}); err != nil {
				return nil, err
			}
			row.Cells["recovery-ms"] = float64(time.Since(start).Microseconds()) / 1e3
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 reproduces the IU comparison under the JIT engine: AOT versus
// JIT with a cold code cache (compilation included) versus hot cached
// code (§7.5, Fig 9).
func (s *Setup) Fig9() (*Table, error) {
	t := &Table{
		Name:    "Fig 9: IU with JIT engine (us, pmem)",
		Columns: []string{"aot", "jit-hot", "jit-cold"},
		Notes: []string{
			"expected shape: compile time dwarfs these short updates, so jit-cold",
			"loses badly; jit-hot (cached code) is comparable to aot",
		},
	}
	runs := s.Opts.Runs
	e := s.PMem
	for _, q := range ldbc.IUQueries() {
		row := TableRow{Query: q.Name(), Cells: map[string]float64{}}
		plan, err := ldbc.IUPlan(q, true)
		if err != nil {
			return nil, err
		}
		pr, err := query.Prepare(e, plan)
		if err != nil {
			return nil, err
		}

		pg := ldbc.NewParamGen(s.DS, s.Opts.Seed+1700+int64(q.Num))
		d, err := measure(runs, func(int) error {
			params := pg.IUParams(q)
			tx := e.Begin()
			if _, err := pr.CollectCtx(s.Ctx, tx, params); err != nil {
				tx.Abort()
				return err
			}
			return tx.Commit()
		})
		if err != nil {
			return nil, err
		}
		row.set("aot", d)

		// Cold code: a fresh compilation including codegen+passes+lowering.
		// The paper's cold case pays full LLVM compilation the same way.
		coldJit, err := jit.New(e)
		if err != nil {
			return nil, err
		}
		params := pg.IUParams(q)
		start := time.Now()
		c, err := coldJit.CompileUncached(plan)
		if err != nil {
			return nil, err
		}
		tx := e.Begin()
		if _, err := coldJit.RunCtx(s.Ctx, tx, plan, params, func(query.Row) bool { return true }); err != nil {
			tx.Abort()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		row.Cells["jit-cold"] = us(time.Since(start))
		_ = c

		// Hot code: cached compilation, measure run only.
		d, err = measure(runs, func(int) error {
			params := pg.IUParams(q)
			tx := e.Begin()
			if _, err := coldJit.RunCtx(s.Ctx, tx, plan, params, func(query.Row) bool { return true }); err != nil {
				tx.Abort()
				return err
			}
			return tx.Commit()
		})
		if err != nil {
			return nil, err
		}
		row.set("jit-hot", d)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10 reproduces the adaptive-execution comparison: multi-threaded AOT
// interpretation versus adaptive execution (interpret morsels while
// compiling, then switch), on DRAM and PMem (§7.5, Fig 10).
func (s *Setup) Fig10() (*Table, error) {
	t := &Table{
		Name:    "Fig 10: adaptive execution vs multi-threaded AOT (us)",
		Columns: []string{"dram-aot-mt", "dram-adaptive", "pmem-aot-mt", "pmem-adaptive"},
		Notes: []string{
			"expected shape: adaptive <= aot-mt everywhere; PMem gains the most",
			"because compiled code hides its higher access latency",
		},
	}
	runs := s.Opts.Runs
	for _, q := range ldbc.SRQueries() {
		params := s.srParams(q, runs)
		row := TableRow{Query: q.Name(), Cells: map[string]float64{}}
		plan, err := ldbc.SRPlan(q, false) // scans: the morsel-parallel shape
		if err != nil {
			return nil, err
		}
		for _, sys := range []struct {
			name string
			e    *core.Engine
			j    *jit.Engine
		}{{"dram", s.DRAM, s.DRAMJIT}, {"pmem", s.PMem, s.PMemJIT}} {
			pr, err := query.Prepare(sys.e, plan)
			if err != nil {
				return nil, err
			}
			if err := runSRParallel(s.Ctx, sys.e, pr, params[0], s.Opts.Workers); err != nil {
				return nil, err
			}
			d, err := measure(runs, func(i int) error {
				return runSRParallel(s.Ctx, sys.e, pr, params[i], s.Opts.Workers)
			})
			if err != nil {
				return nil, err
			}
			row.set(sys.name+"-aot-mt", d)

			d, err = measure(runs, func(i int) error {
				tx := sys.e.Begin()
				defer tx.Abort()
				_, err := sys.j.RunAdaptiveCtx(s.Ctx, tx, plan, params[i], s.Opts.Workers, func(query.Row) bool { return true })
				return err
			})
			if err != nil {
				return nil, err
			}
			row.set(sys.name+"-adaptive", d)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// All runs every figure in order.
func (s *Setup) All() ([]*Table, error) {
	var out []*Table
	for _, f := range []func() (*Table, error){s.Fig5, s.Fig6, s.Fig7, s.Fig8, s.Fig9, s.Fig10} {
		tbl, err := f()
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
