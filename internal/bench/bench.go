// Package bench is the experiment harness that regenerates every figure
// of the paper's evaluation (§7): Fig 5 (SR across DISK/DRAM/PMem ×
// single/parallel/indexed), Fig 6 (IU execute+commit, hot and cold),
// Fig 7 (SR under the JIT engine), Fig 8 (B+-tree variants and recovery),
// Fig 9 (IU under the JIT engine, cold vs hot code) and Fig 10 (adaptive
// execution vs multi-threaded AOT). Both the testing.B benchmarks at the
// repository root and cmd/poseidon-bench drive this package.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/diskstore"
	"poseidon/internal/index"
	"poseidon/internal/jit"
	"poseidon/internal/ldbc"
	"poseidon/internal/query"
)

// Options scales the experiments.
type Options struct {
	// Persons scales the LDBC-SNB-like dataset (default 500).
	Persons int `json:"persons"`
	// Runs is the number of measured repetitions per query (the paper
	// uses 50). Default 20.
	Runs int `json:"runs"`
	// Workers bounds parallel/adaptive execution (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// Seed fixes dataset and parameter generation.
	Seed int64 `json:"seed"`
	// PoolSize for each engine (default 1 GiB).
	PoolSize int `json:"pool_size"`
}

func (o *Options) fill() {
	if o.Persons == 0 {
		o.Persons = 500
	}
	if o.Runs == 0 {
		o.Runs = 20
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PoolSize == 0 {
		o.PoolSize = 1 << 30
	}
}

// Setup holds the three loaded systems under test.
type Setup struct {
	Opts Options
	DS   *ldbc.Dataset

	// Ctx, when set by the caller, is threaded through every measured
	// execution so a cancelled benchmark run aborts mid-query. A nil Ctx
	// is tolerated by the *Ctx entry points.
	Ctx context.Context

	PMem    *core.Engine
	PMemJIT *jit.Engine
	DRAM    *core.Engine
	DRAMJIT *jit.Engine
	Disk    *diskstore.Store
}

// NewSetup generates the dataset and loads it into the PMem engine, the
// DRAM engine and the disk baseline, with the workload indexes on each.
func NewSetup(opts Options) (*Setup, error) {
	opts.fill()
	s := &Setup{Opts: opts, DS: ldbc.Generate(ldbc.Config{Persons: opts.Persons, Seed: opts.Seed})}

	var err error
	if s.PMem, err = core.Open(core.Config{Mode: core.PMem, PoolSize: opts.PoolSize}); err != nil {
		return nil, err
	}
	if err = s.DS.LoadCore(s.PMem, true, index.Hybrid); err != nil {
		return nil, err
	}
	if s.PMemJIT, err = jit.New(s.PMem); err != nil {
		return nil, err
	}

	if s.DRAM, err = core.Open(core.Config{Mode: core.DRAM, PoolSize: opts.PoolSize}); err != nil {
		return nil, err
	}
	if err = s.DS.LoadCore(s.DRAM, true, index.Volatile); err != nil {
		return nil, err
	}
	if s.DRAMJIT, err = jit.New(s.DRAM); err != nil {
		return nil, err
	}

	s.Disk = diskstore.Open(diskstore.Config{BufferPages: 1 << 15})
	s.DS.LoadDisk(s.Disk)
	s.Disk.Checkpoint()
	return s, nil
}

// Close releases the engines.
func (s *Setup) Close() {
	s.PMem.Close()
	s.DRAM.Close()
}

// Table is one experiment's result: rows per query, one cell per system
// variant, in microseconds unless a column says otherwise.
type Table struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns"`
	Rows    []TableRow `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// TableRow is one query's measurements. Cells holds the headline number
// per column (the mean, except where a column says otherwise); Dists
// holds the full distribution for columns produced by repeated runs.
type TableRow struct {
	Query string             `json:"query"`
	Cells map[string]float64 `json:"cells"`
	Dists map[string]Dist    `json:"dists,omitempty"`
}

// set records a measured distribution under col: the mean becomes the
// table cell, the distribution is kept for machine consumers.
func (r *TableRow) set(col string, d Dist) {
	if r.Cells == nil {
		r.Cells = map[string]float64{}
	}
	if r.Dists == nil {
		r.Dists = map[string]Dist{}
	}
	r.Cells[col] = d.Mean
	r.Dists[col] = d
}

// Dist summarizes repeated measurements of one variant, in microseconds.
type Dist struct {
	Mean float64 `json:"mean_us"`
	P50  float64 `json:"p50_us"`
	P95  float64 `json:"p95_us"`
	Min  float64 `json:"min_us"`
	Max  float64 `json:"max_us"`
}

// distOf summarizes a sample of run durations.
func distOf(samples []time.Duration) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, s := range sorted {
		total += s
	}
	pct := func(q float64) time.Duration {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	return Dist{
		Mean: us(total / time.Duration(len(sorted))),
		P50:  us(pct(0.50)),
		P95:  us(pct(0.95)),
		Min:  us(sorted[0]),
		Max:  us(sorted[len(sorted)-1]),
	}
}

// Format renders the table as aligned text, mirroring the figure's rows.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Name)
	fmt.Fprintf(&b, "%-10s", "query")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s", r.Query)
		for _, c := range t.Columns {
			if v, ok := r.Cells[c]; ok {
				fmt.Fprintf(&b, "%14.1f", v)
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// us converts a duration to microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// measure runs f runs times and returns the timing distribution.
func measure(runs int, f func(i int) error) (Dist, error) {
	samples := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := f(i); err != nil {
			return Dist{}, err
		}
		samples = append(samples, time.Since(start))
	}
	return distOf(samples), nil
}

// runSRInterp executes a prepared SR plan once, single-threaded.
func runSRInterp(ctx context.Context, e *core.Engine, pr *query.Prepared, params query.Params) error {
	tx := e.Begin()
	defer tx.Abort()
	return pr.RunCtx(ctx, tx, params, func(query.Row) bool { return true })
}

// runSRParallel executes with morsel-driven parallelism.
func runSRParallel(ctx context.Context, e *core.Engine, pr *query.Prepared, params query.Params, workers int) error {
	tx := e.Begin()
	defer tx.Abort()
	return pr.RunParallelCtx(ctx, tx, params, workers, func(query.Row) bool { return true })
}

// srParams pre-draws one parameter set per run so every system variant
// sees the identical sequence.
func (s *Setup) srParams(q ldbc.QueryID, runs int) []query.Params {
	pg := ldbc.NewParamGen(s.DS, s.Opts.Seed+int64(q.Num)*100+int64(len(q.Variant)))
	out := make([]query.Params, runs)
	for i := range out {
		out[i] = pg.SRParams(q)
	}
	return out
}
