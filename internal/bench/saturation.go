package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/core"
)

// Saturation sweeps the engine-core shard count under a write-heavy
// concurrent commit workload: fixed worker count, each worker committing
// small update transactions against nodes spread uniformly over the
// shards (~10% of them deliberately cross-shard). Throughput measures
// multi-core scaling; the per-shard lock-wait total measures commit-lock
// contention directly, which is the honest signal on hosts whose
// GOMAXPROCS or CPU budget cannot show wall-clock speedup.
func Saturation(opts Options) (*Table, error) {
	opts.fill()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 4 {
		workers = 4
	}
	const txPerWorker = 1500
	const nodeCount = 256

	shardCounts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		shardCounts = append(shardCounts, g)
	}

	t := &Table{
		Name: fmt.Sprintf("Saturation: commit throughput vs shard count (%d workers, GOMAXPROCS=%d)",
			workers, runtime.GOMAXPROCS(0)),
		Columns: []string{"ktx/s", "speedup", "contended_pct", "lock_wait_ms", "cross_pct", "aborts"},
		Notes: []string{
			"speedup is relative to shards=1 on the same host; wall-clock scaling needs free cores",
			"contended_pct: share of commit-lock acquisitions that found the lock held (TryLock miss)",
			"it is scheduling-independent, so it shows contention collapse even on oversubscribed hosts",
			"lock_wait_ms sums every shard's commit-lock wait; on starved hosts it measures CPU scarcity",
			"~10% of transactions update two nodes in different shards (cross-shard commit protocol)",
		},
	}

	var base float64
	for _, n := range shardCounts {
		elapsed, stats, cross, aborts, commits, err := saturationRound(n, workers, txPerWorker, nodeCount, opts.Seed)
		if err != nil {
			return nil, err
		}
		ktps := float64(commits) / elapsed.Seconds() / 1e3
		if base == 0 {
			base = ktps
		}
		var lockWait, contended, acquisitions uint64
		for _, s := range stats {
			lockWait += s.LockWaitNs
			contended += s.LockContended
			acquisitions += s.Commits
		}
		crossPct, contendedPct := 0.0, 0.0
		if commits > 0 {
			crossPct = 100 * float64(cross) / float64(commits)
		}
		if acquisitions > 0 {
			contendedPct = 100 * float64(contended) / float64(acquisitions)
		}
		t.Rows = append(t.Rows, TableRow{
			Query: fmt.Sprintf("shards=%d", n),
			Cells: map[string]float64{
				"ktx/s":         ktps,
				"speedup":       ktps / base,
				"contended_pct": contendedPct,
				"lock_wait_ms":  float64(lockWait) / 1e6,
				"cross_pct":     crossPct,
				"aborts":        float64(aborts),
			},
		})
	}
	return t, nil
}

// saturationRound runs the workload once against a fresh engine with the
// given shard count and returns the elapsed wall time plus the engine's
// contention counters.
func saturationRound(shards, workers, txPerWorker, nodeCount int, seed int64) (
	elapsed time.Duration, stats []core.ShardStats, cross uint64, aborts, commits uint64, err error) {

	e, err := core.Open(core.Config{Mode: core.PMem, PoolSize: 128 << 20, Shards: shards})
	if err != nil {
		return 0, nil, 0, 0, 0, err
	}
	defer e.Close()

	// One node per transaction so home-shard rotation spreads the nodes
	// uniformly over the shards.
	ids := make([]uint64, nodeCount)
	for i := range ids {
		tx := e.Begin()
		if ids[i], err = tx.CreateNode("S", map[string]any{"v": int64(0)}); err != nil {
			return 0, nil, 0, 0, 0, err
		}
		if err = tx.Commit(); err != nil {
			return 0, nil, 0, 0, 0, err
		}
	}

	var wg sync.WaitGroup
	var abortCount, commitCount atomic.Uint64
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*6151))
			for i := 0; i < txPerWorker; i++ {
				tx := e.Begin()
				n := rng.Intn(nodeCount)
				val := int64(w*txPerWorker + i)
				if err := tx.SetNodeProps(ids[n], map[string]any{"v": val}); err != nil {
					tx.Abort()
					abortCount.Add(1)
					continue
				}
				if rng.Intn(10) == 0 { // cross-shard update
					m := (n + 1 + rng.Intn(nodeCount-1)) % nodeCount
					if err := tx.SetNodeProps(ids[m], map[string]any{"v": val}); err != nil {
						tx.Abort()
						abortCount.Add(1)
						continue
					}
				}
				if err := tx.Commit(); err != nil {
					abortCount.Add(1)
					continue
				}
				commitCount.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed = time.Since(start)
	stats, cross = e.ShardStatsSnapshot()
	return elapsed, stats, cross, abortCount.Load(), commitCount.Load(), nil
}
