package wire

import (
	"encoding/binary"
	"io"
)

// The handshake is fixed-size in both directions so it can be read
// before any framing exists:
//
//	client → server: Magic (4 bytes) + 4 candidate versions (uint32 BE
//	                 each, preference order, 0 = unused slot)
//	server → client: chosen version (uint32 BE), 0 = no common version
//	                 (the server closes after writing it)

// handshakeLen is the size of the client's handshake.
const handshakeLen = 4 + 4*4

// WriteClientHandshake sends the magic and up to four candidate
// versions in preference order.
func WriteClientHandshake(w io.Writer, versions ...uint32) error {
	var buf [handshakeLen]byte
	copy(buf[:4], Magic[:])
	for i := 0; i < 4 && i < len(versions); i++ {
		binary.BigEndian.PutUint32(buf[4+4*i:], versions[i])
	}
	_, err := w.Write(buf[:])
	return err
}

// ReadClientHandshake validates the magic and returns the client's
// candidate versions.
func ReadClientHandshake(r io.Reader) ([4]uint32, error) {
	var buf [handshakeLen]byte
	var versions [4]uint32
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = ErrMalformed
		}
		return versions, err
	}
	if [4]byte(buf[:4]) != Magic {
		return versions, ErrBadMagic
	}
	for i := range versions {
		versions[i] = binary.BigEndian.Uint32(buf[4+4*i:])
	}
	return versions, nil
}

// supported reports whether this build speaks version v.
func supported(v uint32) bool { return v == Version1 || v == Version2 }

// ChooseVersion picks the first candidate the server supports (the
// client lists candidates in preference order), or 0. An old client
// offering only Version1 therefore still gets Version1 from a
// Version2-capable server.
func ChooseVersion(candidates [4]uint32) uint32 {
	for _, v := range candidates {
		if supported(v) {
			return v
		}
	}
	return 0
}

// WriteServerHandshake sends the server's chosen version.
func WriteServerHandshake(w io.Writer, version uint32) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], version)
	_, err := w.Write(buf[:])
	return err
}

// ReadServerHandshake reads the server's choice; 0 (or any version the
// client does not speak) is ErrVersionMismatch.
func ReadServerHandshake(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(buf[:])
	if !supported(v) {
		return v, ErrVersionMismatch
	}
	return v, nil
}
