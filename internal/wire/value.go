package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Value tags. The vocabulary matches what the engine's DecodeValue can
// produce (nil, bool, int64, float64, string) plus lists and string-
// keyed maps for parameter bindings and response metadata.
const (
	tagNil    byte = 0x00
	tagTrue   byte = 0x01
	tagFalse  byte = 0x02
	tagInt    byte = 0x03
	tagFloat  byte = 0x04
	tagString byte = 0x05
	tagList   byte = 0x06
	tagMap    byte = 0x07
)

// appendValue encodes one Go value. Integers of any width are widened
// to int64 so clients can pass untyped literals.
func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case bool:
		if x {
			return append(buf, tagTrue), nil
		}
		return append(buf, tagFalse), nil
	case int:
		return appendInt(buf, int64(x)), nil
	case int32:
		return appendInt(buf, int64(x)), nil
	case int64:
		return appendInt(buf, x), nil
	case uint64:
		return appendInt(buf, int64(x)), nil
	case float64:
		buf = append(buf, tagFloat)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case float32:
		buf = append(buf, tagFloat)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(x))), nil
	case string:
		buf = append(buf, tagString)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case []any:
		buf = append(buf, tagList)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
		var err error
		for _, e := range x {
			if buf, err = appendValue(buf, e); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case map[string]any:
		buf = append(buf, tagMap)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
		var err error
		for k, e := range x {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(k)))
			buf = append(buf, k...)
			if buf, err = appendValue(buf, e); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("wire: unsupported value type %T", v)
	}
}

func appendInt(buf []byte, v int64) []byte {
	buf = append(buf, tagInt)
	return binary.BigEndian.AppendUint64(buf, uint64(v))
}

// decoder is a bounds-checked cursor over one message body. Every size
// field is validated against the bytes actually remaining before any
// allocation sized by it, so truncated or hostile payloads error with
// ErrMalformed/ErrTooLarge instead of panicking or over-allocating.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, ErrMalformed
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, ErrMalformed
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, ErrMalformed
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// str reads a u32-length-prefixed string. The length is checked against
// the remaining bytes, so the allocation is always backed by real data.
func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if int64(n) > int64(d.remaining()) {
		return "", fmt.Errorf("%w: string length %d exceeds remaining %d", ErrTooLarge, n, d.remaining())
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// value decodes one tagged value. depth bounds nesting so a recursive
// list/map bomb cannot blow the stack.
func (d *decoder) value(depth int) (any, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("%w: value nesting too deep", ErrMalformed)
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagTrue:
		return true, nil
	case tagFalse:
		return false, nil
	case tagInt:
		v, err := d.u64()
		return int64(v), err
	case tagFloat:
		v, err := d.u64()
		return math.Float64frombits(v), err
	case tagString:
		return d.str()
	case tagList:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		// Each element takes at least one tag byte; a count beyond the
		// remaining bytes is a lie, so reject before allocating.
		if int64(n) > int64(d.remaining()) {
			return nil, fmt.Errorf("%w: list count %d exceeds remaining %d", ErrTooLarge, n, d.remaining())
		}
		out := make([]any, n)
		for i := range out {
			if out[i], err = d.value(depth - 1); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagMap:
		return d.strMap(depth - 1)
	default:
		return nil, fmt.Errorf("%w: unknown value tag 0x%02x", ErrMalformed, tag)
	}
}

// strMap decodes a string-keyed map (count, then key/value pairs).
func (d *decoder) strMap(depth int) (map[string]any, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	// A pair costs at least 5 bytes (u32 key length + value tag).
	if int64(n)*5 > int64(d.remaining()) {
		return nil, fmt.Errorf("%w: map count %d exceeds remaining %d", ErrTooLarge, n, d.remaining())
	}
	out := make(map[string]any, n)
	for i := uint32(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.value(depth)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// maxValueDepth bounds nesting of lists/maps in a single value.
const maxValueDepth = 16
