package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// seedFrames returns well-formed encodings of every message type, so
// the fuzzers start from the interesting part of the input space.
func seedFrames() [][]byte {
	msgs := []Message{
		&Hello{UserAgent: "fuzz/1", Mode: 3},
		&Hello{UserAgent: "fuzz/2", Mode: 0, Trace: &TraceContext{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00}},
		&Prepare{Text: "MATCH (p:Person) RETURN p.name"},
		&Run{StmtID: 1, Mode: ModeDefault, Params: map[string]any{"id": int64(7), "s": "x"}},
		&Run{Text: "ldbc:iu2", Params: map[string]any{"nested": []any{map[string]any{"k": int64(1)}}}},
		&Run{StmtID: 2, Mode: 1, Params: map[string]any{}, Trace: &TraceContext{TraceID: 0xdeadbeef, SpanID: 0xcafe}},
		&Pull{N: -1},
		&Discard{}, &Begin{}, &Commit{}, &Rollback{}, &Reset{}, &Goodbye{},
		&Success{Meta: map[string]any{"has_more": true, "rows_affected": int64(3)}},
		&Record{Values: []any{int64(1), "two", 3.5, nil, false}},
		&Error{Code: CodeConflict, Message: "write-write conflict"},
	}
	var out [][]byte
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			panic(err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// helloBase encodes a HELLO body up to (but excluding) the optional
// trace metadata, so seeds can append hostile metadata bytes.
func helloBase(ua string) []byte {
	return append(appendString(nil, ua), 0x00)
}

// frameWith frames an arbitrary body under the given type byte.
func frameWith(typ byte, body []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, typ, body); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame pushes arbitrary bytes through the frame reader and
// message decoder. The contract under fuzzing: never panic, never
// allocate beyond the frame cap, and classify every failure as a known
// error (ErrMalformed/ErrTooLarge/io.EOF). Well-formed frames must
// re-encode to a decodable message (round-trip closure).
func FuzzDecodeFrame(f *testing.F) {
	for _, b := range seedFrames() {
		f.Add(b)
	}
	// Hand-built hostile inputs: truncated chunk, lying chunk length,
	// huge declared list, deep nesting.
	f.Add([]byte{MsgRun, 0xFF, 0xFF})
	f.Add([]byte{MsgRecord, 0x00, 0x04, 0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00})
	f.Add(bytes.Repeat([]byte{MsgSuccess, 0x00, 0x01, tagList}, 8))
	// Hostile trace metadata: unknown tag and a truncated entry after a
	// well-formed HELLO base.
	f.Add(frameWith(MsgHello, append(helloBase("h"), 0x7F)))
	f.Add(frameWith(MsgHello, append(helloBase("h"), metaTagTrace, 0x01, 0x02)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the fuzz frame limit well below MaxMessage so the harness
		// itself stays cheap; the incremental check is the same code path.
		const fuzzMax = 1 << 16
		typ, body, err := ReadFrame(bytes.NewReader(data), fuzzMax)
		if err != nil {
			if errors.Is(err, ErrMalformed) || errors.Is(err, ErrTooLarge) || err == io.EOF {
				return
			}
			t.Fatalf("ReadFrame returned unclassified error %v", err)
		}
		if len(body) > fuzzMax {
			t.Fatalf("ReadFrame returned %d bytes over the %d cap", len(body), fuzzMax)
		}
		m, err := DecodeMessage(typ, body)
		if err != nil {
			if errors.Is(err, ErrMalformed) || errors.Is(err, ErrTooLarge) {
				return
			}
			t.Fatalf("DecodeMessage returned unclassified error %v", err)
		}
		// Decoded messages must re-encode and decode back cleanly.
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("re-encode of decoded %s failed: %v", MsgName(typ), err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			t.Fatalf("re-decode of re-encoded %s failed: %v", MsgName(typ), err)
		}
	})
}

// FuzzHandshake pushes arbitrary bytes through both handshake readers.
func FuzzHandshake(f *testing.F) {
	var ok bytes.Buffer
	if err := WriteClientHandshake(&ok, Version2, Version1, 3); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	var v1only bytes.Buffer
	if err := WriteClientHandshake(&v1only, Version1); err != nil {
		f.Fatal(err)
	}
	f.Add(v1only.Bytes())
	f.Add(append(Magic[:], make([]byte, 16)...))
	f.Add([]byte("PSDN"))
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		versions, err := ReadClientHandshake(bytes.NewReader(data))
		if err == nil {
			// Whatever the candidates, choosing must not panic and the
			// server reply must round-trip.
			v := ChooseVersion(versions)
			var s2c bytes.Buffer
			if err := WriteServerHandshake(&s2c, v); err != nil {
				t.Fatal(err)
			}
			got, err := ReadServerHandshake(&s2c)
			if supported(v) && (err != nil || got != v) {
				t.Fatalf("server chose %d but client read %d, %v", v, got, err)
			}
			if !supported(v) && !errors.Is(err, ErrVersionMismatch) {
				t.Fatalf("unsupported choice %d not rejected: %v", v, err)
			}
			return
		}
		if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrMalformed) || err == io.EOF {
			return
		}
		t.Fatalf("ReadClientHandshake returned unclassified error %v", err)
	})
}
