package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WriteFrame writes one message frame: the type byte, the body split
// into chunks of at most maxChunk bytes, and the zero-length terminator.
// The caller owns buffering and flushing (bufio on both sides).
func WriteFrame(w io.Writer, typ byte, body []byte) error {
	var hdr [3]byte
	hdr[0] = typ
	if _, err := w.Write(hdr[:1]); err != nil {
		return err
	}
	rest := body
	for len(rest) > 0 {
		n := len(rest)
		if n > maxChunk {
			n = maxChunk
		}
		binary.BigEndian.PutUint16(hdr[1:3], uint16(n))
		if _, err := w.Write(hdr[1:3]); err != nil {
			return err
		}
		if _, err := w.Write(rest[:n]); err != nil {
			return err
		}
		rest = rest[n:]
	}
	// Zero-length terminator chunk.
	binary.BigEndian.PutUint16(hdr[1:3], 0)
	_, err := w.Write(hdr[1:3])
	return err
}

// ReadFrame reads one message frame, enforcing max on the accumulated
// body size incrementally: the body buffer grows chunk by chunk and
// decoding stops with ErrTooLarge the moment the declared data crosses
// the cap, so a hostile stream cannot force a large allocation up
// front. Returns the type byte and the reassembled body.
func ReadFrame(r io.Reader, max int) (byte, []byte, error) {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	typ := hdr[0]
	var body []byte
	for {
		if _, err := io.ReadFull(r, hdr[1:3]); err != nil {
			return 0, nil, unexpectedEOF(err)
		}
		n := int(binary.BigEndian.Uint16(hdr[1:3]))
		if n == 0 {
			return typ, body, nil
		}
		if len(body)+n > max {
			return 0, nil, fmt.Errorf("%w: body exceeds %d bytes", ErrTooLarge, max)
		}
		off := len(body)
		body = append(body, make([]byte, n)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return 0, nil, unexpectedEOF(err)
		}
	}
}

// unexpectedEOF normalizes a mid-frame EOF: the frame was truncated,
// which is a malformed stream, not a clean end of input.
func unexpectedEOF(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: truncated frame", ErrMalformed)
	}
	return err
}
