// Package wire implements poseidond's framed binary protocol: a small
// Bolt-like request/response protocol carrying prepared-statement
// execution over any byte stream (TCP in production, net.Pipe in tests).
//
// A connection starts with a fixed-size handshake — a 4-byte magic
// followed by four candidate protocol versions, answered by the server's
// single chosen version — and then carries a sequence of messages in
// both directions. Each message is one type byte followed by a chunked
// body: a run of [uint16 length][payload] chunks terminated by a
// zero-length chunk. Chunking bounds what either side must buffer,
// lets large record batches stream without a length-prefix for the
// whole message, and gives the decoder a hard incremental cap
// (MaxMessage) so a hostile length field can never force a giant
// allocation.
//
// The request vocabulary mirrors the public Session API:
//
//	HELLO     open the connection's session (user agent, default mode)
//	PREPARE   parse/plan a statement once, returning a connection-local id
//	RUN       execute a prepared or ad-hoc statement (auto-commit or in tx)
//	PULL n    stream up to n records of the open result (n<0 = all)
//	DISCARD   drop the rest of the open result
//	BEGIN     start an explicit transaction owned by the connection
//	COMMIT    commit it
//	ROLLBACK  abort it
//	RESET     abandon any open result and transaction
//	GOODBYE   close cleanly
//
// The server answers every request with SUCCESS (plus zero or more
// RECORD frames before the SUCCESS that ends a PULL) or with a typed
// ERROR carrying a machine-readable code (see the Code* constants);
// QUEUE_FULL and DRAINING are the admission-control shed signals
// clients are expected to handle by backing off or reconnecting.
package wire

import "errors"

// Magic opens every connection ("PSDN"). A server reading anything else
// closes immediately — it is not a poseidon client.
var Magic = [4]byte{'P', 'S', 'D', 'N'}

// Version1 is the original protocol version. The handshake carries
// four candidate slots so clients can offer a preference list.
const Version1 uint32 = 1

// Version2 adds the optional trace-context metadata entry on HELLO and
// RUN bodies (see TraceContext). The frame and value encodings are
// unchanged; a v1 peer never sees the entry because clients only emit
// it after negotiating v2.
const Version2 uint32 = 2

// LatestVersion is the highest version this build speaks; clients offer
// [LatestVersion … Version1] in preference order.
const LatestVersion = Version2

// MaxMessage caps the accumulated body size of a single message. The
// decoder enforces it incrementally while reading chunks, so a
// malformed or hostile stream can never force an allocation larger
// than one chunk beyond the cap.
const MaxMessage = 4 << 20

// maxChunk is the largest single chunk a writer emits (the uint16
// length field caps it at 64 KiB - 1 anyway).
const maxChunk = 0xFFFF

// Message type bytes. Requests are < 0x70, responses >= 0x70.
const (
	MsgHello    byte = 0x01
	MsgPrepare  byte = 0x02
	MsgRun      byte = 0x03
	MsgPull     byte = 0x04
	MsgDiscard  byte = 0x05
	MsgBegin    byte = 0x06
	MsgCommit   byte = 0x07
	MsgRollback byte = 0x08
	MsgReset    byte = 0x09
	MsgGoodbye  byte = 0x0A

	MsgSuccess byte = 0x70
	MsgRecord  byte = 0x71
	MsgError   byte = 0x7F
)

// MsgName renders a message type for logs and per-type latency series.
func MsgName(t byte) string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgPrepare:
		return "prepare"
	case MsgRun:
		return "run"
	case MsgPull:
		return "pull"
	case MsgDiscard:
		return "discard"
	case MsgBegin:
		return "begin"
	case MsgCommit:
		return "commit"
	case MsgRollback:
		return "rollback"
	case MsgReset:
		return "reset"
	case MsgGoodbye:
		return "goodbye"
	case MsgSuccess:
		return "success"
	case MsgRecord:
		return "record"
	case MsgError:
		return "error"
	}
	return "unknown"
}

// RequestNames lists every request message name in type order — the
// label set of the server's per-message-type latency histograms.
func RequestNames() []string {
	return []string{"hello", "prepare", "run", "pull", "discard",
		"begin", "commit", "rollback", "reset", "goodbye"}
}

// Error codes carried by ERROR frames. They are part of the protocol:
// clients dispatch on them (QUEUE_FULL → back off, DRAINING →
// reconnect elsewhere/later), so they must stay stable.
const (
	// CodeQueueFull: admission control shed the request — the bounded
	// in-flight semaphore and its wait queue were both full.
	CodeQueueFull = "QUEUE_FULL"
	// CodeDraining: the server is shutting down gracefully; it finishes
	// in-flight statements but rejects new RUN/BEGIN requests.
	CodeDraining = "DRAINING"
	// CodeSyntax: the statement failed to parse or plan.
	CodeSyntax = "SYNTAX"
	// CodeConflict: the transaction aborted (MVTO write-write conflict
	// or commit-time validation failure). Safe to retry.
	CodeConflict = "CONFLICT"
	// CodeCancelled: the statement exceeded its deadline or the
	// connection's context was cancelled mid-execution.
	CodeCancelled = "CANCELLED"
	// CodeSessionLimit: the connection's session hit its concurrent
	// transaction bound.
	CodeSessionLimit = "SESSION_LIMIT"
	// CodeProtocol: the client violated the request state machine
	// (e.g. RUN while a result is still streaming, PULL with none).
	CodeProtocol = "PROTOCOL"
	// CodeUnknownStmt: RUN referenced a statement id this connection
	// never prepared (or the server restarted).
	CodeUnknownStmt = "UNKNOWN_STMT"
	// CodeInternal: anything else; the message carries details.
	CodeInternal = "INTERNAL"
)

// Shared decode errors. ErrTooLarge and ErrMalformed are deliberate
// coarse buckets: the fuzz targets assert decoding either succeeds or
// returns one of these (or io errors) — never panics.
var (
	// ErrTooLarge reports a message or value that exceeds MaxMessage
	// (or a nested size field that exceeds what remains of it).
	ErrTooLarge = errors.New("wire: message exceeds size limit")
	// ErrMalformed reports a structurally invalid payload: truncated
	// fields, unknown tags, trailing garbage.
	ErrMalformed = errors.New("wire: malformed message")
	// ErrBadMagic reports a handshake that did not start with Magic.
	ErrBadMagic = errors.New("wire: bad handshake magic")
	// ErrVersionMismatch reports a handshake with no mutually supported
	// version.
	ErrVersionMismatch = errors.New("wire: no mutually supported protocol version")
)
