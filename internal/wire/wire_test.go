package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// roundTrip encodes a message, reads it back, and returns the decode.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("write %T: %v", m, err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read %T: %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after reading one message", buf.Len())
	}
	return got
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []Message{
		&Hello{UserAgent: "test/1", Mode: 2},
		&Prepare{Text: "MATCH (p:Person) RETURN p.name"},
		&Run{StmtID: 7, Mode: ModeDefault, Params: map[string]any{}},
		&Run{Text: "ldbc:sr1", Mode: 0, Params: map[string]any{
			"id": int64(42), "name": "ada", "score": 1.5, "ok": true, "none": nil,
		}},
		&Pull{N: -1},
		&Pull{N: 1000},
		&Discard{}, &Begin{}, &Commit{}, &Rollback{}, &Reset{}, &Goodbye{},
		&Success{Meta: map[string]any{"stmt_id": int64(3), "has_updates": false}},
		&Success{Meta: map[string]any{"list": []any{int64(1), "two", 3.0}}},
		&Record{Values: []any{int64(1), "x", nil, true, 2.25}},
		&Record{Values: nil},
		&Error{Code: CodeQueueFull, Message: "shed"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		want := m
		// Encoding normalizes nil params/meta to empty maps and nil
		// record values to an empty row.
		switch w := want.(type) {
		case *Run:
			if w.Params == nil {
				w.Params = map[string]any{}
			}
		case *Success:
			if w.Meta == nil {
				w.Meta = map[string]any{}
			}
		case *Record:
			if w.Values == nil {
				w.Values = []any{}
			}
			if g, ok := got.(*Record); ok && g.Values == nil {
				g.Values = []any{}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %T: got %#v want %#v", m, got, want)
		}
	}
}

func TestLargeBodyChunks(t *testing.T) {
	// A body over 64 KiB must split into multiple chunks and reassemble.
	text := strings.Repeat("x", 3*maxChunk+17)
	got := roundTrip(t, &Prepare{Text: text}).(*Prepare)
	if got.Text != text {
		t.Fatalf("large body corrupted: got %d bytes want %d", len(got.Text), len(text))
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Prepare{Text: strings.Repeat("y", 100_000)}); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 64_000)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestTruncatedFrameMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Prepare{Text: "hello"}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, err := ReadMessage(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestLyingListCountRejected(t *testing.T) {
	// A record claiming 2^31 values in a tiny body must error without
	// allocating the claimed slice.
	body := []byte{0x80, 0x00, 0x00, 0x00}
	_, err := DecodeMessage(MsgRecord, body)
	if !errors.Is(err, ErrTooLarge) && !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v", err)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Begin{}); err != nil {
		t.Fatal(err)
	}
	// Re-frame with an extra byte appended to the body.
	_, err := DecodeMessage(MsgBegin, []byte{0xEE})
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
	_ = buf
}

func TestHandshake(t *testing.T) {
	var c2s bytes.Buffer
	if err := WriteClientHandshake(&c2s, Version1); err != nil {
		t.Fatal(err)
	}
	versions, err := ReadClientHandshake(&c2s)
	if err != nil {
		t.Fatal(err)
	}
	if v := ChooseVersion(versions); v != Version1 {
		t.Fatalf("chose %d", v)
	}
	var s2c bytes.Buffer
	if err := WriteServerHandshake(&s2c, Version1); err != nil {
		t.Fatal(err)
	}
	if v, err := ReadServerHandshake(&s2c); err != nil || v != Version1 {
		t.Fatalf("client got %d, %v", v, err)
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	raw := append([]byte("BOLT"), make([]byte, 16)...)
	if _, err := ReadClientHandshake(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestHandshakeNoCommonVersion(t *testing.T) {
	if v := ChooseVersion([4]uint32{99, 100, 0, 0}); v != 0 {
		t.Fatalf("chose %d for unsupported candidates", v)
	}
	var s2c bytes.Buffer
	if err := WriteServerHandshake(&s2c, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadServerHandshake(&s2c); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}
}

func TestUnknownMessageType(t *testing.T) {
	if _, err := DecodeMessage(0x42, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
}

func TestReadFrameEOFIsClean(t *testing.T) {
	// EOF before any byte of a frame is a clean connection end, not a
	// malformed stream.
	_, _, err := ReadFrame(bytes.NewReader(nil), MaxMessage)
	if err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}
