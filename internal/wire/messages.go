package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Message is one decoded protocol message. The concrete types below
// are the full vocabulary; DecodeMessage returns exactly one of them.
type Message interface {
	// Type returns the message's wire type byte.
	Type() byte
	// encodeBody appends the message body to buf.
	encodeBody(buf []byte) ([]byte, error)
}

// Hello opens the connection's server-side session.
type Hello struct {
	// UserAgent identifies the client for logs ("poseidon-load/1 run=7").
	UserAgent string
	// Mode is the session's default execution mode (0=interpret,
	// 1=parallel, 2=jit, 3=adaptive).
	Mode uint8
	// Trace is the optional trace-context metadata entry (Version2+).
	// Clients must leave it nil unless the handshake negotiated a
	// version that understands it: a v1 peer rejects the extra bytes
	// as trailing garbage.
	Trace *TraceContext
}

// TraceContext is the propagated request-tracing identity: the trace a
// request belongs to and the client-side span that is its parent. It
// rides HELLO and RUN bodies as an optional tagged metadata entry so
// the encoding stays backward compatible — a body simply ends where a
// v1 body would, or continues with metaTagTrace + 16 bytes.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// metaTagTrace introduces the optional trace-context metadata entry.
// Further optional entries get new tags; decoders reject tags they do
// not know so a corrupted stream cannot be silently misparsed.
const metaTagTrace byte = 0x01

// Prepare parses and plans a statement once. Text is Cypher, or an
// "ldbc:<name>" workload statement the server resolves from its
// built-in plan registry (e.g. "ldbc:sr2-post", "ldbc:iu6").
type Prepare struct {
	Text string
}

// Run executes a statement. Either StmtID references a previous
// PREPARE on this connection (nonzero), or Text carries an ad-hoc
// statement. Mode overrides the session default unless ModeDefault.
type Run struct {
	StmtID uint32
	Text   string
	Params map[string]any
	Mode   uint8
	// Trace is the optional trace-context metadata entry (Version2+);
	// see Hello.Trace for the compatibility contract.
	Trace *TraceContext
}

// ModeDefault in Run.Mode means "use the session's default mode".
const ModeDefault uint8 = 0xFF

// Pull asks for up to N records of the open result; N < 0 means all.
type Pull struct {
	N int64
}

// Discard drops the rest of the open result.
type Discard struct{}

// Begin starts an explicit transaction owned by the connection.
type Begin struct{}

// Commit commits the connection's explicit transaction.
type Commit struct{}

// Rollback aborts the connection's explicit transaction.
type Rollback struct{}

// Reset abandons any open result and transaction, returning the
// connection to its post-HELLO state.
type Reset struct{}

// Goodbye announces a clean close.
type Goodbye struct{}

// Success acknowledges a request. Meta carries request-specific fields:
// PREPARE → "stmt_id", "has_updates"; RUN → "streaming" or
// "rows_affected"/"committed"; PULL → "has_more".
type Success struct {
	Meta map[string]any
}

// Record carries one result row.
type Record struct {
	Values []any
}

// Error reports a failed request. Code is one of the Code* constants.
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func (*Hello) Type() byte    { return MsgHello }
func (*Prepare) Type() byte  { return MsgPrepare }
func (*Run) Type() byte      { return MsgRun }
func (*Pull) Type() byte     { return MsgPull }
func (*Discard) Type() byte  { return MsgDiscard }
func (*Begin) Type() byte    { return MsgBegin }
func (*Commit) Type() byte   { return MsgCommit }
func (*Rollback) Type() byte { return MsgRollback }
func (*Reset) Type() byte    { return MsgReset }
func (*Goodbye) Type() byte  { return MsgGoodbye }
func (*Success) Type() byte  { return MsgSuccess }
func (*Record) Type() byte   { return MsgRecord }
func (*Error) Type() byte    { return MsgError }

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// appendTraceMeta emits the optional trace-context entry. Encoding is
// versionless on purpose: the version gate lives in the client, which
// only populates Trace after negotiating Version2.
func appendTraceMeta(buf []byte, tc *TraceContext) []byte {
	if tc == nil {
		return buf
	}
	buf = append(buf, metaTagTrace)
	buf = binary.BigEndian.AppendUint64(buf, tc.TraceID)
	return binary.BigEndian.AppendUint64(buf, tc.SpanID)
}

// decodeTraceMeta consumes the optional trace-context entry. No
// remaining bytes means no entry; anything else must be a well-formed
// entry or the message is malformed.
func decodeTraceMeta(d *decoder) (*TraceContext, error) {
	if d.remaining() == 0 {
		return nil, nil
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	if tag != metaTagTrace {
		return nil, fmt.Errorf("%w: unknown metadata tag 0x%02x", ErrMalformed, tag)
	}
	tc := &TraceContext{}
	if tc.TraceID, err = d.u64(); err != nil {
		return nil, fmt.Errorf("%w: truncated trace metadata", ErrMalformed)
	}
	if tc.SpanID, err = d.u64(); err != nil {
		return nil, fmt.Errorf("%w: truncated trace metadata", ErrMalformed)
	}
	return tc, nil
}

func (m *Hello) encodeBody(buf []byte) ([]byte, error) {
	buf = appendString(buf, m.UserAgent)
	buf = append(buf, m.Mode)
	return appendTraceMeta(buf, m.Trace), nil
}

func (m *Prepare) encodeBody(buf []byte) ([]byte, error) {
	return appendString(buf, m.Text), nil
}

func (m *Run) encodeBody(buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint32(buf, m.StmtID)
	buf = appendString(buf, m.Text)
	buf = append(buf, m.Mode)
	params := m.Params
	if params == nil {
		params = map[string]any{}
	}
	buf, err := appendValue(buf, params)
	if err != nil {
		return nil, err
	}
	return appendTraceMeta(buf, m.Trace), nil
}

func (m *Pull) encodeBody(buf []byte) ([]byte, error) {
	return binary.BigEndian.AppendUint64(buf, uint64(m.N)), nil
}

func (*Discard) encodeBody(buf []byte) ([]byte, error)  { return buf, nil }
func (*Begin) encodeBody(buf []byte) ([]byte, error)    { return buf, nil }
func (*Commit) encodeBody(buf []byte) ([]byte, error)   { return buf, nil }
func (*Rollback) encodeBody(buf []byte) ([]byte, error) { return buf, nil }
func (*Reset) encodeBody(buf []byte) ([]byte, error)    { return buf, nil }
func (*Goodbye) encodeBody(buf []byte) ([]byte, error)  { return buf, nil }

func (m *Success) encodeBody(buf []byte) ([]byte, error) {
	meta := m.Meta
	if meta == nil {
		meta = map[string]any{}
	}
	return appendValue(buf, meta)
}

func (m *Record) encodeBody(buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Values)))
	var err error
	for _, v := range m.Values {
		if buf, err = appendValue(buf, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func (m *Error) encodeBody(buf []byte) ([]byte, error) {
	buf = appendString(buf, m.Code)
	return appendString(buf, m.Message), nil
}

// WriteMessage encodes and frames one message. The caller flushes its
// bufio.Writer at response boundaries.
func WriteMessage(w io.Writer, m Message) error {
	body, err := m.encodeBody(nil)
	if err != nil {
		return err
	}
	if len(body) > MaxMessage {
		return fmt.Errorf("%w: encoding %s", ErrTooLarge, MsgName(m.Type()))
	}
	return WriteFrame(w, m.Type(), body)
}

// ReadMessage reads and decodes the next message, enforcing MaxMessage.
func ReadMessage(r io.Reader) (Message, error) {
	return ReadMessageMax(r, MaxMessage)
}

// ReadMessageMax is ReadMessage with a caller-chosen frame-size cap.
func ReadMessageMax(r io.Reader, max int) (Message, error) {
	typ, body, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(typ, body)
}

// DecodeMessage decodes a reassembled frame body. It never panics on
// malformed input: every structural violation maps to ErrMalformed or
// ErrTooLarge (the fuzz targets enforce this).
func DecodeMessage(typ byte, body []byte) (Message, error) {
	d := &decoder{buf: body}
	var m Message
	var err error
	switch typ {
	case MsgHello:
		h := &Hello{}
		if h.UserAgent, err = d.str(); err == nil {
			if h.Mode, err = d.byte(); err == nil {
				h.Trace, err = decodeTraceMeta(d)
			}
		}
		m = h
	case MsgPrepare:
		p := &Prepare{}
		p.Text, err = d.str()
		m = p
	case MsgRun:
		ru := &Run{}
		var id uint32
		if id, err = d.u32(); err == nil {
			ru.StmtID = id
			if ru.Text, err = d.str(); err == nil {
				if ru.Mode, err = d.byte(); err == nil {
					if ru.Params, err = decodeParams(d); err == nil {
						ru.Trace, err = decodeTraceMeta(d)
					}
				}
			}
		}
		m = ru
	case MsgPull:
		p := &Pull{}
		var v uint64
		if v, err = d.u64(); err == nil {
			p.N = int64(v)
		}
		m = p
	case MsgDiscard:
		m = &Discard{}
	case MsgBegin:
		m = &Begin{}
	case MsgCommit:
		m = &Commit{}
	case MsgRollback:
		m = &Rollback{}
	case MsgReset:
		m = &Reset{}
	case MsgGoodbye:
		m = &Goodbye{}
	case MsgSuccess:
		s := &Success{}
		s.Meta, err = decodeParams(d)
		m = s
	case MsgRecord:
		rec := &Record{}
		var n uint32
		if n, err = d.u32(); err == nil {
			if int64(n) > int64(d.remaining()) {
				err = fmt.Errorf("%w: record arity %d exceeds remaining %d", ErrTooLarge, n, d.remaining())
			} else {
				rec.Values = make([]any, n)
				for i := range rec.Values {
					if rec.Values[i], err = d.value(maxValueDepth); err != nil {
						break
					}
				}
			}
		}
		m = rec
	case MsgError:
		e := &Error{}
		if e.Code, err = d.str(); err == nil {
			e.Message, err = d.str()
		}
		m = e
	default:
		return nil, fmt.Errorf("%w: unknown message type 0x%02x", ErrMalformed, typ)
	}
	if err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %s", ErrMalformed, d.remaining(), MsgName(typ))
	}
	return m, nil
}

// decodeParams reads a map value and asserts it is a map (params and
// meta positions require one).
func decodeParams(d *decoder) (map[string]any, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	if tag != tagMap {
		return nil, fmt.Errorf("%w: expected map, got tag 0x%02x", ErrMalformed, tag)
	}
	return d.strMap(maxValueDepth)
}
