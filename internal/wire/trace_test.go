package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// TestTraceMetadataRoundTrip: the optional trace-context entry on HELLO
// and RUN must survive encode→decode, and its absence must decode to a
// nil TraceContext (the v1 body shape).
func TestTraceMetadataRoundTrip(t *testing.T) {
	tc := &TraceContext{TraceID: 0x0102030405060708, SpanID: 0x1112131415161718}
	msgs := []Message{
		&Hello{UserAgent: "drv/2", Mode: 3, Trace: tc},
		&Run{StmtID: 9, Mode: ModeDefault, Params: map[string]any{"id": int64(1)}, Trace: tc},
		&Run{Text: "ldbc:sr1", Mode: 0, Params: map[string]any{}, Trace: &TraceContext{TraceID: 1}},
		// No metadata at all — must stay nil after the round trip.
		&Hello{UserAgent: "drv/1", Mode: 0},
		&Run{StmtID: 4, Mode: 1, Params: map[string]any{}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T: got %#v want %#v", m, got, m)
		}
	}
}

// TestTraceMetadataMalformed: anything after the base fields that is
// not a complete, known metadata entry is ErrMalformed — never a
// silent misparse.
func TestTraceMetadataMalformed(t *testing.T) {
	base := helloBase("x")
	cases := map[string][]byte{
		"unknown tag":        append(append([]byte{}, base...), 0x7F, 0, 0),
		"truncated ids":      append(append([]byte{}, base...), metaTagTrace, 1, 2, 3),
		"empty entry":        append(append([]byte{}, base...), metaTagTrace),
		"trailing after ids": append(appendTraceMeta(append([]byte{}, base...), &TraceContext{TraceID: 1, SpanID: 2}), 0xEE),
	}
	for name, body := range cases {
		if _, err := DecodeMessage(MsgHello, body); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
	// Same contract on RUN: params followed by a bad tag.
	run := &Run{StmtID: 1, Mode: 0, Params: map[string]any{}}
	body, err := run.encodeBody(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(MsgRun, append(body, 0x7F)); !errors.Is(err, ErrMalformed) {
		t.Errorf("run bad tag: got %v, want ErrMalformed", err)
	}
}

// TestVersionNegotiationMatrix covers old↔new peer pairings.
func TestVersionNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name   string
		offer  []uint32
		choose uint32 // what a Version2-capable server picks
	}{
		{"new client, new server", []uint32{Version2, Version1}, Version2},
		{"old client, new server", []uint32{Version1}, Version1},
		{"future client with fallback", []uint32{99, Version2, Version1}, Version2},
		{"future-only client", []uint32{99, 98}, 0},
	}
	for _, tt := range cases {
		var c2s bytes.Buffer
		if err := WriteClientHandshake(&c2s, tt.offer...); err != nil {
			t.Fatal(err)
		}
		versions, err := ReadClientHandshake(&c2s)
		if err != nil {
			t.Fatal(err)
		}
		if v := ChooseVersion(versions); v != tt.choose {
			t.Errorf("%s: chose %d, want %d", tt.name, v, tt.choose)
		}
	}
	// A v1-only server (the old binary's ChooseVersion loop accepted
	// only Version1) would pick Version1 from a new client's offer:
	// that choice must still be accepted by the new client's reader.
	var s2c bytes.Buffer
	if err := WriteServerHandshake(&s2c, Version1); err != nil {
		t.Fatal(err)
	}
	if v, err := ReadServerHandshake(&s2c); err != nil || v != Version1 {
		t.Fatalf("new client rejected v1 server: %d, %v", v, err)
	}
	// And a v2 choice is accepted too.
	s2c.Reset()
	if err := WriteServerHandshake(&s2c, Version2); err != nil {
		t.Fatal(err)
	}
	if v, err := ReadServerHandshake(&s2c); err != nil || v != Version2 {
		t.Fatalf("new client rejected v2 server: %d, %v", v, err)
	}
}
