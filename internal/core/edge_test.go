package core

import (
	"errors"
	"fmt"
	"testing"
)

// Edge-case coverage for the transaction API.

func TestCreateRelToMissingNode(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		a := mustCreateNode(t, tx, "P", nil)
		if _, err := tx.CreateRel(a, 9999, "r", nil); !errors.Is(err, ErrNotFound) {
			t.Errorf("CreateRel to missing dst = %v, want ErrNotFound", err)
		}
		tx.Abort()
		tx2 := e.Begin()
		if _, err := tx2.CreateRel(9999, a, "r", nil); !errors.Is(err, ErrNotFound) {
			t.Errorf("CreateRel from missing src = %v, want ErrNotFound", err)
		}
		tx2.Abort()
	})
}

func TestOpsOnDeletedNode(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		id := mustCreateNode(t, setup, "P", nil)
		mustCommit(t, setup)
		del := e.Begin()
		if err := del.DeleteNode(id); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, del)

		tx := e.Begin()
		if err := tx.SetNodeProps(id, map[string]any{"x": int64(1)}); !errors.Is(err, ErrNotFound) {
			t.Errorf("SetNodeProps on deleted = %v, want ErrNotFound", err)
		}
		tx.Abort()
		tx2 := e.Begin()
		if err := tx2.DeleteNode(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete = %v, want ErrNotFound", err)
		}
		tx2.Abort()
	})
}

func TestDeleteInSameTxAsCreate(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		id := mustCreateNode(t, tx, "P", map[string]any{"v": int64(1)})
		if err := tx.DeleteNode(id); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.GetNode(id); err != ErrNotFound {
			t.Errorf("read of self-deleted node = %v", err)
		}
		mustCommit(t, tx)
		if got := e.NodeCount(); got != 0 {
			t.Errorf("node count = %d after create+delete+GC, want 0", got)
		}
	})
}

func TestUpdateThenDeleteSameTx(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		id := mustCreateNode(t, setup, "P", map[string]any{"v": int64(1)})
		mustCommit(t, setup)

		tx := e.Begin()
		if err := tx.SetNodeProps(id, map[string]any{"v": int64(2)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.DeleteNode(id); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		tx2 := e.Begin()
		defer tx2.Abort()
		if _, err := tx2.GetNode(id); err != ErrNotFound {
			t.Errorf("node visible after update+delete: %v", err)
		}
	})
}

func TestRelPropertyUpdate(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		a := mustCreateNode(t, setup, "P", nil)
		b := mustCreateNode(t, setup, "P", nil)
		r, _ := setup.CreateRel(a, b, "knows", map[string]any{"w": int64(1)})
		mustCommit(t, setup)

		tx := e.Begin()
		if err := tx.SetRelProps(r, map[string]any{"w": int64(2), "new": "x"}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)

		tx2 := e.Begin()
		defer tx2.Abort()
		snap, err := tx2.GetRel(r)
		if err != nil {
			t.Fatal(err)
		}
		props, _ := e.DecodeProps(snap.Props())
		if props["w"] != int64(2) || props["new"] != "x" {
			t.Errorf("rel props = %v", props)
		}
	})
}

func TestManyRelsBetweenSamePair(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		a := mustCreateNode(t, tx, "P", nil)
		b := mustCreateNode(t, tx, "P", nil)
		const n = 50
		for i := 0; i < n; i++ {
			if _, err := tx.CreateRel(a, b, fmt.Sprintf("r%d", i%5), map[string]any{"i": int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		mustCommit(t, tx)

		tx2 := e.Begin()
		defer tx2.Abort()
		snap, _ := tx2.GetNode(a)
		count := 0
		tx2.OutRels(snap, func(RelSnap) bool { count++; return true })
		if count != n {
			t.Errorf("out rels = %d, want %d", count, n)
		}
		// Label-filtered iteration through the engine's AOT iterator.
		code, _ := e.dict.Lookup("r2")
		it := tx2.NewOutRelIter(snap, uint32(code))
		filtered := 0
		for {
			ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			filtered++
		}
		if filtered != n/5 {
			t.Errorf("r2-labeled rels = %d, want %d", filtered, n/5)
		}
	})
}

func TestSlotReuseAfterDeleteCycle(t *testing.T) {
	// Create/delete cycles must reuse slots (DG5), not grow the table.
	e := newTestEngine(t, PMem)
	chunks := func() uint64 { return e.nodes.Chunks() }
	for round := 0; round < 5; round++ {
		tx := e.Begin()
		ids := make([]uint64, 100)
		for i := range ids {
			ids[i] = mustCreateNode(t, tx, "P", map[string]any{"r": int64(round)})
		}
		mustCommit(t, tx)
		del := e.Begin()
		for _, id := range ids {
			if err := del.DeleteNode(id); err != nil {
				t.Fatal(err)
			}
		}
		mustCommit(t, del)
		if e.NodeCount() != 0 {
			t.Fatalf("round %d: %d nodes left", round, e.NodeCount())
		}
	}
	// Per-shard placement can touch one chunk per shard, but cycles must
	// not grow the table beyond that steady state.
	if got, limit := chunks(), uint64(e.Shards()); got > limit {
		t.Errorf("node table grew to %d chunks across delete cycles, want <= %d (slot reuse)", got, limit)
	}
}

func TestEmptyLabelAndNilProps(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		id, err := tx.CreateNode("", nil)
		if err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		tx2 := e.Begin()
		defer tx2.Abort()
		snap, err := tx2.GetNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := snap.Props(); len(got) != 0 {
			t.Errorf("props = %v, want empty", got)
		}
		if label, _ := e.dict.Decode(uint64(snap.Rec.Label)); label != "" {
			t.Errorf("label = %q, want empty", label)
		}
	})
}

func TestUnsupportedPropertyType(t *testing.T) {
	e := newTestEngine(t, DRAM)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := tx.CreateNode("P", map[string]any{"bad": []int{1, 2}}); err == nil {
		t.Error("slice property accepted")
	}
}

func TestGetNodeOutOfRange(t *testing.T) {
	e := newTestEngine(t, DRAM)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := tx.GetNode(1 << 40); err != ErrNotFound {
		t.Errorf("out-of-range id = %v, want ErrNotFound", err)
	}
	if _, err := tx.GetRel(1 << 40); err != ErrNotFound {
		t.Errorf("out-of-range rel = %v, want ErrNotFound", err)
	}
}

func TestUseAfterEnd(t *testing.T) {
	e := newTestEngine(t, DRAM)
	tx := e.Begin()
	mustCommit(t, tx)
	if _, err := tx.CreateNode("P", nil); !errors.Is(err, ErrTxDone) {
		t.Errorf("CreateNode after commit = %v", err)
	}
	if _, err := tx.GetNode(0); !errors.Is(err, ErrTxDone) {
		t.Errorf("GetNode after commit = %v", err)
	}
	if err := tx.ScanNodes(func(NodeSnap) bool { return true }); !errors.Is(err, ErrTxDone) {
		t.Errorf("ScanNodes after commit = %v", err)
	}
}
