package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
	"poseidon/internal/trace"
)

// --- shard lock ordering ---
//
// Every code path that needs more than one shard commit lock MUST acquire
// them through lockShards (or lockAllShards), which takes the locks in
// ascending shard order. Shard locks nest outside the pool/lane mutexes
// and the table mutex; nothing that holds a pool transaction may wait on
// a shard commit lock. poseidonlint's lockorder pass enforces that no
// other function takes two shard commit locks directly.

// lockShards acquires the commit locks of the given shards, which must be
// sorted in ascending order. Contention is charged to each shard's
// lock-wait gauge and, when a commit span is supplied, attributed to the
// individual shard on the span (sp may be nil).
func (e *Engine) lockShards(order []int, sp *trace.Span) {
	for _, s := range order {
		sh := &e.shards[s]
		// TryLock first: the uncontended fast path pays no clock reads,
		// and the failure count is a scheduling-independent contention
		// measure (unlike wait time, which conflates lock contention
		// with CPU scarcity on oversubscribed hosts).
		if sh.commitMu.TryLock() {
			continue
		}
		sh.lockContended.Add(1)
		start := time.Now()
		sh.commitMu.Lock()
		if w := time.Since(start); w > 0 {
			sh.lockWaitNs.Add(uint64(w.Nanoseconds()))
			if sp != nil {
				sp.SetAttr(fmt.Sprintf("lock_wait_shard%d_ns", s), w.Nanoseconds())
			}
		}
	}
}

// unlockShards releases the commit locks in reverse acquisition order.
func (e *Engine) unlockShards(order []int) {
	for i := len(order) - 1; i >= 0; i-- {
		e.shards[order[i]].commitMu.Unlock()
	}
}

// lockAllShards takes every shard commit lock (ascending); used by
// physical GC, whose adjacency rewrites touch records in arbitrary
// shards, and by online index creation's quiesce step.
func (e *Engine) lockAllShards()   { e.lockShards(e.allShards, nil) }
func (e *Engine) unlockAllShards() { e.unlockShards(e.allShards) }

// commitShards returns the sorted set of shards whose commit locks this
// transaction needs: the shard of every dirty object, plus the shards of
// the property records an update will free. Old property chains are
// normally co-sharded with their owner, but a reopen with a different
// shard count repartitions chunk ownership, so the chain is walked
// rather than assumed.
func (tx *Tx) commitShards() []int {
	e := tx.e
	set := make(map[int]struct{}, 2)
	for _, key := range tx.order {
		d := tx.dirty[key]
		set[e.shardOf(key)] = struct{}{}
		if d.hasOld && d.propsChanged && !d.isDelete {
			oldHead := d.oldNode.Props
			if key.kind == kindRel {
				oldHead = d.oldRel.Props
			}
			e.addPropChainShards(oldHead, set)
		}
	}
	order := make([]int, 0, len(set))
	for s := range set {
		order = append(order, s)
	}
	sort.Ints(order)
	return order
}

// addPropChainShards adds the shard of every record in the property chain
// starting at head to set. The chain structure is committed state and the
// caller's objects are write-locked, so the walk is stable.
func (e *Engine) addPropChainShards(head uint64, set map[int]struct{}) {
	for id := head; id != storage.NilID; {
		off, ok := e.props.RecordOffset(id)
		if !ok {
			return
		}
		set[e.props.ShardOf(id)] = struct{}{}
		id = e.dev.ReadU64(off + storage.PNext)
	}
}

// propNeeds returns, per shard, the number of property records the commit
// will insert — the capacity to reserve before retrying after
// ErrShardFull.
func (tx *Tx) propNeeds() map[int]int {
	needs := make(map[int]int)
	for _, key := range tx.order {
		d := tx.dirty[key]
		if d.isDelete || !d.propsChanged || len(d.ver.props) == 0 {
			continue
		}
		s := tx.e.shardOf(key)
		needs[s] += (len(d.ver.props) + storage.PItemsMax - 1) / storage.PItemsMax
	}
	return needs
}

// Commit persists the transaction (§5.1 Commit):
//
//  1. Superseded committed versions are pushed into the DRAM version
//     chains so older readers keep a consistent view after the PMem
//     records are overwritten.
//  2. All record rewrites, property-chain writes and slot releases run in
//     a single pmemobj undo-log transaction, so the whole commit is
//     failure-atomic (DG4; the paper's PMDK-based approach).
//  3. Records are unlocked with single 8-byte stores after the commit
//     point; a crash in between leaves stale locks that recovery clears.
//  4. Secondary indexes are updated and transaction-level GC runs.
//
// Sharding: only the commit locks of the shards the transaction touched
// are taken (ascending, via lockShards), and the undo log is the lane of
// the lowest involved shard. Because every persistent range written here
// belongs to a held shard, concurrent commits on disjoint shards write
// disjoint ranges into distinct lanes, and crash rollback of the lanes is
// order-independent. Commit order within a shard is serialized by its
// lock; cross-shard transactions serialize with every involved shard.
// Serializability does not depend on the lock scope — MVTO's timestamp
// protocol provides it — so the global commit watermark (the clock)
// needs no extra publication step.
func (tx *Tx) Commit() error {
	tx.endMu.Lock()
	defer tx.endMu.Unlock()
	if tx.done.Load() {
		return ErrTxDone
	}
	// A cancelled context turns Commit into a rollback: nothing of the
	// transaction becomes visible.
	if err := tx.ctxErr(); err != nil {
		tx.setAbortReason(AbortCancelled)
		_ = tx.abortLocked()
		return err
	}
	if len(tx.order) == 0 {
		tx.e.tel.TxCommits.Inc()
		tx.finish()
		return nil
	}
	shardOrder := tx.commitShards()
	// Single-shard transactions join their shard's commit epoch when
	// group commit is on; cross-shard ones (including old property
	// chains that straddle shards after a shard-count change) always
	// take the per-transaction path below.
	if tx.e.cfg.GroupCommit.Enabled && len(shardOrder) == 1 {
		return tx.commitGrouped(shardOrder[0])
	}
	return tx.commitLocked(shardOrder)
}

// commitLocked is the per-transaction commit path (steps 1-4 above).
// Caller holds tx.endMu and has verified the transaction is live and
// has writes.
func (tx *Tx) commitLocked(shardOrder []int) error {
	e := tx.e
	// Request tracing: Session.Exec (and the server's explicit COMMIT
	// path) attach their span to the transaction's context; with tracing
	// off the handles are nil and every span call below no-ops.
	cspan := trace.FromContext(tx.Context()).Child("core.commit", trace.KindCommit)
	cspan.SetAttr("shards", int64(len(shardOrder)))
	cspan.SetAttr("writes", int64(len(tx.order)))
	if len(shardOrder) > 1 {
		cspan.SetAttr("cross_shard", true)
	}
	e.lockShards(shardOrder, cspan)
	locked := true
	defer func() {
		if locked {
			e.unlockShards(shardOrder)
		}
	}()
	lane := e.shards[shardOrder[0]].lane

	// Step 1: preserve old versions for updates (deletes keep serving old
	// readers from the PMem record itself, whose window just gets closed).
	var pushed []struct {
		c *chain
		v *version
	}
	for _, key := range tx.order {
		d := tx.dirty[key]
		if !d.hasOld || d.isDelete {
			continue
		}
		var v *version
		if d.key.kind == kindNode {
			old := d.oldNode
			v = &version{bts: old.Bts, ets: tx.id, node: &old, props: d.oldProps}
		} else {
			old := d.oldRel
			v = &version{bts: old.Bts, ets: tx.id, rel: &old, props: d.oldProps}
		}
		c := tx.chainsForKey(d.key).getOrCreate(d.key.id)
		c.push(v)
		pushed = append(pushed, struct {
			c *chain
			v *version
		}{c, v})
	}

	// Step 2: the failure-atomic persist, on the shard lane. A shard that
	// runs out of property-record slots rolls the lane back; capacity is
	// reserved outside every commit lock (chunk appends mutate global
	// allocator state) and the persist retried.
	var psp *trace.Span
	var preDev pmem.StatsSnapshot
	if cspan != nil {
		//poseidonlint:ignore lifecycle psp exists iff cspan != nil; both exit paths End it inside the same nil guard
		psp = cspan.Child("pmem.persist", trace.KindPMem)
		preDev = e.dev.Stats.Snapshot()
	}
	var err error
	for {
		err = e.pool.RunTxLane(lane, func(ptx *pmemobj.Tx) error {
			for _, key := range tx.order {
				if err := tx.applyDirty(ptx, tx.dirty[key]); err != nil {
					return err
				}
			}
			return nil
		})
		if !errors.Is(err, storage.ErrShardFull) {
			break
		}
		e.unlockShards(shardOrder)
		locked = false
		var rerr error
		for s, n := range tx.propNeeds() {
			if ferr := e.props.EnsureShardFreeN(s, n); ferr != nil {
				rerr = ferr
				break
			}
		}
		if rerr != nil {
			err = rerr
			break
		}
		psp.SetAttr("shard_full_retries", int64(1))
		e.lockShards(shardOrder, cspan)
		locked = true
	}
	if err != nil {
		// The lane transaction rolled back all persistent changes; the
		// volatile free lists may hold stale hints, which inserts prune
		// against the bitmaps. Undo the version pushes and abort fully —
		// after releasing the shard locks, because the abort re-acquires
		// them to release inserted slots.
		for _, p := range pushed {
			p.c.remove(p.v)
		}
		if locked {
			e.unlockShards(shardOrder)
			locked = false
		}
		tx.setAbortReason(AbortCommitFailed)
		_ = tx.abortLocked()
		err = fmt.Errorf("core: commit failed: %w", err)
		psp.SetError(err)
		psp.End()
		cspan.SetError(err)
		cspan.End()
		return err
	}

	// Step 3: release the write locks. The commit point has passed; these
	// are plain failure-atomic 8-byte stores.
	for _, key := range tx.order {
		d := tx.dirty[key]
		off := tx.recordOffset(d.key)
		e.dev.WriteU64(off, 0) // txn-id is field 0 of both record types
		e.dev.Flush(off, 8)
	}
	e.dev.Drain()
	if psp != nil {
		// The device delta over-attributes under concurrency (commits on
		// other shards share the device); it is a locality signal, not an
		// exact charge.
		d := e.dev.Stats.Snapshot().Sub(preDev)
		psp.SetAttr("line_flushes", int64(d.LineFlushes))
		psp.SetAttr("block_writes", int64(d.BlockWrites))
		psp.SetAttr("drains", int64(d.Drains))
		psp.End()
	}

	// The dirty versions are now redundant: the PMem records carry the
	// committed state. Deleted objects keep a committed tombstone version
	// out of the chain too — the PMem record serves old readers.
	for _, key := range tx.order {
		d := tx.dirty[key]
		tx.chainsForKey(d.key).getOrCreate(d.key.id).remove(d.ver)
	}

	// Step 4: secondary index maintenance (still under the shard locks, so
	// per-shard index updates observe commit order) and GC bookkeeping.
	tx.updateIndexes()
	e.publishIndexDeltas(shardOrder)
	tx.enqueueGC()
	for _, s := range shardOrder {
		e.shards[s].commits.Add(1)
	}
	if len(shardOrder) > 1 {
		e.crossCommits.Add(1)
	}
	e.unlockShards(shardOrder)
	locked = false
	e.tel.TxCommits.Inc()
	tx.finish()
	cspan.End()
	return nil
}

func (tx *Tx) chainsForKey(key objKey) *chainTable {
	if key.kind == kindNode {
		return tx.e.nodeChainsOf(key.id)
	}
	return tx.e.relChainsOf(key.id)
}

func (tx *Tx) tableFor(k objKind) *storage.Table {
	if k == kindNode {
		return tx.e.nodes
	}
	return tx.e.rels
}

func (tx *Tx) recordOffset(key objKey) uint64 {
	off, ok := tx.tableFor(key.kind).RecordOffset(key.id)
	if !ok {
		panic(fmt.Sprintf("core: dirty %v %d has no record", key.kind, key.id))
	}
	return off
}

// applyDirty writes one dirty object into PMem within the commit
// transaction. The record's txn-id word keeps the lock until after the
// commit point. New property records are constrained to the dirty
// object's shard so the commit lane only ever covers held shards.
func (tx *Tx) applyDirty(ptx *pmemobj.Tx, d *dirtyObj) error {
	e := tx.e
	off := tx.recordOffset(d.key)
	recSize := storage.NodeRecordSize
	if d.key.kind == kindRel {
		recSize = storage.RelRecordSize
	}
	if err := ptx.Snapshot(off, uint64(recSize)); err != nil {
		return err
	}

	switch {
	case d.isDelete:
		// Close the validity window; content and properties stay for old
		// readers until GC reclaims the slot.
		if d.key.kind == kindNode {
			e.dev.WriteU64(off+storage.NEts, tx.id)
			flags := e.dev.ReadU32(off + storage.NFlags)
			e.dev.WriteU32(off+storage.NFlags, flags|storage.FlagTombstone)
		} else {
			e.dev.WriteU64(off+storage.REts, tx.id)
			flags := e.dev.ReadU32(off + storage.RFlags)
			e.dev.WriteU32(off+storage.RFlags, flags|storage.FlagTombstone)
		}
		return nil

	default:
		// Insert or update: replace the record content and, if they
		// changed, the properties. Adjacency-only updates keep the
		// committed property chain (DG1).
		var head uint64
		if d.propsChanged {
			if d.hasOld {
				var oldHead uint64
				if d.key.kind == kindNode {
					oldHead = d.oldNode.Props
				} else {
					oldHead = d.oldRel.Props
				}
				if err := storage.FreePropChainTx(ptx, e.props, oldHead); err != nil {
					return err
				}
			}
			var err error
			head, err = storage.WritePropChainShardTx(ptx, e.props, d.key.id, d.ver.props, e.shardOf(d.key))
			if err != nil {
				return err
			}
		} else if d.key.kind == kindNode {
			head = d.oldNode.Props
		} else {
			head = d.oldRel.Props
		}
		if d.key.kind == kindNode {
			rec := *d.ver.node
			rec.TxnID = tx.id // still locked until step 3
			rec.Bts = tx.id
			rec.Ets = Infinity
			rec.Props = head
			storage.WriteNodeRec(e.dev, off, &rec)
		} else {
			rec := *d.ver.rel
			rec.TxnID = tx.id
			rec.Bts = tx.id
			rec.Ets = Infinity
			rec.Props = head
			storage.WriteRelRec(e.dev, off, &rec)
		}
		return nil
	}
}

// Abort rolls the transaction back (§5.1): dirty versions are discarded,
// write locks released, and slots of uncommitted inserts reclaimed.
func (tx *Tx) Abort() error {
	tx.endMu.Lock()
	defer tx.endMu.Unlock()
	return tx.abortLocked()
}

func (tx *Tx) abortLocked() error {
	if tx.done.Load() {
		return ErrTxDone
	}
	e := tx.e
	// Count the abort once, with its first-recorded classification. A
	// reasonless rollback of a read-only transaction is normal query
	// cleanup, not an abort.
	if r := tx.abortReason.Load(); r != 0 {
		e.tel.TxAborts[AbortReason(r-1)].Inc()
	} else if len(tx.order) > 0 {
		e.tel.TxAborts[AbortExplicit].Inc()
	}
	for i := len(tx.order) - 1; i >= 0; i-- {
		d := tx.dirty[tx.order[i]]
		tx.chainsForKey(d.key).getOrCreate(d.key.id).remove(d.ver)
		if d.isInsert {
			// The slot was persistently allocated at operation time; give
			// it back on its shard's lane, under the shard's commit lock,
			// so the release cannot overlap a concurrent commit's undo
			// log. Readers always saw the record locked, so nobody can
			// hold a reference.
			s := e.shardOf(d.key)
			sh := &e.shards[s]
			tbl := tx.tableFor(d.key.kind)
			sh.commitMu.Lock()
			err := e.pool.RunTxLane(sh.lane, func(ptx *pmemobj.Tx) error {
				return tbl.ReleaseTx(ptx, d.key.id)
			})
			sh.commitMu.Unlock()
			if err != nil {
				return fmt.Errorf("core: abort: release %v %d: %w", d.key.kind, d.key.id, err)
			}
			tx.chainsForKey(d.key).drop(d.key.id)
			continue
		}
		off := tx.recordOffset(d.key)
		e.dev.WriteU64(off, 0)
		e.dev.Persist(off, 8)
	}
	tx.finish()
	return nil
}

// --- secondary index maintenance ---

// updateIndexes applies the committed changes to every matching
// (label, property) index. Runs under the commit locks of the involved
// shards; a node's entries live in its own shard's trees, so each update
// only touches held shards.
func (tx *Tx) updateIndexes() {
	e := tx.e
	for _, key := range tx.order {
		d := tx.dirty[key]
		if d.key.kind != kindNode {
			continue
		}
		if !d.propsChanged && !d.isDelete && d.hasOld && d.oldNode.Label == d.ver.node.Label {
			continue // adjacency-only update: index entries unchanged
		}
		sh := &e.shards[e.shardOf(d.key)]
		sh.idxMu.RLock()
		if len(sh.indexes) == 0 {
			sh.idxMu.RUnlock()
			continue
		}
		// Deleted nodes keep their index entries until GC reclaims the
		// slot: older snapshots may still reach them through the index,
		// and newer readers re-validate against their snapshot anyway.
		if d.hasOld && !d.isDelete {
			for _, p := range d.oldProps {
				if t := sh.indexes[indexKey{d.oldNode.Label, p.Key}]; t != nil {
					t.Delete(p.Val, d.key.id)
				}
			}
		}
		if !d.isDelete {
			for _, p := range d.ver.props {
				if t := sh.indexes[indexKey{d.ver.node.Label, p.Key}]; t != nil {
					if err := t.Insert(p.Val, d.key.id); err != nil {
						// Index degradation is survivable: it is a secondary
						// structure; queries fall back to scans if dropped.
						continue
					}
				}
			}
		}
		sh.idxMu.RUnlock()
	}
}

// --- transaction-level garbage collection (§5.3) ---

// enqueueGC records the committed deletions for later physical
// reclamation, each on its own shard's queue.
func (tx *Tx) enqueueGC() {
	e := tx.e
	for _, key := range tx.order {
		d := tx.dirty[key]
		if !d.isDelete {
			continue
		}
		sh := &e.shards[e.shardOf(d.key)]
		sh.gcMu.Lock()
		sh.gcQueue = append(sh.gcQueue, d.key)
		sh.gcMu.Unlock()
	}
}

// runGC reclaims storage at transaction-level granularity. Version chains
// are pruned against the oldest active timestamp on every transaction
// end; physical slot reclamation (bitmap-free, DG5) runs only in
// quiescent moments, when no transaction can be traversing the records,
// and under every shard's commit lock, because unlinking a relationship
// rewrites next-pointers of records in arbitrary shards.
func (e *Engine) runGC(quiescent bool) {
	// Fast path: nothing to collect (read-only steady state).
	hasChains, hasQueue := false, false
	for i := range e.shards {
		sh := &e.shards[i]
		if sh.nodeChains.live.Load() > 0 || sh.relChains.live.Load() > 0 {
			hasChains = true
		}
		sh.gcMu.Lock()
		if len(sh.gcQueue) > 0 {
			hasQueue = true
		}
		sh.gcMu.Unlock()
	}
	if !hasChains && !hasQueue {
		return
	}
	minActive := e.minActive()
	if hasChains {
		for i := range e.shards {
			e.pruneChains(e.shards[i].nodeChains, minActive)
			e.pruneChains(e.shards[i].relChains, minActive)
		}
	}
	if !quiescent {
		return
	}
	var queue []objKey
	for i := range e.shards {
		sh := &e.shards[i]
		sh.gcMu.Lock()
		queue = append(queue, sh.gcQueue...)
		sh.gcQueue = nil
		sh.gcMu.Unlock()
	}
	if len(queue) == 0 {
		return
	}
	e.lockAllShards()
	defer e.unlockAllShards()
	// Relationships first, then nodes, so unlinking still finds the
	// endpoint records in place.
	for _, key := range queue {
		if key.kind == kindRel {
			e.reclaimRel(key.id)
		}
	}
	for _, key := range queue {
		if key.kind == kindNode {
			e.reclaimNode(key.id)
		}
	}
}

func (e *Engine) pruneChains(t *chainTable, minActive uint64) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for id, c := range s.m {
			if c.prune(minActive) == 0 {
				delete(s.m, id)
				t.live.Add(-1)
			}
		}
		s.mu.Unlock()
	}
}

// reclaimRel physically unlinks a tombstoned relationship from both
// adjacency lists and releases its slot and property records. Caller
// holds every shard commit lock, so the built-in undo log cannot overlap
// any lane.
//
//poseidonlint:ignore seqlock caller holds every shard commitMu (reclaim runs inside lockAllShards), so no writer can race these reads
func (e *Engine) reclaimRel(id uint64) {
	off, ok := e.rels.RecordOffset(id)
	if !ok || !e.rels.Occupied(id) {
		return
	}
	rec := storage.ReadRelRec(e.dev, off)
	if rec.Flags&storage.FlagTombstone == 0 {
		return
	}
	e.unlinkRel(id, rec.Src, rec.NextSrc, true)
	e.unlinkRel(id, rec.Dst, rec.NextDst, false)
	err := e.pool.RunTx(func(ptx *pmemobj.Tx) error {
		if err := storage.FreePropChainTx(ptx, e.props, rec.Props); err != nil {
			return err
		}
		return e.rels.ReleaseTx(ptx, id)
	})
	if err != nil {
		e.rels.ResyncVolatile()
		e.props.ResyncVolatile()
		return
	}
	e.relRTSOf(id).forget(id)
	e.relChainsOf(id).drop(id)
}

// unlinkRel removes relationship id from one adjacency list of node n.
// The rewritten next-pointers are plain 8-byte failure-atomic stores:
// every intermediate state yields the same visible relationship set.
func (e *Engine) unlinkRel(id, nodeID, next uint64, out bool) {
	nodeOff, ok := e.nodes.RecordOffset(nodeID)
	if !ok || !e.nodes.Occupied(nodeID) {
		return
	}
	headField := nodeOff + storage.NOut
	nextField := uint64(storage.RNextSrc)
	if !out {
		headField = nodeOff + storage.NIn
		nextField = storage.RNextDst
	}
	cur := e.dev.ReadU64(headField)
	if cur == id {
		e.dev.WriteU64(headField, next)
		e.dev.Persist(headField, 8)
		return
	}
	for cur != storage.NilID {
		curOff, ok := e.rels.RecordOffset(cur)
		if !ok || !e.rels.Occupied(cur) {
			return
		}
		n := e.dev.ReadU64(curOff + nextField)
		if n == id {
			e.dev.WriteU64(curOff+nextField, next)
			e.dev.Persist(curOff+nextField, 8)
			return
		}
		cur = n
	}
}

// reclaimNode releases a tombstoned node's slot and property records,
// and drops the node's (deferred) secondary-index entries. Caller holds
// every shard commit lock.
//
//poseidonlint:ignore seqlock caller holds every shard commitMu (reclaim runs inside lockAllShards), so no writer can race these reads
func (e *Engine) reclaimNode(id uint64) {
	off, ok := e.nodes.RecordOffset(id)
	if !ok || !e.nodes.Occupied(id) {
		return
	}
	rec := storage.ReadNodeRec(e.dev, off)
	if rec.Flags&storage.FlagTombstone == 0 {
		return
	}
	sh := &e.shards[e.nodes.ShardOf(id)]
	sh.idxMu.RLock()
	if len(sh.indexes) > 0 {
		for _, p := range storage.ReadPropChain(e.props, rec.Props) {
			if t := sh.indexes[indexKey{rec.Label, p.Key}]; t != nil {
				t.Delete(p.Val, id)
			}
		}
	}
	sh.idxMu.RUnlock()
	err := e.pool.RunTx(func(ptx *pmemobj.Tx) error {
		if err := storage.FreePropChainTx(ptx, e.props, rec.Props); err != nil {
			return err
		}
		return e.nodes.ReleaseTx(ptx, id)
	})
	if err != nil {
		e.nodes.ResyncVolatile()
		e.props.ResyncVolatile()
		return
	}
	e.nodeRTSOf(id).forget(id)
	e.nodeChainsOf(id).drop(id)
}
