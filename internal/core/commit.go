package core

import (
	"fmt"

	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// Commit persists the transaction (§5.1 Commit):
//
//  1. Superseded committed versions are pushed into the DRAM version
//     chains so older readers keep a consistent view after the PMem
//     records are overwritten.
//  2. All record rewrites, property-chain writes and slot releases run in
//     a single pmemobj undo-log transaction, so the whole commit is
//     failure-atomic (DG4; the paper's PMDK-based approach).
//  3. Records are unlocked with single 8-byte stores after the commit
//     point; a crash in between leaves stale locks that recovery clears.
//  4. Secondary indexes are updated and transaction-level GC runs.
func (tx *Tx) Commit() error {
	tx.endMu.Lock()
	defer tx.endMu.Unlock()
	if tx.done.Load() {
		return ErrTxDone
	}
	// A cancelled context turns Commit into a rollback: nothing of the
	// transaction becomes visible.
	if err := tx.ctxErr(); err != nil {
		tx.setAbortReason(AbortCancelled)
		_ = tx.abortLocked()
		return err
	}
	if len(tx.order) == 0 {
		tx.e.tel.TxCommits.Inc()
		tx.finish()
		return nil
	}
	e := tx.e
	e.commitMu.Lock()
	defer e.commitMu.Unlock()

	// Step 1: preserve old versions for updates (deletes keep serving old
	// readers from the PMem record itself, whose window just gets closed).
	var pushed []struct {
		c *chain
		v *version
	}
	for _, key := range tx.order {
		d := tx.dirty[key]
		if !d.hasOld || d.isDelete {
			continue
		}
		var v *version
		if d.key.kind == kindNode {
			old := d.oldNode
			v = &version{bts: old.Bts, ets: tx.id, node: &old, props: d.oldProps}
		} else {
			old := d.oldRel
			v = &version{bts: old.Bts, ets: tx.id, rel: &old, props: d.oldProps}
		}
		c := tx.chainsFor(d.key.kind).getOrCreate(d.key.id)
		c.push(v)
		pushed = append(pushed, struct {
			c *chain
			v *version
		}{c, v})
	}

	err := e.pool.RunTx(func(ptx *pmemobj.Tx) error {
		for _, key := range tx.order {
			if err := tx.applyDirty(ptx, tx.dirty[key]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		// The pool transaction rolled back all persistent changes; undo
		// the version pushes and abort fully.
		for _, p := range pushed {
			p.c.remove(p.v)
		}
		e.nodes.ResyncVolatile()
		e.rels.ResyncVolatile()
		e.props.ResyncVolatile()
		tx.setAbortReason(AbortCommitFailed)
		_ = tx.abortLocked()
		return fmt.Errorf("core: commit failed: %w", err)
	}

	// Step 3: release the write locks. The commit point has passed; these
	// are plain failure-atomic 8-byte stores.
	for _, key := range tx.order {
		d := tx.dirty[key]
		off := tx.recordOffset(d.key)
		e.dev.WriteU64(off, 0) // txn-id is field 0 of both record types
		e.dev.Flush(off, 8)
	}
	e.dev.Drain()

	// The dirty versions are now redundant: the PMem records carry the
	// committed state. Deleted objects keep a committed tombstone version
	// out of the chain too — the PMem record serves old readers.
	for _, key := range tx.order {
		d := tx.dirty[key]
		tx.chainsFor(d.key.kind).getOrCreate(d.key.id).remove(d.ver)
	}

	// Step 4: secondary index maintenance and GC.
	tx.updateIndexes()
	tx.enqueueGC()
	e.tel.TxCommits.Inc()
	tx.finish()
	return nil
}

func (tx *Tx) chainsFor(k objKind) *chainTable {
	if k == kindNode {
		return tx.e.nodeChains
	}
	return tx.e.relChains
}

func (tx *Tx) tableFor(k objKind) *storage.Table {
	if k == kindNode {
		return tx.e.nodes
	}
	return tx.e.rels
}

func (tx *Tx) recordOffset(key objKey) uint64 {
	off, ok := tx.tableFor(key.kind).RecordOffset(key.id)
	if !ok {
		panic(fmt.Sprintf("core: dirty %v %d has no record", key.kind, key.id))
	}
	return off
}

// applyDirty writes one dirty object into PMem within the commit
// transaction. The record's txn-id word keeps the lock until after the
// commit point.
func (tx *Tx) applyDirty(ptx *pmemobj.Tx, d *dirtyObj) error {
	e := tx.e
	off := tx.recordOffset(d.key)
	recSize := storage.NodeRecordSize
	if d.key.kind == kindRel {
		recSize = storage.RelRecordSize
	}
	if err := ptx.Snapshot(off, uint64(recSize)); err != nil {
		return err
	}

	switch {
	case d.isDelete:
		// Close the validity window; content and properties stay for old
		// readers until GC reclaims the slot.
		if d.key.kind == kindNode {
			e.dev.WriteU64(off+storage.NEts, tx.id)
			flags := e.dev.ReadU32(off + storage.NFlags)
			e.dev.WriteU32(off+storage.NFlags, flags|storage.FlagTombstone)
		} else {
			e.dev.WriteU64(off+storage.REts, tx.id)
			flags := e.dev.ReadU32(off + storage.RFlags)
			e.dev.WriteU32(off+storage.RFlags, flags|storage.FlagTombstone)
		}
		return nil

	default:
		// Insert or update: replace the record content and, if they
		// changed, the properties. Adjacency-only updates keep the
		// committed property chain (DG1).
		var head uint64
		if d.propsChanged {
			if d.hasOld {
				var oldHead uint64
				if d.key.kind == kindNode {
					oldHead = d.oldNode.Props
				} else {
					oldHead = d.oldRel.Props
				}
				if err := storage.FreePropChainTx(ptx, e.props, oldHead); err != nil {
					return err
				}
			}
			var err error
			head, err = storage.WritePropChainTx(ptx, e.props, d.key.id, d.ver.props)
			if err != nil {
				return err
			}
		} else if d.key.kind == kindNode {
			head = d.oldNode.Props
		} else {
			head = d.oldRel.Props
		}
		if d.key.kind == kindNode {
			rec := *d.ver.node
			rec.TxnID = tx.id // still locked until step 3
			rec.Bts = tx.id
			rec.Ets = Infinity
			rec.Props = head
			storage.WriteNodeRec(e.dev, off, &rec)
		} else {
			rec := *d.ver.rel
			rec.TxnID = tx.id
			rec.Bts = tx.id
			rec.Ets = Infinity
			rec.Props = head
			storage.WriteRelRec(e.dev, off, &rec)
		}
		return nil
	}
}

// Abort rolls the transaction back (§5.1): dirty versions are discarded,
// write locks released, and slots of uncommitted inserts reclaimed.
func (tx *Tx) Abort() error {
	tx.endMu.Lock()
	defer tx.endMu.Unlock()
	return tx.abortLocked()
}

func (tx *Tx) abortLocked() error {
	if tx.done.Load() {
		return ErrTxDone
	}
	e := tx.e
	// Count the abort once, with its first-recorded classification. A
	// reasonless rollback of a read-only transaction is normal query
	// cleanup, not an abort.
	if r := tx.abortReason.Load(); r != 0 {
		e.tel.TxAborts[AbortReason(r-1)].Inc()
	} else if len(tx.order) > 0 {
		e.tel.TxAborts[AbortExplicit].Inc()
	}
	for i := len(tx.order) - 1; i >= 0; i-- {
		d := tx.dirty[tx.order[i]]
		tx.chainsFor(d.key.kind).getOrCreate(d.key.id).remove(d.ver)
		if d.isInsert {
			// The slot was persistently allocated at operation time; give
			// it back. Readers always saw it locked, so nobody can hold a
			// reference.
			if err := tx.tableFor(d.key.kind).Release(d.key.id); err != nil {
				return fmt.Errorf("core: abort: release %v %d: %w", d.key.kind, d.key.id, err)
			}
			tx.chainsFor(d.key.kind).drop(d.key.id)
			continue
		}
		off := tx.recordOffset(d.key)
		e.dev.WriteU64(off, 0)
		e.dev.Persist(off, 8)
	}
	tx.finish()
	return nil
}

// --- secondary index maintenance ---

// updateIndexes applies the committed changes to every matching
// (label, property) index.
func (tx *Tx) updateIndexes() {
	e := tx.e
	e.idxMu.RLock()
	defer e.idxMu.RUnlock()
	if len(e.indexes) == 0 {
		return
	}
	for _, key := range tx.order {
		d := tx.dirty[key]
		if d.key.kind != kindNode {
			continue
		}
		if !d.propsChanged && !d.isDelete && d.hasOld && d.oldNode.Label == d.ver.node.Label {
			continue // adjacency-only update: index entries unchanged
		}
		// Deleted nodes keep their index entries until GC reclaims the
		// slot: older snapshots may still reach them through the index,
		// and newer readers re-validate against their snapshot anyway.
		if d.hasOld && !d.isDelete {
			for _, p := range d.oldProps {
				if t := e.indexes[indexKey{d.oldNode.Label, p.Key}]; t != nil {
					t.Delete(p.Val, d.key.id)
				}
			}
		}
		if !d.isDelete {
			for _, p := range d.ver.props {
				if t := e.indexes[indexKey{d.ver.node.Label, p.Key}]; t != nil {
					if err := t.Insert(p.Val, d.key.id); err != nil {
						// Index degradation is survivable: it is a secondary
						// structure; queries fall back to scans if dropped.
						continue
					}
				}
			}
		}
	}
}

// --- transaction-level garbage collection (§5.3) ---

// enqueueGC records the committed deletions for later physical
// reclamation: relationships first, then nodes, so unlinking still finds
// the endpoint records in place.
func (tx *Tx) enqueueGC() {
	e := tx.e
	e.gcMu.Lock()
	for _, key := range tx.order {
		d := tx.dirty[key]
		if d.isDelete && d.key.kind == kindRel {
			e.gcQueue = append(e.gcQueue, d.key)
		}
	}
	for _, key := range tx.order {
		d := tx.dirty[key]
		if d.isDelete && d.key.kind == kindNode {
			e.gcQueue = append(e.gcQueue, d.key)
		}
	}
	e.gcMu.Unlock()
}

// runGC reclaims storage at transaction-level granularity. Version chains
// are pruned against the oldest active timestamp on every transaction
// end; physical slot reclamation (bitmap-free, DG5) runs only in
// quiescent moments, when no transaction can be traversing the records.
func (e *Engine) runGC(quiescent bool) {
	// Fast path: nothing to collect (read-only steady state).
	hasChains := e.nodeChains.live.Load() > 0 || e.relChains.live.Load() > 0
	e.gcMu.Lock()
	hasQueue := len(e.gcQueue) > 0
	e.gcMu.Unlock()
	if !hasChains && !hasQueue {
		return
	}
	minActive := e.minActive()
	if hasChains {
		e.pruneChains(e.nodeChains, minActive)
		e.pruneChains(e.relChains, minActive)
	}
	if !quiescent {
		return
	}
	e.gcMu.Lock()
	queue := e.gcQueue
	e.gcQueue = nil
	e.gcMu.Unlock()
	for _, key := range queue {
		if key.kind == kindRel {
			e.reclaimRel(key.id)
		} else {
			e.reclaimNode(key.id)
		}
	}
}

func (e *Engine) pruneChains(t *chainTable, minActive uint64) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for id, c := range s.m {
			if c.prune(minActive) == 0 {
				delete(s.m, id)
				t.live.Add(-1)
			}
		}
		s.mu.Unlock()
	}
}

// reclaimRel physically unlinks a tombstoned relationship from both
// adjacency lists and releases its slot and property records.
func (e *Engine) reclaimRel(id uint64) {
	off, ok := e.rels.RecordOffset(id)
	if !ok || !e.rels.Occupied(id) {
		return
	}
	rec := storage.ReadRelRec(e.dev, off)
	if rec.Flags&storage.FlagTombstone == 0 {
		return
	}
	e.unlinkRel(id, rec.Src, rec.NextSrc, true)
	e.unlinkRel(id, rec.Dst, rec.NextDst, false)
	err := e.pool.RunTx(func(ptx *pmemobj.Tx) error {
		if err := storage.FreePropChainTx(ptx, e.props, rec.Props); err != nil {
			return err
		}
		return e.rels.ReleaseTx(ptx, id)
	})
	if err != nil {
		e.rels.ResyncVolatile()
		e.props.ResyncVolatile()
		return
	}
	e.relRTS.forget(id)
	e.relChains.drop(id)
}

// unlinkRel removes relationship id from one adjacency list of node n.
// The rewritten next-pointers are plain 8-byte failure-atomic stores:
// every intermediate state yields the same visible relationship set.
func (e *Engine) unlinkRel(id, nodeID, next uint64, out bool) {
	nodeOff, ok := e.nodes.RecordOffset(nodeID)
	if !ok || !e.nodes.Occupied(nodeID) {
		return
	}
	headField := nodeOff + storage.NOut
	nextField := uint64(storage.RNextSrc)
	if !out {
		headField = nodeOff + storage.NIn
		nextField = storage.RNextDst
	}
	cur := e.dev.ReadU64(headField)
	if cur == id {
		e.dev.WriteU64(headField, next)
		e.dev.Persist(headField, 8)
		return
	}
	for cur != storage.NilID {
		curOff, ok := e.rels.RecordOffset(cur)
		if !ok || !e.rels.Occupied(cur) {
			return
		}
		n := e.dev.ReadU64(curOff + nextField)
		if n == id {
			e.dev.WriteU64(curOff+nextField, next)
			e.dev.Persist(curOff+nextField, 8)
			return
		}
		cur = n
	}
}

// reclaimNode releases a tombstoned node's slot and property records,
// and drops the node's (deferred) secondary-index entries.
func (e *Engine) reclaimNode(id uint64) {
	off, ok := e.nodes.RecordOffset(id)
	if !ok || !e.nodes.Occupied(id) {
		return
	}
	rec := storage.ReadNodeRec(e.dev, off)
	if rec.Flags&storage.FlagTombstone == 0 {
		return
	}
	e.idxMu.RLock()
	if len(e.indexes) > 0 {
		for _, p := range storage.ReadPropChain(e.props, rec.Props) {
			if t := e.indexes[indexKey{rec.Label, p.Key}]; t != nil {
				t.Delete(p.Val, id)
			}
		}
	}
	e.idxMu.RUnlock()
	err := e.pool.RunTx(func(ptx *pmemobj.Tx) error {
		if err := storage.FreePropChainTx(ptx, e.props, rec.Props); err != nil {
			return err
		}
		return e.nodes.ReleaseTx(ptx, id)
	})
	if err != nil {
		e.nodes.ResyncVolatile()
		e.props.ResyncVolatile()
		return
	}
	e.nodeRTS.forget(id)
	e.nodeChains.drop(id)
}
