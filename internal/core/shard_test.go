package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Shard-boundary and cross-shard protocol coverage: the partition
// function at chunk limits, relationships spanning shards, commits whose
// lock sets span several shards, and a deadlock detector for the
// ascending lock-order discipline.

// newShardedEngine opens a DRAM engine with an explicit shard count.
func newShardedEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e, err := Open(Config{Mode: DRAM, PoolSize: 64 << 20, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// nodePerShard creates one committed node in every shard by spinning
// transactions until each home shard has produced one.
func nodePerShard(t *testing.T, e *Engine) []uint64 {
	t.Helper()
	ids := make([]uint64, e.Shards())
	seen := make([]bool, e.Shards())
	remaining := e.Shards()
	for tries := 0; remaining > 0 && tries < 10*e.Shards(); tries++ {
		tx := e.Begin()
		id := mustCreateNode(t, tx, "S", map[string]any{"v": int64(0)})
		s := e.ShardOfNode(id)
		if seen[s] {
			tx.Abort()
			continue
		}
		mustCommit(t, tx)
		ids[s], seen[s] = id, true
		remaining--
	}
	if remaining > 0 {
		t.Fatalf("could not place a node in every shard: %v", seen)
	}
	return ids
}

func TestShardPartitionFunction(t *testing.T) {
	e := newShardedEngine(t, 4)
	cap_ := e.Nodes().ChunkCap()
	for _, tc := range []struct {
		id   uint64
		want int
	}{
		{0, 0},
		{cap_ - 1, 0},   // last slot of chunk 0
		{cap_, 1},       // first slot of chunk 1
		{2*cap_ - 1, 1}, // last slot of chunk 1
		{2 * cap_, 2},   //
		{4 * cap_, 0},   // chunk 4 wraps to shard 0
		{5*cap_ + 7, 1}, // mid-chunk, second wrap
		{7*cap_ - 1, 2}, // last slot of chunk 6
		{63 * cap_, 63 % 4},
	} {
		if got := e.ShardOfNode(tc.id); got != tc.want {
			t.Errorf("ShardOfNode(%d) = %d, want %d", tc.id, got, tc.want)
		}
		if got := e.Nodes().ShardOf(tc.id); got != tc.want {
			t.Errorf("nodes.ShardOf(%d) = %d, want %d", tc.id, got, tc.want)
		}
	}
}

func TestCrossShardRelationships(t *testing.T) {
	e := newShardedEngine(t, 4)
	ids := nodePerShard(t, e)

	// A relationship ring crossing every shard boundary: rel records live
	// in the shard of their source node.
	tx := e.Begin()
	for i := range ids {
		src, dst := ids[i], ids[(i+1)%len(ids)]
		if _, err := tx.CreateRel(src, dst, "next", map[string]any{"hop": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	read := e.Begin()
	defer read.Abort()
	for i, id := range ids {
		snap, err := read.GetNode(id)
		if err != nil {
			t.Fatal(err)
		}
		out := read.NewOutRelIter(snap, 0)
		hops := 0
		for {
			ok, err := out.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			r := out.Rel()
			if r.Rec.Src != id {
				t.Errorf("shard %d: rel src = %d, want %d", i, r.Rec.Src, id)
			}
			if want := ids[(i+1)%len(ids)]; r.Rec.Dst != want {
				t.Errorf("shard %d: rel dst = %d, want %d", i, r.Rec.Dst, want)
			}
			if got := e.ShardOfRel(r.ID); got != e.ShardOfNode(id) {
				t.Errorf("rel %d placed in shard %d, want source shard %d", r.ID, got, e.ShardOfNode(id))
			}
			hops++
		}
		if hops != 1 {
			t.Errorf("shard %d: %d outgoing rels, want 1", i, hops)
		}
	}

	// Detach-delete a node whose rels live in other shards (the incoming
	// edge's record is in the predecessor's shard).
	del := e.Begin()
	if err := del.DetachDeleteNode(ids[2]); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, del)
	after := e.Begin()
	defer after.Abort()
	if _, err := after.GetNode(ids[2]); err != ErrNotFound {
		t.Errorf("deleted cross-shard node still visible: %v", err)
	}
	snap, err := after.GetNode(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	out := after.NewOutRelIter(snap, 0)
	if ok, _ := out.Next(); ok {
		t.Error("dangling cross-shard rel survived detach delete")
	}
}

func TestShardGrowthPastChunk(t *testing.T) {
	// One transaction inserts past its home shard's first chunk; the
	// ErrShardFull retry path must grow the table with a chunk owned by
	// the same shard and keep ids shard-consistent.
	e := newShardedEngine(t, 4)
	cap_ := int(e.Nodes().ChunkCap())
	tx := e.Begin()
	home := -1
	ids := make([]uint64, cap_+10)
	for i := range ids {
		ids[i] = mustCreateNode(t, tx, "G", nil)
		s := e.ShardOfNode(ids[i])
		if home == -1 {
			home = s
		} else if s != home {
			t.Fatalf("node %d placed in shard %d, want home shard %d", ids[i], s, home)
		}
	}
	mustCommit(t, tx)
	if got := e.NodeCount(); got != uint64(cap_+10) {
		t.Fatalf("node count = %d, want %d", got, cap_+10)
	}
}

func TestCrossShardCommitLockOrderStress(t *testing.T) {
	// Goroutines commit transactions whose write sets span random shard
	// subsets in random access order. If any code path acquired shard
	// commit locks outside the canonical ascending order, opposite-order
	// lock sets would deadlock; the watchdog turns that hang into a
	// failure with full stacks.
	e := newShardedEngine(t, 4)
	ids := nodePerShard(t, e)

	const goroutines = 8
	const txPerGo = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*104729 + 1))
			for i := 0; i < txPerGo; i++ {
				tx := e.Begin()
				// Touch 2-4 shard-resident nodes in random order.
				perm := rng.Perm(len(ids))[:2+rng.Intn(3)]
				ok := true
				for _, n := range perm {
					if err := tx.SetNodeProps(ids[n], map[string]any{"v": int64(g*1000 + i)}); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					tx.Abort()
					continue
				}
				tx.Commit() // conflict aborts are fine; hangs are not
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("probable shard commit-lock deadlock; all goroutine stacks:\n%s", buf[:n])
	}

	stats, cross := e.ShardStatsSnapshot()
	if cross == 0 {
		t.Error("stress run produced no cross-shard commits")
	}
	var commits uint64
	for _, s := range stats {
		commits += s.Commits
	}
	if commits == 0 {
		t.Error("stress run produced no commits")
	}
}

func TestShardStatsSnapshot(t *testing.T) {
	e := newShardedEngine(t, 4)
	ids := nodePerShard(t, e)
	tx := e.Begin()
	for _, id := range ids {
		if err := tx.SetNodeProps(id, map[string]any{"v": int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	stats, cross := e.ShardStatsSnapshot()
	if len(stats) != 4 {
		t.Fatalf("got %d shard stats, want 4", len(stats))
	}
	if cross == 0 {
		t.Error("4-shard write commit not counted as cross-shard")
	}
	for s, st := range stats {
		if st.Commits == 0 {
			t.Errorf("shard %d saw no commits", s)
		}
		if st.HomeInserts == 0 {
			t.Errorf("shard %d saw no op-time inserts", s)
		}
	}
}

// TestSingleShardMatchesUnsharded pins the compatibility contract: a
// Shards=1 engine behaves like the pre-sharding engine (one commit lock,
// built-in undo log, chunk 0 allocation order).
func TestSingleShardMatchesUnsharded(t *testing.T) {
	e := newShardedEngine(t, 1)
	tx := e.Begin()
	var first uint64
	for i := 0; i < 10; i++ {
		id := mustCreateNode(t, tx, "U", nil)
		if i == 0 {
			first = id
		}
	}
	mustCommit(t, tx)
	if first != 0 {
		t.Errorf("first id = %d, want 0 (dense allocation from chunk 0)", first)
	}
	if got := e.Shards(); got != 1 {
		t.Errorf("Shards() = %d, want 1", got)
	}
	_, cross := e.ShardStatsSnapshot()
	if cross != 0 {
		t.Errorf("single-shard engine recorded %d cross-shard commits", cross)
	}
}
