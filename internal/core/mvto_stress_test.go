package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// The classic MVCC torture test: concurrent transfers between accounts.
// Under snapshot isolation with MVTO rules, (a) money is conserved,
// (b) any read-only transaction summing all balances sees exactly the
// initial total (a consistent snapshot), and (c) aborted transfers leave
// no trace.

const (
	accounts    = 8
	initialEach = int64(1000)
)

func setupBank(t *testing.T, mode Mode) (*Engine, []uint64, uint32) {
	t.Helper()
	e := newTestEngine(t, mode)
	tx := e.Begin()
	ids := make([]uint64, accounts)
	for i := range ids {
		ids[i] = mustCreateNode(t, tx, "Account", map[string]any{"balance": initialEach})
	}
	mustCommit(t, tx)
	code, _ := e.dict.Lookup("balance")
	return e, ids, uint32(code)
}

func readBalance(tx *Tx, id uint64, code uint32) (int64, error) {
	snap, err := tx.GetNode(id)
	if err != nil {
		return 0, err
	}
	v, ok := snap.Prop(code)
	if !ok {
		return 0, errors.New("missing balance")
	}
	return v.Int(), nil
}

// transfer moves amount from a to b in one transaction; returns whether
// it committed.
func transfer(e *Engine, code uint32, a, b uint64, amount int64) (bool, error) {
	tx := e.Begin()
	ba, err := readBalance(tx, a, code)
	if err != nil {
		tx.Abort()
		return false, ignorable(err)
	}
	bb, err := readBalance(tx, b, code)
	if err != nil {
		tx.Abort()
		return false, ignorable(err)
	}
	if err := tx.SetNodeProps(a, map[string]any{"balance": ba - amount}); err != nil {
		tx.Abort()
		return false, ignorable(err)
	}
	if err := tx.SetNodeProps(b, map[string]any{"balance": bb + amount}); err != nil {
		tx.Abort()
		return false, ignorable(err)
	}
	if err := tx.Commit(); err != nil {
		return false, ignorable(err)
	}
	return true, nil
}

// ignorable maps protocol aborts to nil (expected under contention).
func ignorable(err error) error {
	if errors.Is(err, ErrAborted) || errors.Is(err, ErrTxDone) {
		return nil
	}
	return err
}

func TestMVTOTransfersConserveMoney(t *testing.T) {
	for _, mode := range []Mode{DRAM, PMem} {
		t.Run(mode.String(), func(t *testing.T) {
			e, ids, code := setupBank(t, mode)
			const workers = 6
			const attempts = 200
			var commits int64
			var mu sync.Mutex
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < attempts; i++ {
						a := ids[rng.Intn(accounts)]
						b := ids[rng.Intn(accounts)]
						if a == b {
							continue
						}
						ok, err := transfer(e, code, a, b, int64(rng.Intn(50)))
						if err != nil {
							errCh <- err
							return
						}
						if ok {
							mu.Lock()
							commits++
							mu.Unlock()
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if commits == 0 {
				t.Fatal("no transfer ever committed")
			}
			t.Logf("%d/%d transfers committed", commits, workers*attempts)

			tx := e.Begin()
			defer tx.Abort()
			var total int64
			for _, id := range ids {
				b, err := readBalance(tx, id, code)
				if err != nil {
					t.Fatal(err)
				}
				total += b
			}
			if total != initialEach*accounts {
				t.Errorf("total = %d, want %d (money not conserved)", total, initialEach*accounts)
			}
		})
	}
}

func TestMVTOReadersSeeConsistentSnapshots(t *testing.T) {
	e, ids, code := setupBank(t, DRAM)
	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			a := ids[rng.Intn(accounts)]
			b := ids[rng.Intn(accounts)]
			if a == b {
				continue
			}
			if _, err := transfer(e, code, a, b, 10); err != nil {
				writerErr = err
				return
			}
		}
	}()

	// Readers: each snapshot must show the exact invariant total, no
	// matter when it runs relative to in-flight transfers.
	consistent := 0
	for i := 0; i < 300; i++ {
		tx := e.Begin()
		total := int64(0)
		ok := true
		for _, id := range ids {
			b, err := readBalance(tx, id, code)
			if err != nil {
				ok = false // reader hit a write lock: aborted, try again
				break
			}
			total += b
		}
		_ = tx.Abort() // may already be aborted by a lock conflict
		if !ok {
			continue
		}
		consistent++
		if total != initialEach*accounts {
			t.Fatalf("reader %d saw inconsistent total %d", i, total)
		}
	}
	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}
	if consistent == 0 {
		t.Fatal("no reader ever completed a snapshot")
	}
	t.Logf("%d/300 readers completed consistent snapshots", consistent)
}

func TestMVTOCrashDuringTransfersConserves(t *testing.T) {
	e, ids, code := setupBank(t, PMem)
	// Run a batch of committed transfers.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a, b := ids[rng.Intn(accounts)], ids[rng.Intn(accounts)]
		if a == b {
			continue
		}
		if _, err := transfer(e, code, a, b, int64(rng.Intn(100))); err != nil {
			t.Fatal(err)
		}
	}
	// Leave one transfer in flight and crash.
	tx := e.Begin()
	ba, err := readBalance(tx, ids[0], code)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetNodeProps(ids[0], map[string]any{"balance": ba - 500}); err != nil {
		t.Fatal(err)
	}
	// No commit: power failure.
	e2 := reopenAfterCrash(t, e)

	tx2 := e2.Begin()
	defer tx2.Abort()
	code2, _ := e2.dict.Lookup("balance")
	var total int64
	for _, id := range ids {
		b, err := readBalance(tx2, id, uint32(code2))
		if err != nil {
			t.Fatal(err)
		}
		total += b
	}
	if total != initialEach*accounts {
		t.Errorf("total after crash = %d, want %d", total, initialEach*accounts)
	}
}
