package core

import (
	"poseidon/internal/storage"
)

// Pull-style iterators over the transaction's snapshot. These are the
// AOT-compiled access methods that both the interpreter and the JIT
// backend reuse (§6.2), packaged in pull form so compiled pipelines can
// drive them from generated loop code.

// NodeIter iterates the visible nodes of a chunk range. Occupancy bitmap
// words are cached so 64 slots cost one bitmap read.
type NodeIter struct {
	tx        *Tx
	next, end uint64
	labelCode uint32 // 0 = all labels
	cur       NodeSnap
	word      uint64 // cached occupancy bits for [wordBase, wordBase+64)
	wordBase  uint64
	haveWord  bool
}

// NewNodeChunkIter iterates the visible nodes of one chunk, optionally
// filtered by label code.
func (tx *Tx) NewNodeChunkIter(chunk uint64, labelCode uint32) *NodeIter {
	cap_ := tx.e.nodes.ChunkCap()
	return &NodeIter{tx: tx, next: chunk * cap_, end: (chunk + 1) * cap_, labelCode: labelCode}
}

// NewNodeRangeIter iterates the visible nodes with from <= id < to — the
// morsel shape of parallel scans.
func (tx *Tx) NewNodeRangeIter(from, to uint64, labelCode uint32) *NodeIter {
	if max := tx.e.nodes.MaxID(); to > max {
		to = max
	}
	return &NodeIter{tx: tx, next: from, end: to, labelCode: labelCode}
}

// NewNodeIter iterates every visible node in the table.
func (tx *Tx) NewNodeIter(labelCode uint32) *NodeIter {
	return &NodeIter{tx: tx, next: 0, end: tx.e.nodes.MaxID(), labelCode: labelCode}
}

// Next advances to the next visible node. It returns false at the end;
// a non-nil error aborts the query (lock conflict).
func (it *NodeIter) Next() (bool, error) {
	e := it.tx.e
	cap_ := e.nodes.ChunkCap()
	for it.next < it.end {
		id := it.next
		slot := id % cap_
		// Bitmap words are chunk-relative; chunk starts need not be
		// 64-aligned in id space, so align on the slot, not the id.
		base := id - slot%64
		if !it.haveWord || it.wordBase != base {
			it.word = e.nodes.BitmapWord(id)
			it.wordBase = base
			it.haveWord = true
		}
		if it.word == 0 {
			// Skip the whole empty word, but never past the chunk end:
			// the next chunk's bitmap starts a fresh word.
			next := base + 64
			if chunkEnd := (id/cap_ + 1) * cap_; next > chunkEnd {
				next = chunkEnd
			}
			it.next = next
			continue
		}
		it.next++
		if it.word&(1<<(slot%64)) == 0 {
			continue
		}
		snap, err := it.tx.GetNode(id)
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return false, err
		}
		if it.labelCode != 0 && snap.Rec.Label != it.labelCode {
			continue
		}
		it.cur = snap
		return true, nil
	}
	return false, nil
}

// Node returns the current node.
func (it *NodeIter) Node() NodeSnap { return it.cur }

// RelTableIter iterates the visible relationships of a chunk range.
type RelTableIter struct {
	tx        *Tx
	next, end uint64
	labelCode uint32
	cur       RelSnap
	word      uint64
	wordBase  uint64
	haveWord  bool
}

// NewRelChunkIter iterates the visible relationships of one chunk.
func (tx *Tx) NewRelChunkIter(chunk uint64, labelCode uint32) *RelTableIter {
	cap_ := tx.e.rels.ChunkCap()
	return &RelTableIter{tx: tx, next: chunk * cap_, end: (chunk + 1) * cap_, labelCode: labelCode}
}

// NewRelRangeIter iterates the visible relationships with from <= id < to.
func (tx *Tx) NewRelRangeIter(from, to uint64, labelCode uint32) *RelTableIter {
	if max := tx.e.rels.MaxID(); to > max {
		to = max
	}
	return &RelTableIter{tx: tx, next: from, end: to, labelCode: labelCode}
}

// NewRelIter iterates every visible relationship.
func (tx *Tx) NewRelIter(labelCode uint32) *RelTableIter {
	return &RelTableIter{tx: tx, next: 0, end: tx.e.rels.MaxID(), labelCode: labelCode}
}

// Next advances to the next visible relationship.
func (it *RelTableIter) Next() (bool, error) {
	e := it.tx.e
	cap_ := e.rels.ChunkCap()
	for it.next < it.end {
		id := it.next
		slot := id % cap_
		base := id - slot%64
		if !it.haveWord || it.wordBase != base {
			it.word = e.rels.BitmapWord(id)
			it.wordBase = base
			it.haveWord = true
		}
		if it.word == 0 {
			next := base + 64
			if chunkEnd := (id/cap_ + 1) * cap_; next > chunkEnd {
				next = chunkEnd
			}
			it.next = next
			continue
		}
		it.next++
		if it.word&(1<<(slot%64)) == 0 {
			continue
		}
		snap, err := it.tx.GetRel(id)
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return false, err
		}
		if it.labelCode != 0 && snap.Rec.Label != it.labelCode {
			continue
		}
		it.cur = snap
		return true, nil
	}
	return false, nil
}

// Rel returns the current relationship.
func (it *RelTableIter) Rel() RelSnap { return it.cur }

// AdjIter iterates one adjacency list (out or in) of a node.
type AdjIter struct {
	tx        *Tx
	cur       RelSnap
	next      uint64
	out       bool
	labelCode uint32
}

// NewOutRelIter iterates the visible outgoing relationships of n.
func (tx *Tx) NewOutRelIter(n NodeSnap, labelCode uint32) *AdjIter {
	return &AdjIter{tx: tx, next: n.Rec.Out, out: true, labelCode: labelCode}
}

// NewInRelIter iterates the visible incoming relationships of n.
func (tx *Tx) NewInRelIter(n NodeSnap, labelCode uint32) *AdjIter {
	return &AdjIter{tx: tx, next: n.Rec.In, out: false, labelCode: labelCode}
}

// Next advances along the offset-linked adjacency list (DD4).
func (it *AdjIter) Next() (bool, error) {
	for it.next != storage.NilID {
		rid := it.next
		r, err := it.tx.GetRel(rid)
		if err == ErrNotFound {
			// Invisible: follow the committed list structure.
			next, ok := it.tx.rawRelNext(rid, it.out)
			if !ok {
				return false, nil
			}
			it.next = next
			continue
		}
		if err != nil {
			return false, err
		}
		if it.out {
			it.next = r.Rec.NextSrc
		} else {
			it.next = r.Rec.NextDst
		}
		if it.labelCode != 0 && r.Rec.Label != it.labelCode {
			continue
		}
		it.cur = r
		return true, nil
	}
	return false, nil
}

// Rel returns the current relationship.
func (it *AdjIter) Rel() RelSnap { return it.cur }

// IndexIter iterates index hits re-validated against the snapshot.
type IndexIter struct {
	tx  *Tx
	ids []uint64
	pos int
	cur NodeSnap
}

// NewIndexIter looks up v in the index and iterates the visible hits.
func (tx *Tx) NewIndexIter(ref *IndexRef, v storage.Value) *IndexIter {
	return &IndexIter{tx: tx, ids: ref.Lookup(v)}
}

// Next advances to the next visible indexed node.
func (it *IndexIter) Next() (bool, error) {
	for it.pos < len(it.ids) {
		id := it.ids[it.pos]
		it.pos++
		snap, err := it.tx.GetNode(id)
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return false, err
		}
		it.cur = snap
		return true, nil
	}
	return false, nil
}

// Node returns the current node.
func (it *IndexIter) Node() NodeSnap { return it.cur }
