package core

import (
	"testing"

	"poseidon/internal/storage"
)

// Pull-iterator coverage inside the core package (the JIT drives these
// from outside; here we pin their id-range and visibility semantics).

func iterGraph(t *testing.T) (*Engine, []uint64) {
	t.Helper()
	e := newTestEngine(t, DRAM)
	tx := e.Begin()
	ids := make([]uint64, 10)
	for i := range ids {
		label := "A"
		if i%2 == 1 {
			label = "B"
		}
		ids[i] = mustCreateNode(t, tx, label, map[string]any{"i": int64(i)})
	}
	for i := 0; i < 9; i++ {
		if _, err := tx.CreateRel(ids[i], ids[i+1], "next", nil); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	return e, ids
}

func drainNodes(t *testing.T, it *NodeIter) []uint64 {
	t.Helper()
	var out []uint64
	for {
		ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, it.Node().ID)
	}
}

func drainRels(t *testing.T, next func() (bool, error), cur func() RelSnap) []uint64 {
	t.Helper()
	var out []uint64
	for {
		ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, cur().ID)
	}
}

func TestNodeIterFullAndLabelFiltered(t *testing.T) {
	e, ids := iterGraph(t)
	tx := e.Begin()
	defer tx.Abort()
	all := drainNodes(t, tx.NewNodeIter(0))
	if len(all) != len(ids) {
		t.Errorf("full iter = %d nodes, want %d", len(all), len(ids))
	}
	code, _ := e.dict.Lookup("B")
	bs := drainNodes(t, tx.NewNodeIter(uint32(code)))
	if len(bs) != 5 {
		t.Errorf("label-B iter = %d nodes, want 5", len(bs))
	}
}

func TestNodeRangeIterBounds(t *testing.T) {
	e, ids := iterGraph(t)
	tx := e.Begin()
	defer tx.Abort()
	got := drainNodes(t, tx.NewNodeRangeIter(ids[3], ids[7], 0))
	if len(got) != 4 || got[0] != ids[3] || got[3] != ids[6] {
		t.Errorf("range [3,7) = %v", got)
	}
	// Range past the table end clips.
	got = drainNodes(t, tx.NewNodeRangeIter(ids[8], 1<<40, 0))
	if len(got) != 2 {
		t.Errorf("clipped range = %d nodes, want 2", len(got))
	}
	// Chunk iterator covers everything in the chunk holding the nodes
	// (one tx places all its nodes in its home shard's chunk).
	got = drainNodes(t, tx.NewNodeChunkIter(ids[0]/e.Nodes().ChunkCap(), 0))
	if len(got) != len(ids) {
		t.Errorf("chunk iter = %d nodes", len(got))
	}
}

func TestRelItersAndRanges(t *testing.T) {
	e, ids := iterGraph(t)
	tx := e.Begin()
	defer tx.Abort()
	it := tx.NewRelIter(0)
	rels := drainRels(t, it.Next, it.Rel)
	if len(rels) != 9 {
		t.Errorf("rel iter = %d, want 9", len(rels))
	}
	it2 := tx.NewRelRangeIter(rels[2], rels[5], 0)
	mid := drainRels(t, it2.Next, it2.Rel)
	if len(mid) != 3 {
		t.Errorf("rel range = %d, want 3", len(mid))
	}
	it3 := tx.NewRelChunkIter(rels[0]/e.Rels().ChunkCap(), 0)
	all := drainRels(t, it3.Next, it3.Rel)
	if len(all) != 9 {
		t.Errorf("rel chunk iter = %d", len(all))
	}
	// Adjacency iterators.
	snap, _ := tx.GetNode(ids[4])
	out := tx.NewOutRelIter(snap, 0)
	if got := drainRels(t, out.Next, out.Rel); len(got) != 1 {
		t.Errorf("out adj = %d, want 1", len(got))
	}
	in := tx.NewInRelIter(snap, 0)
	if got := drainRels(t, in.Next, in.Rel); len(got) != 1 {
		t.Errorf("in adj = %d, want 1", len(got))
	}
}

func TestIteratorsSkipInvisible(t *testing.T) {
	e, ids := iterGraph(t)
	del := e.Begin()
	if err := del.DetachDeleteNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, del)
	tx := e.Begin()
	defer tx.Abort()
	got := drainNodes(t, tx.NewNodeIter(0))
	if len(got) != len(ids)-1 {
		t.Errorf("iter after delete = %d nodes, want %d", len(got), len(ids)-1)
	}
	for _, id := range got {
		if id == ids[0] {
			t.Error("deleted node iterated")
		}
	}
}

func TestIndexIterValidatesSnapshot(t *testing.T) {
	e, ids := iterGraph(t)
	if err := e.CreateIndex("A", "i", 0 /* volatile */); err != nil {
		t.Fatal(err)
	}
	tree, ok := e.IndexFor("A", "i")
	if !ok {
		t.Fatal("index missing")
	}
	oldTx := e.Begin() // snapshot before the delete
	del := e.Begin()
	if err := del.DetachDeleteNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, del)

	// Old snapshot still sees the node via the index (chain version).
	it := oldTx.NewIndexIter(tree, intVal(0))
	n := 0
	for {
		ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
		_ = it.Node()
	}
	if n != 1 {
		t.Errorf("old snapshot index iter = %d hits, want 1", n)
	}
	oldTx.Abort() // quiescent: GC reclaims the node and its index entry

	// After GC, the index no longer returns the id at all.
	tx := e.Begin()
	defer tx.Abort()
	snaps, err := tx.IndexedLookup(tree, intVal(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Errorf("post-GC index lookup = %v, want empty", snaps)
	}
	if tree.Contains(intVal(0), ids[0]) {
		t.Error("index entry survived GC")
	}
}

func TestRebuildVolatileIndexes(t *testing.T) {
	e, ids := iterGraph(t)
	if err := e.CreateIndex("A", "i", 0); err != nil {
		t.Fatal(err)
	}
	if err := e.RebuildVolatileIndexes(); err != nil {
		t.Fatal(err)
	}
	tree, _ := e.IndexFor("A", "i")
	tx := e.Begin()
	defer tx.Abort()
	snaps, err := tx.IndexedLookup(tree, intVal(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].ID != ids[2] {
		t.Errorf("rebuilt index lookup = %v", snaps)
	}
}

func TestEngineAccessors(t *testing.T) {
	e, _ := iterGraph(t)
	if e.Pool() == nil || e.Dict() == nil || e.Nodes() == nil || e.Rels() == nil || e.Props() == nil {
		t.Error("nil accessor")
	}
	if e.AuxRoot() != 0 {
		t.Error("aux root set unexpectedly")
	}
	e.SetAuxRoot(12345)
	if e.AuxRoot() != 12345 {
		t.Error("aux root round trip failed")
	}
}

func intVal(v int64) storage.Value { return storage.IntValue(v) }
