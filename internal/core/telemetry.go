package core

import "poseidon/internal/telemetry"

// Telemetry holds the metric handles the engine reports into. The zero
// value — all-nil handles — is the disabled state: every operation on a
// nil handle is a no-op branch, so the MVTO hot path pays nothing when
// telemetry is off.
type Telemetry struct {
	// TxBegun counts Begin calls.
	TxBegun *telemetry.Counter
	// TxCommits counts successful commits (including read-only ones).
	TxCommits *telemetry.Counter
	// TxAborts counts aborts by classified reason, indexed by AbortReason.
	// Read-only rollbacks with no failure reason (normal query cleanup)
	// are not counted.
	TxAborts [NumAbortReasons]*telemetry.Counter
	// ChainWalk observes the number of versions inspected whenever a read
	// falls off the PMem record into the DRAM version chain (§5.2).
	ChainWalk *telemetry.Histogram
}

// SetTelemetry installs the engine's metric handles. Call before the
// engine serves transactions; handles are read without synchronization.
func (e *Engine) SetTelemetry(t Telemetry) { e.tel = t }
