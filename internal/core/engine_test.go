package core

import (
	"errors"
	"fmt"
	"testing"

	"poseidon/internal/index"
	"poseidon/internal/storage"
)

func newTestEngine(t *testing.T, mode Mode) *Engine {
	t.Helper()
	e, err := Open(Config{Mode: mode, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func mustCreateNode(t *testing.T, tx *Tx, label string, props map[string]any) uint64 {
	t.Helper()
	id, err := tx.CreateNode(label, props)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustCommit(t *testing.T, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func bothModes(t *testing.T, f func(t *testing.T, e *Engine)) {
	for _, mode := range []Mode{PMem, DRAM} {
		t.Run(mode.String(), func(t *testing.T) {
			f(t, newTestEngine(t, mode))
		})
	}
}

func nodeProps(t *testing.T, e *Engine, id uint64) map[string]any {
	t.Helper()
	tx := e.Begin()
	defer tx.Abort()
	snap, err := tx.GetNode(id)
	if err != nil {
		t.Fatalf("GetNode(%d): %v", id, err)
	}
	m, err := e.DecodeProps(snap.Props())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCreateAndReadNode(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		id := mustCreateNode(t, tx, "Person", map[string]any{
			"name": "alice", "age": int64(30), "score": 1.5, "active": true,
		})
		// Own write visible before commit.
		snap, err := tx.GetNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := e.dict.Decode(uint64(snap.Rec.Label)); got != "Person" {
			t.Errorf("label = %q", got)
		}
		mustCommit(t, tx)

		props := nodeProps(t, e, id)
		want := map[string]any{"name": "alice", "age": int64(30), "score": 1.5, "active": true}
		if len(props) != len(want) {
			t.Fatalf("props = %v", props)
		}
		for k, v := range want {
			if props[k] != v {
				t.Errorf("prop %s = %v (%T), want %v", k, props[k], props[k], v)
			}
		}
	})
}

func TestUncommittedInvisibleToOthers(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx1 := e.Begin()
		id := mustCreateNode(t, tx1, "Person", nil)

		tx2 := e.Begin()
		_, err := tx2.GetNode(id)
		// The record exists but is write-locked by tx1: per §5.1 the
		// reader aborts.
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("read of locked insert = %v, want ErrAborted", err)
		}
		mustCommit(t, tx1)

		// A transaction that began before tx1 committed cannot see it...
		tx3 := e.Begin()
		defer tx3.Abort()
		if _, err := tx3.GetNode(id); err != nil {
			t.Fatalf("read after commit: %v", err)
		}
	})
}

func TestSnapshotIsolationOnUpdate(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		id := mustCreateNode(t, setup, "Person", map[string]any{"age": int64(1)})
		mustCommit(t, setup)

		reader := e.Begin() // snapshot before the update
		writer := e.Begin()
		if err := writer.SetNodeProps(id, map[string]any{"age": int64(2)}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, writer)

		// The old reader must still see age=1 from the version chain.
		snap, err := reader.GetNode(id)
		if err != nil {
			t.Fatalf("old reader: %v", err)
		}
		ageCode, _ := e.dict.Lookup("age")
		v, ok := snap.Prop(uint32(ageCode))
		if !ok || v.Int() != 1 {
			t.Errorf("old reader sees age=%v, want 1 (snapshot isolation)", v.Int())
		}
		reader.Abort()

		// A new reader sees age=2.
		p := nodeProps(t, e, id)
		if p["age"] != int64(2) {
			t.Errorf("new reader sees age=%v, want 2", p["age"])
		}
	})
}

func TestWriteWriteConflictAborts(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		id := mustCreateNode(t, setup, "Person", nil)
		mustCommit(t, setup)

		tx1 := e.Begin()
		tx2 := e.Begin()
		if err := tx1.SetNodeProps(id, map[string]any{"x": int64(1)}); err != nil {
			t.Fatal(err)
		}
		err := tx2.SetNodeProps(id, map[string]any{"x": int64(2)})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("conflicting write = %v, want ErrAborted", err)
		}
		mustCommit(t, tx1)
		p := nodeProps(t, e, id)
		if p["x"] != int64(1) {
			t.Errorf("x = %v, want 1", p["x"])
		}
	})
}

func TestWriteAfterNewerReadAborts(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		id := mustCreateNode(t, setup, "Person", nil)
		mustCommit(t, setup)

		older := e.Begin() // smaller timestamp
		newer := e.Begin()
		if _, err := newer.GetNode(id); err != nil { // bumps rts to newer.id
			t.Fatal(err)
		}
		err := older.SetNodeProps(id, map[string]any{"x": int64(1)})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("write under newer rts = %v, want ErrAborted (MVTO rule)", err)
		}
		newer.Abort()
	})
}

func TestAbortRollsBackEverything(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		a := mustCreateNode(t, setup, "Person", map[string]any{"v": int64(1)})
		mustCommit(t, setup)
		nodesBefore := e.NodeCount()

		tx := e.Begin()
		b := mustCreateNode(t, tx, "Person", nil)
		if _, err := tx.CreateRel(a, b, "knows", nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.SetNodeProps(a, map[string]any{"v": int64(99)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Abort(); err != nil {
			t.Fatal(err)
		}

		if e.NodeCount() != nodesBefore {
			t.Errorf("node count = %d, want %d (insert rolled back)", e.NodeCount(), nodesBefore)
		}
		if e.RelCount() != 0 {
			t.Errorf("rel count = %d, want 0", e.RelCount())
		}
		p := nodeProps(t, e, a)
		if p["v"] != int64(1) {
			t.Errorf("v = %v, want 1 after abort", p["v"])
		}
		// The record must be unlocked: a new writer succeeds.
		tx2 := e.Begin()
		if err := tx2.SetNodeProps(a, map[string]any{"v": int64(2)}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx2)
	})
}

func TestRelationshipTraversal(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		alice := mustCreateNode(t, tx, "Person", map[string]any{"name": "alice"})
		bob := mustCreateNode(t, tx, "Person", map[string]any{"name": "bob"})
		carol := mustCreateNode(t, tx, "Person", map[string]any{"name": "carol"})
		r1, _ := tx.CreateRel(alice, bob, "knows", map[string]any{"since": int64(2020)})
		r2, _ := tx.CreateRel(alice, carol, "knows", nil)
		r3, _ := tx.CreateRel(bob, alice, "knows", nil)
		mustCommit(t, tx)

		tx2 := e.Begin()
		defer tx2.Abort()
		snap, _ := tx2.GetNode(alice)
		var out []uint64
		if err := tx2.OutRels(snap, func(r RelSnap) bool { out = append(out, r.ID); return true }); err != nil {
			t.Fatal(err)
		}
		// Prepend order: newest first.
		if len(out) != 2 || out[0] != r2 || out[1] != r1 {
			t.Errorf("out rels = %v, want [%d %d]", out, r2, r1)
		}
		var in []uint64
		if err := tx2.InRels(snap, func(r RelSnap) bool { in = append(in, r.ID); return true }); err != nil {
			t.Fatal(err)
		}
		if len(in) != 1 || in[0] != r3 {
			t.Errorf("in rels = %v, want [%d]", in, r3)
		}
		// Relationship endpoints and property.
		r, err := tx2.GetRel(r1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rec.Src != alice || r.Rec.Dst != bob {
			t.Errorf("rel endpoints = (%d,%d)", r.Rec.Src, r.Rec.Dst)
		}
		sinceCode, _ := e.dict.Lookup("since")
		if v, ok := r.Prop(uint32(sinceCode)); !ok || v.Int() != 2020 {
			t.Errorf("since = %v,%v", v, ok)
		}
	})
}

func TestSelfLoopRelationship(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		n := mustCreateNode(t, tx, "Person", nil)
		if _, err := tx.CreateRel(n, n, "follows", nil); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)

		tx2 := e.Begin()
		defer tx2.Abort()
		snap, _ := tx2.GetNode(n)
		outs, ins := 0, 0
		tx2.OutRels(snap, func(RelSnap) bool { outs++; return true })
		tx2.InRels(snap, func(RelSnap) bool { ins++; return true })
		if outs != 1 || ins != 1 {
			t.Errorf("self loop: out=%d in=%d, want 1/1", outs, ins)
		}
	})
}

func TestDeleteRelAndGC(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		a := mustCreateNode(t, tx, "P", nil)
		b := mustCreateNode(t, tx, "P", nil)
		r1, _ := tx.CreateRel(a, b, "knows", nil)
		r2, _ := tx.CreateRel(a, b, "likes", nil)
		mustCommit(t, tx)

		del := e.Begin()
		if err := del.DeleteRel(r1); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, del) // quiescent at finish: GC reclaims r1

		if e.RelCount() != 1 {
			t.Errorf("rel count after GC = %d, want 1", e.RelCount())
		}
		tx2 := e.Begin()
		defer tx2.Abort()
		if _, err := tx2.GetRel(r1); err != ErrNotFound {
			t.Errorf("deleted rel read = %v, want ErrNotFound", err)
		}
		snap, _ := tx2.GetNode(a)
		var out []uint64
		tx2.OutRels(snap, func(r RelSnap) bool { out = append(out, r.ID); return true })
		if len(out) != 1 || out[0] != r2 {
			t.Errorf("out rels after delete = %v, want [%d]", out, r2)
		}
	})
}

func TestDeleteNodeRequiresNoRels(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		a := mustCreateNode(t, tx, "P", nil)
		b := mustCreateNode(t, tx, "P", nil)
		tx.CreateRel(a, b, "knows", nil)
		mustCommit(t, tx)

		tx2 := e.Begin()
		if err := tx2.DeleteNode(a); !errors.Is(err, ErrHasRels) {
			t.Fatalf("DeleteNode with rels = %v, want ErrHasRels", err)
		}
		tx2.Abort()

		tx3 := e.Begin()
		if err := tx3.DetachDeleteNode(a); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx3)

		if got := e.NodeCount(); got != 1 {
			t.Errorf("node count = %d, want 1", got)
		}
		if got := e.RelCount(); got != 0 {
			t.Errorf("rel count = %d, want 0", got)
		}
		// b's in-list must no longer reference the reclaimed rel.
		tx4 := e.Begin()
		defer tx4.Abort()
		snap, err := tx4.GetNode(b)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		tx4.InRels(snap, func(RelSnap) bool { n++; return true })
		if n != 0 {
			t.Errorf("b still has %d in-rels", n)
		}
	})
}

func TestDeletedNodeVisibleToOldReader(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		id := mustCreateNode(t, setup, "P", map[string]any{"name": "ghost"})
		mustCommit(t, setup)

		oldReader := e.Begin() // keeps the system non-quiescent too
		deleter := e.Begin()
		if err := deleter.DeleteNode(id); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, deleter)

		// Old reader still sees the node (ets > its timestamp in PMem).
		snap, err := oldReader.GetNode(id)
		if err != nil {
			t.Fatalf("old reader after delete: %v", err)
		}
		nameCode, _ := e.dict.Lookup("name")
		if v, ok := snap.Prop(uint32(nameCode)); !ok {
			t.Error("old reader lost properties of deleted node")
		} else if s, _ := e.dict.Decode(v.Code()); s != "ghost" {
			t.Errorf("name = %q", s)
		}
		oldReader.Abort() // now quiescent: GC reclaims

		tx := e.Begin()
		defer tx.Abort()
		if _, err := tx.GetNode(id); err != ErrNotFound {
			t.Errorf("new reader = %v, want ErrNotFound", err)
		}
		if e.NodeCount() != 0 {
			t.Errorf("node count = %d, want 0 after GC", e.NodeCount())
		}
	})
}

func TestPropertyUpdateAndRemove(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		id := mustCreateNode(t, tx, "P", map[string]any{"a": int64(1), "b": int64(2)})
		mustCommit(t, tx)

		tx2 := e.Begin()
		if err := tx2.SetNodeProps(id, map[string]any{"b": int64(20), "c": int64(3), "a": nil}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx2)

		p := nodeProps(t, e, id)
		if _, ok := p["a"]; ok {
			t.Error("removed key a still present")
		}
		if p["b"] != int64(20) || p["c"] != int64(3) {
			t.Errorf("props = %v", p)
		}
	})
}

func TestManyPropsSpillAcrossBatches(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		props := map[string]any{}
		for i := 0; i < 20; i++ { // 20 props: 7 property records
			props[fmt.Sprintf("key%02d", i)] = int64(i)
		}
		tx := e.Begin()
		id := mustCreateNode(t, tx, "P", props)
		mustCommit(t, tx)
		got := nodeProps(t, e, id)
		if len(got) != 20 {
			t.Fatalf("got %d props, want 20", len(got))
		}
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("key%02d", i)
			if got[k] != int64(i) {
				t.Errorf("%s = %v", k, got[k])
			}
		}
	})
}

func TestScanNodesVisibility(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		ids := make([]uint64, 10)
		for i := 0; i < 10; i++ {
			ids[i] = mustCreateNode(t, setup, "P", map[string]any{"i": int64(i)})
		}
		mustCommit(t, setup)

		oldReader := e.Begin()
		// Delete one and add one from a later transaction.
		mod := e.Begin()
		if err := mod.DeleteNode(ids[0]); err != nil {
			t.Fatal(err)
		}
		mustCreateNode(t, mod, "P", map[string]any{"i": int64(10)})
		mustCommit(t, mod)

		count := 0
		if err := oldReader.ScanNodes(func(NodeSnap) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if count != 10 {
			t.Errorf("old reader scanned %d nodes, want 10", count)
		}
		oldReader.Abort()

		newReader := e.Begin()
		defer newReader.Abort()
		count = 0
		if err := newReader.ScanNodes(func(NodeSnap) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if count != 10 { // 10 - 1 deleted + 1 added
			t.Errorf("new reader scanned %d nodes, want 10", count)
		}
	})
}

func TestReadOnlyTxCommit(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		tx := e.Begin()
		if !tx.ReadOnly() {
			t.Error("fresh tx not read-only")
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
			t.Errorf("double commit = %v, want ErrTxDone", err)
		}
		if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
			t.Errorf("abort after commit = %v, want ErrTxDone", err)
		}
	})
}

func TestIndexMaintenance(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		setup := e.Begin()
		id1 := mustCreateNode(t, setup, "Person", map[string]any{"name": "alice"})
		mustCreateNode(t, setup, "Person", map[string]any{"name": "bob"})
		mustCreateNode(t, setup, "Post", map[string]any{"name": "alice"}) // other label
		mustCommit(t, setup)

		kind := index.Hybrid
		if e.Mode() == DRAM {
			kind = index.Volatile
		}
		if err := e.CreateIndex("Person", "name", kind); err != nil {
			t.Fatal(err)
		}
		tree, ok := e.IndexFor("Person", "name")
		if !ok {
			t.Fatal("index not registered")
		}

		lookup := func(name string) []NodeSnap {
			t.Helper()
			code, _ := e.dict.Lookup(name)
			tx := e.Begin()
			defer tx.Abort()
			snaps, err := tx.IndexedLookup(tree, storage.StringValue(code))
			if err != nil {
				t.Fatal(err)
			}
			return snaps
		}

		if snaps := lookup("alice"); len(snaps) != 1 || snaps[0].ID != id1 {
			t.Fatalf("backfilled lookup(alice) = %v", snaps)
		}

		// New inserts are indexed.
		tx := e.Begin()
		id4 := mustCreateNode(t, tx, "Person", map[string]any{"name": "carol"})
		mustCommit(t, tx)
		if snaps := lookup("carol"); len(snaps) != 1 || snaps[0].ID != id4 {
			t.Fatalf("lookup(carol) = %v", snaps)
		}

		// Updates move the index entry.
		tx = e.Begin()
		if err := tx.SetNodeProps(id1, map[string]any{"name": "alicia"}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		if snaps := lookup("alice"); len(snaps) != 0 {
			t.Fatalf("lookup(alice) after rename = %v", snaps)
		}
		if snaps := lookup("alicia"); len(snaps) != 1 {
			t.Fatalf("lookup(alicia) = %v", snaps)
		}

		// Deletes remove the entry.
		tx = e.Begin()
		if err := tx.DeleteNode(id4); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		if snaps := lookup("carol"); len(snaps) != 0 {
			t.Fatalf("lookup(carol) after delete = %v", snaps)
		}
	})
}

func TestDuplicateIndexRejected(t *testing.T) {
	e := newTestEngine(t, PMem)
	if err := e.CreateIndex("A", "k", index.Hybrid); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("A", "k", index.Hybrid); err == nil {
		t.Error("duplicate index creation succeeded")
	}
}
