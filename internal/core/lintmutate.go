//go:build lintmutate

// Seeded concurrency-discipline mutants for poseidonlint's mutation
// test (internal/lint/mutation_test.go). Each function below plants one
// bug from a race class the analyzer is contracted to catch; the test
// loads the module with the lintmutate tag and fails if any mutant goes
// unreported. The tag keeps them out of every real build.
package core

import (
	"context"
	"errors"

	"poseidon/internal/storage"
	"poseidon/internal/trace"
)

var errMutate = errors.New("lintmutate")

// mutantDescendingLocks takes two shard commit locks directly, in
// whatever order the caller picked — the deadlock the lockShards
// protocol (ascending, TryLock-first) exists to prevent. lockorder must
// flag the second acquisition.
func (e *Engine) mutantDescendingLocks(a, b int) {
	e.shards[b].commitMu.Lock()
	e.shards[a].commitMu.Lock()
	e.shards[a].commitMu.Unlock()
	e.shards[b].commitMu.Unlock()
}

// mutantUnbracketedRead reads a node record with no Bts/Ets snapshot
// bracket, no TxnID pin, and no commit lock: a concurrent committer can
// hand it a torn record. seqlock must flag the read.
func (e *Engine) mutantUnbracketedRead(id uint64) uint64 {
	off, ok := e.nodes.RecordOffset(id)
	if !ok {
		return 0
	}
	rec := storage.ReadNodeRec(e.dev, off)
	return rec.Bts
}

// mutantLeakedSpan returns on the error path without ending the span it
// started, so the span never exports and later children mis-parent.
// lifecycle must flag the creation.
func (e *Engine) mutantLeakedSpan(ctx context.Context, fail bool) error {
	_, sp := trace.StartSpan(ctx, "core.mutant", trace.KindExec)
	if fail {
		return errMutate
	}
	sp.End()
	return nil
}
