package core

import (
	"fmt"

	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// Secondary indexes are sharded exactly like the MVTO state: index
// (label, key) is a family of nShards trees, where tree s holds entries
// only for node ids owned by shard s. Commit-time maintenance therefore
// touches only trees of shards whose commit locks the transaction already
// holds, and index updates within a shard observe commit order.
//
// The persistent directory stores one entry per (index, shard):
//
//	word 0: label | shardCount<<32
//	word 1: key
//	word 2: kind | shard<<32
//	word 3: tree root offset
//
// Images written before sharding read shardCount 0 (treated as 1) and
// shard 0 — exactly one tree, which is what those images have. An image
// reopened with a different shard count repartitions record ownership,
// so its index families are replaced with empty trees and reconciled
// (a full rebuild) against the primary tables.

// idxDirEnt is one decoded persistent directory entry.
type idxDirEnt struct {
	label, key uint32
	kind       index.Kind
	shard      int
	shardCount int
	hdr        uint64
}

func (e *Engine) readIndexDir() []idxDirEnt {
	n := e.dev.ReadU64(e.root + rootIdxCount)
	if n > maxIndexes {
		n = maxIndexes
	}
	out := make([]idxDirEnt, 0, n)
	for i := uint64(0); i < n; i++ {
		ent := e.root + rootIdxDir + i*idxEntrySize
		w0 := e.dev.ReadU64(ent)
		w2 := e.dev.ReadU64(ent + 16)
		de := idxDirEnt{
			label:      uint32(w0),
			shardCount: int(w0 >> 32),
			key:        uint32(e.dev.ReadU64(ent + 8)),
			kind:       index.Kind(uint32(w2)),
			shard:      int(w2 >> 32),
			hdr:        e.dev.ReadU64(ent + 24),
		}
		if de.shardCount == 0 {
			de.shardCount = 1
		}
		out = append(out, de)
	}
	return out
}

// writeIndexDir replaces the whole persistent directory with the given
// entries. The count word is the commit point: a crash mid-rewrite leaves
// the old count over a partially new entry array, every prefix of which
// still describes structurally valid trees — the mismatch is detected at
// the next reopen and reconciled.
func (e *Engine) writeIndexDir(ents []idxDirEnt) error {
	if len(ents) > maxIndexes {
		return fmt.Errorf("core: too many persistent index entries (%d, max %d)", len(ents), maxIndexes)
	}
	for i, de := range ents {
		ent := e.root + rootIdxDir + uint64(i)*idxEntrySize
		e.dev.WriteU64(ent, uint64(de.label)|uint64(de.shardCount)<<32)
		e.dev.WriteU64(ent+8, uint64(de.key))
		e.dev.WriteU64(ent+16, uint64(de.kind)|uint64(de.shard)<<32)
		e.dev.WriteU64(ent+24, de.hdr)
		e.dev.Flush(ent, idxEntrySize)
	}
	e.dev.Drain()
	e.dev.WriteU64(e.root+rootIdxCount, uint64(len(ents)))
	e.dev.Persist(e.root+rootIdxCount, 8)
	return nil
}

// CreateIndex builds a secondary B+-tree index over the given property of
// nodes with the given label (§4.2 "Hybrid Indexes") and backfills it from
// the committed data. kind selects the Fig 8 variant; Hybrid is the
// paper's recommended default.
//
// Creation is safe against concurrent writers: each shard's tree is
// backfilled and published while holding that shard's commit lock, so the
// backfill sees exactly the commits that happened before it and
// commit-time maintenance (which runs under the same lock) sees the tree
// for every commit after it. No committed entry can fall between.
func (e *Engine) CreateIndex(label, key string, kind index.Kind) error {
	labelCode, err := e.dict.Encode(label)
	if err != nil {
		return err
	}
	keyCode, err := e.dict.Encode(key)
	if err != nil {
		return err
	}
	ik := indexKey{uint32(labelCode), uint32(keyCode)}

	e.idxDDL.Lock()
	defer e.idxDDL.Unlock()
	sh0 := &e.shards[0]
	sh0.idxMu.RLock()
	_, dup := sh0.indexes[ik]
	sh0.idxMu.RUnlock()
	if dup {
		return fmt.Errorf("core: index on (%s, %s) already exists", label, key)
	}
	if kind != index.Volatile {
		if int(e.dev.ReadU64(e.root+rootIdxCount))+e.nShards > maxIndexes {
			return fmt.Errorf("core: too many persistent index entries (max %d)", maxIndexes)
		}
	}

	trees := make([]*index.Tree, e.nShards)
	for s := range trees {
		if trees[s], err = index.Create(kind, e.pool, index.Options{}); err != nil {
			return err
		}
		e.enableTreeDelta(trees[s])
	}
	for s := 0; s < e.nShards; s++ {
		if err := e.backfillShard(trees[s], ik, s); err != nil {
			e.unpublishIndex(ik)
			return err
		}
	}

	if kind != index.Volatile {
		ents := e.readIndexDir()
		for s, t := range trees {
			ents = append(ents, idxDirEnt{
				label: ik.label, key: ik.key, kind: kind,
				shard: s, shardCount: e.nShards, hdr: t.Offset(),
			})
		}
		if err := e.writeIndexDir(ents); err != nil {
			e.unpublishIndex(ik)
			return err
		}
	}
	return nil
}

// backfillShard fills tree from the committed records owned by shard s
// and publishes it into the shard's index map, all under the shard's
// commit lock (the quiesce that closes the stale-snapshot window).
// Records locked by in-flight transactions still carry their committed
// pre-image — the locker's commit will apply its own index delta later,
// under this same lock. Tombstoned nodes are indexed too: their entries
// serve older snapshots until GC drops them.
//
//poseidonlint:ignore seqlock the whole scan runs under sh.commitMu (held for the ScanChunk closure), which excludes every writer to this shard's records
func (e *Engine) backfillShard(tree *index.Tree, ik indexKey, s int) error {
	sh := &e.shards[s]
	sh.commitMu.Lock()
	defer sh.commitMu.Unlock()
	var insertErr error
	n := e.nodes.Chunks()
	for ci := uint64(s); ci < n; ci += uint64(e.nShards) {
		e.nodes.ScanChunk(ci, func(id, off uint64) bool {
			rec := storage.ReadNodeRec(e.dev, off)
			if rec.Bts == 0 || rec.Label != ik.label {
				return true // uncommitted insert or different label
			}
			if v, ok := storage.PropValue(e.props, rec.Props, ik.key); ok {
				if insertErr = tree.Insert(v, id); insertErr != nil {
					return false
				}
			}
			return true
		})
		if insertErr != nil {
			return insertErr
		}
	}
	sh.idxMu.Lock()
	if _, dup := sh.indexes[ik]; dup {
		sh.idxMu.Unlock()
		return fmt.Errorf("core: index (%d,%d) already exists", ik.label, ik.key)
	}
	sh.indexes[ik] = tree
	sh.idxMu.Unlock()
	return nil
}

// unpublishIndex removes a partially created index family from every
// shard map.
func (e *Engine) unpublishIndex(ik indexKey) {
	for s := range e.shards {
		sh := &e.shards[s]
		sh.idxMu.Lock()
		delete(sh.indexes, ik)
		sh.idxMu.Unlock()
	}
}

// RebuildVolatileIndexes recreates every volatile index from scratch —
// the full-rebuild recovery path that §7.4 measures at 671 ms against the
// hybrid index's 8 ms.
func (e *Engine) RebuildVolatileIndexes() error {
	e.idxDDL.Lock()
	defer e.idxDDL.Unlock()
	sh0 := &e.shards[0]
	sh0.idxMu.RLock()
	var keys []indexKey
	for ik, t := range sh0.indexes {
		if t.Kind() == index.Volatile {
			keys = append(keys, ik)
		}
	}
	sh0.idxMu.RUnlock()
	for _, ik := range keys {
		e.unpublishIndex(ik)
		for s := 0; s < e.nShards; s++ {
			tree, err := index.Create(index.Volatile, e.pool, index.Options{})
			if err != nil {
				return err
			}
			if err := e.backfillShard(tree, ik, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// reopenIndexes re-attaches the persistent index families recorded in the
// directory. A family whose stored shard count differs from the engine's
// is replaced with empty trees (and the directory rewritten): the
// partition function changed, so every entry would be in the wrong tree;
// reconcileIndexes then rebuilds the contents from the primary tables.
func (e *Engine) reopenIndexes() error {
	type family struct {
		kind index.Kind
		ents []idxDirEnt
	}
	order := []indexKey{}
	fams := map[indexKey]*family{}
	for _, de := range e.readIndexDir() {
		ik := indexKey{de.label, de.key}
		f := fams[ik]
		if f == nil {
			f = &family{kind: de.kind}
			fams[ik] = f
			order = append(order, ik)
		}
		f.ents = append(f.ents, de)
	}
	rewrite := false
	for _, ik := range order {
		f := fams[ik]
		ok := len(f.ents) == e.nShards
		if ok {
			for s, de := range f.ents {
				if de.shard != s || de.shardCount != e.nShards || de.kind != f.kind {
					ok = false
					break
				}
			}
		}
		if ok {
			for s, de := range f.ents {
				tree, err := index.Open(de.kind, e.pool, de.hdr, index.Options{})
				if err != nil {
					return fmt.Errorf("core: reopen index (%d,%d) shard %d: %w", ik.label, ik.key, s, err)
				}
				e.enableTreeDelta(tree)
				e.shards[s].indexes[ik] = tree
			}
			continue
		}
		// Shard-count (or layout) mismatch: fresh empty trees, rebuilt by
		// reconcileIndexes. The old trees' blocks leak, as in any rebuild.
		rewrite = true
		for s := 0; s < e.nShards; s++ {
			tree, err := index.Create(f.kind, e.pool, index.Options{})
			if err != nil {
				return err
			}
			e.enableTreeDelta(tree)
			e.shards[s].indexes[ik] = tree
		}
	}
	if rewrite {
		var ents []idxDirEnt
		for _, ik := range order {
			f := fams[ik]
			for s := 0; s < e.nShards; s++ {
				ents = append(ents, idxDirEnt{
					label: ik.label, key: ik.key, kind: f.kind,
					shard: s, shardCount: e.nShards,
					hdr: e.shards[s].indexes[ik].Offset(),
				})
			}
		}
		if err := e.writeIndexDir(ents); err != nil {
			return err
		}
	}
	return nil
}

// IndexRef is a resolved secondary index: one tree per shard. Lookups
// fan out over the shard trees; entries never cross shards, so the union
// is exact. Entry-level mutations route to the tree of the id's shard
// (crash tests use them to simulate torn index updates).
type IndexRef struct {
	label, key uint32
	kind       index.Kind
	nodes      *storage.Table
	trees      []*index.Tree
}

// Kind returns the index variant.
func (r *IndexRef) Kind() index.Kind { return r.kind }

// Lookup returns the node ids indexed under v across all shards.
func (r *IndexRef) Lookup(v storage.Value) []uint64 {
	if len(r.trees) == 1 {
		return r.trees[0].Lookup(v)
	}
	var ids []uint64
	for _, t := range r.trees {
		ids = append(ids, t.Lookup(v)...)
	}
	return ids
}

// treeFor returns the shard tree owning node id's entries.
func (r *IndexRef) treeFor(id uint64) *index.Tree {
	return r.trees[r.nodes.ShardOf(id)]
}

// Contains reports whether the entry (v, id) is present.
func (r *IndexRef) Contains(v storage.Value, id uint64) bool {
	return r.treeFor(id).Contains(v, id)
}

// Insert adds the entry (v, id) to the id's shard tree.
func (r *IndexRef) Insert(v storage.Value, id uint64) error {
	return r.treeFor(id).Insert(v, id)
}

// Delete removes the entry (v, id), reporting whether it was present.
func (r *IndexRef) Delete(v storage.Value, id uint64) bool {
	return r.treeFor(id).Delete(v, id)
}

// LookupIndex returns the index for (labelCode, keyCode), if one exists.
// The query planner uses this to turn scans into IndexScans.
func (e *Engine) LookupIndex(labelCode, keyCode uint32) (*IndexRef, bool) {
	ik := indexKey{labelCode, keyCode}
	ref := &IndexRef{label: labelCode, key: keyCode, nodes: e.nodes, trees: make([]*index.Tree, e.nShards)}
	for s := range e.shards {
		sh := &e.shards[s]
		sh.idxMu.RLock()
		t := sh.indexes[ik]
		sh.idxMu.RUnlock()
		if t == nil {
			return nil, false
		}
		ref.trees[s] = t
	}
	ref.kind = ref.trees[0].Kind()
	return ref, true
}

// IndexFor resolves an index by label and property name.
func (e *Engine) IndexFor(label, key string) (*IndexRef, bool) {
	lc, ok1 := e.dict.Lookup(label)
	kc, ok2 := e.dict.Lookup(key)
	if !ok1 || !ok2 {
		return nil, false
	}
	return e.LookupIndex(uint32(lc), uint32(kc))
}

// IndexedLookup returns the ids of nodes with the given label whose
// property equals v, using the index, re-validated against the
// transaction's snapshot.
func (tx *Tx) IndexedLookup(ref *IndexRef, v storage.Value) ([]NodeSnap, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	ids := ref.Lookup(v)
	out := make([]NodeSnap, 0, len(ids))
	for _, id := range ids {
		snap, err := tx.GetNode(id)
		if err == ErrNotFound {
			continue // index entry from a version invisible to us
		}
		if err != nil {
			return nil, err
		}
		out = append(out, snap)
	}
	return out, nil
}

// IndexInfo describes one shard tree of a secondary index for
// introspection (fsck and the crash explorer).
type IndexInfo struct {
	Label  uint32
	Key    uint32
	Kind   index.Kind
	Shard  int // which shard's entries the tree holds
	Shards int // the engine's shard count
	Tree   *index.Tree
}

// Indexes returns a snapshot of the engine's secondary index trees, one
// IndexInfo per (index, shard).
func (e *Engine) Indexes() []IndexInfo {
	var out []IndexInfo
	for s := range e.shards {
		sh := &e.shards[s]
		sh.idxMu.RLock()
		for ik, t := range sh.indexes {
			out = append(out, IndexInfo{
				Label: ik.label, Key: ik.key, Kind: t.Kind(),
				Shard: s, Shards: e.nShards, Tree: t,
			})
		}
		sh.idxMu.RUnlock()
	}
	return out
}

// entState marks whether a justified index entry must be present (live
// node) or is merely tolerated (tombstoned node awaiting GC).
type entState struct{ required bool }

// reconcileIndexes repairs persistent indexes against the recovered
// primary tables. Index maintenance runs after the commit point (step 4 of
// Commit), so a crash between the two can leave the last commits' entries
// missing and their superseded entries still present — at most one torn
// commit per shard, since each shard's commit lock serializes its index
// updates. Damaged trees are rebuilt outright; otherwise the tree is
// patched entry by entry, preserving the §7.4 recovery asymptotics (one
// table scan plus work proportional to the damage). Entries that sit in
// the wrong shard's tree (possible only after a shard-count change) are
// migrated by the same patch logic.
//
//poseidonlint:ignore seqlock recovery-time repair: runs before the engine accepts transactions, single-threaded with no concurrent writers
func (e *Engine) reconcileIndexes() error {
	sh0 := &e.shards[0]
	if len(sh0.indexes) == 0 {
		return nil
	}

	// One raw scan over the recovered node table builds, per index, the
	// set of entries the primary data justifies. Tombstoned nodes keep
	// their entries until GC (updateIndexes), so they are allowed but not
	// required; live nodes are required.
	allowed := make(map[indexKey]map[index.Entry]entState, len(sh0.indexes))
	for ik := range sh0.indexes {
		allowed[ik] = make(map[index.Entry]entState)
	}
	e.nodes.Scan(func(id, off uint64) bool {
		rec := storage.ReadNodeRec(e.dev, off)
		live := rec.Ets == Infinity
		for _, p := range storage.ReadPropChain(e.props, rec.Props) {
			ik := indexKey{rec.Label, p.Key}
			set, indexed := allowed[ik]
			if !indexed {
				continue
			}
			ent := index.Entry{Key: p.Val, ID: id}
			if prev, ok := set[ent]; !ok || !prev.required {
				set[ent] = entState{required: live}
			}
		}
		return true
	})

	for ik := range sh0.indexes {
		for s := range e.shards {
			tree := e.shards[s].indexes[ik]
			if tree == nil {
				return fmt.Errorf("core: index (%d,%d) missing shard %d tree", ik.label, ik.key, s)
			}
			if probs := tree.CheckIntegrity(); len(probs) > 0 {
				if err := e.rebuildIndexShard(ik, s, tree.Kind(), allowed[ik]); err != nil {
					return err
				}
				continue
			}
			// Drop entries the primary data does not justify (the torn
			// commit's superseded values, entries for reclaimed slots) or
			// that belong to another shard.
			var extra []index.Entry
			tree.WalkLeaves(func(_ uint64, entries []index.Entry, _ uint64) bool {
				for _, ent := range entries {
					if _, ok := allowed[ik][ent]; !ok || e.nodes.ShardOf(ent.ID) != s {
						extra = append(extra, ent)
					}
				}
				return true
			})
			for _, ent := range extra {
				tree.Delete(ent.Key, ent.ID)
			}
			// Insert entries live nodes of this shard require but the torn
			// commit never got to write.
			for ent, st := range allowed[ik] {
				if st.required && e.nodes.ShardOf(ent.ID) == s && !tree.Contains(ent.Key, ent.ID) {
					if err := tree.Insert(ent.Key, ent.ID); err != nil {
						return fmt.Errorf("core: reconcile index (%d,%d) shard %d: %w", ik.label, ik.key, s, err)
					}
				}
			}
		}
	}
	return nil
}

// rebuildIndexShard replaces a structurally damaged shard tree with a
// fresh one holding the shard's required entries, and repoints the
// persistent directory entry at it. The damaged tree's blocks leak (the
// allocator has no tracing collector), which is the price of surviving
// arbitrary leaf-chain damage.
func (e *Engine) rebuildIndexShard(ik indexKey, s int, kind index.Kind, entries map[index.Entry]entState) error {
	tree, err := index.Create(kind, e.pool, index.Options{})
	if err != nil {
		return err
	}
	e.enableTreeDelta(tree)
	for ent, st := range entries {
		if !st.required || e.nodes.ShardOf(ent.ID) != s {
			continue // tombstoned nodes' entries are optional; a rebuild omits them
		}
		if err := tree.Insert(ent.Key, ent.ID); err != nil {
			return fmt.Errorf("core: rebuild index (%d,%d) shard %d: %w", ik.label, ik.key, s, err)
		}
	}
	if kind != index.Volatile {
		n := e.dev.ReadU64(e.root + rootIdxCount)
		for i := uint64(0); i < n; i++ {
			ent := e.root + rootIdxDir + i*idxEntrySize
			w0 := e.dev.ReadU64(ent)
			w2 := e.dev.ReadU64(ent + 16)
			if uint32(w0) == ik.label && uint32(e.dev.ReadU64(ent+8)) == ik.key && int(w2>>32) == s {
				e.dev.WriteU64(ent+24, tree.Offset())
				e.dev.Persist(ent+24, 8)
				break
			}
		}
	}
	e.shards[s].indexes[ik] = tree
	return nil
}
