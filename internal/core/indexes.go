package core

import (
	"fmt"

	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// CreateIndex builds a secondary B+-tree index over the given property of
// nodes with the given label (§4.2 "Hybrid Indexes") and backfills it from
// the currently committed data. kind selects the Fig 8 variant; Hybrid is
// the paper's recommended default.
func (e *Engine) CreateIndex(label, key string, kind index.Kind) error {
	labelCode, err := e.dict.Encode(label)
	if err != nil {
		return err
	}
	keyCode, err := e.dict.Encode(key)
	if err != nil {
		return err
	}
	ik := indexKey{uint32(labelCode), uint32(keyCode)}

	e.idxMu.Lock()
	if _, dup := e.indexes[ik]; dup {
		e.idxMu.Unlock()
		return fmt.Errorf("core: index on (%s, %s) already exists", label, key)
	}
	e.idxMu.Unlock()

	tree, err := index.Create(kind, e.pool, index.Options{})
	if err != nil {
		return err
	}
	if err := e.backfillIndex(tree, ik); err != nil {
		return err
	}

	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if _, dup := e.indexes[ik]; dup {
		return fmt.Errorf("core: index on (%s, %s) already exists", label, key)
	}
	if kind != index.Volatile {
		n := e.dev.ReadU64(e.root + rootIdxCount)
		if n >= maxIndexes {
			return fmt.Errorf("core: too many persistent indexes (max %d)", maxIndexes)
		}
		ent := e.root + rootIdxDir + n*idxEntrySize
		e.dev.WriteU64(ent, uint64(ik.label))
		e.dev.WriteU64(ent+8, uint64(ik.key))
		e.dev.WriteU64(ent+16, uint64(kind))
		e.dev.WriteU64(ent+24, tree.Offset())
		e.dev.Flush(ent, idxEntrySize)
		e.dev.Drain()
		e.dev.WriteU64(e.root+rootIdxCount, n+1)
		e.dev.Persist(e.root+rootIdxCount, 8)
	}
	e.indexes[ik] = tree
	return nil
}

// backfillIndex fills a fresh tree from the committed data.
func (e *Engine) backfillIndex(tree *index.Tree, ik indexKey) error {
	tx := e.Begin()
	defer tx.mustAbort()
	var insertErr error
	err := tx.ScanNodes(func(n NodeSnap) bool {
		if n.Rec.Label != ik.label {
			return true
		}
		if v, ok := n.Prop(ik.key); ok {
			if insertErr = tree.Insert(v, n.ID); insertErr != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return insertErr
}

// RebuildVolatileIndexes recreates every volatile index from scratch —
// the full-rebuild recovery path that §7.4 measures at 671 ms against the
// hybrid index's 8 ms.
func (e *Engine) RebuildVolatileIndexes() error {
	e.idxMu.Lock()
	var keys []indexKey
	for ik, t := range e.indexes {
		if t.Kind() == index.Volatile {
			keys = append(keys, ik)
		}
	}
	e.idxMu.Unlock()
	for _, ik := range keys {
		tree, err := index.Create(index.Volatile, e.pool, index.Options{})
		if err != nil {
			return err
		}
		if err := e.backfillIndex(tree, ik); err != nil {
			return err
		}
		e.idxMu.Lock()
		e.indexes[ik] = tree
		e.idxMu.Unlock()
	}
	return nil
}

// LookupIndex returns the index tree for (labelCode, keyCode), if one
// exists. The query planner uses this to turn scans into IndexScans.
func (e *Engine) LookupIndex(labelCode, keyCode uint32) (*index.Tree, bool) {
	e.idxMu.RLock()
	defer e.idxMu.RUnlock()
	t, ok := e.indexes[indexKey{labelCode, keyCode}]
	return t, ok
}

// IndexFor resolves an index by label and property name.
func (e *Engine) IndexFor(label, key string) (*index.Tree, bool) {
	lc, ok1 := e.dict.Lookup(label)
	kc, ok2 := e.dict.Lookup(key)
	if !ok1 || !ok2 {
		return nil, false
	}
	return e.LookupIndex(uint32(lc), uint32(kc))
}

// IndexedLookup returns the ids of nodes with the given label whose
// property equals v, using the index, re-validated against the
// transaction's snapshot.
func (tx *Tx) IndexedLookup(tree *index.Tree, v storage.Value) ([]NodeSnap, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	ids := tree.Lookup(v)
	out := make([]NodeSnap, 0, len(ids))
	for _, id := range ids {
		snap, err := tx.GetNode(id)
		if err == ErrNotFound {
			continue // index entry from a version invisible to us
		}
		if err != nil {
			return nil, err
		}
		out = append(out, snap)
	}
	return out, nil
}

// IndexInfo describes one secondary index for introspection (fsck and the
// crash explorer).
type IndexInfo struct {
	Label uint32
	Key   uint32
	Kind  index.Kind
	Tree  *index.Tree
}

// Indexes returns a snapshot of the engine's secondary indexes.
func (e *Engine) Indexes() []IndexInfo {
	e.idxMu.RLock()
	defer e.idxMu.RUnlock()
	out := make([]IndexInfo, 0, len(e.indexes))
	for ik, t := range e.indexes {
		out = append(out, IndexInfo{Label: ik.label, Key: ik.key, Kind: t.Kind(), Tree: t})
	}
	return out
}

// entState marks whether a justified index entry must be present (live
// node) or is merely tolerated (tombstoned node awaiting GC).
type entState struct{ required bool }

// reconcileIndexes repairs persistent indexes against the recovered
// primary tables. Index maintenance runs after the commit point (step 4 of
// Commit), so a crash between the two can leave the last commit's entries
// missing and its superseded entries still present — and commitMu
// serializes commits, so at most one commit can be torn this way. Damaged
// trees are rebuilt outright; otherwise the tree is patched entry by
// entry, preserving the §7.4 recovery asymptotics (one table scan plus
// work proportional to the damage).
func (e *Engine) reconcileIndexes() error {
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if len(e.indexes) == 0 {
		return nil
	}

	// One raw scan over the recovered node table builds, per index, the
	// set of entries the primary data justifies. Tombstoned nodes keep
	// their entries until GC (updateIndexes), so they are allowed but not
	// required; live nodes are required.
	allowed := make(map[indexKey]map[index.Entry]entState, len(e.indexes))
	for ik := range e.indexes {
		allowed[ik] = make(map[index.Entry]entState)
	}
	e.nodes.Scan(func(id, off uint64) bool {
		rec := storage.ReadNodeRec(e.dev, off)
		live := rec.Ets == Infinity
		for _, p := range storage.ReadPropChain(e.props, rec.Props) {
			ik := indexKey{rec.Label, p.Key}
			set, indexed := allowed[ik]
			if !indexed {
				continue
			}
			ent := index.Entry{Key: p.Val, ID: id}
			if prev, ok := set[ent]; !ok || !prev.required {
				set[ent] = entState{required: live}
			}
		}
		return true
	})

	for ik, tree := range e.indexes {
		if probs := tree.CheckIntegrity(); len(probs) > 0 {
			if err := e.rebuildIndexLocked(ik, tree.Kind(), allowed[ik]); err != nil {
				return err
			}
			continue
		}
		// Drop entries the primary data does not justify (the torn
		// commit's superseded values, or entries for reclaimed slots).
		var extra []index.Entry
		tree.WalkLeaves(func(_ uint64, entries []index.Entry, _ uint64) bool {
			for _, ent := range entries {
				if _, ok := allowed[ik][ent]; !ok {
					extra = append(extra, ent)
				}
			}
			return true
		})
		for _, ent := range extra {
			tree.Delete(ent.Key, ent.ID)
		}
		// Insert entries live nodes require but the torn commit never got
		// to write.
		for ent, st := range allowed[ik] {
			if st.required && !tree.Contains(ent.Key, ent.ID) {
				if err := tree.Insert(ent.Key, ent.ID); err != nil {
					return fmt.Errorf("core: reconcile index (%d,%d): %w", ik.label, ik.key, err)
				}
			}
		}
	}
	return nil
}

// rebuildIndexLocked replaces a structurally damaged index with a fresh
// tree holding the required entries, and repoints the persistent directory
// entry at it. The damaged tree's blocks leak (the allocator has no
// tracing collector), which is the price of surviving arbitrary leaf-chain
// damage. Caller holds idxMu.
func (e *Engine) rebuildIndexLocked(ik indexKey, kind index.Kind, entries map[index.Entry]entState) error {
	tree, err := index.Create(kind, e.pool, index.Options{})
	if err != nil {
		return err
	}
	for ent, st := range entries {
		if !st.required {
			continue // tombstoned nodes' entries are optional; a rebuild omits them
		}
		if err := tree.Insert(ent.Key, ent.ID); err != nil {
			return fmt.Errorf("core: rebuild index (%d,%d): %w", ik.label, ik.key, err)
		}
	}
	if kind != index.Volatile {
		n := e.dev.ReadU64(e.root + rootIdxCount)
		for i := uint64(0); i < n; i++ {
			ent := e.root + rootIdxDir + i*idxEntrySize
			if uint32(e.dev.ReadU64(ent)) == ik.label && uint32(e.dev.ReadU64(ent+8)) == ik.key {
				e.dev.WriteU64(ent+24, tree.Offset())
				e.dev.Persist(ent+24, 8)
				break
			}
		}
	}
	e.indexes[ik] = tree
	return nil
}
