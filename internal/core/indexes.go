package core

import (
	"fmt"

	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// CreateIndex builds a secondary B+-tree index over the given property of
// nodes with the given label (§4.2 "Hybrid Indexes") and backfills it from
// the currently committed data. kind selects the Fig 8 variant; Hybrid is
// the paper's recommended default.
func (e *Engine) CreateIndex(label, key string, kind index.Kind) error {
	labelCode, err := e.dict.Encode(label)
	if err != nil {
		return err
	}
	keyCode, err := e.dict.Encode(key)
	if err != nil {
		return err
	}
	ik := indexKey{uint32(labelCode), uint32(keyCode)}

	e.idxMu.Lock()
	if _, dup := e.indexes[ik]; dup {
		e.idxMu.Unlock()
		return fmt.Errorf("core: index on (%s, %s) already exists", label, key)
	}
	e.idxMu.Unlock()

	tree, err := index.Create(kind, e.pool, index.Options{})
	if err != nil {
		return err
	}
	if err := e.backfillIndex(tree, ik); err != nil {
		return err
	}

	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if _, dup := e.indexes[ik]; dup {
		return fmt.Errorf("core: index on (%s, %s) already exists", label, key)
	}
	if kind != index.Volatile {
		n := e.dev.ReadU64(e.root + rootIdxCount)
		if n >= maxIndexes {
			return fmt.Errorf("core: too many persistent indexes (max %d)", maxIndexes)
		}
		ent := e.root + rootIdxDir + n*idxEntrySize
		e.dev.WriteU64(ent, uint64(ik.label))
		e.dev.WriteU64(ent+8, uint64(ik.key))
		e.dev.WriteU64(ent+16, uint64(kind))
		e.dev.WriteU64(ent+24, tree.Offset())
		e.dev.Flush(ent, idxEntrySize)
		e.dev.Drain()
		e.dev.WriteU64(e.root+rootIdxCount, n+1)
		e.dev.Persist(e.root+rootIdxCount, 8)
	}
	e.indexes[ik] = tree
	return nil
}

// backfillIndex fills a fresh tree from the committed data.
func (e *Engine) backfillIndex(tree *index.Tree, ik indexKey) error {
	tx := e.Begin()
	defer tx.mustAbort()
	var insertErr error
	err := tx.ScanNodes(func(n NodeSnap) bool {
		if n.Rec.Label != ik.label {
			return true
		}
		if v, ok := n.Prop(ik.key); ok {
			if insertErr = tree.Insert(v, n.ID); insertErr != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return insertErr
}

// RebuildVolatileIndexes recreates every volatile index from scratch —
// the full-rebuild recovery path that §7.4 measures at 671 ms against the
// hybrid index's 8 ms.
func (e *Engine) RebuildVolatileIndexes() error {
	e.idxMu.Lock()
	var keys []indexKey
	for ik, t := range e.indexes {
		if t.Kind() == index.Volatile {
			keys = append(keys, ik)
		}
	}
	e.idxMu.Unlock()
	for _, ik := range keys {
		tree, err := index.Create(index.Volatile, e.pool, index.Options{})
		if err != nil {
			return err
		}
		if err := e.backfillIndex(tree, ik); err != nil {
			return err
		}
		e.idxMu.Lock()
		e.indexes[ik] = tree
		e.idxMu.Unlock()
	}
	return nil
}

// LookupIndex returns the index tree for (labelCode, keyCode), if one
// exists. The query planner uses this to turn scans into IndexScans.
func (e *Engine) LookupIndex(labelCode, keyCode uint32) (*index.Tree, bool) {
	e.idxMu.RLock()
	defer e.idxMu.RUnlock()
	t, ok := e.indexes[indexKey{labelCode, keyCode}]
	return t, ok
}

// IndexFor resolves an index by label and property name.
func (e *Engine) IndexFor(label, key string) (*index.Tree, bool) {
	lc, ok1 := e.dict.Lookup(label)
	kc, ok2 := e.dict.Lookup(key)
	if !ok1 || !ok2 {
		return nil, false
	}
	return e.LookupIndex(uint32(lc), uint32(kc))
}

// IndexedLookup returns the ids of nodes with the given label whose
// property equals v, using the index, re-validated against the
// transaction's snapshot.
func (tx *Tx) IndexedLookup(tree *index.Tree, v storage.Value) ([]NodeSnap, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	ids := tree.Lookup(v)
	out := make([]NodeSnap, 0, len(ids))
	for _, id := range ids {
		snap, err := tx.GetNode(id)
		if err == ErrNotFound {
			continue // index entry from a version invisible to us
		}
		if err != nil {
			return nil, err
		}
		out = append(out, snap)
	}
	return out, nil
}
