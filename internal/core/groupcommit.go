package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// Group commit: concurrent single-shard committers enqueue into their
// shard's commit epoch instead of each paying a full drain/fence cycle.
// The first committer to find the queue leaderless becomes the epoch
// leader; it forms an epoch (up to Config.GroupCommit.MaxBatch members),
// persists the whole batch behind one batched undo-log append (a single
// publication fence, pmemobj.SnapshotAll), one lane commit and one
// shared lock-release drain, then wakes every member. Committers
// arriving while an epoch persists queue up and form the next epoch —
// with MaxDelay zero, batching comes purely from that backpressure. A
// leader whose own transaction has committed hands any refilled queue to
// a detached drainer goroutine rather than draining it itself, so no
// caller's commit latency exceeds its own epoch.
//
// Epochs never abort wholesale for capacity reasons: a batch whose undo
// images would overflow the shard's lane is split into smaller groups
// (see processGroup), degrading throughput instead of failing members.

// groupState is one shard's commit-epoch queue.
type groupState struct {
	mu      sync.Mutex
	pending []*groupReq
	// leading is true while some goroutine is draining the queue; every
	// other committer parks on its request's done channel.
	leading bool
}

// groupReq is one transaction's seat in a commit epoch. The done channel
// is buffered so the leader's result delivery never blocks.
type groupReq struct {
	tx   *Tx
	done chan error
}

// commitGrouped commits the transaction through its shard's commit
// epoch. Caller holds tx.endMu and has verified the transaction is live,
// has writes, and touches only shard s.
func (tx *Tx) commitGrouped(s int) error {
	e := tx.e
	g := &e.shards[s].group
	req := &groupReq{tx: tx, done: make(chan error, 1)}
	g.mu.Lock()
	g.pending = append(g.pending, req)
	if g.leading {
		g.mu.Unlock()
		return <-req.done
	}
	g.leading = true
	g.mu.Unlock()

	// This goroutine leads only until its own result is in — its request
	// is in the first batch unless MaxBatch truncation pushes it out, so
	// that is normally one epoch. Under sustained load the queue refills
	// while an epoch persists; draining it here would keep this caller
	// leading (and its Commit from returning) indefinitely even though
	// its transaction persisted in the first epoch. Instead leadership
	// hands off to a detached drainer and the caller's commit latency
	// stays bounded by its own epoch.
	for e.leadEpoch(s) {
		select {
		case err := <-req.done:
			g.mu.Lock()
			if len(g.pending) == 0 {
				g.leading = false
				g.mu.Unlock()
			} else {
				g.mu.Unlock()
				go e.drainEpochs(s)
			}
			return err
		default:
		}
	}
	return <-req.done
}

// leadEpoch forms one epoch from shard s's queue and commits it. It
// returns false when the queue was empty — leadership has then been
// released — and true after committing an epoch, in which case the
// caller still leads and must either loop or hand off.
func (e *Engine) leadEpoch(s int) bool {
	g := &e.shards[s].group
	cfg := e.cfg.GroupCommit
	if cfg.MaxDelay > 0 {
		g.mu.Lock()
		n := len(g.pending)
		g.mu.Unlock()
		if n > 0 && n < cfg.MaxBatch {
			time.Sleep(cfg.MaxDelay)
		}
	}
	g.mu.Lock()
	batch := g.pending
	if len(batch) > cfg.MaxBatch {
		batch = batch[:cfg.MaxBatch:cfg.MaxBatch]
		g.pending = append([]*groupReq(nil), g.pending[cfg.MaxBatch:]...)
	} else {
		g.pending = nil
	}
	if len(batch) == 0 {
		g.leading = false
		g.mu.Unlock()
		return false
	}
	g.mu.Unlock()
	e.commitEpoch(s, batch)
	return true
}

// drainEpochs leads shard s's commit epochs until the queue empties.
// Runs detached after a committer-leader's own epoch completed with
// members still queued (see commitGrouped); every member it commits has
// a parked caller, so the goroutine cannot outlive the commits it
// serves.
func (e *Engine) drainEpochs(s int) {
	for e.leadEpoch(s) {
	}
}

// CommitBatch commits the given transactions as group-commit epochs,
// regardless of Config.GroupCommit.Enabled: single-shard transactions
// are grouped per shard (in ascending shard order) and committed through
// the epoch path; cross-shard ones fall back to the per-transaction
// path. The caller must own every transaction and not use them
// concurrently. Returns one result per transaction, in input order.
//
// This is the deterministic entry point: bulk loaders use it to form
// epochs without relying on scheduler-dependent queue contention, and
// the crash-point explorer uses it to get a replayable device-event
// sequence through the epoch machinery.
func (e *Engine) CommitBatch(txs []*Tx) []error {
	errs := make([]error, len(txs))
	type seat struct {
		idx int
		req *groupReq
	}
	groups := make(map[int][]*groupReq)
	var seats []seat
	for i, tx := range txs {
		tx.endMu.Lock()
		if tx.done.Load() {
			errs[i] = ErrTxDone
			tx.endMu.Unlock()
			continue
		}
		if err := tx.ctxErr(); err != nil {
			tx.setAbortReason(AbortCancelled)
			_ = tx.abortLocked()
			errs[i] = err
			tx.endMu.Unlock()
			continue
		}
		if len(tx.order) == 0 {
			e.tel.TxCommits.Inc()
			tx.finish()
			tx.endMu.Unlock()
			continue
		}
		shardOrder := tx.commitShards()
		if len(shardOrder) > 1 {
			errs[i] = tx.commitLocked(shardOrder)
			tx.endMu.Unlock()
			continue
		}
		req := &groupReq{tx: tx, done: make(chan error, 1)}
		groups[shardOrder[0]] = append(groups[shardOrder[0]], req)
		seats = append(seats, seat{i, req})
	}
	shards := make([]int, 0, len(groups))
	for s := range groups {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		e.commitEpoch(s, groups[s])
	}
	for _, st := range seats {
		errs[st.idx] = <-st.req.done
		st.req.tx.endMu.Unlock()
	}
	return errs
}

// commitEpoch commits one epoch's members on shard s: cancelled members
// are aborted up front, the rest are packed into groups sized to the
// shard's undo-log lane and persisted group by group. Every member's
// result is delivered on its done channel.
func (e *Engine) commitEpoch(s int, reqs []*groupReq) {
	live := make([]*groupReq, 0, len(reqs))
	for _, req := range reqs {
		if err := req.tx.ctxErr(); err != nil {
			req.tx.setAbortReason(AbortCancelled)
			_ = req.tx.abortLocked()
			req.done <- err
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	// Pack members into lane-budget groups up front. The estimate is
	// conservative but approximate; a group that still overflows the
	// lane degrades further by splitting inside processGroup.
	budget := e.laneBudget(s)
	var group []*groupReq
	var cost uint64
	for _, req := range live {
		c := estimateUndo(req.tx)
		if len(group) > 0 && cost+c > budget {
			e.groupSplits.Add(1)
			e.processGroup(s, group)
			group, cost = nil, 0
		}
		group = append(group, req)
		cost += c
	}
	e.processGroup(s, group)
}

// laneBudget returns the undo-log bytes an epoch may plan to use on
// shard s's lane: the lane capacity minus its header, with a safety
// margin for allocator metadata the estimate cannot see.
func (e *Engine) laneBudget(s int) uint64 {
	laneCap := e.pool.LaneCap(e.shards[s].lane)
	if laneCap <= pmemobj.LogHeaderBytes {
		return 1
	}
	return (laneCap - pmemobj.LogHeaderBytes) * 7 / 8
}

// estimateUndo approximates the undo-log bytes committing tx consumes:
// one record snapshot per dirty object, a record+bitmap-word snapshot
// per freed old property record, and a bitmap-word snapshot per new
// property record. Coverage dedup only shrinks the real usage, so the
// estimate errs high; the slack covers chunk-header snapshots.
func estimateUndo(tx *Tx) uint64 {
	total := uint64(0)
	for _, key := range tx.order {
		d := tx.dirty[key]
		recSize := uint64(storage.NodeRecordSize)
		if d.key.kind == kindRel {
			recSize = storage.RelRecordSize
		}
		total += pmemobj.SnapshotCost(recSize)
		if d.hasOld && d.propsChanged && !d.isDelete {
			oldRecs := uint64(len(d.oldProps)+storage.PItemsMax-1) / storage.PItemsMax
			total += oldRecs * (pmemobj.SnapshotCost(storage.PropRecordSize) + pmemobj.SnapshotCost(8))
		}
		if d.propsChanged && !d.isDelete {
			newRecs := uint64(len(d.ver.props)+storage.PItemsMax-1) / storage.PItemsMax
			total += newRecs * pmemobj.SnapshotCost(8)
		}
	}
	return total + 512
}

// groupRanges pre-collects every persistent range the group's members
// are known to touch — dirty records, the old property records an
// update frees, and their occupancy-bitmap words — so one SnapshotAll
// publishes them behind a single fence. applyDirty's own Snapshot calls
// then dedup against the coverage; only ranges unknown before slot
// allocation (fresh bitmap words, chunk headers) still log individually.
func (e *Engine) groupRanges(reqs []*groupReq) []pmemobj.Range {
	var out []pmemobj.Range
	for _, req := range reqs {
		tx := req.tx
		for _, key := range tx.order {
			d := tx.dirty[key]
			off := tx.recordOffset(d.key)
			recSize := uint64(storage.NodeRecordSize)
			if d.key.kind == kindRel {
				recSize = storage.RelRecordSize
			}
			out = append(out, pmemobj.Range{Off: off, N: recSize})
			if d.hasOld && d.propsChanged && !d.isDelete {
				head := d.oldNode.Props
				if d.key.kind == kindRel {
					head = d.oldRel.Props
				}
				for id := head; id != storage.NilID; {
					poff, ok := e.props.RecordOffset(id)
					if !ok {
						break
					}
					out = append(out, pmemobj.Range{Off: poff, N: storage.PropRecordSize})
					if w, ok := e.props.BitmapWordOff(id); ok {
						out = append(out, pmemobj.Range{Off: w, N: 8})
					}
					id = e.dev.ReadU64(poff + storage.PNext)
				}
			}
		}
	}
	return out
}

// processGroup persists one lane-sized group of single-shard
// transactions as a unit: the commit steps of Tx.commitLocked, with the
// per-transaction fences amortized over the group. A group whose undo
// images overflow the lane despite the pre-sizing splits in half and
// retries — members are only aborted for the same reasons a solo commit
// would abort them.
func (e *Engine) processGroup(s int, reqs []*groupReq) {
	if len(reqs) == 0 {
		return
	}
	sh := &e.shards[s]
	order := []int{s}
	e.lockShards(order, nil)
	locked := true
	defer func() {
		if locked {
			e.unlockShards(order)
		}
	}()

	// Step 1: preserve superseded committed versions, per member.
	type pushedVer struct {
		c *chain
		v *version
	}
	var pushed []pushedVer
	for _, req := range reqs {
		tx := req.tx
		for _, key := range tx.order {
			d := tx.dirty[key]
			if !d.hasOld || d.isDelete {
				continue
			}
			var v *version
			if d.key.kind == kindNode {
				old := d.oldNode
				v = &version{bts: old.Bts, ets: tx.id, node: &old, props: d.oldProps}
			} else {
				old := d.oldRel
				v = &version{bts: old.Bts, ets: tx.id, rel: &old, props: d.oldProps}
			}
			c := tx.chainsForKey(d.key).getOrCreate(d.key.id)
			c.push(v)
			pushed = append(pushed, pushedVer{c, v})
		}
	}
	unpush := func() {
		for _, p := range pushed {
			p.c.remove(p.v)
		}
	}

	// Step 2: one lane transaction for the whole group, fronted by the
	// batched snapshot — the epoch's single publication fence.
	ranges := e.groupRanges(reqs)
	var err error
	for {
		err = e.pool.RunTxLane(sh.lane, func(ptx *pmemobj.Tx) error {
			if err := ptx.SnapshotAll(ranges); err != nil {
				return err
			}
			for _, req := range reqs {
				tx := req.tx
				for _, key := range tx.order {
					if err := tx.applyDirty(ptx, tx.dirty[key]); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if !errors.Is(err, storage.ErrShardFull) {
			break
		}
		// Reserve property capacity outside the commit lock (chunk
		// appends mutate global allocator state), summed over the
		// group, then retry. Sorted iteration keeps the device-event
		// sequence deterministic for crash-point replay.
		e.unlockShards(order)
		locked = false
		needs := make(map[int]int)
		for _, req := range reqs {
			for ns, n := range req.tx.propNeeds() {
				needs[ns] += n
			}
		}
		nss := make([]int, 0, len(needs))
		for ns := range needs {
			nss = append(nss, ns)
		}
		sort.Ints(nss)
		var rerr error
		for _, ns := range nss {
			if ferr := e.props.EnsureShardFreeN(ns, needs[ns]); ferr != nil {
				rerr = ferr
				break
			}
		}
		if rerr != nil {
			// Re-acquire the shard lock before leaving the loop so every
			// exit holds it: the error paths below unlock unconditionally,
			// and unlocking an unheld commitMu would panic (or release a
			// concurrent committer's lock).
			e.lockShards(order, nil)
			locked = true
			err = rerr
			break
		}
		e.lockShards(order, nil)
		locked = true
	}
	if errors.Is(err, pmemobj.ErrLogFull) && len(reqs) > 1 {
		// The lane rolled the whole group back. Degrade, don't abort:
		// split in half and retry each independently (each half
		// re-runs step 1 for its members).
		unpush()
		e.unlockShards(order)
		locked = false
		e.groupSplits.Add(1)
		mid := len(reqs) / 2
		e.processGroup(s, reqs[:mid])
		e.processGroup(s, reqs[mid:])
		return
	}
	if err != nil {
		// Same failure semantics as a solo commit: the lane rolled
		// everything back; abort the members (after releasing the shard
		// lock — aborts re-acquire it to release inserted slots).
		unpush()
		e.unlockShards(order)
		locked = false
		werr := fmt.Errorf("core: commit failed: %w", err)
		for _, req := range reqs {
			req.tx.setAbortReason(AbortCommitFailed)
			_ = req.tx.abortLocked()
			req.done <- werr
		}
		return
	}

	// Step 3: release every member's write locks behind one drain.
	for _, req := range reqs {
		tx := req.tx
		for _, key := range tx.order {
			off := tx.recordOffset(key)
			e.dev.WriteU64(off, 0) // txn-id is field 0 of both record types
			e.dev.Flush(off, 8)
		}
	}
	e.dev.Drain()

	// The dirty versions are now redundant (see Tx.commitLocked).
	for _, req := range reqs {
		tx := req.tx
		for _, key := range tx.order {
			d := tx.dirty[key]
			tx.chainsForKey(d.key).getOrCreate(d.key.id).remove(d.ver)
		}
	}

	// Step 4: index maintenance and GC bookkeeping under the shard
	// lock, one delta publication for the whole group.
	for _, req := range reqs {
		req.tx.updateIndexes()
		req.tx.enqueueGC()
	}
	e.publishIndexDeltas(order)
	sh.commits.Add(uint64(len(reqs)))
	e.groupEpochs.Add(1)
	e.groupMembers.Add(uint64(len(reqs)))
	e.unlockShards(order)
	locked = false
	for _, req := range reqs {
		e.tel.TxCommits.Inc()
		req.tx.finish()
		req.done <- nil
	}
}
