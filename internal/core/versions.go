package core

import (
	"sync"
	"sync/atomic"

	"poseidon/internal/storage"
)

// Volatile MVCC sidecars (§5.1/§5.2). Each record's persistent part
// carries txn-id/bts/ets; the volatile part — the paper's "pointer" field
// to the DRAM-resident dirty list, and the read timestamp rts — lives
// here. Both are re-initialized (empty) after a restart, which §5.1
// explicitly allows for rts.

// version is one DRAM-resident version of a node or relationship: either
// an uncommitted dirty version created by an in-flight transaction
// (txnID != 0) or a superseded committed version kept for older readers
// until garbage collection.
type version struct {
	txnID     uint64 // owner while uncommitted, 0 once superseded-committed
	bts, ets  uint64 // visibility window once committed
	tombstone bool   // version represents a deletion

	node  *storage.NodeRec // exactly one of node/rel is set
	rel   *storage.RelRec
	props []storage.Prop
}

// visibleAt reports whether the version is visible to a reader at ts.
func (v *version) visibleAt(ts uint64) bool {
	return v.txnID == 0 && v.bts <= ts && ts < v.ets
}

// chain is the per-object volatile version list, newest first.
type chain struct {
	mu       sync.Mutex
	versions []*version
}

const chainShards = 64

type chainShard struct {
	mu sync.Mutex
	m  map[uint64]*chain
}

// chainTable maps record ids to their volatile version chains. It stands
// in for the per-record volatile pointer field of Fig 2. The live counter
// lets transaction-end GC skip the shard sweep entirely when no volatile
// versions exist (the common read-only steady state).
type chainTable struct {
	shards [chainShards]chainShard
	live   atomic.Int64
}

func newChainTable() *chainTable {
	t := &chainTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*chain)
	}
	return t
}

func (t *chainTable) shard(id uint64) *chainShard {
	return &t.shards[id%chainShards]
}

// get returns the chain for id, or nil if the object has no volatile
// versions (the common case: read straight from PMem).
func (t *chainTable) get(id uint64) *chain {
	s := t.shard(id)
	s.mu.Lock()
	c := s.m[id]
	s.mu.Unlock()
	return c
}

// getOrCreate returns the chain for id, creating it if needed.
func (t *chainTable) getOrCreate(id uint64) *chain {
	s := t.shard(id)
	s.mu.Lock()
	c := s.m[id]
	if c == nil {
		c = &chain{}
		s.m[id] = c
		t.live.Add(1)
	}
	s.mu.Unlock()
	return c
}

// drop removes an empty chain.
func (t *chainTable) drop(id uint64) {
	s := t.shard(id)
	s.mu.Lock()
	if c := s.m[id]; c != nil {
		c.mu.Lock()
		if len(c.versions) == 0 {
			delete(s.m, id)
			t.live.Add(-1)
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()
}

// push prepends a version (newest first).
func (c *chain) push(v *version) {
	c.mu.Lock()
	c.versions = append([]*version{v}, c.versions...)
	c.mu.Unlock()
}

// remove deletes the exact version pointer from the chain.
func (c *chain) remove(v *version) {
	c.mu.Lock()
	for i, cur := range c.versions {
		if cur == v {
			c.versions = append(c.versions[:i], c.versions[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// findVisible returns the version visible at ts, if any. It also reports
// how many versions were inspected — the chain-walk length MVTO read
// performance depends on (telemetry feeds it into a histogram).
func (c *chain) findVisible(ts uint64) (*version, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, v := range c.versions {
		if v.visibleAt(ts) {
			return v, uint64(i + 1)
		}
	}
	return nil, uint64(len(c.versions))
}

// prune drops committed versions invisible to every transaction at or
// after minActive, returning the number of remaining versions.
func (c *chain) prune(minActive uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.versions[:0]
	for _, v := range c.versions {
		if v.txnID != 0 || v.ets > minActive {
			kept = append(kept, v)
		}
	}
	// Zero the tail so dropped versions are collectable.
	for i := len(kept); i < len(c.versions); i++ {
		c.versions[i] = nil
	}
	c.versions = kept
	return len(kept)
}

// --- read timestamps (volatile, sharded) ---

const rtsShards = 64

type rtsShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

// rtsTable tracks the latest reader timestamp per record (§5.1). Being
// volatile, it resets to zero after recovery, which conservatively allows
// the first post-restart writers to proceed.
type rtsTable struct {
	shards [rtsShards]rtsShard
}

func newRTSTable() *rtsTable {
	t := &rtsTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]uint64)
	}
	return t
}

// bump raises the rts of id to ts if larger.
func (t *rtsTable) bump(id, ts uint64) {
	s := &t.shards[id%rtsShards]
	s.mu.Lock()
	if s.m[id] < ts {
		s.m[id] = ts
	}
	s.mu.Unlock()
}

// get returns the current rts of id (0 if never read).
func (t *rtsTable) get(id uint64) uint64 {
	s := &t.shards[id%rtsShards]
	s.mu.Lock()
	v := s.m[id]
	s.mu.Unlock()
	return v
}

// forget clears the rts of id (after the record slot is reused).
func (t *rtsTable) forget(id uint64) {
	s := &t.shards[id%rtsShards]
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}
