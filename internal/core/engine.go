package core

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/dict"
	"poseidon/internal/index"
	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// Config configures an Engine.
type Config struct {
	// Mode selects PMem (persistent, Optane-like latencies) or DRAM (the
	// volatile baseline). Default PMem.
	Mode Mode
	// PoolSize is the device capacity in bytes (default 256 MiB).
	PoolSize int
	// Profile overrides the latency model; nil uses the mode's default.
	Profile *pmem.Profile
	// CacheBytes sizes the simulated CPU cache for the PMem device
	// (default 4 MiB; ignored in DRAM mode).
	CacheBytes int
	// LogCap sizes the pmemobj undo log (default 4 MiB).
	LogCap uint64
	// Shards partitions the engine's MVTO state, secondary indexes and
	// commit pipeline by record id range (chunk-granular striping).
	// 1 reproduces the original single-monitor behavior; 0 defaults to
	// GOMAXPROCS capped at maxShardLanes, overridable with the
	// POSEIDON_SHARDS environment variable (the CI race matrix uses it).
	// Shard ownership is volatile — any shard count opens any image.
	Shards int
	// GroupCommit batches concurrent single-shard commits into per-shard
	// epochs: one leader persists the whole batch behind a single set of
	// fences and wakes the group. Off by default (per-transaction
	// commits, exactly the pre-batching behavior).
	GroupCommit GroupCommitConfig
	// IndexDelta absorbs secondary-index updates in a small persistent
	// delta per tree, merged into the B+-tree outside the commit path
	// (see index.Tree). Off by default.
	IndexDelta IndexDeltaConfig
}

// GroupCommitConfig tunes per-shard commit epochs (the Blizzard-style
// batching of persistence barriers across concurrent writers).
type GroupCommitConfig struct {
	// Enabled turns group commit on. Cross-shard transactions always
	// fall back to the per-transaction commit path.
	Enabled bool
	// MaxBatch bounds the transactions one epoch commits together
	// (default 32).
	MaxBatch int
	// MaxDelay bounds how long an epoch leader waits for the batch to
	// fill before draining. Zero (the default) drains whatever is
	// already queued — batching then comes purely from backpressure:
	// committers arriving while an epoch persists form the next one.
	MaxDelay time.Duration
}

// IndexDeltaConfig tunes the LSM-style secondary-index delta layer.
type IndexDeltaConfig struct {
	// Enabled routes index maintenance through per-tree deltas.
	Enabled bool
	// MergeEvery starts a background goroutine that merges deltas into
	// the base trees at this interval. Zero merges inline only (when a
	// delta fills, under the shard commit lock) — the deterministic
	// mode the crash-point explorer needs.
	MergeEvery time.Duration
}

func (c *Config) fill() {
	if c.PoolSize == 0 {
		c.PoolSize = 256 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 4 << 20
	}
	if c.LogCap == 0 {
		c.LogCap = 4 << 20
	}
	if c.Shards == 0 {
		c.Shards = defaultShards()
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Shards > maxShardLanes {
		c.Shards = maxShardLanes
	}
	if c.GroupCommit.Enabled && c.GroupCommit.MaxBatch <= 0 {
		c.GroupCommit.MaxBatch = 32
	}
}

func defaultShards() int {
	if s := os.Getenv("POSEIDON_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	n := runtime.GOMAXPROCS(0)
	if n > maxShardLanes {
		n = maxShardLanes
	}
	return n
}

// Root object layout. The lane directory extends the original layout;
// both sizes land in the same allocator class and freshly allocated
// blocks are zeroed, so images written before the extension read a zero
// lane count and remain fully compatible.
const (
	rootNodes    = 0
	rootRels     = 8
	rootProps    = 16
	rootDict     = 24
	rootAux      = 32 // auxiliary subsystem root (JIT code cache)
	rootIdxCount = 40
	rootIdxDir   = 48 // maxIndexes × idxEntrySize
	idxEntrySize = 32 // label|shardCount u64, key u64, kind|shard u64, hdr u64
	maxIndexes   = 64

	// Undo-log lane directory: one durable region per shard so crash
	// recovery can roll back every lane's in-flight commit, whatever
	// shard count the engine reopens with.
	rootLaneCount = rootIdxDir + maxIndexes*idxEntrySize
	rootLaneDir   = rootLaneCount + 8 // maxShardLanes × laneEntrySize
	laneEntrySize = 16                // log offset u64, log capacity u64
	maxShardLanes = 64
	rootSize      = rootLaneDir + maxShardLanes*laneEntrySize
)

// indexKey identifies a secondary index: nodes with a label, keyed by a
// property.
type indexKey struct {
	label uint32
	key   uint32
}

// engineShard holds everything the engine serializes per id-range shard:
// the MVTO bookkeeping, the commit lock gating the shard's undo-log lane,
// the shard's slice of every secondary index, and its GC queue. A record
// belongs to the shard owning its chunk (chunk index mod shard count), so
// all persistent ranges a commit touches are covered by the commit locks
// it holds — the invariant that keeps concurrent lane logs disjoint.
type engineShard struct {
	// commitMu is the shard commit lock. It serializes, per shard:
	// operation-time slot inserts, the commit critical section (lane
	// transaction through index update), abort-time slot releases, and
	// index backfill quiesce. Cross-shard transactions take several in
	// ascending shard order — only via Engine.lockShards.
	commitMu sync.Mutex
	lane     int // pmemobj undo-log lane (0 = built-in log when unsharded)

	activeMu sync.Mutex
	active   map[uint64]struct{}

	nodeChains *chainTable
	relChains  *chainTable
	nodeRTS    *rtsTable
	relRTS     *rtsTable

	gcMu    sync.Mutex
	gcQueue []objKey

	// group is the shard's commit-epoch queue (see groupcommit.go).
	group groupState

	// Per-shard slice of the secondary indexes: tree s of index (label,
	// key) holds entries only for node ids owned by shard s.
	idxMu   sync.RWMutex
	indexes map[indexKey]*index.Tree

	// Contention and balance statistics (read by telemetry gauges).
	commits       atomic.Uint64 // commits whose lock set includes this shard
	lockWaitNs    atomic.Uint64 // time commits spent waiting on commitMu
	lockContended atomic.Uint64 // commit-lock acquisitions that found it held
	homeInserts   atomic.Uint64 // records placed in this shard at op time
}

// Engine is the PMem graph engine.
type Engine struct {
	mode Mode
	cfg  Config

	dev  *pmem.Device
	pool *pmemobj.Pool
	dict *dict.Dict

	nodes *storage.Table
	rels  *storage.Table
	props *storage.Table

	root uint64

	// Global MVTO clock: transaction ids, commit timestamps and the
	// recovery watermark all come from this one atomic counter, which is
	// what keeps sharded commits serializable exactly like the
	// single-monitor design (see DESIGN.md "Sharded core").
	clock atomic.Uint64

	// beginMu closes the draw-vs-register window: Begin holds the read
	// side while it draws a timestamp and registers it in its home
	// shard's active set, and minActive takes the write side before
	// snapshotting the clock. Without it a GC pass racing a Begin could
	// compute a minimum past the just-drawn id and prune chain versions
	// the new transaction is entitled to read.
	beginMu sync.RWMutex

	nShards      int
	shards       []engineShard
	allShards    []int         // 0..nShards-1, the lockAllShards acquisition order
	crossCommits atomic.Uint64 // commits that locked more than one shard

	// Group-commit accounting (see GroupCommitStats).
	groupEpochs  atomic.Uint64 // epochs persisted
	groupMembers atomic.Uint64 // transactions committed through epochs
	groupSplits  atomic.Uint64 // epochs split to fit the shard's undo lane

	// mergeStop terminates the background index-delta merger, when one
	// was started (Config.IndexDelta.MergeEvery > 0).
	mergeStop chan struct{}
	mergeDone chan struct{}

	// idxDDL serializes index creation and rebuild against each other
	// (not against commits — those synchronize per shard).
	idxDDL sync.Mutex

	// tel holds the metric handles; the zero value (all nil) is the
	// disabled no-op path.
	tel Telemetry

	closed atomic.Bool
}

// Open creates a fresh engine on a new device. Use Reopen to attach to a
// device that survived a crash.
func Open(cfg Config) (*Engine, error) {
	cfg.fill()
	dev, err := newDevice(cfg)
	if err != nil {
		return nil, err
	}
	pool, err := pmemobj.Create(dev, pmemobj.Options{LogCap: cfg.LogCap})
	if err != nil {
		return nil, fmt.Errorf("core: create pool: %w", err)
	}
	e := newEngine(cfg, dev, pool)

	d, err := dict.Create(pool)
	if err != nil {
		return nil, err
	}
	e.dict = d
	if e.nodes, err = storage.CreateTable(pool, storage.NodeRecordSize, storage.Options{}); err != nil {
		return nil, err
	}
	if e.rels, err = storage.CreateTable(pool, storage.RelRecordSize, storage.Options{}); err != nil {
		return nil, err
	}
	if e.props, err = storage.CreateTable(pool, storage.PropRecordSize, storage.Options{}); err != nil {
		return nil, err
	}
	root, err := pool.Alloc(rootSize)
	if err != nil {
		return nil, err
	}
	dev.WriteU64(root+rootNodes, e.nodes.Offset())
	dev.WriteU64(root+rootRels, e.rels.Offset())
	dev.WriteU64(root+rootProps, e.props.Offset())
	dev.WriteU64(root+rootDict, d.Offset())
	dev.WriteU64(root+rootIdxCount, 0)
	dev.Persist(root, rootSize)
	pool.SetRoot(root)
	e.root = root
	e.initShardStorage()
	if err := e.setupLanes(); err != nil {
		return nil, err
	}
	e.clock.Store(1)
	e.startDeltaMerger()
	return e, nil
}

func newDevice(cfg Config) (*pmem.Device, error) {
	switch cfg.Mode {
	case DRAM:
		prof := pmem.DRAMProfile()
		if cfg.Profile != nil {
			prof = *cfg.Profile
		}
		return pmem.New(pmem.Config{
			Name: "graph-dram", Size: cfg.PoolSize, Profile: prof,
		}), nil
	case PMem:
		prof := pmem.PMemProfile()
		if cfg.Profile != nil {
			prof = *cfg.Profile
		}
		return pmem.New(pmem.Config{
			Name: "graph-pmem", Size: cfg.PoolSize, Profile: prof,
			CacheBytes: cfg.CacheBytes, Persistent: true,
		}), nil
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrBadConfig, cfg.Mode)
	}
}

func newEngine(cfg Config, dev *pmem.Device, pool *pmemobj.Pool) *Engine {
	e := &Engine{
		mode:    cfg.Mode,
		cfg:     cfg,
		dev:     dev,
		pool:    pool,
		nShards: cfg.Shards,
		shards:  make([]engineShard, cfg.Shards),
	}
	e.allShards = make([]int, cfg.Shards)
	for s := range e.allShards {
		e.allShards[s] = s
	}
	for s := range e.shards {
		sh := &e.shards[s]
		sh.active = make(map[uint64]struct{})
		sh.nodeChains = newChainTable()
		sh.relChains = newChainTable()
		sh.nodeRTS = newRTSTable()
		sh.relRTS = newRTSTable()
		sh.indexes = make(map[indexKey]*index.Tree)
	}
	return e
}

// --- shard mapping ---

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return e.nShards }

// ShardOfNode returns the shard owning node id.
func (e *Engine) ShardOfNode(id uint64) int { return e.nodes.ShardOf(id) }

// ShardOfRel returns the shard owning relationship id.
func (e *Engine) ShardOfRel(id uint64) int { return e.rels.ShardOf(id) }

func (e *Engine) shardOf(key objKey) int {
	if key.kind == kindNode {
		return e.nodes.ShardOf(key.id)
	}
	return e.rels.ShardOf(key.id)
}

// homeShard maps a transaction to the shard where its new nodes are
// placed, spreading op-time inserts (and thus future commit locks) across
// shards.
func (e *Engine) homeShard(txid uint64) int { return int(txid % uint64(e.nShards)) }

// initShardStorage propagates the shard partition to the record tables.
// Called once at open, before any transaction runs.
func (e *Engine) initShardStorage() {
	e.nodes.SetShards(e.nShards)
	e.rels.SetShards(e.nShards)
	e.props.SetShards(e.nShards)
}

// setupLanes attaches every undo-log lane recorded in the root (rolling
// back any commit that was in flight in it at a crash) and, when the
// engine runs sharded, creates the lanes the configured shard count still
// lacks. Every stored lane is attached no matter the current shard count:
// a crash under Shards=8 must roll back all eight lanes even if the image
// reopens with Shards=1.
func (e *Engine) setupLanes() error {
	stored := e.dev.ReadU64(e.root + rootLaneCount)
	if stored > maxShardLanes {
		return fmt.Errorf("core: corrupt lane directory (count %d)", stored)
	}
	laneIDs := make([]int, 0, e.nShards)
	for i := uint64(0); i < stored; i++ {
		ent := e.root + rootLaneDir + i*laneEntrySize
		off := e.dev.ReadU64(ent)
		logCap := e.dev.ReadU64(ent + 8)
		id, err := e.pool.AttachLane(off, logCap)
		if err != nil {
			return fmt.Errorf("core: attach lane %d: %w", i, err)
		}
		laneIDs = append(laneIDs, id)
	}
	if e.nShards == 1 {
		// Unsharded engines commit on the built-in log; stored lanes were
		// attached purely so their pending transactions rolled back.
		e.shards[0].lane = 0
		return nil
	}
	// New lanes match the built-in log's capacity where the pool can
	// afford it, budgeting at most 1/16th of the device across all lanes
	// (floor 256 KiB) so small pools keep their heap.
	laneCap := e.pool.LogCap()
	if budget := uint64(e.dev.Size()) / uint64(16*e.nShards); budget < laneCap {
		laneCap = budget
	}
	if min := uint64(256 << 10); laneCap < min {
		laneCap = min
	}
	for len(laneIDs) < e.nShards {
		n := uint64(len(laneIDs))
		off, err := e.pool.Alloc(laneCap)
		if err != nil {
			return fmt.Errorf("core: allocate lane log: %w", err)
		}
		ent := e.root + rootLaneDir + n*laneEntrySize
		e.dev.WriteU64(ent, off)
		e.dev.WriteU64(ent+8, laneCap)
		e.dev.Persist(ent, laneEntrySize)
		// The 8-byte count bump makes the lane durable; a crash before it
		// only leaks the allocated region.
		e.dev.WriteU64(e.root+rootLaneCount, n+1)
		e.dev.Persist(e.root+rootLaneCount, 8)
		id, err := e.pool.AttachLane(off, laneCap)
		if err != nil {
			return err
		}
		laneIDs = append(laneIDs, id)
	}
	for s := range e.shards {
		e.shards[s].lane = laneIDs[s]
	}
	return nil
}

// Reopen attaches to a device holding a previously created engine,
// running full crash recovery: the pmemobj undo log is rolled back, stale
// record locks are cleared, half-done inserts are reclaimed, the
// timestamp clock is restored past the highest committed timestamp, and
// persistent indexes are reopened (hybrid indexes rebuild their DRAM
// inner levels).
func Reopen(dev *pmem.Device, cfg Config) (*Engine, error) {
	cfg.fill()
	pool, err := pmemobj.Open(dev)
	if err != nil {
		return nil, fmt.Errorf("core: reopen pool: %w", err)
	}
	e := newEngine(cfg, dev, pool)
	root := pool.Root()
	if root == 0 {
		return nil, fmt.Errorf("core: reopen: no root object")
	}
	e.root = root
	e.dict = dict.Open(pool, dev.ReadU64(root+rootDict))
	if e.nodes, err = storage.OpenTable(pool, dev.ReadU64(root+rootNodes)); err != nil {
		return nil, err
	}
	if e.rels, err = storage.OpenTable(pool, dev.ReadU64(root+rootRels)); err != nil {
		return nil, err
	}
	if e.props, err = storage.OpenTable(pool, dev.ReadU64(root+rootProps)); err != nil {
		return nil, err
	}
	e.initShardStorage()
	// Lane rollback must precede record recovery: a lane's pending commit
	// may cover the very records recoverRecords inspects.
	if err := e.setupLanes(); err != nil {
		return nil, err
	}
	maxTS, err := e.recoverRecords()
	if err != nil {
		return nil, err
	}
	e.clock.Store(maxTS)
	if err := e.reopenIndexes(); err != nil {
		return nil, err
	}
	if err := e.reconcileIndexes(); err != nil {
		return nil, err
	}
	e.startDeltaMerger()
	return e, nil
}

// recoverRecords scans both record tables, clearing stale transaction
// locks (bts > 0: the version committed earlier, only the lock word is
// stale) and reclaiming slots of uncommitted inserts (bts == 0). It
// returns the highest committed timestamp seen.
func (e *Engine) recoverRecords() (uint64, error) {
	maxTS := uint64(1)
	reclaim := func(tbl *storage.Table, txnOff, btsOff, etsOff uint64) error {
		var stale []uint64
		var drop []uint64
		tbl.Scan(func(id, off uint64) bool {
			txn := e.dev.ReadU64(off + txnOff)
			bts := e.dev.ReadU64(off + btsOff)
			ets := e.dev.ReadU64(off + etsOff)
			if bts > maxTS {
				maxTS = bts
			}
			if ets != Infinity && ets > maxTS {
				maxTS = ets
			}
			switch {
			case txn != 0 && bts == 0:
				drop = append(drop, id) // uncommitted insert
			case txn == 0 && bts == 0:
				drop = append(drop, id) // half-initialized slot
			case txn != 0:
				stale = append(stale, off) // stale lock on committed data
			}
			return true
		})
		for _, off := range stale {
			e.dev.WriteU64(off+txnOff, 0)
			e.dev.Persist(off+txnOff, 8)
		}
		for _, id := range drop {
			if err := tbl.Release(id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := reclaim(e.nodes, storage.NTxnID, storage.NBts, storage.NEts); err != nil {
		return 0, err
	}
	if err := reclaim(e.rels, storage.RTxnID, storage.RBts, storage.REts); err != nil {
		return 0, err
	}
	return maxTS, nil
}

// Watermark returns the highest committed timestamp the engine knows of.
// After Reopen it is the recovered commit watermark: no durable version
// may carry a timestamp beyond it (the fsck records pass checks this).
func (e *Engine) Watermark() uint64 { return e.clock.Load() }

// AuxRoot returns the auxiliary root offset (used by the JIT compiler for
// its persistent code cache), or 0 if unset.
func (e *Engine) AuxRoot() uint64 { return e.dev.ReadU64(e.root + rootAux) }

// SetAuxRoot durably stores the auxiliary root offset (8-byte
// failure-atomic store).
func (e *Engine) SetAuxRoot(off uint64) {
	e.dev.WriteU64(e.root+rootAux, off)
	e.dev.Persist(e.root+rootAux, 8)
}

// Device exposes the underlying device (for crash simulation and stats).
func (e *Engine) Device() *pmem.Device { return e.dev }

// Pool exposes the underlying persistent pool.
func (e *Engine) Pool() *pmemobj.Pool { return e.pool }

// Dict exposes the string dictionary (used by the query layer to resolve
// label and key codes at plan time).
func (e *Engine) Dict() *dict.Dict { return e.dict }

// Mode returns the engine's storage mode.
func (e *Engine) Mode() Mode { return e.mode }

// Nodes returns the node table (query-engine access path).
func (e *Engine) Nodes() *storage.Table { return e.nodes }

// Rels returns the relationship table.
func (e *Engine) Rels() *storage.Table { return e.rels }

// Props returns the property table.
func (e *Engine) Props() *storage.Table { return e.props }

// Close unregisters the engine's pool. The device (and, in PMem mode, its
// durable contents) remains usable for Reopen.
func (e *Engine) Close() {
	if e.closed.CompareAndSwap(false, true) {
		e.stopDeltaMerger()
		e.pool.Close()
	}
}

// GroupCommitStats reports group-commit progress: epochs persisted,
// transactions committed through them, and epochs that had to split to
// fit their shard's undo-log lane.
func (e *Engine) GroupCommitStats() (epochs, members, splits uint64) {
	return e.groupEpochs.Load(), e.groupMembers.Load(), e.groupSplits.Load()
}

// NodeCount returns the number of occupied node slots (all versions).
func (e *Engine) NodeCount() uint64 { return e.nodes.Count() }

// RelCount returns the number of occupied relationship slots.
func (e *Engine) RelCount() uint64 { return e.rels.Count() }

// ActiveTxs returns the number of transactions that have begun but not
// yet committed or aborted. Facade tests use it to assert that cancelled
// executions do not leak transactions.
func (e *Engine) ActiveTxs() int {
	n := 0
	for s := range e.shards {
		sh := &e.shards[s]
		sh.activeMu.Lock()
		n += len(sh.active)
		sh.activeMu.Unlock()
	}
	return n
}

// minActive returns the smallest active transaction timestamp across all
// shards, or one past the current clock when no transaction is active.
func (e *Engine) minActive() uint64 {
	// Flush in-flight Begins, then snapshot the clock: any transaction
	// missing from the scan below either finished already or drew an id
	// after the barrier — and the latter is strictly above the ceiling.
	e.beginMu.Lock()
	ceiling := e.clock.Load() + 1
	e.beginMu.Unlock()
	min := Infinity
	for s := range e.shards {
		sh := &e.shards[s]
		sh.activeMu.Lock()
		for ts := range sh.active {
			if ts < min {
				min = ts
			}
		}
		sh.activeMu.Unlock()
	}
	if ceiling < min {
		return ceiling
	}
	return min
}

// ShardStats is a snapshot of one shard's contention and balance
// counters, exported for the telemetry gauges and the saturation
// benchmark.
type ShardStats struct {
	Commits       uint64 // commits whose lock set included the shard
	LockWaitNs    uint64 // cumulative commit-lock wait
	LockContended uint64 // lock acquisitions that found the lock held
	HomeInserts   uint64 // records placed in the shard at op time
}

// ShardStatsSnapshot returns per-shard statistics plus the number of
// cross-shard commits.
func (e *Engine) ShardStatsSnapshot() (stats []ShardStats, crossCommits uint64) {
	stats = make([]ShardStats, e.nShards)
	for s := range e.shards {
		sh := &e.shards[s]
		stats[s] = ShardStats{
			Commits:       sh.commits.Load(),
			LockWaitNs:    sh.lockWaitNs.Load(),
			LockContended: sh.lockContended.Load(),
			HomeInserts:   sh.homeInserts.Load(),
		}
	}
	return stats, e.crossCommits.Load()
}

// encodeProps translates a property map into storage form, interning all
// strings through the dictionary. Keys are encoded in sorted order so the
// layout is deterministic.
func (e *Engine) encodeProps(props map[string]any) ([]storage.Prop, error) {
	if len(props) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]storage.Prop, 0, len(props))
	for _, k := range keys {
		kc, err := e.dict.Encode(k)
		if err != nil {
			return nil, err
		}
		v, err := e.EncodeValue(props[k])
		if err != nil {
			return nil, fmt.Errorf("core: property %q: %w", k, err)
		}
		out = append(out, storage.Prop{Key: uint32(kc), Val: v})
	}
	return out, nil
}

// EncodeValue converts a Go value into storage form, interning strings
// through the dictionary.
func (e *Engine) EncodeValue(v any) (storage.Value, error) {
	switch x := v.(type) {
	case int:
		return storage.IntValue(int64(x)), nil
	case int32:
		return storage.IntValue(int64(x)), nil
	case int64:
		return storage.IntValue(x), nil
	case uint64:
		return storage.IntValue(int64(x)), nil
	case float64:
		return storage.FloatValue(x), nil
	case float32:
		return storage.FloatValue(float64(x)), nil
	case bool:
		return storage.BoolValue(x), nil
	case string:
		code, err := e.dict.Encode(x)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.StringValue(code), nil
	case nil:
		return storage.Value{}, nil
	default:
		return storage.Value{}, fmt.Errorf("unsupported property type %T", v)
	}
}

// DecodeValue converts a storage value back into a Go value.
func (e *Engine) DecodeValue(v storage.Value) (any, error) {
	switch v.Type {
	case storage.TypeNil:
		return nil, nil
	case storage.TypeInt:
		return v.Int(), nil
	case storage.TypeFloat:
		return v.Float(), nil
	case storage.TypeBool:
		return v.Bool(), nil
	case storage.TypeString:
		return e.dict.Decode(v.Code())
	default:
		return nil, fmt.Errorf("core: unknown value type %d", v.Type)
	}
}

// DecodeProps converts storage properties back into a Go map.
func (e *Engine) DecodeProps(props []storage.Prop) (map[string]any, error) {
	if len(props) == 0 {
		return nil, nil
	}
	out := make(map[string]any, len(props))
	for _, p := range props {
		k, err := e.dict.Decode(uint64(p.Key))
		if err != nil {
			return nil, err
		}
		v, err := e.DecodeValue(p.Val)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}
