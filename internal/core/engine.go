package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"poseidon/internal/dict"
	"poseidon/internal/index"
	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// Config configures an Engine.
type Config struct {
	// Mode selects PMem (persistent, Optane-like latencies) or DRAM (the
	// volatile baseline). Default PMem.
	Mode Mode
	// PoolSize is the device capacity in bytes (default 256 MiB).
	PoolSize int
	// Profile overrides the latency model; nil uses the mode's default.
	Profile *pmem.Profile
	// CacheBytes sizes the simulated CPU cache for the PMem device
	// (default 4 MiB; ignored in DRAM mode).
	CacheBytes int
	// LogCap sizes the pmemobj undo log (default 4 MiB).
	LogCap uint64
}

func (c *Config) fill() {
	if c.PoolSize == 0 {
		c.PoolSize = 256 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 4 << 20
	}
	if c.LogCap == 0 {
		c.LogCap = 4 << 20
	}
}

// Root object layout.
const (
	rootNodes    = 0
	rootRels     = 8
	rootProps    = 16
	rootDict     = 24
	rootAux      = 32 // auxiliary subsystem root (JIT code cache)
	rootIdxCount = 40
	rootIdxDir   = 48 // maxIndexes × idxEntrySize
	idxEntrySize = 32 // label u64, key u64, kind u64, hdr u64
	maxIndexes   = 64
	rootSize     = rootIdxDir + maxIndexes*idxEntrySize
)

// indexKey identifies a secondary index: nodes with a label, keyed by a
// property.
type indexKey struct {
	label uint32
	key   uint32
}

// Engine is the PMem graph engine.
type Engine struct {
	mode Mode
	cfg  Config

	dev  *pmem.Device
	pool *pmemobj.Pool
	dict *dict.Dict

	nodes *storage.Table
	rels  *storage.Table
	props *storage.Table

	root uint64

	// MVTO state (volatile).
	clock      atomic.Uint64
	activeMu   sync.Mutex
	active     map[uint64]struct{}
	nodeChains *chainTable
	relChains  *chainTable
	nodeRTS    *rtsTable
	relRTS     *rtsTable
	gcMu       sync.Mutex
	gcQueue    []objKey

	// Secondary indexes.
	idxMu   sync.RWMutex
	indexes map[indexKey]*index.Tree

	// commitMu serializes the commit critical section so index updates
	// observe commits in timestamp order.
	commitMu sync.Mutex

	// tel holds the metric handles; the zero value (all nil) is the
	// disabled no-op path.
	tel Telemetry

	closed atomic.Bool
}

// Open creates a fresh engine on a new device. Use Reopen to attach to a
// device that survived a crash.
func Open(cfg Config) (*Engine, error) {
	cfg.fill()
	dev, err := newDevice(cfg)
	if err != nil {
		return nil, err
	}
	pool, err := pmemobj.Create(dev, pmemobj.Options{LogCap: cfg.LogCap})
	if err != nil {
		return nil, fmt.Errorf("core: create pool: %w", err)
	}
	e := newEngine(cfg, dev, pool)

	d, err := dict.Create(pool)
	if err != nil {
		return nil, err
	}
	e.dict = d
	if e.nodes, err = storage.CreateTable(pool, storage.NodeRecordSize, storage.Options{}); err != nil {
		return nil, err
	}
	if e.rels, err = storage.CreateTable(pool, storage.RelRecordSize, storage.Options{}); err != nil {
		return nil, err
	}
	if e.props, err = storage.CreateTable(pool, storage.PropRecordSize, storage.Options{}); err != nil {
		return nil, err
	}
	root, err := pool.Alloc(rootSize)
	if err != nil {
		return nil, err
	}
	dev.WriteU64(root+rootNodes, e.nodes.Offset())
	dev.WriteU64(root+rootRels, e.rels.Offset())
	dev.WriteU64(root+rootProps, e.props.Offset())
	dev.WriteU64(root+rootDict, d.Offset())
	dev.WriteU64(root+rootIdxCount, 0)
	dev.Persist(root, rootSize)
	pool.SetRoot(root)
	e.root = root
	e.clock.Store(1)
	return e, nil
}

func newDevice(cfg Config) (*pmem.Device, error) {
	switch cfg.Mode {
	case DRAM:
		prof := pmem.DRAMProfile()
		if cfg.Profile != nil {
			prof = *cfg.Profile
		}
		return pmem.New(pmem.Config{
			Name: "graph-dram", Size: cfg.PoolSize, Profile: prof,
		}), nil
	case PMem:
		prof := pmem.PMemProfile()
		if cfg.Profile != nil {
			prof = *cfg.Profile
		}
		return pmem.New(pmem.Config{
			Name: "graph-pmem", Size: cfg.PoolSize, Profile: prof,
			CacheBytes: cfg.CacheBytes, Persistent: true,
		}), nil
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrBadConfig, cfg.Mode)
	}
}

func newEngine(cfg Config, dev *pmem.Device, pool *pmemobj.Pool) *Engine {
	return &Engine{
		mode:       cfg.Mode,
		cfg:        cfg,
		dev:        dev,
		pool:       pool,
		active:     make(map[uint64]struct{}),
		nodeChains: newChainTable(),
		relChains:  newChainTable(),
		nodeRTS:    newRTSTable(),
		relRTS:     newRTSTable(),
		indexes:    make(map[indexKey]*index.Tree),
	}
}

// Reopen attaches to a device holding a previously created engine,
// running full crash recovery: the pmemobj undo log is rolled back, stale
// record locks are cleared, half-done inserts are reclaimed, the
// timestamp clock is restored past the highest committed timestamp, and
// persistent indexes are reopened (hybrid indexes rebuild their DRAM
// inner levels).
func Reopen(dev *pmem.Device, cfg Config) (*Engine, error) {
	cfg.fill()
	pool, err := pmemobj.Open(dev)
	if err != nil {
		return nil, fmt.Errorf("core: reopen pool: %w", err)
	}
	e := newEngine(cfg, dev, pool)
	root := pool.Root()
	if root == 0 {
		return nil, fmt.Errorf("core: reopen: no root object")
	}
	e.root = root
	e.dict = dict.Open(pool, dev.ReadU64(root+rootDict))
	if e.nodes, err = storage.OpenTable(pool, dev.ReadU64(root+rootNodes)); err != nil {
		return nil, err
	}
	if e.rels, err = storage.OpenTable(pool, dev.ReadU64(root+rootRels)); err != nil {
		return nil, err
	}
	if e.props, err = storage.OpenTable(pool, dev.ReadU64(root+rootProps)); err != nil {
		return nil, err
	}
	maxTS, err := e.recoverRecords()
	if err != nil {
		return nil, err
	}
	e.clock.Store(maxTS)
	if err := e.reopenIndexes(); err != nil {
		return nil, err
	}
	if err := e.reconcileIndexes(); err != nil {
		return nil, err
	}
	return e, nil
}

// recoverRecords scans both record tables, clearing stale transaction
// locks (bts > 0: the version committed earlier, only the lock word is
// stale) and reclaiming slots of uncommitted inserts (bts == 0). It
// returns the highest committed timestamp seen.
func (e *Engine) recoverRecords() (uint64, error) {
	maxTS := uint64(1)
	reclaim := func(tbl *storage.Table, txnOff, btsOff, etsOff uint64) error {
		var stale []uint64
		var drop []uint64
		tbl.Scan(func(id, off uint64) bool {
			txn := e.dev.ReadU64(off + txnOff)
			bts := e.dev.ReadU64(off + btsOff)
			ets := e.dev.ReadU64(off + etsOff)
			if bts > maxTS {
				maxTS = bts
			}
			if ets != Infinity && ets > maxTS {
				maxTS = ets
			}
			switch {
			case txn != 0 && bts == 0:
				drop = append(drop, id) // uncommitted insert
			case txn == 0 && bts == 0:
				drop = append(drop, id) // half-initialized slot
			case txn != 0:
				stale = append(stale, off) // stale lock on committed data
			}
			return true
		})
		for _, off := range stale {
			e.dev.WriteU64(off+txnOff, 0)
			e.dev.Persist(off+txnOff, 8)
		}
		for _, id := range drop {
			if err := tbl.Release(id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := reclaim(e.nodes, storage.NTxnID, storage.NBts, storage.NEts); err != nil {
		return 0, err
	}
	if err := reclaim(e.rels, storage.RTxnID, storage.RBts, storage.REts); err != nil {
		return 0, err
	}
	return maxTS, nil
}

func (e *Engine) reopenIndexes() error {
	n := e.dev.ReadU64(e.root + rootIdxCount)
	for i := uint64(0); i < n; i++ {
		ent := e.root + rootIdxDir + i*idxEntrySize
		label := uint32(e.dev.ReadU64(ent))
		key := uint32(e.dev.ReadU64(ent + 8))
		kind := index.Kind(e.dev.ReadU64(ent + 16))
		hdr := e.dev.ReadU64(ent + 24)
		tree, err := index.Open(kind, e.pool, hdr, index.Options{})
		if err != nil {
			return fmt.Errorf("core: reopen index (%d,%d): %w", label, key, err)
		}
		e.indexes[indexKey{label, key}] = tree
	}
	return nil
}

// Watermark returns the highest committed timestamp the engine knows of.
// After Reopen it is the recovered commit watermark: no durable version
// may carry a timestamp beyond it (the fsck records pass checks this).
func (e *Engine) Watermark() uint64 { return e.clock.Load() }

// AuxRoot returns the auxiliary root offset (used by the JIT compiler for
// its persistent code cache), or 0 if unset.
func (e *Engine) AuxRoot() uint64 { return e.dev.ReadU64(e.root + rootAux) }

// SetAuxRoot durably stores the auxiliary root offset (8-byte
// failure-atomic store).
func (e *Engine) SetAuxRoot(off uint64) {
	e.dev.WriteU64(e.root+rootAux, off)
	e.dev.Persist(e.root+rootAux, 8)
}

// Device exposes the underlying device (for crash simulation and stats).
func (e *Engine) Device() *pmem.Device { return e.dev }

// Pool exposes the underlying persistent pool.
func (e *Engine) Pool() *pmemobj.Pool { return e.pool }

// Dict exposes the string dictionary (used by the query layer to resolve
// label and key codes at plan time).
func (e *Engine) Dict() *dict.Dict { return e.dict }

// Mode returns the engine's storage mode.
func (e *Engine) Mode() Mode { return e.mode }

// Nodes returns the node table (query-engine access path).
func (e *Engine) Nodes() *storage.Table { return e.nodes }

// Rels returns the relationship table.
func (e *Engine) Rels() *storage.Table { return e.rels }

// Props returns the property table.
func (e *Engine) Props() *storage.Table { return e.props }

// Close unregisters the engine's pool. The device (and, in PMem mode, its
// durable contents) remains usable for Reopen.
func (e *Engine) Close() {
	if e.closed.CompareAndSwap(false, true) {
		e.pool.Close()
	}
}

// NodeCount returns the number of occupied node slots (all versions).
func (e *Engine) NodeCount() uint64 { return e.nodes.Count() }

// RelCount returns the number of occupied relationship slots.
func (e *Engine) RelCount() uint64 { return e.rels.Count() }

// ActiveTxs returns the number of transactions that have begun but not
// yet committed or aborted. Facade tests use it to assert that cancelled
// executions do not leak transactions.
func (e *Engine) ActiveTxs() int {
	e.activeMu.Lock()
	defer e.activeMu.Unlock()
	return len(e.active)
}

// minActive returns the smallest active transaction timestamp, or the
// current clock when no transaction is active.
func (e *Engine) minActive() uint64 {
	e.activeMu.Lock()
	defer e.activeMu.Unlock()
	if len(e.active) == 0 {
		return e.clock.Load() + 1
	}
	min := Infinity
	for ts := range e.active {
		if ts < min {
			min = ts
		}
	}
	return min
}

// encodeProps translates a property map into storage form, interning all
// strings through the dictionary. Keys are encoded in sorted order so the
// layout is deterministic.
func (e *Engine) encodeProps(props map[string]any) ([]storage.Prop, error) {
	if len(props) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]storage.Prop, 0, len(props))
	for _, k := range keys {
		kc, err := e.dict.Encode(k)
		if err != nil {
			return nil, err
		}
		v, err := e.EncodeValue(props[k])
		if err != nil {
			return nil, fmt.Errorf("core: property %q: %w", k, err)
		}
		out = append(out, storage.Prop{Key: uint32(kc), Val: v})
	}
	return out, nil
}

// EncodeValue converts a Go value into storage form, interning strings
// through the dictionary.
func (e *Engine) EncodeValue(v any) (storage.Value, error) {
	switch x := v.(type) {
	case int:
		return storage.IntValue(int64(x)), nil
	case int32:
		return storage.IntValue(int64(x)), nil
	case int64:
		return storage.IntValue(x), nil
	case uint64:
		return storage.IntValue(int64(x)), nil
	case float64:
		return storage.FloatValue(x), nil
	case float32:
		return storage.FloatValue(float64(x)), nil
	case bool:
		return storage.BoolValue(x), nil
	case string:
		code, err := e.dict.Encode(x)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.StringValue(code), nil
	case nil:
		return storage.Value{}, nil
	default:
		return storage.Value{}, fmt.Errorf("unsupported property type %T", v)
	}
}

// DecodeValue converts a storage value back into a Go value.
func (e *Engine) DecodeValue(v storage.Value) (any, error) {
	switch v.Type {
	case storage.TypeNil:
		return nil, nil
	case storage.TypeInt:
		return v.Int(), nil
	case storage.TypeFloat:
		return v.Float(), nil
	case storage.TypeBool:
		return v.Bool(), nil
	case storage.TypeString:
		return e.dict.Decode(v.Code())
	default:
		return nil, fmt.Errorf("core: unknown value type %d", v.Type)
	}
}

// DecodeProps converts storage properties back into a Go map.
func (e *Engine) DecodeProps(props []storage.Prop) (map[string]any, error) {
	if len(props) == 0 {
		return nil, nil
	}
	out := make(map[string]any, len(props))
	for _, p := range props {
		k, err := e.dict.Decode(uint64(p.Key))
		if err != nil {
			return nil, err
		}
		v, err := e.DecodeValue(p.Val)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}
