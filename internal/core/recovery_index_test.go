package core

import (
	"testing"

	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// Index maintenance runs after the pmemobj commit point (Commit step 4), so
// a crash in between leaves the durable tree one commit behind the primary
// tables: the superseded entry still present, the committed one missing.
// Reopen must reconcile the index against the recovered tables.

func tornIndexEngine(t *testing.T, kind index.Kind) (*Engine, uint64) {
	t.Helper()
	e := newTestEngine(t, PMem)
	tx := e.Begin()
	id := mustCreateNode(t, tx, "Person", map[string]any{"name": "alice"})
	mustCommit(t, tx)
	if err := e.CreateIndex("Person", "name", kind); err != nil {
		t.Fatal(err)
	}

	// Commit an update, then rewind the tree to its pre-commit state —
	// exactly what the durable image holds if the crash lands between the
	// commit record and updateIndexes.
	tx = e.Begin()
	if err := tx.SetNodeProps(id, map[string]any{"name": "alicia"}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tree, ok := e.IndexFor("Person", "name")
	if !ok {
		t.Fatal("index missing")
	}
	oldVal, err := e.EncodeValue("alice")
	if err != nil {
		t.Fatal(err)
	}
	newVal, err := e.EncodeValue("alicia")
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Delete(newVal, id) {
		t.Fatal("committed entry was not in the index")
	}
	if err := tree.Insert(oldVal, id); err != nil {
		t.Fatal(err)
	}
	return e, id
}

func checkReconciled(t *testing.T, e *Engine, id uint64) {
	t.Helper()
	tree, ok := e.IndexFor("Person", "name")
	if !ok {
		t.Fatal("index missing after reopen")
	}
	oldVal, _ := e.EncodeValue("alice")
	newVal, _ := e.EncodeValue("alicia")
	if ids := tree.Lookup(oldVal); len(ids) != 0 {
		t.Errorf("superseded entry survived recovery: %v", ids)
	}
	if ids := tree.Lookup(newVal); len(ids) != 1 || ids[0] != id {
		t.Errorf("committed entry missing after recovery: %v", ids)
	}
}

func TestReopenReconcilesTornIndexUpdate(t *testing.T) {
	for _, kind := range []index.Kind{index.Hybrid, index.Persistent} {
		t.Run(kind.String(), func(t *testing.T) {
			e, id := tornIndexEngine(t, kind)
			e2 := reopenAfterCrash(t, e)
			checkReconciled(t, e2, id)
		})
	}
}

func TestReopenDropsIndexEntriesOfReclaimedSlots(t *testing.T) {
	// An entry pointing at a slot recovery reclaimed (or that was never
	// committed) must be dropped, not just tolerated: IndexScan trusts the
	// tree's ids.
	e := newTestEngine(t, PMem)
	tx := e.Begin()
	id := mustCreateNode(t, tx, "Person", map[string]any{"name": "alice"})
	mustCommit(t, tx)
	if err := e.CreateIndex("Person", "name", index.Hybrid); err != nil {
		t.Fatal(err)
	}
	tree, _ := e.IndexFor("Person", "name")
	v, _ := e.EncodeValue("alice")
	if err := tree.Insert(v, id+100); err != nil { // dangling id
		t.Fatal(err)
	}

	e2 := reopenAfterCrash(t, e)
	tree2, _ := e2.IndexFor("Person", "name")
	if ids := tree2.Lookup(v); len(ids) != 1 || ids[0] != id {
		t.Errorf("lookup after reopen = %v, want [%d]", ids, id)
	}
}

func TestReopenKeepsTombstonedIndexEntries(t *testing.T) {
	// Deleted nodes keep index entries until GC; reconcile must tolerate
	// them (they are re-validated by IndexedLookup) rather than treating
	// them as damage.
	e := newTestEngine(t, PMem)
	tx := e.Begin()
	id := mustCreateNode(t, tx, "Person", map[string]any{"name": "bob"})
	mustCommit(t, tx)
	if err := e.CreateIndex("Person", "name", index.Hybrid); err != nil {
		t.Fatal(err)
	}
	// An open reader keeps the engine non-quiescent so GC cannot reclaim
	// the tombstoned slot before the crash.
	holder := e.Begin()
	tx = e.Begin()
	if err := tx.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	_ = holder // lost in the crash, like any in-flight transaction

	e2 := reopenAfterCrash(t, e)
	// The slot still holds the tombstoned record.
	off, ok := e2.Nodes().RecordOffset(id)
	if !ok {
		t.Fatal("tombstoned slot gone")
	}
	if rec := storage.ReadNodeRec(e2.Device(), off); rec.Flags&storage.FlagTombstone == 0 {
		t.Fatal("record not tombstoned")
	}
	// A current reader must not see the node through the index.
	tree, _ := e2.IndexFor("Person", "name")
	v, _ := e2.EncodeValue("bob")
	tx2 := e2.Begin()
	defer tx2.Abort()
	snaps, err := tx2.IndexedLookup(tree, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Errorf("deleted node visible through index: %v", snaps)
	}
}
