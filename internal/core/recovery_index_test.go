package core

import (
	"fmt"
	"sync"
	"testing"

	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// Index maintenance runs after the pmemobj commit point (Commit step 4), so
// a crash in between leaves the durable tree one commit behind the primary
// tables: the superseded entry still present, the committed one missing.
// Reopen must reconcile the index against the recovered tables.

func tornIndexEngine(t *testing.T, kind index.Kind) (*Engine, uint64) {
	t.Helper()
	e := newTestEngine(t, PMem)
	tx := e.Begin()
	id := mustCreateNode(t, tx, "Person", map[string]any{"name": "alice"})
	mustCommit(t, tx)
	if err := e.CreateIndex("Person", "name", kind); err != nil {
		t.Fatal(err)
	}

	// Commit an update, then rewind the tree to its pre-commit state —
	// exactly what the durable image holds if the crash lands between the
	// commit record and updateIndexes.
	tx = e.Begin()
	if err := tx.SetNodeProps(id, map[string]any{"name": "alicia"}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tree, ok := e.IndexFor("Person", "name")
	if !ok {
		t.Fatal("index missing")
	}
	oldVal, err := e.EncodeValue("alice")
	if err != nil {
		t.Fatal(err)
	}
	newVal, err := e.EncodeValue("alicia")
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Delete(newVal, id) {
		t.Fatal("committed entry was not in the index")
	}
	if err := tree.Insert(oldVal, id); err != nil {
		t.Fatal(err)
	}
	return e, id
}

func checkReconciled(t *testing.T, e *Engine, id uint64) {
	t.Helper()
	tree, ok := e.IndexFor("Person", "name")
	if !ok {
		t.Fatal("index missing after reopen")
	}
	oldVal, _ := e.EncodeValue("alice")
	newVal, _ := e.EncodeValue("alicia")
	if ids := tree.Lookup(oldVal); len(ids) != 0 {
		t.Errorf("superseded entry survived recovery: %v", ids)
	}
	if ids := tree.Lookup(newVal); len(ids) != 1 || ids[0] != id {
		t.Errorf("committed entry missing after recovery: %v", ids)
	}
}

func TestReopenReconcilesTornIndexUpdate(t *testing.T) {
	for _, kind := range []index.Kind{index.Hybrid, index.Persistent} {
		t.Run(kind.String(), func(t *testing.T) {
			e, id := tornIndexEngine(t, kind)
			e2 := reopenAfterCrash(t, e)
			checkReconciled(t, e2, id)
		})
	}
}

func TestReopenDropsIndexEntriesOfReclaimedSlots(t *testing.T) {
	// An entry pointing at a slot recovery reclaimed (or that was never
	// committed) must be dropped, not just tolerated: IndexScan trusts the
	// tree's ids.
	e := newTestEngine(t, PMem)
	tx := e.Begin()
	id := mustCreateNode(t, tx, "Person", map[string]any{"name": "alice"})
	mustCommit(t, tx)
	if err := e.CreateIndex("Person", "name", index.Hybrid); err != nil {
		t.Fatal(err)
	}
	tree, _ := e.IndexFor("Person", "name")
	v, _ := e.EncodeValue("alice")
	if err := tree.Insert(v, id+100); err != nil { // dangling id
		t.Fatal(err)
	}

	e2 := reopenAfterCrash(t, e)
	tree2, _ := e2.IndexFor("Person", "name")
	if ids := tree2.Lookup(v); len(ids) != 1 || ids[0] != id {
		t.Errorf("lookup after reopen = %v, want [%d]", ids, id)
	}
}

func TestReopenKeepsTombstonedIndexEntries(t *testing.T) {
	// Deleted nodes keep index entries until GC; reconcile must tolerate
	// them (they are re-validated by IndexedLookup) rather than treating
	// them as damage.
	e := newTestEngine(t, PMem)
	tx := e.Begin()
	id := mustCreateNode(t, tx, "Person", map[string]any{"name": "bob"})
	mustCommit(t, tx)
	if err := e.CreateIndex("Person", "name", index.Hybrid); err != nil {
		t.Fatal(err)
	}
	// An open reader keeps the engine non-quiescent so GC cannot reclaim
	// the tombstoned slot before the crash.
	holder := e.Begin()
	tx = e.Begin()
	if err := tx.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	_ = holder // lost in the crash, like any in-flight transaction

	e2 := reopenAfterCrash(t, e)
	// The slot still holds the tombstoned record.
	off, ok := e2.Nodes().RecordOffset(id)
	if !ok {
		t.Fatal("tombstoned slot gone")
	}
	if rec := storage.ReadNodeRec(e2.Device(), off); rec.Flags&storage.FlagTombstone == 0 {
		t.Fatal("record not tombstoned")
	}
	// A current reader must not see the node through the index.
	tree, _ := e2.IndexFor("Person", "name")
	v, _ := e2.EncodeValue("bob")
	tx2 := e2.Begin()
	defer tx2.Abort()
	snaps, err := tx2.IndexedLookup(tree, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Errorf("deleted node visible through index: %v", snaps)
	}
}

// TestOnlineIndexCreationUnderWrites pins the CreateIndex stale-snapshot
// fix: the backfill quiesces one shard at a time (holding its commit
// lock), so an index created while writers are committing must exactly
// cover the committed state — no entries lost to a backfill/commit race,
// none duplicated. Runs against both the unsharded and the 4-way sharded
// core, where backfill and publication are per-shard.
func TestOnlineIndexCreationUnderWrites(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, err := Open(Config{Mode: PMem, PoolSize: 64 << 20, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(e.Close)

			setup := e.Begin()
			for i := 0; i < 50; i++ {
				mustCreateNode(t, setup, "P", map[string]any{"k": int64(i)})
			}
			mustCommit(t, setup)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						tx := e.Begin()
						if _, err := tx.CreateNode("P", map[string]any{"k": int64(1000 + g*100000 + i)}); err != nil {
							tx.Abort()
							continue
						}
						tx.Commit()
					}
				}(g)
			}

			// Create the index mid-write: backfill races the writers.
			if err := e.CreateIndex("P", "k", index.Hybrid); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()

			ref, ok := e.IndexFor("P", "k")
			if !ok {
				t.Fatal("index missing")
			}
			key, err := e.Dict().Encode("k")
			if err != nil {
				t.Fatal(err)
			}
			tx := e.Begin()
			defer tx.Abort()
			checked := 0
			if err := tx.ScanNodes(func(s NodeSnap) bool {
				v, has := s.Prop(uint32(key))
				if !has {
					t.Errorf("node %d lost its indexed property", s.ID)
					return true
				}
				if !ref.Contains(v, s.ID) {
					t.Errorf("committed node %d (k=%d) missing from the online-created index", s.ID, int64(v.Raw))
				}
				checked++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if checked < 50 {
				t.Fatalf("scan covered only %d nodes", checked)
			}
		})
	}
}
