package core

import (
	"time"

	"poseidon/internal/index"
)

// Engine-side wiring of the index delta layer (Config.IndexDelta): every
// persistent shard tree absorbs commit-time index maintenance into its
// delta region, commits publish once per transaction or group-commit
// epoch, and an optional background goroutine merges deltas into the
// base trees so lookup overlays stay short. With MergeEvery zero, merges
// happen only inline (when a region fills) — the deterministic mode the
// crash explorer requires.

// enableTreeDelta switches a freshly created or reopened tree into delta
// mode when the engine is configured for it. Volatile trees have no
// persistence to amortize and are left alone; an enable failure (pool
// exhaustion) degrades that tree to the classic persist-per-insert path.
func (e *Engine) enableTreeDelta(t *index.Tree) {
	if !e.cfg.IndexDelta.Enabled || t.Kind() == index.Volatile {
		return
	}
	_ = t.EnableDelta()
}

// publishIndexDeltas publishes the delta regions of every index tree on
// the given shards — one Persist per dirty tree for the whole commit (or
// epoch). Caller holds the shards' commit locks, so publication lands in
// commit order.
func (e *Engine) publishIndexDeltas(shardOrder []int) {
	if !e.cfg.IndexDelta.Enabled {
		return
	}
	for _, s := range shardOrder {
		sh := &e.shards[s]
		sh.idxMu.RLock()
		for _, t := range sh.indexes {
			t.PublishDelta()
		}
		sh.idxMu.RUnlock()
	}
}

// startDeltaMerger launches the background merge goroutine when
// configured. Tree merges serialize on each tree's own lock, so the
// merger needs no shard locks and cannot deadlock with commits.
func (e *Engine) startDeltaMerger() {
	if !e.cfg.IndexDelta.Enabled || e.cfg.IndexDelta.MergeEvery <= 0 {
		return
	}
	e.mergeStop = make(chan struct{})
	e.mergeDone = make(chan struct{})
	go func() {
		defer close(e.mergeDone)
		tick := time.NewTicker(e.cfg.IndexDelta.MergeEvery)
		defer tick.Stop()
		for {
			select {
			case <-e.mergeStop:
				return
			case <-tick.C:
				for _, info := range e.Indexes() {
					_ = info.Tree.MergeDelta()
				}
			}
		}
	}()
}

// stopDeltaMerger stops the background merger and waits for it to exit.
// Idempotent; a no-op when the merger never started.
func (e *Engine) stopDeltaMerger() {
	if e.mergeStop == nil {
		return
	}
	close(e.mergeStop)
	<-e.mergeDone
	e.mergeStop, e.mergeDone = nil, nil
}
