package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"poseidon/internal/storage"
)

// Whole-engine crash-recovery property: after any random sequence of
// committed transactions followed by a crash (with an optional in-flight
// transaction cut off), the recovered engine contains exactly the
// committed state — nodes, properties, and adjacency.

type refNode struct {
	label string
	props map[string]int64
	out   []uint64 // rel ids in head-insertion order (newest first)
}

type refRel struct {
	src, dst uint64
	label    string
}

type refGraph struct {
	nodes map[uint64]*refNode
	rels  map[uint64]*refRel
}

func (g *refGraph) verify(t *testing.T, e *Engine) {
	t.Helper()
	tx := e.Begin()
	defer tx.Abort()

	if got := e.NodeCount(); got != uint64(len(g.nodes)) {
		t.Fatalf("node count = %d, want %d", got, len(g.nodes))
	}
	if got := e.RelCount(); got != uint64(len(g.rels)) {
		t.Fatalf("rel count = %d, want %d", got, len(g.rels))
	}
	for id, rn := range g.nodes {
		snap, err := tx.GetNode(id)
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		label, _ := e.dict.Decode(uint64(snap.Rec.Label))
		if label != rn.label {
			t.Fatalf("node %d label = %q, want %q", id, label, rn.label)
		}
		props, err := e.DecodeProps(snap.Props())
		if err != nil {
			t.Fatal(err)
		}
		if len(props) != len(rn.props) {
			t.Fatalf("node %d props = %v, want %v", id, props, rn.props)
		}
		for k, v := range rn.props {
			if props[k] != v {
				t.Fatalf("node %d prop %s = %v, want %d", id, k, props[k], v)
			}
		}
		var gotOut []uint64
		if err := tx.OutRels(snap, func(r RelSnap) bool {
			gotOut = append(gotOut, r.ID)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(gotOut) != len(rn.out) {
			t.Fatalf("node %d out = %v, want %v", id, gotOut, rn.out)
		}
		for i := range rn.out {
			if gotOut[i] != rn.out[i] {
				t.Fatalf("node %d out[%d] = %d, want %d", id, i, gotOut[i], rn.out[i])
			}
		}
	}
	for id, rr := range g.rels {
		snap, err := tx.GetRel(id)
		if err != nil {
			t.Fatalf("rel %d: %v", id, err)
		}
		if snap.Rec.Src != rr.src || snap.Rec.Dst != rr.dst {
			t.Fatalf("rel %d endpoints = (%d,%d), want (%d,%d)",
				id, snap.Rec.Src, snap.Rec.Dst, rr.src, rr.dst)
		}
	}
}

func TestEngineCrashRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, err := Open(Config{Mode: PMem, PoolSize: 64 << 20})
		if err != nil {
			t.Log(err)
			return false
		}
		ref := &refGraph{nodes: map[uint64]*refNode{}, rels: map[uint64]*refRel{}}
		var nodeIDs []uint64

		// 4-10 committed transactions of random operations.
		for txn := 0; txn < 4+rng.Intn(7); txn++ {
			tx := e.Begin()
			pending := &refGraph{nodes: map[uint64]*refNode{}, rels: map[uint64]*refRel{}}
			var pendingOut [][2]uint64 // (src, relID)
			aborted := false
			for op := 0; op < 1+rng.Intn(6); op++ {
				switch rng.Intn(4) {
				case 0: // create node
					label := fmt.Sprintf("L%d", rng.Intn(3))
					props := map[string]any{}
					rp := map[string]int64{}
					for p := 0; p < rng.Intn(3); p++ {
						k := fmt.Sprintf("k%d", rng.Intn(4))
						v := rng.Int63n(100)
						props[k] = v
						rp[k] = v
					}
					id, err := tx.CreateNode(label, props)
					if err != nil {
						aborted = true
					} else {
						pending.nodes[id] = &refNode{label: label, props: rp}
					}
				case 1: // create rel between known nodes
					if len(nodeIDs) < 2 {
						continue
					}
					src := nodeIDs[rng.Intn(len(nodeIDs))]
					dst := nodeIDs[rng.Intn(len(nodeIDs))]
					if src == dst {
						continue
					}
					id, err := tx.CreateRel(src, dst, "r", nil)
					if err != nil {
						aborted = true
					} else {
						pending.rels[id] = &refRel{src: src, dst: dst, label: "r"}
						pendingOut = append(pendingOut, [2]uint64{src, id})
					}
				case 2: // update props of a committed node
					if len(nodeIDs) == 0 {
						continue
					}
					id := nodeIDs[rng.Intn(len(nodeIDs))]
					k := fmt.Sprintf("k%d", rng.Intn(4))
					v := rng.Int63n(100)
					if err := tx.SetNodeProps(id, map[string]any{k: v}); err != nil {
						aborted = true
					} else {
						if pending.nodes[id] == nil {
							// Stage the update against the committed ref.
							old := ref.nodes[id]
							cp := &refNode{label: old.label, props: map[string]int64{}, out: old.out}
							for kk, vv := range old.props {
								cp.props[kk] = vv
							}
							pending.nodes[id] = cp
						}
						pending.nodes[id].props[k] = v
					}
				case 3: // no-op read
					if len(nodeIDs) > 0 {
						if _, err := tx.GetNode(nodeIDs[rng.Intn(len(nodeIDs))]); err != nil && err != ErrNotFound {
							aborted = true
						}
					}
				}
				if aborted {
					break
				}
			}
			if aborted || rng.Intn(5) == 0 {
				_ = tx.Abort() // discarded entirely
				continue
			}
			if err := tx.Commit(); err != nil {
				continue // commit-time conflict: also discarded
			}
			// Merge pending into ref.
			for id, n := range pending.nodes {
				if ref.nodes[id] == nil {
					nodeIDs = append(nodeIDs, id)
				}
				ref.nodes[id] = n
			}
			for id, r := range pending.rels {
				ref.rels[id] = r
			}
			// Adjacency lists are head-inserted: prepend in creation order,
			// so the newest relationship ends up first.
			for _, pr := range pendingOut {
				src, rid := pr[0], pr[1]
				ref.nodes[src].out = append([]uint64{rid}, ref.nodes[src].out...)
			}
		}

		// Optionally leave a transaction in flight.
		if rng.Intn(2) == 0 && len(nodeIDs) > 0 {
			tx := e.Begin()
			_, _ = tx.CreateNode("ghost", map[string]any{"g": int64(1)})
			_ = tx.SetNodeProps(nodeIDs[rng.Intn(len(nodeIDs))], map[string]any{"g": int64(1)})
		}

		dev := e.Device()
		e.Close()
		dev.Crash()
		e2, err := Reopen(dev, Config{Mode: PMem})
		if err != nil {
			t.Log(err)
			return false
		}
		defer e2.Close()
		ref.verify(t, e2)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRecordLayoutSizes pins the paper's §4.2 record sizes.
func TestRecordLayoutSizes(t *testing.T) {
	if storage.NodeRecordSize != 56 {
		t.Errorf("node record = %d bytes, paper says 56", storage.NodeRecordSize)
	}
	if storage.RelRecordSize != 72 {
		t.Errorf("relationship record = %d bytes, paper says 72", storage.RelRecordSize)
	}
	if storage.PropRecordSize != 64 {
		t.Errorf("property record = %d bytes, paper says cache-line-sized", storage.PropRecordSize)
	}
}
