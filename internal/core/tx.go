package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"poseidon/internal/dict"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// Tx is an MVTO transaction (§5.1). The transaction identifier doubles as
// its timestamp. All uncommitted state lives in DRAM (§5.2): a write
// creates a dirty version in the volatile version chain and only commit
// persists it to PMem, inside a single pmemobj transaction (DG4).
//
// A Tx must be used from a single goroutine; different transactions may
// run concurrently.
type Tx struct {
	e  *Engine
	id uint64

	// done is atomic and endMu serializes Commit/Abort so that parallel
	// read workers sharing the transaction can trigger an abort safely.
	done  atomic.Bool
	endMu sync.Mutex

	// ctx, when non-nil, is consulted by every operation: once it is
	// cancelled the transaction aborts itself and all subsequent calls
	// return the context's error. It is set via WithContext before any
	// parallel workers start and never mutated while they run.
	ctx context.Context

	// abortReason holds AbortReason+1 (0 = unset). Atomic with a CAS so
	// that when parallel morsel workers sharing the transaction race to
	// abort it, the first failure's classification wins.
	abortReason atomic.Uint32

	dirty map[objKey]*dirtyObj
	order []objKey // deterministic commit order
}

// maxPropWalk bounds the property-chain walk of a concurrent read: a
// torn walk over records being recycled underneath the reader could
// otherwise follow a pointer cycle forever. No legitimate chain comes
// anywhere near this many records, and a bounded result is discarded by
// the read's stability bracket.
const maxPropWalk = 1 << 20

// dirtyObj tracks one object written by the transaction.
type dirtyObj struct {
	key      objKey
	ver      *version // DRAM dirty version, linked into the chain
	isInsert bool
	isDelete bool
	// propsChanged records whether the property set differs from the
	// committed version; adjacency-only updates (the common CreateRel
	// path) keep the existing property chain in place at commit (DG1:
	// algorithmically save writes).
	propsChanged bool

	// Committed pre-image captured at lock time (updates/deletes only).
	hasOld   bool
	oldNode  storage.NodeRec
	oldRel   storage.RelRec
	oldProps []storage.Prop
}

// Begin starts a transaction, drawing the next timestamp from the global
// clock. The transaction is registered with its home shard's active set.
// Draw and registration happen under beginMu's read side so a concurrent
// GC pass cannot compute a minActive past the new id (see minActive).
func (e *Engine) Begin() *Tx {
	e.beginMu.RLock()
	id := e.clock.Add(1)
	sh := &e.shards[e.homeShard(id)]
	sh.activeMu.Lock()
	sh.active[id] = struct{}{}
	sh.activeMu.Unlock()
	e.beginMu.RUnlock()
	e.tel.TxBegun.Inc()
	return &Tx{e: e, id: id, dirty: make(map[objKey]*dirtyObj)}
}

// Per-id accessors for the sharded MVTO state.
func (e *Engine) nodeChainsOf(id uint64) *chainTable {
	return e.shards[e.nodes.ShardOf(id)].nodeChains
}
func (e *Engine) relChainsOf(id uint64) *chainTable {
	return e.shards[e.rels.ShardOf(id)].relChains
}
func (e *Engine) nodeRTSOf(id uint64) *rtsTable { return e.shards[e.nodes.ShardOf(id)].nodeRTS }
func (e *Engine) relRTSOf(id uint64) *rtsTable  { return e.shards[e.rels.ShardOf(id)].relRTS }

// withShardSlot runs fn inside shard s's undo-log lane while holding the
// shard's commit lock, so the persistent ranges fn touches stay covered
// by exactly one lane (the lane-overlap safety invariant). When the shard
// runs out of slots the lane transaction rolls back and capacity is
// reserved via EnsureShardFree — outside every commit lock, because chunk
// appends mutate global allocator state — before retrying.
func (e *Engine) withShardSlot(tbl *storage.Table, s int, fn func(*pmemobj.Tx) error) error {
	sh := &e.shards[s]
	for {
		sh.commitMu.Lock()
		err := e.pool.RunTxLane(sh.lane, fn)
		sh.commitMu.Unlock()
		if errors.Is(err, storage.ErrShardFull) {
			if err := tbl.EnsureShardFree(s); err != nil {
				return err
			}
			continue
		}
		return err
	}
}

// ID returns the transaction's timestamp identifier.
func (tx *Tx) ID() uint64 { return tx.id }

// EngineDict exposes the engine's dictionary for label/key resolution by
// layers built on top of transactions (query engine, analytics).
func (tx *Tx) EngineDict() *dict.Dict { return tx.e.dict }

// ReadOnly reports whether the transaction has written anything yet.
func (tx *Tx) ReadOnly() bool { return len(tx.order) == 0 }

// WithContext attaches a context to the transaction and returns the
// previously attached one (nil if none). Every subsequent operation —
// reads, scans, traversals, writes, Commit — first checks the context;
// on cancellation the transaction aborts itself (discarding all dirty
// versions and releasing its write locks, so no update is half-applied)
// and the operation returns ctx.Err(). The query layers attach the
// caller's context for the duration of one execution; parallel scan
// workers inherit it through the shared transaction.
//
// WithContext must not be called while another goroutine is using the
// transaction.
func (tx *Tx) WithContext(ctx context.Context) context.Context {
	prev := tx.ctx
	tx.ctx = ctx
	return prev
}

// Context returns the attached context (nil if none).
func (tx *Tx) Context() context.Context { return tx.ctx }

// ctxErr reports the attached context's error without side effects.
func (tx *Tx) ctxErr() error {
	if tx.ctx == nil {
		return nil
	}
	return tx.ctx.Err()
}

func (tx *Tx) check() error {
	if tx.done.Load() {
		return ErrTxDone
	}
	if err := tx.ctxErr(); err != nil {
		tx.setAbortReason(AbortCancelled)
		tx.mustAbort()
		return err
	}
	return nil
}

// setAbortReason records why the transaction is aborting; the first
// recorded reason wins (parallel workers may race here).
func (tx *Tx) setAbortReason(r AbortReason) {
	tx.abortReason.CompareAndSwap(0, uint32(r)+1)
}

// fail classifies the failure, aborts the transaction and returns the
// abort error — the single exit for every MVTO protocol violation.
func (tx *Tx) fail(reason AbortReason, format string, args ...any) error {
	tx.setAbortReason(reason)
	tx.mustAbort()
	return abortf(reason, format, args...)
}

func (tx *Tx) finish() {
	tx.done.Store(true)
	e := tx.e
	sh := &e.shards[e.homeShard(tx.id)]
	sh.activeMu.Lock()
	delete(sh.active, tx.id)
	sh.activeMu.Unlock()
	e.runGC(e.ActiveTxs() == 0)
}

// --- snapshots (read views) ---

// NodeSnap is a consistent read view of a node: either the PMem-resident
// latest committed version or a DRAM version from the chain.
type NodeSnap struct {
	ID  uint64
	Rec storage.NodeRec
	ver *version
	e   *Engine
}

// Prop returns the value of the property with the given key code.
func (s NodeSnap) Prop(key uint32) (storage.Value, bool) {
	if s.ver != nil {
		return propIn(s.ver.props, key)
	}
	return storage.PropValue(s.e.props, s.Rec.Props, key)
}

// Props materializes the node's full property set.
//
//poseidonlint:ignore seqlock Rec left readNode's validated bracket with its rts pinned; committed property chains are immutable and the pin blocks reclamation
func (s NodeSnap) Props() []storage.Prop {
	if s.ver != nil {
		return append([]storage.Prop(nil), s.ver.props...)
	}
	return storage.ReadPropChain(s.e.props, s.Rec.Props)
}

// RelSnap is a consistent read view of a relationship.
type RelSnap struct {
	ID  uint64
	Rec storage.RelRec
	ver *version
	e   *Engine
}

// Prop returns the value of the property with the given key code.
func (s RelSnap) Prop(key uint32) (storage.Value, bool) {
	if s.ver != nil {
		return propIn(s.ver.props, key)
	}
	return storage.PropValue(s.e.props, s.Rec.Props, key)
}

// Props materializes the relationship's full property set.
//
//poseidonlint:ignore seqlock Rec left readRel's validated bracket with its rts pinned; committed property chains are immutable and the pin blocks reclamation
func (s RelSnap) Props() []storage.Prop {
	if s.ver != nil {
		return append([]storage.Prop(nil), s.ver.props...)
	}
	return storage.ReadPropChain(s.e.props, s.Rec.Props)
}

func propIn(props []storage.Prop, key uint32) (storage.Value, bool) {
	for _, p := range props {
		if p.Key == key {
			return p.Val, true
		}
	}
	return storage.Value{}, false
}

// GetNode returns the version of node id visible to the transaction
// (§5.1 read protocol): the PMem record is consulted first; if its
// validity window does not cover the transaction, the DRAM version chain
// is searched. Reading an object write-locked by another transaction
// aborts.
func (tx *Tx) GetNode(id uint64) (NodeSnap, error) {
	if err := tx.check(); err != nil {
		return NodeSnap{}, err
	}
	if d, ok := tx.dirty[objKey{kindNode, id}]; ok {
		if d.isDelete {
			return NodeSnap{}, ErrNotFound
		}
		return NodeSnap{ID: id, Rec: *d.ver.node, ver: d.ver, e: tx.e}, nil
	}
	return tx.readNode(id)
}

func (tx *Tx) readNode(id uint64) (NodeSnap, error) {
	e := tx.e
	off, ok := e.nodes.RecordOffset(id)
	if !ok || !e.nodes.Occupied(id) {
		return NodeSnap{}, ErrNotFound
	}
	// Seqlock-style stable read. The record is multi-word, so a committer
	// can rewrite it underneath us, and the lock word alone cannot detect
	// a full lock→rewrite→unlock cycle that fits inside a reader
	// preemption (it returns to zero). Bts/Ets close that hole: every
	// commit to a live slot advances one of them monotonically, and slot
	// reuse only happens via quiescent GC, which cannot run while this
	// transaction is active. The property chain must be captured inside
	// the same bracket: commits free superseded prop records eagerly (the
	// slots are zeroed and reusable), so a chain walked after the bracket
	// could dereference recycled slots. Any free of this record's chain
	// is part of a commit that also advances the record's Bts or Ets, so
	// a stable bracket proves the captured props are the committed set.
	var rec storage.NodeRec
	var props []storage.Prop
	for attempt := 0; ; attempt++ {
		bts1 := e.dev.ReadU64(off + storage.NBts)
		ets1 := e.dev.ReadU64(off + storage.NEts)
		rec = storage.ReadNodeRec(e.dev, off)
		if rec.TxnID != 0 {
			return NodeSnap{}, tx.fail(AbortValidation, "node %d is write-locked by txn %d", id, rec.TxnID)
		}
		propsOK := true
		if rec.Bts != 0 && rec.Bts <= tx.id && tx.id < rec.Ets {
			props, propsOK = storage.ReadPropChainN(e.props, rec.Props, maxPropWalk)
			// Bump rts BEFORE re-reading the lock word. A writer CASes
			// the lock and then reads rts, so either it observes our bump
			// (and aborts if we are newer) or its lock lands first and
			// the check below sees it — one of the two conflicting sides
			// always yields. A spurious bump from a read that then aborts
			// or retries is harmless: a stale rts only over-aborts
			// writers.
			e.nodeRTSOf(id).bump(id, tx.id) // rts is updated only on latest-version reads
		}
		if e.dev.ReadU64(off+storage.NTxnID) != 0 {
			return NodeSnap{}, tx.fail(AbortValidation, "node %d was locked during read", id)
		}
		if propsOK && e.dev.ReadU64(off+storage.NBts) == bts1 && e.dev.ReadU64(off+storage.NEts) == ets1 &&
			rec.Bts == bts1 && rec.Ets == ets1 {
			break // no commit overlapped the read
		}
		if attempt >= 3 {
			return NodeSnap{}, tx.fail(AbortValidation, "node %d kept being rewritten during read", id)
		}
	}
	if rec.Bts == 0 {
		return NodeSnap{}, ErrNotFound
	}
	if rec.Bts <= tx.id && tx.id < rec.Ets {
		return NodeSnap{ID: id, Rec: rec, ver: &version{bts: rec.Bts, ets: rec.Ets, node: &rec, props: props}, e: e}, nil
	}
	if c := e.nodeChainsOf(id).get(id); c != nil {
		v, steps := c.findVisible(tx.id)
		e.tel.ChainWalk.Observe(steps)
		if v != nil && !v.tombstone {
			return NodeSnap{ID: id, Rec: *v.node, ver: v, e: e}, nil
		}
	}
	return NodeSnap{}, ErrNotFound
}

// GetRel returns the visible version of relationship id.
func (tx *Tx) GetRel(id uint64) (RelSnap, error) {
	if err := tx.check(); err != nil {
		return RelSnap{}, err
	}
	if d, ok := tx.dirty[objKey{kindRel, id}]; ok {
		if d.isDelete {
			return RelSnap{}, ErrNotFound
		}
		return RelSnap{ID: id, Rec: *d.ver.rel, ver: d.ver, e: tx.e}, nil
	}
	return tx.readRel(id)
}

func (tx *Tx) readRel(id uint64) (RelSnap, error) {
	e := tx.e
	off, ok := e.rels.RecordOffset(id)
	if !ok || !e.rels.Occupied(id) {
		return RelSnap{}, ErrNotFound
	}
	// Same seqlock-style stable read as readNode — see the comment there.
	var rec storage.RelRec
	var props []storage.Prop
	for attempt := 0; ; attempt++ {
		bts1 := e.dev.ReadU64(off + storage.RBts)
		ets1 := e.dev.ReadU64(off + storage.REts)
		rec = storage.ReadRelRec(e.dev, off)
		if rec.TxnID != 0 {
			return RelSnap{}, tx.fail(AbortValidation, "relationship %d is write-locked by txn %d", id, rec.TxnID)
		}
		propsOK := true
		if rec.Bts != 0 && rec.Bts <= tx.id && tx.id < rec.Ets {
			props, propsOK = storage.ReadPropChainN(e.props, rec.Props, maxPropWalk)
			e.relRTSOf(id).bump(id, tx.id)
		}
		if e.dev.ReadU64(off+storage.RTxnID) != 0 {
			return RelSnap{}, tx.fail(AbortValidation, "relationship %d was locked during read", id)
		}
		if propsOK && e.dev.ReadU64(off+storage.RBts) == bts1 && e.dev.ReadU64(off+storage.REts) == ets1 &&
			rec.Bts == bts1 && rec.Ets == ets1 {
			break
		}
		if attempt >= 3 {
			return RelSnap{}, tx.fail(AbortValidation, "relationship %d kept being rewritten during read", id)
		}
	}
	if rec.Bts == 0 {
		return RelSnap{}, ErrNotFound
	}
	if rec.Bts <= tx.id && tx.id < rec.Ets {
		return RelSnap{ID: id, Rec: rec, ver: &version{bts: rec.Bts, ets: rec.Ets, rel: &rec, props: props}, e: e}, nil
	}
	if c := e.relChainsOf(id).get(id); c != nil {
		v, steps := c.findVisible(tx.id)
		e.tel.ChainWalk.Observe(steps)
		if v != nil && !v.tombstone {
			return RelSnap{ID: id, Rec: *v.rel, ver: v, e: e}, nil
		}
	}
	return RelSnap{}, ErrNotFound
}

// mustAbort rolls the transaction back after a protocol violation so the
// caller cannot accidentally continue using it.
func (tx *Tx) mustAbort() {
	_ = tx.Abort()
}

// --- traversal access paths (§6.1 ForeachRelationship) ---

// OutRels visits every visible outgoing relationship of the node snap,
// following the offset-linked relationship list directly in (P)Mem (DD4).
func (tx *Tx) OutRels(n NodeSnap, fn func(RelSnap) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	for rid := n.Rec.Out; rid != storage.NilID; {
		r, err := tx.GetRel(rid)
		if err == ErrNotFound {
			// Invisible to us: follow the committed chain structure.
			next, ok := tx.rawRelNext(rid, true)
			if !ok {
				return nil
			}
			rid = next
			continue
		}
		if err != nil {
			return err
		}
		if !fn(r) {
			return nil
		}
		rid = r.Rec.NextSrc
	}
	return nil
}

// InRels visits every visible incoming relationship of the node snap.
func (tx *Tx) InRels(n NodeSnap, fn func(RelSnap) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	for rid := n.Rec.In; rid != storage.NilID; {
		r, err := tx.GetRel(rid)
		if err == ErrNotFound {
			next, ok := tx.rawRelNext(rid, false)
			if !ok {
				return nil
			}
			rid = next
			continue
		}
		if err != nil {
			return err
		}
		if !fn(r) {
			return nil
		}
		rid = r.Rec.NextDst
	}
	return nil
}

// rawRelNext reads the chain pointer of a relationship record regardless
// of visibility, so traversals can skip over tombstoned or too-new
// relationships without losing the rest of the list.
func (tx *Tx) rawRelNext(rid uint64, out bool) (uint64, bool) {
	e := tx.e
	if d, ok := tx.dirty[objKey{kindRel, rid}]; ok {
		if out {
			return d.ver.rel.NextSrc, true
		}
		return d.ver.rel.NextDst, true
	}
	off, ok := e.rels.RecordOffset(rid)
	if !ok || !e.rels.Occupied(rid) {
		return 0, false
	}
	if out {
		return e.dev.ReadU64(off + storage.RNextSrc), true
	}
	return e.dev.ReadU64(off + storage.RNextDst), true
}

// --- scans ---

// ScanNodes visits every node visible to the transaction in id order.
func (tx *Tx) ScanNodes(fn func(NodeSnap) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	n := tx.e.nodes.Chunks()
	for ci := uint64(0); ci < n; ci++ {
		cont, err := tx.ScanNodeChunk(ci, fn)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

// ScanNodeChunk visits the visible nodes of one chunk — a morsel in the
// §6.1 parallel-scan sense. It reports whether scanning should continue.
func (tx *Tx) ScanNodeChunk(ci uint64, fn func(NodeSnap) bool) (bool, error) {
	if err := tx.check(); err != nil {
		return false, err
	}
	var abortErr error
	cont := true
	tx.e.nodes.ScanChunk(ci, func(id, _ uint64) bool {
		snap, err := tx.GetNode(id)
		if err == ErrNotFound {
			return true
		}
		if err != nil {
			abortErr = err
			return false
		}
		cont = fn(snap)
		return cont
	})
	return cont, abortErr
}

// ScanRels visits every relationship visible to the transaction.
func (tx *Tx) ScanRels(fn func(RelSnap) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	n := tx.e.rels.Chunks()
	for ci := uint64(0); ci < n; ci++ {
		cont, err := tx.ScanRelChunk(ci, fn)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

// ScanRelChunk visits the visible relationships of one chunk.
func (tx *Tx) ScanRelChunk(ci uint64, fn func(RelSnap) bool) (bool, error) {
	if err := tx.check(); err != nil {
		return false, err
	}
	var abortErr error
	cont := true
	tx.e.rels.ScanChunk(ci, func(id, _ uint64) bool {
		snap, err := tx.GetRel(id)
		if err == ErrNotFound {
			return true
		}
		if err != nil {
			abortErr = err
			return false
		}
		cont = fn(snap)
		return cont
	})
	return cont, abortErr
}

// --- writes ---

// lockNode write-locks node id via CaS on its txn-id field (§5.1) and
// creates its DRAM dirty version. Subsequent writes by the same
// transaction reuse the dirty version.
func (tx *Tx) lockNode(id uint64) (*dirtyObj, error) {
	key := objKey{kindNode, id}
	if d, ok := tx.dirty[key]; ok {
		if d.isDelete {
			return nil, ErrNotFound
		}
		return d, nil
	}
	e := tx.e
	off, ok := e.nodes.RecordOffset(id)
	if !ok || !e.nodes.Occupied(id) {
		return nil, ErrNotFound
	}
	if !e.dev.CompareAndSwapU64(off+storage.NTxnID, 0, tx.id) {
		return nil, tx.fail(AbortWriteConflict, "node %d is locked by txn %d", id, e.dev.ReadU64(off+storage.NTxnID))
	}
	rec := storage.ReadNodeRec(e.dev, off)
	rec.TxnID = 0 // the lock word is protocol state, not version content
	if unlockErr := tx.writeChecksNode(off, id, rec); unlockErr != nil {
		return nil, unlockErr
	}
	oldProps := storage.ReadPropChain(e.props, rec.Props)
	newRec := rec
	ver := &version{
		txnID: tx.id,
		bts:   tx.id, ets: Infinity,
		node:  &newRec,
		props: append([]storage.Prop(nil), oldProps...),
	}
	e.nodeChainsOf(id).getOrCreate(id).push(ver)
	d := &dirtyObj{key: key, ver: ver, hasOld: true, oldNode: rec, oldProps: oldProps}
	tx.dirty[key] = d
	tx.order = append(tx.order, key)
	return d, nil
}

// writeChecksNode enforces the MVTO write rules after the lock was taken:
// the record must be the latest committed version and must not have been
// read by a more recent transaction (rts check). On violation the lock is
// released and the transaction aborted.
func (tx *Tx) writeChecksNode(off, id uint64, rec storage.NodeRec) error {
	e := tx.e
	unlock := func() {
		e.dev.WriteU64(off+storage.NTxnID, 0)
		e.dev.Persist(off+storage.NTxnID, 8)
	}
	if rec.Bts == 0 {
		unlock()
		return ErrNotFound
	}
	if rec.Ets != Infinity {
		unlock()
		if rec.Ets <= tx.id {
			return ErrNotFound // deleted before us
		}
		return tx.fail(AbortWriteConflict, "node %d deleted by a newer transaction", id)
	}
	if rec.Bts > tx.id {
		unlock()
		return tx.fail(AbortWriteConflict, "node %d has a newer version (bts %d > txn %d)", id, rec.Bts, tx.id)
	}
	if rts := e.nodeRTSOf(id).get(id); rts > tx.id {
		unlock()
		return tx.fail(AbortValidation, "node %d was read by txn %d > %d", id, rts, tx.id)
	}
	return nil
}

// lockRel is the relationship counterpart of lockNode.
func (tx *Tx) lockRel(id uint64) (*dirtyObj, error) {
	key := objKey{kindRel, id}
	if d, ok := tx.dirty[key]; ok {
		if d.isDelete {
			return nil, ErrNotFound
		}
		return d, nil
	}
	e := tx.e
	off, ok := e.rels.RecordOffset(id)
	if !ok || !e.rels.Occupied(id) {
		return nil, ErrNotFound
	}
	if !e.dev.CompareAndSwapU64(off+storage.RTxnID, 0, tx.id) {
		return nil, tx.fail(AbortWriteConflict, "relationship %d is locked by txn %d", id, e.dev.ReadU64(off+storage.RTxnID))
	}
	rec := storage.ReadRelRec(e.dev, off)
	rec.TxnID = 0
	unlock := func() {
		e.dev.WriteU64(off+storage.RTxnID, 0)
		e.dev.Persist(off+storage.RTxnID, 8)
	}
	if rec.Bts == 0 {
		unlock()
		return nil, ErrNotFound
	}
	if rec.Ets != Infinity {
		unlock()
		if rec.Ets <= tx.id {
			return nil, ErrNotFound
		}
		return nil, tx.fail(AbortWriteConflict, "relationship %d deleted by a newer transaction", id)
	}
	if rec.Bts > tx.id {
		unlock()
		return nil, tx.fail(AbortWriteConflict, "relationship %d has a newer version", id)
	}
	if rts := e.relRTSOf(id).get(id); rts > tx.id {
		unlock()
		return nil, tx.fail(AbortValidation, "relationship %d was read by txn %d > %d", id, rts, tx.id)
	}
	oldProps := storage.ReadPropChain(e.props, rec.Props)
	newRec := rec
	ver := &version{
		txnID: tx.id,
		bts:   tx.id, ets: Infinity,
		rel:   &newRec,
		props: append([]storage.Prop(nil), oldProps...),
	}
	e.relChainsOf(id).getOrCreate(id).push(ver)
	d := &dirtyObj{key: key, ver: ver, hasOld: true, oldRel: rec, oldProps: oldProps}
	tx.dirty[key] = d
	tx.order = append(tx.order, key)
	return d, nil
}

// CreateNode inserts a new node. Per §5.1, the record is stored in the
// persistent array immediately but stays write-locked (txn-id set,
// bts = 0) until commit.
func (tx *Tx) CreateNode(label string, props map[string]any) (uint64, error) {
	if err := tx.check(); err != nil {
		return 0, err
	}
	e := tx.e
	labelCode, err := e.dict.Encode(label)
	if err != nil {
		return 0, err
	}
	encProps, err := e.encodeProps(props)
	if err != nil {
		return 0, err
	}
	// New nodes are placed in the transaction's home shard so that
	// single-shard workloads commit without touching any other shard's
	// lock or lane.
	home := e.homeShard(tx.id)
	var id, off uint64
	err = e.withShardSlot(e.nodes, home, func(ptx *pmemobj.Tx) error {
		var err error
		id, off, err = e.nodes.InsertShardTx(ptx, home)
		if err != nil {
			return err
		}
		rec := storage.NodeRec{
			TxnID: tx.id, Bts: 0, Ets: Infinity,
			Label: uint32(labelCode),
			Out:   storage.NilID, In: storage.NilID, Props: storage.NilID,
		}
		storage.WriteNodeRec(e.dev, off, &rec)
		ptx.NoteWrite(off, storage.NodeRecordSize)
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("core: create node: %w", err)
	}
	e.shards[home].homeInserts.Add(1)
	rec := storage.NodeRec{
		Bts: tx.id, Ets: Infinity,
		Label: uint32(labelCode),
		Out:   storage.NilID, In: storage.NilID, Props: storage.NilID,
	}
	ver := &version{txnID: tx.id, bts: tx.id, ets: Infinity, node: &rec, props: encProps}
	e.nodeChainsOf(id).getOrCreate(id).push(ver)
	key := objKey{kindNode, id}
	tx.dirty[key] = &dirtyObj{key: key, ver: ver, isInsert: true, propsChanged: true}
	tx.order = append(tx.order, key)
	return id, nil
}

// CreateRel inserts a new relationship from src to dst. Both endpoint
// nodes are write-locked because their adjacency heads change (DD4: the
// new relationship is prepended to both offset-linked lists).
func (tx *Tx) CreateRel(src, dst uint64, label string, props map[string]any) (uint64, error) {
	if err := tx.check(); err != nil {
		return 0, err
	}
	e := tx.e
	labelCode, err := e.dict.Encode(label)
	if err != nil {
		return 0, err
	}
	encProps, err := e.encodeProps(props)
	if err != nil {
		return 0, err
	}
	srcD, err := tx.lockNode(src)
	if err != nil {
		return 0, fmt.Errorf("core: create rel: source: %w", err)
	}
	var dstD *dirtyObj
	if dst == src {
		dstD = srcD
	} else {
		dstD, err = tx.lockNode(dst)
		if err != nil {
			return 0, fmt.Errorf("core: create rel: destination: %w", err)
		}
	}

	// The relationship record is co-located with its source node's shard,
	// so a commit that touches src and its out-edges stays single-shard.
	relShard := e.ShardOfNode(src)
	var id, off uint64
	nextSrc := srcD.ver.node.Out
	nextDst := dstD.ver.node.In
	err = e.withShardSlot(e.rels, relShard, func(ptx *pmemobj.Tx) error {
		var err error
		id, off, err = e.rels.InsertShardTx(ptx, relShard)
		if err != nil {
			return err
		}
		rec := storage.RelRec{
			TxnID: tx.id, Bts: 0, Ets: Infinity,
			Label: uint32(labelCode),
			Src:   src, Dst: dst,
			NextSrc: nextSrc, NextDst: nextDst,
			Props: storage.NilID,
		}
		storage.WriteRelRec(e.dev, off, &rec)
		ptx.NoteWrite(off, storage.RelRecordSize)
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("core: create rel: %w", err)
	}
	rec := storage.RelRec{
		Bts: tx.id, Ets: Infinity,
		Label: uint32(labelCode),
		Src:   src, Dst: dst,
		NextSrc: nextSrc, NextDst: nextDst,
		Props: storage.NilID,
	}
	ver := &version{txnID: tx.id, bts: tx.id, ets: Infinity, rel: &rec, props: encProps}
	e.relChainsOf(id).getOrCreate(id).push(ver)
	key := objKey{kindRel, id}
	tx.dirty[key] = &dirtyObj{key: key, ver: ver, isInsert: true, propsChanged: true}
	tx.order = append(tx.order, key)

	// Prepend to both adjacency lists in the DRAM dirty versions.
	srcD.ver.node.Out = id
	dstD.ver.node.In = id
	return id, nil
}

// SetNodeProps updates (merges) properties of a node; a nil value removes
// the key.
func (tx *Tx) SetNodeProps(id uint64, props map[string]any) error {
	if err := tx.check(); err != nil {
		return err
	}
	encProps, err := tx.e.encodeProps(props)
	if err != nil {
		return err
	}
	removes, err := tx.removalKeys(props)
	if err != nil {
		return err
	}
	d, err := tx.lockNode(id)
	if err != nil {
		return err
	}
	d.ver.props = mergeProps(d.ver.props, encProps, removes)
	d.propsChanged = true
	return nil
}

// SetRelProps updates (merges) properties of a relationship.
func (tx *Tx) SetRelProps(id uint64, props map[string]any) error {
	if err := tx.check(); err != nil {
		return err
	}
	encProps, err := tx.e.encodeProps(props)
	if err != nil {
		return err
	}
	removes, err := tx.removalKeys(props)
	if err != nil {
		return err
	}
	d, err := tx.lockRel(id)
	if err != nil {
		return err
	}
	d.ver.props = mergeProps(d.ver.props, encProps, removes)
	d.propsChanged = true
	return nil
}

func (tx *Tx) removalKeys(props map[string]any) (map[uint32]bool, error) {
	var removes map[uint32]bool
	for k, v := range props {
		if v == nil {
			code, err := tx.e.dict.Encode(k)
			if err != nil {
				return nil, err
			}
			if removes == nil {
				removes = make(map[uint32]bool)
			}
			removes[uint32(code)] = true
		}
	}
	return removes, nil
}

// mergeProps overlays updates onto base and drops removed keys.
func mergeProps(base, updates []storage.Prop, removes map[uint32]bool) []storage.Prop {
	out := make([]storage.Prop, 0, len(base)+len(updates))
	updated := make(map[uint32]storage.Value, len(updates))
	for _, u := range updates {
		if !u.Val.IsNil() {
			updated[u.Key] = u.Val
		}
	}
	for _, b := range base {
		if removes[b.Key] {
			continue
		}
		if v, ok := updated[b.Key]; ok {
			out = append(out, storage.Prop{Key: b.Key, Val: v})
			delete(updated, b.Key)
			continue
		}
		out = append(out, b)
	}
	for _, u := range updates {
		if v, ok := updated[u.Key]; ok && !removes[u.Key] {
			out = append(out, storage.Prop{Key: u.Key, Val: v})
			delete(updated, u.Key)
		}
	}
	return out
}

// DeleteRel tombstones a relationship. The physical unlink from the
// adjacency lists happens later, during garbage collection (§5.3).
func (tx *Tx) DeleteRel(id uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	d, err := tx.lockRel(id)
	if err != nil {
		return err
	}
	d.isDelete = true
	d.ver.tombstone = true
	return nil
}

// DeleteNode tombstones a node. It fails with ErrHasRels if the node
// still has visible relationships; use DetachDeleteNode to cascade.
func (tx *Tx) DeleteNode(id uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	snap, err := tx.GetNode(id)
	if err != nil {
		return err
	}
	hasRel := false
	if err := tx.OutRels(snap, func(RelSnap) bool { hasRel = true; return false }); err != nil {
		return err
	}
	if !hasRel {
		if err := tx.InRels(snap, func(RelSnap) bool { hasRel = true; return false }); err != nil {
			return err
		}
	}
	if hasRel {
		return ErrHasRels
	}
	d, err := tx.lockNode(id)
	if err != nil {
		return err
	}
	d.isDelete = true
	d.ver.tombstone = true
	return nil
}

// DetachDeleteNode deletes a node and all its visible relationships.
func (tx *Tx) DetachDeleteNode(id uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	snap, err := tx.GetNode(id)
	if err != nil {
		return err
	}
	var relIDs []uint64
	if err := tx.OutRels(snap, func(r RelSnap) bool { relIDs = append(relIDs, r.ID); return true }); err != nil {
		return err
	}
	if err := tx.InRels(snap, func(r RelSnap) bool { relIDs = append(relIDs, r.ID); return true }); err != nil {
		return err
	}
	for _, rid := range relIDs {
		if err := tx.DeleteRel(rid); err != nil && err != ErrNotFound {
			return err
		}
	}
	return tx.DeleteNode(id)
}
