// Package core is the paper's primary contribution: a transactional
// property-graph engine for persistent memory (§4 storage model, §5 MVTO
// transaction processing) with hybrid DRAM/PMem storage management.
//
// The engine stores nodes, relationships and properties in chunked PMem
// tables (package storage), encodes strings through a persistent
// dictionary (package dict), accelerates property lookups with hybrid
// B+-trees (package index) and provides snapshot-isolated multi-version
// timestamp-ordering (MVTO) transactions whose uncommitted state lives
// entirely in DRAM (§5.2, DG1/DG2).
package core

import (
	"errors"
	"fmt"
)

// Mode selects the storage medium of the engine, matching the paper's
// evaluation variants.
type Mode int

// Engine modes.
const (
	// PMem keeps the primary data in simulated persistent memory with
	// Optane-like latencies; the engine survives Crash.
	PMem Mode = iota
	// DRAM is the paper's dram baseline: the same engine bit-for-bit, on
	// a volatile zero-latency device.
	DRAM
)

func (m Mode) String() string {
	if m == DRAM {
		return "dram"
	}
	return "pmem"
}

// Infinity is the end timestamp of a live object version.
const Infinity = ^uint64(0)

// Common errors. Transaction aborts wrap ErrAborted; callers typically
// retry the transaction.
var (
	ErrAborted   = errors.New("core: transaction aborted")
	ErrNotFound  = errors.New("core: object not found")
	ErrTxDone    = errors.New("core: transaction already finished")
	ErrHasRels   = errors.New("core: node still has relationships")
	ErrBadConfig = errors.New("core: invalid configuration")
)

// AbortReason classifies why an MVTO transaction aborted, mirroring the
// protocol's distinct failure modes (§5.1).
type AbortReason uint8

// Abort reasons, in telemetry label order.
const (
	// AbortExplicit: the caller rolled back a transaction that had
	// performed writes, with no protocol failure. (Rolling back a
	// read-only transaction is normal query cleanup, not an abort.)
	AbortExplicit AbortReason = iota
	// AbortWriteConflict: a write-write conflict — the record was locked
	// by another writer, deleted by, or rewritten by a newer transaction.
	AbortWriteConflict
	// AbortValidation: MVTO read-path validation failed — the record was
	// locked while being read, or its rts shows a newer reader that
	// forbids this writer (§5.1 write rule).
	AbortValidation
	// AbortCancelled: the attached context was cancelled mid-transaction.
	AbortCancelled
	// AbortCommitFailed: the persistent commit transaction itself failed
	// (undo log overflow, allocation failure) and rolled back.
	AbortCommitFailed

	// NumAbortReasons is the number of distinct reasons (for per-reason
	// counter arrays).
	NumAbortReasons = int(AbortCommitFailed) + 1
)

func (r AbortReason) String() string {
	switch r {
	case AbortExplicit:
		return "explicit"
	case AbortWriteConflict:
		return "write_conflict"
	case AbortValidation:
		return "validation"
	case AbortCancelled:
		return "cancelled"
	case AbortCommitFailed:
		return "commit_failed"
	}
	return "unknown"
}

// AbortError is the error returned when the MVTO protocol aborts a
// transaction. It wraps ErrAborted, so errors.Is(err, ErrAborted)
// continues to hold, and carries the machine-readable reason.
type AbortError struct {
	Reason AbortReason
	msg    string
}

func (e *AbortError) Error() string { return ErrAborted.Error() + ": " + e.msg }

// Unwrap makes errors.Is(err, ErrAborted) true for abort errors.
func (e *AbortError) Unwrap() error { return ErrAborted }

// ReasonOf extracts the abort reason from an error chain. ok is false
// when err is not a classified abort.
func ReasonOf(err error) (AbortReason, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae.Reason, true
	}
	return 0, false
}

// abortf builds an abort error with a classified reason.
func abortf(reason AbortReason, format string, args ...any) error {
	return &AbortError{Reason: reason, msg: fmt.Sprintf(format, args...)}
}

type objKind uint8

const (
	kindNode objKind = iota
	kindRel
)

func (k objKind) String() string {
	if k == kindNode {
		return "node"
	}
	return "relationship"
}

type objKey struct {
	kind objKind
	id   uint64
}
