// Package core is the paper's primary contribution: a transactional
// property-graph engine for persistent memory (§4 storage model, §5 MVTO
// transaction processing) with hybrid DRAM/PMem storage management.
//
// The engine stores nodes, relationships and properties in chunked PMem
// tables (package storage), encodes strings through a persistent
// dictionary (package dict), accelerates property lookups with hybrid
// B+-trees (package index) and provides snapshot-isolated multi-version
// timestamp-ordering (MVTO) transactions whose uncommitted state lives
// entirely in DRAM (§5.2, DG1/DG2).
package core

import (
	"errors"
	"fmt"
)

// Mode selects the storage medium of the engine, matching the paper's
// evaluation variants.
type Mode int

// Engine modes.
const (
	// PMem keeps the primary data in simulated persistent memory with
	// Optane-like latencies; the engine survives Crash.
	PMem Mode = iota
	// DRAM is the paper's dram baseline: the same engine bit-for-bit, on
	// a volatile zero-latency device.
	DRAM
)

func (m Mode) String() string {
	if m == DRAM {
		return "dram"
	}
	return "pmem"
}

// Infinity is the end timestamp of a live object version.
const Infinity = ^uint64(0)

// Common errors. Transaction aborts wrap ErrAborted; callers typically
// retry the transaction.
var (
	ErrAborted   = errors.New("core: transaction aborted")
	ErrNotFound  = errors.New("core: object not found")
	ErrTxDone    = errors.New("core: transaction already finished")
	ErrHasRels   = errors.New("core: node still has relationships")
	ErrBadConfig = errors.New("core: invalid configuration")
)

// abortf builds an abort error with a reason.
func abortf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrAborted, fmt.Sprintf(format, args...))
}

type objKind uint8

const (
	kindNode objKind = iota
	kindRel
)

func (k objKind) String() string {
	if k == kindNode {
		return "node"
	}
	return "relationship"
}

type objKey struct {
	kind objKind
	id   uint64
}
