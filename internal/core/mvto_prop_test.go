package core

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Property test for MVTO serializability: concurrent transactions doing
// random reads, writes and deletes over a small set of nodes must be
// equivalent to executing the committed transactions serially in
// timestamp order (versions carry the writer's begin timestamp, so the
// equivalent serial order is the tx-id order). Every divergence dumps the
// seed and the full committed history so the schedule can be replayed by
// re-running with POSEIDON_MVTO_SEED set.

type propOpKind int

const (
	opRead propOpKind = iota
	opWrite
	opDelete
)

type propOp struct {
	kind propOpKind
	node int   // index into the node-id table
	arg  int64 // written value (opWrite)
	// observations (opRead)
	sawMissing bool
	sawVal     int64
}

func (o propOp) String() string {
	switch o.kind {
	case opWrite:
		return fmt.Sprintf("write(n%d=%d)", o.node, o.arg)
	case opDelete:
		return fmt.Sprintf("delete(n%d)", o.node)
	default:
		if o.sawMissing {
			return fmt.Sprintf("read(n%d)=missing", o.node)
		}
		return fmt.Sprintf("read(n%d)=%d", o.node, o.sawVal)
	}
}

type propTxRecord struct {
	ts   uint64
	goID int
	ops  []propOp
}

func TestMVTOSerializabilityProperty(t *testing.T) {
	const (
		rounds     = 5
		goroutines = 4
		txPerGo    = 8
		nodeCount  = 8
	)
	baseSeed := int64(0x5eed)
	if s := os.Getenv("POSEIDON_MVTO_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("POSEIDON_MVTO_SEED: %v", err)
		}
		baseSeed = v
	}
	// Every core configuration must satisfy the property: the unsharded
	// single-monitor engine, the sharded core with its cross-shard
	// commit protocol (ascending lock order, per-shard MVTO state), and
	// both again with group commit batching concurrent committers into
	// shared epochs.
	for _, shards := range []int{1, 4} {
		for _, group := range []bool{false, true} {
			for round := 0; round < rounds; round++ {
				seed := baseSeed + int64(round)
				t.Run(fmt.Sprintf("shards=%d/group=%v/seed=%d", shards, group, seed), func(t *testing.T) {
					runMVTORound(t, seed, goroutines, txPerGo, nodeCount, shards, group)
				})
			}
		}
	}
}

func runMVTORound(t *testing.T, seed int64, goroutines, txPerGo, nodeCount, shards int, group bool) {
	e, err := Open(Config{Mode: DRAM, PoolSize: 64 << 20, Shards: shards,
		GroupCommit: GroupCommitConfig{Enabled: group}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	key, err := e.dict.Encode("v")
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]uint64, nodeCount)
	setup := e.Begin()
	for i := range ids {
		ids[i] = mustCreateNode(t, setup, "N", map[string]any{"v": int64(0)})
	}
	mustCommit(t, setup)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		committed []propTxRecord
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(goID int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(goID)*7919))
			for txn := 0; txn < txPerGo; txn++ {
				rec := propTxRecord{goID: goID}
				tx := e.Begin()
				rec.ts = tx.ID()
				ok := true
				nops := 1 + rng.Intn(5)
				for i := 0; i < nops && ok; i++ {
					n := rng.Intn(nodeCount)
					switch draw := rng.Intn(10); {
					case draw < 5: // read
						op := propOp{kind: opRead, node: n}
						snap, err := tx.GetNode(ids[n])
						switch {
						case err == ErrNotFound:
							op.sawMissing = true
						case err != nil:
							ok = false
						default:
							v, has := snap.Prop(uint32(key))
							if !has {
								ok = false // "v" is never removed, only rewritten
								break
							}
							op.sawVal = int64(v.Raw)
						}
						rec.ops = append(rec.ops, op)
					case draw < 9: // write
						val := int64(goID*1_000_000 + txn*1_000 + i + 1)
						if err := tx.SetNodeProps(ids[n], map[string]any{"v": val}); err != nil {
							ok = false
							break
						}
						rec.ops = append(rec.ops, propOp{kind: opWrite, node: n, arg: val})
					default: // delete
						if err := tx.DeleteNode(ids[n]); err != nil {
							ok = false
							break
						}
						rec.ops = append(rec.ops, propOp{kind: opDelete, node: n})
					}
				}
				if !ok {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue // conflict abort: excluded from the history
				}
				mu.Lock()
				committed = append(committed, rec)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	sort.Slice(committed, func(i, j int) bool { return committed[i].ts < committed[j].ts })
	if len(committed) == 0 {
		t.Fatal("no transaction committed; the workload is degenerate")
	}

	// Single-threaded oracle: replay the committed transactions in
	// timestamp order and check every recorded read.
	type cell struct {
		val   int64
		alive bool
	}
	state := make([]cell, nodeCount)
	for i := range state {
		state[i] = cell{val: 0, alive: true}
	}
	for ti, rec := range committed {
		overlay := make(map[int]cell)
		get := func(n int) cell {
			if c, ok := overlay[n]; ok {
				return c
			}
			return state[n]
		}
		for oi, op := range rec.ops {
			switch op.kind {
			case opRead:
				c := get(op.node)
				want := propOp{kind: opRead, node: op.node, sawMissing: !c.alive}
				if c.alive {
					want.sawVal = c.val
				}
				got := op
				if got.sawMissing != want.sawMissing || (!got.sawMissing && got.sawVal != want.sawVal) {
					t.Fatalf("serializability violation at tx ts=%d (goroutine %d) op %d:\n  engine observed %s, serial oracle expects %s\nseed=%d\nhistory:\n%s",
						rec.ts, rec.goID, oi, got, want, seed, dumpHistory(committed, ti))
				}
			case opWrite:
				overlay[op.node] = cell{val: op.arg, alive: true}
			case opDelete:
				overlay[op.node] = cell{alive: false}
			}
		}
		for n, c := range overlay {
			state[n] = c
		}
	}
}

func dumpHistory(committed []propTxRecord, upTo int) string {
	var b strings.Builder
	for i, rec := range committed {
		if i > upTo {
			break
		}
		ops := make([]string, len(rec.ops))
		for j, op := range rec.ops {
			ops[j] = op.String()
		}
		fmt.Fprintf(&b, "  ts=%d g%d: %s\n", rec.ts, rec.goID, strings.Join(ops, ", "))
	}
	return b.String()
}
