package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"poseidon/internal/pmem"
)

func newGroupEngine(t *testing.T, shards int, cfg GroupCommitConfig) *Engine {
	t.Helper()
	e, err := Open(Config{Mode: PMem, PoolSize: 64 << 20, Shards: shards, GroupCommit: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestGroupCommitBasic(t *testing.T) {
	e := newGroupEngine(t, 1, GroupCommitConfig{Enabled: true})
	tx := e.Begin()
	id := mustCreateNode(t, tx, "Person", map[string]any{"name": "alice"})
	mustCommit(t, tx)

	if got := nodeProps(t, e, id)["name"]; got != "alice" {
		t.Fatalf("name = %v", got)
	}
	epochs, members, _ := e.GroupCommitStats()
	if epochs != 1 || members != 1 {
		t.Fatalf("stats = (%d epochs, %d members), want (1, 1)", epochs, members)
	}
}

// TestGroupCommitConcurrent commits from many goroutines; every acked
// transaction must be visible, and the epoch accounting must add up.
func TestGroupCommitConcurrent(t *testing.T) {
	const writers, txPerWriter = 8, 20
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := newGroupEngine(t, shards, GroupCommitConfig{Enabled: true, MaxBatch: 8})
			var wg sync.WaitGroup
			ids := make([][]uint64, writers)
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < txPerWriter; i++ {
						tx := e.Begin()
						id, err := tx.CreateNode("W", map[string]any{"w": int64(w), "i": int64(i)})
						if err != nil {
							t.Error(err)
							return
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("writer %d commit %d: %v", w, i, err)
							return
						}
						ids[w] = append(ids[w], id)
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for w, list := range ids {
				for i, id := range list {
					props := nodeProps(t, e, id)
					if props["w"] != int64(w) || props["i"] != int64(i) {
						t.Fatalf("node %d props = %v, want w=%d i=%d", id, props, w, i)
					}
				}
			}
			epochs, members, _ := e.GroupCommitStats()
			if members != writers*txPerWriter {
				t.Fatalf("members = %d, want %d", members, writers*txPerWriter)
			}
			if epochs == 0 || epochs > members {
				t.Fatalf("epochs = %d out of range (members %d)", epochs, members)
			}
		})
	}
}

// TestCommitBatchGroupsPerShard drives the deterministic batch entry
// point and checks results, visibility and epoch packing.
func TestCommitBatchGroupsPerShard(t *testing.T) {
	e := newGroupEngine(t, 4, GroupCommitConfig{Enabled: true})
	const n = 24
	txs := make([]*Tx, n)
	ids := make([]uint64, n)
	for i := range txs {
		txs[i] = e.Begin()
		ids[i] = mustCreateNode(t, txs[i], "B", map[string]any{"i": int64(i)})
	}
	for i, err := range e.CommitBatch(txs) {
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	for i, id := range ids {
		if got := nodeProps(t, e, id)["i"]; got != int64(i) {
			t.Fatalf("node %d i = %v, want %d", id, got, i)
		}
	}
	epochs, members, _ := e.GroupCommitStats()
	if members != n {
		t.Fatalf("members = %d, want %d", members, n)
	}
	// One epoch per shard that owned at least one transaction.
	if epochs == 0 || epochs > 4 {
		t.Fatalf("epochs = %d, want 1..4", epochs)
	}

	// Re-committing and re-batching finished transactions must fail fast.
	for i, err := range e.CommitBatch(txs[:2]) {
		if err != ErrTxDone {
			t.Fatalf("recommit %d = %v, want ErrTxDone", i, err)
		}
	}
}

// TestGroupCommitFenceReduction pins the tentpole's cost claim: an epoch
// of K small transactions must issue at least 4x fewer drains per
// committed transaction than the per-transaction path.
func TestGroupCommitFenceReduction(t *testing.T) {
	const n = 16
	perTxn := func(group bool) float64 {
		e, err := Open(Config{Mode: PMem, PoolSize: 64 << 20, Shards: 1,
			GroupCommit: GroupCommitConfig{Enabled: group, MaxBatch: n}})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		// Warm up allocator chunks so growth costs don't pollute the measure.
		w := e.Begin()
		mustCreateNode(t, w, "W", map[string]any{"v": int64(0)})
		mustCommit(t, w)

		txs := make([]*Tx, n)
		for i := range txs {
			txs[i] = e.Begin()
			mustCreateNode(t, txs[i], "N", map[string]any{"v": int64(i)})
		}
		before := e.Device().Stats.Snapshot()
		if group {
			for i, err := range e.CommitBatch(txs) {
				if err != nil {
					t.Fatalf("tx %d: %v", i, err)
				}
			}
		} else {
			for i, tx := range txs {
				if err := tx.Commit(); err != nil {
					t.Fatalf("tx %d: %v", i, err)
				}
			}
		}
		drains := e.Device().Stats.Snapshot().Sub(before).Drains
		return float64(drains) / n
	}
	legacy := perTxn(false)
	grouped := perTxn(true)
	if legacy < 4*grouped {
		t.Fatalf("drains per txn: legacy %.2f, grouped %.2f — reduction %.1fx < 4x",
			legacy, grouped, legacy/grouped)
	}
	t.Logf("drains per txn: legacy %.2f, grouped %.2f (%.1fx)", legacy, grouped, legacy/grouped)
}

// TestGroupCommitLaneOverflowDegrades is the lane-sizing hazard
// regression: a full epoch whose undo images cannot fit the shard's
// lane must degrade into smaller groups, never abort its members.
func TestGroupCommitLaneOverflowDegrades(t *testing.T) {
	// An unsharded engine commits on the built-in log, whose capacity is
	// directly configurable — size it so a 32-transaction epoch of fat
	// property updates cannot fit.
	e, err := Open(Config{Mode: PMem, PoolSize: 64 << 20, Shards: 1, LogCap: 16 << 10,
		GroupCommit: GroupCommitConfig{Enabled: true, MaxBatch: 32}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	const n = 32
	txs := make([]*Tx, n)
	ids := make([]uint64, n)
	props := map[string]any{}
	for k := 0; k < 8; k++ {
		props[fmt.Sprintf("k%d", k)] = int64(k)
	}
	for i := range txs {
		txs[i] = e.Begin()
		ids[i] = mustCreateNode(t, txs[i], "Fat", props)
	}
	for i, err := range e.CommitBatch(txs) {
		if err != nil {
			t.Fatalf("tx %d aborted under lane pressure: %v", i, err)
		}
	}
	_, members, splits := e.GroupCommitStats()
	if members != n {
		t.Fatalf("members = %d, want %d", members, n)
	}
	if splits == 0 {
		t.Fatalf("epoch was never split despite a %d-byte lane", 16<<10)
	}
	for i, id := range ids {
		if got := nodeProps(t, e, id)["k3"]; got != int64(3) {
			t.Fatalf("node %d (tx %d) lost props: k3 = %v", id, i, got)
		}
	}
}

// TestGroupCommitReservationFailureAborts exhausts the pool so the
// post-ErrShardFull property reservation inside processGroup fails after
// the shard lock was already dropped. The members must abort with an
// error — regression: the generic error path unlocked the shard again
// (sync.Mutex unlock-of-unlocked panic) instead of honoring the
// locked=false state the failed reservation left behind.
func TestGroupCommitReservationFailureAborts(t *testing.T) {
	e, err := Open(Config{Mode: PMem, PoolSize: 8 << 20, Shards: 1,
		GroupCommit: GroupCommitConfig{Enabled: true, MaxBatch: 8}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	// Fat integer properties: commit-time property-chain writes burn
	// props-table slots ~an order of magnitude faster than node slots,
	// so the props shard hits ErrShardFull while the pool is too full to
	// grow it — the reservation failure under test.
	props := map[string]any{}
	for k := 0; k < 24; k++ {
		props[fmt.Sprintf("k%d", k)] = int64(k)
	}
	for round := 0; round < 8000; round++ {
		txs := make([]*Tx, 4)
		ok := true
		for i := range txs {
			txs[i] = e.Begin()
			if _, err := txs[i].CreateNode("Fat", props); err != nil {
				// Insert-time exhaustion: the create already failed, so
				// the commit path under test is unreachable this round.
				for _, tx := range txs[:i+1] {
					tx.Abort()
				}
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var failed bool
		for i, err := range e.CommitBatch(txs) {
			if err != nil {
				failed = true
				if r := txs[i].abortReason.Load(); r != uint32(AbortCommitFailed)+1 {
					t.Fatalf("tx %d abort reason = %d, want AbortCommitFailed", i, r)
				}
			}
		}
		if failed {
			// Surviving to here without a panic is the regression check;
			// the engine must also still serve reads and commits.
			rtx := e.Begin()
			if _, err := rtx.GetNode(1); err != nil && err != ErrNotFound {
				t.Fatalf("engine unusable after reservation failure: %v", err)
			}
			rtx.Abort()
			return
		}
	}
	t.Fatal("pool never exhausted — raise the fat-prop load")
}

// TestGroupCommitCancelledMember: a member whose context is cancelled
// aborts without poisoning the rest of its epoch.
func TestGroupCommitCancelledMember(t *testing.T) {
	e := newGroupEngine(t, 1, GroupCommitConfig{Enabled: true})
	ctx, cancel := context.WithCancel(context.Background())
	live := e.Begin()
	liveID := mustCreateNode(t, live, "L", nil)
	dead := e.Begin()
	dead.WithContext(ctx)
	deadID, err := dead.CreateNode("D", nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	errs := e.CommitBatch([]*Tx{live, dead})
	if errs[0] != nil {
		t.Fatalf("live member: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("cancelled member committed")
	}
	if _, err := nodeSnap(t, e, liveID); err != nil {
		t.Fatalf("live node lost: %v", err)
	}
	if _, err := nodeSnap(t, e, deadID); err != ErrNotFound {
		t.Fatalf("cancelled node visible: err=%v", err)
	}
}

func nodeSnap(t *testing.T, e *Engine, id uint64) (NodeSnap, error) {
	t.Helper()
	tx := e.Begin()
	defer tx.Abort()
	return tx.GetNode(id)
}

// TestGroupCommitDurabilityLinearizable is the acked-implies-durable
// property: under random crash injection, any transaction whose Commit
// returned nil before the crash event fired must be present after
// recovery. Commits that return while a crash is already in flight are
// not acked (the device freezes media at the injection point).
func TestGroupCommitDurabilityLinearizable(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			e, err := Open(Config{Mode: PMem, PoolSize: 64 << 20, Shards: 1,
				GroupCommit: GroupCommitConfig{Enabled: true, MaxBatch: 8}})
			if err != nil {
				t.Fatal(err)
			}
			dev := e.Device()

			// A few guaranteed-durable transactions before arming.
			var acked []uint64
			for i := 0; i < 3; i++ {
				tx := e.Begin()
				acked = append(acked, mustCreateNode(t, tx, "pre", map[string]any{"i": int64(i)}))
				mustCommit(t, tx)
			}

			dev.ArmCrash(pmem.EvAll, 1+uint64(rng.Intn(400)))
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(*pmem.InjectedCrash); !ok {
							panic(r)
						}
					}
				}()
				for i := 0; i < 40; i++ {
					tx := e.Begin()
					id, err := tx.CreateNode("n", map[string]any{"i": int64(i)})
					if err != nil {
						return
					}
					if err := tx.Commit(); err != nil {
						return
					}
					if !dev.CrashFired() {
						// Acked strictly before the crash point: must survive.
						acked = append(acked, id)
					}
				}
			}()
			if !dev.CrashFired() {
				// Crash point beyond the workload: nothing to verify.
				dev.DisarmCrash()
				return
			}
			dev.Crash()
			e2, err := Reopen(dev, Config{Mode: PMem, Shards: 1})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer e2.Close()
			tx := e2.Begin()
			defer tx.Abort()
			for _, id := range acked {
				if _, err := tx.GetNode(id); err != nil {
					t.Fatalf("acked node %d lost after crash: %v", id, err)
				}
			}
		})
	}
}
