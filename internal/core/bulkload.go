package core

import (
	"fmt"

	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// BulkLoader performs the initial dataset load (e.g. LDBC-SNB) outside
// the MVTO protocol: records are written directly with begin timestamp 1,
// batched into large pmemobj transactions to amortize logging and flush
// costs (DG5: group allocation). A crash mid-load rolls back the current
// batch only.
//
// A BulkLoader must not run concurrently with transactions: it bypasses
// the MVTO write locks and the per-shard commit locks, and it logs
// through the pool's built-in undo log rather than a shard lane. Shard
// membership is a pure function of the record id, so sequentially
// filled chunks still rotate over the shards and every sharded-core
// invariant holds once the load finishes.
type BulkLoader struct {
	e     *Engine
	tx    *pmemobj.Tx
	ops   int
	batch int
	err   error
}

// bulkBatch bounds a batch so its bitmap/record snapshots stay far below
// the undo-log capacity.
const bulkBatch = 256

// NewBulkLoader starts a bulk load session.
func (e *Engine) NewBulkLoader() *BulkLoader {
	return &BulkLoader{e: e, batch: bulkBatch}
}

func (b *BulkLoader) ensureTx() {
	if b.tx == nil {
		b.tx = b.e.pool.Begin()
		b.ops = 0
	}
}

// flush commits the open batch, if any.
func (b *BulkLoader) flush() {
	if b.tx != nil {
		b.tx.Commit()
		b.tx = nil
	}
}

func (b *BulkLoader) bump() {
	b.ops++
	if b.ops >= b.batch {
		b.flush()
	}
}

// encode interns a string, committing the open batch first if the string
// is new (the dictionary needs its own pool transaction).
func (b *BulkLoader) encode(s string) (uint64, error) {
	if code, ok := b.e.dict.Lookup(s); ok {
		return code, nil
	}
	b.flush()
	return b.e.dict.Encode(s)
}

func (b *BulkLoader) encodeProps(props map[string]any) ([]storage.Prop, error) {
	// encodeProps may insert into the dictionary; close the batch first.
	for k, v := range props {
		if _, ok := b.e.dict.Lookup(k); !ok {
			b.flush()
			break
		}
		if s, isStr := v.(string); isStr {
			if _, ok := b.e.dict.Lookup(s); !ok {
				b.flush()
				break
			}
		}
	}
	return b.e.encodeProps(props)
}

// AddNode inserts a committed node and returns its id.
func (b *BulkLoader) AddNode(label string, props map[string]any) (uint64, error) {
	if b.err != nil {
		return 0, b.err
	}
	labelCode, err := b.encode(label)
	if err != nil {
		return 0, b.fail(err)
	}
	encProps, err := b.encodeProps(props)
	if err != nil {
		return 0, b.fail(err)
	}
	b.ensureTx()
	id, off, err := b.e.nodes.InsertTx(b.tx)
	if err != nil {
		return 0, b.failTx(err)
	}
	head, err := storage.WritePropChainTx(b.tx, b.e.props, id, encProps)
	if err != nil {
		return 0, b.failTx(err)
	}
	rec := storage.NodeRec{
		Bts: 1, Ets: Infinity,
		Label: uint32(labelCode),
		Out:   storage.NilID, In: storage.NilID, Props: head,
	}
	storage.WriteNodeRec(b.e.dev, off, &rec)
	b.tx.NoteWrite(off, storage.NodeRecordSize)
	b.bump()
	return id, nil
}

// AddRel inserts a committed relationship between existing nodes and
// links it into both adjacency lists.
func (b *BulkLoader) AddRel(src, dst uint64, label string, props map[string]any) (uint64, error) {
	if b.err != nil {
		return 0, b.err
	}
	labelCode, err := b.encode(label)
	if err != nil {
		return 0, b.fail(err)
	}
	encProps, err := b.encodeProps(props)
	if err != nil {
		return 0, b.fail(err)
	}
	e := b.e
	srcOff, ok := e.nodes.RecordOffset(src)
	if !ok || !e.nodes.Occupied(src) {
		return 0, b.fail(fmt.Errorf("%w: source node %d", ErrNotFound, src))
	}
	dstOff, ok := e.nodes.RecordOffset(dst)
	if !ok || !e.nodes.Occupied(dst) {
		return 0, b.fail(fmt.Errorf("%w: destination node %d", ErrNotFound, dst))
	}

	b.ensureTx()
	id, off, err := e.rels.InsertTx(b.tx)
	if err != nil {
		return 0, b.failTx(err)
	}
	head, err := storage.WritePropChainTx(b.tx, e.props, id, encProps)
	if err != nil {
		return 0, b.failTx(err)
	}
	rec := storage.RelRec{
		Bts: 1, Ets: Infinity,
		Label: uint32(labelCode),
		Src:   src, Dst: dst,
		NextSrc: e.dev.ReadU64(srcOff + storage.NOut),
		NextDst: e.dev.ReadU64(dstOff + storage.NIn),
		Props:   head,
	}
	storage.WriteRelRec(e.dev, off, &rec)
	b.tx.NoteWrite(off, storage.RelRecordSize)

	// Prepend to both adjacency lists.
	if err := b.tx.Snapshot(srcOff+storage.NOut, 8); err != nil {
		return 0, b.failTx(err)
	}
	e.dev.WriteU64(srcOff+storage.NOut, id)
	if err := b.tx.Snapshot(dstOff+storage.NIn, 8); err != nil {
		return 0, b.failTx(err)
	}
	e.dev.WriteU64(dstOff+storage.NIn, id)
	b.bump()
	return id, nil
}

func (b *BulkLoader) fail(err error) error {
	b.flush()
	b.err = err
	return err
}

func (b *BulkLoader) failTx(err error) error {
	// The batch transaction cannot continue; roll back its persistent
	// effects by abandoning commit and letting recovery handle it is not
	// an option online, so commit what is consistent: the safe move is to
	// commit nothing further and surface the error.
	if b.tx != nil {
		b.tx.Commit() // snapshots so far are internally consistent
		b.tx = nil
	}
	b.e.nodes.ResyncVolatile()
	b.e.rels.ResyncVolatile()
	b.e.props.ResyncVolatile()
	b.err = err
	return err
}

// Finish commits the final batch and returns the first error encountered.
func (b *BulkLoader) Finish() error {
	b.flush()
	return b.err
}
