package core

import (
	"fmt"
	"sort"

	"poseidon/internal/index"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// BulkLoader performs the initial dataset load (e.g. LDBC-SNB) outside
// the MVTO protocol: records stream through per-shard appenders and are
// written directly, batched into large pmemobj transactions to amortize
// logging and flush costs (DG5: group allocation). A crash mid-load
// rolls back the current batch only.
//
// Write-optimized ingest refinements over the naive one-record-per-
// transaction path:
//
//   - One watermark advance per batch: every record in a batch carries
//     the same begin timestamp, drawn once when the batch opens, so the
//     recovered commit watermark moves once per batch instead of once
//     per record.
//   - Deferred index publication: when secondary indexes already exist,
//     matching entries are staged in the owning shard's appender and
//     bulk-built with Tree.InsertMany at batch commit — one leaf-flush
//     sweep and one drain per tree per batch. A crash between the batch
//     commit and its index publication loses only index entries, which
//     reconcileIndexes repairs at the next Reopen (the same repair-based
//     durability every index mutation has).
//
// A BulkLoader must not run concurrently with transactions: it bypasses
// the MVTO write locks and the per-shard commit locks, and it logs
// through the pool's built-in undo log rather than a shard lane. Shard
// membership is a pure function of the record id, so sequentially
// filled chunks still rotate over the shards and every sharded-core
// invariant holds once the load finishes.
type BulkLoader struct {
	e     *Engine
	tx    *pmemobj.Tx
	ops   int
	batch int
	// ts is the current batch's begin timestamp (the per-batch
	// watermark advance).
	ts uint64
	// apps stage deferred index entries, one appender per shard.
	apps    []bulkAppender
	batches uint64
	err     error
}

// bulkAppender is one shard's staging area: secondary-index entries for
// records the current batch placed in that shard, published together at
// batch commit.
type bulkAppender struct {
	entries map[indexKey][]index.Entry
}

// bulkBatch bounds a batch so its bitmap/record snapshots stay far below
// the undo-log capacity.
const bulkBatch = 256

// NewBulkLoader starts a bulk load session.
func (e *Engine) NewBulkLoader() *BulkLoader {
	return &BulkLoader{e: e, batch: bulkBatch, apps: make([]bulkAppender, e.nShards)}
}

func (b *BulkLoader) ensureTx() {
	if b.tx == nil {
		b.tx = b.e.pool.Begin()
		b.ops = 0
		// One watermark advance per batch: all records of this batch
		// share one begin timestamp. The clock is volatile (recovery
		// restores it from the maximum committed timestamp), so a batch
		// rolled back by a crash wastes nothing.
		b.ts = b.e.clock.Add(1)
	}
}

// flush commits the open batch, if any, then publishes its staged index
// entries.
func (b *BulkLoader) flush() {
	if b.tx == nil {
		return
	}
	b.tx.Commit()
	b.tx = nil
	b.batches++
	b.publishStaged()
}

func (b *BulkLoader) bump() {
	b.ops++
	if b.ops >= b.batch {
		b.flush()
	}
}

// Batches reports how many batches have been committed so far.
func (b *BulkLoader) Batches() uint64 { return b.batches }

// stageNode defers the node's secondary-index entries to its shard's
// appender; they are published when the batch commits.
func (b *BulkLoader) stageNode(id uint64, label uint32, props []storage.Prop) {
	e := b.e
	s := e.nodes.ShardOf(id)
	sh := &e.shards[s]
	sh.idxMu.RLock()
	defer sh.idxMu.RUnlock()
	if len(sh.indexes) == 0 {
		return
	}
	app := &b.apps[s]
	for _, p := range props {
		ik := indexKey{label: label, key: p.Key}
		if sh.indexes[ik] == nil {
			continue
		}
		if app.entries == nil {
			app.entries = make(map[indexKey][]index.Entry)
		}
		app.entries[ik] = append(app.entries[ik], index.Entry{Key: p.Val, ID: id})
	}
}

// publishStaged bulk-inserts every appender's staged entries, shard by
// shard in a deterministic order. Runs after the batch's records are
// durable: a crash in between leaves the indexes behind the tables,
// which reconcileIndexes repairs at the next Reopen.
func (b *BulkLoader) publishStaged() {
	e := b.e
	for s := range b.apps {
		app := &b.apps[s]
		if len(app.entries) == 0 {
			continue
		}
		iks := make([]indexKey, 0, len(app.entries))
		for ik := range app.entries {
			iks = append(iks, ik)
		}
		sort.Slice(iks, func(i, j int) bool {
			if iks[i].label != iks[j].label {
				return iks[i].label < iks[j].label
			}
			return iks[i].key < iks[j].key
		})
		sh := &e.shards[s]
		sh.idxMu.RLock()
		for _, ik := range iks {
			t := sh.indexes[ik]
			if t == nil {
				continue
			}
			if err := t.InsertMany(app.entries[ik]); err != nil && b.err == nil {
				b.err = fmt.Errorf("core: bulk index publication (%d,%d): %w", ik.label, ik.key, err)
			}
		}
		sh.idxMu.RUnlock()
		app.entries = nil
	}
}

// encode interns a string inside the open batch transaction: a new
// string is failure-atomic with the batch and pays no transaction of
// its own. LDBC message content makes most ingested string values
// unique, so this is what keeps batches intact under real data.
func (b *BulkLoader) encode(s string) (uint64, error) {
	if code, ok := b.e.dict.Lookup(s); ok {
		return code, nil
	}
	b.ensureTx()
	return b.e.dict.EncodeTx(b.tx, s)
}

func (b *BulkLoader) encodeProps(props map[string]any) ([]storage.Prop, error) {
	if len(props) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]storage.Prop, 0, len(props))
	for _, k := range keys {
		kc, err := b.encode(k)
		if err != nil {
			return nil, err
		}
		var v storage.Value
		if s, isStr := props[k].(string); isStr {
			code, err := b.encode(s)
			if err != nil {
				return nil, err
			}
			v = storage.StringValue(code)
		} else if v, err = b.e.EncodeValue(props[k]); err != nil {
			return nil, fmt.Errorf("core: property %q: %w", k, err)
		}
		out = append(out, storage.Prop{Key: uint32(kc), Val: v})
	}
	return out, nil
}

// AddNode inserts a committed node and returns its id.
func (b *BulkLoader) AddNode(label string, props map[string]any) (uint64, error) {
	if b.err != nil {
		return 0, b.err
	}
	labelCode, err := b.encode(label)
	if err != nil {
		return 0, b.fail(err)
	}
	encProps, err := b.encodeProps(props)
	if err != nil {
		return 0, b.fail(err)
	}
	b.ensureTx()
	id, off, err := b.e.nodes.InsertTx(b.tx)
	if err != nil {
		return 0, b.failTx(err)
	}
	head, err := storage.WritePropChainTx(b.tx, b.e.props, id, encProps)
	if err != nil {
		return 0, b.failTx(err)
	}
	rec := storage.NodeRec{
		Bts: b.ts, Ets: Infinity,
		Label: uint32(labelCode),
		Out:   storage.NilID, In: storage.NilID, Props: head,
	}
	storage.WriteNodeRec(b.e.dev, off, &rec)
	b.tx.NoteWrite(off, storage.NodeRecordSize)
	b.stageNode(id, uint32(labelCode), encProps)
	b.bump()
	return id, nil
}

// AddRel inserts a committed relationship between existing nodes and
// links it into both adjacency lists.
func (b *BulkLoader) AddRel(src, dst uint64, label string, props map[string]any) (uint64, error) {
	if b.err != nil {
		return 0, b.err
	}
	labelCode, err := b.encode(label)
	if err != nil {
		return 0, b.fail(err)
	}
	encProps, err := b.encodeProps(props)
	if err != nil {
		return 0, b.fail(err)
	}
	e := b.e
	srcOff, ok := e.nodes.RecordOffset(src)
	if !ok || !e.nodes.Occupied(src) {
		return 0, b.fail(fmt.Errorf("%w: source node %d", ErrNotFound, src))
	}
	dstOff, ok := e.nodes.RecordOffset(dst)
	if !ok || !e.nodes.Occupied(dst) {
		return 0, b.fail(fmt.Errorf("%w: destination node %d", ErrNotFound, dst))
	}

	b.ensureTx()
	id, off, err := e.rels.InsertTx(b.tx)
	if err != nil {
		return 0, b.failTx(err)
	}
	head, err := storage.WritePropChainTx(b.tx, e.props, id, encProps)
	if err != nil {
		return 0, b.failTx(err)
	}
	rec := storage.RelRec{
		Bts: b.ts, Ets: Infinity,
		Label: uint32(labelCode),
		Src:   src, Dst: dst,
		NextSrc: e.dev.ReadU64(srcOff + storage.NOut),
		NextDst: e.dev.ReadU64(dstOff + storage.NIn),
		Props:   head,
	}
	storage.WriteRelRec(e.dev, off, &rec)
	b.tx.NoteWrite(off, storage.RelRecordSize)

	// Prepend to both adjacency lists — one group fence for both
	// head-pointer undo images instead of two.
	if err := b.tx.SnapshotAll([]pmemobj.Range{
		{Off: srcOff + storage.NOut, N: 8},
		{Off: dstOff + storage.NIn, N: 8},
	}); err != nil {
		return 0, b.failTx(err)
	}
	e.dev.WriteU64(srcOff+storage.NOut, id)
	e.dev.WriteU64(dstOff+storage.NIn, id)
	b.bump()
	return id, nil
}

func (b *BulkLoader) fail(err error) error {
	b.flush()
	b.err = err
	return err
}

func (b *BulkLoader) failTx(err error) error {
	// The batch transaction cannot continue; roll back its persistent
	// effects by abandoning commit and letting recovery handle it is not
	// an option online, so commit what is consistent: the safe move is to
	// commit nothing further and surface the error.
	if b.tx != nil {
		b.tx.Commit() // snapshots so far are internally consistent
		b.tx = nil
		b.batches++
		b.publishStaged()
	}
	b.e.nodes.ResyncVolatile()
	b.e.rels.ResyncVolatile()
	b.e.props.ResyncVolatile()
	b.err = err
	return err
}

// Finish commits the final batch and returns the first error encountered.
func (b *BulkLoader) Finish() error {
	b.flush()
	return b.err
}
