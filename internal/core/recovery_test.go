package core

import (
	"errors"
	"sync"
	"testing"

	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// reopenAfterCrash crashes the device and reopens the engine on it.
func reopenAfterCrash(t *testing.T, e *Engine) *Engine {
	t.Helper()
	dev := e.Device()
	e.Close()
	dev.Crash()
	e2, err := Reopen(dev, Config{Mode: PMem})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	return e2
}

func TestCommittedDataSurvivesCrash(t *testing.T) {
	e := newTestEngine(t, PMem)
	tx := e.Begin()
	a := mustCreateNode(t, tx, "Person", map[string]any{"name": "alice", "age": int64(30)})
	b := mustCreateNode(t, tx, "Person", map[string]any{"name": "bob"})
	r, _ := tx.CreateRel(a, b, "knows", map[string]any{"since": int64(2019)})
	mustCommit(t, tx)

	e2 := reopenAfterCrash(t, e)
	p := nodeProps(t, e2, a)
	if p["name"] != "alice" || p["age"] != int64(30) {
		t.Errorf("alice props after crash = %v", p)
	}
	tx2 := e2.Begin()
	defer tx2.Abort()
	snap, err := tx2.GetNode(a)
	if err != nil {
		t.Fatal(err)
	}
	var rels []uint64
	tx2.OutRels(snap, func(rs RelSnap) bool { rels = append(rels, rs.ID); return true })
	if len(rels) != 1 || rels[0] != r {
		t.Errorf("rels after crash = %v, want [%d]", rels, r)
	}
	// The clock resumed past committed timestamps: a new tx can update.
	tx3 := e2.Begin()
	if err := tx3.SetNodeProps(a, map[string]any{"age": int64(31)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx3)
}

func TestUncommittedInsertRolledBackOnCrash(t *testing.T) {
	e := newTestEngine(t, PMem)
	setup := e.Begin()
	mustCreateNode(t, setup, "P", nil)
	mustCommit(t, setup)

	// Leave a transaction in flight: an insert (bts=0, locked) that never
	// commits.
	tx := e.Begin()
	mustCreateNode(t, tx, "P", map[string]any{"ghost": true})
	// No commit: crash.

	e2 := reopenAfterCrash(t, e)
	if got := e2.NodeCount(); got != 1 {
		t.Errorf("node count after crash = %d, want 1 (uncommitted insert reclaimed)", got)
	}
}

func TestStaleLockClearedOnCrash(t *testing.T) {
	e := newTestEngine(t, PMem)
	setup := e.Begin()
	id := mustCreateNode(t, setup, "P", map[string]any{"v": int64(1)})
	mustCommit(t, setup)

	// Lock the record (update in flight) and crash before commit.
	tx := e.Begin()
	if err := tx.SetNodeProps(id, map[string]any{"v": int64(99)}); err != nil {
		t.Fatal(err)
	}

	e2 := reopenAfterCrash(t, e)
	// The old committed value must be intact and the record writable.
	p := nodeProps(t, e2, id)
	if p["v"] != int64(1) {
		t.Errorf("v = %v after crash, want 1", p["v"])
	}
	tx2 := e2.Begin()
	if err := tx2.SetNodeProps(id, map[string]any{"v": int64(2)}); err != nil {
		t.Fatalf("record still locked after recovery: %v", err)
	}
	mustCommit(t, tx2)
}

func TestHybridIndexSurvivesCrash(t *testing.T) {
	e := newTestEngine(t, PMem)
	setup := e.Begin()
	var want []uint64
	for i := 0; i < 200; i++ {
		id := mustCreateNode(t, setup, "Person", map[string]any{"num": int64(i)})
		want = append(want, id)
	}
	mustCommit(t, setup)
	if err := e.CreateIndex("Person", "num", index.Hybrid); err != nil {
		t.Fatal(err)
	}

	e2 := reopenAfterCrash(t, e)
	tree, ok := e2.IndexFor("Person", "num")
	if !ok {
		t.Fatal("hybrid index not reopened")
	}
	tx := e2.Begin()
	defer tx.Abort()
	for i := 0; i < 200; i += 17 {
		snaps, err := tx.IndexedLookup(tree, storage.IntValue(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) != 1 || snaps[0].ID != want[i] {
			t.Fatalf("lookup(%d) after crash = %v, want id %d", i, snaps, want[i])
		}
	}
}

func TestBulkLoaderBasics(t *testing.T) {
	bothModes(t, func(t *testing.T, e *Engine) {
		bl := e.NewBulkLoader()
		var persons []uint64
		for i := 0; i < 1000; i++ {
			id, err := bl.AddNode("Person", map[string]any{"num": int64(i)})
			if err != nil {
				t.Fatal(err)
			}
			persons = append(persons, id)
		}
		for i := 0; i < 999; i++ {
			if _, err := bl.AddRel(persons[i], persons[i+1], "knows", nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := bl.Finish(); err != nil {
			t.Fatal(err)
		}
		if e.NodeCount() != 1000 || e.RelCount() != 999 {
			t.Fatalf("counts = %d nodes, %d rels", e.NodeCount(), e.RelCount())
		}
		// Loaded data is visible to normal transactions and traversable.
		tx := e.Begin()
		defer tx.Abort()
		snap, err := tx.GetNode(persons[500])
		if err != nil {
			t.Fatal(err)
		}
		outs := 0
		tx.OutRels(snap, func(RelSnap) bool { outs++; return true })
		ins := 0
		tx.InRels(snap, func(RelSnap) bool { ins++; return true })
		if outs != 1 || ins != 1 {
			t.Errorf("middle node: out=%d in=%d, want 1/1", outs, ins)
		}
	})
}

func TestBulkLoadSurvivesCrash(t *testing.T) {
	e := newTestEngine(t, PMem)
	bl := e.NewBulkLoader()
	a, _ := bl.AddNode("P", map[string]any{"k": "v"})
	b, _ := bl.AddNode("P", nil)
	bl.AddRel(a, b, "r", nil)
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	e2 := reopenAfterCrash(t, e)
	if e2.NodeCount() != 2 || e2.RelCount() != 1 {
		t.Errorf("counts after crash = %d/%d, want 2/1", e2.NodeCount(), e2.RelCount())
	}
	if p := nodeProps(t, e2, a); p["k"] != "v" {
		t.Errorf("props after crash = %v", p)
	}
}

func TestBulkLoaderRejectsMissingEndpoint(t *testing.T) {
	e := newTestEngine(t, DRAM)
	bl := e.NewBulkLoader()
	a, _ := bl.AddNode("P", nil)
	if _, err := bl.AddRel(a, 999, "r", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("AddRel to missing node = %v, want ErrNotFound", err)
	}
	// Subsequent calls keep failing with the sticky error.
	if _, err := bl.AddNode("P", nil); err == nil {
		t.Error("loader accepted work after failure")
	}
	if err := bl.Finish(); err == nil {
		t.Error("Finish did not surface the error")
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	e := newTestEngine(t, DRAM)
	setup := e.Begin()
	var ids []uint64
	for i := 0; i < 16; i++ {
		ids = append(ids, mustCreateNode(t, setup, "P", map[string]any{"v": int64(0)}))
	}
	mustCommit(t, setup)

	const rounds = 30
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tx := e.Begin()
				if err := tx.SetNodeProps(id, map[string]any{"v": int64(r + 1)}); err != nil {
					tx.Abort()
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(ids[w])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		// Disjoint writers should never conflict.
		t.Fatal(err)
	}
	for _, id := range ids {
		if p := nodeProps(t, e, id); p["v"] != int64(rounds) {
			t.Fatalf("node %d v = %v, want %d", id, p["v"], rounds)
		}
	}
}

func TestConcurrentContendedWriters(t *testing.T) {
	// Contended writers: some transactions must abort, committed state
	// must remain consistent (monotone counter of successful commits).
	e := newTestEngine(t, DRAM)
	setup := e.Begin()
	id := mustCreateNode(t, setup, "P", map[string]any{"v": int64(0)})
	mustCommit(t, setup)

	var mu sync.Mutex
	commits := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				tx := e.Begin()
				snap, err := tx.GetNode(id)
				if err != nil {
					tx.Abort()
					continue
				}
				code, _ := e.dict.Lookup("v")
				cur, _ := snap.Prop(uint32(code))
				if err := tx.SetNodeProps(id, map[string]any{"v": cur.Int() + 1}); err != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					mu.Lock()
					commits++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if commits == 0 {
		t.Fatal("no transaction ever committed under contention")
	}
	p := nodeProps(t, e, id)
	if p["v"] != int64(commits) {
		t.Errorf("v = %v, want %d (one increment per successful commit)", p["v"], commits)
	}
}
